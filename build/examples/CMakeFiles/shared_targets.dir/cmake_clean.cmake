file(REMOVE_RECURSE
  "CMakeFiles/shared_targets.dir/shared_targets.cpp.o"
  "CMakeFiles/shared_targets.dir/shared_targets.cpp.o.d"
  "shared_targets"
  "shared_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
