# Empty dependencies file for shared_targets.
# This may be replaced when dependencies are built.
