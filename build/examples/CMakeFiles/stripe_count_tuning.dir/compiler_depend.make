# Empty compiler generated dependencies file for stripe_count_tuning.
# This may be replaced when dependencies are built.
