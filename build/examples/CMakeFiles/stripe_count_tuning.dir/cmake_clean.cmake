file(REMOVE_RECURSE
  "CMakeFiles/stripe_count_tuning.dir/stripe_count_tuning.cpp.o"
  "CMakeFiles/stripe_count_tuning.dir/stripe_count_tuning.cpp.o.d"
  "stripe_count_tuning"
  "stripe_count_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stripe_count_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
