# Empty dependencies file for checkpoint_scheduling.
# This may be replaced when dependencies are built.
