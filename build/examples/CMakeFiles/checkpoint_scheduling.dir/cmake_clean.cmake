file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_scheduling.dir/checkpoint_scheduling.cpp.o"
  "CMakeFiles/checkpoint_scheduling.dir/checkpoint_scheduling.cpp.o.d"
  "checkpoint_scheduling"
  "checkpoint_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
