file(REMOVE_RECURSE
  "CMakeFiles/ext_read_stripecount.dir/ext_read_stripecount.cpp.o"
  "CMakeFiles/ext_read_stripecount.dir/ext_read_stripecount.cpp.o.d"
  "ext_read_stripecount"
  "ext_read_stripecount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_read_stripecount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
