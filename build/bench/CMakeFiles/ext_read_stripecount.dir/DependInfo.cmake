
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_read_stripecount.cpp" "bench/CMakeFiles/ext_read_stripecount.dir/ext_read_stripecount.cpp.o" "gcc" "bench/CMakeFiles/ext_read_stripecount.dir/ext_read_stripecount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/beesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/beesim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/beesim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ior/CMakeFiles/beesim_ior.dir/DependInfo.cmake"
  "/root/repo/build/src/beegfs/CMakeFiles/beesim_beegfs.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/beesim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/beesim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/beesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/beesim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/beesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
