# Empty dependencies file for ext_read_stripecount.
# This may be replaced when dependencies are built.
