# Empty dependencies file for tab_chowdhury_baseline.
# This may be replaced when dependencies are built.
