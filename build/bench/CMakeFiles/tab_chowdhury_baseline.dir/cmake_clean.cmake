file(REMOVE_RECURSE
  "CMakeFiles/tab_chowdhury_baseline.dir/tab_chowdhury_baseline.cpp.o"
  "CMakeFiles/tab_chowdhury_baseline.dir/tab_chowdhury_baseline.cpp.o.d"
  "tab_chowdhury_baseline"
  "tab_chowdhury_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_chowdhury_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
