# Empty compiler generated dependencies file for fig04_nodes.
# This may be replaced when dependencies are built.
