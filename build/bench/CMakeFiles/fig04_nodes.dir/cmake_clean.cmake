file(REMOVE_RECURSE
  "CMakeFiles/fig04_nodes.dir/fig04_nodes.cpp.o"
  "CMakeFiles/fig04_nodes.dir/fig04_nodes.cpp.o.d"
  "fig04_nodes"
  "fig04_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
