# Empty dependencies file for fig03_network_model.
# This may be replaced when dependencies are built.
