file(REMOVE_RECURSE
  "CMakeFiles/fig06_stripecount.dir/fig06_stripecount.cpp.o"
  "CMakeFiles/fig06_stripecount.dir/fig06_stripecount.cpp.o.d"
  "fig06_stripecount"
  "fig06_stripecount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_stripecount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
