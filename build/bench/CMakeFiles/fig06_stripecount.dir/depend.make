# Empty dependencies file for fig06_stripecount.
# This may be replaced when dependencies are built.
