# Empty compiler generated dependencies file for ext_nn_pattern.
# This may be replaced when dependencies are built.
