file(REMOVE_RECURSE
  "CMakeFiles/ext_nn_pattern.dir/ext_nn_pattern.cpp.o"
  "CMakeFiles/ext_nn_pattern.dir/ext_nn_pattern.cpp.o.d"
  "ext_nn_pattern"
  "ext_nn_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_nn_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
