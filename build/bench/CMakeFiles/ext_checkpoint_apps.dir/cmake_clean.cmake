file(REMOVE_RECURSE
  "CMakeFiles/ext_checkpoint_apps.dir/ext_checkpoint_apps.cpp.o"
  "CMakeFiles/ext_checkpoint_apps.dir/ext_checkpoint_apps.cpp.o.d"
  "ext_checkpoint_apps"
  "ext_checkpoint_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_checkpoint_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
