# Empty compiler generated dependencies file for ext_checkpoint_apps.
# This may be replaced when dependencies are built.
