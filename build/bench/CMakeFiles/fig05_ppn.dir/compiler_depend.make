# Empty compiler generated dependencies file for fig05_ppn.
# This may be replaced when dependencies are built.
