file(REMOVE_RECURSE
  "CMakeFiles/fig05_ppn.dir/fig05_ppn.cpp.o"
  "CMakeFiles/fig05_ppn.dir/fig05_ppn.cpp.o.d"
  "fig05_ppn"
  "fig05_ppn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ppn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
