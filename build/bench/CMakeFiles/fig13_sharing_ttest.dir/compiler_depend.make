# Empty compiler generated dependencies file for fig13_sharing_ttest.
# This may be replaced when dependencies are built.
