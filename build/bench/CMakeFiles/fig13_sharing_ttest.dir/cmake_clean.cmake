file(REMOVE_RECURSE
  "CMakeFiles/fig13_sharing_ttest.dir/fig13_sharing_ttest.cpp.o"
  "CMakeFiles/fig13_sharing_ttest.dir/fig13_sharing_ttest.cpp.o.d"
  "fig13_sharing_ttest"
  "fig13_sharing_ttest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sharing_ttest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
