file(REMOVE_RECURSE
  "CMakeFiles/fig11_nodes_stripes.dir/fig11_nodes_stripes.cpp.o"
  "CMakeFiles/fig11_nodes_stripes.dir/fig11_nodes_stripes.cpp.o.d"
  "fig11_nodes_stripes"
  "fig11_nodes_stripes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_nodes_stripes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
