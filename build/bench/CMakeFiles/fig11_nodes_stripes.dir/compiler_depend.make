# Empty compiler generated dependencies file for fig11_nodes_stripes.
# This may be replaced when dependencies are built.
