# Empty dependencies file for fig12_concurrent.
# This may be replaced when dependencies are built.
