file(REMOVE_RECURSE
  "CMakeFiles/fig12_concurrent.dir/fig12_concurrent.cpp.o"
  "CMakeFiles/fig12_concurrent.dir/fig12_concurrent.cpp.o.d"
  "fig12_concurrent"
  "fig12_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
