file(REMOVE_RECURSE
  "CMakeFiles/abl_chooser.dir/abl_chooser.cpp.o"
  "CMakeFiles/abl_chooser.dir/abl_chooser.cpp.o.d"
  "abl_chooser"
  "abl_chooser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_chooser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
