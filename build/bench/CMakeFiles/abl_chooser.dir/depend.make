# Empty dependencies file for abl_chooser.
# This may be replaced when dependencies are built.
