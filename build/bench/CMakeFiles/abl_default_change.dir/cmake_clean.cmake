file(REMOVE_RECURSE
  "CMakeFiles/abl_default_change.dir/abl_default_change.cpp.o"
  "CMakeFiles/abl_default_change.dir/abl_default_change.cpp.o.d"
  "abl_default_change"
  "abl_default_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_default_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
