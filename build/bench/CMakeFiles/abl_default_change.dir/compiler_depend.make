# Empty compiler generated dependencies file for abl_default_change.
# This may be replaced when dependencies are built.
