# Empty dependencies file for fig10_alloc_s2.
# This may be replaced when dependencies are built.
