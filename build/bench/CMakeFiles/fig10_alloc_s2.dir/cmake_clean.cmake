file(REMOVE_RECURSE
  "CMakeFiles/fig10_alloc_s2.dir/fig10_alloc_s2.cpp.o"
  "CMakeFiles/fig10_alloc_s2.dir/fig10_alloc_s2.cpp.o.d"
  "fig10_alloc_s2"
  "fig10_alloc_s2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_alloc_s2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
