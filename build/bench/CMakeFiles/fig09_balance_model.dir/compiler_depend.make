# Empty compiler generated dependencies file for fig09_balance_model.
# This may be replaced when dependencies are built.
