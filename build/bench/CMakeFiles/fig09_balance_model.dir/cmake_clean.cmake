file(REMOVE_RECURSE
  "CMakeFiles/fig09_balance_model.dir/fig09_balance_model.cpp.o"
  "CMakeFiles/fig09_balance_model.dir/fig09_balance_model.cpp.o.d"
  "fig09_balance_model"
  "fig09_balance_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_balance_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
