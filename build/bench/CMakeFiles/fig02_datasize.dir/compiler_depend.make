# Empty compiler generated dependencies file for fig02_datasize.
# This may be replaced when dependencies are built.
