file(REMOVE_RECURSE
  "CMakeFiles/fig02_datasize.dir/fig02_datasize.cpp.o"
  "CMakeFiles/fig02_datasize.dir/fig02_datasize.cpp.o.d"
  "fig02_datasize"
  "fig02_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
