# Empty dependencies file for fig08_alloc_s1.
# This may be replaced when dependencies are built.
