file(REMOVE_RECURSE
  "CMakeFiles/fig08_alloc_s1.dir/fig08_alloc_s1.cpp.o"
  "CMakeFiles/fig08_alloc_s1.dir/fig08_alloc_s1.cpp.o.d"
  "fig08_alloc_s1"
  "fig08_alloc_s1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_alloc_s1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
