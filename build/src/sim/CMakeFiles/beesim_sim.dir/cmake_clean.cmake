file(REMOVE_RECURSE
  "CMakeFiles/beesim_sim.dir/fluid.cpp.o"
  "CMakeFiles/beesim_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/beesim_sim.dir/maxmin.cpp.o"
  "CMakeFiles/beesim_sim.dir/maxmin.cpp.o.d"
  "CMakeFiles/beesim_sim.dir/simulator.cpp.o"
  "CMakeFiles/beesim_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/beesim_sim.dir/trace.cpp.o"
  "CMakeFiles/beesim_sim.dir/trace.cpp.o.d"
  "libbeesim_sim.a"
  "libbeesim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
