file(REMOVE_RECURSE
  "CMakeFiles/beesim_core.dir/advisor.cpp.o"
  "CMakeFiles/beesim_core.dir/advisor.cpp.o.d"
  "CMakeFiles/beesim_core.dir/allocation.cpp.o"
  "CMakeFiles/beesim_core.dir/allocation.cpp.o.d"
  "CMakeFiles/beesim_core.dir/analytic.cpp.o"
  "CMakeFiles/beesim_core.dir/analytic.cpp.o.d"
  "CMakeFiles/beesim_core.dir/analyzer.cpp.o"
  "CMakeFiles/beesim_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/beesim_core.dir/checks.cpp.o"
  "CMakeFiles/beesim_core.dir/checks.cpp.o.d"
  "CMakeFiles/beesim_core.dir/sharing.cpp.o"
  "CMakeFiles/beesim_core.dir/sharing.cpp.o.d"
  "libbeesim_core.a"
  "libbeesim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
