
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/beesim_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/beesim_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/allocation.cpp" "src/core/CMakeFiles/beesim_core.dir/allocation.cpp.o" "gcc" "src/core/CMakeFiles/beesim_core.dir/allocation.cpp.o.d"
  "/root/repo/src/core/analytic.cpp" "src/core/CMakeFiles/beesim_core.dir/analytic.cpp.o" "gcc" "src/core/CMakeFiles/beesim_core.dir/analytic.cpp.o.d"
  "/root/repo/src/core/analyzer.cpp" "src/core/CMakeFiles/beesim_core.dir/analyzer.cpp.o" "gcc" "src/core/CMakeFiles/beesim_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/core/checks.cpp" "src/core/CMakeFiles/beesim_core.dir/checks.cpp.o" "gcc" "src/core/CMakeFiles/beesim_core.dir/checks.cpp.o.d"
  "/root/repo/src/core/sharing.cpp" "src/core/CMakeFiles/beesim_core.dir/sharing.cpp.o" "gcc" "src/core/CMakeFiles/beesim_core.dir/sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/beesim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/beesim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/beesim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/beesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/beesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
