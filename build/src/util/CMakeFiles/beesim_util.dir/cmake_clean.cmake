file(REMOVE_RECURSE
  "CMakeFiles/beesim_util.dir/csv.cpp.o"
  "CMakeFiles/beesim_util.dir/csv.cpp.o.d"
  "CMakeFiles/beesim_util.dir/json.cpp.o"
  "CMakeFiles/beesim_util.dir/json.cpp.o.d"
  "CMakeFiles/beesim_util.dir/log.cpp.o"
  "CMakeFiles/beesim_util.dir/log.cpp.o.d"
  "CMakeFiles/beesim_util.dir/rng.cpp.o"
  "CMakeFiles/beesim_util.dir/rng.cpp.o.d"
  "CMakeFiles/beesim_util.dir/string_util.cpp.o"
  "CMakeFiles/beesim_util.dir/string_util.cpp.o.d"
  "CMakeFiles/beesim_util.dir/table.cpp.o"
  "CMakeFiles/beesim_util.dir/table.cpp.o.d"
  "CMakeFiles/beesim_util.dir/units.cpp.o"
  "CMakeFiles/beesim_util.dir/units.cpp.o.d"
  "libbeesim_util.a"
  "libbeesim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
