# Empty compiler generated dependencies file for beesim.
# This may be replaced when dependencies are built.
