file(REMOVE_RECURSE
  "CMakeFiles/beesim.dir/main.cpp.o"
  "CMakeFiles/beesim.dir/main.cpp.o.d"
  "beesim"
  "beesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
