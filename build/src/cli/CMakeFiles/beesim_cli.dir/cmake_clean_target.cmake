file(REMOVE_RECURSE
  "libbeesim_cli.a"
)
