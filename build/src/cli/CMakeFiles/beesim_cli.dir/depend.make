# Empty dependencies file for beesim_cli.
# This may be replaced when dependencies are built.
