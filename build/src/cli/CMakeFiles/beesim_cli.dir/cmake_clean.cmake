file(REMOVE_RECURSE
  "CMakeFiles/beesim_cli.dir/args.cpp.o"
  "CMakeFiles/beesim_cli.dir/args.cpp.o.d"
  "CMakeFiles/beesim_cli.dir/commands.cpp.o"
  "CMakeFiles/beesim_cli.dir/commands.cpp.o.d"
  "libbeesim_cli.a"
  "libbeesim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
