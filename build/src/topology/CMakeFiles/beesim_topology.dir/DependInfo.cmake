
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/catalyst.cpp" "src/topology/CMakeFiles/beesim_topology.dir/catalyst.cpp.o" "gcc" "src/topology/CMakeFiles/beesim_topology.dir/catalyst.cpp.o.d"
  "/root/repo/src/topology/cluster.cpp" "src/topology/CMakeFiles/beesim_topology.dir/cluster.cpp.o" "gcc" "src/topology/CMakeFiles/beesim_topology.dir/cluster.cpp.o.d"
  "/root/repo/src/topology/loader.cpp" "src/topology/CMakeFiles/beesim_topology.dir/loader.cpp.o" "gcc" "src/topology/CMakeFiles/beesim_topology.dir/loader.cpp.o.d"
  "/root/repo/src/topology/plafrim.cpp" "src/topology/CMakeFiles/beesim_topology.dir/plafrim.cpp.o" "gcc" "src/topology/CMakeFiles/beesim_topology.dir/plafrim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/beesim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/beesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/beesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
