file(REMOVE_RECURSE
  "CMakeFiles/beesim_topology.dir/catalyst.cpp.o"
  "CMakeFiles/beesim_topology.dir/catalyst.cpp.o.d"
  "CMakeFiles/beesim_topology.dir/cluster.cpp.o"
  "CMakeFiles/beesim_topology.dir/cluster.cpp.o.d"
  "CMakeFiles/beesim_topology.dir/loader.cpp.o"
  "CMakeFiles/beesim_topology.dir/loader.cpp.o.d"
  "CMakeFiles/beesim_topology.dir/plafrim.cpp.o"
  "CMakeFiles/beesim_topology.dir/plafrim.cpp.o.d"
  "libbeesim_topology.a"
  "libbeesim_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
