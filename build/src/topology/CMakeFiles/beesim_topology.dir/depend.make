# Empty dependencies file for beesim_topology.
# This may be replaced when dependencies are built.
