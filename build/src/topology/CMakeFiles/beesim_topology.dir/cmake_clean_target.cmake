file(REMOVE_RECURSE
  "libbeesim_topology.a"
)
