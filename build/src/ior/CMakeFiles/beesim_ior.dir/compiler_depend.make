# Empty compiler generated dependencies file for beesim_ior.
# This may be replaced when dependencies are built.
