
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ior/options.cpp" "src/ior/CMakeFiles/beesim_ior.dir/options.cpp.o" "gcc" "src/ior/CMakeFiles/beesim_ior.dir/options.cpp.o.d"
  "/root/repo/src/ior/runner.cpp" "src/ior/CMakeFiles/beesim_ior.dir/runner.cpp.o" "gcc" "src/ior/CMakeFiles/beesim_ior.dir/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/beegfs/CMakeFiles/beesim_beegfs.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/beesim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/beesim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/beesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/beesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
