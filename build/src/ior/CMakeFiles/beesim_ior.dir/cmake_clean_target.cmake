file(REMOVE_RECURSE
  "libbeesim_ior.a"
)
