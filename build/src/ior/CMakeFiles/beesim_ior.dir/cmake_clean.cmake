file(REMOVE_RECURSE
  "CMakeFiles/beesim_ior.dir/options.cpp.o"
  "CMakeFiles/beesim_ior.dir/options.cpp.o.d"
  "CMakeFiles/beesim_ior.dir/runner.cpp.o"
  "CMakeFiles/beesim_ior.dir/runner.cpp.o.d"
  "libbeesim_ior.a"
  "libbeesim_ior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_ior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
