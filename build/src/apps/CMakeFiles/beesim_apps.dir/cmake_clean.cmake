file(REMOVE_RECURSE
  "CMakeFiles/beesim_apps.dir/checkpoint.cpp.o"
  "CMakeFiles/beesim_apps.dir/checkpoint.cpp.o.d"
  "libbeesim_apps.a"
  "libbeesim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
