file(REMOVE_RECURSE
  "libbeesim_apps.a"
)
