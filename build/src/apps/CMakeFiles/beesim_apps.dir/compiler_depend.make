# Empty compiler generated dependencies file for beesim_apps.
# This may be replaced when dependencies are built.
