file(REMOVE_RECURSE
  "libbeesim_stats.a"
)
