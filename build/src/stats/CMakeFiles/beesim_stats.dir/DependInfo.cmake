
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bimodal.cpp" "src/stats/CMakeFiles/beesim_stats.dir/bimodal.cpp.o" "gcc" "src/stats/CMakeFiles/beesim_stats.dir/bimodal.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/beesim_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/beesim_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/ks.cpp" "src/stats/CMakeFiles/beesim_stats.dir/ks.cpp.o" "gcc" "src/stats/CMakeFiles/beesim_stats.dir/ks.cpp.o.d"
  "/root/repo/src/stats/plot.cpp" "src/stats/CMakeFiles/beesim_stats.dir/plot.cpp.o" "gcc" "src/stats/CMakeFiles/beesim_stats.dir/plot.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/beesim_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/beesim_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/beesim_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/beesim_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/beesim_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/beesim_stats.dir/summary.cpp.o.d"
  "/root/repo/src/stats/ttest.cpp" "src/stats/CMakeFiles/beesim_stats.dir/ttest.cpp.o" "gcc" "src/stats/CMakeFiles/beesim_stats.dir/ttest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/beesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
