# Empty compiler generated dependencies file for beesim_stats.
# This may be replaced when dependencies are built.
