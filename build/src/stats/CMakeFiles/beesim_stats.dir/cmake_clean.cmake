file(REMOVE_RECURSE
  "CMakeFiles/beesim_stats.dir/bimodal.cpp.o"
  "CMakeFiles/beesim_stats.dir/bimodal.cpp.o.d"
  "CMakeFiles/beesim_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/beesim_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/beesim_stats.dir/ks.cpp.o"
  "CMakeFiles/beesim_stats.dir/ks.cpp.o.d"
  "CMakeFiles/beesim_stats.dir/plot.cpp.o"
  "CMakeFiles/beesim_stats.dir/plot.cpp.o.d"
  "CMakeFiles/beesim_stats.dir/regression.cpp.o"
  "CMakeFiles/beesim_stats.dir/regression.cpp.o.d"
  "CMakeFiles/beesim_stats.dir/special.cpp.o"
  "CMakeFiles/beesim_stats.dir/special.cpp.o.d"
  "CMakeFiles/beesim_stats.dir/summary.cpp.o"
  "CMakeFiles/beesim_stats.dir/summary.cpp.o.d"
  "CMakeFiles/beesim_stats.dir/ttest.cpp.o"
  "CMakeFiles/beesim_stats.dir/ttest.cpp.o.d"
  "libbeesim_stats.a"
  "libbeesim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
