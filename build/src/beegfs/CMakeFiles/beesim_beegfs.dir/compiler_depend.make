# Empty compiler generated dependencies file for beesim_beegfs.
# This may be replaced when dependencies are built.
