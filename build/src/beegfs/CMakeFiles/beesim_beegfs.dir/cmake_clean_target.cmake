file(REMOVE_RECURSE
  "libbeesim_beegfs.a"
)
