file(REMOVE_RECURSE
  "CMakeFiles/beesim_beegfs.dir/chooser.cpp.o"
  "CMakeFiles/beesim_beegfs.dir/chooser.cpp.o.d"
  "CMakeFiles/beesim_beegfs.dir/deployment.cpp.o"
  "CMakeFiles/beesim_beegfs.dir/deployment.cpp.o.d"
  "CMakeFiles/beesim_beegfs.dir/filesystem.cpp.o"
  "CMakeFiles/beesim_beegfs.dir/filesystem.cpp.o.d"
  "CMakeFiles/beesim_beegfs.dir/meta.cpp.o"
  "CMakeFiles/beesim_beegfs.dir/meta.cpp.o.d"
  "CMakeFiles/beesim_beegfs.dir/mgmt.cpp.o"
  "CMakeFiles/beesim_beegfs.dir/mgmt.cpp.o.d"
  "CMakeFiles/beesim_beegfs.dir/stripe.cpp.o"
  "CMakeFiles/beesim_beegfs.dir/stripe.cpp.o.d"
  "libbeesim_beegfs.a"
  "libbeesim_beegfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_beegfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
