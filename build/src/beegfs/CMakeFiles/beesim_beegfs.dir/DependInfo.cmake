
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/beegfs/chooser.cpp" "src/beegfs/CMakeFiles/beesim_beegfs.dir/chooser.cpp.o" "gcc" "src/beegfs/CMakeFiles/beesim_beegfs.dir/chooser.cpp.o.d"
  "/root/repo/src/beegfs/deployment.cpp" "src/beegfs/CMakeFiles/beesim_beegfs.dir/deployment.cpp.o" "gcc" "src/beegfs/CMakeFiles/beesim_beegfs.dir/deployment.cpp.o.d"
  "/root/repo/src/beegfs/filesystem.cpp" "src/beegfs/CMakeFiles/beesim_beegfs.dir/filesystem.cpp.o" "gcc" "src/beegfs/CMakeFiles/beesim_beegfs.dir/filesystem.cpp.o.d"
  "/root/repo/src/beegfs/meta.cpp" "src/beegfs/CMakeFiles/beesim_beegfs.dir/meta.cpp.o" "gcc" "src/beegfs/CMakeFiles/beesim_beegfs.dir/meta.cpp.o.d"
  "/root/repo/src/beegfs/mgmt.cpp" "src/beegfs/CMakeFiles/beesim_beegfs.dir/mgmt.cpp.o" "gcc" "src/beegfs/CMakeFiles/beesim_beegfs.dir/mgmt.cpp.o.d"
  "/root/repo/src/beegfs/stripe.cpp" "src/beegfs/CMakeFiles/beesim_beegfs.dir/stripe.cpp.o" "gcc" "src/beegfs/CMakeFiles/beesim_beegfs.dir/stripe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/beesim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/beesim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/beesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/beesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
