file(REMOVE_RECURSE
  "libbeesim_harness.a"
)
