# Empty compiler generated dependencies file for beesim_harness.
# This may be replaced when dependencies are built.
