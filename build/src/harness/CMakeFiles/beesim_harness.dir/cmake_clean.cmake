file(REMOVE_RECURSE
  "CMakeFiles/beesim_harness.dir/campaign.cpp.o"
  "CMakeFiles/beesim_harness.dir/campaign.cpp.o.d"
  "CMakeFiles/beesim_harness.dir/concurrent.cpp.o"
  "CMakeFiles/beesim_harness.dir/concurrent.cpp.o.d"
  "CMakeFiles/beesim_harness.dir/interference.cpp.o"
  "CMakeFiles/beesim_harness.dir/interference.cpp.o.d"
  "CMakeFiles/beesim_harness.dir/protocol.cpp.o"
  "CMakeFiles/beesim_harness.dir/protocol.cpp.o.d"
  "CMakeFiles/beesim_harness.dir/run.cpp.o"
  "CMakeFiles/beesim_harness.dir/run.cpp.o.d"
  "CMakeFiles/beesim_harness.dir/store.cpp.o"
  "CMakeFiles/beesim_harness.dir/store.cpp.o.d"
  "libbeesim_harness.a"
  "libbeesim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
