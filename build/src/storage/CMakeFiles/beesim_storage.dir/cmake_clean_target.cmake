file(REMOVE_RECURSE
  "libbeesim_storage.a"
)
