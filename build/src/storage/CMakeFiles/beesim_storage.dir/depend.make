# Empty dependencies file for beesim_storage.
# This may be replaced when dependencies are built.
