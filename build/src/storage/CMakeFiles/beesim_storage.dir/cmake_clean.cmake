file(REMOVE_RECURSE
  "CMakeFiles/beesim_storage.dir/device.cpp.o"
  "CMakeFiles/beesim_storage.dir/device.cpp.o.d"
  "CMakeFiles/beesim_storage.dir/variability.cpp.o"
  "CMakeFiles/beesim_storage.dir/variability.cpp.o.d"
  "libbeesim_storage.a"
  "libbeesim_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beesim_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
