# Empty dependencies file for beesim_tests.
# This may be replaced when dependencies are built.
