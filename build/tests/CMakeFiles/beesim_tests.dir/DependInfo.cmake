
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_advisor.cpp" "tests/CMakeFiles/beesim_tests.dir/test_advisor.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_advisor.cpp.o.d"
  "/root/repo/tests/test_allocation.cpp" "tests/CMakeFiles/beesim_tests.dir/test_allocation.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_allocation.cpp.o.d"
  "/root/repo/tests/test_analytic.cpp" "tests/CMakeFiles/beesim_tests.dir/test_analytic.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_analytic.cpp.o.d"
  "/root/repo/tests/test_bootstrap.cpp" "tests/CMakeFiles/beesim_tests.dir/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_bootstrap.cpp.o.d"
  "/root/repo/tests/test_checkpoint.cpp" "tests/CMakeFiles/beesim_tests.dir/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_checkpoint.cpp.o.d"
  "/root/repo/tests/test_chooser.cpp" "tests/CMakeFiles/beesim_tests.dir/test_chooser.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_chooser.cpp.o.d"
  "/root/repo/tests/test_cli_args.cpp" "tests/CMakeFiles/beesim_tests.dir/test_cli_args.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_cli_args.cpp.o.d"
  "/root/repo/tests/test_cli_commands.cpp" "tests/CMakeFiles/beesim_tests.dir/test_cli_commands.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_cli_commands.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/beesim_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/beesim_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_deployment.cpp" "tests/CMakeFiles/beesim_tests.dir/test_deployment.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_deployment.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/beesim_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_device.cpp" "tests/CMakeFiles/beesim_tests.dir/test_device.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_device.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/beesim_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_filesystem.cpp" "tests/CMakeFiles/beesim_tests.dir/test_filesystem.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_filesystem.cpp.o.d"
  "/root/repo/tests/test_fluid.cpp" "tests/CMakeFiles/beesim_tests.dir/test_fluid.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_fluid.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/beesim_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/beesim_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ior_options.cpp" "tests/CMakeFiles/beesim_tests.dir/test_ior_options.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_ior_options.cpp.o.d"
  "/root/repo/tests/test_ior_runner.cpp" "tests/CMakeFiles/beesim_tests.dir/test_ior_runner.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_ior_runner.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/beesim_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_loader.cpp" "tests/CMakeFiles/beesim_tests.dir/test_loader.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_loader.cpp.o.d"
  "/root/repo/tests/test_maxmin.cpp" "tests/CMakeFiles/beesim_tests.dir/test_maxmin.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_maxmin.cpp.o.d"
  "/root/repo/tests/test_meta.cpp" "tests/CMakeFiles/beesim_tests.dir/test_meta.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_meta.cpp.o.d"
  "/root/repo/tests/test_mgmt.cpp" "tests/CMakeFiles/beesim_tests.dir/test_mgmt.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_mgmt.cpp.o.d"
  "/root/repo/tests/test_plot.cpp" "tests/CMakeFiles/beesim_tests.dir/test_plot.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_plot.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/beesim_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/beesim_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_stats_bimodal.cpp" "tests/CMakeFiles/beesim_tests.dir/test_stats_bimodal.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_stats_bimodal.cpp.o.d"
  "/root/repo/tests/test_stats_special.cpp" "tests/CMakeFiles/beesim_tests.dir/test_stats_special.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_stats_special.cpp.o.d"
  "/root/repo/tests/test_stats_summary.cpp" "tests/CMakeFiles/beesim_tests.dir/test_stats_summary.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_stats_summary.cpp.o.d"
  "/root/repo/tests/test_stats_tests.cpp" "tests/CMakeFiles/beesim_tests.dir/test_stats_tests.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_stats_tests.cpp.o.d"
  "/root/repo/tests/test_string_util.cpp" "tests/CMakeFiles/beesim_tests.dir/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_string_util.cpp.o.d"
  "/root/repo/tests/test_stripe.cpp" "tests/CMakeFiles/beesim_tests.dir/test_stripe.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_stripe.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/beesim_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_topologies.cpp" "tests/CMakeFiles/beesim_tests.dir/test_topologies.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_topologies.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/beesim_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/beesim_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_variability.cpp" "tests/CMakeFiles/beesim_tests.dir/test_variability.cpp.o" "gcc" "tests/CMakeFiles/beesim_tests.dir/test_variability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/beesim_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/beesim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/beesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/beesim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ior/CMakeFiles/beesim_ior.dir/DependInfo.cmake"
  "/root/repo/build/src/beegfs/CMakeFiles/beesim_beegfs.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/beesim_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/beesim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/beesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/beesim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/beesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
