#include "stats/plot.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::stats {
namespace {

TEST(CategoryScatter, RendersDotsAndLabels) {
  std::vector<CategoryScatter> cats{
      {"1", {1100.0, 1105.0, 1098.0}},
      {"2", {2200.0, 2195.0}},
  };
  PlotOptions options;
  options.xLabel = "stripe count";
  options.yLabel = "MiB/s";
  const auto out = renderCategoryScatter(cats, options);
  EXPECT_NE(out.find('.'), std::string::npos);
  EXPECT_NE(out.find("stripe count"), std::string::npos);
  EXPECT_NE(out.find("MiB/s"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(CategoryScatter, BimodalCloudOccupiesTwoBands) {
  // Two clouds in one category: the rendering must place dots both near the
  // top and near the bottom of the plot.
  std::vector<CategoryScatter> cats{{"2", {}}};
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) cats[0].values.push_back(rng.normal(1100.0, 10.0));
  for (int i = 0; i < 50; ++i) cats[0].values.push_back(rng.normal(2200.0, 10.0));
  PlotOptions options;
  options.height = 12;
  const auto out = renderCategoryScatter(cats, options);

  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto next = out.find('\n', pos);
    lines.push_back(out.substr(pos, next - pos));
    pos = next + 1;
  }
  auto hasDots = [&](const std::string& line) {
    return line.find('.') != std::string::npos || line.find('*') != std::string::npos;
  };
  // First plot row (top band) and a row near the bottom both carry dots,
  // with an empty band in the middle.
  EXPECT_TRUE(hasDots(lines[0]));
  EXPECT_TRUE(hasDots(lines[11]));
  EXPECT_FALSE(hasDots(lines[5]));
}

TEST(CategoryScatter, ContractViolations) {
  EXPECT_THROW(renderCategoryScatter(std::vector<CategoryScatter>{}), util::ContractError);
  std::vector<CategoryScatter> tooMany(40, CategoryScatter{"x", {1.0}});
  PlotOptions narrow;
  narrow.width = 40;
  EXPECT_THROW(renderCategoryScatter(tooMany, narrow), util::ContractError);
}

TEST(Lines, RendersSeriesWithLegend) {
  std::vector<Series> series{
      {"stripe 4", {1, 2, 4, 8}, {1300, 1600, 1800, 2200}},
      {"stripe 8", {1, 2, 4, 8}, {1500, 2600, 4400, 6800}},
  };
  PlotOptions options;
  options.xLabel = "nodes";
  const auto out = renderLines(series, options);
  EXPECT_NE(out.find("o stripe 4"), std::string::npos);
  EXPECT_NE(out.find("+ stripe 8"), std::string::npos);
  EXPECT_NE(out.find("nodes"), std::string::npos);
  // Interpolation dots between points.
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(Lines, MonotoneSeriesRendersMonotonically) {
  // The topmost glyph of a rising series must appear at the right edge.
  std::vector<Series> series{{"s", {0, 1, 2, 3}, {0, 10, 20, 30}}};
  PlotOptions options;
  options.width = 40;
  options.height = 10;
  const auto out = renderLines(series, options);
  const auto firstRowEnd = out.find('\n');
  const auto firstRow = out.substr(0, firstRowEnd);
  const auto glyphCol = firstRow.rfind('o');
  EXPECT_NE(glyphCol, std::string::npos);
  EXPECT_GT(glyphCol, firstRow.size() - 6);  // near the right edge
}

TEST(Lines, MismatchedSeriesThrow) {
  std::vector<Series> bad{{"s", {1, 2}, {1}}};
  EXPECT_THROW(renderLines(bad), util::ContractError);
  EXPECT_THROW(renderLines(std::vector<Series>{}), util::ContractError);
}

TEST(Boxes, RendersQuartilesAndOutliers) {
  std::vector<double> values{10, 11, 12, 13, 14, 15, 16, 40};
  std::vector<LabelledBox> boxes{{"(1,3)", boxPlot(values)}};
  const auto out = renderBoxes(boxes);
  EXPECT_NE(out.find("(1,3)"), std::string::npos);
  EXPECT_NE(out.find('M'), std::string::npos);   // median
  EXPECT_NE(out.find('['), std::string::npos);   // q1
  EXPECT_NE(out.find(']'), std::string::npos);   // q3
  EXPECT_NE(out.find('o'), std::string::npos);   // the outlier at 40
}

TEST(Boxes, OrderOnTheSharedAxisIsPreserved) {
  std::vector<double> low{1000, 1010, 1020, 1030};
  std::vector<double> high{2000, 2010, 2020, 2030};
  std::vector<LabelledBox> boxes{{"low", boxPlot(low)}, {"high", boxPlot(high)}};
  PlotOptions options;
  options.width = 60;
  const auto out = renderBoxes(boxes, options);
  const auto lowLine = out.substr(0, out.find('\n'));
  const auto rest = out.substr(out.find('\n') + 1);
  const auto highLine = rest.substr(0, rest.find('\n'));
  EXPECT_LT(lowLine.find('M'), highLine.find('M'));
}

TEST(Boxes, EmptyInputThrows) {
  EXPECT_THROW(renderBoxes(std::vector<LabelledBox>{}), util::ContractError);
}

}  // namespace
}  // namespace beesim::stats
