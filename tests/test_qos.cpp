// Multi-tenant QoS suite (DESIGN.md §2.8): token bucket, borrow ledger,
// manager admission/deferral, write-path integration, fault interplay,
// token-conservation property, and the --jobs invariance contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "cli/commands.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "harness/campaign.hpp"
#include "harness/concurrent.hpp"
#include "harness/executor.hpp"
#include "harness/protocol.hpp"
#include "harness/run.hpp"
#include "ior/options.hpp"
#include "qos/borrow.hpp"
#include "qos/manager.hpp"
#include "qos/token_bucket.hpp"
#include "sim/fluid.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim {
namespace {

using namespace beesim::util::literals;

constexpr double kMiBd = static_cast<double>(util::kMiB);

// -- TokenBucket -------------------------------------------------------------

TEST(TokenBucket, StartsFullAndAdmitsUpToBurst) {
  qos::TokenBucket bucket(10.0, 4_MiB);
  EXPECT_DOUBLE_EQ(bucket.tokens(), 4.0 * kMiBd);
  EXPECT_TRUE(bucket.admissible(4_MiB));
  bucket.consume(4.0 * kMiBd);
  EXPECT_FALSE(bucket.admissible(1_MiB));
}

TEST(TokenBucket, RefillAccruesAtRateAndOverflowIsExtractable) {
  qos::TokenBucket bucket(10.0, 4_MiB);  // 10 MiB/s
  bucket.consume(4.0 * kMiBd);           // empty
  bucket.refill(0.2);                    // +2 MiB
  EXPECT_NEAR(bucket.tokens(), 2.0 * kMiBd, 1.0);
  EXPECT_DOUBLE_EQ(bucket.takeOverflow(), 0.0);  // below burst: nothing
  bucket.refill(1.0);                            // +8 MiB -> 10 > burst 4
  const double over = bucket.takeOverflow();
  EXPECT_NEAR(over, 6.0 * kMiBd, 1.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(), 4.0 * kMiBd);
}

TEST(TokenBucket, RepeatedRefillAtSameTimeIsNoOp) {
  qos::TokenBucket bucket(10.0, 4_MiB);
  bucket.consume(4.0 * kMiBd);
  bucket.refill(1.0);
  const double once = bucket.tokens();
  bucket.refill(1.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(), once);
}

TEST(TokenBucket, AdmissionNeedIsCappedAtBurst) {
  qos::TokenBucket bucket(10.0, 4_MiB);
  EXPECT_DOUBLE_EQ(bucket.admissionNeed(1_MiB), 1.0 * kMiBd);
  // A jumbo chunk only needs a full bucket (spend-ahead)...
  EXPECT_DOUBLE_EQ(bucket.admissionNeed(64_MiB), 4.0 * kMiBd);
  EXPECT_TRUE(bucket.admissible(64_MiB));
  bucket.consume(64.0 * kMiBd);
  // ...and the resulting debt throttles everything after it.
  EXPECT_LT(bucket.tokens(), 0.0);
  EXPECT_FALSE(bucket.admissible(1_MiB));
}

TEST(TokenBucket, TimeUntilAdmissibleMatchesRate) {
  qos::TokenBucket bucket(10.0, 4_MiB);
  bucket.consume(4.0 * kMiBd);  // empty at t=0
  EXPECT_NEAR(bucket.timeUntilAdmissible(2_MiB), 0.2, 1e-9);
  EXPECT_NEAR(bucket.timeUntilAdmissible(64_MiB), 0.4, 1e-9);  // need = burst
  bucket.refill(0.4);
  EXPECT_DOUBLE_EQ(bucket.timeUntilAdmissible(64_MiB), 0.0);
}

TEST(TokenBucket, InvalidParametersThrow) {
  EXPECT_THROW(qos::TokenBucket(0.0, 1_MiB), util::ContractError);
  EXPECT_THROW(qos::TokenBucket(-1.0, 1_MiB), util::ContractError);
  EXPECT_THROW(qos::TokenBucket(std::numeric_limits<double>::quiet_NaN(), 1_MiB),
               util::ContractError);
  EXPECT_THROW(qos::TokenBucket(10.0, 0), util::ContractError);
}

// -- BorrowLedger ------------------------------------------------------------

TEST(BorrowLedger, DonationIsCappedPerLender) {
  qos::BorrowLedger ledger;
  const auto a = ledger.addApp();
  EXPECT_DOUBLE_EQ(ledger.donate(a, 10.0, 4.0), 4.0);  // cap bites
  EXPECT_DOUBLE_EQ(ledger.donate(a, 10.0, 4.0), 0.0);  // already at cap
  EXPECT_DOUBLE_EQ(ledger.poolBytes(), 4.0);
  EXPECT_DOUBLE_EQ(ledger.contribution(a), 4.0);
}

TEST(BorrowLedger, DrawSkipsSelfAndDepletesLendersInAscendingOrder) {
  qos::BorrowLedger ledger;
  const auto a = ledger.addApp();
  const auto b = ledger.addApp();
  const auto c = ledger.addApp();
  ledger.donate(a, 3.0, 10.0);
  ledger.donate(b, 3.0, 10.0);
  ledger.donate(c, 3.0, 10.0);
  // b draws 4: takes all of a's 3 first, then 1 from c; never its own 3.
  EXPECT_DOUBLE_EQ(ledger.draw(b, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(ledger.contribution(a), 0.0);
  EXPECT_DOUBLE_EQ(ledger.contribution(b), 3.0);
  EXPECT_DOUBLE_EQ(ledger.contribution(c), 2.0);
}

TEST(BorrowLedger, DrawIsBoundedByOthersSpares) {
  qos::BorrowLedger ledger;
  const auto a = ledger.addApp();
  const auto b = ledger.addApp();
  ledger.donate(a, 2.0, 10.0);
  ledger.donate(b, 5.0, 10.0);
  EXPECT_DOUBLE_EQ(ledger.draw(b, 100.0), 2.0);  // only a's spares
  EXPECT_DOUBLE_EQ(ledger.poolBytes(), 5.0);     // b's own still pooled
}

TEST(BorrowLedger, ReclaimReturnsOnlyOwnUndrawnContribution) {
  qos::BorrowLedger ledger;
  const auto a = ledger.addApp();
  const auto b = ledger.addApp();
  ledger.donate(a, 4.0, 10.0);
  ledger.donate(b, 1.0, 10.0);
  EXPECT_DOUBLE_EQ(ledger.reclaim(a, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(ledger.reclaim(a, 3.0), 1.0);  // only 1 left
  EXPECT_DOUBLE_EQ(ledger.reclaim(a, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ledger.poolBytes(), 1.0);  // b untouched
}

// -- QosManager --------------------------------------------------------------

qos::QosPolicy enabledPolicy(bool borrow = false) {
  qos::QosPolicy policy;
  policy.enabled = true;
  policy.borrow = borrow;
  return policy;
}

TEST(QosManager, RegistrationValidatesSpecsAndNodeOwnership) {
  sim::FluidSimulator fluid;
  qos::QosManager manager(fluid, enabledPolicy());
  qos::QosAppSpec bad;
  bad.rate = 0.0;
  EXPECT_THROW(manager.registerApp(bad, {0}), util::ConfigError);
  bad.rate = std::numeric_limits<double>::infinity();
  EXPECT_THROW(manager.registerApp(bad, {0}), util::ConfigError);
  bad.rate = 10.0;
  bad.sloRate = -1.0;
  EXPECT_THROW(manager.registerApp(bad, {0}), util::ConfigError);

  qos::QosAppSpec good;
  good.rate = 10.0;
  EXPECT_EQ(manager.registerApp(good, {0, 1}), 0u);
  // A node cannot belong to two applications.
  EXPECT_THROW(manager.registerApp(good, {1}), util::ConfigError);
  // burst defaults to one second at the reserved rate.
  EXPECT_EQ(manager.appSpec(0).burst, static_cast<util::Bytes>(10.0 * kMiBd));
}

TEST(QosManager, UnmanagedNodesPassThrough) {
  sim::FluidSimulator fluid;
  qos::QosManager manager(fluid, enabledPolicy());
  qos::QosAppSpec spec;
  spec.rate = 1.0;
  manager.registerApp(spec, {0});
  EXPECT_TRUE(manager.admitChunk(99, 1_GiB, nullptr));
  EXPECT_DOUBLE_EQ(manager.stats().tokensIssued, 0.0);
}

TEST(QosManager, DefersBeyondBurstAndResumesAtTheRefillTime) {
  sim::FluidSimulator fluid;
  qos::QosManager manager(fluid, enabledPolicy());
  qos::QosAppSpec spec;
  spec.rate = 1.0;  // 1 MiB/s
  spec.burst = 4_MiB;
  manager.registerApp(spec, {0});

  EXPECT_TRUE(manager.admitChunk(0, 3_MiB, nullptr));  // 1 MiB left
  int resumed = 0;
  util::Seconds resumedAt = -1.0;
  EXPECT_FALSE(manager.admitChunk(0, 2_MiB, [&] {
    ++resumed;
    resumedAt = fluid.now();
  }));
  EXPECT_EQ(manager.waitingChunks(0), 1u);
  fluid.run();
  EXPECT_EQ(resumed, 1);
  EXPECT_EQ(manager.waitingChunks(0), 0u);
  // Deficit 1 MiB at 1 MiB/s: the wake fires ~1 virtual second later.
  EXPECT_NEAR(resumedAt, 1.0, 0.01);
  EXPECT_NEAR(manager.stats().throttleSeconds, 1.0, 0.01);
  EXPECT_EQ(manager.stats().deferrals, 1u);
  EXPECT_DOUBLE_EQ(manager.stats().tokensIssued, 5.0 * kMiBd);
}

TEST(QosManager, WaitersResumeInFifoOrderWithoutOvertaking) {
  sim::FluidSimulator fluid;
  qos::QosManager manager(fluid, enabledPolicy());
  qos::QosAppSpec spec;
  spec.rate = 10.0;
  spec.burst = 2_MiB;
  manager.registerApp(spec, {0});

  EXPECT_TRUE(manager.admitChunk(0, 2_MiB, nullptr));  // drain the bucket
  std::vector<int> order;
  EXPECT_FALSE(manager.admitChunk(0, 2_MiB, [&] { order.push_back(1); }));
  // The small chunk would fit sooner, but FIFO forbids overtaking.
  EXPECT_FALSE(manager.admitChunk(0, 1_MiB, [&] { order.push_back(2); }));
  fluid.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(QosManager, BorrowCoversADeficitTheOwnBucketCannot) {
  // Lender app0 (deep idle bucket) + over-subscribed app1.  After a jumbo
  // spend-ahead, app1's next chunk is only admissible synchronously when
  // reclaim + borrow cover the debt.
  for (const bool borrow : {false, true}) {
    sim::FluidSimulator fluid;
    qos::QosManager manager(fluid, enabledPolicy(borrow));
    qos::QosAppSpec lender;
    lender.rate = 10.0;
    lender.burst = 100_MiB;
    qos::QosAppSpec busy;
    busy.rate = 10.0;
    busy.burst = 10_MiB;
    manager.registerApp(lender, {0});
    manager.registerApp(busy, {1});

    bool admitted = false;
    fluid.engine().schedule(1.0, [&] {
      // Jumbo spend-ahead: need = burst (10 MiB), bucket full -> admitted,
      // balance drops to -10 MiB.
      EXPECT_TRUE(manager.admitChunk(1, 20_MiB, nullptr));
      EXPECT_NEAR(manager.tokens(1), -10.0 * kMiBd, 1.0);
      // Deficit 20 MiB: own refill spares (reclaim, 10 MiB donated at t=1)
      // plus the lender's pool (10 MiB accrued over [0,1]) cover it -- but
      // only when borrowing is on.
      admitted = manager.admitChunk(1, 10_MiB, [] {});
    });
    fluid.run();
    EXPECT_EQ(admitted, borrow);
    if (borrow) {
      EXPECT_NEAR(manager.stats().tokensReclaimed, 10.0 * kMiBd, 1.0);
      EXPECT_NEAR(manager.stats().tokensBorrowed, 10.0 * kMiBd, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(manager.stats().tokensBorrowed, 0.0);
      EXPECT_DOUBLE_EQ(manager.stats().tokensReclaimed, 0.0);
    }
  }
}

TEST(QosManager, DeterministicGivenTheSameEventSequence) {
  auto runOnceWith = [](std::uint64_t seed) {
    sim::FluidSimulator fluid;
    qos::QosManager manager(fluid, enabledPolicy(true));
    qos::QosAppSpec spec;
    spec.rate = 5.0;
    spec.burst = 8_MiB;
    manager.registerApp(spec, {0});
    manager.registerApp(spec, {1});
    util::Rng rng(seed);
    for (int i = 0; i < 40; ++i) {
      const auto node = static_cast<std::size_t>(rng.uniformInt(0, 1));
      const auto bytes = static_cast<util::Bytes>(rng.uniformInt(1, 4)) * 1_MiB;
      const double at = 0.1 * static_cast<double>(rng.uniformInt(0, 100));
      fluid.engine().schedule(at, [&manager, node, bytes] {
        manager.admitChunk(node, bytes, [] {});
      });
    }
    fluid.run();
    return manager.stats();
  };
  const auto a = runOnceWith(77);
  const auto b = runOnceWith(77);
  EXPECT_DOUBLE_EQ(a.tokensIssued, b.tokensIssued);
  EXPECT_DOUBLE_EQ(a.tokensBorrowed, b.tokensBorrowed);
  EXPECT_DOUBLE_EQ(a.tokensReclaimed, b.tokensReclaimed);
  EXPECT_EQ(a.deferrals, b.deferrals);
  EXPECT_DOUBLE_EQ(a.throttleSeconds, b.throttleSeconds);
}

// Property: tokens are conserved.  Per app, everything issued fits inside
// the initial burst plus the rate integral plus what was borrowed (reclaims
// return the app's own donations, which the rate integral already covers).
TEST(QosProperty, IssuedBoundedByBurstPlusAccrualPlusBorrowed) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    sim::FluidSimulator fluid;
    qos::QosManager manager(fluid, enabledPolicy(true));
    util::Rng rng(seed);
    const std::size_t apps = 3;
    for (std::size_t a = 0; a < apps; ++a) {
      qos::QosAppSpec spec;
      spec.rate = static_cast<double>(rng.uniformInt(2, 20));
      spec.burst = static_cast<util::Bytes>(rng.uniformInt(1, 16)) * 1_MiB;
      manager.registerApp(spec, {a});
    }
    for (int i = 0; i < 120; ++i) {
      const auto node = static_cast<std::size_t>(rng.uniformInt(0, 2));
      const auto bytes = static_cast<util::Bytes>(rng.uniformInt(1, 8)) * 1_MiB;
      const double at = 0.05 * static_cast<double>(rng.uniformInt(0, 400));
      fluid.engine().schedule(at, [&manager, node, bytes] {
        manager.admitChunk(node, bytes, [] {});
      });
    }
    fluid.run();
    const util::Seconds horizon = fluid.now();
    for (std::size_t a = 0; a < apps; ++a) {
      // Every deferred chunk was eventually admitted: no waiter leaks.
      EXPECT_EQ(manager.waitingChunks(a), 0u) << "seed " << seed << " app " << a;
      const auto& spec = manager.appSpec(a);
      const auto& stats = manager.appStats(a);
      // One max-size chunk of spend-ahead debt may be outstanding at the
      // end (a jumbo admission drives the balance negative by at most
      // chunk - burst); everything else is conserved.
      const double bound = static_cast<double>(spec.burst) +
                           spec.rate * kMiBd * horizon + stats.borrowed +
                           8.0 * kMiBd + 1.0;
      EXPECT_LE(stats.issued, bound) << "seed " << seed << " app " << a;
    }
  }
}

// -- Write-path integration (FileSystem + harness) ---------------------------

harness::RunConfig smallRun(util::Bytes total = 512_MiB) {
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  config.fs.defaultStripe.stripeCount = 4;
  config.job = ior::IorJob::onFirstNodes(4, 8);
  config.ior.blockSize = ior::blockSizeForTotal(total, config.job.ranks());
  return config;
}

TEST(QosFileSystem, ThrottledRunTracksTheReservedRate) {
  // Total is kept large relative to the one-second default burst so the
  // burst's head start cannot dominate the achieved rate.
  auto config = smallRun(2_GiB);
  const auto unmanaged = harness::runOnce(config, 42);
  config.qos.enabled = true;
  config.qos.rate = 200.0;
  const auto managed = harness::runOnce(config, 42);
  ASSERT_TRUE(managed.qosActive);
  EXPECT_FALSE(unmanaged.qosActive);
  // The unmanaged run is far above the reservation; the managed one tracks
  // it (the initial burst lets the achieved rate sit slightly above).
  EXPECT_GT(unmanaged.ior.bandwidth, 2.0 * config.qos.rate);
  EXPECT_LT(managed.ior.bandwidth, 1.35 * config.qos.rate);
  EXPECT_GT(managed.ior.bandwidth, 0.8 * config.qos.rate);
  EXPECT_GT(managed.qos.deferrals, 0u);
  EXPECT_GT(managed.qos.throttleSeconds, 0.0);
  // Exactly every written byte was charged once.
  EXPECT_DOUBLE_EQ(managed.qos.tokensIssued,
                   static_cast<double>(managed.ior.totalBytes));
}

TEST(QosFileSystem, GenerousReservationDoesNotThrottle) {
  auto config = smallRun();
  const auto unmanaged = harness::runOnce(config, 42);
  config.qos.enabled = true;
  config.qos.rate = 50000.0;  // far above what the system can deliver
  const auto managed = harness::runOnce(config, 42);
  // Identical bandwidth: admission always succeeds synchronously, so the
  // flow schedule is untouched.
  EXPECT_DOUBLE_EQ(managed.ior.bandwidth, unmanaged.ior.bandwidth);
  EXPECT_EQ(managed.qos.deferrals, 0u);
  EXPECT_EQ(managed.qos.sloViolations, 1u);  // 50 GB/s SLO is unsatisfiable
}

TEST(QosFileSystem, ReadsAreNotCharged) {
  // The buckets govern write bandwidth only (the paper's contention story is
  // about writes): a read-phase run under QoS spends no tokens and is not
  // throttled.
  auto config = smallRun();
  config.ior.operation = ior::Operation::kRead;
  const auto unmanaged = harness::runOnce(config, 7);
  config.qos.enabled = true;
  config.qos.rate = 50.0;  // would be a brutal throttle if reads were charged
  const auto record = harness::runOnce(config, 7);
  ASSERT_TRUE(record.qosActive);
  EXPECT_DOUBLE_EQ(record.qos.tokensIssued, 0.0);
  EXPECT_EQ(record.qos.deferrals, 0u);
  EXPECT_DOUBLE_EQ(record.ior.bandwidth, unmanaged.ior.bandwidth);
}

TEST(QosFaultInteraction, RetryLadderNeverDoubleSpendsTokens) {
  // The target under slot 0 goes down while its 512 MiB chunk is in flight
  // and recovers before the retry check: the chunk times out, retries, and
  // is rewritten in full.  Tokens must be charged exactly once per logical
  // byte -- the re-issue rides the original admission.
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  beegfs::BeegfsParams params;
  params.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
  params.faults.ioTimeout = 0.2;
  params.faults.backoffBase = 0.3;  // first retry check lands after recovery
  beegfs::Deployment deployment(fluid, cluster, params, util::Rng(1));
  beegfs::FileSystem fs(deployment, util::Rng(2));

  qos::QosManager manager(fluid, enabledPolicy());
  qos::QosAppSpec spec;
  spec.rate = 200.0;
  spec.burst = 600_MiB;  // slot 0 admits at t=0, slot 1 defers (throttled)
  manager.registerApp(spec, {0});
  fs.setQosManager(&manager);

  faults::FaultInjector injector(deployment, faults::parseSchedule("off:t0@0.05;on:t0@0.4"));
  injector.arm();

  const auto handle = fs.createPinned("/qos-victim", {0, 4}, 512_KiB);
  bool done = false;
  fs.writeAsync(0, handle, 0, 1_GiB, 8.0, [&](util::Seconds) { done = true; });
  fluid.run();

  ASSERT_TRUE(done);
  const auto& stats = fs.faultStats();
  EXPECT_FALSE(stats.aborted);
  // The ladder really ran: timeout -> retry -> full chunk rewrite...
  EXPECT_GE(stats.timeouts, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.bytesRewritten, 512_MiB);
  // ...while the app was genuinely throttled (slot 1's chunk waited)...
  EXPECT_GE(manager.stats().deferrals, 1u);
  // ...yet issued tokens cover the logical gigabyte exactly once.
  EXPECT_DOUBLE_EQ(manager.stats().tokensIssued, static_cast<double>(1_GiB));
  EXPECT_EQ(manager.waitingChunks(0), 0u);
}

TEST(QosFaultInteraction, MirroredWritesChargeThePrimaryBytesOnce) {
  auto config = smallRun(256_MiB);
  config.fs.mirror.enabled = true;
  config.fs.defaultStripe.mirror = true;
  config.qos.enabled = true;
  config.qos.rate = 150.0;
  const auto record = harness::runOnce(config, 11);
  ASSERT_TRUE(record.mirrorActive);
  ASSERT_TRUE(record.qosActive);
  // Replication doubled the carried bytes, but tokens cover the logical
  // write once (server-side replica flows are not client admissions).
  EXPECT_GT(record.ior.mirror.bytesReplicated, 0u);
  EXPECT_DOUBLE_EQ(record.qos.tokensIssued,
                   static_cast<double>(record.ior.totalBytes));
}

// -- Concurrent harness + campaign plumbing ----------------------------------

std::vector<harness::AppSpec> twoTenants(util::Bytes perApp) {
  std::vector<harness::AppSpec> specs(2);
  specs[0].job = ior::IorJob{{0, 1}, 8};
  specs[1].job = ior::IorJob{{2, 3}, 8};
  for (auto& spec : specs) {
    spec.ior.blockSize = ior::blockSizeForTotal(perApp, spec.job.ranks());
  }
  return specs;
}

TEST(QosConcurrent, PerAppSpecsOverrideThePolicyDefault) {
  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  base.fs.defaultStripe.stripeCount = 4;
  base.qos.enabled = true;
  base.qos.rate = 100.0;
  auto specs = twoTenants(2_GiB);
  qos::QosAppSpec fast;
  fast.rate = 400.0;
  specs[1].qos = fast;
  const auto result = harness::runConcurrent(base, specs, 3);
  ASSERT_TRUE(result.qosActive);
  // The explicitly-provisioned tenant runs ~4x faster.
  EXPECT_GT(result.apps[1].bandwidth, 2.5 * result.apps[0].bandwidth);
  EXPECT_LT(result.apps[0].bandwidth, 1.35 * 100.0);
  EXPECT_LT(result.apps[1].bandwidth, 1.35 * 400.0);
}

TEST(QosConcurrent, PerAppSpecsRequireTheMasterSwitch) {
  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  auto specs = twoTenants(64_MiB);
  specs[0].qos = qos::QosAppSpec{100.0, 0, 0.0};
  EXPECT_THROW(harness::runConcurrent(base, specs, 3), util::ConfigError);
}

TEST(QosConcurrent, SloViolationsCountUnderProvisionedTenants) {
  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  base.fs.defaultStripe.stripeCount = 4;
  base.qos.enabled = true;
  base.qos.rate = 100.0;
  auto specs = twoTenants(1_GiB);
  // App 1 is promised an SLO its own throttle makes unreachable: the bucket
  // caps it near 100 MiB/s while the SLO demands 4000.
  qos::QosAppSpec lied;
  lied.rate = 100.0;
  lied.sloRate = 4000.0;
  specs[1].qos = lied;
  const auto result = harness::runConcurrent(base, specs, 3);
  ASSERT_TRUE(result.qosActive);
  EXPECT_EQ(result.qos.sloViolations, 1u);
}

TEST(QosConcurrent, ResultsAreJobsInvariant) {
  // QoS draws no randomness, so a QoS-enabled concurrent campaign must be
  // bitwise identical for any worker count (the PR 1 ordered-commit
  // contract).  CI runs this under --gtest_filter as its invariance step.
  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  base.fs.defaultStripe.stripeCount = 4;
  base.qos.enabled = true;
  base.qos.rate = 120.0;
  base.qos.borrow = true;
  auto runRep = [&](std::size_t rep) {
    auto specs = twoTenants(128_MiB);
    specs[1].startOffset = 0.5;
    return harness::runConcurrent(base, specs, 4000 + rep);
  };
  const auto serial = harness::parallelMap<harness::ConcurrentResult>(4, 1, runRep);
  const auto parallel = harness::parallelMap<harness::ConcurrentResult>(4, 4, runRep);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r].aggregateBandwidth, parallel[r].aggregateBandwidth);
    EXPECT_EQ(serial[r].qos.tokensIssued, parallel[r].qos.tokensIssued);
    EXPECT_EQ(serial[r].qos.tokensBorrowed, parallel[r].qos.tokensBorrowed);
    EXPECT_EQ(serial[r].qos.tokensReclaimed, parallel[r].qos.tokensReclaimed);
    EXPECT_EQ(serial[r].qos.deferrals, parallel[r].qos.deferrals);
    EXPECT_EQ(serial[r].qos.throttleSeconds, parallel[r].qos.throttleSeconds);
    for (std::size_t a = 0; a < serial[r].apps.size(); ++a) {
      EXPECT_EQ(serial[r].apps[a].bandwidth, parallel[r].apps[a].bandwidth);
    }
  }
}

TEST(QosCampaign, QosColumnsAreGatedAndJobsInvariant) {
  harness::CampaignEntry entry;
  entry.config = smallRun(128_MiB);
  entry.config.qos.enabled = true;
  entry.config.qos.rate = 200.0;
  harness::ProtocolOptions protocol;
  protocol.repetitions = 3;

  harness::ExecutorOptions serial;
  serial.jobs = 1;
  harness::ExecutorOptions parallel;
  parallel.jobs = 4;
  const auto a = harness::executeCampaign({entry}, protocol, 1234, nullptr, serial);
  const auto b = harness::executeCampaign({entry}, protocol, 1234, nullptr, parallel);
  for (const std::string metric :
       {"bandwidth_mibps", "qos_issued_mib", "qos_borrowed_mib", "qos_reclaimed_mib",
        "qos_deferrals", "qos_throttle_seconds", "qos_slo_violations"}) {
    EXPECT_EQ(a.metric(metric, {}), b.metric(metric, {})) << metric;
  }

  // With QoS off the columns must not exist at all (golden-bytes contract);
  // asking for one is then a contract violation, same as any unknown metric.
  entry.config.qos = qos::QosPolicy{};
  const auto off = harness::executeCampaign({entry}, protocol, 1234, nullptr, serial);
  EXPECT_THROW(off.metric("qos_issued_mib", {}), util::ContractError);
}

// -- CLI flag plumbing -------------------------------------------------------

int runCliCapture(std::vector<std::string> argv, std::string* out = nullptr) {
  std::ostringstream o;
  std::ostringstream e;
  const int code = cli::runCli(argv, o, e);
  if (out) *out = o.str();
  return code;
}

TEST(QosCli, KnobsWithoutMasterSwitchAreRejected) {
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--qos-rate", "100"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--qos-burst", "64m"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--qos-borrow"}), 0);
  EXPECT_NE(runCliCapture({"concurrent", "--apps", "2", "--qos-rate", "100"}), 0);
}

TEST(QosCli, MasterSwitchRequiresARate) {
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--qos"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--qos", "--qos-rate", "0"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--qos", "--qos-rate", "nan"}), 0);
  EXPECT_NE(
      runCliCapture({"run", "--nodes", "2", "--qos", "--qos-rate", "100", "--qos-burst", "0"}),
      0);
}

TEST(QosCli, RunAndConcurrentReportQosTotals) {
  std::string out;
  ASSERT_EQ(runCliCapture({"run", "--nodes", "2", "--reps", "1", "--total", "256m",
                           "--qos", "--qos-rate", "100"},
                          &out),
            0);
  EXPECT_NE(out.find("qos (totals over 1 reps)"), std::string::npos);
  EXPECT_NE(out.find("issued="), std::string::npos);
  ASSERT_EQ(runCliCapture({"concurrent", "--apps", "2", "--nodes-per-app", "2", "--reps",
                           "1", "--total", "256m", "--qos", "--qos-rate", "100",
                           "--qos-borrow"},
                          &out),
            0);
  EXPECT_NE(out.find("qos (totals over 1 reps)"), std::string::npos);
}

}  // namespace
}  // namespace beesim
