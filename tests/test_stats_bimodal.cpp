#include "stats/bimodal.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::stats {
namespace {

std::vector<double> gaussianCloud(util::Rng& rng, double mean, double sd, int n) {
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(mean, sd);
  return xs;
}

TEST(Bimodal, TwoWellSeparatedCloudsDetected) {
  // The Fig. 6a situation: (1,3) runs near 1460 MiB/s, (0,4)-ish runs near
  // 1100, same stripe count.
  util::Rng rng(1);
  auto xs = gaussianCloud(rng, 1100.0, 30.0, 60);
  const auto upper = gaussianCloud(rng, 1460.0, 30.0, 40);
  xs.insert(xs.end(), upper.begin(), upper.end());

  const auto result = twoMeansSplit(xs);
  EXPECT_NEAR(result.lowerMean, 1100.0, 20.0);
  EXPECT_NEAR(result.upperMean, 1460.0, 20.0);
  EXPECT_EQ(result.lowerCount, 60u);
  EXPECT_EQ(result.upperCount, 40u);
  EXPECT_GT(result.separation, 2.0);
  EXPECT_GT(result.varianceExplained, 0.9);
  EXPECT_TRUE(isBimodal(result, xs.size()));
}

TEST(Bimodal, SingleGaussianNotBimodal) {
  util::Rng rng(2);
  const auto xs = gaussianCloud(rng, 2200.0, 80.0, 100);
  const auto result = twoMeansSplit(xs);
  EXPECT_FALSE(isBimodal(result, xs.size()));
  EXPECT_LT(result.varianceExplained, 0.85);
}

TEST(Bimodal, TinyMinorityModeRejectedByModeFraction) {
  util::Rng rng(3);
  auto xs = gaussianCloud(rng, 1000.0, 10.0, 97);
  const auto outliers = gaussianCloud(rng, 2000.0, 10.0, 3);
  xs.insert(xs.end(), outliers.begin(), outliers.end());
  const auto result = twoMeansSplit(xs);
  // Strong separation, but only 3% in the upper mode.
  EXPECT_FALSE(isBimodal(result, xs.size(), 0.15, 2.0));
  EXPECT_TRUE(isBimodal(result, xs.size(), 0.01, 2.0));
}

TEST(Bimodal, ConstantSampleIsDegenerate) {
  const std::vector<double> xs{5.0, 5.0, 5.0, 5.0};
  const auto result = twoMeansSplit(xs);
  EXPECT_DOUBLE_EQ(result.separation, 0.0);
  EXPECT_FALSE(isBimodal(result, xs.size()));
}

TEST(Bimodal, SplitPointSitsBetweenModes) {
  util::Rng rng(4);
  auto xs = gaussianCloud(rng, 10.0, 0.5, 30);
  const auto upper = gaussianCloud(rng, 20.0, 0.5, 30);
  xs.insert(xs.end(), upper.begin(), upper.end());
  const auto result = twoMeansSplit(xs);
  EXPECT_GT(result.splitPoint, 12.0);
  EXPECT_LT(result.splitPoint, 18.0);
}

TEST(Bimodal, NeedsAtLeastFourPoints) {
  EXPECT_THROW(twoMeansSplit(std::vector<double>{1.0, 2.0, 3.0}), util::ContractError);
  EXPECT_THROW(isBimodal(BimodalityResult{}, 0), util::ContractError);
}

TEST(Bimodal, DescribeMentionsModes) {
  const std::vector<double> xs{1.0, 1.1, 9.0, 9.1};
  const auto text = twoMeansSplit(xs).describe();
  EXPECT_NE(text.find("modes"), std::string::npos);
  EXPECT_NE(text.find("separation"), std::string::npos);
}

}  // namespace
}  // namespace beesim::stats
