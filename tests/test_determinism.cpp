// End-to-end determinism and conservation properties.
//
// The paper's methodology hinges on reproducible, comparable runs; in the
// simulation this must be *exact*: the same seed yields bit-identical
// campaigns, and no byte is created or lost anywhere in the fluid model.
#include <gtest/gtest.h>

#include <numeric>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "harness/campaign.hpp"
#include "harness/concurrent.hpp"
#include "ior/runner.hpp"
#include "stats/summary.hpp"
#include "topology/plafrim.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim {
namespace {

using namespace beesim::util::literals;

harness::RunConfig smallConfig(unsigned count) {
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  config.fs.defaultStripe.stripeCount = count;
  config.job = ior::IorJob::onFirstNodes(4, 8);
  config.ior.blockSize = ior::blockSizeForTotal(4_GiB, config.job.ranks());
  return config;
}

TEST(Determinism, CampaignsAreBitReproducible) {
  std::vector<harness::CampaignEntry> entries;
  for (const unsigned count : {2u, 4u, 8u}) {
    harness::CampaignEntry entry;
    entry.config = smallConfig(count);
    entry.factors["count"] = std::to_string(count);
    entries.push_back(std::move(entry));
  }
  harness::ProtocolOptions options;
  options.repetitions = 5;
  const auto a = harness::executeCampaign(entries, options, 777);
  const auto b = harness::executeCampaign(entries, options, 777);
  ASSERT_EQ(a.size(), b.size());
  const auto bwA = a.metric("bandwidth_mibps");
  const auto bwB = b.metric("bandwidth_mibps");
  for (std::size_t i = 0; i < bwA.size(); ++i) EXPECT_DOUBLE_EQ(bwA[i], bwB[i]);
}

TEST(Determinism, DifferentSeedsProduceDifferentCampaigns) {
  std::vector<harness::CampaignEntry> entries(1);
  entries[0].config = smallConfig(4);
  harness::ProtocolOptions options;
  options.repetitions = 5;
  const auto a = harness::executeCampaign(entries, options, 1);
  const auto b = harness::executeCampaign(entries, options, 2);
  const auto bwA = a.metric("bandwidth_mibps");
  const auto bwB = b.metric("bandwidth_mibps");
  int equal = 0;
  for (std::size_t i = 0; i < bwA.size(); ++i) {
    if (bwA[i] == bwB[i]) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Determinism, ConcurrentRunsAreReproducible) {
  auto base = smallConfig(4);
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 8);
  std::vector<harness::AppSpec> apps(2);
  for (int a = 0; a < 2; ++a) {
    apps[static_cast<std::size_t>(a)].job.ppn = 8;
    for (std::size_t n = 0; n < 4; ++n) {
      apps[static_cast<std::size_t>(a)].job.nodeIds.push_back(
          static_cast<std::size_t>(a) * 4 + n);
    }
    apps[static_cast<std::size_t>(a)].ior.blockSize =
        ior::blockSizeForTotal(4_GiB, apps[static_cast<std::size_t>(a)].job.ranks());
  }
  const auto r1 = harness::runConcurrent(base, apps, 99);
  const auto r2 = harness::runConcurrent(base, apps, 99);
  EXPECT_DOUBLE_EQ(r1.aggregateBandwidth, r2.aggregateBandwidth);
  EXPECT_EQ(r1.sharedTargets, r2.sharedTargets);
  for (std::size_t a = 0; a < 2; ++a) {
    EXPECT_DOUBLE_EQ(r1.apps[a].bandwidth, r2.apps[a].bandwidth);
    EXPECT_EQ(r1.apps[a].targetsUsed, r2.apps[a].targetsUsed);
  }
}

TEST(Determinism, RunsUnaffectedByOtherRunsInTheProcess) {
  // Fresh-state guarantee: a run's result must not depend on how many runs
  // executed before it in the same process.
  const auto config = smallConfig(4);
  const auto alone = harness::runOnce(config, 5).ior.bandwidth;
  for (int i = 0; i < 3; ++i) harness::runOnce(config, 1000 + i);
  const auto after = harness::runOnce(config, 5).ior.bandwidth;
  EXPECT_DOUBLE_EQ(alone, after);
}

/// Conservation sweep: per-target byte accounting must add up to the total
/// written, for every stripe count and access pattern.
class ConservationTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ConservationTest, BytesLandExactlyOnce) {
  const unsigned count = GetParam();
  beegfs::BeegfsParams params;
  params.defaultStripe.stripeCount = count;
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  beegfs::Deployment deployment(fluid, cluster, params, util::Rng(3));
  beegfs::FileSystem fs(deployment, util::Rng(4));

  ior::IorOptions options;
  options.blockSize = ior::blockSizeForTotal(4_GiB, 32);
  options.segments = 2;
  options.blockSize /= 2;
  const auto result = ior::runIor(fs, ior::IorJob::onFirstNodes(4, 8), options);

  util::Bytes accounted = 0;
  for (std::size_t t = 0; t < cluster.targetCount(); ++t) {
    accounted += deployment.mgmt().target(t).used;
  }
  EXPECT_EQ(accounted, result.totalBytes);
  EXPECT_EQ(result.totalBytes, 4_GiB);

  // The per-target distribution is as even as striping allows (contiguous
  // region, aligned chunks): max - min <= one chunk per rank.
  util::Bytes minUsed = ~util::Bytes{0};
  util::Bytes maxUsed = 0;
  for (const auto t : result.targetsUsed) {
    const auto used = deployment.mgmt().target(t).used;
    minUsed = std::min(minUsed, used);
    maxUsed = std::max(maxUsed, used);
  }
  EXPECT_LE(maxUsed - minUsed, 32ULL * 512 * 1024);
}

INSTANTIATE_TEST_SUITE_P(Counts, ConservationTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(Conservation, BandwidthIsConsistentWithRankTimes) {
  const auto record = harness::runOnce(smallConfig(8), 11);
  const auto& r = record.ior;
  const double lastRank = *std::max_element(r.rankEnd.begin(), r.rankEnd.end());
  EXPECT_DOUBLE_EQ(lastRank, r.end);
  EXPECT_NEAR(r.bandwidth, util::toMiB(r.totalBytes) / (r.end - r.start), 1e-9);
}

}  // namespace
}  // namespace beesim
