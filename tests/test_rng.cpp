#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/error.hpp"

namespace beesim::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.bits(), b.bits());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitChildrenAreReproducible) {
  Rng parent1(7);
  Rng parent2(7);
  Rng childA1 = parent1.split();
  Rng childA2 = parent2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(childA1.bits(), childA2.bits());
}

TEST(Rng, SplitChildrenAreMutuallyIndependent) {
  Rng parent(7);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.bits() == c2.bits()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitNamedIsOrderIndependent) {
  Rng a(9);
  Rng b(9);
  (void)a.split();  // perturb a's split counter, not its named derivation
  Rng namedA = a.splitNamed(42);
  Rng namedB = b.splitNamed(42);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(namedA.bits(), namedB.bits());
}

TEST(Rng, Uniform01StaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumSq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LogNormalMedianIsMedian) {
  Rng rng(23);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.logNormalMedian(3.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 3.0, 0.1);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

/// Property sweep: sampling without replacement yields k distinct in-range
/// indices for many (n, k) combinations.
class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SampleWithoutReplacementTest, DistinctAndInRange) {
  const auto [n, k] = GetParam();
  Rng rng(41 + n * 131 + k);
  for (int rep = 0; rep < 20; ++rep) {
    const auto sample = rng.sampleWithoutReplacement(n, k);
    ASSERT_EQ(sample.size(), k);
    std::set<std::size_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), k);
    for (const auto idx : sample) EXPECT_LT(idx, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SampleWithoutReplacementTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{8, 1},
                                           std::pair<std::size_t, std::size_t>{8, 4},
                                           std::pair<std::size_t, std::size_t>{8, 8},
                                           std::pair<std::size_t, std::size_t>{24, 7},
                                           std::pair<std::size_t, std::size_t>{100, 99}));

TEST(Rng, SampleWithoutReplacementIsUniform) {
  // Every index of [0, 8) should be picked ~ k/n of the time.
  Rng rng(43);
  std::vector<int> hits(8, 0);
  const int reps = 40000;
  for (int i = 0; i < reps; ++i) {
    for (const auto idx : rng.sampleWithoutReplacement(8, 4)) ++hits[idx];
  }
  for (const int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / reps, 0.5, 0.02);
  }
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(47);
  EXPECT_THROW(rng.sampleWithoutReplacement(3, 4), ContractError);
}

}  // namespace
}  // namespace beesim::util
