#include "beegfs/stripe.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::beegfs {
namespace {

using namespace beesim::util::literals;

/// Brute-force reference: walk every chunk of the region.
std::vector<util::Bytes> bytesPerTargetBruteForce(const StripePattern& pattern,
                                                  util::Bytes offset, util::Bytes length) {
  std::vector<util::Bytes> per(pattern.stripeCount(), 0);
  const auto chunk = pattern.chunkSize();
  util::Bytes position = offset;
  const util::Bytes end = offset + length;
  while (position < end) {
    const auto chunkIndex = position / chunk;
    const auto chunkEnd = (chunkIndex + 1) * chunk;
    const auto piece = std::min(end, chunkEnd) - position;
    per[chunkIndex % pattern.stripeCount()] += piece;
    position += piece;
  }
  return per;
}

TEST(Stripe, SingleTargetGetsEverything) {
  const StripePattern pattern({5}, 512_KiB);
  const auto per = pattern.bytesPerTarget(0, 10_MiB);
  ASSERT_EQ(per.size(), 1u);
  EXPECT_EQ(per[0], 10_MiB);
}

TEST(Stripe, AlignedRegionSplitsEvenly) {
  const StripePattern pattern({0, 1, 2, 3}, 512_KiB);
  const auto per = pattern.bytesPerTarget(0, 8_MiB);  // 16 chunks, 4 each
  for (const auto bytes : per) EXPECT_EQ(bytes, 2_MiB);
}

TEST(Stripe, SubChunkRegionHitsOneTarget) {
  const StripePattern pattern({0, 1, 2}, 512_KiB);
  const auto per = pattern.bytesPerTarget(512_KiB + 100, 1000);
  EXPECT_EQ(per[0], 0u);
  EXPECT_EQ(per[1], 1000u);
  EXPECT_EQ(per[2], 0u);
}

TEST(Stripe, UnalignedEdgesAreCharged) {
  const StripePattern pattern({0, 1}, 1_MiB);
  // [0.5 MiB, 2.5 MiB): 0.5 on chunk0 (t0), 1.0 on chunk1 (t1), 0.5 on
  // chunk2 (t0).
  const auto per = pattern.bytesPerTarget(512_KiB, 2_MiB);
  EXPECT_EQ(per[0], 1_MiB);
  EXPECT_EQ(per[1], 1_MiB);
}

TEST(Stripe, SumAlwaysEqualsLength) {
  const StripePattern pattern({3, 1, 4, 0, 2}, 512_KiB);
  for (const util::Bytes offset : {util::Bytes{0}, util::Bytes{123456}, 5_MiB + 17}) {
    for (const util::Bytes length : {util::Bytes{1}, 512_KiB - 1, 512_KiB, 32_MiB + 9}) {
      const auto per = pattern.bytesPerTarget(offset, length);
      const auto sum = std::accumulate(per.begin(), per.end(), util::Bytes{0});
      EXPECT_EQ(sum, length);
    }
  }
}

TEST(Stripe, ZeroLengthIsAllZeros) {
  const StripePattern pattern({0, 1}, 512_KiB);
  const auto per = pattern.bytesPerTarget(7777, 0);
  EXPECT_EQ(per[0], 0u);
  EXPECT_EQ(per[1], 0u);
}

TEST(Stripe, TargetForChunkAndOffset) {
  const StripePattern pattern({7, 3, 9}, 1_MiB);
  EXPECT_EQ(pattern.targetForChunk(0), 7u);
  EXPECT_EQ(pattern.targetForChunk(1), 3u);
  EXPECT_EQ(pattern.targetForChunk(5), 9u);
  EXPECT_EQ(pattern.targetForOffset(0), 7u);
  EXPECT_EQ(pattern.targetForOffset(2_MiB + 5), 9u);
}

TEST(Stripe, InvalidConstructionThrows) {
  EXPECT_THROW(StripePattern({}, 512_KiB), util::ContractError);
  EXPECT_THROW(StripePattern({0, 1}, 0), util::ContractError);
  EXPECT_THROW(StripePattern({0, 1, 0}, 512_KiB), util::ContractError);  // duplicate
}

TEST(Stripe, DescribeListsTargets) {
  const StripePattern pattern({4, 5}, 512_KiB);
  const auto text = pattern.describe();
  EXPECT_NE(text.find("count=2"), std::string::npos);
  EXPECT_NE(text.find("4,5"), std::string::npos);
}

TEST(CountCongruent, KnownValues) {
  EXPECT_EQ(countCongruent(0, 9, 2, 0), 5u);  // 0,2,4,6,8
  EXPECT_EQ(countCongruent(0, 9, 2, 1), 5u);
  EXPECT_EQ(countCongruent(5, 5, 3, 2), 1u);  // 5 % 3 == 2
  EXPECT_EQ(countCongruent(5, 5, 3, 0), 0u);
  EXPECT_EQ(countCongruent(6, 5, 3, 0), 0u);  // empty interval
  EXPECT_EQ(countCongruent(0, 0, 4, 0), 1u);
}

TEST(CountCongruent, PartitionsTheInterval) {
  for (std::uint64_t m = 1; m <= 7; ++m) {
    std::uint64_t total = 0;
    for (std::uint64_t r = 0; r < m; ++r) total += countCongruent(13, 97, m, r);
    EXPECT_EQ(total, 97u - 13u + 1u);
  }
}

TEST(CountCongruent, ContractChecks) {
  EXPECT_THROW(countCongruent(0, 1, 0, 0), util::ContractError);
  EXPECT_THROW(countCongruent(0, 1, 3, 3), util::ContractError);
}

/// Property sweep: closed form == brute force on random regions.
class StripeRandomRegionTest : public ::testing::TestWithParam<int> {};

TEST_P(StripeRandomRegionTest, ClosedFormMatchesBruteForce) {
  util::Rng rng(500 + GetParam());
  const auto count = static_cast<std::size_t>(rng.uniformInt(1, 8));
  std::vector<std::size_t> targets;
  for (const auto t : rng.sampleWithoutReplacement(16, count)) targets.push_back(t);
  const util::Bytes chunk = 1ULL << rng.uniformInt(10, 21);  // 1 KiB .. 2 MiB
  const StripePattern pattern(targets, chunk);

  for (int rep = 0; rep < 10; ++rep) {
    const auto offset = static_cast<util::Bytes>(rng.uniformInt(0, 1 << 26));
    const auto length = static_cast<util::Bytes>(rng.uniformInt(1, 1 << 26));
    EXPECT_EQ(pattern.bytesPerTarget(offset, length),
              bytesPerTargetBruteForce(pattern, offset, length));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRegions, StripeRandomRegionTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace beesim::beegfs
