#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <limits>
#include <map>
#include <set>

#include "harness/campaign.hpp"
#include "harness/concurrent.hpp"
#include "harness/interference.hpp"
#include "harness/protocol.hpp"
#include "harness/run.hpp"
#include "harness/store.hpp"
#include "ior/options.hpp"
#include "topology/plafrim.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim::harness {
namespace {

using namespace beesim::util::literals;

RunConfig baseConfig(topo::Scenario scenario, std::size_t nodes, int ppn, unsigned count,
                     util::Bytes total = 8_GiB) {
  RunConfig config;
  config.cluster = topo::makePlafrim(scenario, nodes);
  config.fs.defaultStripe.stripeCount = count;
  config.job = ior::IorJob::onFirstNodes(nodes, ppn);
  config.ior.blockSize = ior::blockSizeForTotal(total, config.job.ranks());
  return config;
}

TEST(RunOnce, DeterministicGivenSeed) {
  const auto config = baseConfig(topo::Scenario::kEthernet10G, 2, 8, 4);
  const auto a = runOnce(config, 42);
  const auto b = runOnce(config, 42);
  EXPECT_DOUBLE_EQ(a.ior.bandwidth, b.ior.bandwidth);
  EXPECT_DOUBLE_EQ(a.environment.storage, b.environment.storage);
}

TEST(RunOnce, DifferentSeedsSampleDifferentEnvironments) {
  const auto config = baseConfig(topo::Scenario::kEthernet10G, 2, 8, 4);
  const auto a = runOnce(config, 1);
  const auto b = runOnce(config, 2);
  EXPECT_NE(a.environment.network, b.environment.network);
  EXPECT_NE(a.ior.bandwidth, b.ior.bandwidth);
}

TEST(RunOnce, PinnedTargetsAreHonoured) {
  auto config = baseConfig(topo::Scenario::kEthernet10G, 2, 8, 2);
  config.pinnedTargets = std::vector<std::size_t>{0, 4};
  const auto record = runOnce(config, 3);
  EXPECT_EQ(record.ior.targetsUsed, (std::vector<std::size_t>{0, 4}));
}

TEST(RunOnce, StartAtShiftsTheRunInTime) {
  auto config = baseConfig(topo::Scenario::kEthernet10G, 1, 8, 4);
  config.startAt = 500.0;
  const auto record = runOnce(config, 4);
  EXPECT_DOUBLE_EQ(record.ior.start, 500.0);
  EXPECT_GT(record.ior.end, 500.0);
}

TEST(Protocol, PlanCoversEveryRepetitionOnce) {
  util::Rng rng(1);
  ProtocolOptions options;
  options.repetitions = 10;
  const auto plan = buildProtocolPlan(3, options, rng);
  EXPECT_EQ(plan.size(), 30u);
  std::map<std::size_t, std::set<std::size_t>> seen;
  for (const auto& run : plan) seen[run.configIndex].insert(run.repetition);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(seen[c].size(), 10u);
}

TEST(Protocol, SeedsAreUnique) {
  util::Rng rng(2);
  ProtocolOptions options;
  options.repetitions = 50;
  const auto plan = buildProtocolPlan(4, options, rng);
  std::set<std::uint64_t> seeds;
  for (const auto& run : plan) seeds.insert(run.seed);
  EXPECT_EQ(seeds.size(), plan.size());
}

TEST(Protocol, BlocksAreShuffledButInternallyOrdered) {
  util::Rng rng(3);
  ProtocolOptions options;
  options.repetitions = 40;  // 40 runs, 4 blocks for one config
  options.blockSize = 10;
  const auto plan = buildProtocolPlan(1, options, rng);
  // Within a block of 10, repetitions are consecutive (the block was a
  // contiguous slice); across blocks the order is shuffled.
  std::vector<std::size_t> blockStarts;
  for (std::size_t i = 0; i < plan.size(); i += 10) {
    blockStarts.push_back(plan[i].repetition);
    for (std::size_t j = 1; j < 10; ++j) {
      EXPECT_EQ(plan[i + j].repetition, plan[i].repetition + j);
    }
  }
  EXPECT_FALSE(std::is_sorted(blockStarts.begin(), blockStarts.end()));
}

TEST(Protocol, WaitsSeparateBlocksInTime) {
  util::Rng rng(4);
  ProtocolOptions options;
  options.repetitions = 20;
  options.blockSize = 10;
  options.minWait = 60.0;
  options.maxWait = 1800.0;
  options.nominalRunDuration = 30.0;
  const auto plan = buildProtocolPlan(1, options, rng);
  // Gap between the last run of block 1 and first of block 2 must include a
  // wait in [60, 1800] on top of the nominal duration.
  const double gap = plan[10].systemTime - plan[9].systemTime;
  EXPECT_GE(gap, 30.0 + 60.0 - 1e-9);
  EXPECT_LE(gap, 30.0 + 1800.0 + 1e-9);
  // Within a block, runs are spaced by the nominal duration exactly.
  EXPECT_DOUBLE_EQ(plan[1].systemTime - plan[0].systemTime, 30.0);
}

TEST(Protocol, DeterministicGivenRngState) {
  util::Rng rngA(5);
  util::Rng rngB(5);
  const auto a = buildProtocolPlan(2, ProtocolOptions{}, rngA);
  const auto b = buildProtocolPlan(2, ProtocolOptions{}, rngB);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].configIndex, b[i].configIndex);
    EXPECT_DOUBLE_EQ(a[i].systemTime, b[i].systemTime);
  }
}

TEST(Protocol, InvalidOptionsThrow) {
  util::Rng rng(6);
  ProtocolOptions options;
  options.repetitions = 0;
  EXPECT_THROW(buildProtocolPlan(1, options, rng), util::ContractError);
  options = ProtocolOptions{};
  options.blockSize = 0;
  EXPECT_THROW(buildProtocolPlan(1, options, rng), util::ContractError);
  options = ProtocolOptions{};
  options.maxWait = 1.0;
  options.minWait = 2.0;
  EXPECT_THROW(buildProtocolPlan(1, options, rng), util::ContractError);
  EXPECT_THROW(buildProtocolPlan(0, ProtocolOptions{}, rng), util::ContractError);
}

TEST(Store, MetricFilteringAndGroupBy) {
  ResultStore store;
  for (int nodes : {1, 2}) {
    for (int rep = 0; rep < 3; ++rep) {
      ResultRow row;
      row.factors["nodes"] = std::to_string(nodes);
      row.factors["rep"] = std::to_string(rep);
      row.metrics["bw"] = 100.0 * nodes + rep;
      store.add(row);
    }
  }
  EXPECT_EQ(store.size(), 6u);
  EXPECT_EQ(store.metric("bw").size(), 6u);
  EXPECT_EQ(store.metric("bw", {{"nodes", "2"}}).size(), 3u);
  const auto groups = store.groupBy("nodes", "bw");
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at("1").size(), 3u);
  EXPECT_THROW(store.metric("missing"), util::ContractError);
}

TEST(Store, CsvExportContainsEverything) {
  ResultStore store;
  ResultRow row;
  row.factors["alpha"] = "x";
  row.metrics["bw"] = 1.5;
  store.add(row);
  const auto path = std::filesystem::temp_directory_path() / "beesim_store_test.csv";
  store.writeCsv(path);
  const auto data = util::readCsv(path);
  EXPECT_EQ(data.header, (std::vector<std::string>{"alpha", "bw"}));
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][0], "x");
  std::filesystem::remove(path);
}

TEST(Campaign, ProducesRepetitionsPerEntryWithAnnotations) {
  std::vector<CampaignEntry> entries;
  for (const unsigned count : {2u, 4u}) {
    CampaignEntry entry;
    entry.config = baseConfig(topo::Scenario::kEthernet10G, 2, 8, count, 2_GiB);
    entry.factors["count"] = std::to_string(count);
    entries.push_back(std::move(entry));
  }
  ProtocolOptions options;
  options.repetitions = 5;
  int annotated = 0;
  const auto store = executeCampaign(entries, options, 99,
                                     [&](const RunRecord&, ResultRow& row) {
                                       row.factors["tagged"] = "yes";
                                       ++annotated;
                                     });
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(annotated, 10);
  EXPECT_EQ(store.metric("bandwidth_mibps", {{"count", "4"}}).size(), 5u);
  for (const auto bw : store.metric("bandwidth_mibps")) EXPECT_GT(bw, 0.0);
}

TEST(Concurrent, AggregateFollowsEquationOne) {
  std::vector<ior::IorResult> apps(2);
  apps[0].start = 0.0;
  apps[0].end = 10.0;
  apps[0].totalBytes = 10_GiB;
  apps[1].start = 2.0;
  apps[1].end = 14.0;
  apps[1].totalBytes = 4_GiB;
  // Eq. 1: (10+4) GiB / (14 - 0) s.
  EXPECT_NEAR(aggregateBandwidth(apps), util::toMiB(14_GiB) / 14.0, 1e-9);
}

TEST(Concurrent, TwoAppsRunAndShareTheSystem) {
  auto base = baseConfig(topo::Scenario::kOmniPath100G, 16, 8, 8, 8_GiB);
  std::vector<AppSpec> apps(2);
  for (int a = 0; a < 2; ++a) {
    apps[a].job.ppn = 8;
    for (std::size_t n = 0; n < 8; ++n) apps[a].job.nodeIds.push_back(a * 8 + n);
    apps[a].ior.blockSize = ior::blockSizeForTotal(8_GiB, apps[a].job.ranks());
  }
  const auto result = runConcurrent(base, apps, 7);
  ASSERT_EQ(result.apps.size(), 2u);
  EXPECT_GT(result.aggregateBandwidth, 0.0);
  // Both striped over all 8 targets -> all targets shared.
  EXPECT_EQ(result.distinctTargets, 8u);
  EXPECT_EQ(result.sharedTargets, 8u);
  // Each app individually is slower than the aggregate.
  EXPECT_LT(result.apps[0].bandwidth, result.aggregateBandwidth);
}

TEST(Concurrent, DisjointPinnedTargetsDoNotCountAsShared) {
  auto base = baseConfig(topo::Scenario::kOmniPath100G, 16, 8, 2, 4_GiB);
  std::vector<AppSpec> apps(2);
  for (int a = 0; a < 2; ++a) {
    apps[a].job.ppn = 8;
    for (std::size_t n = 0; n < 8; ++n) apps[a].job.nodeIds.push_back(a * 8 + n);
    apps[a].ior.blockSize = ior::blockSizeForTotal(4_GiB, apps[a].job.ranks());
  }
  apps[0].pinnedTargets = std::vector<std::size_t>{0, 4};
  apps[1].pinnedTargets = std::vector<std::size_t>{1, 5};
  const auto result = runConcurrent(base, apps, 8);
  EXPECT_EQ(result.sharedTargets, 0u);
  EXPECT_EQ(result.distinctTargets, 4u);
}

TEST(Concurrent, SharedComputeNodesRejected) {
  auto base = baseConfig(topo::Scenario::kOmniPath100G, 8, 8, 4, 4_GiB);
  std::vector<AppSpec> apps(2);
  for (int a = 0; a < 2; ++a) {
    apps[a].job = ior::IorJob::onFirstNodes(4, 8);  // same nodes!
    apps[a].ior.blockSize = ior::blockSizeForTotal(4_GiB, apps[a].job.ranks());
  }
  EXPECT_THROW(runConcurrent(base, apps, 9), util::ConfigError);
}

TEST(Concurrent, StaggeredStartsRespectOffsets) {
  auto base = baseConfig(topo::Scenario::kOmniPath100G, 4, 8, 4, 2_GiB);
  std::vector<AppSpec> apps(2);
  apps[0].job = ior::IorJob::onFirstNodes(2, 8);
  apps[0].ior.blockSize = ior::blockSizeForTotal(2_GiB, apps[0].job.ranks());
  apps[1].job.nodeIds = {2, 3};
  apps[1].job.ppn = 8;
  apps[1].ior.blockSize = ior::blockSizeForTotal(2_GiB, apps[1].job.ranks());
  apps[1].startOffset = 3.0;
  const auto result = runConcurrent(base, apps, 10);
  EXPECT_DOUBLE_EQ(result.apps[1].start - result.apps[0].start, 3.0);
}

TEST(Interference, InjectorIssuesBursts) {
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 2);
  beegfs::Deployment deployment(fluid, cluster, beegfs::BeegfsParams{}, util::Rng(1));
  beegfs::FileSystem fs(deployment, util::Rng(2));

  InterferenceSpec spec;
  spec.node = 1;
  spec.targets = {0, 4};
  spec.meanBurstBytes = 256_MiB;
  spec.meanIdle = 2.0;
  spec.start = 0.0;
  spec.end = 60.0;
  const auto stats = injectInterference(fs, spec, util::Rng(3));
  fluid.run();
  EXPECT_GT(stats->burstsIssued, 5u);
  EXPECT_GT(stats->bytesIssued, 0u);
}

TEST(Interference, InvalidSpecsThrow) {
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 2);
  beegfs::Deployment deployment(fluid, cluster, beegfs::BeegfsParams{}, util::Rng(1));
  beegfs::FileSystem fs(deployment, util::Rng(2));
  InterferenceSpec spec;
  spec.targets = {};
  EXPECT_THROW(injectInterference(fs, spec, util::Rng(3)), util::ContractError);
  spec.targets = {0};
  spec.node = 99;
  EXPECT_THROW(injectInterference(fs, spec, util::Rng(3)), util::ContractError);
  spec.node = 0;
  spec.start = 10.0;
  spec.end = 5.0;
  EXPECT_THROW(injectInterference(fs, spec, util::Rng(3)), util::ContractError);
}

// Regression (PR 8): all apps with zero duration used to trip the
// BEESIM_ASSERT(elapsed > 0) inside util::bandwidth instead of reporting
// the window as empty.
TEST(Concurrent, AggregateOfZeroLengthWindowIsZero) {
  std::vector<ior::IorResult> apps(2);
  apps[0].start = 5.0;
  apps[0].end = 5.0;
  apps[1].start = 5.0;
  apps[1].end = 5.0;
  EXPECT_DOUBLE_EQ(aggregateBandwidth(apps), 0.0);
}

TEST(Concurrent, ZeroDurationAppsMixWithRealOnes) {
  // A degenerate instantaneous app widens neither the window nor the byte
  // count; Equation 1 still divides the real volume by the real window.
  std::vector<ior::IorResult> apps(2);
  apps[0].start = 5.0;
  apps[0].end = 5.0;
  apps[0].totalBytes = 0;
  apps[1].start = 5.0;
  apps[1].end = 7.0;
  apps[1].totalBytes = 2_GiB;
  EXPECT_DOUBLE_EQ(aggregateBandwidth(apps), 1024.0);
}

// Regression (PR 8): negative offsets used to be accepted and silently
// scheduled apps before base.startAt; non-finite ones hung the engine.
TEST(Concurrent, NegativeStartOffsetRejected) {
  auto base = baseConfig(topo::Scenario::kOmniPath100G, 4, 8, 4, 2_GiB);
  std::vector<AppSpec> apps(2);
  apps[0].job = ior::IorJob{{0, 1}, 8};
  apps[0].ior.blockSize = ior::blockSizeForTotal(1_GiB, apps[0].job.ranks());
  apps[1].job = ior::IorJob{{2, 3}, 8};
  apps[1].ior.blockSize = apps[0].ior.blockSize;
  apps[1].startOffset = -1.0;
  EXPECT_THROW(runConcurrent(base, apps, 7), util::ConfigError);
  apps[1].startOffset = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(runConcurrent(base, apps, 7), util::ConfigError);
  apps[1].startOffset = std::numeric_limits<double>::infinity();
  EXPECT_THROW(runConcurrent(base, apps, 7), util::ConfigError);
  // The valid path still runs (zero offset and a positive stagger).
  apps[1].startOffset = 2.0;
  const auto result = runConcurrent(base, apps, 7);
  EXPECT_NEAR(result.apps[1].start - result.apps[0].start, 2.0, 1e-9);
}

}  // namespace
}  // namespace beesim::harness
