#include "ior/runner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/allocation.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim::ior {
namespace {

using namespace beesim::util::literals;

/// Builds a noise-free PlaFRIM system ready for one run.
struct System {
  sim::FluidSimulator fluid;
  topo::ClusterConfig cluster;
  beegfs::Deployment deployment;
  beegfs::FileSystem fs;

  System(topo::Scenario scenario, std::size_t nodes, beegfs::BeegfsParams params = {})
      : cluster(stripNoise(topo::makePlafrim(scenario, nodes))),
        deployment(fluid, cluster, params, util::Rng(11)),
        fs(deployment, util::Rng(12)) {}

  static topo::ClusterConfig stripNoise(topo::ClusterConfig cfg) {
    cfg.network.serverLinkNoiseSigmaLog = 0.0;
    for (auto& host : cfg.hosts) {
      for (auto& target : host.targets) target.variability = topo::VariabilitySpec{};
    }
    return cfg;
  }
};

IorOptions optionsForTotal(util::Bytes total, int ranks) {
  IorOptions opts;
  opts.blockSize = blockSizeForTotal(total, ranks);
  return opts;
}

TEST(IorJob, RankPlacementIsBlockDistribution) {
  const auto job = IorJob::onFirstNodes(4, 8);
  EXPECT_EQ(job.ranks(), 32);
  EXPECT_EQ(job.nodeOfRank(0), 0u);
  EXPECT_EQ(job.nodeOfRank(7), 0u);
  EXPECT_EQ(job.nodeOfRank(8), 1u);
  EXPECT_EQ(job.nodeOfRank(31), 3u);
  EXPECT_THROW(job.nodeOfRank(32), util::ContractError);
}

TEST(IorJob, ValidationCatchesBadJobs) {
  IorJob job;
  EXPECT_THROW(job.validate(4), util::ConfigError);  // no nodes
  job = IorJob::onFirstNodes(2, 0);
  EXPECT_THROW(job.validate(4), util::ConfigError);  // ppn 0
  job = IorJob::onFirstNodes(2, 8);
  job.nodeIds = {0, 0};
  EXPECT_THROW(job.validate(4), util::ConfigError);  // duplicates
  job = IorJob::onFirstNodes(2, 8);
  job.nodeIds = {0, 9};
  EXPECT_THROW(job.validate(4), util::ConfigError);  // unknown node
}

TEST(IorRunner, SingleNodeScenario1MatchesAnchor) {
  System system(topo::Scenario::kEthernet10G, 1);
  const auto result =
      runIor(system.fs, IorJob::onFirstNodes(1, 8), optionsForTotal(32_GiB, 8));
  // Paper anchor: ~880 MiB/s from one node over 10 GbE.
  EXPECT_NEAR(result.bandwidth, 880.0, 50.0);
  EXPECT_EQ(result.totalBytes, 32_GiB);
  EXPECT_GT(result.metaTime, 0.0);
  EXPECT_EQ(result.rankEnd.size(), 8u);
}

TEST(IorRunner, EightNodesScenario1RoundRobinMatchesAnchor) {
  System system(topo::Scenario::kEthernet10G, 8);
  const auto result =
      runIor(system.fs, IorJob::onFirstNodes(8, 8), optionsForTotal(32_GiB, 64));
  // Paper anchor: ~1460 MiB/s for the (1,3) round-robin allocation.
  EXPECT_NEAR(result.bandwidth, 1460.0, 80.0);
  const core::Allocation alloc(result.targetsUsed, system.cluster);
  EXPECT_EQ(alloc.key(), "(1,3)");
}

TEST(IorRunner, PinnedBalancedAllocationReachesPeak) {
  System system(topo::Scenario::kEthernet10G, 8);
  const auto result = runIor(system.fs, IorJob::onFirstNodes(8, 8),
                             optionsForTotal(32_GiB, 64), std::vector<std::size_t>{0, 4});
  // Paper anchor: balanced placements reach ~2200 MiB/s.
  EXPECT_NEAR(result.bandwidth, 2200.0, 110.0);
}

TEST(IorRunner, BandwidthDefinitionIsBytesOverWallTime) {
  System system(topo::Scenario::kEthernet10G, 2);
  const auto result =
      runIor(system.fs, IorJob::onFirstNodes(2, 8), optionsForTotal(8_GiB, 16));
  EXPECT_NEAR(result.bandwidth,
              util::toMiB(result.totalBytes) / (result.end - result.start), 1e-9);
  for (const auto end : result.rankEnd) {
    EXPECT_GT(end, result.start);
    EXPECT_LE(end, result.end + 1e-9);
  }
}

TEST(IorRunner, SegmentsMoveTheSameTotal) {
  System oneSeg(topo::Scenario::kEthernet10G, 2);
  System fourSeg(topo::Scenario::kEthernet10G, 2);
  auto optsOne = optionsForTotal(8_GiB, 16);
  IorOptions optsFour;
  optsFour.segments = 4;
  optsFour.blockSize = blockSizeForTotal(8_GiB, 16) / 4;
  const auto r1 = runIor(oneSeg.fs, IorJob::onFirstNodes(2, 8), optsOne);
  const auto r4 = runIor(fourSeg.fs, IorJob::onFirstNodes(2, 8), optsFour);
  EXPECT_EQ(r1.totalBytes, r4.totalBytes);
  // Sequential segments add a little coordination slack but stay close.
  EXPECT_NEAR(r4.bandwidth, r1.bandwidth, 0.15 * r1.bandwidth);
}

TEST(IorRunner, FilePerProcessCreatesOneFilePerRank) {
  beegfs::BeegfsParams params;
  params.defaultStripe.stripeCount = 2;
  params.chooser = beegfs::ChooserKind::kRandom;
  System system(topo::Scenario::kEthernet10G, 2, params);
  IorOptions opts = optionsForTotal(4_GiB, 16);
  opts.pattern = AccessPattern::kFilePerProcess;
  const auto result = runIor(system.fs, IorJob::onFirstNodes(2, 8), opts);
  EXPECT_EQ(system.fs.fileCount(), 16u);
  EXPECT_EQ(result.totalBytes, 4_GiB);
  // Random striping over 16 files covers (nearly) all 8 targets.
  EXPECT_GE(result.targetsUsed.size(), 6u);
}

TEST(IorRunner, PinnedTargetsRejectedForFilePerProcess) {
  System system(topo::Scenario::kEthernet10G, 1);
  IorOptions opts = optionsForTotal(1_GiB, 8);
  opts.pattern = AccessPattern::kFilePerProcess;
  EXPECT_THROW(runIor(system.fs, IorJob::onFirstNodes(1, 8), opts,
                      std::vector<std::size_t>{0}),
               util::ConfigError);
}

TEST(IorRunner, DeterministicGivenIdenticalSystems) {
  System a(topo::Scenario::kOmniPath100G, 4);
  System b(topo::Scenario::kOmniPath100G, 4);
  const auto ra = runIor(a.fs, IorJob::onFirstNodes(4, 8), optionsForTotal(16_GiB, 32));
  const auto rb = runIor(b.fs, IorJob::onFirstNodes(4, 8), optionsForTotal(16_GiB, 32));
  EXPECT_DOUBLE_EQ(ra.bandwidth, rb.bandwidth);
  EXPECT_EQ(ra.targetsUsed, rb.targetsUsed);
}

TEST(IorRunner, MoreNodesIncreaseScenario2Bandwidth) {
  // Lesson #1 at unit-test scale.
  System one(topo::Scenario::kOmniPath100G, 1);
  System eight(topo::Scenario::kOmniPath100G, 8);
  const auto r1 = runIor(one.fs, IorJob::onFirstNodes(1, 8), optionsForTotal(32_GiB, 8));
  const auto r8 = runIor(eight.fs, IorJob::onFirstNodes(8, 8), optionsForTotal(32_GiB, 64));
  // The steep storage queue ramp back-loads most of the gain to 16-32 nodes
  // (Fig. 11); at 8 nodes the model is ~1.6x the single-node bandwidth.
  EXPECT_GT(r8.bandwidth, 1.5 * r1.bandwidth);
}

TEST(IorRunner, ReadPhaseMirrorsWriteBehaviour) {
  // The paper expects read behaviour to mirror write behaviour w.r.t.
  // target allocation (Section III-B): same bandwidth on the same path.
  System writeSys(topo::Scenario::kEthernet10G, 8);
  System readSys(topo::Scenario::kEthernet10G, 8);
  auto opts = optionsForTotal(8_GiB, 64);
  const auto w = runIor(writeSys.fs, IorJob::onFirstNodes(8, 8), opts,
                        std::vector<std::size_t>{0, 4});
  opts.operation = Operation::kRead;
  const auto r = runIor(readSys.fs, IorJob::onFirstNodes(8, 8), opts,
                        std::vector<std::size_t>{0, 4});
  EXPECT_NEAR(r.bandwidth, w.bandwidth, 0.05 * w.bandwidth);
  EXPECT_EQ(r.totalBytes, w.totalBytes);
}

TEST(IorRunner, ReadDoesNotConsumeCapacity) {
  System system(topo::Scenario::kEthernet10G, 2);
  auto opts = optionsForTotal(2_GiB, 16);
  opts.operation = Operation::kRead;
  runIor(system.fs, IorJob::onFirstNodes(2, 8), opts, std::vector<std::size_t>{0, 4});
  EXPECT_EQ(system.deployment.mgmt().target(0).used, 0u);
  EXPECT_EQ(system.deployment.mgmt().target(4).used, 0u);
}

TEST(IorRunner, LaunchAtFutureTimeStartsThen) {
  System system(topo::Scenario::kEthernet10G, 1);
  IorResult result;
  bool done = false;
  launchIor(system.fs, IorJob::onFirstNodes(1, 8), optionsForTotal(1_GiB, 8), 100.0,
            [&](const IorResult& r) {
              result = r;
              done = true;
            });
  system.fluid.run();
  ASSERT_TRUE(done);
  EXPECT_DOUBLE_EQ(result.start, 100.0);
  EXPECT_GT(result.end, 100.0);
}

}  // namespace
}  // namespace beesim::ior
