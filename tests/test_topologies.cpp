#include <gtest/gtest.h>

#include "topology/catalyst.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"

namespace beesim::topo {
namespace {

TEST(Plafrim, GeometryMatchesPaper) {
  const auto cfg = makePlafrim(Scenario::kEthernet10G, 8);
  EXPECT_EQ(cfg.nodes.size(), 8u);
  EXPECT_EQ(cfg.hosts.size(), kPlafrimStorageHosts);
  EXPECT_EQ(cfg.targetCount(), kPlafrimStorageHosts * kPlafrimTargetsPerHost);
  cfg.validate();
}

TEST(Plafrim, ScenariosDifferOnlyInNetworkSide) {
  const auto s1 = makePlafrim(Scenario::kEthernet10G, 4);
  const auto s2 = makePlafrim(Scenario::kOmniPath100G, 4);
  // Network side differs...
  EXPECT_LT(s1.hosts[0].nicBandwidth, s2.hosts[0].nicBandwidth);
  EXPECT_LT(s1.nodes[0].clientThroughputCap, s2.nodes[0].clientThroughputCap);
  // ...storage hardware is identical (same machine, different fabric).
  EXPECT_DOUBLE_EQ(s1.hosts[0].targets[0].device.perDiskStream,
                   s2.hosts[0].targets[0].device.perDiskStream);
  EXPECT_DOUBLE_EQ(s1.hosts[0].serviceCap, s2.hosts[0].serviceCap);
}

TEST(Plafrim, Scenario1NetworkIsSlowerThanStorage) {
  const auto cfg = makePlafrim(Scenario::kEthernet10G, 4);
  const storage::HddRaidModel ost(cfg.hosts[0].targets[0].device);
  EXPECT_LT(cfg.hosts[0].nicBandwidth, ost.peakRate());
}

TEST(Plafrim, Scenario2StorageIsSlowerThanNetwork) {
  const auto cfg = makePlafrim(Scenario::kOmniPath100G, 4);
  const storage::HddRaidModel ost(cfg.hosts[0].targets[0].device);
  EXPECT_GT(cfg.hosts[0].nicBandwidth,
            ost.peakRate() * static_cast<double>(cfg.hosts[0].targets.size()));
}

TEST(Plafrim, TargetsCarryLogNormalVariability) {
  const auto cfg = makePlafrim(Scenario::kOmniPath100G, 2);
  EXPECT_EQ(cfg.hosts[0].targets[0].variability.kind, VariabilitySpec::Kind::kLogNormal);
  EXPECT_GT(cfg.hosts[0].targets[0].variability.sigma, 0.0);
}

TEST(Plafrim, ZeroNodesRejected) {
  EXPECT_THROW(makePlafrim(Scenario::kEthernet10G, 0), util::ConfigError);
}

TEST(Plafrim, CalibrationOverridesApply) {
  PlafrimCalibration cal;
  cal.s1ServerLink = 999.0;
  const auto cfg = makePlafrim(Scenario::kEthernet10G, 2, cal);
  EXPECT_DOUBLE_EQ(cfg.hosts[0].nicBandwidth, 999.0);
}

TEST(Plafrim, ScenarioLabels) {
  EXPECT_NE(std::string(scenarioLabel(Scenario::kEthernet10G)).find("scenario 1"),
            std::string::npos);
  EXPECT_NE(std::string(scenarioLabel(Scenario::kOmniPath100G)).find("scenario 2"),
            std::string::npos);
}

TEST(Catalyst, GeometryMatchesChowdhurySystem) {
  const auto cfg = makeCatalystLike(4);
  EXPECT_EQ(cfg.hosts.size(), 12u);
  EXPECT_EQ(cfg.targetCount(), 24u);
  cfg.validate();
}

TEST(Catalyst, SingleNodeClientIsTheBottleneck) {
  // The whole point of the baseline: one client node cannot outrun even a
  // single OST + OSS, so stripe count looks irrelevant.
  const auto cfg = makeCatalystLike(1);
  const storage::HddRaidModel ost(cfg.hosts[0].targets[0].device);
  EXPECT_LT(cfg.nodes[0].clientThroughputCap, 2.0 * ost.peakRate());
}

TEST(Catalyst, ZeroNodesRejected) {
  EXPECT_THROW(makeCatalystLike(0), util::ConfigError);
}

}  // namespace
}  // namespace beesim::topo
