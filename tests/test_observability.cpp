// The run-level observability pipeline end to end: observer fan-out through
// ObserverHub, the FlowTracer's metrics series and Chrome-trace export, and
// the utilization/profiling data flowing up into campaign rows and totals.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "harness/campaign.hpp"
#include "harness/run.hpp"
#include "ior/options.hpp"
#include "sim/fluid.hpp"
#include "sim/observer_hub.hpp"
#include "sim/trace.hpp"
#include "topology/plafrim.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace beesim::sim {
namespace {

using namespace beesim::util::literals;

struct CountingObserver final : FluidObserver {
  int started = 0;
  int solved = 0;
  int completed = 0;
  int cancelled = 0;
  void onFlowStarted(FlowId, std::span<const ResourceIndex>, util::Bytes,
                     SimTime) override {
    ++started;
  }
  void onRatesSolved(SimTime, std::span<const FlowId>, std::span<const util::MiBps>,
                     std::size_t) override {
    ++solved;
  }
  void onFlowCompleted(const FlowStats&) override { ++completed; }
  void onFlowCancelled(const FlowStats&) override { ++cancelled; }
};

/// Removes itself from the simulator on the first flow start -- exercises
/// mutation of the hub's observer list mid-dispatch.
struct SelfRemovingObserver final : FluidObserver {
  explicit SelfRemovingObserver(FluidSimulator& fluid) : fluid_(fluid) {}
  int started = 0;
  void onFlowStarted(FlowId, std::span<const ResourceIndex>, util::Bytes,
                     SimTime) override {
    ++started;
    fluid_.removeObserver(this);
  }
  void onRatesSolved(SimTime, std::span<const FlowId>, std::span<const util::MiBps>,
                     std::size_t) override {}
  void onFlowCompleted(const FlowStats&) override {}

 private:
  FluidSimulator& fluid_;
};

void runOneFlow(FluidSimulator& fluid, ResourceIndex link) {
  fluid.startFlow(FlowSpec{.path = {link}, .bytes = 10_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();
}

TEST(ObserverHub, FansOutToEveryObserverInAttachmentOrder) {
  FluidSimulator fluid;
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  CountingObserver a;
  CountingObserver b;
  fluid.addObserver(&a);
  fluid.addObserver(&b);
  runOneFlow(fluid, link);

  EXPECT_EQ(a.started, 1);
  EXPECT_EQ(b.started, 1);
  EXPECT_EQ(a.completed, 1);
  EXPECT_EQ(b.completed, 1);
  EXPECT_GT(a.solved, 0);
  EXPECT_EQ(a.solved, b.solved);
}

TEST(ObserverHub, RemoveDetachesOnlyThatObserver) {
  FluidSimulator fluid;
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  CountingObserver a;
  CountingObserver b;
  fluid.addObserver(&a);
  fluid.addObserver(&b);
  fluid.removeObserver(&a);
  // Removing an observer that is not attached is a no-op.
  CountingObserver stranger;
  fluid.removeObserver(&stranger);
  runOneFlow(fluid, link);

  EXPECT_EQ(a.started, 0);
  EXPECT_EQ(b.started, 1);
}

TEST(ObserverHub, ComposesWithSetObserver) {
  // A legacy observer installed through the raw single slot still gets
  // events after a second one is added via addObserver.
  FluidSimulator fluid;
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  CountingObserver legacy;
  CountingObserver added;
  fluid.setObserver(&legacy);
  fluid.addObserver(&added);
  runOneFlow(fluid, link);

  EXPECT_EQ(legacy.started, 1);
  EXPECT_EQ(added.started, 1);
}

TEST(ObserverHub, SelfRemovalDuringDispatchIsSafe) {
  FluidSimulator fluid;
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  SelfRemovingObserver quitter(fluid);
  CountingObserver survivor;
  fluid.addObserver(&quitter);
  fluid.addObserver(&survivor);
  runOneFlow(fluid, link);
  runOneFlow(fluid, link);

  EXPECT_EQ(quitter.started, 1);  // only the first flow
  EXPECT_EQ(survivor.started, 2);
}

TEST(ObserverHub, DuplicateAddIsIgnored) {
  FluidSimulator fluid;
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  CountingObserver a;
  fluid.addObserver(&a);
  fluid.addObserver(&a);
  runOneFlow(fluid, link);
  EXPECT_EQ(a.started, 1);
}

TEST(Tracer, DoesNotClobberEarlierObserver) {
  // Regression: the FlowTracer constructor used setObserver and silently
  // disconnected whatever was installed before it.
  FluidSimulator fluid;
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  CountingObserver first;
  fluid.addObserver(&first);
  FlowTracer tracer(fluid);
  runOneFlow(fluid, link);

  EXPECT_EQ(first.started, 1);
  EXPECT_FALSE(tracer.events().empty());
}

TEST(Tracer, DestructionDetachesOnlyItself) {
  // Regression: the FlowTracer destructor used setObserver(nullptr) and tore
  // down observers installed *after* it.
  FluidSimulator fluid;
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  auto tracer = std::make_unique<FlowTracer>(fluid);
  CountingObserver later;
  fluid.addObserver(&later);
  tracer.reset();
  runOneFlow(fluid, link);

  EXPECT_EQ(later.started, 1);
  EXPECT_EQ(later.completed, 1);
}

TEST(Tracer, IdleResourcesReportZeroRows) {
  // Regression: resourceUsage() only covered resources that ever saw a
  // nonzero rate, so idle links/OSTs were missing from the report.
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  const auto busy = fluid.addResource(ResourceSpec{"busy", constantCapacity(100.0)});
  const auto idle = fluid.addResource(ResourceSpec{"idle", constantCapacity(100.0)});
  (void)idle;
  runOneFlow(fluid, busy);

  const auto usage = tracer.resourceUsage();
  ASSERT_EQ(usage.size(), fluid.resourceCount());
  EXPECT_EQ(usage[1].name, "idle");
  EXPECT_EQ(usage[1].mib, 0.0);
  EXPECT_EQ(usage[1].busyTime, 0.0);
  EXPECT_EQ(usage[1].peakRate, 0.0);
  EXPECT_GT(usage[0].mib, 0.0);
}

TEST(Tracer, MetricsSeriesSamplesRatesAndImbalance) {
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  const auto a = fluid.addResource(ResourceSpec{"a", constantCapacity(10.0)});
  const auto b = fluid.addResource(ResourceSpec{"b", constantCapacity(10.0)});
  tracer.setMetricsInterval(1.0);
  tracer.trackLink(a, "linkA");
  tracer.trackLink(b, "linkB");
  // One 10 s flow through a only: every sample sees 10 MiB/s on linkA, 0 on
  // linkB, so the imbalance index is exactly 2 (all traffic on one of two).
  fluid.startFlow(FlowSpec{.path = {a}, .bytes = 100_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();

  ASSERT_EQ(tracer.samples().size(), 10u);  // t = 1..10
  for (const auto& sample : tracer.samples()) {
    EXPECT_EQ(sample.activeFlows, 1u);
    EXPECT_NEAR(sample.aggregateRate, 10.0, 1e-9);
    ASSERT_EQ(sample.linkRates.size(), 2u);
    EXPECT_NEAR(sample.linkRates[0], 10.0, 1e-9);
    EXPECT_NEAR(sample.linkRates[1], 0.0, 1e-9);
    EXPECT_NEAR(sample.linkImbalance, 2.0, 1e-9);
  }
  EXPECT_NEAR(tracer.samples().front().time, 1.0, 1e-12);
  EXPECT_NEAR(tracer.samples().back().time, 10.0, 1e-12);
}

TEST(Tracer, MetricsCsvHasHeaderAndOneRowPerSample) {
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(10.0)});
  tracer.setMetricsInterval(0.5);
  tracer.trackLink(link, "linkA");
  fluid.startFlow(FlowSpec{.path = {link}, .bytes = 20_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();

  const auto csv = tracer.metricsCsv();
  std::istringstream lines(csv);
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header, "t,active_flows,aggregate_mibps,link_imbalance,linkA");
  std::size_t rows = 0;
  for (std::string line; std::getline(lines, line);) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, tracer.samples().size());
}

TEST(Tracer, ChromeTraceRoundTripsThroughJsonParser) {
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  const auto link = fluid.addResource(ResourceSpec{"srv \"0\"", constantCapacity(10.0)});
  tracer.setMetricsInterval(0.5);
  tracer.trackLink(link, "srv \"0\"");  // name needing JSON escaping
  const auto id = fluid.startFlow(FlowSpec{.path = {link}, .bytes = 10_MiB,
                                           .queueWeight = 1.0, .rateCap = 0.0,
                                           .onComplete = nullptr});
  fluid.run();

  const auto doc = util::parseJson(tracer.toChromeTrace());
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
  const auto& events = doc.at("traceEvents").asArray();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().at("ph").asString(), "M");
  bool sawBegin = false;
  bool sawEnd = false;
  bool sawCounter = false;
  for (const auto& event : events) {
    const auto& ph = event.at("ph").asString();
    if (ph == "b" && event.at("id").asNumber() == static_cast<double>(id.value)) {
      sawBegin = true;
      EXPECT_EQ(event.at("args").at("bytes").asNumber(),
                static_cast<double>(10_MiB));
    }
    if (ph == "e") sawEnd = true;
    if (ph == "C" && event.at("name").asString() == "link_mibps") {
      sawCounter = true;
      EXPECT_TRUE(event.at("args").has("srv \"0\""));
    }
  }
  EXPECT_TRUE(sawBegin);
  EXPECT_TRUE(sawEnd);
  EXPECT_TRUE(sawCounter);
}

TEST(Tracer, WriteChromeTraceAndMetricsToFiles) {
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(10.0)});
  tracer.setMetricsInterval(0.5);
  tracer.trackLink(link, "link");
  runOneFlow(fluid, link);

  const auto dir = std::filesystem::temp_directory_path();
  const auto tracePath = dir / "beesim_obs_trace.json";
  const auto metricsPath = dir / "beesim_obs_metrics.csv";
  tracer.writeChromeTrace(tracePath);
  tracer.writeMetricsCsv(metricsPath);
  EXPECT_GT(std::filesystem::file_size(tracePath), 0u);
  EXPECT_GT(std::filesystem::file_size(metricsPath), 0u);
  // The file round-trips through the JSON parser too.
  std::ifstream in(tracePath);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(util::parseJson(buffer.str()).isObject());
  std::filesystem::remove(tracePath);
  std::filesystem::remove(metricsPath);
}

}  // namespace
}  // namespace beesim::sim

namespace beesim::harness {
namespace {

using namespace beesim::util::literals;

RunConfig smallConfig() {
  RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 2);
  config.fs.defaultStripe.stripeCount = 4;
  config.job = ior::IorJob::onFirstNodes(2, 8);
  config.ior.blockSize = ior::blockSizeForTotal(2_GiB, config.job.ranks());
  return config;
}

TEST(Observability, UtilizationFillsPerServerSplit) {
  auto config = smallConfig();
  config.pinnedTargets = std::vector<std::size_t>{0, 4, 5, 6};  // (1,3)
  config.observe.utilization = true;
  const auto record = runOnce(config, 11);

  ASSERT_TRUE(record.ior.util.active);
  ASSERT_EQ(record.ior.util.serverMiB.size(), 2u);
  const double total = record.ior.util.serverMiB[0] + record.ior.util.serverMiB[1];
  EXPECT_NEAR(total, util::toMiB(record.ior.totalBytes), total * 1e-6);
  EXPECT_NEAR(record.ior.util.serverMiB[1] / total, 0.75, 1e-6);
  EXPECT_NEAR(record.ior.util.linkImbalance, 1.5, 1e-6);
  EXPECT_GT(record.ior.util.serverBusyFrac[1], record.ior.util.serverBusyFrac[0]);
  EXPECT_LE(record.ior.util.serverBusyFrac[1], 1.0 + 1e-9);
}

TEST(Observability, TracedRunsMatchUntracedBitwise) {
  auto plain = smallConfig();
  auto traced = smallConfig();
  traced.observe.utilization = true;
  traced.observe.profile = true;
  const auto a = runOnce(plain, 7);
  const auto b = runOnce(traced, 7);
  EXPECT_DOUBLE_EQ(a.ior.bandwidth, b.ior.bandwidth);
  EXPECT_DOUBLE_EQ(a.ior.end, b.ior.end);
  EXPECT_EQ(a.resolves, b.resolves);
  // Only the profiled run pays for (and reports) solver wall time.
  EXPECT_EQ(a.solveSeconds, 0.0);
  EXPECT_GT(b.solveSeconds, 0.0);
}

TEST(Observability, CampaignRowsCarryUtilizationColumnsOnlyWhenEnabled) {
  std::vector<CampaignEntry> entries(1);
  entries[0].config = smallConfig();
  ProtocolOptions protocol;
  protocol.repetitions = 2;

  ExecutorOptions serialExec;
  serialExec.jobs = 1;
  const auto plain = executeCampaign(entries, protocol, 5, nullptr, serialExec);
  for (const auto& row : plain.rows()) {
    EXPECT_EQ(row.metrics.count("srv0_mib"), 0u);
    EXPECT_EQ(row.metrics.count("link_imbalance"), 0u);
  }

  entries[0].config.observe.utilization = true;
  const auto observed = executeCampaign(entries, protocol, 5, nullptr, serialExec);
  for (const auto& row : observed.rows()) {
    EXPECT_EQ(row.metrics.count("srv0_mib"), 1u);
    EXPECT_EQ(row.metrics.count("srv0_busy_frac"), 1u);
    EXPECT_EQ(row.metrics.count("srv1_mib"), 1u);
    EXPECT_EQ(row.metrics.count("link_imbalance"), 1u);
  }
  // Observation does not perturb the measured bandwidth.
  EXPECT_EQ(plain.metric("bandwidth_mibps"), observed.metric("bandwidth_mibps"));
}

TEST(Observability, ObservedCampaignCsvInvariantToJobs) {
  std::vector<CampaignEntry> entries(1);
  entries[0].config = smallConfig();
  entries[0].config.observe.utilization = true;
  entries[0].config.observe.profile = true;
  ProtocolOptions protocol;
  protocol.repetitions = 4;

  ExecutorOptions serialExec;
  serialExec.jobs = 1;
  ExecutorOptions parallelExec;
  parallelExec.jobs = 4;
  const auto serial = executeCampaign(entries, protocol, 9, nullptr, serialExec);
  const auto parallel = executeCampaign(entries, protocol, 9, nullptr, parallelExec);

  const auto dir = std::filesystem::temp_directory_path();
  const auto pathA = dir / "beesim_obs_serial.csv";
  const auto pathB = dir / "beesim_obs_parallel.csv";
  serial.writeCsv(pathA);
  parallel.writeCsv(pathB);
  std::ifstream a(pathA);
  std::ifstream b(pathB);
  std::stringstream bufA;
  std::stringstream bufB;
  bufA << a.rdbuf();
  bufB << b.rdbuf();
  EXPECT_EQ(bufA.str(), bufB.str());
  EXPECT_NE(bufA.str().find("link_imbalance"), std::string::npos);
  std::filesystem::remove(pathA);
  std::filesystem::remove(pathB);
}

TEST(Observability, CampaignTotalsAccumulateInCommitOrder) {
  std::vector<CampaignEntry> entries(1);
  entries[0].config = smallConfig();
  entries[0].config.observe.profile = true;
  ProtocolOptions protocol;
  protocol.repetitions = 3;

  CampaignTotals totals;
  ExecutorOptions exec;
  exec.jobs = 1;
  exec.totals = &totals;
  (void)executeCampaign(entries, protocol, 13, nullptr, exec);

  EXPECT_EQ(totals.runs, 3u);
  EXPECT_GT(totals.resolves, 0u);
  EXPECT_GT(totals.solverIterations, 0u);
  EXPECT_GT(totals.solveSeconds, 0.0);
  EXPECT_GT(totals.runWallSeconds, 0.0);
  EXPECT_GE(totals.runWallSeconds, totals.maxRunWallSeconds);
  EXPECT_GT(totals.campaignWallSeconds, 0.0);

  // The deterministic counters are --jobs invariant.
  CampaignTotals parallelTotals;
  exec.jobs = 4;
  exec.totals = &parallelTotals;
  (void)executeCampaign(entries, protocol, 13, nullptr, exec);
  EXPECT_EQ(parallelTotals.runs, totals.runs);
  EXPECT_EQ(parallelTotals.resolves, totals.resolves);
  EXPECT_EQ(parallelTotals.solverIterations, totals.solverIterations);
}

}  // namespace
}  // namespace beesim::harness
