#include "storage/variability.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::storage {
namespace {

TEST(Variability, NoVariabilityIsAlwaysOne) {
  NoVariability model;
  const util::Rng rng(1);
  for (int e = 0; e < 10; ++e) EXPECT_DOUBLE_EQ(model.sampleFactor(rng, e), 1.0);
}

TEST(Variability, LogNormalFactorsArePositiveAndVary) {
  LogNormalVariability model(0.1);
  const util::Rng rng(2);
  double minF = 1e9;
  double maxF = 0.0;
  for (int e = 0; e < 1000; ++e) {
    const double f = model.sampleFactor(rng, e);
    EXPECT_GT(f, 0.0);
    minF = std::min(minF, f);
    maxF = std::max(maxF, f);
  }
  EXPECT_LT(minF, 0.95);
  EXPECT_GT(maxF, 1.05);
}

TEST(Variability, LogNormalZeroSigmaIsDeterministic) {
  LogNormalVariability model(0.0);
  const util::Rng rng(3);
  for (int e = 0; e < 10; ++e) EXPECT_DOUBLE_EQ(model.sampleFactor(rng, e), 1.0);
}

TEST(Variability, FactorsArePureFunctionsOfStreamAndEpoch) {
  LogNormalVariability model(0.2);
  const util::Rng rng(4);
  // Same (stream, epoch) -> same factor, regardless of query order.
  const double f7 = model.sampleFactor(rng, 7);
  const double f3 = model.sampleFactor(rng, 3);
  EXPECT_DOUBLE_EQ(model.sampleFactor(rng, 7), f7);
  EXPECT_DOUBLE_EQ(model.sampleFactor(rng, 3), f3);
  EXPECT_NE(f3, f7);
  // A different device stream sees different factors.
  const util::Rng other(5);
  EXPECT_NE(model.sampleFactor(other, 7), f7);
}

TEST(Variability, GaussianFactorsAreClamped) {
  GaussianVariability model(2.0, 0.5, 1.2);  // huge sigma to hit the clamps
  const util::Rng rng(6);
  for (int e = 0; e < 1000; ++e) {
    const double f = model.sampleFactor(rng, e);
    EXPECT_GE(f, 0.5);
    EXPECT_LE(f, 1.2);
  }
}

TEST(Variability, SlowPhaseVisitsBothStatesAtStationaryRate) {
  SlowPhaseVariability model(0.2, 0.3, 0.5, 0.0, 8);
  EXPECT_NEAR(model.stationaryDegradedProbability(), 0.4, 1e-12);
  const util::Rng rng(7);
  int slow = 0;
  const int epochs = 4000;
  for (int e = 0; e < epochs; ++e) {
    if (model.sampleFactor(rng, e) < 0.75) ++slow;
  }
  EXPECT_GT(slow, 0);
  EXPECT_LT(slow, epochs);
  EXPECT_NEAR(static_cast<double>(slow) / epochs, 0.4, 0.08);
}

TEST(Variability, SlowPhaseEpisodesSpanWholeWindows) {
  SlowPhaseVariability model(0.3, 0.3, 0.5, 0.0, 8);
  const util::Rng rng(8);
  // Within one window, the state is constant.
  for (int window = 0; window < 50; ++window) {
    const bool degraded = model.sampleFactor(rng, window * 8) < 0.75;
    for (int e = 1; e < 8; ++e) {
      EXPECT_EQ(model.sampleFactor(rng, window * 8 + e) < 0.75, degraded);
    }
  }
}

TEST(Variability, InvalidParametersThrow) {
  EXPECT_THROW(LogNormalVariability(-0.1), util::ContractError);
  EXPECT_THROW(GaussianVariability(-1.0), util::ContractError);
  EXPECT_THROW(SlowPhaseVariability(1.5, 0.5, 0.5, 0.0), util::ContractError);
  EXPECT_THROW(SlowPhaseVariability(0.5, 0.5, 0.0, 0.0), util::ContractError);
  EXPECT_THROW(SlowPhaseVariability(0.0, 0.0, 0.5, 0.0), util::ContractError);
  EXPECT_THROW(SlowPhaseVariability(0.5, 0.5, 0.5, 0.0, 0), util::ContractError);
}

TEST(Variability, CloneReproducesBehaviour) {
  SlowPhaseVariability original(0.2, 0.4, 0.6, 0.1, 4);
  const auto clone = original.clone();
  const util::Rng rng(9);
  for (int e = 0; e < 40; ++e) {
    EXPECT_DOUBLE_EQ(original.sampleFactor(rng, e), clone->sampleFactor(rng, e));
  }
}

TEST(NoisyDevice, FactorIsCachedWithinAnEpoch) {
  NoisyDevice device(std::make_shared<ConstantDeviceModel>(100.0),
                     std::make_unique<LogNormalVariability>(0.3), util::Rng(10), 2.0);
  const double f1 = device.factorAt(0.1);
  const double f2 = device.factorAt(1.9);   // same epoch [0, 2)
  const double f3 = device.factorAt(2.1);   // next epoch
  EXPECT_DOUBLE_EQ(f1, f2);
  EXPECT_NE(f1, f3);
}

TEST(NoisyDevice, CurrentRateMultipliesModelAndFactor) {
  NoisyDevice device(std::make_shared<ConstantDeviceModel>(100.0),
                     std::make_unique<NoVariability>(), util::Rng(11), 1.0);
  EXPECT_DOUBLE_EQ(device.currentRate(5.0, 0.5), 100.0);
  EXPECT_DOUBLE_EQ(device.currentRate(0.0, 0.5), 0.0);
}

TEST(NoisyDevice, FactorIndependentOfQueryPattern) {
  // Dense and sparse query patterns must agree (factors are epoch-keyed).
  NoisyDevice dense(std::make_shared<ConstantDeviceModel>(1.0),
                    std::make_unique<LogNormalVariability>(0.3), util::Rng(12), 1.0);
  NoisyDevice sparse(std::make_shared<ConstantDeviceModel>(1.0),
                     std::make_unique<LogNormalVariability>(0.3), util::Rng(12), 1.0);
  double denseLast = 0.0;
  for (int e = 0; e < 10; ++e) denseLast = dense.factorAt(e + 0.5);
  EXPECT_DOUBLE_EQ(denseLast, sparse.factorAt(9.5));
  // Going back in time is fine too (runs laid out at arbitrary offsets).
  EXPECT_DOUBLE_EQ(sparse.factorAt(0.5), dense.factorAt(0.5));
}

TEST(NoisyDevice, InvalidConstructionThrows) {
  EXPECT_THROW(NoisyDevice(nullptr, std::make_unique<NoVariability>(), util::Rng(1), 1.0),
               util::ContractError);
  EXPECT_THROW(NoisyDevice(std::make_shared<ConstantDeviceModel>(1.0), nullptr,
                           util::Rng(1), 1.0),
               util::ContractError);
  EXPECT_THROW(NoisyDevice(std::make_shared<ConstantDeviceModel>(1.0),
                           std::make_unique<NoVariability>(), util::Rng(1), 0.0),
               util::ContractError);
}

}  // namespace
}  // namespace beesim::storage
