// Gray-failure robustness suite (DESIGN.md §2.9): fail-slow injection
// (slow: grammar, degrade renewal streams, normalize tie-break), injector
// cause-tracking across overlapping outages, hedged writes rescuing
// dead-but-online resources, the peer-relative HealthMonitor (including the
// no-false-positive property on statistically identical servers), QoS
// charge-once under hedging, campaign column gating / --jobs invariance, CLI
// flag plumbing, and a randomized chaos soak.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "cli/commands.hpp"
#include "control/health.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "harness/campaign.hpp"
#include "harness/concurrent.hpp"
#include "harness/executor.hpp"
#include "harness/protocol.hpp"
#include "harness/run.hpp"
#include "ior/options.hpp"
#include "ior/runner.hpp"
#include "qos/manager.hpp"
#include "sim/fluid.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim {
namespace {

using namespace beesim::util::literals;

// -- Schedule grammar and normalize tie-break --------------------------------

TEST(FailSlowSchedule, SlowVerbRoundTripsThroughDescribe) {
  const auto schedule =
      faults::parseSchedule("slow:t3@30=0.1;slow:t3@90=1;slow:t2@20=0");
  ASSERT_EQ(schedule.events.size(), 3u);
  EXPECT_EQ(schedule.events[0].kind, faults::FaultKind::kTargetDegrade);
  EXPECT_DOUBLE_EQ(schedule.events[0].fraction, 0.1);
  EXPECT_DOUBLE_EQ(schedule.events[2].fraction, 0.0);  // dead-but-online
  const auto rendered = faults::describeSchedule(schedule);
  const auto reparsed = faults::parseSchedule(rendered);
  ASSERT_EQ(reparsed.events.size(), schedule.events.size());
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    EXPECT_EQ(reparsed.events[i].kind, schedule.events[i].kind);
    EXPECT_EQ(reparsed.events[i].index, schedule.events[i].index);
    EXPECT_DOUBLE_EQ(reparsed.events[i].at, schedule.events[i].at);
    EXPECT_DOUBLE_EQ(reparsed.events[i].fraction, schedule.events[i].fraction);
  }
  // Degrade events alone strand nothing: no client fault policy is required.
  EXPECT_FALSE(schedule.hasFailures());
}

std::vector<faults::FaultKind> normalizedKinds(const std::string& text) {
  auto schedule = faults::parseSchedule(text);
  schedule.normalize(8, 2);
  std::vector<faults::FaultKind> kinds;
  for (const auto& event : schedule.events) kinds.push_back(event.kind);
  return kinds;
}

TEST(FailSlowSchedule, SimultaneousConflictingEventsOrderIndependently) {
  // A fail and a recover of the same resource at the same instant must net
  // out to *failed* regardless of the textual order: recoveries sort first.
  const auto a = normalizedKinds("off:t3@10;on:t3@10;slow:t3@10=0.2");
  const auto b = normalizedKinds("slow:t3@10=0.2;on:t3@10;off:t3@10");
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0], faults::FaultKind::kTargetRecover);
  EXPECT_EQ(a[1], faults::FaultKind::kTargetDegrade);
  EXPECT_EQ(a[2], faults::FaultKind::kTargetFail);

  // The net state is "failed" in both orders: apply through an injector.
  for (const auto* text : {"off:t3@0;on:t3@0", "on:t3@0;off:t3@0"}) {
    sim::FluidSimulator fluid;
    const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
    beegfs::BeegfsParams params;
    params.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
    beegfs::Deployment deployment(fluid, cluster, params, util::Rng(1));
    faults::FaultInjector injector(deployment, faults::parseSchedule(text));
    injector.arm();
    fluid.run();
    EXPECT_FALSE(deployment.mgmt().target(3).online) << text;
  }
}

TEST(FailSlowSchedule, DegradeRenewalIsDeterministicAndLeavesCrashStreamAlone) {
  faults::StochasticFaultSpec crashOnly;
  crashOnly.targetMttf = 40.0;
  crashOnly.targetMttr = 5.0;
  crashOnly.horizon = 200.0;

  auto withDegrades = crashOnly;
  withDegrades.degradeMttf = 30.0;
  withDegrades.degradeMttr = 6.0;
  withDegrades.degradeFloor = 0.0;
  withDegrades.degradeCeiling = 0.25;

  util::Rng rngA(77);
  util::Rng rngB(77);
  util::Rng rngC(77);
  const auto base = faults::generateSchedule(crashOnly, 8, 2, rngA);
  const auto mixed = faults::generateSchedule(withDegrades, 8, 2, rngB);
  const auto mixed2 = faults::generateSchedule(withDegrades, 8, 2, rngC);

  // Deterministic: identical spec + rng state => identical schedule.
  ASSERT_EQ(mixed.events.size(), mixed2.events.size());
  for (std::size_t i = 0; i < mixed.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(mixed.events[i].at, mixed2.events[i].at);
    EXPECT_EQ(mixed.events[i].kind, mixed2.events[i].kind);
  }

  // The degrade stream is drawn *after* the crash streams, so enabling it
  // must not move a single crash event (old seeds keep their plans).
  std::vector<faults::FaultEvent> baseCrashes;
  std::vector<faults::FaultEvent> mixedCrashes;
  for (const auto& e : base.events) {
    if (e.kind != faults::FaultKind::kTargetDegrade) baseCrashes.push_back(e);
  }
  for (const auto& e : mixed.events) {
    if (e.kind != faults::FaultKind::kTargetDegrade) mixedCrashes.push_back(e);
  }
  ASSERT_EQ(baseCrashes.size(), mixedCrashes.size());
  for (std::size_t i = 0; i < baseCrashes.size(); ++i) {
    EXPECT_DOUBLE_EQ(baseCrashes[i].at, mixedCrashes[i].at);
    EXPECT_EQ(baseCrashes[i].kind, mixedCrashes[i].kind);
    EXPECT_EQ(baseCrashes[i].index, mixedCrashes[i].index);
  }

  // Drawn severities respect the configured range and alternate with full
  // repairs (fraction 1).
  std::size_t onsets = 0;
  for (const auto& e : mixed.events) {
    if (e.kind != faults::FaultKind::kTargetDegrade) continue;
    EXPECT_GE(e.fraction, 0.0);
    if (e.fraction < 1.0) {
      EXPECT_LE(e.fraction, withDegrades.degradeCeiling);
      ++onsets;
    }
    EXPECT_LT(e.at, withDegrades.horizon);
  }
  EXPECT_GT(onsets, 0u);
}

// -- Injector cause-tracking (PR satellite: recovery clobbering) -------------

struct InjectorRig {
  sim::FluidSimulator fluid;
  topo::ClusterConfig cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  beegfs::Deployment deployment;

  explicit InjectorRig()
      : deployment(fluid, cluster, [] {
          beegfs::BeegfsParams params;
          params.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
          return params;
        }(), util::Rng(1)) {}

  void run(const std::string& schedule) {
    faults::FaultInjector injector(deployment, faults::parseSchedule(schedule));
    injector.arm();
    fluid.run();
  }
};

TEST(FailSlowInjector, HostRebootDoesNotReviveIndependentlyFailedTarget) {
  // Target 4 fails on its own at t=1; its host crashes at t=2 and reboots at
  // t=3.  The reboot clears only the host cause: target 4 stays down until
  // its own recovery at t=4.
  InjectorRig rig;
  rig.run("off:t4@1;off:h1@2;on:h1@3");
  EXPECT_FALSE(rig.deployment.mgmt().target(4).online);
  EXPECT_TRUE(rig.deployment.mgmt().target(5).online);  // host cause cleared
  EXPECT_DOUBLE_EQ(rig.deployment.hostLinkHealth(1), 1.0);

  InjectorRig rig2;
  rig2.run("off:t4@1;off:h1@2;on:h1@3;on:t4@4");
  EXPECT_TRUE(rig2.deployment.mgmt().target(4).online);
}

TEST(FailSlowInjector, OrderingOfOverlappingCausesDoesNotMatter) {
  // Same net causes in the opposite arrival order: host crash first, then
  // the independent target failure, then the reboot.
  InjectorRig rig;
  rig.run("off:h1@1;off:t4@2;on:h1@3");
  EXPECT_FALSE(rig.deployment.mgmt().target(4).online);
  EXPECT_TRUE(rig.deployment.mgmt().target(5).online);
}

TEST(FailSlowInjector, HostRebootPreservesIndependentLinkDegrade) {
  // The link was degraded to 0.3 by its own event before the crash; the
  // reboot restores the *crash* cause only, leaving the stutter in force.
  InjectorRig rig;
  rig.run("link:h1@1=0.3;off:h1@2;on:h1@3");
  EXPECT_DOUBLE_EQ(rig.deployment.hostLinkHealth(1), 0.3);
  InjectorRig rig2;
  rig2.run("link:h1@1=0.3;off:h1@2;on:h1@3;link:h1@4=1");
  EXPECT_DOUBLE_EQ(rig2.deployment.hostLinkHealth(1), 1.0);
}

TEST(FailSlowInjector, HostRebootPreservesIndependentTargetDegrade) {
  InjectorRig rig;
  rig.run("slow:t4@1=0.1;off:h1@2;on:h1@3");
  EXPECT_TRUE(rig.deployment.mgmt().target(4).online);
  EXPECT_DOUBLE_EQ(rig.deployment.targetHealth(4), 0.1);
}

TEST(FailSlowInjector, TargetDegradeScalesServiceRate) {
  // One rank, one pinned target: halving the target's service rate roughly
  // halves the measured bandwidth (the OST is the bottleneck).
  auto bandwidthAt = [](double fraction) {
    sim::FluidSimulator fluid;
    auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 1);
    cluster.network.serverLinkNoiseSigmaLog = 0.0;
    for (auto& host : cluster.hosts) {
      for (auto& target : host.targets) target.variability = topo::VariabilitySpec{};
    }
    beegfs::Deployment deployment(fluid, cluster, beegfs::BeegfsParams{}, util::Rng(1));
    beegfs::FileSystem fs(deployment, util::Rng(2));
    if (fraction < 1.0) {
      const auto schedule = "slow:t0@0=" + std::to_string(fraction);
      faults::FaultInjector injector(deployment, faults::parseSchedule(schedule));
      injector.arm();
      ior::IorOptions options;
      options.blockSize = ior::blockSizeForTotal(2_GiB, 8);
      return ior::runIor(fs, ior::IorJob::onFirstNodes(1, 8), options, {{0}}).bandwidth;
    }
    ior::IorOptions options;
    options.blockSize = ior::blockSizeForTotal(2_GiB, 8);
    return ior::runIor(fs, ior::IorJob::onFirstNodes(1, 8), options, {{0}}).bandwidth;
  };
  const double healthy = bandwidthAt(1.0);
  const double degraded = bandwidthAt(0.5);
  ASSERT_GT(degraded, 0.0);
  EXPECT_NEAR(healthy / degraded, 2.0, 0.25);
}

// -- Hedged writes ------------------------------------------------------------

TEST(FailSlowHedge, DeadButOnlineTargetIsHedgedNotStalled) {
  // Target 0 serves at rate 0 while staying registered online: the crash
  // watchdog never fires (no registry flip), so without hedging the run
  // would stall forever.  The hedge re-issues the chunk elsewhere and wins.
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  beegfs::BeegfsParams params;
  params.hedge.enabled = true;
  params.hedge.deadline = 0.3;
  beegfs::Deployment deployment(fluid, cluster, params, util::Rng(1));
  beegfs::FileSystem fs(deployment, util::Rng(2));
  faults::FaultInjector injector(deployment, faults::parseSchedule("slow:t0@0=0"));
  injector.arm();

  const auto handle = fs.createPinned("/gray", {0, 4}, 512_KiB);
  bool done = false;
  fs.writeAsync(0, handle, 0, 512_MiB, 8.0, [&](util::Seconds) { done = true; });
  fluid.run();

  EXPECT_TRUE(done);
  EXPECT_GE(fs.hedgeStats().hedgesIssued, 1u);
  EXPECT_GE(fs.hedgeStats().hedgeWins, 1u);
  EXPECT_EQ(fs.hedgedInFlight(), 0u);
}

TEST(FailSlowHedge, NearZeroLinkDegradeCompletesUnderWatchdogAndHedge) {
  // PR satellite: watchdog + near-zero kLinkDegrade must terminate.  Host
  // 1's link drops to ~0 while everything stays online; chunks homed there
  // hedge across to host 0 instead of stalling.
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  config.fs.defaultStripe.stripeCount = 8;
  config.fs.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
  config.fs.faults.ioTimeout = 0.5;
  config.fs.hedge.enabled = true;
  config.fs.hedge.deadline = 0.3;
  config.faults.schedule = faults::parseSchedule("link:h1@0=0.000001");
  config.job = ior::IorJob::onFirstNodes(4, 8);
  config.ior.blockSize = ior::blockSizeForTotal(1_GiB, 32);
  const auto record = harness::runOnce(config, 9);  // asserts completion
  EXPECT_FALSE(record.ior.failed);
  EXPECT_TRUE(record.hedgeActive);
  EXPECT_GE(record.ior.hedge.hedgesIssued, 1u);
  EXPECT_GT(record.ior.bandwidth, 0.0);
}

TEST(FailSlowHedge, HealthyRunsIssueNoHedgesAndMatchBaseline) {
  // With no fault in sight the hedge timers observe healthy rates and never
  // fire: bandwidth must match the unhedged run on the same seed.
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  config.fs.defaultStripe.stripeCount = 4;
  config.job = ior::IorJob::onFirstNodes(4, 8);
  config.ior.blockSize = ior::blockSizeForTotal(1_GiB, 32);
  const auto plain = harness::runOnce(config, 5);
  config.fs.hedge.enabled = true;
  const auto hedged = harness::runOnce(config, 5);
  ASSERT_TRUE(hedged.hedgeActive);
  EXPECT_EQ(hedged.ior.hedge.hedgesIssued, 0u);
  EXPECT_DOUBLE_EQ(hedged.ior.bandwidth, plain.ior.bandwidth);
}

TEST(FailSlowHedge, QosTokensAreChargedOncePerLogicalByte) {
  // Hedge legs are server-side re-issues riding the original admission:
  // tokens must cover the logical bytes exactly once even when hedges fire.
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  beegfs::BeegfsParams params;
  params.hedge.enabled = true;
  params.hedge.deadline = 0.3;
  beegfs::Deployment deployment(fluid, cluster, params, util::Rng(1));
  beegfs::FileSystem fs(deployment, util::Rng(2));

  qos::QosPolicy policy;
  policy.enabled = true;
  policy.rate = 400.0;
  qos::QosManager manager(fluid, policy);
  manager.registerApp(qos::makeAppSpec(policy), {0});
  fs.setQosManager(&manager);

  faults::FaultInjector injector(deployment, faults::parseSchedule("slow:t0@0=0"));
  injector.arm();

  const auto handle = fs.createPinned("/qos-gray", {0, 4}, 512_KiB);
  bool done = false;
  fs.writeAsync(0, handle, 0, 512_MiB, 8.0, [&](util::Seconds) { done = true; });
  fluid.run();

  ASSERT_TRUE(done);
  EXPECT_GE(fs.hedgeStats().hedgesIssued, 1u);
  EXPECT_DOUBLE_EQ(manager.stats().tokensIssued, static_cast<double>(512_MiB));
}

// -- HealthMonitor ------------------------------------------------------------

harness::RunConfig monitorConfig(util::Bytes total = 2_GiB) {
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  config.fs.defaultStripe.stripeCount = 8;
  config.job = ior::IorJob::onFirstNodes(4, 8);
  config.ior.blockSize = ior::blockSizeForTotal(total, config.job.ranks());
  config.health.enabled = true;
  config.health.suspectRatio = 0.5;
  config.health.suspectPatience = 0.75;
  config.health.probationDelay = 2.0;
  return config;
}

TEST(FailSlowMonitor, NeverQuarantinesStatisticallyIdenticalServers) {
  // Property (PR satellite): servers drawn from the *same* distribution must
  // not be quarantined -- under zero variability and under the default
  // log-normal device/link noise alike, across seeds.
  for (const bool variability : {false, true}) {
    for (const std::uint64_t seed : {1ull, 7ull, 23ull, 91ull, 404ull}) {
      auto config = monitorConfig(1_GiB);
      if (!variability) {
        config.cluster.network.serverLinkNoiseSigmaLog = 0.0;
        for (auto& host : config.cluster.hosts) {
          for (auto& target : host.targets) {
            target.variability = topo::VariabilitySpec{};
          }
        }
        config.noise = harness::NoiseSpec{0.0, 0.0};
      }
      const auto record = harness::runOnce(config, seed);
      ASSERT_TRUE(record.healthActive);
      EXPECT_GT(record.health.samples, 0u);
      EXPECT_EQ(record.health.quarantines, 0u)
          << "variability=" << variability << " seed=" << seed;
    }
  }
}

TEST(FailSlowMonitor, QuarantinesGrayHostAndReadmitsAfterRepair) {
  // Every target of host 1 fail-slows to 5% at t=1 and is repaired at t=6:
  // the peer-relative score flags the host, quarantine drains it, and the
  // probation probe re-admits it.  24 GiB keeps host 0 busy (a peer to score
  // against) through detection, quarantine, and the probation timer.
  auto config = monitorConfig(24_GiB);
  std::string schedule;
  for (int t = 4; t < 8; ++t) {
    schedule += "slow:t" + std::to_string(t) + "@1=0.05;";
    schedule += "slow:t" + std::to_string(t) + "@6=1;";
  }
  config.faults.schedule = faults::parseSchedule(schedule);
  const auto record = harness::runOnce(config, 3);
  ASSERT_TRUE(record.healthActive);
  EXPECT_GE(record.health.suspects, 1u);
  EXPECT_GE(record.health.quarantines, 1u);
  EXPECT_GE(record.health.probations, 1u);
}

TEST(FailSlowMonitor, ConvoyedIdlePeersStillTestifyAgainstTheStraggler) {
  // A host-wide link stutter convoys every rank behind host 1's crawling
  // chunks, so host 0 sits idle at most sample instants.  Its busy-gated
  // EWMA must retain the last-known healthy rate as evidence -- if idle
  // samples decayed it (or idle peers were skipped), `below` would flicker
  // and the patience window would never close.  Scenario 1: server links
  // are the bottleneck, so the NIC-level rate carries the whole signal.
  auto config = monitorConfig(8_GiB);
  config.cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  config.faults.schedule = faults::parseSchedule("link:h1@1=0.08");
  const auto record = harness::runOnce(config, 5);
  ASSERT_TRUE(record.healthActive);
  EXPECT_GE(record.health.suspects, 1u);
  EXPECT_GE(record.health.quarantines, 1u);
}

TEST(FailSlowMonitor, DetectionIsPeerRelativeUnderClusterWideSlowdown) {
  // Both hosts stutter to 30% at once: the peer median moves with the
  // cluster, so nobody is below ratio x median and nothing is quarantined.
  auto config = monitorConfig(2_GiB);
  config.faults.schedule = faults::parseSchedule("link:h0@2=0.3;link:h1@2=0.3");
  const auto record = harness::runOnce(config, 11);
  ASSERT_TRUE(record.healthActive);
  EXPECT_EQ(record.health.quarantines, 0u);
}

TEST(FailSlowMonitor, CliKnobValidation) {
  control::HealthPolicy policy;
  policy.enabled = true;
  auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  sim::FluidSimulator fluid;
  beegfs::Deployment deployment(fluid, cluster, beegfs::BeegfsParams{}, util::Rng(1));
  beegfs::FileSystem fs(deployment, util::Rng(2));
  policy.suspectRatio = 1.5;
  EXPECT_THROW(control::HealthMonitor(fs, policy), util::ContractError);
  policy.suspectRatio = 0.5;
  policy.suspectPatience = 0.0;
  EXPECT_THROW(control::HealthMonitor(fs, policy), util::ContractError);
}

// -- Campaign plumbing --------------------------------------------------------

harness::CampaignEntry grayEntry() {
  harness::CampaignEntry entry;
  entry.config = monitorConfig(1_GiB);
  entry.config.fs.hedge.enabled = true;
  entry.config.faults.schedule = faults::parseSchedule(
      "slow:t4@1=0.05;slow:t5@1=0.05;slow:t6@1=0.05;slow:t7@1=0.05");
  return entry;
}

TEST(FailSlowCampaign, ColumnsAreGatedAndJobsInvariant) {
  const auto entry = grayEntry();
  harness::ProtocolOptions protocol;
  protocol.repetitions = 3;
  harness::ExecutorOptions serial;
  serial.jobs = 1;
  harness::ExecutorOptions parallel;
  parallel.jobs = 4;
  const auto a = harness::executeCampaign({entry}, protocol, 99, nullptr, serial);
  const auto b = harness::executeCampaign({entry}, protocol, 99, nullptr, parallel);
  for (const std::string metric :
       {"bandwidth_mibps", "gray_samples", "gray_suspects", "gray_quarantines",
        "gray_probations", "gray_readmissions", "gray_relapses", "hedge_issued",
        "hedge_wins", "hedge_primary_wins", "hedge_mirror_switchovers", "hedge_mib"}) {
    EXPECT_EQ(a.metric(metric, {}), b.metric(metric, {})) << metric;
  }

  // Feature off => the columns must not exist at all (golden-bytes contract).
  harness::CampaignEntry off = entry;
  off.config.health = control::HealthPolicy{};
  off.config.fs.hedge = beegfs::HedgePolicy{};
  off.config.faults = faults::FaultPlan{};
  const auto gated = harness::executeCampaign({off}, protocol, 99, nullptr, serial);
  EXPECT_THROW(gated.metric("gray_quarantines", {}), util::ContractError);
  EXPECT_THROW(gated.metric("hedge_issued", {}), util::ContractError);
}

TEST(FailSlowCampaign, DisabledFeaturesKeepLegacyBytes) {
  // The detector/hedge master switches off must reproduce the exact same
  // rows as a build that never heard of them: same seed, same bandwidth to
  // the last bit, no gray/hedge columns.
  harness::CampaignEntry entry;
  entry.config = monitorConfig(512_MiB);
  entry.config.health = control::HealthPolicy{};  // off
  harness::ProtocolOptions protocol;
  protocol.repetitions = 2;
  harness::ExecutorOptions serial;
  serial.jobs = 1;
  const auto a = harness::executeCampaign({entry}, protocol, 7, nullptr, serial);
  const auto b = harness::executeCampaign({entry}, protocol, 7, nullptr, serial);
  EXPECT_EQ(a.metric("bandwidth_mibps", {}), b.metric("bandwidth_mibps", {}));
  EXPECT_THROW(a.metric("gray_samples", {}), util::ContractError);
}

TEST(FailSlowConcurrent, MonitorAndHedgeComposeWithTenants) {
  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  base.fs.defaultStripe.stripeCount = 8;
  base.fs.hedge.enabled = true;
  base.health.enabled = true;
  base.health.suspectRatio = 0.5;
  std::vector<harness::AppSpec> specs(2);
  specs[0].job = ior::IorJob{{0, 1}, 8};
  specs[1].job = ior::IorJob{{2, 3}, 8};
  for (auto& spec : specs) {
    spec.ior.blockSize = ior::blockSizeForTotal(512_MiB, spec.job.ranks());
  }
  const auto result = harness::runConcurrent(base, specs, 17);
  EXPECT_TRUE(result.healthActive);
  EXPECT_TRUE(result.hedgeActive);
  EXPECT_GT(result.health.samples, 0u);
  EXPECT_GT(result.aggregateBandwidth, 0.0);
}

// -- CLI flag plumbing --------------------------------------------------------

int runCliCapture(std::vector<std::string> argv, std::string* out = nullptr) {
  std::ostringstream o;
  std::ostringstream e;
  const int code = cli::runCli(argv, o, e);
  if (out) *out = o.str();
  return code;
}

TEST(FailSlowCli, KnobsWithoutMasterSwitchAreRejected) {
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--fail-slow-mttr", "5"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--fail-slow-severity", "0.1"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--suspect-patience", "2"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--hedge-deadline", "1"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--hedge-ratio", "0.2"}), 0);
}

TEST(FailSlowCli, BoundsAreValidated) {
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--fail-slow", "0"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--fail-slow", "30",
                           "--fail-slow-severity", "1.5"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--suspect-ratio", "1.2"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--suspect-ratio", "0.5",
                           "--suspect-patience", "0"}), 0);
  EXPECT_NE(runCliCapture({"run", "--nodes", "2", "--hedge", "--hedge-ratio", "2"}), 0);
}

TEST(FailSlowCli, RunReportsHealthAndHedgeTotals) {
  std::string out;
  ASSERT_EQ(runCliCapture({"run", "--nodes", "2", "--reps", "1", "--total", "256m",
                           "--faults", "slow:t4@1=0.05", "--suspect-ratio", "0.5",
                           "--hedge"},
                          &out),
            0);
  EXPECT_NE(out.find("health (totals over 1 reps)"), std::string::npos);
  EXPECT_NE(out.find("hedge (totals over 1 reps)"), std::string::npos);
}

TEST(FailSlowCli, SlowGrammarAndFailSlowFlagAreAccepted) {
  std::string out;
  EXPECT_EQ(runCliCapture({"run", "--nodes", "2", "--reps", "1", "--total", "128m",
                           "--fail-slow", "40", "--fail-slow-mttr", "4",
                           "--fail-slow-severity", "0.2", "--hedge"},
                          &out),
            0);
  EXPECT_NE(out.find("bandwidth:"), std::string::npos);
}

// -- Chaos soak (CI: randomized schedules, logged seeds) ----------------------

TEST(FailSlowChaos, RandomizedFailSlowNeverStallsOrDoubleSpends) {
  // Randomized fail-slow campaigns with the full mitigation stack.  Each
  // seed's plan may drive targets to fraction 0 (dead-but-online); the run
  // must still terminate (runOnce asserts completion) and QoS tokens must
  // cover the logical bytes exactly once.  Seeds are logged so CI failures
  // reproduce with --gtest_filter + the printed seed.
  std::size_t seeds = 10;
  if (const char* env = std::getenv("BEESIM_CHAOS_SEEDS")) {
    seeds = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  for (std::size_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 1000 + 37 * i;
    std::cout << "[chaos] fail-slow soak seed=" << seed << "\n";
    harness::RunConfig config;
    config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
    config.fs.defaultStripe.stripeCount = 8;
    config.fs.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
    config.fs.faults.ioTimeout = 0.5;
    config.fs.hedge.enabled = true;
    config.fs.hedge.deadline = 0.4;
    config.health.enabled = true;
    config.health.suspectRatio = 0.5;
    config.qos.enabled = true;
    config.qos.rate = 800.0;
    faults::StochasticFaultSpec spec;
    spec.degradeMttf = 6.0;
    spec.degradeMttr = 3.0;
    spec.degradeFloor = 0.0;  // includes dead-but-online episodes
    spec.degradeCeiling = 0.3;
    spec.linkStutterMttf = 10.0;
    spec.linkStutterMttr = 2.0;
    spec.horizon = 60.0;
    config.faults.stochastic = spec;
    config.job = ior::IorJob::onFirstNodes(4, 8);
    config.ior.blockSize = ior::blockSizeForTotal(1_GiB, 32);
    const auto record = harness::runOnce(config, seed);  // asserts completion
    EXPECT_FALSE(record.ior.failed) << "seed=" << seed;
    ASSERT_TRUE(record.qosActive);
    EXPECT_DOUBLE_EQ(record.qos.tokensIssued,
                     static_cast<double>(record.ior.totalBytes))
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace beesim
