#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "ior/runner.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"
#include "util/units.hpp"

namespace beesim::sim {
namespace {

using namespace beesim::util::literals;

TEST(Trace, RecordsStartRatesComplete) {
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  fluid.startFlow(FlowSpec{.path = {link}, .bytes = 100_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();

  ASSERT_GE(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events().front().kind, TraceEvent::Kind::kStart);
  EXPECT_EQ(tracer.events().back().kind, TraceEvent::Kind::kComplete);
  EXPECT_EQ(tracer.events().back().bytes, 100_MiB);
  EXPECT_NEAR(tracer.events().back().meanRate, 100.0, 1e-6);
}

TEST(Trace, ResourceUsageBanksExactBytes) {
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  const auto a = fluid.addResource(ResourceSpec{"a", constantCapacity(100.0)});
  const auto b = fluid.addResource(ResourceSpec{"b", constantCapacity(50.0)});
  // Two flows: one crosses a only, one crosses a and b.
  fluid.startFlow(FlowSpec{.path = {a}, .bytes = 60_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.startFlow(FlowSpec{.path = {a, b}, .bytes = 30_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();

  EXPECT_NEAR(tracer.resourceMiB(a), 90.0, 1e-6);  // both flows
  EXPECT_NEAR(tracer.resourceMiB(b), 30.0, 1e-6);  // only the second
  const auto usage = tracer.resourceUsage();
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_EQ(usage[0].name, "a");
  EXPECT_GT(usage[0].peakRate, 0.0);
  EXPECT_GT(usage[0].busyTime, 0.0);
}

TEST(Trace, JsonlLinesAreValidJson) {
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(10.0)});
  fluid.startFlow(FlowSpec{.path = {link}, .bytes = 10_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();

  const auto jsonl = tracer.toJsonl();
  int lines = 0;
  for (const auto& line : util::split(jsonl, '\n')) {
    if (line.empty()) continue;
    ++lines;
    const auto doc = util::parseJson(line);
    EXPECT_TRUE(doc.isObject());
    EXPECT_TRUE(doc.has("ev"));
    EXPECT_TRUE(doc.has("t"));
  }
  EXPECT_GE(lines, 3);
}

TEST(Trace, EndToEndOstTrafficDecomposition) {
  // The headline use: trace a whole IOR run and decompose traffic per OST.
  // A (1,3) allocation must put 1/4 of the bytes on each used target and
  // 3/4 of the total through server 2's link.
  FluidSimulator fluid;
  auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  cluster.network.serverLinkNoiseSigmaLog = 0.0;
  for (auto& host : cluster.hosts) {
    for (auto& target : host.targets) target.variability = topo::VariabilitySpec{};
  }
  beegfs::Deployment deployment(fluid, cluster, beegfs::BeegfsParams{}, util::Rng(1));
  beegfs::FileSystem fs(deployment, util::Rng(2));
  FlowTracer tracer(fluid);

  ior::IorOptions options;
  options.blockSize = ior::blockSizeForTotal(8_GiB, 32);
  const auto result = ior::runIor(fs, ior::IorJob::onFirstNodes(4, 8), options,
                                  std::vector<std::size_t>{0, 4, 5, 6});

  const double totalMiB = util::toMiB(result.totalBytes);
  for (const auto target : result.targetsUsed) {
    EXPECT_NEAR(tracer.resourceMiB(deployment.ostResource(target)), totalMiB / 4.0,
                totalMiB * 1e-6);
  }
  EXPECT_NEAR(tracer.resourceMiB(deployment.serverNicResource(1)), 0.75 * totalMiB,
              totalMiB * 1e-6);
  EXPECT_NEAR(tracer.resourceMiB(deployment.serverNicResource(0)), 0.25 * totalMiB,
              totalMiB * 1e-6);
}

TEST(Trace, RecordsCancelledFlows) {
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  const auto id = fluid.startFlow(FlowSpec{.path = {link}, .bytes = 100_MiB,
                                           .queueWeight = 1.0, .rateCap = 0.0,
                                           .onComplete = nullptr});
  fluid.engine().schedule(0.5, [&] { fluid.cancelFlow(id); });
  fluid.run();

  ASSERT_FALSE(tracer.events().empty());
  const auto& last = tracer.events().back();
  EXPECT_EQ(last.kind, TraceEvent::Kind::kCancel);
  EXPECT_EQ(last.flow, id.value);
  EXPECT_EQ(last.bytes, 50_MiB);  // bytes left at cancel
  // Progress up to the cancel is banked; nothing after.
  EXPECT_NEAR(tracer.resourceMiB(link), 50.0, 1e-6);
  EXPECT_NE(tracer.toJsonl().find("\"ev\":\"cancel\""), std::string::npos);
}

TEST(Trace, WriteJsonlToFile) {
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(10.0)});
  fluid.startFlow(FlowSpec{.path = {link}, .bytes = 1_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();
  const auto path = std::filesystem::temp_directory_path() / "beesim_trace_test.jsonl";
  tracer.writeJsonl(path);
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  std::filesystem::remove(path);
}

TEST(Trace, DetachesOnDestruction) {
  FluidSimulator fluid;
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(10.0)});
  {
    FlowTracer tracer(fluid);
  }
  // No dangling observer: the simulation must run fine after detach.
  fluid.startFlow(FlowSpec{.path = {link}, .bytes = 1_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();
  SUCCEED();
}

// --- RingTraceSink ------------------------------------------------------

TEST(RingTrace, RecordsFlowLifecycle) {
  FluidSimulator fluid;
  RingTraceSink ring(fluid, 64);
  const auto nic = fluid.addResource(ResourceSpec{"nic", constantCapacity(200.0)});
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  const auto id = fluid.startFlow(FlowSpec{.path = {nic, link}, .bytes = 100_MiB,
                                           .queueWeight = 1.0, .rateCap = 0.0,
                                           .onComplete = nullptr});
  fluid.run();

  EXPECT_EQ(ring.capacity(), 64u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.recorded(), ring.size());
  const auto records = ring.snapshot();
  ASSERT_GE(records.size(), 3u);
  EXPECT_EQ(records.front().kind,
            static_cast<std::uint32_t>(TraceEvent::Kind::kStart));
  EXPECT_EQ(records.front().flow, id.value);
  EXPECT_EQ(records.front().bytes, 100_MiB);
  EXPECT_EQ(records.front().aux, 2u) << "kStart aux carries the path length";
  EXPECT_EQ(records.back().kind,
            static_cast<std::uint32_t>(TraceEvent::Kind::kComplete));
  EXPECT_EQ(records.back().bytes, 100_MiB);
  EXPECT_NEAR(records.back().value, 100.0, 1e-6) << "kComplete value = mean MiB/s";
  // Snapshot is oldest first and time-sorted.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time, records[i].time);
  }
}

TEST(RingTrace, WrapOverwritesOldestAndCountsDrops) {
  FluidSimulator fluid;
  RingTraceSink ring(fluid, 4);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  for (int i = 0; i < 6; ++i) {
    fluid.startFlowAt(static_cast<double>(i), FlowSpec{
        .path = {link}, .bytes = 10_MiB, .queueWeight = 1.0, .rateCap = 0.0,
        .onComplete = nullptr});
  }
  fluid.run();

  EXPECT_EQ(ring.size(), 4u);
  EXPECT_GT(ring.recorded(), 4u);
  EXPECT_EQ(ring.dropped(), ring.recorded() - 4u);
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 4u);
  // The retained window is the *newest* records, oldest first.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time, records[i].time);
  }
  EXPECT_EQ(records.back().kind,
            static_cast<std::uint32_t>(TraceEvent::Kind::kComplete));
  // The drain announces the loss up front.
  const auto jsonl = ring.toJsonl();
  const auto firstLine = jsonl.substr(0, jsonl.find('\n'));
  const auto doc = util::parseJson(firstLine);
  EXPECT_EQ(doc.at("ev").asString(), "drops");
  EXPECT_EQ(static_cast<std::uint64_t>(doc.at("count").asNumber()), ring.dropped());
}

TEST(RingTrace, JsonlLinesAreValidJson) {
  FluidSimulator fluid;
  RingTraceSink ring(fluid, 256);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(10.0)});
  const auto id = fluid.startFlow(FlowSpec{.path = {link}, .bytes = 10_MiB,
                                           .queueWeight = 1.0, .rateCap = 0.0,
                                           .onComplete = nullptr});
  fluid.engine().schedule(0.5, [&] { fluid.cancelFlow(id); });
  fluid.run();

  int lines = 0;
  bool sawCancel = false;
  for (const auto& line : util::split(ring.toJsonl(), '\n')) {
    if (line.empty()) continue;
    ++lines;
    const auto doc = util::parseJson(line);
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.has("ev"));
    if (doc.at("ev").asString() == "cancel") sawCancel = true;
  }
  EXPECT_GE(lines, 2);
  EXPECT_TRUE(sawCancel);
}

TEST(RingTrace, ChromeTraceIsValidJson) {
  FluidSimulator fluid;
  RingTraceSink ring(fluid, 256);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(10.0)});
  fluid.startFlow(FlowSpec{.path = {link}, .bytes = 10_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();

  const auto doc = util::parseJson(ring.toChromeTrace());
  ASSERT_TRUE(doc.isObject());
  ASSERT_TRUE(doc.has("traceEvents"));
  EXPECT_GT(doc.at("traceEvents").asArray().size(), 0u);
}

TEST(RingTrace, WritesJsonlToFile) {
  FluidSimulator fluid;
  RingTraceSink ring(fluid, 64);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(10.0)});
  fluid.startFlow(FlowSpec{.path = {link}, .bytes = 1_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();
  const auto path = std::filesystem::temp_directory_path() / "beesim_ring_test.jsonl";
  ring.writeJsonl(path);
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  std::filesystem::remove(path);
}

TEST(RingTrace, DetachesOnDestructionAndRejectsZeroCapacity) {
  FluidSimulator fluid;
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(10.0)});
  {
    RingTraceSink ring(fluid, 8);
  }
  fluid.startFlow(FlowSpec{.path = {link}, .bytes = 1_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();
  EXPECT_THROW(RingTraceSink(fluid, 0), util::ContractError);
}

TEST(RingTrace, ComposesWithFlowTracer) {
  // Both sinks observe the same run through the observer hub; the cheap ring
  // must not perturb the exact tracer's accounting.
  FluidSimulator fluid;
  FlowTracer tracer(fluid);
  RingTraceSink ring(fluid, 128);
  const auto link = fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  fluid.startFlow(FlowSpec{.path = {link}, .bytes = 50_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  fluid.run();
  EXPECT_NEAR(tracer.resourceMiB(link), 50.0, 1e-6);
  EXPECT_GE(ring.size(), 3u);
}

}  // namespace
}  // namespace beesim::sim
