#include "cli/args.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim::cli {
namespace {

using namespace beesim::util::literals;

TEST(Args, ParsesFlagValuePairs) {
  const Args args({"--nodes", "8", "--cluster", "plafrim1"});
  EXPECT_EQ(args.getInt("nodes", 0), 8);
  EXPECT_EQ(args.getString("cluster", ""), "plafrim1");
  EXPECT_EQ(args.getString("missing", "fallback"), "fallback");
}

TEST(Args, ParsesEqualsSyntax) {
  const Args args({"--stripe=4", "--total=8GiB"});
  EXPECT_EQ(args.getInt("stripe", 0), 4);
  EXPECT_EQ(args.getBytes("total", 0), 8_GiB);
}

TEST(Args, BooleanFlags) {
  const Args args({"--verbose", "--nodes", "2"}, {"verbose"});
  EXPECT_TRUE(args.getBool("verbose"));
  EXPECT_FALSE(args.getBool("quiet"));
  EXPECT_EQ(args.getInt("nodes", 0), 2);
}

TEST(Args, Positionals) {
  const Args args({"first", "--flag", "v", "second"});
  EXPECT_EQ(args.positionals(), (std::vector<std::string>{"first", "second"}));
}

TEST(Args, TypedParsingErrors) {
  const Args args({"--n", "abc", "--d", "1.5x", "--b", "12zz"});
  EXPECT_THROW(args.getInt("n", 0), util::ConfigError);
  EXPECT_THROW(args.getDouble("d", 0.0), util::ConfigError);
  EXPECT_THROW(args.getBytes("b", 0), util::ConfigError);
}

TEST(Args, GetIntRejectsTrailingGarbage) {
  // std::stol would silently parse "4x" as 4; the strict parser refuses --
  // "--ppn 4x" is a typo, not a request for 4 processes.
  for (const std::string bad : {"4x", "1 2", "0x10", "3.5"}) {
    const Args args({"--ppn", bad});
    EXPECT_THROW(args.getInt("ppn", 0), util::ConfigError) << bad;
  }
  const Args ok({"--ppn", "-4"});
  EXPECT_EQ(ok.getInt("ppn", 0), -4);
}

TEST(Args, GetIntReportsOverflowAsRangeError) {
  const Args args({"--seed", "99999999999999999999"});
  try {
    args.getInt("seed", 0);
    FAIL() << "overflow accepted";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
}

TEST(Args, GetIntRangeOverloadEnforcesBounds) {
  const Args args({"--patience", "7"});
  EXPECT_EQ(args.getInt("patience", 1, 1, 100), 7);
  EXPECT_THROW(args.getInt("patience", 1, 1, 5), util::ConfigError);
  EXPECT_THROW(args.getInt("patience", 1, 8, 100), util::ConfigError);
  // The fallback is returned untouched when the flag is absent.
  EXPECT_EQ(args.getInt("missing", 3, 1, 5), 3);
}

TEST(Args, GetUnsignedRejectsNegatives) {
  const Args args({"--reps", "-3"});
  EXPECT_THROW(args.getUnsigned("reps", 0), util::ConfigError);
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(Args({"--nodes"}), util::ConfigError);
  EXPECT_THROW(Args({"--"}), util::ConfigError);
}

TEST(Args, UnusedFlagsAreReported) {
  const Args args({"--known", "1", "--typo", "2"});
  EXPECT_EQ(args.getInt("known", 0), 1);
  const auto unused = args.unusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "--typo");
}

TEST(Args, GetDoubleParses) {
  const Args args({"--sigma", "0.05"});
  EXPECT_DOUBLE_EQ(args.getDouble("sigma", 1.0), 0.05);
  EXPECT_DOUBLE_EQ(args.getDouble("other", 1.0), 1.0);
}

TEST(Args, GetDoubleRejectsNonFinite) {
  // std::stod parses "nan"/"inf", and NaN then slips past every `x <= 0`
  // guard downstream (NaN comparisons are false) -- reject at the parser.
  for (const std::string bad : {"nan", "NaN", "inf", "-inf", "infinity", "-nan"}) {
    const Args args({"--mttf", bad});
    EXPECT_THROW(args.getDouble("mttf", 0.0), util::ConfigError) << bad;
  }
  // Plain negatives stay parseable (callers own the sign checks).
  const Args negative({"--x", "-2.5"});
  EXPECT_DOUBLE_EQ(negative.getDouble("x", 0.0), -2.5);
}

TEST(Args, GetBoolAcceptsCanonicalSpellings) {
  const Args args({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0", "--f=no"});
  EXPECT_TRUE(args.getBool("a"));
  EXPECT_TRUE(args.getBool("b"));
  EXPECT_TRUE(args.getBool("c"));
  EXPECT_FALSE(args.getBool("d"));
  EXPECT_FALSE(args.getBool("e"));
  EXPECT_FALSE(args.getBool("f"));
  EXPECT_FALSE(args.getBool("absent"));
}

TEST(Args, GetBoolRejectsUnrecognizedValues) {
  // --mirror=tru used to silently read as false (mirroring off, no error).
  for (const std::string bad : {"tru", "TRUE", "on", "off", "2", ""}) {
    const Args args({"--mirror=" + bad});
    EXPECT_THROW(args.getBool("mirror"), util::ConfigError) << "'" << bad << "'";
  }
}

}  // namespace
}  // namespace beesim::cli
