#include "cli/args.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim::cli {
namespace {

using namespace beesim::util::literals;

TEST(Args, ParsesFlagValuePairs) {
  const Args args({"--nodes", "8", "--cluster", "plafrim1"});
  EXPECT_EQ(args.getInt("nodes", 0), 8);
  EXPECT_EQ(args.getString("cluster", ""), "plafrim1");
  EXPECT_EQ(args.getString("missing", "fallback"), "fallback");
}

TEST(Args, ParsesEqualsSyntax) {
  const Args args({"--stripe=4", "--total=8GiB"});
  EXPECT_EQ(args.getInt("stripe", 0), 4);
  EXPECT_EQ(args.getBytes("total", 0), 8_GiB);
}

TEST(Args, BooleanFlags) {
  const Args args({"--verbose", "--nodes", "2"}, {"verbose"});
  EXPECT_TRUE(args.getBool("verbose"));
  EXPECT_FALSE(args.getBool("quiet"));
  EXPECT_EQ(args.getInt("nodes", 0), 2);
}

TEST(Args, Positionals) {
  const Args args({"first", "--flag", "v", "second"});
  EXPECT_EQ(args.positionals(), (std::vector<std::string>{"first", "second"}));
}

TEST(Args, TypedParsingErrors) {
  const Args args({"--n", "abc", "--d", "1.5x", "--b", "12zz"});
  EXPECT_THROW(args.getInt("n", 0), util::ConfigError);
  EXPECT_THROW(args.getDouble("d", 0.0), util::ConfigError);
  EXPECT_THROW(args.getBytes("b", 0), util::ConfigError);
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(Args({"--nodes"}), util::ConfigError);
  EXPECT_THROW(Args({"--"}), util::ConfigError);
}

TEST(Args, UnusedFlagsAreReported) {
  const Args args({"--known", "1", "--typo", "2"});
  EXPECT_EQ(args.getInt("known", 0), 1);
  const auto unused = args.unusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "--typo");
}

TEST(Args, GetDoubleParses) {
  const Args args({"--sigma", "0.05"});
  EXPECT_DOUBLE_EQ(args.getDouble("sigma", 1.0), 0.05);
  EXPECT_DOUBLE_EQ(args.getDouble("other", 1.0), 1.0);
}

}  // namespace
}  // namespace beesim::cli
