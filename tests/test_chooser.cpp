#include "beegfs/chooser.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/allocation.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"

namespace beesim::beegfs {
namespace {

topo::ClusterConfig plafrim() { return topo::makePlafrim(topo::Scenario::kEthernet10G, 4); }

std::string allocationKey(const std::vector<std::size_t>& targets,
                          const topo::ClusterConfig& cluster) {
  return core::Allocation(targets, cluster).key();
}

TEST(PlafrimOrder, MatchesReconstructedSequence) {
  const auto cluster = plafrim();
  const auto order = plafrimRoundRobinOrder(cluster);
  // [101, 201, 202, 203, 204, 102, 103, 104] as flat indices.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 4, 5, 6, 7, 1, 2, 3}));
}

TEST(PlafrimOrder, Count4WindowsAreAlways13) {
  // The paper: a stripe count of 4 on PlaFRIM *always* produces a (1,3)
  // placement -- (101,201,202,203) or (204,102,103,104).
  const auto cluster = plafrim();
  RoundRobinChooser chooser(plafrimRoundRobinOrder(cluster), 0.0);
  util::Rng rng(1);
  std::set<std::string> keys;
  std::set<std::vector<std::size_t>> windows;
  for (int i = 0; i < 16; ++i) {
    auto picks = chooser.choose(4, cluster, rng);
    keys.insert(allocationKey(picks, cluster));
    std::sort(picks.begin(), picks.end());
    windows.insert(picks);
  }
  EXPECT_EQ(keys, (std::set<std::string>{"(1,3)"}));
  EXPECT_EQ(windows.size(), 2u);  // exactly the two placements of the paper
}

TEST(PlafrimOrder, Count6ProducesTwoAllocations) {
  const auto cluster = plafrim();
  RoundRobinChooser chooser(plafrimRoundRobinOrder(cluster), 0.0);
  util::Rng rng(1);
  std::set<std::string> keys;
  for (int i = 0; i < 24; ++i) keys.insert(allocationKey(chooser.choose(6, cluster, rng), cluster));
  // Bimodal source for count 6 (Fig. 6a): (2,4) and (3,3).
  EXPECT_TRUE(keys.count("(3,3)"));
  EXPECT_EQ(keys.size(), 2u);
}

TEST(PlafrimOrder, Count8IsAlwaysBalanced) {
  const auto cluster = plafrim();
  RoundRobinChooser chooser(plafrimRoundRobinOrder(cluster), 0.0);
  util::Rng rng(1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(allocationKey(chooser.choose(8, cluster, rng), cluster), "(4,4)");
  }
}

TEST(RoundRobin, PointerAdvancesByCount) {
  const auto cluster = plafrim();
  RoundRobinChooser chooser(plafrimRoundRobinOrder(cluster), 0.0);
  util::Rng rng(1);
  EXPECT_EQ(chooser.pointer(), 0u);
  chooser.choose(3, cluster, rng);
  EXPECT_EQ(chooser.pointer(), 3u);
  chooser.choose(6, cluster, rng);
  EXPECT_EQ(chooser.pointer(), 1u);  // wraps mod 8
}

TEST(RoundRobin, RaceKeepsPointerSometimes) {
  const auto cluster = plafrim();
  RoundRobinChooser chooser(plafrimRoundRobinOrder(cluster), 1.0 / 3.0);
  util::Rng rng(7);
  int repeats = 0;
  const int trials = 3000;
  auto previous = chooser.choose(4, cluster, rng);
  for (int i = 0; i < trials; ++i) {
    auto current = chooser.choose(4, cluster, rng);
    if (current == previous) ++repeats;
    previous = std::move(current);
  }
  // Consecutive identical windows happen with the race probability (1/3),
  // reproducing the paper's shared-all-four frequency in Fig. 13.
  EXPECT_NEAR(static_cast<double>(repeats) / trials, 1.0 / 3.0, 0.04);
}

TEST(RoundRobin, SetPointerWraps) {
  const auto cluster = plafrim();
  RoundRobinChooser chooser(plafrimRoundRobinOrder(cluster), 0.0);
  chooser.setPointer(11);
  EXPECT_EQ(chooser.pointer(), 3u);
}

TEST(RoundRobin, InterleavedOrderGivesBalancedCount4) {
  // Ablation: had PlaFRIM's round-robin interleaved hosts, count 4 would be
  // the peak-performance (2,2).
  const auto cluster = plafrim();
  RoundRobinChooser chooser(interleavedOrder(cluster), 0.0,
                            ChooserKind::kRoundRobinInterleaved);
  util::Rng rng(1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(allocationKey(chooser.choose(4, cluster, rng), cluster), "(2,2)");
  }
}

TEST(RoundRobin, InvalidConstructionThrows) {
  EXPECT_THROW(RoundRobinChooser({}, 0.0), util::ContractError);
  EXPECT_THROW(RoundRobinChooser({0, 1}, 1.5), util::ContractError);
}

TEST(Random, PicksAreDistinctAndInRange) {
  const auto cluster = plafrim();
  RandomChooser chooser;
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto picks = chooser.choose(5, cluster, rng);
    ASSERT_EQ(picks.size(), 5u);
    std::set<std::size_t> distinct(picks.begin(), picks.end());
    EXPECT_EQ(distinct.size(), 5u);
    for (const auto t : picks) EXPECT_LT(t, 8u);
  }
}

TEST(Random, Count4CoversAllAllocationsIncludingBalanced) {
  // The paper notes a random chooser *would* sometimes produce the balanced
  // (2,2) that round-robin never does.
  const auto cluster = plafrim();
  RandomChooser chooser;
  util::Rng rng(3);
  std::map<std::string, int> keys;
  for (int i = 0; i < 2000; ++i) {
    ++keys[allocationKey(chooser.choose(4, cluster, rng), cluster)];
  }
  EXPECT_GT(keys["(2,2)"], 0);
  EXPECT_GT(keys["(1,3)"], 0);
  EXPECT_GT(keys["(0,4)"], 0);
  // Hypergeometric frequencies: (2,2) 36/70, (1,3) 32/70, (0,4) 2/70.
  EXPECT_NEAR(keys["(2,2)"] / 2000.0, 36.0 / 70.0, 0.05);
  EXPECT_NEAR(keys["(0,4)"] / 2000.0, 2.0 / 70.0, 0.02);
}

/// Balanced chooser property: per-host counts never differ by more than one
/// (and not at all when the count divides the host count).
class BalancedChooserTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BalancedChooserTest, SpreadIsEven) {
  const auto cluster = plafrim();
  BalancedChooser chooser;
  util::Rng rng(4);
  const std::size_t count = GetParam();
  for (int i = 0; i < 50; ++i) {
    const auto picks = chooser.choose(count, cluster, rng);
    const core::Allocation alloc(picks, cluster);
    EXPECT_LE(alloc.maxPerHost() - alloc.minPerHost(), 1u) << "count=" << count;
    if (count % cluster.hosts.size() == 0) {
      EXPECT_TRUE(alloc.isBalanced()) << "count=" << count;
    }
    std::set<std::size_t> distinct(picks.begin(), picks.end());
    EXPECT_EQ(distinct.size(), count);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, BalancedChooserTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(BalancedChooser, HandlesUnevenHosts) {
  auto cluster = plafrim();
  cluster.hosts[0].targets.pop_back();  // 3 + 4 targets
  BalancedChooser chooser;
  util::Rng rng(5);
  const auto picks = chooser.choose(7, cluster, rng);  // must take all targets
  EXPECT_EQ(picks.size(), 7u);
  std::set<std::size_t> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 7u);
}

TEST(Chooser, CountBoundsAreChecked) {
  const auto cluster = plafrim();
  RandomChooser chooser;
  util::Rng rng(6);
  EXPECT_THROW(chooser.choose(0, cluster, rng), util::ContractError);
  EXPECT_THROW(chooser.choose(9, cluster, rng), util::ContractError);
}

TEST(Chooser, FactoryInstantiatesConfiguredKind) {
  const auto cluster = plafrim();
  BeegfsParams params;
  params.chooser = ChooserKind::kBalanced;
  EXPECT_EQ(makeChooser(params, cluster)->kind(), ChooserKind::kBalanced);
  params.chooser = ChooserKind::kRandom;
  EXPECT_EQ(makeChooser(params, cluster)->kind(), ChooserKind::kRandom);
  params.chooser = ChooserKind::kRoundRobin;
  EXPECT_EQ(makeChooser(params, cluster)->kind(), ChooserKind::kRoundRobin);
  params.chooser = ChooserKind::kRoundRobinInterleaved;
  EXPECT_EQ(makeChooser(params, cluster)->kind(), ChooserKind::kRoundRobinInterleaved);
}

TEST(Chooser, NamesAreStable) {
  EXPECT_STREQ(chooserName(ChooserKind::kRoundRobin), "round-robin");
  EXPECT_STREQ(chooserName(ChooserKind::kRandom), "random");
  EXPECT_STREQ(chooserName(ChooserKind::kBalanced), "balanced");
}

}  // namespace
}  // namespace beesim::beegfs
