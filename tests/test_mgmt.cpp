#include "beegfs/mgmt.hpp"

#include <gtest/gtest.h>

#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim::beegfs {
namespace {

using namespace beesim::util::literals;

ManagementService makeMgmt() {
  return ManagementService(topo::makePlafrim(topo::Scenario::kEthernet10G, 2), 16_TiB);
}

TEST(Mgmt, RegistersAllTargets) {
  const auto mgmt = makeMgmt();
  EXPECT_EQ(mgmt.targetCount(), 8u);
  EXPECT_EQ(mgmt.hostCount(), 2u);
  EXPECT_EQ(mgmt.targetsOnHost(0), 4u);
}

TEST(Mgmt, EntriesCarryPaperNumbering) {
  const auto mgmt = makeMgmt();
  EXPECT_EQ(mgmt.target(0).beegfsNum, 101);
  EXPECT_EQ(mgmt.target(7).beegfsNum, 204);
  EXPECT_EQ(mgmt.target(5).host, 1u);
  EXPECT_EQ(mgmt.target(5).indexInHost, 1u);
}

TEST(Mgmt, AllTargetsOnlineInitially) {
  const auto mgmt = makeMgmt();
  EXPECT_EQ(mgmt.onlineTargets().size(), 8u);
}

TEST(Mgmt, OfflineTargetsDisappearFromOnlineList) {
  auto mgmt = makeMgmt();
  mgmt.setTargetOnline(3, false);
  mgmt.setTargetOnline(6, false);
  const auto online = mgmt.onlineTargets();
  EXPECT_EQ(online.size(), 6u);
  for (const auto t : online) {
    EXPECT_NE(t, 3u);
    EXPECT_NE(t, 6u);
  }
  mgmt.setTargetOnline(3, true);
  EXPECT_EQ(mgmt.onlineTargets().size(), 7u);
}

TEST(Mgmt, UsageAccounting) {
  auto mgmt = makeMgmt();
  mgmt.recordUsage(0, 10_GiB);
  mgmt.recordUsage(0, 5_GiB);
  EXPECT_EQ(mgmt.target(0).used, 15_GiB);
  EXPECT_EQ(mgmt.target(1).used, 0u);
}

TEST(Mgmt, FullTargetRejectsWrites) {
  auto mgmt = makeMgmt();
  mgmt.recordUsage(0, 16_TiB);
  EXPECT_THROW(mgmt.recordUsage(0, 1), util::ConfigError);
}

TEST(Mgmt, ZeroCapacityDisablesAccountingLimit) {
  ManagementService mgmt(topo::makePlafrim(topo::Scenario::kEthernet10G, 2), 0);
  mgmt.recordUsage(0, 100_TiB);
  EXPECT_NO_THROW(mgmt.recordUsage(0, 100_TiB));
}

TEST(Mgmt, UnknownTargetThrows) {
  auto mgmt = makeMgmt();
  EXPECT_THROW(mgmt.target(99), util::ContractError);
  EXPECT_THROW(mgmt.setTargetOnline(99, false), util::ContractError);
  EXPECT_THROW(mgmt.recordUsage(99, 1), util::ContractError);
  EXPECT_THROW(mgmt.targetsOnHost(5), util::ContractError);
}

}  // namespace
}  // namespace beesim::beegfs
