#include "beegfs/filesystem.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/allocation.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim::beegfs {
namespace {

using namespace beesim::util::literals;

struct Fixture {
  sim::FluidSimulator fluid;
  topo::ClusterConfig cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  Deployment deployment;
  FileSystem fs;

  explicit Fixture(BeegfsParams params = {})
      : deployment(fluid, cluster, params, util::Rng(1)), fs(deployment, util::Rng(2)) {}
};

TEST(FileSystem, DefaultDirectoryUsesDeploymentDefaults) {
  Fixture f;
  const auto settings = f.fs.settingsFor("/anything/file");
  EXPECT_EQ(settings.stripeCount, 4u);        // PlaFRIM default
  EXPECT_EQ(settings.chunkSize, 512_KiB);
}

TEST(FileSystem, MkdirOverridesByDeepestPrefix) {
  Fixture f;
  f.fs.mkdir("/data", StripeSettings{2, 1_MiB});
  f.fs.mkdir("/data/wide", StripeSettings{8, 512_KiB});
  EXPECT_EQ(f.fs.settingsFor("/data/file").stripeCount, 2u);
  EXPECT_EQ(f.fs.settingsFor("/data/wide/file").stripeCount, 8u);
  EXPECT_EQ(f.fs.settingsFor("/elsewhere/file").stripeCount, 4u);
  // Prefix must respect path boundaries.
  EXPECT_EQ(f.fs.settingsFor("/datafile").stripeCount, 4u);
}

TEST(FileSystem, CreateUsesDirectoryStripeCount) {
  Fixture f;
  f.fs.mkdir("/wide", StripeSettings{8, 512_KiB});
  const auto handle = f.fs.create("/wide/out.dat");
  EXPECT_EQ(f.fs.info(handle).pattern.stripeCount(), 8u);
}

TEST(FileSystem, RoundRobinCreateAlwaysGives13OnPlafrim) {
  BeegfsParams params;
  params.rrCreateRaceProbability = 0.0;
  Fixture f(params);
  for (int i = 0; i < 8; ++i) {
    const auto handle = f.fs.create("/beegfs/f" + std::to_string(i));
    const core::Allocation alloc(f.fs.info(handle).pattern.targets(), f.cluster);
    EXPECT_EQ(alloc.key(), "(1,3)");
  }
}

TEST(FileSystem, CreatePinnedBypassesChooser) {
  Fixture f;
  const auto handle = f.fs.createPinned("/pinned", {0, 4}, 1_MiB);
  EXPECT_EQ(f.fs.info(handle).pattern.targets(), (std::vector<std::size_t>{0, 4}));
  EXPECT_EQ(f.fs.info(handle).pattern.chunkSize(), 1_MiB);
}

TEST(FileSystem, CreatePinnedRejectsUnknownTargets) {
  Fixture f;
  EXPECT_THROW(f.fs.createPinned("/pinned", {99}, 1_MiB), util::ContractError);
}

TEST(FileSystem, StripeCountClampsToOnlineTargets) {
  BeegfsParams params;
  params.defaultStripe.stripeCount = 8;
  Fixture f(params);
  for (std::size_t t = 2; t < 8; ++t) f.deployment.mgmt().setTargetOnline(t, false);
  const auto handle = f.fs.create("/clamped");
  EXPECT_EQ(f.fs.info(handle).pattern.stripeCount(), 2u);
}

TEST(FileSystem, OfflineTargetsAreAvoided) {
  BeegfsParams params;
  params.chooser = ChooserKind::kRandom;
  Fixture f(params);
  f.deployment.mgmt().setTargetOnline(0, false);
  f.deployment.mgmt().setTargetOnline(1, false);
  for (int i = 0; i < 50; ++i) {
    const auto handle = f.fs.create("/nofail/f" + std::to_string(i));
    for (const auto t : f.fs.info(handle).pattern.targets()) {
      EXPECT_TRUE(f.deployment.mgmt().target(t).online);
    }
  }
}

TEST(FileSystem, NoOnlineTargetsThrows) {
  Fixture f;
  for (std::size_t t = 0; t < 8; ++t) f.deployment.mgmt().setTargetOnline(t, false);
  EXPECT_THROW(f.fs.create("/doomed"), util::ConfigError);
}

TEST(FileSystem, WriteCompletesAndTracksSizeAndUsage) {
  Fixture f;
  const auto handle = f.fs.createPinned("/w", {0, 4}, 512_KiB);
  f.deployment.setNodeProcesses(0, 1);
  bool done = false;
  f.fs.writeAsync(0, handle, 0, 64_MiB, 4.0, [&](util::Seconds) { done = true; });
  f.fluid.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.fs.info(handle).size, 64_MiB);
  EXPECT_EQ(f.deployment.mgmt().target(0).used, 32_MiB);
  EXPECT_EQ(f.deployment.mgmt().target(4).used, 32_MiB);
}

TEST(FileSystem, BalancedWriteIsFasterThanUnbalancedOnScenario1) {
  // The Fig. 9 effect at file-system level: same bytes, (1,1) vs (0,2).
  // The writing node's client stack must not be the bottleneck, so lift it.
  auto timeFor = [](std::vector<std::size_t> targets) {
    sim::FluidSimulator fluid;
    auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 1);
    cluster.nodes[0].clientThroughputCap = 1e5;
    cluster.nodes[0].nicBandwidth = 1e5;
    Deployment deployment(fluid, cluster, BeegfsParams{}, util::Rng(1));
    FileSystem fs(deployment, util::Rng(2));
    const auto handle = fs.createPinned("/x", std::move(targets), 512_KiB);
    double end = 0.0;
    fs.writeAsync(0, handle, 0, 2_GiB, 64.0, [&](util::Seconds t) { end = t; });
    fluid.run();
    return end;
  };
  const double balanced = timeFor({0, 4});
  const double unbalanced = timeFor({4, 5});
  EXPECT_LT(balanced, unbalanced);
  EXPECT_NEAR(unbalanced / balanced, 2.0, 0.15);
}

TEST(FileSystem, ZeroLengthWriteCompletesViaEvent) {
  Fixture f;
  const auto handle = f.fs.createPinned("/z", {0}, 512_KiB);
  bool done = false;
  f.fs.writeAsync(0, handle, 0, 0, 1.0, [&](util::Seconds) { done = true; });
  EXPECT_FALSE(done);  // asynchronous: fires from the event loop
  f.fluid.run();
  EXPECT_TRUE(done);
}

TEST(FileSystem, InvalidArgumentsThrow) {
  Fixture f;
  EXPECT_THROW(f.fs.create("relative/path"), util::ContractError);
  EXPECT_THROW(f.fs.mkdir("relative", StripeSettings{}), util::ContractError);
  EXPECT_THROW(f.fs.info(FileHandle{42}), util::ContractError);
  const auto handle = f.fs.createPinned("/v", {0}, 512_KiB);
  EXPECT_THROW(f.fs.writeAsync(0, handle, 0, 1_MiB, 0.0, nullptr), util::ContractError);
  EXPECT_THROW(f.fs.writeAsync(0, FileHandle{42}, 0, 1_MiB, 1.0, nullptr),
               util::ContractError);
}

TEST(FileSystem, ReadRequiresDataToExist) {
  Fixture f;
  const auto handle = f.fs.createPinned("/r", {0, 4}, 512_KiB);
  EXPECT_THROW(f.fs.readAsync(0, handle, 0, 1_MiB, 1.0, nullptr), util::ContractError);
  f.fs.truncate(handle, 2_MiB);
  bool done = false;
  f.fs.readAsync(0, handle, 0, 2_MiB, 4.0, [&](util::Seconds) { done = true; });
  f.fluid.run();
  EXPECT_TRUE(done);
  // Reads do not consume capacity accounting.
  EXPECT_EQ(f.deployment.mgmt().target(0).used, 0u);
}

TEST(FileSystem, TruncateSetsLogicalSize) {
  Fixture f;
  const auto handle = f.fs.createPinned("/t", {1}, 512_KiB);
  EXPECT_EQ(f.fs.info(handle).size, 0u);
  f.fs.truncate(handle, 5_GiB);
  EXPECT_EQ(f.fs.info(handle).size, 5_GiB);
  EXPECT_THROW(f.fs.truncate(FileHandle{42}, 1), util::ContractError);
}

TEST(FileSystem, FileCountTracksCreates) {
  Fixture f;
  EXPECT_EQ(f.fs.fileCount(), 0u);
  f.fs.create("/a");
  f.fs.createPinned("/b", {1}, 512_KiB);
  EXPECT_EQ(f.fs.fileCount(), 2u);
}

}  // namespace
}  // namespace beesim::beegfs
