#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::stats {
namespace {

std::vector<double> normalSample(std::uint64_t seed, double mean, double sd, int n) {
  util::Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (auto& x : xs) x = rng.normal(mean, sd);
  return xs;
}

TEST(Bootstrap, MeanCiBracketsTheEstimate) {
  const auto xs = normalSample(1, 1000.0, 50.0, 60);
  const auto ci = bootstrapMeanCi(xs);
  EXPECT_LE(ci.lo, ci.estimate);
  EXPECT_GE(ci.hi, ci.estimate);
  EXPECT_NEAR(ci.estimate, 1000.0, 25.0);
  // Width ~ 2 * 1.96 * sd/sqrt(n) ~ 25; sanity bounds.
  EXPECT_GT(ci.hi - ci.lo, 10.0);
  EXPECT_LT(ci.hi - ci.lo, 60.0);
  EXPECT_TRUE(ci.contains(ci.estimate));
}

TEST(Bootstrap, CoverageIsRoughlyNominal) {
  // Repeat: the 90% CI must contain the true mean in roughly 90% of trials.
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto xs = normalSample(100 + t, 42.0, 8.0, 30);
    if (bootstrapMeanCi(xs, 0.90, 400, 7).contains(42.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.80);
  EXPECT_LT(coverage, 0.97);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  const auto xs = normalSample(3, 10.0, 1.0, 20);
  const auto a = bootstrapMeanCi(xs, 0.95, 500, 11);
  const auto b = bootstrapMeanCi(xs, 0.95, 500, 11);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, MedianCiOnSkewedData) {
  // Log-normal-ish skew: median CI sits near the true median, well below
  // the mean.
  util::Rng rng(4);
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.logNormalMedian(100.0, 0.8);
  const auto ci = bootstrapMedianCi(xs);
  EXPECT_NEAR(ci.estimate, 100.0, 20.0);
  EXPECT_TRUE(ci.contains(ci.estimate));
}

TEST(Bootstrap, DifferenceCiSpansZeroForEqualGroups) {
  // Large samples so the sampling error of the two equal-mean groups is
  // well inside the interval width.
  const auto a = normalSample(5, 500.0, 30.0, 400);
  const auto b = normalSample(6, 500.0, 30.0, 400);
  const auto ci = bootstrapMeanDifferenceCi(a, b);
  EXPECT_TRUE(ci.contains(0.0)) << ci.describe();
}

TEST(Bootstrap, DifferenceCiExcludesZeroForShiftedGroups) {
  const auto a = normalSample(7, 550.0, 30.0, 50);
  const auto b = normalSample(8, 500.0, 30.0, 50);
  const auto ci = bootstrapMeanDifferenceCi(a, b);
  EXPECT_FALSE(ci.contains(0.0)) << ci.describe();
  EXPECT_NEAR(ci.estimate, 50.0, 20.0);
}

TEST(Bootstrap, InvalidArgumentsThrow) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(bootstrapMeanCi(std::vector<double>{}), util::ContractError);
  EXPECT_THROW(bootstrapMeanCi(xs, 1.5), util::ContractError);
  EXPECT_THROW(bootstrapMeanCi(xs, 0.95, 10), util::ContractError);
}

TEST(Bootstrap, DescribeFormatsInterval) {
  const auto xs = normalSample(9, 10.0, 1.0, 30);
  const auto text = bootstrapMeanCi(xs).describe(2);
  EXPECT_NE(text.find('['), std::string::npos);
  EXPECT_NE(text.find("@95%"), std::string::npos);
}

}  // namespace
}  // namespace beesim::stats
