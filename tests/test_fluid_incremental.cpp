// Tests of the incremental, component-aware rate resolution in the fluid
// core: deferred completion callbacks (reentrancy), component dirtiness,
// randomized differential checks against from-scratch solves, the stalled-
// flow deadlock diagnostics, and the zero-allocation steady-state guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "sim/fluid.hpp"
#include "sim/maxmin.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

// --- Global allocation probe -------------------------------------------
//
// The test binary replaces the global allocator with a counting wrapper.
// The counter only ticks while a test arms it, so the rest of the suite is
// unaffected (beyond a predictable malloc passthrough).
namespace {
std::atomic<std::uint64_t> gAllocCount{0};
std::atomic<bool> gAllocProbeArmed{false};

struct AllocProbe {
  AllocProbe() {
    gAllocCount.store(0, std::memory_order_relaxed);
    gAllocProbeArmed.store(true, std::memory_order_relaxed);
  }
  ~AllocProbe() { gAllocProbeArmed.store(false, std::memory_order_relaxed); }
  std::uint64_t count() const { return gAllocCount.load(std::memory_order_relaxed); }
};
}  // namespace

// GCC's allocator-pairing analysis cannot see that these replacements keep
// new/delete consistent (both sides are malloc/free underneath).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
void* countingAlloc(std::size_t size) {
  if (gAllocProbeArmed.load(std::memory_order_relaxed)) {
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return countingAlloc(size); }
void* operator new[](std::size_t size) { return countingAlloc(size); }
// The nothrow forms must be replaced alongside the throwing ones: libstdc++'s
// std::get_temporary_buffer (std::stable_sort) allocates through nothrow new
// but releases through plain operator delete, so a partial replacement pairs
// the default allocator with std::free.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (gAllocProbeArmed.load(std::memory_order_relaxed)) {
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace beesim::sim {
namespace {

using namespace beesim::util::literals;

ResourceIndex addLink(FluidSimulator& fluid, const std::string& name, double capacity) {
  return fluid.addResource(ResourceSpec{name, constantCapacity(capacity)});
}

/// Observer recording the id set of every onRatesSolved call.
class SolveSetObserver : public FluidObserver {
 public:
  void onFlowStarted(FlowId, std::span<const ResourceIndex>, util::Bytes,
                     SimTime) override {}
  void onRatesSolved(SimTime, std::span<const FlowId> ids, std::span<const util::MiBps>,
                     std::size_t) override {
    std::set<std::uint64_t> set;
    for (const auto id : ids) set.insert(id.value);
    solves.push_back(std::move(set));
  }
  void onFlowCompleted(const FlowStats&) override {}

  std::vector<std::set<std::uint64_t>> solves;
};

TEST(FluidIncremental, CompletionCallbacksMayStartFlowsAtSameInstant) {
  // Regression for the completion-sweep reentrancy hazard: four flows finish
  // at the *same* timestamp, and every callback immediately starts a new
  // flow.  Before callbacks were deferred to a drain list, the callback
  // mutated the flow bookkeeping while the sweep was iterating it.
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  std::size_t firstWave = 0;
  std::size_t secondWave = 0;
  double lastEnd = 0.0;
  for (int i = 0; i < 4; ++i) {
    fluid.startFlow(FlowSpec{.path = {link},
                             .bytes = 100_MiB,
                             .queueWeight = 1.0,
                             .rateCap = 0.0,
                             .onComplete = [&](const FlowStats&) {
                               ++firstWave;
                               fluid.startFlow(FlowSpec{
                                   .path = {link},
                                   .bytes = 50_MiB,
                                   .queueWeight = 1.0,
                                   .rateCap = 0.0,
                                   .onComplete = [&](const FlowStats& s) {
                                     ++secondWave;
                                     lastEnd = std::max(lastEnd, s.endTime);
                                   }});
                             }});
  }
  fluid.run();
  EXPECT_EQ(firstWave, 4u);
  EXPECT_EQ(secondWave, 4u);
  // Wave 1: 4 x 100 MiB at 25 MiB/s each -> t=4.  Wave 2: 4 x 50 MiB at
  // 25 MiB/s -> +2 s.
  EXPECT_NEAR(lastEnd, 6.0, 1e-6);
}

TEST(FluidIncremental, CompletionCallbackMayInvalidateCapacities) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  bool done = false;
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 100_MiB,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = [&](const FlowStats&) {
                             fluid.invalidateCapacities();
                             done = true;
                           }});
  fluid.run();
  EXPECT_TRUE(done);
}

TEST(FluidIncremental, DisjointComponentsAreNotResolved) {
  // Two flows on disjoint links: starting the second must re-solve only its
  // own component; the first flow's (clean) component is left untouched.
  FluidSimulator fluid;
  SolveSetObserver observer;
  fluid.setObserver(&observer);
  const auto linkA = addLink(fluid, "a", 100.0);
  const auto linkB = addLink(fluid, "b", 100.0);
  const auto f1 = fluid.startFlow(FlowSpec{.path = {linkA}, .bytes = 1_GiB,
                                           .queueWeight = 1.0, .rateCap = 0.0,
                                           .onComplete = nullptr});
  fluid.engine().runUntil(0.0);
  FlowId f2;
  fluid.engine().schedule(1.0, [&] {
    f2 = fluid.startFlow(FlowSpec{.path = {linkB}, .bytes = 1_GiB,
                                  .queueWeight = 1.0, .rateCap = 0.0,
                                  .onComplete = nullptr});
  });
  fluid.engine().runUntil(1.0);
  ASSERT_EQ(observer.solves.size(), 2u);
  EXPECT_EQ(observer.solves[0], (std::set<std::uint64_t>{f1.value}));
  EXPECT_EQ(observer.solves[1], (std::set<std::uint64_t>{f2.value}));
  // The clean component kept its rate without being re-solved.
  EXPECT_NEAR(fluid.flowRate(f1), 100.0, 1e-9);
  EXPECT_NEAR(fluid.flowRate(f2), 100.0, 1e-9);
}

TEST(FluidIncremental, SharedResourceMergesComponents) {
  // A flow crossing both links welds the two components into one, and the
  // merged component is re-solved as a whole.
  FluidSimulator fluid;
  SolveSetObserver observer;
  fluid.setObserver(&observer);
  const auto linkA = addLink(fluid, "a", 100.0);
  const auto linkB = addLink(fluid, "b", 100.0);
  const auto f1 = fluid.startFlow(FlowSpec{.path = {linkA}, .bytes = 1_GiB,
                                           .queueWeight = 1.0, .rateCap = 0.0,
                                           .onComplete = nullptr});
  const auto f2 = fluid.startFlow(FlowSpec{.path = {linkB}, .bytes = 1_GiB,
                                           .queueWeight = 1.0, .rateCap = 0.0,
                                           .onComplete = nullptr});
  fluid.engine().runUntil(0.0);
  FlowId f3;
  fluid.engine().schedule(1.0, [&] {
    f3 = fluid.startFlow(FlowSpec{.path = {linkA, linkB}, .bytes = 1_GiB,
                                  .queueWeight = 1.0, .rateCap = 0.0,
                                  .onComplete = nullptr});
  });
  fluid.engine().runUntil(1.0);
  ASSERT_FALSE(observer.solves.empty());
  EXPECT_EQ(observer.solves.back(),
            (std::set<std::uint64_t>{f1.value, f2.value, f3.value}));
  // Max-min over the merged component: f3 is bottlenecked to 50 on either
  // link, and f1/f2 take the remainder.
  EXPECT_NEAR(fluid.flowRate(f3), 50.0, 1e-9);
  EXPECT_NEAR(fluid.flowRate(f1), 50.0, 1e-9);
  EXPECT_NEAR(fluid.flowRate(f2), 50.0, 1e-9);
}

TEST(FluidIncremental, DeadlockReportsStalledFlowPaths) {
  FluidSimulator fluid;
  const auto nic = addLink(fluid, "client-nic", 100.0);
  const auto dead = addLink(fluid, "dead-ost", 0.0);
  fluid.startFlow(FlowSpec{.path = {nic, dead}, .bytes = 1_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  try {
    fluid.run();
    FAIL() << "expected a deadlock ContractError";
  } catch (const util::ContractError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlocked"), std::string::npos) << msg;
    EXPECT_NE(msg.find("flow #"), std::string::npos) << msg;
    EXPECT_NE(msg.find("client-nic"), std::string::npos) << msg;
    EXPECT_NE(msg.find("dead-ost"), std::string::npos) << msg;
  }
}

TEST(FluidIncremental, RandomizedIncrementalMatchesScratchSolve) {
  // Property test: random multi-component scenarios with staggered starts,
  // weights, rate caps and periodic re-solves, run with the differential
  // check enabled -- every resolve re-solves all live flows from scratch and
  // asserts the incremental rates match to 1e-9 relative.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    util::Rng rng(seed);
    FluidSimulator fluid;
    fluid.setSolverCheck(true);
    fluid.setResolveInterval(0.1);

    const std::size_t nGroups = 1 + seed % 3;  // disjoint resource groups
    constexpr std::size_t kGroupSize = 4;
    std::vector<ResourceIndex> resources;
    for (std::size_t g = 0; g < nGroups; ++g) {
      for (std::size_t r = 0; r < kGroupSize; ++r) {
        const double base = rng.uniform(50.0, 500.0);
        // Half the resources wobble over time so clean/dirty transitions and
        // capacity-change detection are exercised, not just membership.
        std::string name = "r";
        name += std::to_string(g);
        name += '_';
        name += std::to_string(r);
        if (r % 2 == 0) {
          resources.push_back(fluid.addResource(ResourceSpec{
              std::move(name), [base](const ResourceLoad& load) {
                return base * (1.0 + 0.2 * std::sin(3.0 * load.time));
              }}));
        } else {
          resources.push_back(addLink(fluid, name, base));
        }
      }
    }

    std::size_t completed = 0;
    constexpr std::size_t kFlows = 24;
    for (std::size_t f = 0; f < kFlows; ++f) {
      const auto group =
          static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(nGroups) - 1));
      FlowSpec spec;
      const auto pathLen = static_cast<std::size_t>(1 + rng.uniformInt(0, 2));
      for (const auto r : rng.sampleWithoutReplacement(kGroupSize, pathLen)) {
        spec.path.push_back(resources[group * kGroupSize + r]);
      }
      spec.bytes = static_cast<util::Bytes>(rng.uniformInt(10, 200)) * 1_MiB;
      spec.queueWeight = rng.uniform(0.5, 4.0);
      spec.rateCap = rng.uniform(0.0, 1.0) < 0.5 ? rng.uniform(20.0, 100.0) : 0.0;
      spec.onComplete = [&completed](const FlowStats&) { ++completed; };
      fluid.startFlowAt(rng.uniform(0.0, 2.0), std::move(spec));
    }
    fluid.run();
    EXPECT_EQ(completed, kFlows) << "seed " << seed;
  }
}

TEST(FluidIncremental, SteadyStateResolveIsAllocationFree) {
  // The acceptance bar for the incremental resolver: once warmed up, the
  // periodic resolve path (advance -> capacity evaluation -> component solve
  // -> wakeup rescheduling) performs zero heap allocations.  Time-varying
  // capacities keep every component dirty, so the solver genuinely runs in
  // the measured window.
  FluidSimulator fluid;
  fluid.setSolverCheck(false);  // the differential check allocates by design
  fluid.setResolveInterval(0.05);
  std::vector<ResourceIndex> links;
  for (int r = 0; r < 6; ++r) {
    links.push_back(fluid.addResource(ResourceSpec{
        "link" + std::to_string(r), [](const ResourceLoad& load) {
          return 200.0 + 50.0 * std::sin(load.time);
        }}));
  }
  // Two disjoint components, several multi-resource flows each; sizes large
  // enough that nothing completes inside the measurement window.
  for (int f = 0; f < 4; ++f) {
    fluid.startFlow(FlowSpec{.path = {links[0], links[1], links[2]},
                             .bytes = 1_TiB,
                             .queueWeight = 1.0 + f,
                             .rateCap = 0.0,
                             .onComplete = nullptr});
    fluid.startFlow(FlowSpec{.path = {links[3], links[4], links[5]},
                             .bytes = 1_TiB,
                             .queueWeight = 1.0 + f,
                             .rateCap = 0.0,
                             .onComplete = nullptr});
  }
  fluid.engine().runUntil(1.0);  // warm up scratch arrays and event slots
  const auto resolvesBefore = fluid.resolveCount();
  const auto iterationsBefore = fluid.solverIterations();
  {
    AllocProbe probe;
    fluid.engine().runUntil(2.0);
    EXPECT_EQ(probe.count(), 0u)
        << "steady-state resolves must not allocate";
  }
  EXPECT_GE(fluid.resolveCount(), resolvesBefore + 15);
  EXPECT_GT(fluid.solverIterations(), iterationsBefore)
      << "the solver must actually run in the measured window";
  EXPECT_EQ(fluid.activeFlows(), 8u);
}

TEST(FluidIncremental, ClusterScaleResolveIsAllocationFree) {
  // The cluster-scale bar (DESIGN.md §2.7): 10k flows over 1k wobbling
  // resources in 100 disjoint components, with a ring trace sink attached --
  // and the warmed-up resolve path still performs zero heap allocations.
  // Checked on both the exact path (ε = 0, every component re-solves every
  // tick) and the ε-bounded path (deferral bookkeeping must be free too).
  for (const double epsilon : {0.0, 25.0}) {
    FluidSimulator fluid;
    fluid.setSolverCheck(false);  // the differential check allocates by design
    if (epsilon > 0.0) fluid.setSolverEpsilon(epsilon);
    fluid.setResolveInterval(0.05);
    constexpr std::size_t kApps = 100;
    constexpr std::size_t kResPerApp = 10;
    constexpr std::size_t kFlowsPerApp = 100;
    std::vector<ResourceIndex> links;
    for (std::size_t r = 0; r < kApps * kResPerApp; ++r) {
      const double phase = 0.1 * static_cast<double>(r);
      links.push_back(fluid.addResource(ResourceSpec{
          "link" + std::to_string(r), [phase](const ResourceLoad& load) {
            return 500.0 + 2.0 * std::sin(3.0 * load.time + phase);
          }}));
    }
    util::Rng rng(20220714);
    for (std::size_t a = 0; a < kApps; ++a) {
      for (std::size_t f = 0; f < kFlowsPerApp; ++f) {
        FlowSpec spec;
        for (const auto r : rng.sampleWithoutReplacement(kResPerApp, 3)) {
          spec.path.push_back(links[a * kResPerApp + r]);
        }
        spec.bytes = 1_TiB;  // nothing completes inside the window
        spec.queueWeight = rng.uniform(0.5, 4.0);
        fluid.startFlow(std::move(spec));
      }
    }
    RingTraceSink ring(fluid, 1u << 16);
    fluid.engine().runUntil(0.5);  // warm up pools, scratch and observer runs
    const auto resolvesBefore = fluid.resolveCount();
    {
      AllocProbe probe;
      fluid.engine().runUntil(1.0);
      EXPECT_EQ(probe.count(), 0u)
          << "cluster-scale steady-state resolves must not allocate (epsilon="
          << epsilon << ")";
    }
    EXPECT_GE(fluid.resolveCount(), resolvesBefore + 9);
    EXPECT_EQ(fluid.activeFlows(), kApps * kFlowsPerApp);
    EXPECT_GT(ring.recorded(), 0u);
    if (epsilon > 0.0) {
      EXPECT_GT(fluid.deferredResolves(), 0u)
          << "the wobble stays inside ε, so deferral must engage";
    } else {
      EXPECT_EQ(fluid.deferredResolves(), 0u);
    }
  }
}

TEST(SolverWorkspaceTest, SubsetSolveMatchesWholeProblem) {
  // Solving two disjoint halves of a problem through one reused workspace
  // must reproduce the reference whole-problem solution exactly (max-min
  // decomposes over connected components).
  util::Rng rng(7);
  constexpr std::size_t kRes = 8;
  constexpr std::size_t kFlows = 32;
  std::vector<SolverResource> resources(kRes);
  for (auto& r : resources) r.capacity = rng.uniform(50.0, 400.0);
  std::vector<SolverFlow> flows(kFlows);
  for (std::size_t f = 0; f < kFlows; ++f) {
    const std::size_t half = f % 2;  // even flows -> resources 0..3, odd -> 4..7
    for (const auto r : rng.sampleWithoutReplacement(kRes / 2, 2)) {
      flows[f].resources.push_back(static_cast<std::uint32_t>(half * kRes / 2 + r));
    }
    flows[f].weight = rng.uniform(0.5, 4.0);
    if (f % 3 == 0) flows[f].rateCap = rng.uniform(10.0, 60.0);
  }
  const auto reference = solveMaxMin(resources, flows);

  // Flatten to the CSR view.
  std::vector<double> capacity(kRes);
  for (std::size_t r = 0; r < kRes; ++r) capacity[r] = resources[r].capacity;
  std::vector<std::uint32_t> adjacency;
  std::vector<std::uint32_t> adjOffset(kFlows);
  std::vector<std::uint32_t> adjLen(kFlows);
  std::vector<double> weight(kFlows);
  std::vector<double> rateCap(kFlows);
  for (std::size_t f = 0; f < kFlows; ++f) {
    adjOffset[f] = static_cast<std::uint32_t>(adjacency.size());
    adjLen[f] = static_cast<std::uint32_t>(flows[f].resources.size());
    adjacency.insert(adjacency.end(), flows[f].resources.begin(),
                     flows[f].resources.end());
    weight[f] = flows[f].weight;
    rateCap[f] = flows[f].rateCap;
  }
  const SolverView view{capacity, adjacency, adjOffset, adjLen, weight, rateCap};

  SolverWorkspace workspace;
  std::vector<double> rates(kFlows, -1.0);
  std::vector<std::uint32_t> evens;
  std::vector<std::uint32_t> odds;
  for (std::uint32_t f = 0; f < kFlows; ++f) (f % 2 == 0 ? evens : odds).push_back(f);
  workspace.solveSubset(view, evens, rates);
  workspace.solveSubset(view, odds, rates);
  for (std::size_t f = 0; f < kFlows; ++f) {
    EXPECT_NEAR(rates[f], reference.rates[f],
                1e-9 * std::max(1.0, reference.rates[f]))
        << "flow " << f;
  }
}

TEST(SolverWorkspaceTest, IgnoresSlotsOutsideTheSubset) {
  // Stale (free) slots may carry garbage adjacency; only the named subset is
  // read.  Capacity 100, two live slots out of four.
  const std::vector<double> capacity{100.0};
  const std::vector<std::uint32_t> adjacency{0, 0, 0, 0};
  const std::vector<std::uint32_t> adjOffset{0, 1, 2, 3};
  const std::vector<std::uint32_t> adjLen{1, 0, 1, 0};  // slots 1/3 are free
  const std::vector<double> weight{1.0, 0.0, 3.0, -1.0};
  const std::vector<double> rateCap{0.0, 0.0, 0.0, 0.0};
  const SolverView view{capacity, adjacency, adjOffset, adjLen, weight, rateCap};
  SolverWorkspace workspace;
  std::vector<double> rates(4, -7.0);
  const std::vector<std::uint32_t> subset{0, 2};
  workspace.solveSubset(view, subset, rates);
  EXPECT_NEAR(rates[0], 25.0, 1e-9);
  EXPECT_NEAR(rates[2], 75.0, 1e-9);
  EXPECT_DOUBLE_EQ(rates[1], -7.0);  // untouched
  EXPECT_DOUBLE_EQ(rates[3], -7.0);
}

}  // namespace
}  // namespace beesim::sim
