#include "topology/loader.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "topology/plafrim.hpp"
#include "util/error.hpp"

namespace beesim::topo {
namespace {

constexpr const char* kCompactDoc = R"({
  "name": "mysite",
  "network": { "backbone": 0, "serverLinkNoiseSigmaLog": 0.03 },
  "nodes": { "count": 4, "nic": 11000, "clientCap": 1680 },
  "hosts": [
    { "nic": 11000, "serviceCap": 4500,
      "targets": { "count": 4, "disks": 12, "parityDisks": 2,
                   "perDiskStream": 200, "writeEfficiency": 0.93,
                   "variability": { "kind": "lognormal", "sigma": 0.05 } } },
    { "nic": 11000, "serviceCap": 4500,
      "targets": { "count": 4, "perDiskStream": 200 } }
  ]
})";

TEST(Loader, ParsesCompactForm) {
  const auto cluster = clusterFromJson(kCompactDoc);
  EXPECT_EQ(cluster.name, "mysite");
  EXPECT_EQ(cluster.nodes.size(), 4u);
  EXPECT_DOUBLE_EQ(cluster.nodes[0].clientThroughputCap, 1680.0);
  EXPECT_EQ(cluster.hosts.size(), 2u);
  EXPECT_EQ(cluster.targetCount(), 8u);
  EXPECT_DOUBLE_EQ(cluster.network.serverLinkNoiseSigmaLog, 0.03);
  EXPECT_EQ(cluster.hosts[0].targets[0].variability.kind,
            VariabilitySpec::Kind::kLogNormal);
  // Defaults fill unspecified device fields.
  EXPECT_DOUBLE_EQ(cluster.hosts[1].targets[0].device.writeEfficiency, 0.93);
  // Auto-generated names are distinct.
  EXPECT_NE(cluster.hosts[0].targets[0].name, cluster.hosts[0].targets[1].name);
}

TEST(Loader, ParsesExplicitArrays) {
  const auto cluster = clusterFromJson(R"({
    "name": "tiny",
    "nodes": [ {"name": "n0", "nic": 1250, "clientCap": 900 },
               {"nic": 1250 } ],
    "hosts": [ { "targets": [ {"disks": 10}, {"disks": 12} ] } ]
  })");
  EXPECT_EQ(cluster.nodes[0].name, "n0");
  EXPECT_EQ(cluster.nodes.size(), 2u);
  EXPECT_EQ(cluster.hosts[0].targets[0].device.disks, 10);
  EXPECT_EQ(cluster.hosts[0].targets[1].device.disks, 12);
}

TEST(Loader, RoundTripsThroughJson) {
  const auto original = makePlafrim(Scenario::kOmniPath100G, 3);
  const auto reloaded = clusterFromJson(clusterToJson(original));
  EXPECT_EQ(reloaded.name, original.name);
  ASSERT_EQ(reloaded.nodes.size(), original.nodes.size());
  ASSERT_EQ(reloaded.hosts.size(), original.hosts.size());
  EXPECT_DOUBLE_EQ(reloaded.nodes[0].clientThroughputCap,
                   original.nodes[0].clientThroughputCap);
  EXPECT_DOUBLE_EQ(reloaded.hosts[1].serviceCap, original.hosts[1].serviceCap);
  EXPECT_DOUBLE_EQ(reloaded.hosts[0].targets[0].device.streamQHalf,
                   original.hosts[0].targets[0].device.streamQHalf);
  EXPECT_EQ(reloaded.hosts[0].targets[0].variability.kind,
            original.hosts[0].targets[0].variability.kind);
  // Second round trip is byte-stable (canonical serialization).
  EXPECT_EQ(clusterToJson(reloaded), clusterToJson(original));
}

TEST(Loader, SaveAndLoadFile) {
  const auto path = std::filesystem::temp_directory_path() / "beesim_cluster_test.json";
  const auto original = makePlafrim(Scenario::kEthernet10G, 2);
  saveCluster(original, path);
  const auto reloaded = loadCluster(path);
  EXPECT_EQ(reloaded.targetCount(), original.targetCount());
  std::filesystem::remove(path);
}

TEST(Loader, SchemaViolationsThrow) {
  EXPECT_THROW(clusterFromJson("{}"), util::ConfigError);  // missing nodes
  EXPECT_THROW(clusterFromJson(R"({"nodes": {"count": 0}, "hosts": []})"),
               util::ConfigError);
  EXPECT_THROW(clusterFromJson(R"({"nodes": {"count": 1}, "hosts": []})"),
               util::ConfigError);  // no hosts -> validate() fails
  EXPECT_THROW(clusterFromJson(R"({
    "nodes": {"count": 1},
    "hosts": [ {"targets": {"count": 1},
                "nic": -5} ] })"),
               util::ConfigError);  // negative capacity
  EXPECT_THROW(clusterFromJson(R"({
    "nodes": {"count": 1},
    "hosts": [ {"targets": {"count": 1,
                "variability": {"kind": "banana"}}} ] })"),
               util::ConfigError);
}

TEST(Loader, MissingFileThrows) {
  EXPECT_THROW(loadCluster("/nonexistent/cluster.json"), util::IoError);
}

}  // namespace
}  // namespace beesim::topo
