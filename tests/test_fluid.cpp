#include "sim/fluid.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim::sim {
namespace {

using namespace beesim::util::literals;

ResourceIndex addLink(FluidSimulator& fluid, const std::string& name, double capacity) {
  return fluid.addResource(ResourceSpec{name, constantCapacity(capacity)});
}

TEST(Fluid, SingleFlowTransferTime) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  FlowStats stats;
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 1_GiB,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = [&](const FlowStats& s) { stats = s; }});
  fluid.run();
  EXPECT_NEAR(stats.endTime, 1024.0 / 100.0, 1e-6);
  EXPECT_NEAR(stats.meanRate(), 100.0, 1e-6);
}

TEST(Fluid, TwoEqualFlowsShareAndFinishTogether) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  std::vector<double> ends;
  for (int i = 0; i < 2; ++i) {
    fluid.startFlow(FlowSpec{.path = {link},
                             .bytes = 512_MiB,
                             .queueWeight = 1.0,
                             .rateCap = 0.0,
                             .onComplete = [&](const FlowStats& s) { ends.push_back(s.endTime); }});
  }
  fluid.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_NEAR(ends[0], 1024.0 / 100.0, 1e-6);  // both at 50 MiB/s
  EXPECT_NEAR(ends[1], 1024.0 / 100.0, 1e-6);
}

TEST(Fluid, ShortFlowFinishesAndLongFlowSpeedsUp) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  double shortEnd = 0.0;
  double longEnd = 0.0;
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 100_MiB,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = [&](const FlowStats& s) { shortEnd = s.endTime; }});
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 300_MiB,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = [&](const FlowStats& s) { longEnd = s.endTime; }});
  fluid.run();
  // Phase 1: both at 50 until the short one's 100 MiB drain at t=2.
  EXPECT_NEAR(shortEnd, 2.0, 1e-6);
  // Phase 2: the long flow has 200 MiB left, now at 100 MiB/s -> +2s.
  EXPECT_NEAR(longEnd, 4.0, 1e-6);
}

TEST(Fluid, RateCapHolds) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  FlowStats stats;
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 100_MiB,
                           .queueWeight = 1.0,
                           .rateCap = 25.0,
                           .onComplete = [&](const FlowStats& s) { stats = s; }});
  fluid.run();
  EXPECT_NEAR(stats.endTime, 4.0, 1e-6);
}

TEST(Fluid, MultiResourcePathTakesMinimum) {
  FluidSimulator fluid;
  const auto a = addLink(fluid, "a", 200.0);
  const auto b = addLink(fluid, "b", 50.0);
  const auto c = addLink(fluid, "c", 100.0);
  FlowStats stats;
  fluid.startFlow(FlowSpec{.path = {a, b, c},
                           .bytes = 100_MiB,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = [&](const FlowStats& s) { stats = s; }});
  fluid.run();
  EXPECT_NEAR(stats.endTime, 2.0, 1e-6);
}

TEST(Fluid, ZeroByteFlowCompletesImmediately) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  bool completed = false;
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 0,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = [&](const FlowStats& s) {
                             completed = true;
                             EXPECT_DOUBLE_EQ(s.endTime, s.startTime);
                           }});
  fluid.run();
  EXPECT_TRUE(completed);
}

TEST(Fluid, DelayedStartViaStartFlowAt) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  FlowStats stats;
  fluid.startFlowAt(5.0, FlowSpec{.path = {link},
                                  .bytes = 100_MiB,
                                  .queueWeight = 1.0,
                                  .rateCap = 0.0,
                                  .onComplete = [&](const FlowStats& s) { stats = s; }});
  fluid.run();
  EXPECT_NEAR(stats.startTime, 5.0, 1e-9);
  EXPECT_NEAR(stats.endTime, 6.0, 1e-6);
}

TEST(Fluid, LoadDependentCapacitySeesQueueDepth) {
  // Capacity = 10 * queueDepth: two flows of weight 3 -> capacity 60,
  // 30 each.
  FluidSimulator fluid;
  const auto device = fluid.addResource(ResourceSpec{
      "device", [](const ResourceLoad& load) { return 10.0 * load.queueDepth; }});
  std::vector<double> ends;
  for (int i = 0; i < 2; ++i) {
    fluid.startFlow(FlowSpec{.path = {device},
                             .bytes = 30_MiB,
                             .queueWeight = 3.0,
                             .rateCap = 0.0,
                             .onComplete = [&](const FlowStats& s) { ends.push_back(s.endTime); }});
  }
  fluid.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_NEAR(ends[0], 1.0, 1e-6);
  EXPECT_NEAR(ends[1], 1.0, 1e-6);
}

TEST(Fluid, TimeDependentCapacityRefreshedByResolveInterval) {
  // Capacity doubles after t=1; with periodic re-solve the 150 MiB flow
  // finishes at t=1.5 instead of 3.0.
  FluidSimulator fluid;
  const auto link = fluid.addResource(ResourceSpec{
      "ramp", [](const ResourceLoad& load) { return load.time < 0.999 ? 50.0 : 200.0; }});
  fluid.setResolveInterval(0.25);
  FlowStats stats;
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 150_MiB,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = [&](const FlowStats& s) { stats = s; }});
  fluid.run();
  // 50 MiB/s for 1s (50 MiB), then 200 MiB/s for the remaining 100 MiB.
  EXPECT_NEAR(stats.endTime, 1.5, 0.01);
}

TEST(Fluid, StalledFlowsAreDetectedAsDeadlock) {
  FluidSimulator fluid;
  const auto dead = addLink(fluid, "dead", 0.0);
  fluid.startFlow(FlowSpec{.path = {dead}, .bytes = 1_MiB, .queueWeight = 1.0,
                           .rateCap = 0.0, .onComplete = nullptr});
  EXPECT_THROW(fluid.run(), util::ContractError);
}

TEST(Fluid, FlowRateQueryReflectsFairShare) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  const auto f1 = fluid.startFlow(FlowSpec{.path = {link}, .bytes = 1_GiB,
                                           .queueWeight = 1.0, .rateCap = 0.0,
                                           .onComplete = nullptr});
  const auto f2 = fluid.startFlow(FlowSpec{.path = {link}, .bytes = 1_GiB,
                                           .queueWeight = 1.0, .rateCap = 0.0,
                                           .onComplete = nullptr});
  // Let the resolve event run.
  fluid.engine().runUntil(0.0);
  EXPECT_NEAR(fluid.flowRate(f1), 50.0, 1e-9);
  EXPECT_NEAR(fluid.flowRate(f2), 50.0, 1e-9);
  EXPECT_EQ(fluid.activeFlows(), 2u);
  fluid.run();
  EXPECT_EQ(fluid.activeFlows(), 0u);
  EXPECT_DOUBLE_EQ(fluid.flowRate(f1), 0.0);
}

TEST(Fluid, InvalidFlowSpecsThrow) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  EXPECT_THROW(fluid.startFlow(FlowSpec{.path = {}, .bytes = 1_MiB, .queueWeight = 1.0,
                                        .rateCap = 0.0, .onComplete = nullptr}),
               util::ContractError);
  EXPECT_THROW(fluid.startFlow(FlowSpec{.path = {ResourceIndex{99}}, .bytes = 1_MiB,
                                        .queueWeight = 1.0, .rateCap = 0.0,
                                        .onComplete = nullptr}),
               util::ContractError);
  (void)link;
}

TEST(Fluid, ResourceNamesAreQueryable) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "my-link", 10.0);
  EXPECT_EQ(fluid.resourceName(link), "my-link");
  EXPECT_EQ(fluid.resourceCount(), 1u);
}

TEST(Fluid, TimeAdvancesAtLargeVirtualTimes) {
  // Regression: a nearly-finished flow at a large virtual time used to
  // schedule its completion wakeup below the clock's double granularity,
  // respinning at the same instant forever (the randomized-block protocol
  // lays runs out at ~1e5 s offsets, which triggered this).
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 1000.0);
  bool done = false;
  fluid.startFlowAt(2.0e5, FlowSpec{.path = {link},
                                    .bytes = 100_MiB,
                                    .queueWeight = 1.0,
                                    .rateCap = 0.0,
                                    .onComplete = [&](const FlowStats& s) {
                                      done = true;
                                      EXPECT_NEAR(s.endTime, 2.0e5 + 0.1, 1e-3);
                                    }});
  fluid.setResolveInterval(0.25);
  fluid.run();
  EXPECT_TRUE(done);
}

TEST(Fluid, ManyFlowsConserveBytes) {
  // 16 flows with staggered sizes over one link: total transfer time equals
  // total bytes / capacity regardless of the completion pattern.
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 128.0);
  double lastEnd = 0.0;
  util::Bytes total = 0;
  for (int i = 1; i <= 16; ++i) {
    const util::Bytes bytes = static_cast<util::Bytes>(i) * 8_MiB;
    total += bytes;
    fluid.startFlow(FlowSpec{.path = {link},
                             .bytes = bytes,
                             .queueWeight = 1.0,
                             .rateCap = 0.0,
                             .onComplete = [&](const FlowStats& s) {
                               lastEnd = std::max(lastEnd, s.endTime);
                             }});
  }
  fluid.run();
  EXPECT_NEAR(lastEnd, util::toMiB(total) / 128.0, 1e-6);
}

/// Minimal observer counting start/complete callbacks per flow id.
class CountingObserver : public FluidObserver {
 public:
  void onFlowStarted(FlowId id, std::span<const ResourceIndex>, util::Bytes,
                     SimTime) override {
    started.push_back(id.value);
  }
  void onRatesSolved(SimTime, std::span<const FlowId>, std::span<const util::MiBps>,
                     std::size_t) override {}
  void onFlowCompleted(const FlowStats& stats) override {
    completed.push_back(stats.id.value);
  }

  std::vector<std::uint64_t> started;
  std::vector<std::uint64_t> completed;
};

TEST(Fluid, ZeroByteFlowEmitsObserverEvents) {
  // Regression: the zero-byte fast path used to bypass the observer, so
  // traces silently dropped empty transfers while their onComplete still ran.
  FluidSimulator fluid;
  CountingObserver observer;
  fluid.setObserver(&observer);
  const auto link = addLink(fluid, "link", 100.0);
  bool done = false;
  const auto id = fluid.startFlow(FlowSpec{.path = {link},
                                           .bytes = 0,
                                           .queueWeight = 1.0,
                                           .rateCap = 0.0,
                                           .onComplete = [&](const FlowStats& s) {
                                             done = true;
                                             EXPECT_EQ(s.bytes, 0u);
                                             EXPECT_DOUBLE_EQ(s.endTime, s.startTime);
                                           }});
  fluid.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(observer.started, (std::vector<std::uint64_t>{id.value}));
  EXPECT_EQ(observer.completed, (std::vector<std::uint64_t>{id.value}));
}

TEST(Fluid, ZeroByteFlowNotifiesObserverWithoutCallback) {
  FluidSimulator fluid;
  CountingObserver observer;
  fluid.setObserver(&observer);
  const auto link = addLink(fluid, "link", 100.0);
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 0,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = nullptr});
  fluid.run();
  EXPECT_EQ(observer.started.size(), 1u);
  EXPECT_EQ(observer.completed.size(), 1u);
}

/// Cross-checks flowRate(id) against the authoritative per-solve rates.
class RateCheckObserver : public FluidObserver {
 public:
  explicit RateCheckObserver(FluidSimulator& fluid) : fluid_(fluid) {}

  void onFlowStarted(FlowId, std::span<const ResourceIndex>, util::Bytes,
                     SimTime) override {}
  void onRatesSolved(SimTime, std::span<const FlowId> ids,
                     std::span<const util::MiBps> rates, std::size_t) override {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_DOUBLE_EQ(fluid_.flowRate(ids[i]), rates[i]);
      ++checks;
    }
  }
  void onFlowCompleted(const FlowStats& stats) override {
    EXPECT_DOUBLE_EQ(fluid_.flowRate(stats.id), 0.0);
  }

  std::size_t checks = 0;

 private:
  FluidSimulator& fluid_;
};

TEST(Fluid, FlowRateStaysConsistentAcrossCompletions) {
  // Regression for the id->index map behind flowRate(): completions
  // swap-remove from the flow list, so surviving flows change position and a
  // stale index would report another flow's rate (or crash).
  FluidSimulator fluid;
  RateCheckObserver observer(fluid);
  fluid.setObserver(&observer);
  const auto link = addLink(fluid, "link", 120.0);
  std::vector<FlowId> ids;
  // Staggered sizes: flows finish one at a time, churning the indices.
  for (int i = 1; i <= 6; ++i) {
    ids.push_back(fluid.startFlow(FlowSpec{.path = {link},
                                           .bytes = static_cast<util::Bytes>(i) * 64_MiB,
                                           .queueWeight = 1.0,
                                           .rateCap = 0.0,
                                           .onComplete = nullptr}));
  }
  fluid.run();
  EXPECT_GT(observer.checks, 6u);
  for (const auto id : ids) EXPECT_DOUBLE_EQ(fluid.flowRate(id), 0.0);
}

TEST(FluidCancel, CancelledFlowReleasesCapacityToSurvivor) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  bool cancelledCompleted = false;
  FlowStats survivorStats;
  const auto victim =
      fluid.startFlow(FlowSpec{.path = {link},
                               .bytes = 1_GiB,
                               .queueWeight = 1.0,
                               .rateCap = 0.0,
                               .onComplete = [&](const FlowStats&) { cancelledCompleted = true; }});
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 400_MiB,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = [&](const FlowStats& s) { survivorStats = s; }});
  fluid.engine().scheduleAfter(2.0, [&] {
    EXPECT_TRUE(fluid.flowActive(victim));
    // 2s at 50 MiB/s: 100 MiB of the victim's 1024 are gone.
    const auto remaining = fluid.cancelFlow(victim);
    ASSERT_TRUE(remaining.has_value());
    EXPECT_NEAR(static_cast<double>(*remaining) / static_cast<double>(1_MiB), 924.0, 1.0);
    EXPECT_FALSE(fluid.flowActive(victim));
  });
  fluid.run();
  EXPECT_FALSE(cancelledCompleted);  // onComplete must not fire for a cancel
  // Survivor: 100 MiB at 50 MiB/s (shared), then 300 MiB at 100 MiB/s.
  EXPECT_NEAR(survivorStats.endTime, 2.0 + 3.0, 1e-6);
}

TEST(FluidCancel, CancelUnknownOrFinishedFlowReturnsNullopt) {
  FluidSimulator fluid;
  const auto link = addLink(fluid, "link", 100.0);
  const auto id = fluid.startFlow(FlowSpec{.path = {link},
                                           .bytes = 100_MiB,
                                           .queueWeight = 1.0,
                                           .rateCap = 0.0,
                                           .onComplete = nullptr});
  fluid.run();
  EXPECT_FALSE(fluid.flowActive(id));
  EXPECT_FALSE(fluid.cancelFlow(id).has_value());
}

TEST(FluidCancel, ObserverSeesCancellationWithRemainingBytes) {
  struct CancelObserver : FluidObserver {
    std::vector<FlowStats> cancelled;
    void onFlowStarted(FlowId, std::span<const ResourceIndex>, util::Bytes,
                       SimTime) override {}
    void onRatesSolved(SimTime, std::span<const FlowId>, std::span<const util::MiBps>,
                       std::size_t) override {}
    void onFlowCompleted(const FlowStats&) override {}
    void onFlowCancelled(const FlowStats& stats) override { cancelled.push_back(stats); }
  };
  FluidSimulator fluid;
  CancelObserver observer;
  fluid.setObserver(&observer);
  const auto link = addLink(fluid, "link", 100.0);
  const auto id = fluid.startFlow(FlowSpec{.path = {link},
                                           .bytes = 500_MiB,
                                           .queueWeight = 1.0,
                                           .rateCap = 0.0,
                                           .onComplete = nullptr});
  fluid.engine().scheduleAfter(1.0, [&] { fluid.cancelFlow(id); });
  fluid.run();
  ASSERT_EQ(observer.cancelled.size(), 1u);
  EXPECT_EQ(observer.cancelled[0].id.value, id.value);
  EXPECT_NEAR(static_cast<double>(observer.cancelled[0].bytes) / static_cast<double>(1_MiB),
              400.0, 1.0);
}

}  // namespace
}  // namespace beesim::sim
