#include "beegfs/meta.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace beesim::beegfs {
namespace {

TEST(Meta, CostsArePositiveWithDefaults) {
  MetaService meta(MetaParams{}, util::Rng(1));
  EXPECT_GT(meta.createCost(), 0.0);
  EXPECT_GT(meta.openAllCost(8), 0.0);
  EXPECT_GT(meta.statCost(), 0.0);
  // create (1) + openAll over 8 ranks (8) + stat (1): openAllCost serves one
  // open per concurrent rank, so the counter moves by the rank count.
  EXPECT_EQ(meta.opsServed(), 10u);
}

TEST(Meta, ZeroLatencyMeansZeroCost) {
  MetaParams params;
  params.createLatency = 0.0;
  params.openLatency = 0.0;
  params.statLatency = 0.0;
  MetaService meta(params, util::Rng(2));
  EXPECT_DOUBLE_EQ(meta.createCost(), 0.0);
  EXPECT_DOUBLE_EQ(meta.openAllCost(64), 0.0);
  EXPECT_DOUBLE_EQ(meta.statCost(), 0.0);
}

TEST(Meta, OpenPileUpGrowsLogarithmically) {
  MetaParams params;
  params.jitterSigmaLog = 0.0;  // deterministic
  MetaService meta(params, util::Rng(3));
  const double one = meta.openAllCost(1);
  const double many = meta.openAllCost(256);
  EXPECT_GT(many, one);
  // 1 + ln(256) ~ 6.55 -> bounded pile-up, not linear.
  EXPECT_LT(many, 10.0 * one);
  EXPECT_NEAR(many / one, 1.0 + std::log(256.0), 1e-9);
}

TEST(Meta, JitterVariesCosts) {
  MetaService meta(MetaParams{}, util::Rng(4));
  const double a = meta.createCost();
  const double b = meta.createCost();
  EXPECT_NE(a, b);
}

TEST(Meta, DeterministicGivenSeed) {
  MetaService a(MetaParams{}, util::Rng(5));
  MetaService b(MetaParams{}, util::Rng(5));
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.createCost(), b.createCost());
}

TEST(Meta, InvalidParamsThrow) {
  MetaParams params;
  params.createLatency = -1.0;
  EXPECT_THROW(MetaService(params, util::Rng(6)), util::ContractError);
  params = MetaParams{};
  params.jitterSigmaLog = -0.5;
  EXPECT_THROW(MetaService(params, util::Rng(6)), util::ContractError);
}

TEST(Meta, OpenAllNeedsARank) {
  MetaService meta(MetaParams{}, util::Rng(7));
  EXPECT_THROW(meta.openAllCost(0), util::ContractError);
}

}  // namespace
}  // namespace beesim::beegfs
