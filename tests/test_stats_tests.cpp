// Hypothesis tests: Welch t-test, Kolmogorov-Smirnov, linear regression.
#include <gtest/gtest.h>

#include <vector>

#include "stats/ks.hpp"
#include "stats/regression.hpp"
#include "stats/ttest.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::stats {
namespace {

TEST(Welch, KnownTextbookExample) {
  // Classic Welch example (Wikipedia, "Welch's t-test", example data);
  // reference statistics computed independently:
  //   t = -2.70778, df = 26.9527, p < 0.05.
  const std::vector<double> x{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9,
                              20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4};
  const std::vector<double> y{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8,
                              22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5};
  const auto result = welchTTest(x, y);
  EXPECT_NEAR(result.t, -2.70778, 1e-4);
  EXPECT_NEAR(result.df, 26.9527, 1e-3);
  EXPECT_LT(result.pValue, 0.05);
  EXPECT_GT(result.pValue, 0.005);
  EXPECT_TRUE(result.significantAt(0.05));
}

TEST(Welch, IdenticalDistributionsGiveHighP) {
  util::Rng rng(1);
  std::vector<double> a(100);
  std::vector<double> b(100);
  for (auto& v : a) v = rng.normal(1000.0, 50.0);
  for (auto& v : b) v = rng.normal(1000.0, 50.0);
  const auto result = welchTTest(a, b);
  EXPECT_GT(result.pValue, 0.05);
  EXPECT_FALSE(result.significantAt(0.05));
}

TEST(Welch, ShiftedMeansAreDetected) {
  util::Rng rng(2);
  std::vector<double> a(50);
  std::vector<double> b(50);
  for (auto& v : a) v = rng.normal(1000.0, 30.0);
  for (auto& v : b) v = rng.normal(1100.0, 30.0);
  const auto result = welchTTest(a, b);
  EXPECT_LT(result.pValue, 1e-6);
  EXPECT_NEAR(result.meanDifference, -100.0, 20.0);
}

TEST(Welch, HandlesUnequalVariances) {
  util::Rng rng(3);
  std::vector<double> tight(40);
  std::vector<double> wide(40);
  for (auto& v : tight) v = rng.normal(10.0, 0.1);
  for (auto& v : wide) v = rng.normal(10.0, 5.0);
  const auto result = welchTTest(tight, wide);
  // Degrees of freedom collapse towards the noisier sample's n-1.
  EXPECT_LT(result.df, 45.0);
  EXPECT_GT(result.pValue, 0.01);
}

TEST(Welch, RejectsTooSmallSamples) {
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(welchTTest(one, two), util::ContractError);
  const std::vector<double> flat{1.0, 1.0};
  EXPECT_THROW(welchTTest(flat, flat), util::ContractError);  // zero variance
}

TEST(Welch, DescribeMentionsStatistics) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 3.0, 4.0};
  const auto text = welchTTest(a, b).describe();
  EXPECT_NE(text.find("t="), std::string::npos);
  EXPECT_NE(text.find("p="), std::string::npos);
}

TEST(Ks, NormalSampleAgainstItsOwnFitPasses) {
  util::Rng rng(4);
  std::vector<double> xs(200);
  for (auto& v : xs) v = rng.normal(5.0, 2.0);
  const auto result = ksNormalTestFitted(xs);
  EXPECT_GT(result.pValue, 0.05);
}

TEST(Ks, UniformSampleAgainstNormalFails) {
  util::Rng rng(5);
  std::vector<double> xs(500);
  for (auto& v : xs) v = rng.uniform(0.0, 1.0);
  const auto result = ksNormalTest(xs, 0.5, 0.05);  // absurd reference sd
  EXPECT_LT(result.pValue, 0.001);
}

TEST(Ks, StatisticBoundsAndDegenerateArgs) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto result = ksNormalTest(xs, 2.0, 1.0);
  EXPECT_GE(result.statistic, 0.0);
  EXPECT_LE(result.statistic, 1.0);
  EXPECT_THROW(ksNormalTest(xs, 0.0, 0.0), util::ContractError);
  EXPECT_THROW(ksNormalTest(std::vector<double>{}, 0.0, 1.0), util::ContractError);
}

TEST(Ks, TwoSampleSameDistributionPasses) {
  util::Rng rng(6);
  std::vector<double> a(150);
  std::vector<double> b(150);
  for (auto& v : a) v = rng.normal(0.0, 1.0);
  for (auto& v : b) v = rng.normal(0.0, 1.0);
  EXPECT_GT(ksTwoSampleTest(a, b).pValue, 0.05);
}

TEST(Ks, TwoSampleShiftDetected) {
  util::Rng rng(7);
  std::vector<double> a(150);
  std::vector<double> b(150);
  for (auto& v : a) v = rng.normal(0.0, 1.0);
  for (auto& v : b) v = rng.normal(1.5, 1.0);
  EXPECT_LT(ksTwoSampleTest(a, b).pValue, 1e-6);
}

TEST(Regression, ExactLineIsRecovered) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{5.0, 7.0, 9.0, 11.0};
  const auto fit = linearFit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 23.0, 1e-12);
}

TEST(Regression, NoisyLineHasHighButImperfectR2) {
  util::Rng rng(8);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + rng.normal(0.0, 5.0));
  }
  const auto fit = linearFit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.3);
  EXPECT_GT(fit.r2, 0.95);
  EXPECT_LT(fit.r2, 1.0);
}

TEST(Regression, FlatDataHasZeroSlope) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, 4.0, 4.0};
  const auto fit = linearFit(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);  // zero residual convention
}

TEST(Regression, InvalidInputsThrow) {
  const std::vector<double> two{1.0, 2.0};
  const std::vector<double> three{1.0, 2.0, 3.0};
  EXPECT_THROW(linearFit(two, three), util::ContractError);
  EXPECT_THROW(linearFit(std::vector<double>{1.0}, std::vector<double>{1.0}),
               util::ContractError);
  const std::vector<double> constX{2.0, 2.0, 2.0};
  EXPECT_THROW(linearFit(constX, three), util::ContractError);
}

}  // namespace
}  // namespace beesim::stats
