// The closed-loop rebalancing stack (DESIGN.md §2.6) and the satellites that
// ride with it: the unified link-imbalance definition, offline-aware
// choosers, the WeightedChooser bias decorator, slot migration, and the
// controller's run-level behavior.
#include "control/rebalance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "beegfs/chooser.hpp"
#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "beegfs/mgmt.hpp"
#include "core/metrics.hpp"
#include "harness/campaign.hpp"
#include "harness/run.hpp"
#include "ior/options.hpp"
#include "sim/trace.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim {
namespace {

using namespace beesim::util::literals;

struct Fixture {
  sim::FluidSimulator fluid;
  topo::ClusterConfig cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  beegfs::Deployment deployment;
  beegfs::FileSystem fs;

  explicit Fixture(beegfs::BeegfsParams params = {})
      : deployment(fluid, cluster, params, util::Rng(1)), fs(deployment, util::Rng(2)) {}
};

std::size_t hostOf(const Fixture& f, std::size_t target) {
  return f.deployment.mgmt().target(target).host;
}

// ---------------------------------------------------------------------------
// Satellite: one imbalance definition everywhere (core::linkImbalance).

TEST(LinkImbalance, DefinitionMatchesFig8Splits) {
  // max/mean: the values ext_utilization validated against the paper.
  EXPECT_DOUBLE_EQ(core::linkImbalance(std::vector<double>{4.0, 0.0}), 2.0);
  EXPECT_DOUBLE_EQ(core::linkImbalance(std::vector<double>{1.0, 3.0}), 1.5);
  EXPECT_DOUBLE_EQ(core::linkImbalance(std::vector<double>{2.0, 2.0}), 1.0);
  // Degenerate inputs: idle links (and no links) report 0, not NaN.
  EXPECT_DOUBLE_EQ(core::linkImbalance(std::vector<double>{0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(core::linkImbalance(std::vector<double>{}), 0.0);
}

TEST(LinkImbalance, TracerSamplesUseTheSharedDefinition) {
  Fixture f;
  sim::FlowTracer tracer(f.fluid);
  tracer.setMetricsInterval(0.05);
  for (std::size_t h = 0; h < f.cluster.hosts.size(); ++h) {
    tracer.trackLink(f.deployment.serverNicResource(h), f.cluster.hosts[h].name);
  }
  std::vector<sim::MetricsSample> samples;
  tracer.setSampleListener([&samples](const sim::MetricsSample& s) { samples.push_back(s); });

  const auto handle = f.fs.createPinned("/skewed", {0, 4, 5, 6}, 512_KiB);
  f.fs.writeAsync(0, handle, 0, 256_MiB, 1.0, [](util::Seconds) {});
  f.fluid.run();

  ASSERT_FALSE(samples.empty());
  bool sawTraffic = false;
  for (const auto& sample : samples) {
    EXPECT_DOUBLE_EQ(sample.linkImbalance, core::linkImbalance(sample.linkRates));
    if (sample.aggregateRate > 0.0) {
      sawTraffic = true;
      // A (1,3) placement drives exactly 3/4 of the bytes through host 1.
      EXPECT_NEAR(sample.linkImbalance, 1.5, 1e-6);
    }
  }
  EXPECT_TRUE(sawTraffic);
}

harness::RunConfig skewedRunConfig() {
  // 8 client nodes over-provision the two server NICs, so the server links
  // are the bottleneck and a skewed placement costs real bandwidth (the
  // regime of the paper's Fig. 8 and of bench/ext_rebalance.cpp).
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 8);
  config.fs.defaultStripe.stripeCount = 4;
  config.job = ior::IorJob::onFirstNodes(8, 4);
  // Long enough (~5 s simulated) that the post-recovery stretch dominates
  // the pre-trigger skewed stretch; segmented so re-homed slots matter.
  config.ior.blockSize = ior::blockSizeForTotal(8_GiB, config.job.ranks()) / 32;
  config.ior.segments = 32;
  config.pinnedTargets = std::vector<std::size_t>{0, 4, 5, 6};
  return config;
}

TEST(LinkImbalance, RunRecordAndCampaignColumnAgree) {
  auto config = skewedRunConfig();
  config.observe.utilization = true;
  const auto record = harness::runOnce(config, 77);

  // The per-run measurement is the shared definition applied to the per-host
  // MiB vector -- the same numbers the CLI's traced-run table prints.
  ASSERT_TRUE(record.ior.util.active);
  EXPECT_DOUBLE_EQ(record.ior.util.linkImbalance,
                   core::linkImbalance(record.ior.util.serverMiB));
  EXPECT_NEAR(record.ior.util.linkImbalance, 1.5, 1e-6);

  // The campaign's link_imbalance column is the same function of the same
  // srv*_mib columns, row by row.
  harness::CampaignEntry entry;
  entry.config = config;
  harness::ProtocolOptions protocol;
  protocol.repetitions = 2;
  const auto store = harness::executeCampaign({entry}, protocol, 77);
  for (const std::string rep : {"0", "1"}) {
    const std::map<std::string, std::string> where{{"rep", rep}};
    const auto imbalance = store.metric("link_imbalance", where);
    const auto srv0 = store.metric("srv0_mib", where);
    const auto srv1 = store.metric("srv1_mib", where);
    ASSERT_EQ(imbalance.size(), 1u);
    ASSERT_EQ(srv0.size(), 1u);
    ASSERT_EQ(srv1.size(), 1u);
    EXPECT_DOUBLE_EQ(imbalance[0],
                     core::linkImbalance(std::vector<double>{srv0[0], srv1[0]}));
  }
}

// ---------------------------------------------------------------------------
// Satellite: choosers skip offline targets at choose time.

class OfflineChooserTest : public ::testing::TestWithParam<beegfs::ChooserKind> {};

TEST_P(OfflineChooserTest, NeverPicksOfflineTargets) {
  beegfs::BeegfsParams params;
  params.chooser = GetParam();
  Fixture f(params);
  // One target down on each host.
  f.deployment.mgmt().setTargetOnline(1, false);
  f.deployment.mgmt().setTargetOnline(6, false);
  for (int i = 0; i < 32; ++i) {
    const auto handle = f.fs.create("/beegfs/f" + std::to_string(i));
    for (const auto target : f.fs.info(handle).pattern.targets()) {
      EXPECT_NE(target, 1u);
      EXPECT_NE(target, 6u);
    }
  }
}

TEST_P(OfflineChooserTest, AssertsWhenFewerEligibleThanCount) {
  // The chooser-level contract: asking for more targets than the filter
  // leaves eligible is a caller bug, caught before any picks are made.
  const auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  beegfs::BeegfsParams params;
  params.chooser = GetParam();
  const auto chooser = beegfs::makeChooser(params, cluster);
  util::Rng rng(8);
  const auto onlyThree = [](std::size_t t) { return t >= 5; };
  EXPECT_THROW(chooser->choose(4, cluster, rng, onlyThree), util::ContractError);
}

TEST_P(OfflineChooserTest, FileSystemNarrowsStripeToOnlinePopulation) {
  // The filesystem-level contract: a create against a partially-dead
  // registry narrows the stripe to the online population (a real mgmtd
  // cannot hand out targets it does not have) -- it never asserts and never
  // places a slot on a dead target.
  beegfs::BeegfsParams params;
  params.chooser = GetParam();
  Fixture f(params);
  for (const std::size_t t : {0, 1, 2, 4, 5}) {
    f.deployment.mgmt().setTargetOnline(t, false);
  }
  const auto handle = f.fs.create("/beegfs/narrowed");
  const auto& targets = f.fs.info(handle).pattern.targets();
  EXPECT_EQ(targets.size(), 3u);  // default stripe 4, only 3 online
  for (const auto t : targets) {
    EXPECT_TRUE(f.deployment.mgmt().target(t).online);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, OfflineChooserTest,
                         ::testing::Values(beegfs::ChooserKind::kRoundRobin,
                                           beegfs::ChooserKind::kRandom,
                                           beegfs::ChooserKind::kRoundRobinInterleaved,
                                           beegfs::ChooserKind::kBalanced));

TEST(OfflineChooser, RoundRobinWalksPastOfflineWithoutStalling) {
  const auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  beegfs::RoundRobinChooser chooser(beegfs::plafrimRoundRobinOrder(cluster), 0.0);
  util::Rng rng(3);
  // Deployed order starts 0, 4, 5, 6; with 4 offline the walk skips it and
  // still returns `count` distinct online picks.
  const auto offline = [](std::size_t t) { return t != 4; };
  const auto picks = chooser.choose(4, cluster, rng, offline);
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 5, 6, 7}));
  // The pointer advanced past the skipped entry too (5 slots walked).
  EXPECT_EQ(chooser.pointer(), 5u);
}

// ---------------------------------------------------------------------------
// Satellite: round-robin phase/race behaviors backing the byte-identity
// argument for the filtered walk.

TEST(RoundRobin, RandomizePhaseWithNonDividingStride) {
  const auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  beegfs::RoundRobinChooser chooser(beegfs::plafrimRoundRobinOrder(cluster), 0.0);
  util::Rng rng(11);
  // Order size 8, stride 3: ceil(8/3) = 3 phases, pointers {0, 3, 6}.
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    chooser.randomizePhase(rng, 3);
    seen.insert(chooser.pointer());
  }
  EXPECT_EQ(seen, (std::set<std::size_t>{0, 3, 6}));
}

TEST(RoundRobin, CreateRaceNeverAdvancesPointerAtProbabilityOne) {
  const auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  beegfs::RoundRobinChooser chooser(beegfs::plafrimRoundRobinOrder(cluster), 1.0);
  util::Rng rng(12);
  const auto first = chooser.choose(4, cluster, rng);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(chooser.choose(4, cluster, rng), first);
    EXPECT_EQ(chooser.pointer(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Satellite: WeightedChooser decorator.

TEST(WeightedChooser, UniformWeightsDelegateByteIdentically) {
  Fixture f;  // mgmtd weights default to 1.0 everywhere
  beegfs::WeightedChooser wrapped(std::make_unique<beegfs::RandomChooser>(),
                                  f.deployment.mgmt());
  beegfs::RandomChooser plain;
  util::Rng rngA(42);
  util::Rng rngB(42);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(wrapped.choose(4, f.cluster, rngA), plain.choose(4, f.cluster, rngB));
  }
  // Identical picks AND identical randomness consumption: the streams stay
  // in lockstep after the fact.
  EXPECT_EQ(rngA.uniformInt(0, 1 << 30), rngB.uniformInt(0, 1 << 30));
  EXPECT_EQ(wrapped.kind(), beegfs::ChooserKind::kRandom);
}

TEST(WeightedChooser, SkewedWeightsApportionByLargestRemainder) {
  Fixture f;
  f.deployment.mgmt().setHostWeight(0, 3.0);
  f.deployment.mgmt().setHostWeight(1, 1.0);
  beegfs::WeightedChooser chooser(std::make_unique<beegfs::RandomChooser>(),
                                  f.deployment.mgmt());
  util::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto picks = chooser.choose(4, f.cluster, rng);
    ASSERT_EQ(picks.size(), 4u);
    std::map<std::size_t, int> perHost;
    for (const auto t : picks) ++perHost[hostOf(f, t)];
    EXPECT_EQ(perHost[0], 3);
    EXPECT_EQ(perHost[1], 1);
    EXPECT_EQ(std::set<std::size_t>(picks.begin(), picks.end()).size(), 4u);
  }
}

TEST(WeightedChooser, ZeroWeightHostIsAvoidedWhenCapacityAllows) {
  Fixture f;
  f.deployment.mgmt().setHostWeight(0, 0.0);
  beegfs::WeightedChooser chooser(std::make_unique<beegfs::RandomChooser>(),
                                  f.deployment.mgmt());
  util::Rng rng(6);
  const auto picks = chooser.choose(4, f.cluster, rng);
  for (const auto t : picks) EXPECT_EQ(hostOf(f, t), 1u);
  // ...but a stripe wider than the favored host spills over gracefully.
  const auto wide = chooser.choose(8, f.cluster, rng);
  EXPECT_EQ(std::set<std::size_t>(wide.begin(), wide.end()).size(), 8u);
}

// ---------------------------------------------------------------------------
// Slot migration (the controller's restripe lever).

TEST(MigrateSlot, RehomesSlotImmediatelyAndStreamsTheBytes) {
  Fixture f;
  const auto handle = f.fs.createPinned("/migrate-me", {0, 4}, 512_KiB);
  bool written = false;
  f.fs.writeAsync(0, handle, 0, 8_MiB, 1.0, [&written](util::Seconds) { written = true; });
  f.fluid.run();
  ASSERT_TRUE(written);
  ASSERT_EQ(f.fs.effectiveTarget(handle, 0), 0u);
  EXPECT_EQ(f.fs.slotBytes(handle, 0), 4_MiB);

  bool migrated = false;
  // Cross-host move (0 on host 0 -> 5 on host 1), the only direction the
  // replica path supports and the only one the controller ever takes.
  f.fs.migrateSlot(handle, 0, 5, 0.25, 0.0, [&migrated](const sim::FlowStats& stats) {
    migrated = true;
    EXPECT_EQ(stats.bytes, 4_MiB);
  });
  // The slot re-homes at issue time; the background copy follows.
  EXPECT_EQ(f.fs.effectiveTarget(handle, 0), 5u);
  EXPECT_FALSE(migrated);
  f.fluid.run();
  EXPECT_TRUE(migrated);
  // Usage accounting followed the slot to its new target.
  EXPECT_EQ(f.deployment.mgmt().target(5).used, 4_MiB);
}

// ---------------------------------------------------------------------------
// The controller end-to-end (harness level).

TEST(RebalanceController, InvalidPoliciesAreRejected) {
  Fixture f;
  control::RebalancePolicy policy;
  policy.enabled = false;  // must be enabled
  EXPECT_THROW(control::RebalanceController(f.fs, policy), util::ContractError);
  policy.enabled = true;
  policy.threshold = 1.0;  // must exceed 1
  EXPECT_THROW(control::RebalanceController(f.fs, policy), util::ContractError);
  policy.threshold = 1.25;
  policy.patience = 0;  // must wait at least one sample
  EXPECT_THROW(control::RebalanceController(f.fs, policy), util::ContractError);
}

TEST(RebalanceController, RecoversSkewedAllocationBandwidth) {
  const auto config = skewedRunConfig();
  const auto baseline = harness::runOnce(config, 321);
  EXPECT_FALSE(baseline.rebalanceActive);

  auto controlled = config;
  controlled.rebalance.enabled = true;
  controlled.rebalance.maxConcurrentMigrations = 1;
  const auto record = harness::runOnce(controlled, 321);

  ASSERT_TRUE(record.rebalanceActive);
  EXPECT_GE(record.rebalance.samples, 1u);
  EXPECT_GE(record.rebalance.triggers, 1u);
  EXPECT_GE(record.rebalance.migrations, 1u);
  EXPECT_GT(record.rebalance.bytesMigrated, 0u);
  // The (1,3) skew is visible before the controller acts...
  EXPECT_GT(record.rebalance.peakImbalance, controlled.rebalance.threshold);
  // ...and acting on it recovers real bandwidth over the static run.
  EXPECT_GT(record.ior.bandwidth, 1.2 * baseline.ior.bandwidth);
}

TEST(RebalanceController, StaysQuietOnBalancedLoad) {
  auto config = skewedRunConfig();
  config.pinnedTargets = std::vector<std::size_t>{0, 1, 4, 5};  // (2,2)
  const auto baseline = harness::runOnce(config, 654);

  auto controlled = config;
  controlled.rebalance.enabled = true;
  const auto record = harness::runOnce(controlled, 654);

  ASSERT_TRUE(record.rebalanceActive);
  EXPECT_GE(record.rebalance.samples, 1u);
  EXPECT_EQ(record.rebalance.triggers, 0u);
  EXPECT_EQ(record.rebalance.migrations, 0u);
  // An idle controller costs nothing: bandwidth matches the plain run
  // bitwise (the tracer only listens; the WeightedChooser wrap at uniform
  // weights delegates verbatim).
  EXPECT_DOUBLE_EQ(record.ior.bandwidth, baseline.ior.bandwidth);
}

TEST(RebalanceController, CampaignRowsGateRebalanceColumns) {
  harness::CampaignEntry plain;
  plain.config = skewedRunConfig();
  harness::CampaignEntry controlled = plain;
  controlled.config.rebalance.enabled = true;
  controlled.factors["ctl"] = "on";
  plain.factors["ctl"] = "off";

  harness::ProtocolOptions protocol;
  protocol.repetitions = 2;
  const auto store = harness::executeCampaign({plain, controlled}, protocol, 99);
  // Controlled rows carry the rebal_* columns; plain rows do not (so legacy
  // campaign CSVs stay byte-identical).
  const auto triggers = store.metric("rebal_triggers", {{"ctl", "on"}});
  ASSERT_EQ(triggers.size(), 2u);
  for (const auto t : triggers) EXPECT_GE(t, 1.0);
  EXPECT_THROW(store.metric("rebal_triggers", {{"ctl", "off"}}), util::ContractError);
}

TEST(RebalanceController, CampaignResultsAreJobsInvariant) {
  harness::CampaignEntry entry;
  entry.config = skewedRunConfig();
  entry.config.rebalance.enabled = true;
  harness::ProtocolOptions protocol;
  protocol.repetitions = 3;

  harness::ExecutorOptions serial;
  serial.jobs = 1;
  harness::ExecutorOptions parallel;
  parallel.jobs = 4;
  const auto a = harness::executeCampaign({entry}, protocol, 1234, nullptr, serial);
  const auto b = harness::executeCampaign({entry}, protocol, 1234, nullptr, parallel);
  for (const std::string metric :
       {"bandwidth_mibps", "rebal_triggers", "rebal_migrations", "rebal_migrated_mib",
        "rebal_peak_imbalance"}) {
    EXPECT_EQ(a.metric(metric, {}), b.metric(metric, {})) << metric;
  }
}

}  // namespace
}  // namespace beesim
