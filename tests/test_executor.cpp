#include "harness/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/run.hpp"
#include "ior/options.hpp"
#include "topology/plafrim.hpp"
#include "util/units.hpp"

namespace beesim::harness {
namespace {

using namespace beesim::util::literals;

std::vector<CampaignEntry> smallCampaign() {
  std::vector<CampaignEntry> entries;
  for (const unsigned count : {2u, 4u, 8u}) {
    CampaignEntry entry;
    entry.config.cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 2);
    entry.config.fs.defaultStripe.stripeCount = count;
    entry.config.job = ior::IorJob::onFirstNodes(2, 8);
    entry.config.ior.blockSize = ior::blockSizeForTotal(1_GiB, entry.config.job.ranks());
    entry.factors["count"] = std::to_string(count);
    entries.push_back(std::move(entry));
  }
  return entries;
}

/// Row-for-row store equality: identical order, factors and bitwise metrics.
void expectStoresIdentical(const ResultStore& a, const ResultStore& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a.rows()[i];
    const auto& rb = b.rows()[i];
    EXPECT_EQ(ra.factors, rb.factors) << "row " << i;
    ASSERT_EQ(ra.metrics.size(), rb.metrics.size()) << "row " << i;
    auto ita = ra.metrics.begin();
    auto itb = rb.metrics.begin();
    for (; ita != ra.metrics.end(); ++ita, ++itb) {
      EXPECT_EQ(ita->first, itb->first) << "row " << i;
      EXPECT_DOUBLE_EQ(ita->second, itb->second)
          << "row " << i << " metric " << ita->first;
    }
  }
}

TEST(Executor, ParallelCampaignMatchesSerialRowForRow) {
  const auto entries = smallCampaign();
  ProtocolOptions options;
  options.repetitions = 6;
  for (const std::uint64_t seed : {7ull, 99ull, 20260805ull}) {
    ExecutorOptions serial;
    serial.jobs = 1;
    const auto reference = executeCampaign(entries, options, seed, nullptr, serial);
    for (const std::size_t jobs : {2u, 8u}) {
      ExecutorOptions exec;
      exec.jobs = jobs;
      const auto store = executeCampaign(entries, options, seed, nullptr, exec);
      SCOPED_TRACE("seed " + std::to_string(seed) + " jobs " + std::to_string(jobs));
      expectStoresIdentical(reference, store);
    }
  }
}

TEST(Executor, AnnotatorRunsInPlanOrderRegardlessOfJobs) {
  const auto entries = smallCampaign();
  ProtocolOptions options;
  options.repetitions = 5;
  // A stateful annotator: records the (count, rep) sequence it observes and
  // stamps a running index into each row.  Both must be jobs-independent.
  const auto annotate = [](std::vector<std::string>& order) {
    return [&order](const RunRecord&, ResultRow& row) {
      row.metrics["commit_index"] = static_cast<double>(order.size());
      order.push_back(row.factors.at("count") + ":" + row.factors.at("rep"));
    };
  };
  std::vector<std::string> serialOrder;
  ExecutorOptions serial;
  serial.jobs = 1;
  const auto reference = executeCampaign(entries, options, 5, annotate(serialOrder), serial);
  std::vector<std::string> parallelOrder;
  ExecutorOptions exec;
  exec.jobs = 8;
  const auto store = executeCampaign(entries, options, 5, annotate(parallelOrder), exec);
  EXPECT_EQ(serialOrder, parallelOrder);
  expectStoresIdentical(reference, store);
}

TEST(Executor, ProgressReachesTotalAndReportsCommitOrder) {
  const auto entries = smallCampaign();
  ProtocolOptions options;
  options.repetitions = 3;
  std::vector<std::size_t> completions;
  ExecutorOptions exec;
  exec.jobs = 4;
  exec.progressIntervalSeconds = 0.0;  // report every commit
  exec.onProgress = [&](const CampaignProgress& p) {
    completions.push_back(p.completed);
    EXPECT_EQ(p.total, 9u);
    EXPECT_GE(p.elapsedSeconds, 0.0);
    EXPECT_GE(p.slowestRunSeconds, 0.0);
  };
  executeCampaign(entries, options, 11, nullptr, exec);
  ASSERT_FALSE(completions.empty());
  EXPECT_EQ(completions.back(), 9u);
  EXPECT_TRUE(std::is_sorted(completions.begin(), completions.end()));
}

TEST(Executor, ParallelMapFillsEverySlotByIndex) {
  for (const std::size_t jobs : {0u, 1u, 2u, 8u}) {
    const auto out = parallelMap<std::size_t>(
        100, jobs, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(Executor, ParallelForRunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallelFor(hits.size(), 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, ParallelForEmptyAndSingleAreInline) {
  int calls = 0;
  parallelFor(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor(1, 8, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(Executor, ParallelForRethrowsWorkerException) {
  EXPECT_THROW(
      parallelFor(64, 4,
                  [](std::size_t i) {
                    if (i == 13) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(Executor, ResolveJobsZeroMeansHardwareThreads) {
  EXPECT_GE(resolveJobs(0), 1u);
  EXPECT_EQ(resolveJobs(1), 1u);
  EXPECT_EQ(resolveJobs(5), 5u);
}

}  // namespace
}  // namespace beesim::harness
