#include "beegfs/deployment.hpp"

#include <gtest/gtest.h>

#include "topology/plafrim.hpp"
#include "util/error.hpp"

namespace beesim::beegfs {
namespace {

struct Fixture {
  sim::FluidSimulator fluid;
  topo::ClusterConfig cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  Deployment deployment;

  explicit Fixture(BeegfsParams params = {}, EnvironmentFactors env = {})
      : deployment(fluid, cluster, params, util::Rng(1), env) {}
};

TEST(Deployment, CreatesAllResources) {
  Fixture f;
  // 4 nodes x (client + nic) + 2 hosts x (nic + oss) + 8 osts = 20.
  EXPECT_EQ(f.fluid.resourceCount(), 20u);
  EXPECT_FALSE(f.deployment.backboneResource().has_value());  // non-blocking switch
}

TEST(Deployment, WritePathCrossesClientNicServerOssOst) {
  Fixture f;
  const auto path = f.deployment.writePath(2, 5);  // node 2 -> host 1 target 1
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path[0].value, f.deployment.clientResource(2).value);
  EXPECT_EQ(path[1].value, f.deployment.nodeNicResource(2).value);
  EXPECT_EQ(path[2].value, f.deployment.serverNicResource(1).value);
  EXPECT_EQ(path[3].value, f.deployment.ossResource(1)->value);
  EXPECT_EQ(path[4].value, f.deployment.ostResource(5).value);
}

TEST(Deployment, ZeroServiceCapSkipsOssResource) {
  sim::FluidSimulator fluid;
  auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 2);
  for (auto& host : cluster.hosts) host.serviceCap = 0.0;
  Deployment deployment(fluid, cluster, BeegfsParams{}, util::Rng(1));
  EXPECT_FALSE(deployment.ossResource(0).has_value());
  EXPECT_EQ(deployment.writePath(0, 0).size(), 4u);
}

TEST(Deployment, BackboneResourceWhenConfigured) {
  sim::FluidSimulator fluid;
  auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 2);
  cluster.network.backboneBandwidth = 5000.0;
  Deployment deployment(fluid, cluster, BeegfsParams{}, util::Rng(1));
  ASSERT_TRUE(deployment.backboneResource().has_value());
  EXPECT_EQ(deployment.writePath(0, 0).size(), 6u);
}

TEST(Deployment, EffectiveInflightIsBoundedByWorkers) {
  Fixture f;
  const auto& client = f.deployment.params().client;
  // 8 workers, 8 inflight/process: 1 process already saturates the workers.
  EXPECT_DOUBLE_EQ(f.deployment.nodeEffectiveInflight(0, 1),
                   static_cast<double>(client.workerThreads));
  EXPECT_DOUBLE_EQ(f.deployment.nodeEffectiveInflight(0, 8),
                   static_cast<double>(client.workerThreads));
}

TEST(Deployment, OversubscriptionErodesInflight) {
  Fixture f;
  const double at8 = f.deployment.nodeEffectiveInflight(0, 8);
  const double at16 = f.deployment.nodeEffectiveInflight(0, 16);
  const double at32 = f.deployment.nodeEffectiveInflight(0, 32);
  EXPECT_LT(at16, at8);
  EXPECT_LT(at32, at16);
  // The intra-node contention of Fig. 5b is mild: under 30% at 16 ppn.
  EXPECT_GT(at16, 0.7 * at8);
}

TEST(Deployment, EnvironmentFactorsScaleCapacities) {
  // Compare a flow's completion through the same path under two network
  // factors.
  auto runWith = [](double networkFactor) {
    sim::FluidSimulator fluid;
    auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 1);
    cluster.nodes[0].clientThroughputCap = 1e5;  // expose the network links
    Deployment deployment(fluid, cluster, BeegfsParams{}, util::Rng(1),
                          EnvironmentFactors{networkFactor, 1.0});
    double end = 0.0;
    fluid.startFlow(sim::FlowSpec{
        .path = deployment.writePath(0, 0),
        .bytes = 512ULL * 1024 * 1024,
        .queueWeight = 64.0,  // deep queue: device ramp not the limiter
        .rateCap = 0.0,
        .onComplete = [&](const sim::FlowStats& s) { end = s.endTime; }});
    fluid.run();
    return end;
  };
  const double slow = runWith(0.5);
  const double fast = runWith(1.0);
  EXPECT_NEAR(slow / fast, 2.0, 0.05);
}

TEST(Deployment, RampFactorStartsLowAndRecovers) {
  // Compare the same single-node write with and without a marked job start:
  // the ramp must slow the early phase down.
  auto runWith = [](bool markStart) {
    sim::FluidSimulator fluid;
    const auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 1);
    Deployment deployment(fluid, cluster, BeegfsParams{}, util::Rng(1));
    deployment.setNodeProcesses(0, 8);
    if (markStart) deployment.markNodeJobStart(0, 0.0);
    double end = 0.0;
    fluid.startFlow(sim::FlowSpec{
        .path = deployment.writePath(0, 0),
        .bytes = 256ULL * 1024 * 1024,
        .queueWeight = 64.0,
        .rateCap = 0.0,
        .onComplete = [&](const sim::FlowStats& s) { end = s.endTime; }});
    fluid.run();
    return end;
  };
  EXPECT_GT(runWith(true), runWith(false));
}

TEST(Deployment, ResetNodeClearsJobState) {
  Fixture f;
  f.deployment.setNodeProcesses(1, 16);
  f.deployment.markNodeJobStart(1, 5.0);
  f.deployment.resetNode(1);
  // After reset, behaves like a fresh node: verified indirectly via the
  // inflight (process-count independent) and absence of contract errors.
  EXPECT_DOUBLE_EQ(f.deployment.nodeEffectiveInflight(1, 8), 8.0);
}

TEST(Deployment, MarkJobStartKeepsEarliest) {
  Fixture f;
  f.deployment.markNodeJobStart(0, 10.0);
  f.deployment.markNodeJobStart(0, 5.0);
  f.deployment.markNodeJobStart(0, 20.0);
  // No accessor for jobStart; the invariant is exercised by the ramp tests.
  SUCCEED();
}

TEST(Deployment, InvalidIndicesThrow) {
  Fixture f;
  EXPECT_THROW(f.deployment.writePath(99, 0), util::ContractError);
  EXPECT_THROW(f.deployment.writePath(0, 99), util::ContractError);
  EXPECT_THROW(f.deployment.setNodeProcesses(99, 1), util::ContractError);
  EXPECT_THROW(f.deployment.nodeEffectiveInflight(0, 0), util::ContractError);
  EXPECT_THROW(f.deployment.clientResource(99), util::ContractError);
  EXPECT_THROW(f.deployment.ostResource(99), util::ContractError);
}

TEST(Deployment, InvalidEnvironmentThrows) {
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 1);
  EXPECT_THROW(Deployment(fluid, cluster, BeegfsParams{}, util::Rng(1),
                          EnvironmentFactors{0.0, 1.0}),
               util::ContractError);
}

TEST(MakeVariability, InstantiatesEveryKind) {
  using Kind = topo::VariabilitySpec::Kind;
  EXPECT_NE(makeVariability(topo::VariabilitySpec{Kind::kNone, 0, 0, 0, 1.0}), nullptr);
  EXPECT_NE(makeVariability(topo::VariabilitySpec{Kind::kLogNormal, 0.1, 0, 0, 1.0}), nullptr);
  EXPECT_NE(makeVariability(topo::VariabilitySpec{Kind::kGaussian, 0.1, 0, 0, 1.0}), nullptr);
  EXPECT_NE(makeVariability(topo::VariabilitySpec{Kind::kSlowPhase, 0.1, 0.1, 0.5, 0.8}),
            nullptr);
}

}  // namespace
}  // namespace beesim::beegfs
