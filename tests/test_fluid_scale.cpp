// Property tests for the ε-bounded incremental resolution (DESIGN.md §2.7):
//
//   * ε = 0 is the exact path -- bitwise identical, rate for rate and
//     completion for completion, to the reference (pre-SoA) solver;
//   * ε > 0 never lets a flow's simulated rate deviate from the exact
//     max-min solution by more than ε MiB/s;
//   * capacity drift accumulates across skipped resolves, so slow trends
//     cannot hide under the bound forever;
//   * structural events (start/complete/merge, capacity touching 0) are
//     never deferred no matter how large ε is;
//   * deferred components keep their completion horizons valid (the rates
//     the simulation integrates are the ones the horizons were computed
//     from), so ε only perturbs *when* rates refresh, never bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/fluid.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::sim {
namespace {

using namespace beesim::util::literals;

struct Completion {
  std::uint64_t flow;
  double endTime;
  double meanRate;
  bool operator==(const Completion&) const = default;
};

/// Build the same randomized multi-component scenario (wobbling capacities,
/// staggered starts, weights, rate caps) in `fluid`, recording completions.
void buildScenario(FluidSimulator& fluid, std::uint64_t seed,
                   std::vector<Completion>* completions) {
  util::Rng rng(seed);
  fluid.setResolveInterval(0.05);
  const std::size_t nGroups = 2 + seed % 3;
  constexpr std::size_t kGroupSize = 5;
  std::vector<ResourceIndex> resources;
  for (std::size_t g = 0; g < nGroups; ++g) {
    for (std::size_t r = 0; r < kGroupSize; ++r) {
      const double base = rng.uniform(50.0, 500.0);
      std::string name = "r";
      name += std::to_string(g);
      name += '_';
      name += std::to_string(r);
      if (r % 2 == 0) {
        resources.push_back(fluid.addResource(ResourceSpec{
            std::move(name), [base](const ResourceLoad& load) {
              return base * (1.0 + 0.2 * std::sin(3.0 * load.time));
            }}));
      } else {
        resources.push_back(
            fluid.addResource(ResourceSpec{std::move(name), constantCapacity(base)}));
      }
    }
  }
  constexpr std::size_t kFlows = 30;
  for (std::size_t f = 0; f < kFlows; ++f) {
    const auto group = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(nGroups) - 1));
    FlowSpec spec;
    const auto pathLen = static_cast<std::size_t>(1 + rng.uniformInt(0, 2));
    for (const auto r : rng.sampleWithoutReplacement(kGroupSize, pathLen)) {
      spec.path.push_back(resources[group * kGroupSize + r]);
    }
    spec.bytes = static_cast<util::Bytes>(rng.uniformInt(10, 200)) * 1_MiB;
    spec.queueWeight = rng.uniform(0.5, 4.0);
    spec.rateCap = rng.uniform(0.0, 1.0) < 0.3 ? rng.uniform(20.0, 100.0) : 0.0;
    spec.onComplete = [completions](const FlowStats& s) {
      completions->push_back(
          Completion{s.id.value, s.endTime, s.meanRate()});
    };
    fluid.startFlowAt(rng.uniform(0.0, 2.0), std::move(spec));
  }
}

TEST(FluidScale, EpsilonZeroMatchesReferenceSolverBitwise) {
  // The SoA fast path performs the same floating-point operations in the
  // same order as the reference walk (frozen flows add delta * 0.0, min is
  // order-independent), so at ε = 0 every completion time and mean rate must
  // be *exactly* equal -- not just close.
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
    FluidSimulator reference;
    reference.setReferenceSolver(true);
    std::vector<Completion> refCompletions;
    buildScenario(reference, seed, &refCompletions);
    reference.run();

    FluidSimulator soa;
    std::vector<Completion> soaCompletions;
    buildScenario(soa, seed, &soaCompletions);
    soa.run();

    ASSERT_EQ(refCompletions.size(), soaCompletions.size()) << "seed " << seed;
    for (std::size_t i = 0; i < refCompletions.size(); ++i) {
      EXPECT_EQ(refCompletions[i], soaCompletions[i])
          << "seed " << seed << " completion " << i;
    }
    EXPECT_EQ(soa.deferredResolves(), 0u);
  }
}

TEST(FluidScale, EpsilonBoundsSimulatedRateDeviation) {
  // Lockstep an exact simulator against an ε-bounded one on a wobbling
  // scenario and sample both rate vectors: the ε run must defer real work,
  // yet no sampled rate may deviate from the exact solution by more than ε.
  constexpr double kEpsilon = 10.0;
  FluidSimulator exact;
  FluidSimulator bounded;
  bounded.setSolverEpsilon(kEpsilon);

  std::vector<FlowId> exactIds;
  std::vector<FlowId> boundedIds;
  for (FluidSimulator* fluid : {&exact, &bounded}) {
    fluid->setResolveInterval(0.02);
    std::vector<ResourceIndex> links;
    for (int r = 0; r < 6; ++r) {
      const double phase = 0.5 * r;
      links.push_back(fluid->addResource(ResourceSpec{
          "link" + std::to_string(r), [phase](const ResourceLoad& load) {
            // +-3 MiB/s wobble at ~300: far inside ε per tick, so deferral
            // genuinely engages; drift still forces periodic exact solves.
            return 300.0 + 3.0 * std::sin(2.0 * load.time + phase);
          }}));
    }
    auto& ids = fluid == &exact ? exactIds : boundedIds;
    for (int f = 0; f < 9; ++f) {
      ids.push_back(fluid->startFlow(FlowSpec{
          .path = {links[f % 6], links[(f + 2) % 6]},
          .bytes = 1_TiB,
          .queueWeight = 1.0 + 0.25 * f,
          .rateCap = 0.0,
          .onComplete = nullptr}));
    }
  }

  for (double t = 0.1; t <= 3.0; t += 0.1) {
    exact.engine().runUntil(t);
    bounded.engine().runUntil(t);
    for (std::size_t f = 0; f < exactIds.size(); ++f) {
      EXPECT_LE(std::abs(bounded.flowRate(boundedIds[f]) -
                         exact.flowRate(exactIds[f])),
                kEpsilon + 1e-9)
          << "flow " << f << " at t=" << t;
    }
  }
  EXPECT_GT(bounded.deferredResolves(), 0u)
      << "the wobble must be small enough that the ε bound defers solves";
  EXPECT_EQ(exact.deferredResolves(), 0u);
}

TEST(FluidScale, CapacityDriftAccumulatesAcrossSkippedResolves) {
  // A slow monotonic decline (0.5 MiB/s per tick against ε = 2) can be
  // deferred for at most 4 ticks before accumulated drift crosses ε and
  // forces an exact solve: the flow's rate must track the decline with lag
  // at most ε and the run must show *both* deferred and exact resolves.
  FluidSimulator fluid;
  fluid.setSolverEpsilon(2.0);
  fluid.setResolveInterval(0.1);
  const auto link = fluid.addResource(ResourceSpec{
      "draining", [](const ResourceLoad& load) { return 200.0 - 5.0 * load.time; }});
  const auto flow = fluid.startFlow(FlowSpec{.path = {link},
                                             .bytes = 1_TiB,
                                             .queueWeight = 1.0,
                                             .rateCap = 0.0,
                                             .onComplete = nullptr});
  fluid.engine().runUntil(10.0);
  // Exact rate now 150; the last exact solve was at most ε of drift ago.
  EXPECT_GE(fluid.flowRate(flow), 150.0 - 1e-9);
  EXPECT_LE(fluid.flowRate(flow), 152.0 + 1e-9);
  EXPECT_GT(fluid.deferredResolves(), 20u) << "most ticks must be deferred";
  EXPECT_LT(fluid.deferredResolves(), 100u)
      << "drift accumulation must periodically force exact solves";
}

TEST(FluidScale, StructuralEventsAreNeverDeferred) {
  // With ε far beyond any rate in the system, starts and completions must
  // still re-solve their component immediately and exactly.
  FluidSimulator fluid;
  fluid.setSolverEpsilon(1e6);
  fluid.setResolveInterval(0.05);
  const auto link =
      fluid.addResource(ResourceSpec{"link", constantCapacity(100.0)});
  double bEnd = 0.0;
  const auto a = fluid.startFlow(FlowSpec{.path = {link},
                                          .bytes = 1_TiB,
                                          .queueWeight = 1.0,
                                          .rateCap = 0.0,
                                          .onComplete = nullptr});
  fluid.engine().runUntil(1.0);
  EXPECT_DOUBLE_EQ(fluid.flowRate(a), 100.0);
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 50_MiB,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = [&](const FlowStats& s) { bEnd = s.endTime; }});
  fluid.engine().runUntil(1.0);  // drain the same-instant start resolve
  EXPECT_DOUBLE_EQ(fluid.flowRate(a), 50.0) << "the start must re-solve exactly";
  fluid.engine().runUntil(3.0);
  // b: 50 MiB at 50 MiB/s from t=1 -> completes at t=2, returning a to 100.
  EXPECT_DOUBLE_EQ(bEnd, 2.0);
  EXPECT_DOUBLE_EQ(fluid.flowRate(a), 100.0)
      << "the completion must re-solve exactly";
}

TEST(FluidScale, ZeroCapacityTransitionsAreStructural) {
  // Capacity collapsing to 0 (an outage) changes *feasibility*, not just
  // rates, so it must never hide under the ε bound; same for the recovery.
  FluidSimulator fluid;
  fluid.setSolverEpsilon(1e6);
  fluid.setResolveInterval(0.1);
  const auto link = fluid.addResource(ResourceSpec{
      "flaky", [](const ResourceLoad& load) {
        return load.time >= 1.0 && load.time < 2.0 ? 0.0 : 80.0;
      }});
  const auto flow = fluid.startFlow(FlowSpec{.path = {link},
                                             .bytes = 1_TiB,
                                             .queueWeight = 1.0,
                                             .rateCap = 0.0,
                                             .onComplete = nullptr});
  fluid.engine().runUntil(1.5);
  EXPECT_DOUBLE_EQ(fluid.flowRate(flow), 0.0) << "the outage must not be deferred";
  fluid.engine().runUntil(2.5);
  EXPECT_DOUBLE_EQ(fluid.flowRate(flow), 80.0) << "the recovery must not be deferred";
}

TEST(FluidScale, DeferredComponentsKeepCompletionHorizonsValid) {
  // While a component defers, the simulation keeps integrating the rates the
  // completion horizons were computed from -- so a flow solved once at t=0
  // and deferred ever after completes at exactly bytes / rate(t=0).
  FluidSimulator fluid;
  fluid.setSolverEpsilon(25.0);
  fluid.setResolveInterval(0.05);
  const auto link = fluid.addResource(ResourceSpec{
      "wobbly", [](const ResourceLoad& load) {
        // capacity(0) = 100 exactly; wobble stays inside ε forever.
        return 100.0 + 0.5 * std::sin(7.0 * load.time);
      }});
  double end = 0.0;
  fluid.startFlow(FlowSpec{.path = {link},
                           .bytes = 200_MiB,
                           .queueWeight = 1.0,
                           .rateCap = 0.0,
                           .onComplete = [&](const FlowStats& s) { end = s.endTime; }});
  fluid.run();
  EXPECT_DOUBLE_EQ(end, 2.0) << "200 MiB at the t=0 rate of 100 MiB/s";
  EXPECT_GT(fluid.deferredResolves(), 10u);
}

}  // namespace
}  // namespace beesim::sim
