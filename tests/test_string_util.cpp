#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace beesim::util {
namespace {

TEST(StringUtil, SplitBasics) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("trailing,", ','), (std::vector<std::string>{"trailing", ""}));
}

TEST(StringUtil, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t x\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(StringUtil, JoinInvertsSplit) {
  const std::vector<std::string> parts{"1", "2", "3"};
  EXPECT_EQ(join(parts, ","), "1,2,3");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(startsWith("/beegfs/dir/file", "/beegfs"));
  EXPECT_FALSE(startsWith("/bee", "/beegfs"));
  EXPECT_TRUE(startsWith("anything", ""));
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(toLower("MiB/S"), "mib/s");
  EXPECT_EQ(toLower("already"), "already");
}

}  // namespace
}  // namespace beesim::util
