// Failure injection: targets going offline, capacity exhaustion, and how
// the file system and the analysis layer cope.
#include <gtest/gtest.h>

#include <set>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "core/allocation.hpp"
#include "ior/runner.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim {
namespace {

using namespace beesim::util::literals;

struct System {
  sim::FluidSimulator fluid;
  topo::ClusterConfig cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  beegfs::Deployment deployment;
  beegfs::FileSystem fs;

  explicit System(beegfs::BeegfsParams params = {})
      : deployment(fluid, cluster, params, util::Rng(1)), fs(deployment, util::Rng(2)) {}
};

TEST(FailureInjection, JobRunsOnSurvivingTargets) {
  beegfs::BeegfsParams params;
  params.defaultStripe.stripeCount = 8;
  System system(params);
  // Take a whole server's targets offline before the job starts.
  for (std::size_t t = 4; t < 8; ++t) system.deployment.mgmt().setTargetOnline(t, false);

  ior::IorOptions options;
  options.blockSize = ior::blockSizeForTotal(4_GiB, 32);
  const auto result = ior::runIor(system.fs, ior::IorJob::onFirstNodes(4, 8), options);
  EXPECT_GT(result.bandwidth, 0.0);
  for (const auto t : result.targetsUsed) EXPECT_LT(t, 4u);
  const core::Allocation alloc(result.targetsUsed, system.cluster);
  EXPECT_EQ(alloc.key(), "(0,4)");
}

TEST(FailureInjection, HalfOfflineHalvesScenario1Peak) {
  // Losing one server's targets turns the balanced peak into the
  // single-server floor -- the Fig. 8 effect as a degraded-mode statement.
  auto bandwidthWithOffline = [](bool degrade) {
    beegfs::BeegfsParams params;
    params.defaultStripe.stripeCount = 8;
    sim::FluidSimulator fluid;
    auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 8);
    cluster.network.serverLinkNoiseSigmaLog = 0.0;
    for (auto& host : cluster.hosts) {
      for (auto& target : host.targets) target.variability = topo::VariabilitySpec{};
    }
    beegfs::Deployment deployment(fluid, cluster, params, util::Rng(1));
    beegfs::FileSystem fs(deployment, util::Rng(2));
    if (degrade) {
      for (std::size_t t = 4; t < 8; ++t) deployment.mgmt().setTargetOnline(t, false);
    }
    ior::IorOptions options;
    options.blockSize = ior::blockSizeForTotal(16_GiB, 64);
    return ior::runIor(fs, ior::IorJob::onFirstNodes(8, 8), options).bandwidth;
  };
  const double healthy = bandwidthWithOffline(false);
  const double degraded = bandwidthWithOffline(true);
  EXPECT_NEAR(healthy / degraded, 2.0, 0.1);
}

TEST(FailureInjection, RecoveredTargetIsUsedAgain) {
  beegfs::BeegfsParams params;
  params.chooser = beegfs::ChooserKind::kBalanced;
  params.defaultStripe.stripeCount = 8;
  System system(params);
  system.deployment.mgmt().setTargetOnline(3, false);
  const auto degraded = system.fs.create("/during-outage");
  EXPECT_EQ(system.fs.info(degraded).pattern.stripeCount(), 7u);

  system.deployment.mgmt().setTargetOnline(3, true);
  const auto recovered = system.fs.create("/after-recovery");
  EXPECT_EQ(system.fs.info(recovered).pattern.stripeCount(), 8u);
}

TEST(FailureInjection, ExistingFilesKeepTheirPattern) {
  // BeeGFS semantics: striping is fixed at create time; an outage after the
  // fact does not rewrite patterns (the data would simply be unavailable).
  System system;
  const auto handle = system.fs.createPinned("/old", {0, 4}, 512_KiB);
  system.deployment.mgmt().setTargetOnline(4, false);
  EXPECT_EQ(system.fs.info(handle).pattern.targets(),
            (std::vector<std::size_t>{0, 4}));
}

TEST(FailureInjection, CapacityExhaustionSurfacesAsConfigError) {
  System system;
  const auto handle = system.fs.createPinned("/huge", {0}, 512_KiB);
  // 16 TiB per-target capacity: the accounting must reject the overflow.
  auto& mgmt = system.deployment.mgmt();
  mgmt.recordUsage(0, 16_TiB - 1_MiB);
  EXPECT_THROW(system.fs.writeAsync(0, handle, 0, 2_MiB, 1.0, nullptr),
               util::ConfigError);
}

TEST(FailureInjection, OfflineEverythingMidFlightKeepsActiveFlows) {
  // Going offline only affects *placement* of new files; in-flight fluid
  // transfers to the device continue (the device did not vanish, it was
  // deregistered).  The write completes.
  System system;
  const auto handle = system.fs.createPinned("/inflight", {0, 4}, 512_KiB);
  bool done = false;
  system.fs.writeAsync(0, handle, 0, 1_GiB, 8.0, [&](util::Seconds) { done = true; });
  system.fluid.engine().scheduleAfter(0.01, [&] {
    system.deployment.mgmt().setTargetOnline(0, false);
    system.deployment.mgmt().setTargetOnline(4, false);
  });
  system.fluid.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace beesim
