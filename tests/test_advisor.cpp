#include "core/advisor.hpp"

#include <gtest/gtest.h>

#include "core/checks.hpp"
#include "core/sharing.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::core {
namespace {

Allocation alloc(std::size_t a, std::size_t b) {
  return Allocation(std::vector<std::size_t>{a, b});
}

TEST(Advisor, RecommendsMaxCountOnScenario1LikeData) {
  // Synthetic Scenario-1 measurements: count 4 is bimodal/allocation-bound,
  // count 8 always hits the peak -- the advisor must prefer 8 (Lesson #4).
  StripeCountAdvisor advisor;
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    advisor.add(4, alloc(1, 3), rng.normal(1460.0, 40.0));
    advisor.add(2, alloc(0, 2), rng.normal(1100.0, 40.0));
    advisor.add(2, alloc(1, 1), rng.normal(2200.0, 40.0));
    advisor.add(8, alloc(4, 4), rng.normal(2200.0, 40.0));
  }
  const auto rec = advisor.recommend();
  EXPECT_EQ(rec.stripeCount, 8u);
  ASSERT_EQ(rec.assessments.size(), 3u);

  // Count 2 is flagged allocation-sensitive; count 8 is not.
  const auto& count2 = rec.assessments[0];
  EXPECT_EQ(count2.stripeCount, 2u);
  EXPECT_TRUE(count2.allocationSensitive);
  const auto& count8 = rec.assessments[2];
  EXPECT_FALSE(count8.allocationSensitive);
  EXPECT_NE(rec.rationale.find("8"), std::string::npos);
}

TEST(Advisor, RecommendsMaxCountOnScenario2LikeData) {
  // Scenario 2: bandwidth grows with count; max wins on every term.
  StripeCountAdvisor advisor;
  util::Rng rng(2);
  const double means[] = {1764.0, 2900.0, 4200.0, 5500.0, 6000.0, 7000.0, 7600.0, 8064.0};
  for (int i = 0; i < 30; ++i) {
    for (unsigned count = 1; count <= 8; ++count) {
      const auto perHost = count / 2;
      advisor.add(count, alloc(perHost, count - perHost),
                  rng.normal(means[count - 1], 0.08 * means[count - 1]));
    }
  }
  EXPECT_EQ(advisor.recommend().stripeCount, 8u);
}

TEST(Advisor, WorstCaseWeightMatters) {
  // A count with a great mean but terrible worst allocation loses against a
  // slightly slower but placement-proof count.
  AdvisorOptions options;
  options.worstCaseWeight = 0.9;
  StripeCountAdvisor advisor(options);
  util::Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    // count 4: half the runs at 2200 ((2,2)), half at 1100 ((0,4)).
    advisor.add(4, alloc(2, 2), rng.normal(2200.0, 30.0));
    advisor.add(4, alloc(0, 4), rng.normal(1100.0, 30.0));
    // count 8: always 2000.
    advisor.add(8, alloc(4, 4), rng.normal(2000.0, 30.0));
  }
  EXPECT_EQ(advisor.recommend().stripeCount, 8u);
}

TEST(Advisor, EmptyAdvisorThrows) {
  StripeCountAdvisor advisor;
  EXPECT_THROW(advisor.recommend(), util::ContractError);
  EXPECT_THROW(advisor.add(0, alloc(1, 1), 100.0), util::ContractError);
}

TEST(Advisor, InvalidOptionsThrow) {
  AdvisorOptions options;
  options.worstCaseWeight = 1.5;
  EXPECT_THROW(StripeCountAdvisor{options}, util::ContractError);
  options = AdvisorOptions{};
  options.cvPenalty = -1.0;
  EXPECT_THROW(StripeCountAdvisor{options}, util::ContractError);
}

TEST(Sharing, EqualGroupsAreHarmless) {
  SharingImpactAnalyzer analyzer;
  util::Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    analyzer.addShared(rng.normal(5000.0, 300.0));
    analyzer.addDisjoint(rng.normal(5000.0, 300.0));
  }
  const auto verdict = analyzer.analyze();
  EXPECT_TRUE(verdict.sharingHarmless);
  EXPECT_GT(verdict.welch.pValue, 0.05);
  EXPECT_NE(verdict.summary.find("no significant impact"), std::string::npos);
}

TEST(Sharing, ShiftedGroupsAreFlagged) {
  SharingImpactAnalyzer analyzer;
  util::Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    analyzer.addShared(rng.normal(4000.0, 200.0));
    analyzer.addDisjoint(rng.normal(5000.0, 200.0));
  }
  const auto verdict = analyzer.analyze();
  EXPECT_FALSE(verdict.sharingHarmless);
  EXPECT_LT(verdict.welch.pValue, 1e-6);
}

TEST(Sharing, CountsAndPreconditions) {
  SharingImpactAnalyzer analyzer;
  analyzer.addShared(1.0);
  analyzer.addDisjoint(2.0);
  EXPECT_EQ(analyzer.sharedCount(), 1u);
  EXPECT_EQ(analyzer.disjointCount(), 1u);
  EXPECT_THROW(analyzer.analyze(), util::ContractError);
}

TEST(Checks, ExpectationsRecordPassAndFail) {
  CheckList list("demo");
  list.expect("trivially true", true, "detail");
  list.expectGreater("bigger", 2.0, 1.0);
  list.expectNear("close", 100.0, 105.0, 0.10);
  list.expectRatio("ratio", 220.0, 100.0, 2.2, 0.05);
  EXPECT_TRUE(list.allPassed());
  list.expectGreater("smaller", 1.0, 2.0);
  EXPECT_FALSE(list.allPassed());
  const auto text = list.render();
  EXPECT_NE(text.find("[PASS] bigger"), std::string::npos);
  EXPECT_NE(text.find("[FAIL] smaller"), std::string::npos);
  EXPECT_NE(text.find("SOME CHECKS FAILED"), std::string::npos);
  EXPECT_EQ(list.checks().size(), 5u);
}

TEST(Checks, NearToleranceIsRelative) {
  CheckList list("tol");
  list.expectNear("within 10%", 109.0, 100.0, 0.10);
  list.expectNear("outside 5%", 109.0, 100.0, 0.05);
  EXPECT_TRUE(list.checks()[0].passed);
  EXPECT_FALSE(list.checks()[1].passed);
}

}  // namespace
}  // namespace beesim::core
