#include "util/units.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace beesim::util {
namespace {

using namespace beesim::util::literals;

TEST(Units, LiteralsProduceExactByteCounts) {
  EXPECT_EQ(1_KiB, 1024ULL);
  EXPECT_EQ(1_MiB, 1024ULL * 1024);
  EXPECT_EQ(1_GiB, 1024ULL * 1024 * 1024);
  EXPECT_EQ(1_TiB, 1024ULL * 1024 * 1024 * 1024);
  EXPECT_EQ(32_GiB, 32ULL * 1024 * 1024 * 1024);
  EXPECT_EQ(512_KiB, 512ULL * 1024);
}

TEST(Units, ToMiBAndGiB) {
  EXPECT_DOUBLE_EQ(toMiB(1_MiB), 1.0);
  EXPECT_DOUBLE_EQ(toMiB(512_KiB), 0.5);
  EXPECT_DOUBLE_EQ(toGiB(32_GiB), 32.0);
  EXPECT_DOUBLE_EQ(toGiB(512_MiB), 0.5);
}

TEST(Units, BandwidthComputesMiBPerSecond) {
  EXPECT_DOUBLE_EQ(bandwidth(1_GiB, 1.0), 1024.0);
  EXPECT_DOUBLE_EQ(bandwidth(32_GiB, 32.0), 1024.0);
  EXPECT_DOUBLE_EQ(bandwidth(1_MiB, 0.5), 2.0);
}

TEST(Units, BandwidthRejectsNonPositiveTime) {
  EXPECT_THROW(bandwidth(1_MiB, 0.0), ContractError);
  EXPECT_THROW(bandwidth(1_MiB, -1.0), ContractError);
}

TEST(Units, TransferTimeInvertsBandwidth) {
  EXPECT_DOUBLE_EQ(transferTime(1_GiB, 1024.0), 1.0);
  EXPECT_DOUBLE_EQ(transferTime(32_GiB, 2048.0), 16.0);
  EXPECT_THROW(transferTime(1_MiB, 0.0), ContractError);
}

TEST(Units, BandwidthTransferTimeRoundTrip) {
  for (const Bytes b : {1_MiB, 37_MiB, 32_GiB}) {
    for (const double rate : {1.0, 880.0, 2200.0, 8064.0}) {
      EXPECT_NEAR(bandwidth(b, transferTime(b, rate)), rate, 1e-9 * rate);
    }
  }
}

TEST(Units, FormatBytesPicksBinarySuffix) {
  EXPECT_EQ(formatBytes(32_GiB), "32 GiB");
  EXPECT_EQ(formatBytes(512_KiB), "512 KiB");
  EXPECT_EQ(formatBytes(1_MiB), "1 MiB");
  EXPECT_EQ(formatBytes(100), "100 B");
  EXPECT_EQ(formatBytes(1536_KiB), "1.50 MiB");
}

TEST(Units, FormatBandwidthAndSeconds) {
  EXPECT_EQ(formatBandwidth(1460.26), "1460.3 MiB/s");
  EXPECT_EQ(formatBandwidth(880.0), "880.0 MiB/s");
  EXPECT_EQ(formatSeconds(2.5), "2.50 s");
  EXPECT_EQ(formatSeconds(0.012), "12.0 ms");
  EXPECT_EQ(formatSeconds(192.0), "3m12s");
  EXPECT_EQ(formatSeconds(12e-6), "12.0 us");
}

TEST(Units, ParseBytesAcceptsCommonSuffixes) {
  EXPECT_EQ(parseBytes("4096"), 4096ULL);
  EXPECT_EQ(parseBytes("1m"), 1_MiB);
  EXPECT_EQ(parseBytes("1MiB"), 1_MiB);
  EXPECT_EQ(parseBytes("1MB"), 1_MiB);
  EXPECT_EQ(parseBytes("32g"), 32_GiB);
  EXPECT_EQ(parseBytes("32 GiB"), 32_GiB);
  EXPECT_EQ(parseBytes("512k"), 512_KiB);
  EXPECT_EQ(parseBytes("2t"), 2_TiB);
  EXPECT_EQ(parseBytes("0.5g"), 512_MiB);
}

TEST(Units, ParseBytesRejectsMalformedInput) {
  EXPECT_THROW(parseBytes(""), ConfigError);
  EXPECT_THROW(parseBytes("abc"), ConfigError);
  EXPECT_THROW(parseBytes("12x"), ConfigError);
  EXPECT_THROW(parseBytes("-5m"), ConfigError);
}

TEST(Units, ParseFormatsRoundTrip) {
  for (const Bytes b : {1_KiB, 17_MiB, 32_GiB, 2_TiB}) {
    EXPECT_EQ(parseBytes(formatBytes(b)), b);
  }
}

}  // namespace
}  // namespace beesim::util
