// Mid-run fault injection: schedule parsing/generation, the injector's
// effect on a live deployment, client retry/failover semantics, and
// determinism of fault campaigns across serial and parallel executors.
#include "faults/injector.hpp"
#include "faults/schedule.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "harness/campaign.hpp"
#include "ior/runner.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim {
namespace {

using namespace beesim::util::literals;
using beegfs::ClientFaultPolicy;

// -- Schedule grammar -----------------------------------------------------

TEST(FaultSchedule, ParsesEveryEventKind) {
  const auto s = faults::parseSchedule("off:t3@30; on:t3@90, off:h1@60;on:h1@120;link:h0@40=0.5");
  ASSERT_EQ(s.events.size(), 5u);
  EXPECT_EQ(s.events[0].kind, faults::FaultKind::kTargetFail);
  EXPECT_EQ(s.events[0].index, 3u);
  EXPECT_DOUBLE_EQ(s.events[0].at, 30.0);
  EXPECT_EQ(s.events[1].kind, faults::FaultKind::kTargetRecover);
  EXPECT_EQ(s.events[2].kind, faults::FaultKind::kHostFail);
  EXPECT_EQ(s.events[3].kind, faults::FaultKind::kHostRecover);
  EXPECT_EQ(s.events[4].kind, faults::FaultKind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(s.events[4].fraction, 0.5);
  EXPECT_TRUE(s.hasFailures());
}

TEST(FaultSchedule, DescribeRoundTrips) {
  const auto s = faults::parseSchedule("off:t3@30;link:h0@40=0.5;on:t3@90");
  const auto again = faults::parseSchedule(faults::describeSchedule(s));
  ASSERT_EQ(again.events.size(), s.events.size());
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(again.events[i].kind, s.events[i].kind);
    EXPECT_EQ(again.events[i].index, s.events[i].index);
    EXPECT_DOUBLE_EQ(again.events[i].at, s.events[i].at);
    EXPECT_DOUBLE_EQ(again.events[i].fraction, s.events[i].fraction);
  }
}

TEST(FaultSchedule, RejectsMalformedEvents) {
  EXPECT_THROW(faults::parseSchedule("off:t3"), util::ConfigError);
  EXPECT_THROW(faults::parseSchedule("off:x3@10"), util::ConfigError);
  EXPECT_THROW(faults::parseSchedule("boom:t3@10"), util::ConfigError);
  EXPECT_THROW(faults::parseSchedule("link:h0@10"), util::ConfigError);
  EXPECT_THROW(faults::parseSchedule("link:t0@10=0.5"), util::ConfigError);
  EXPECT_THROW(faults::parseSchedule("off:t3@ten"), util::ConfigError);
}

TEST(FaultSchedule, NormalizeChecksBoundsAndSorts) {
  auto s = faults::parseSchedule("on:t1@50;off:t1@10");
  s.normalize(8, 2);
  EXPECT_EQ(s.events[0].kind, faults::FaultKind::kTargetFail);

  auto outOfRange = faults::parseSchedule("off:t9@1");
  EXPECT_THROW(outOfRange.normalize(8, 2), util::ConfigError);
  auto badHost = faults::parseSchedule("off:h2@1");
  EXPECT_THROW(badHost.normalize(8, 2), util::ConfigError);
  // Dead-but-online (fraction 0) became legal with the gray-failure model;
  // out-of-range fractions are still rejected.
  auto deadLink = faults::FaultSchedule{
      {faults::FaultEvent{1.0, faults::FaultKind::kLinkDegrade, 0, 0.0}}};
  EXPECT_NO_THROW(deadLink.normalize(8, 2));
  auto overUnity = faults::FaultSchedule{
      {faults::FaultEvent{1.0, faults::FaultKind::kLinkDegrade, 0, 1.5}}};
  EXPECT_THROW(overUnity.normalize(8, 2), util::ConfigError);
  auto negative = faults::FaultSchedule{
      {faults::FaultEvent{1.0, faults::FaultKind::kTargetDegrade, 0, -0.1}}};
  EXPECT_THROW(negative.normalize(8, 2), util::ConfigError);
}

TEST(FaultSchedule, StochasticGeneratorIsDeterministicAndAlternates) {
  faults::StochasticFaultSpec spec;
  spec.targetMttf = 40.0;
  spec.targetMttr = 15.0;
  spec.horizon = 300.0;

  util::Rng a(7);
  util::Rng b(7);
  const auto s1 = faults::generateSchedule(spec, 8, 2, a);
  const auto s2 = faults::generateSchedule(spec, 8, 2, b);
  ASSERT_FALSE(s1.events.empty());
  ASSERT_EQ(s1.events.size(), s2.events.size());
  for (std::size_t i = 0; i < s1.events.size(); ++i) {
    EXPECT_EQ(s1.events[i].kind, s2.events[i].kind);
    EXPECT_EQ(s1.events[i].index, s2.events[i].index);
    EXPECT_DOUBLE_EQ(s1.events[i].at, s2.events[i].at);
  }

  // Per target the process alternates fail -> recover -> fail ... in time.
  for (std::size_t t = 0; t < 8; ++t) {
    bool up = true;
    for (const auto& e : s1.events) {
      if (e.index != t) continue;
      EXPECT_EQ(e.kind, up ? faults::FaultKind::kTargetFail
                           : faults::FaultKind::kTargetRecover);
      up = !up;
    }
  }
}

TEST(FaultSchedule, ClampToHorizonIsHalfOpen) {
  // The horizon contract: events live in [0, horizon).  An event at exactly
  // t == horizon is dropped -- failures and recoveries alike, so a schedule
  // can never end on a recovery that sneaks in at the boundary.
  auto s = faults::parseSchedule("off:t0@9.999;on:t0@10;off:t1@10;link:h0@10.5=0.5");
  s.clampToHorizon(10.0);
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].kind, faults::FaultKind::kTargetFail);
  EXPECT_DOUBLE_EQ(s.events[0].at, 9.999);

  // Clamping an already-clamped schedule is a no-op.
  s.clampToHorizon(10.0);
  EXPECT_EQ(s.events.size(), 1u);
}

TEST(FaultSchedule, GeneratedEventsStayStrictlyInsideHorizon) {
  faults::StochasticFaultSpec spec;
  spec.targetMttf = 5.0;
  spec.targetMttr = 2.0;
  spec.hostMttf = 8.0;
  spec.hostMttr = 3.0;
  spec.horizon = 20.0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    util::Rng rng(seed);
    const auto s = faults::generateSchedule(spec, 8, 2, rng);
    for (const auto& e : s.events) {
      EXPECT_LT(e.at, spec.horizon) << "seed " << seed;
    }
  }
}

// -- Injector against a live deployment -----------------------------------

struct System {
  sim::FluidSimulator fluid;
  topo::ClusterConfig cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  beegfs::Deployment deployment;
  beegfs::FileSystem fs;

  explicit System(beegfs::BeegfsParams params = {})
      : deployment(fluid, cluster, params, util::Rng(1)), fs(deployment, util::Rng(2)) {}
};

/// Degraded-mode policy with short timeouts so tests stay fast.
beegfs::BeegfsParams degradedParams() {
  beegfs::BeegfsParams params;
  params.faults.mode = ClientFaultPolicy::Mode::kDegraded;
  params.faults.ioTimeout = 0.2;
  params.faults.backoffBase = 0.05;
  params.faults.maxRetries = 3;
  return params;
}

TEST(FaultInjector, AppliesTargetAndHostEventsToRegistryAndCapacity) {
  System system;
  faults::FaultInjector injector(
      system.deployment, faults::parseSchedule("off:t4@1;link:h0@2=0.25;on:t4@3;off:h1@4;on:h1@5"));
  injector.arm();
  system.fluid.engine().scheduleAfter(1.5, [&] {
    EXPECT_FALSE(system.deployment.mgmt().target(4).online);
    EXPECT_DOUBLE_EQ(system.deployment.targetHealth(4), 0.0);
  });
  system.fluid.engine().scheduleAfter(2.5, [&] {
    EXPECT_DOUBLE_EQ(system.deployment.hostLinkHealth(0), 0.25);
  });
  system.fluid.engine().scheduleAfter(3.5, [&] {
    EXPECT_TRUE(system.deployment.mgmt().target(4).online);
    EXPECT_DOUBLE_EQ(system.deployment.targetHealth(4), 1.0);
  });
  system.fluid.engine().scheduleAfter(4.5, [&] {
    // A host crash takes down the link and every target it serves.
    EXPECT_DOUBLE_EQ(system.deployment.hostLinkHealth(1), 0.0);
    for (std::size_t t = 4; t < 8; ++t) {
      EXPECT_FALSE(system.deployment.mgmt().target(t).online);
    }
  });
  system.fluid.run();
  EXPECT_EQ(injector.stats().targetFailures, 1u);
  EXPECT_EQ(injector.stats().targetRecoveries, 1u);
  EXPECT_EQ(injector.stats().hostFailures, 1u);
  EXPECT_EQ(injector.stats().hostRecoveries, 1u);
  EXPECT_EQ(injector.stats().linkDegradations, 1u);
  EXPECT_EQ(injector.stats().total(), 5u);
}

TEST(FaultInjector, MidRunTargetFailureFailsOverAndCompletes) {
  System system(degradedParams());
  faults::FaultInjector injector(system.deployment, faults::parseSchedule("off:t4@0.05"));
  injector.arm();

  const auto handle = system.fs.createPinned("/victim", {0, 4}, 512_KiB);
  bool done = false;
  util::Seconds doneAt = 0.0;
  system.fs.writeAsync(0, handle, 0, 1_GiB, 8.0, [&](util::Seconds t) {
    done = true;
    doneAt = t;
  });
  system.fluid.run();

  ASSERT_TRUE(done);
  const auto& stats = system.fs.faultStats();
  EXPECT_FALSE(stats.aborted);
  EXPECT_GE(stats.timeouts, 1u);
  EXPECT_EQ(stats.retries, 0u);  // the target never came back
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.bytesRewritten, 512_MiB);  // the full per-target chunk
  EXPECT_GT(stats.degradedTime, 0.0);
  EXPECT_GT(doneAt, 0.0);

  // The stripe is degraded: slot 1 moved to a surviving target.
  const auto degraded = system.fs.degradedSlots(handle);
  ASSERT_EQ(degraded.size(), 1u);
  ASSERT_TRUE(degraded.count(1));
  EXPECT_NE(degraded.at(1), 4u);
  EXPECT_TRUE(system.deployment.mgmt().target(degraded.at(1)).online);
}

TEST(FaultInjector, RetrySucceedsWhenTargetRecovers) {
  auto params = degradedParams();
  params.faults.backoffBase = 0.3;  // first retry check lands after recovery
  System system(params);
  faults::FaultInjector injector(system.deployment,
                                 faults::parseSchedule("off:t4@0.05;on:t4@0.4"));
  injector.arm();

  const auto handle = system.fs.createPinned("/bounce", {0, 4}, 512_KiB);
  bool done = false;
  system.fs.writeAsync(0, handle, 0, 1_GiB, 8.0, [&](util::Seconds) { done = true; });
  system.fluid.run();

  ASSERT_TRUE(done);
  const auto& stats = system.fs.faultStats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failovers, 0u);  // same-target retry, no degraded stripe
  EXPECT_EQ(stats.bytesRewritten, 512_MiB);
  EXPECT_TRUE(system.fs.degradedSlots(handle).empty());
}

TEST(FaultInjector, StrictModeAbortsTheJob) {
  auto params = degradedParams();
  params.faults.mode = ClientFaultPolicy::Mode::kStrict;
  System system(params);
  faults::FaultInjector injector(system.deployment, faults::parseSchedule("off:t4@0.05"));
  injector.arm();

  ior::IorOptions options;
  options.blockSize = 256_MiB;
  const auto result =
      ior::runIor(system.fs, ior::IorJob::onFirstNodes(1, 1), options, {{0ul, 4ul}});
  EXPECT_TRUE(result.failed);
  EXPECT_TRUE(result.faults.aborted);
  EXPECT_DOUBLE_EQ(result.bandwidth, 0.0);
  EXPECT_GE(result.faults.timeouts, 1u);
  EXPECT_EQ(result.faults.failovers, 0u);
  EXPECT_TRUE(system.fs.faultsAborted());
}

TEST(FaultInjector, FaultAtTimeZeroMatchesStaticOffline) {
  // Regression: an injector event at t=0 must behave exactly like marking
  // the target offline before the run -- the injector is armed before the
  // job launch, and the engine's FIFO tie-break orders it first.
  beegfs::BeegfsParams faultParams = degradedParams();
  faultParams.defaultStripe.stripeCount = 8;
  System withInjector(faultParams);
  faults::FaultInjector injector(withInjector.deployment, faults::parseSchedule("off:t4@0"));
  injector.arm();

  beegfs::BeegfsParams staticParams;
  staticParams.defaultStripe.stripeCount = 8;
  System withStatic(staticParams);
  withStatic.deployment.mgmt().setTargetOnline(4, false);
  withStatic.deployment.setTargetHealth(4, 0.0);

  ior::IorOptions options;
  options.blockSize = ior::blockSizeForTotal(4_GiB, 16);
  const auto job = ior::IorJob::onFirstNodes(4, 4);
  const auto a = ior::runIor(withInjector.fs, job, options);
  const auto b = ior::runIor(withStatic.fs, job, options);

  EXPECT_EQ(a.targetsUsed, b.targetsUsed);
  EXPECT_DOUBLE_EQ(a.bandwidth, b.bandwidth);
  EXPECT_DOUBLE_EQ(a.end, b.end);
  EXPECT_EQ(a.faults.timeouts, 0u);  // nothing was ever sent to the dead target
}

TEST(FaultInjector, WatchdogsAloneDoNotPerturbHealthyRuns) {
  // Arming a fault policy without any faults must not change results: the
  // watchdog events observe, they never touch rates.
  beegfs::BeegfsParams plain;
  plain.defaultStripe.stripeCount = 8;
  System off(plain);
  auto armed = plain;
  armed.faults.mode = ClientFaultPolicy::Mode::kDegraded;
  armed.faults.ioTimeout = 0.5;
  System on(armed);

  ior::IorOptions options;
  options.blockSize = ior::blockSizeForTotal(4_GiB, 16);
  const auto job = ior::IorJob::onFirstNodes(4, 4);
  const auto a = ior::runIor(off.fs, job, options);
  const auto b = ior::runIor(on.fs, job, options);
  EXPECT_DOUBLE_EQ(a.bandwidth, b.bandwidth);
  EXPECT_EQ(b.faults.timeouts, 0u);
}

// -- Harness integration ---------------------------------------------------

harness::RunConfig faultRunConfig() {
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  config.fs = degradedParams();
  config.fs.faults.ioTimeout = 0.5;
  config.job = ior::IorJob::onFirstNodes(4, 4);
  config.ior.blockSize = ior::blockSizeForTotal(4_GiB, config.job.ranks());
  config.faults.schedule = faults::parseSchedule("off:t1@2;on:t1@8");
  return config;
}

TEST(FaultHarness, RunOnceIsDeterministicAndSurfacesCounters) {
  const auto config = faultRunConfig();
  const auto a = harness::runOnce(config, 42);
  const auto b = harness::runOnce(config, 42);
  EXPECT_TRUE(a.faultsActive);
  EXPECT_EQ(a.injected.targetFailures, 1u);
  EXPECT_EQ(a.injected.targetRecoveries, 1u);
  EXPECT_DOUBLE_EQ(a.ior.bandwidth, b.ior.bandwidth);
  EXPECT_EQ(a.ior.faults.timeouts, b.ior.faults.timeouts);
  EXPECT_EQ(a.ior.faults.failovers, b.ior.faults.failovers);
  EXPECT_DOUBLE_EQ(a.ior.faults.degradedTime, b.ior.faults.degradedTime);
}

TEST(FaultHarness, FailureScheduleWithoutPolicyThrows) {
  auto config = faultRunConfig();
  config.fs.faults.mode = ClientFaultPolicy::Mode::kNone;
  EXPECT_THROW(harness::runOnce(config, 42), util::ConfigError);
}

TEST(FaultHarness, EmptyPlanLeavesRecordUnflagged) {
  auto config = faultRunConfig();
  config.faults = {};
  config.fs.faults.mode = ClientFaultPolicy::Mode::kNone;
  const auto record = harness::runOnce(config, 42);
  EXPECT_FALSE(record.faultsActive);
  EXPECT_EQ(record.injected.total(), 0u);
  EXPECT_EQ(record.ior.faults.timeouts, 0u);
}

TEST(FaultHarness, CampaignRowsAreIdenticalSerialVsParallel) {
  // The acceptance bar: a fault-schedule campaign must be bitwise
  // row-identical between --jobs 1 and --jobs 8.
  std::vector<harness::CampaignEntry> entries(2);
  entries[0].config = faultRunConfig();
  entries[0].factors = {{"sched", "bounce"}};
  entries[1].config = faultRunConfig();
  entries[1].config.faults.schedule = faults::parseSchedule("off:h1@2");
  entries[1].factors = {{"sched", "crash"}};

  harness::ProtocolOptions protocol;
  protocol.repetitions = 3;

  harness::ExecutorOptions serial;
  serial.jobs = 1;
  harness::ExecutorOptions parallel;
  parallel.jobs = 8;
  const auto storeA = harness::executeCampaign(entries, protocol, 2022, nullptr, serial);
  const auto storeB = harness::executeCampaign(entries, protocol, 2022, nullptr, parallel);

  const auto pathA = std::filesystem::temp_directory_path() / "beesim_faults_serial.csv";
  const auto pathB = std::filesystem::temp_directory_path() / "beesim_faults_parallel.csv";
  storeA.writeCsv(pathA);
  storeB.writeCsv(pathB);
  const auto slurp = [](const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const auto textA = slurp(pathA);
  EXPECT_FALSE(textA.empty());
  EXPECT_EQ(textA, slurp(pathB));
  EXPECT_NE(textA.find("fault_failovers"), std::string::npos);
  std::filesystem::remove(pathA);
  std::filesystem::remove(pathB);
}

TEST(FaultHarness, StochasticPlanIsSeedDeterministic) {
  auto config = faultRunConfig();
  config.faults.schedule = {};
  faults::StochasticFaultSpec spec;
  spec.targetMttf = 6.0;
  spec.targetMttr = 2.0;
  spec.horizon = 12.0;
  config.faults.stochastic = spec;
  const auto a = harness::runOnce(config, 9);
  const auto b = harness::runOnce(config, 9);
  EXPECT_DOUBLE_EQ(a.ior.bandwidth, b.ior.bandwidth);
  EXPECT_EQ(a.injected.total(), b.injected.total());
}

}  // namespace
}  // namespace beesim
