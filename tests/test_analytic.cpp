#include "core/analytic.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim::core {
namespace {

using namespace beesim::util::literals;

TEST(NetworkBound, Fig3MinRule) {
  // N < M: limited by the client side; N >= M: by the server side.
  EXPECT_DOUBLE_EQ(networkBound(1, 2, 1100.0), 1100.0);
  EXPECT_DOUBLE_EQ(networkBound(2, 2, 1100.0), 2200.0);
  EXPECT_DOUBLE_EQ(networkBound(8, 2, 1100.0), 2200.0);
  EXPECT_DOUBLE_EQ(networkBound(3, 12, 500.0), 1500.0);
}

TEST(NetworkBound, InvalidArgsThrow) {
  EXPECT_THROW(networkBound(0, 2, 1.0), util::ContractError);
  EXPECT_THROW(networkBound(1, 0, 1.0), util::ContractError);
  EXPECT_THROW(networkBound(1, 1, 0.0), util::ContractError);
}

TEST(NetworkLimited, BandwidthFollowsHotHost) {
  const double link = 1100.0;
  EXPECT_DOUBLE_EQ(
      networkLimitedBandwidth(Allocation(std::vector<std::size_t>{0, 2}), link), link);
  EXPECT_DOUBLE_EQ(
      networkLimitedBandwidth(Allocation(std::vector<std::size_t>{1, 1}), link), 2 * link);
  EXPECT_NEAR(networkLimitedBandwidth(Allocation(std::vector<std::size_t>{1, 3}), link),
              link * 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(networkLimitedBandwidth(Allocation(std::vector<std::size_t>{2, 3}), link),
              link * 5.0 / 3.0, 1e-9);
}

TEST(NetworkLimited, PaperOrderingOfFig8Reproduced) {
  // (0,k) < (1,3) < (1,2) == (2,4) < (2,3) < balanced.
  const double link = 1100.0;
  auto bw = [&](std::size_t a, std::size_t b) {
    return networkLimitedBandwidth(Allocation(std::vector<std::size_t>{a, b}), link);
  };
  EXPECT_DOUBLE_EQ(bw(0, 1), bw(0, 3));
  EXPECT_LT(bw(0, 3), bw(1, 3));
  EXPECT_LT(bw(1, 3), bw(1, 2));
  EXPECT_DOUBLE_EQ(bw(1, 2), bw(2, 4));
  EXPECT_LT(bw(2, 4), bw(2, 3));
  EXPECT_LT(bw(2, 3), bw(1, 1));
  EXPECT_DOUBLE_EQ(bw(1, 1), bw(4, 4));
}

TEST(NetworkLimited, WriteTimeInvertsBandwidth) {
  const Allocation alloc(std::vector<std::size_t>{1, 3});
  const double time = networkLimitedWriteTime(32_GiB, alloc, 1100.0);
  EXPECT_NEAR(util::toMiB(32_GiB) / time, 1100.0 * 4.0 / 3.0, 1e-6);
  EXPECT_THROW(networkLimitedWriteTime(0, alloc, 1100.0), util::ContractError);
}

TEST(TwoTargetTimeline, Fig9BalancedHalvesTheTime) {
  const auto balanced = twoTargetTimeline(32_GiB, true, 1100.0);
  const auto unbalanced = twoTargetTimeline(32_GiB, false, 1100.0);
  ASSERT_EQ(balanced.size(), 1u);
  ASSERT_EQ(unbalanced.size(), 1u);
  EXPECT_DOUBLE_EQ(balanced[0].totalRate, 2200.0);
  EXPECT_DOUBLE_EQ(unbalanced[0].totalRate, 1100.0);
  EXPECT_NEAR(unbalanced[0].end / balanced[0].end, 2.0, 1e-9);
  // Both move the same volume.
  EXPECT_NEAR(balanced[0].totalRate * balanced[0].end,
              unbalanced[0].totalRate * unbalanced[0].end, 1e-6);
}

TEST(TwoTargetTimeline, InvalidArgsThrow) {
  EXPECT_THROW(twoTargetTimeline(0, true, 1100.0), util::ContractError);
  EXPECT_THROW(twoTargetTimeline(1_GiB, true, 0.0), util::ContractError);
}

}  // namespace
}  // namespace beesim::core
