#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace beesim::stats {
namespace {

TEST(Summary, KnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.sd, 2.13809, 1e-4);  // sample sd
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Summary, SingleValue) {
  const std::vector<double> xs{3.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.sd, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
}

TEST(Summary, EmptySampleThrows) {
  EXPECT_THROW(summarize(std::vector<double>{}), util::ContractError);
}

TEST(Summary, CvIsRelativeSpread) {
  const std::vector<double> xs{90.0, 100.0, 110.0};
  EXPECT_NEAR(summarize(xs).cv(), 10.0 / 100.0, 1e-9);
}

TEST(Quantile, MatchesNumpyLinearInterpolation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);  // numpy type-7
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 3.25);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, BoundsChecked) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, -0.1), util::ContractError);
  EXPECT_THROW(quantile(xs, 1.1), util::ContractError);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), util::ContractError);
}

TEST(BoxPlot, WhiskersAtExtremesWithoutOutliers) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto box = boxPlot(xs);
  EXPECT_DOUBLE_EQ(box.median, 3.0);
  EXPECT_DOUBLE_EQ(box.whiskerLow, 1.0);
  EXPECT_DOUBLE_EQ(box.whiskerHigh, 5.0);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(BoxPlot, OutliersBeyondTukeyFences) {
  std::vector<double> xs{10.0, 11.0, 12.0, 13.0, 14.0, 100.0};
  const auto box = boxPlot(xs);
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(box.outliers[0], 100.0);
  EXPECT_LE(box.whiskerHigh, 14.0);
}

TEST(JainIndex, PerfectFairnessIsOne) {
  const std::vector<double> xs{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jainIndex(xs), 1.0);
}

TEST(JainIndex, OneUserTakingEverythingIsOneOverN) {
  const std::vector<double> xs{10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jainIndex(xs), 0.25);
}

TEST(JainIndex, KnownMixedAllocation) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(jainIndex(xs), 36.0 / 42.0);
}

TEST(JainIndex, ScaleInvariant) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> scaled;
  for (const double x : xs) scaled.push_back(1000.0 * x);
  EXPECT_DOUBLE_EQ(jainIndex(xs), jainIndex(scaled));
}

TEST(JainIndex, AllZeroIsEquallyNothing) {
  const std::vector<double> xs{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jainIndex(xs), 1.0);
}

TEST(JainIndex, ContractViolationsThrow) {
  EXPECT_THROW(jainIndex(std::vector<double>{}), util::ContractError);
  EXPECT_THROW(jainIndex(std::vector<double>{1.0, -0.5}), util::ContractError);
}

TEST(Summary, DescribeContainsKeyNumbers) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto text = summarize(xs).describe();
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("mean=2.0"), std::string::npos);
}

}  // namespace
}  // namespace beesim::stats
