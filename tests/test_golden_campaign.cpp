// Campaign CSV goldens: the exact bytes a fixed-seed campaign writes are
// pinned against files committed under tests/golden/.  Any change to the
// fluid core (solver order, component decomposition, completion batching)
// that alters simulated trajectories -- beyond formatting-invisible ULP
// noise -- fails here before it can silently shift the paper's figures.
//
// Regenerate the goldens (only when a behavior change is *intended*) with:
//   BEESIM_REGEN_GOLDEN=1 ./build/tests/beesim_tests --gtest_filter='Golden*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/campaign.hpp"
#include "harness/concurrent.hpp"
#include "ior/runner.hpp"
#include "topology/plafrim.hpp"
#include "util/units.hpp"

namespace beesim {
namespace {

using namespace beesim::util::literals;

std::filesystem::path goldenDir() { return BEESIM_TEST_GOLDEN_DIR; }

bool regenRequested() {
  const char* regen = std::getenv("BEESIM_REGEN_GOLDEN");
  return regen != nullptr && *regen != '\0' && std::string(regen) != "0";
}

std::string readFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Compare the store's CSV bytes against `name` in the golden dir (or
/// rewrite the golden when BEESIM_REGEN_GOLDEN is set).
void expectMatchesGolden(const harness::ResultStore& store, const std::string& name) {
  const auto tmp = std::filesystem::temp_directory_path() / ("beesim_" + name);
  store.writeCsv(tmp);
  const auto produced = readFile(tmp);
  std::filesystem::remove(tmp);
  ASSERT_FALSE(produced.empty());

  const auto goldenPath = goldenDir() / name;
  if (regenRequested()) {
    std::filesystem::create_directories(goldenDir());
    std::ofstream out(goldenPath, std::ios::binary);
    out << produced;
    return;
  }
  const auto golden = readFile(goldenPath);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << goldenPath
                               << " (regenerate with BEESIM_REGEN_GOLDEN=1)";
  EXPECT_EQ(produced, golden) << "campaign CSV is no longer byte-identical to "
                              << goldenPath;
}

TEST(GoldenCampaign, SingleAppCampaignCsvIsByteStable) {
  std::vector<harness::CampaignEntry> entries;
  for (const unsigned count : {2u, 8u}) {
    harness::CampaignEntry entry;
    entry.config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
    entry.config.fs.defaultStripe.stripeCount = count;
    entry.config.job = ior::IorJob::onFirstNodes(4, 8);
    entry.config.ior.blockSize = ior::blockSizeForTotal(4_GiB, entry.config.job.ranks());
    entry.factors["count"] = std::to_string(count);
    entries.push_back(std::move(entry));
  }
  harness::ProtocolOptions options;
  options.repetitions = 3;
  const auto store = harness::executeCampaign(entries, options, 20220714);
  expectMatchesGolden(store, "campaign_single_app.csv");
}

TEST(GoldenCampaign, ConcurrentAppsCampaignCsvIsByteStable) {
  // The paper's Section IV-D setting: two 4-node apps, once on disjoint
  // pinned targets (separate solver components) and once all-shared --
  // exactly the topologies the incremental resolver treats differently.
  harness::ResultStore store;
  for (const bool disjoint : {true, false}) {
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      harness::RunConfig base;
      base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 8);
      base.fs.defaultStripe.stripeCount = disjoint ? 2 : 8;

      std::vector<harness::AppSpec> apps(2);
      for (std::size_t a = 0; a < 2; ++a) {
        apps[a].job.ppn = 8;
        for (std::size_t n = 0; n < 4; ++n) apps[a].job.nodeIds.push_back(a * 4 + n);
        apps[a].ior.blockSize = ior::blockSizeForTotal(8_GiB, apps[a].job.ranks());
        if (disjoint) {
          apps[a].pinnedTargets = std::vector<std::size_t>{a, 4 + a};
        } else {
          apps[a].pinnedTargets = std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7};
        }
      }
      const auto result =
          harness::runConcurrent(base, apps, 43000 + 100 * (disjoint ? 1 : 0) + rep);

      harness::ResultRow row;
      row.factors["sharing"] = disjoint ? "disjoint" : "shared";
      row.factors["rep"] = std::to_string(rep);
      row.metrics["aggregate_mibps"] = result.aggregateBandwidth;
      row.metrics["app0_mibps"] = result.apps[0].bandwidth;
      row.metrics["app1_mibps"] = result.apps[1].bandwidth;
      row.metrics["shared_targets"] = static_cast<double>(result.sharedTargets);
      store.add(std::move(row));
    }
  }
  expectMatchesGolden(store, "campaign_concurrent.csv");
}

}  // namespace
}  // namespace beesim
