#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace beesim::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parseJson("null").isNull());
  EXPECT_EQ(parseJson("true").asBool(), true);
  EXPECT_EQ(parseJson("false").asBool(), false);
  EXPECT_DOUBLE_EQ(parseJson("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(parseJson("-3.5e2").asNumber(), -350.0);
  EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const auto doc = parseJson(R"({
    "name": "plafrim",
    "hosts": [ {"nic": 1100, "targets": [1, 2, 3]}, {"nic": 1100.5} ],
    "flag": true
  })");
  EXPECT_EQ(doc.at("name").asString(), "plafrim");
  const auto& hosts = doc.at("hosts").asArray();
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_DOUBLE_EQ(hosts[0].at("nic").asNumber(), 1100.0);
  EXPECT_EQ(hosts[0].at("targets").asArray().size(), 3u);
  EXPECT_TRUE(doc.at("flag").asBool());
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parseJson(R"("a\"b\\c\nd\te")").asString(), "a\"b\\c\nd\te");
  EXPECT_EQ(parseJson(R"("Aé")").asString(), "A\xc3\xa9");  // A, e-acute UTF-8
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(parseJson("[]").asArray().empty());
  EXPECT_TRUE(parseJson("{}").asObject().empty());
  EXPECT_TRUE(parseJson(" [ ] ").asArray().empty());
}

TEST(Json, ErrorsCarryPosition) {
  try {
    parseJson("{\n  \"a\": ,\n}");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Json, MalformedInputsThrow) {
  EXPECT_THROW(parseJson(""), ConfigError);
  EXPECT_THROW(parseJson("{"), ConfigError);
  EXPECT_THROW(parseJson("[1,]"), ConfigError);
  EXPECT_THROW(parseJson("{\"a\" 1}"), ConfigError);
  EXPECT_THROW(parseJson("tru"), ConfigError);
  EXPECT_THROW(parseJson("1 2"), ConfigError);  // trailing garbage
  EXPECT_THROW(parseJson("\"unterminated"), ConfigError);
  EXPECT_THROW(parseJson("1.2.3"), ConfigError);
}

TEST(Json, KindMismatchesThrow) {
  const auto doc = parseJson(R"({"n": 5})");
  EXPECT_THROW(doc.at("n").asString(), ConfigError);
  EXPECT_THROW(doc.at("missing"), ConfigError);
  EXPECT_THROW(doc.asArray(), ConfigError);
  EXPECT_THROW(parseJson("3").at("x"), ConfigError);
}

TEST(Json, FallbackAccessors) {
  const auto doc = parseJson(R"({"a": 1, "s": "x", "b": false})");
  EXPECT_DOUBLE_EQ(doc.numberOr("a", 9.0), 1.0);
  EXPECT_DOUBLE_EQ(doc.numberOr("zz", 9.0), 9.0);
  EXPECT_EQ(doc.stringOr("s", "y"), "x");
  EXPECT_EQ(doc.stringOr("zz", "y"), "y");
  EXPECT_FALSE(doc.boolOr("b", true));
  EXPECT_TRUE(doc.boolOr("zz", true));
  // Present-but-wrong-kind still throws (typos must not pass silently).
  EXPECT_THROW(doc.numberOr("s", 0.0), ConfigError);
}

TEST(Json, DumpRoundTrips) {
  const std::string text =
      R"({"array":[1,2.5,"three",null],"nested":{"ok":true},"z":"last"})";
  const auto doc = parseJson(text);
  EXPECT_EQ(parseJson(doc.dump()), doc);
  EXPECT_EQ(parseJson(doc.dump(2)), doc);  // pretty-print round-trips too
  // Compact dump of ordered keys is canonical.
  EXPECT_EQ(doc.dump(), text);
}

TEST(Json, DumpEscapesStrings) {
  const JsonValue value(std::string("quote\" slash\\ nl\n"));
  EXPECT_EQ(parseJson(value.dump()).asString(), "quote\" slash\\ nl\n");
}

TEST(Json, BuildProgrammatically) {
  JsonObject obj;
  obj["count"] = 4;
  obj["list"] = JsonValue(JsonArray{JsonValue(1), JsonValue(2)});
  const JsonValue doc{std::move(obj)};
  EXPECT_EQ(doc.dump(), R"({"count":4,"list":[1,2]})");
}

}  // namespace
}  // namespace beesim::util
