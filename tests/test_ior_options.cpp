#include "ior/options.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace beesim::ior {
namespace {

using namespace beesim::util::literals;

TEST(IorOptions, DefaultsMatchThePaper) {
  const IorOptions opts;
  EXPECT_EQ(opts.transferSize, 1_MiB);
  EXPECT_EQ(opts.pattern, AccessPattern::kSharedFile);
  EXPECT_EQ(opts.api, Api::kPosix);
  EXPECT_EQ(opts.operation, Operation::kWrite);
  EXPECT_NO_THROW(opts.validate());
}

TEST(IorOptions, TotalBytes) {
  IorOptions opts;
  opts.blockSize = 512_MiB;
  opts.segments = 2;
  EXPECT_EQ(opts.totalBytes(32), 32ULL * 2 * 512_MiB);
}

TEST(IorOptions, SharedFileOffsetsInterleaveRanksWithinSegments) {
  IorOptions opts;
  opts.blockSize = 1_GiB;
  opts.segments = 2;
  // Segment layout: [seg0: rank0, rank1, ..., seg1: rank0, rank1, ...].
  EXPECT_EQ(opts.rankSegmentOffset(0, 4, 0), 0u);
  EXPECT_EQ(opts.rankSegmentOffset(3, 4, 0), 3_GiB);
  EXPECT_EQ(opts.rankSegmentOffset(0, 4, 1), 4_GiB);
  EXPECT_EQ(opts.rankSegmentOffset(2, 4, 1), 6_GiB);
}

TEST(IorOptions, FilePerProcessOffsetsAreLocal) {
  IorOptions opts;
  opts.pattern = AccessPattern::kFilePerProcess;
  opts.blockSize = 1_GiB;
  opts.segments = 3;
  EXPECT_EQ(opts.rankSegmentOffset(5, 8, 2), 2_GiB);
}

TEST(IorOptions, OffsetBoundsChecked) {
  const IorOptions opts;
  EXPECT_THROW(opts.rankSegmentOffset(4, 4, 0), util::ContractError);
  EXPECT_THROW(opts.rankSegmentOffset(0, 4, 1), util::ContractError);
}

TEST(IorOptions, ValidateCatchesNonsense) {
  IorOptions opts;
  opts.blockSize = 0;
  EXPECT_THROW(opts.validate(), util::ConfigError);

  opts = IorOptions{};
  opts.transferSize = 3_MiB;  // does not divide 1 GiB block? 1024/3 no.
  EXPECT_THROW(opts.validate(), util::ConfigError);

  opts = IorOptions{};
  opts.segments = 0;
  EXPECT_THROW(opts.validate(), util::ConfigError);

  opts = IorOptions{};
  opts.testFile = "relative.dat";
  EXPECT_THROW(opts.validate(), util::ConfigError);
}

TEST(IorOptions, ParseIorStyleFlags) {
  const auto opts = IorOptions::parse(
      {"-a", "POSIX", "-w", "-b", "4g", "-t", "1m", "-s", "2", "-o", "/beegfs/test"});
  EXPECT_EQ(opts.blockSize, 4_GiB);
  EXPECT_EQ(opts.transferSize, 1_MiB);
  EXPECT_EQ(opts.segments, 2);
  EXPECT_EQ(opts.testFile, "/beegfs/test");
}

TEST(IorOptions, ParseFilePerProcessAndRead) {
  const auto opts = IorOptions::parse({"-F", "-r", "-b", "256m"});
  EXPECT_EQ(opts.pattern, AccessPattern::kFilePerProcess);
  EXPECT_EQ(opts.operation, Operation::kRead);
}

TEST(IorOptions, ParseRejectsUnknownOrIncomplete) {
  EXPECT_THROW(IorOptions::parse({"-q"}), util::ConfigError);
  EXPECT_THROW(IorOptions::parse({"-b"}), util::ConfigError);
  EXPECT_THROW(IorOptions::parse({"-a", "HDF5"}), util::ConfigError);
  EXPECT_THROW(IorOptions::parse({"-b", "banana"}), util::ConfigError);
}

TEST(IorOptions, DescribeRoundTripsKeyFlags) {
  IorOptions opts;
  opts.blockSize = 4_GiB;
  opts.segments = 2;
  const auto text = opts.describe();
  EXPECT_NE(text.find("-b 4 GiB"), std::string::npos);
  EXPECT_NE(text.find("-s 2"), std::string::npos);
  EXPECT_NE(text.find("POSIX"), std::string::npos);
}

TEST(BlockSizeForTotal, DividesEvenly) {
  EXPECT_EQ(blockSizeForTotal(32_GiB, 32), 1_GiB);
  EXPECT_EQ(blockSizeForTotal(32_GiB, 64), 512_MiB);
  EXPECT_THROW(blockSizeForTotal(32_GiB + 1, 32), util::ConfigError);
}

}  // namespace
}  // namespace beesim::ior
