#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace beesim::cli {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> argv) {
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = runCli(argv, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

TEST(Cli, HelpAndUnknownCommand) {
  const auto help = run({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage: beesim"), std::string::npos);

  const auto empty = run({});
  EXPECT_EQ(empty.code, 1);

  const auto bogus = run({"frobnicate"});
  EXPECT_EQ(bogus.code, 1);
  EXPECT_NE(bogus.err.find("unknown command"), std::string::npos);
}

TEST(Cli, DescribeListsHostsAndBounds) {
  const auto result = run({"describe", "--cluster", "plafrim1", "--nodes", "4"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("plafrim-s1-oss0"), std::string::npos);
  EXPECT_NE(result.out.find("network bound"), std::string::npos);
  EXPECT_NE(result.out.find("compute nodes: 4"), std::string::npos);
}

TEST(Cli, RunReportsBandwidthAndAllocations) {
  const auto result = run({"run", "--cluster", "plafrim1", "--nodes", "4", "--stripe", "4",
                           "--reps", "3", "--total", "4GiB"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("bandwidth: n=3"), std::string::npos);
  EXPECT_NE(result.out.find("(1,3) x3"), std::string::npos);  // the PlaFRIM RR constant
}

TEST(Cli, RunSupportsReadAndNnPattern) {
  const auto read = run({"run", "--cluster", "plafrim2", "--nodes", "2", "--reps", "2",
                         "--total", "2GiB", "--op", "read"});
  EXPECT_EQ(read.code, 0) << read.err;
  const auto nn = run({"run", "--cluster", "plafrim2", "--nodes", "2", "--reps", "2",
                       "--total", "2GiB", "--pattern", "nn", "--chooser", "random"});
  EXPECT_EQ(nn.code, 0) << nn.err;
}

TEST(Cli, RunIsDeterministicGivenSeed) {
  const std::vector<std::string> argv{"run",    "--cluster", "plafrim2", "--nodes", "2",
                                      "--reps", "2",         "--total",  "2GiB",    "--seed",
                                      "77"};
  EXPECT_EQ(run(argv).out, run(argv).out);
}

TEST(Cli, SweepRecommendsMaximumOnPlafrim) {
  const auto result = run({"sweep", "--cluster", "plafrim1", "--nodes", "8", "--reps", "8",
                           "--total", "8GiB"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("Recommend stripe count 8"), std::string::npos);
  // The sweep prints the Fig. 6-style scatter.
  EXPECT_NE(result.out.find("stripe count (individual executions)"), std::string::npos);
}

TEST(Cli, ConcurrentReportsAggregateAndSharing) {
  const auto result = run({"concurrent", "--apps", "2", "--nodes-per-app", "2", "--stripe",
                           "8", "--reps", "2", "--total", "2GiB"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("aggregate (Eq. 1)"), std::string::npos);
  EXPECT_NE(result.out.find("runs with target sharing: 2/2"), std::string::npos);
}

TEST(Cli, ExportThenLoadRoundTrips) {
  const auto path =
      (std::filesystem::temp_directory_path() / "beesim_cli_cluster.json").string();
  const auto exported = run({"export-cluster", "--cluster", "catalyst", "--nodes", "2",
                             "--out", path});
  EXPECT_EQ(exported.code, 0) << exported.err;
  const auto described = run({"describe", "--cluster", path});
  EXPECT_EQ(described.code, 0) << described.err;
  EXPECT_NE(described.out.find("catalyst-like-oss11"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Cli, ExportWithoutOutPrintsJson) {
  const auto result = run({"export-cluster", "--cluster", "plafrim1", "--nodes", "1"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("\"hosts\""), std::string::npos);
}

TEST(Cli, RunWithMirrorReportsReplicationTotals) {
  const auto result = run({"run", "--cluster", "plafrim1", "--nodes", "2", "--reps", "2",
                           "--total", "2GiB", "--mirror"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("mirror (totals over 2 reps)"), std::string::npos);
  EXPECT_NE(result.out.find("failovers=0"), std::string::npos);
  EXPECT_NE(result.out.find("lost=0.0 MiB"), std::string::npos);
}

TEST(Cli, RejectsNonPositiveFaultAndMirrorDurations) {
  // Satellite: a non-positive duration/rate silently disables or degrades
  // the feature it configures; each is rejected with a pointed message.
  const auto base = std::vector<std::string>{"run", "--cluster", "plafrim1", "--nodes",
                                             "2",   "--reps",    "1",        "--total",
                                             "1GiB"};
  const auto with = [&](std::initializer_list<std::string> extra) {
    auto argv = base;
    argv.insert(argv.end(), extra);
    return run(argv);
  };
  for (const auto& [flag, value] : std::vector<std::pair<std::string, std::string>>{
           {"--io-timeout", "0"},
           {"--io-timeout", "-1"},
           {"--mttf", "0"},
           {"--mttr", "-2"},
           {"--fault-horizon", "0"},
           {"--resync-rate", "-5"},
       }) {
    const auto result = with({flag, value});
    EXPECT_EQ(result.code, 1) << flag << " " << value;
    EXPECT_NE(result.err.find(flag + " must be > 0"), std::string::npos)
        << flag << ": " << result.err;
  }
  // Omitting the optional flags stays valid (zero defaults mean "disabled").
  EXPECT_EQ(with({}).code, 0);
}

TEST(Cli, RejectsNonFiniteDurations) {
  // Satellite bugfix: "nan"/"inf" parse as doubles, and NaN then slips past
  // the `value <= 0` guards above (NaN <= 0 is false) -- e.g. --mttf nan
  // used to arm a stochastic fault generator with a NaN MTTF.
  const auto base = std::vector<std::string>{"run", "--cluster", "plafrim1", "--nodes",
                                             "2",   "--reps",    "1",        "--total",
                                             "1GiB"};
  const auto with = [&](std::initializer_list<std::string> extra) {
    auto argv = base;
    argv.insert(argv.end(), extra);
    return run(argv);
  };
  for (const std::string flag : {"--io-timeout", "--mttf", "--mttr", "--resync-rate"}) {
    for (const std::string value : {"nan", "inf", "-inf"}) {
      const auto result = with({flag, value});
      EXPECT_EQ(result.code, 1) << flag << " " << value;
      EXPECT_NE(result.err.find("is not a finite number"), std::string::npos)
          << flag << " " << value << ": " << result.err;
    }
  }
}

TEST(Cli, RejectsMistypedBooleanValue) {
  // Satellite bugfix: --mirror=tru used to silently disable mirroring.
  const auto result = run({"run", "--cluster", "plafrim1", "--nodes", "2", "--reps", "1",
                           "--total", "1GiB", "--mirror=tru"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("is not a boolean"), std::string::npos) << result.err;
}

TEST(Cli, RunExportsChromeTraceAndMetrics) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto tracePath = (dir / "beesim_cli_trace.json").string();
  const auto metricsPath = (dir / "beesim_cli_metrics.csv").string();
  const auto result = run({"run", "--cluster", "plafrim1", "--nodes", "2", "--reps", "1",
                           "--total", "1GiB", "--trace-out", tracePath, "--metrics-out",
                           metricsPath, "--metrics-dt", "0.05"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("Chrome trace"), std::string::npos);
  EXPECT_NE(result.out.find("link_imbalance"), std::string::npos);
  EXPECT_GT(std::filesystem::file_size(tracePath), 0u);
  EXPECT_GT(std::filesystem::file_size(metricsPath), 0u);
  std::filesystem::remove(tracePath);
  std::filesystem::remove(metricsPath);

  const auto bad = run({"run", "--cluster", "plafrim1", "--nodes", "2", "--reps", "1",
                        "--total", "1GiB", "--metrics-out", metricsPath, "--metrics-dt",
                        "0"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("--metrics-dt must be > 0"), std::string::npos) << bad.err;
}

TEST(Cli, ErrorsAreReportedNotThrown) {
  EXPECT_EQ(run({"run", "--stripe", "banana"}).code, 1);
  EXPECT_EQ(run({"describe", "--cluster", "/no/such/file.json"}).code, 1);
  EXPECT_EQ(run({"run", "--bogus-flag", "1"}).code, 1);
  EXPECT_NE(run({"run", "--bogus-flag", "1"}).err.find("--bogus-flag"), std::string::npos);
  EXPECT_EQ(run({"run", "--pattern", "n7"}).code, 1);
  EXPECT_EQ(run({"run", "--op", "delete"}).code, 1);
  EXPECT_EQ(run({"concurrent", "--apps", "3", "--nodes-per-app", "8", "--nodes", "4"}).code,
            1);
}

}  // namespace
}  // namespace beesim::cli
