#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace beesim::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  TableWriter table({"name", "value"});
  table.addRow({"alpha", "1.5"});
  table.addRow({"beta", "22.0"});
  const auto out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.0"), std::string::npos);
  EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  TableWriter table({"a", "b"});
  EXPECT_THROW(table.addRow({"x"}), ContractError);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(TableWriter({}), ContractError);
}

TEST(Table, NumericCellsRightAlign) {
  TableWriter table({"metric", "wide-header-col"});
  table.addRow({"bw", "7"});
  const auto out = table.render();
  // The numeric "7" should be padded on the left up to the header width.
  EXPECT_NE(out.find("              7"), std::string::npos);
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1460.26), "1460.3");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace beesim::util
