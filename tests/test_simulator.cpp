#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace beesim::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, EventsFireInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CallbacksMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.scheduleAfter(1.0, chain);
  };
  sim.scheduleAfter(1.0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule(1.0, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireLeavesNoBacklog) {
  // Regression: cancelling an event that already fired (or never existed)
  // used to park the id in the cancelled-set forever, leaking memory over a
  // long campaign.  Only ids still in the queue may enter the backlog.
  Simulator sim;
  const auto id = sim.schedule(1.0, [] {});
  sim.run();
  sim.cancel(id);               // already fired
  sim.cancel(EventId{12345});   // never scheduled
  EXPECT_EQ(sim.cancelledBacklog(), 0u);
}

TEST(Simulator, CancelledBacklogDrainsWhenEventsExpire) {
  Simulator sim;
  const auto id = sim.schedule(1.0, [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.cancelledBacklog(), 1u);
  sim.run();  // the cancelled event is skipped and its marker retired
  EXPECT_EQ(sim.cancelledBacklog(), 0u);
}

TEST(Simulator, StaleCancelDoesNotHitRecycledSlot) {
  // The event pool recycles slots; a handle kept past its event's firing
  // must not cancel whatever event reuses the slot (generation stamp).
  Simulator sim;
  const auto a = sim.schedule(1.0, [] {});
  sim.run();
  bool ran = false;
  sim.schedule(2.0, [&] { ran = true; });  // reuses a's slot
  sim.cancel(a);                           // stale handle
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.cancelledBacklog(), 0u);
}

TEST(Simulator, CancelUnknownIdIsHarmless) {
  Simulator sim;
  sim.cancel(EventId{999});
  bool ran = false;
  sim.schedule(1.0, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule(t, [&fired, t] { fired.push_back(t); });
  }
  EXPECT_EQ(sim.runUntil(2.5), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.run(), 2u);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.runUntil(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(4.0, [] {}), util::ContractError);
  EXPECT_THROW(sim.scheduleAfter(-1.0, [] {}), util::ContractError);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(1.0, nullptr), util::ContractError);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

/// Drive `sim` through a deterministic but adversarial schedule -- duplicate
/// timestamps, cancellations (pending, fired and stale), callbacks that
/// schedule and cancel more events -- and return the dispatch order.
std::vector<int> adversarialDispatchOrder(Simulator& sim) {
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 40; ++i) {
    // Timestamps collide on purpose: i%7 buckets, FIFO inside each.
    ids.push_back(sim.schedule(1.0 + i % 7, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 40; i += 5) sim.cancel(ids[i]);  // pending cancels
  sim.schedule(2.5, [&] {
    order.push_back(100);
    for (int i = 1; i < 40; i += 10) sim.cancel(ids[i]);  // mid-run cancels
    sim.schedule(2.5, [&order] { order.push_back(101); });  // same instant
    sim.scheduleAfter(10.0, [&order] { order.push_back(102); });
  });
  sim.runUntil(3.0);
  sim.cancel(ids[3]);  // stale cancel: already fired at t=1+3
  sim.run();
  return order;
}

TEST(Simulator, DispatchOrderIsShardCountInvariant) {
  // Every event carries a globally unique sequence number, so (time,
  // sequence) is a total order and the shard decomposition must be
  // invisible: any shard count -- including 1, the legacy monolithic heap --
  // yields the identical dispatch sequence.  Golden-CSV byte-identity
  // across builds rests on exactly this property.
  Simulator mono(1);
  const auto expected = adversarialDispatchOrder(mono);
  ASSERT_FALSE(expected.empty());
  for (const std::size_t shards : {2u, 3u, 8u, 16u}) {
    Simulator sim(shards);
    EXPECT_EQ(sim.shardCount(), shards);
    EXPECT_EQ(adversarialDispatchOrder(sim), expected) << shards << " shards";
  }
  Simulator dflt;
  EXPECT_EQ(dflt.shardCount(), Simulator::kDefaultShards);
  EXPECT_EQ(adversarialDispatchOrder(dflt), expected);
}

TEST(Simulator, RunUntilStopsAtLimitWithCancelledFront) {
  // A cancelled event sitting at the global front must not make runUntil
  // overshoot: the purge retires it so the clock advances to the limit, not
  // to the next live event's timestamp.
  Simulator sim;
  bool lateRan = false;
  const auto cancelled = sim.schedule(1.0, [] { FAIL() << "cancelled event ran"; });
  sim.schedule(5.0, [&] { lateRan = true; });
  sim.cancel(cancelled);
  EXPECT_EQ(sim.runUntil(2.0), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_FALSE(lateRan);
  sim.run();
  EXPECT_TRUE(lateRan);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, ZeroShardsThrows) {
  EXPECT_THROW(Simulator(0), util::ContractError);
}

}  // namespace
}  // namespace beesim::sim
