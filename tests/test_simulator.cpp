#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace beesim::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, EventsFireInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CallbacksMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.scheduleAfter(1.0, chain);
  };
  sim.scheduleAfter(1.0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule(1.0, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireLeavesNoBacklog) {
  // Regression: cancelling an event that already fired (or never existed)
  // used to park the id in the cancelled-set forever, leaking memory over a
  // long campaign.  Only ids still in the queue may enter the backlog.
  Simulator sim;
  const auto id = sim.schedule(1.0, [] {});
  sim.run();
  sim.cancel(id);               // already fired
  sim.cancel(EventId{12345});   // never scheduled
  EXPECT_EQ(sim.cancelledBacklog(), 0u);
}

TEST(Simulator, CancelledBacklogDrainsWhenEventsExpire) {
  Simulator sim;
  const auto id = sim.schedule(1.0, [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.cancelledBacklog(), 1u);
  sim.run();  // the cancelled event is skipped and its marker retired
  EXPECT_EQ(sim.cancelledBacklog(), 0u);
}

TEST(Simulator, StaleCancelDoesNotHitRecycledSlot) {
  // The event pool recycles slots; a handle kept past its event's firing
  // must not cancel whatever event reuses the slot (generation stamp).
  Simulator sim;
  const auto a = sim.schedule(1.0, [] {});
  sim.run();
  bool ran = false;
  sim.schedule(2.0, [&] { ran = true; });  // reuses a's slot
  sim.cancel(a);                           // stale handle
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.cancelledBacklog(), 0u);
}

TEST(Simulator, CancelUnknownIdIsHarmless) {
  Simulator sim;
  sim.cancel(EventId{999});
  bool ran = false;
  sim.schedule(1.0, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule(t, [&fired, t] { fired.push_back(t); });
  }
  EXPECT_EQ(sim.runUntil(2.5), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.run(), 2u);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.runUntil(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(4.0, [] {}), util::ContractError);
  EXPECT_THROW(sim.scheduleAfter(-1.0, [] {}), util::ContractError);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(1.0, nullptr), util::ContractError);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace beesim::sim
