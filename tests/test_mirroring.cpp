// Storage buddy-mirror groups: registration rules, the failover/revive
// contracts, synchronous write replication, zero-loss primary failover,
// background resync, and the property that random fault schedules can never
// promote an offline or inconsistent secondary (the registry enforces it
// with ContractError, so a violation fails the run loudly).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "beegfs/mgmt.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "harness/campaign.hpp"
#include "ior/runner.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim {
namespace {

using namespace beesim::util::literals;
using beegfs::ClientFaultPolicy;
using beegfs::MirrorState;

// -- Registry: group registration and state contracts -----------------------

topo::ClusterConfig testCluster() {
  return topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
}

TEST(MirrorRegistry, RegisterValidatesMembers) {
  beegfs::ManagementService mgmt(testCluster(), 0);
  // PlaFRIM: targets 0..3 on host 0, 4..7 on host 1.
  EXPECT_THROW(mgmt.registerMirrorGroup(0, 1), util::ConfigError);   // same host
  EXPECT_THROW(mgmt.registerMirrorGroup(0, 99), util::ConfigError);  // unknown

  const auto id = mgmt.registerMirrorGroup(0, 4);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(mgmt.mirrorGroupCount(), 1u);
  EXPECT_EQ(mgmt.mirrorGroupOf(0), std::optional<std::size_t>{0});
  EXPECT_EQ(mgmt.mirrorGroupOf(4), std::optional<std::size_t>{0});
  EXPECT_FALSE(mgmt.mirrorGroupOf(1).has_value());

  // Each target belongs to at most one group.
  EXPECT_THROW(mgmt.registerMirrorGroup(0, 5), util::ConfigError);
  EXPECT_THROW(mgmt.registerMirrorGroup(5, 4), util::ConfigError);
}

TEST(MirrorRegistry, DefaultPairsSpanHostsAndBalancePrimaries) {
  const auto cluster = testCluster();
  const auto pairs = beegfs::defaultMirrorPairs(cluster);
  ASSERT_EQ(pairs.size(), 4u);

  beegfs::ManagementService mgmt(cluster, 0);
  std::set<std::size_t> members;
  std::size_t primariesOnHost0 = 0;
  for (const auto& [primary, secondary] : pairs) {
    EXPECT_NE(mgmt.target(primary).host, mgmt.target(secondary).host);
    members.insert(primary);
    members.insert(secondary);
    if (mgmt.target(primary).host == 0) ++primariesOnHost0;
  }
  EXPECT_EQ(members.size(), 8u);       // every target is in exactly one group
  EXPECT_EQ(primariesOnHost0, 2u);     // alternating orientation: 2 + 2
}

TEST(MirrorRegistry, FailoverRefusesUnsafePromotions) {
  beegfs::ManagementService mgmt(testCluster(), 0);
  const auto id = mgmt.registerMirrorGroup(0, 4);

  mgmt.failOverMirrorGroup(id);
  EXPECT_EQ(mgmt.mirrorGroup(id).primary, 4u);
  EXPECT_EQ(mgmt.mirrorGroup(id).secondary, 0u);
  EXPECT_EQ(mgmt.mirrorGroup(id).state, MirrorState::kNeedsResync);

  // A stale secondary must never be promoted.
  EXPECT_THROW(mgmt.failOverMirrorGroup(id), util::ContractError);

  // Nor an offline one, even when the copies agree.
  mgmt.setMirrorState(id, MirrorState::kGood);
  mgmt.setTargetOnline(0, false);
  EXPECT_THROW(mgmt.failOverMirrorGroup(id), util::ContractError);
}

TEST(MirrorRegistry, ReviveRequiresBadGroupAndOnlineMember) {
  beegfs::ManagementService mgmt(testCluster(), 0);
  const auto id = mgmt.registerMirrorGroup(0, 4);

  // Only bad groups can be revived.
  EXPECT_THROW(mgmt.reviveMirrorGroup(id, 4), util::ContractError);

  mgmt.setMirrorState(id, MirrorState::kBad);
  EXPECT_THROW(mgmt.reviveMirrorGroup(id, 1), util::ContractError);  // not a member
  mgmt.setTargetOnline(4, false);
  EXPECT_THROW(mgmt.reviveMirrorGroup(id, 4), util::ContractError);  // offline

  mgmt.setTargetOnline(4, true);
  mgmt.reviveMirrorGroup(id, 4);
  EXPECT_EQ(mgmt.mirrorGroup(id).primary, 4u);
  EXPECT_EQ(mgmt.mirrorGroup(id).state, MirrorState::kNeedsResync);
}

TEST(MirrorRegistry, ResyncDebtCannotBeOverSettled) {
  beegfs::ManagementService mgmt(testCluster(), 0);
  const auto id = mgmt.registerMirrorGroup(0, 4);
  mgmt.addResyncDebt(id, 100_MiB);
  EXPECT_THROW(mgmt.settleResyncDebt(id, 101_MiB), util::ContractError);
  mgmt.settleResyncDebt(id, 100_MiB);
  EXPECT_EQ(mgmt.mirrorGroup(id).resyncDebt, 0u);
}

// -- FileSystem: mirrored creation, replication, failover, resync ------------

struct System {
  sim::FluidSimulator fluid;
  topo::ClusterConfig cluster = testCluster();
  beegfs::Deployment deployment;
  beegfs::FileSystem fs;

  explicit System(beegfs::BeegfsParams params = {})
      : deployment(fluid, cluster, params, util::Rng(1)), fs(deployment, util::Rng(2)) {}
};

/// Mirrored deployment with a degraded-mode client (short timeouts).
beegfs::BeegfsParams mirrorParams() {
  beegfs::BeegfsParams params;
  params.mirror.enabled = true;
  params.defaultStripe.mirror = true;
  params.faults.mode = ClientFaultPolicy::Mode::kDegraded;
  params.faults.ioTimeout = 0.2;
  params.faults.backoffBase = 0.05;
  params.faults.maxRetries = 3;
  return params;
}

TEST(MirrorFileSystem, CreateStripesOverGroupPrimaries) {
  auto params = mirrorParams();
  params.defaultStripe.stripeCount = 4;
  System system(params);

  const auto handle = system.fs.create("/data/file");
  const auto& info = system.fs.info(handle);
  EXPECT_TRUE(info.mirrored);
  auto targets = info.pattern.targets();
  std::sort(targets.begin(), targets.end());
  // Default pairing on PlaFRIM: primaries 0 and 2 on host 0, 5 and 7 on
  // host 1 (orientation alternates per group).
  EXPECT_EQ(targets, (std::vector<std::size_t>{0, 2, 5, 7}));
}

TEST(MirrorFileSystem, CreateRequiresRegisteredAndUsableGroups) {
  // Mirrored striping without any registered groups is a config error.
  beegfs::BeegfsParams noGroups;
  noGroups.defaultStripe.mirror = true;
  System ungrouped(noGroups);
  EXPECT_THROW(ungrouped.fs.create("/f"), util::ConfigError);

  // Drive every group to bad (secondary first, then the primary) and the
  // create must refuse: no consistent copy is reachable anywhere.
  System system(mirrorParams());
  auto& mgmt = system.deployment.mgmt();
  for (const std::size_t secondary : {4, 1, 6, 3}) {
    mgmt.setTargetOnline(secondary, false);
  }
  for (const std::size_t primary : {0, 5, 2, 7}) {
    mgmt.setTargetOnline(primary, false);
  }
  for (std::size_t gid = 0; gid < mgmt.mirrorGroupCount(); ++gid) {
    EXPECT_EQ(mgmt.mirrorGroup(gid).state, MirrorState::kBad);
  }
  EXPECT_THROW(system.fs.create("/f"), util::ConfigError);
}

TEST(MirrorFileSystem, HealthyWriteReplicatesEveryChunkBeforeAck) {
  auto params = mirrorParams();
  params.mirror.groups = {{0, 4}};
  System system(params);

  const auto handle = system.fs.createPinned("/m", {0}, 512_KiB);
  EXPECT_TRUE(system.fs.info(handle).mirrored);
  bool done = false;
  system.fs.writeAsync(0, handle, 0, 256_MiB, 8.0, [&](util::Seconds) { done = true; });
  system.fluid.run();

  ASSERT_TRUE(done);
  const auto& stats = system.fs.mirrorStats();
  EXPECT_EQ(stats.replicaFlows, 1u);
  EXPECT_EQ(stats.bytesReplicated, 256_MiB);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.bytesLost, 0u);
  EXPECT_EQ(stats.resyncJobs, 0u);

  const auto& mgmt = system.deployment.mgmt();
  EXPECT_EQ(mgmt.mirrorGroup(0).state, MirrorState::kGood);
  EXPECT_EQ(mgmt.mirrorGroup(0).resyncDebt, 0u);
  // Both copies were charged to capacity accounting.
  EXPECT_EQ(mgmt.target(0).used, 256_MiB);
  EXPECT_EQ(mgmt.target(4).used, 256_MiB);
}

TEST(MirrorFileSystem, PrimaryFailoverLosesNothingAndResyncs) {
  auto params = mirrorParams();
  params.mirror.groups = {{0, 4}};
  System system(params);
  faults::FaultInjector injector(system.deployment,
                                 faults::parseSchedule("off:t0@0.05;on:t0@5"));
  injector.arm();

  const auto handle = system.fs.createPinned("/victim", {0}, 512_KiB);
  bool done = false;
  system.fs.writeAsync(0, handle, 0, 1_GiB, 8.0, [&](util::Seconds) { done = true; });
  system.fluid.run();

  ASSERT_TRUE(done);
  const auto& stats = system.fs.mirrorStats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.bytesLost, 0u);  // the acceptance bar: failover loses nothing
  // The replica leg keeps its progress: only the remainder is re-sent.
  EXPECT_GT(stats.bytesResent, 0u);
  EXPECT_LT(stats.bytesResent, 1_GiB);

  // No rewrite, no stripe degradation, no watchdog involvement.
  EXPECT_EQ(system.fs.faultStats().bytesRewritten, 0u);
  EXPECT_EQ(system.fs.faultStats().failovers, 0u);
  EXPECT_EQ(system.fs.faultStats().timeouts, 0u);
  EXPECT_TRUE(system.fs.degradedSlots(handle).empty());

  // After the old primary returned, the background resync drained the debt.
  const auto& group = system.deployment.mgmt().mirrorGroup(0);
  EXPECT_EQ(group.primary, 4u);
  EXPECT_EQ(group.state, MirrorState::kGood);
  EXPECT_EQ(group.resyncDebt, 0u);
  EXPECT_GE(stats.resyncJobs, 1u);
  EXPECT_EQ(stats.bytesResynced, 1_GiB);  // the failed-over chunk, owed in full
  EXPECT_GT(stats.resyncSeconds, 0.0);
}

TEST(MirrorFileSystem, SecondaryDeathDegradesThenRecoveryResyncs) {
  auto params = mirrorParams();
  params.mirror.groups = {{0, 4}};
  System system(params);
  faults::FaultInjector injector(system.deployment,
                                 faults::parseSchedule("off:t4@0.05;on:t4@5"));
  injector.arm();

  const auto handle = system.fs.createPinned("/m", {0}, 512_KiB);
  bool done = false;
  util::Seconds doneAt = 0.0;
  system.fs.writeAsync(0, handle, 0, 1_GiB, 8.0, [&](util::Seconds t) {
    done = true;
    doneAt = t;
  });
  system.fluid.run();

  ASSERT_TRUE(done);
  // The write finished single-copy against the primary; the cancelled
  // replica is untrusted, so the whole chunk became resync debt.
  const auto& stats = system.fs.mirrorStats();
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.bytesLost, 0u);
  EXPECT_EQ(stats.resyncJobs, 1u);
  EXPECT_EQ(stats.bytesResynced, 1_GiB);

  const auto& group = system.deployment.mgmt().mirrorGroup(0);
  EXPECT_EQ(group.primary, 0u);  // no failover: the primary never blinked
  EXPECT_EQ(group.state, MirrorState::kGood);
  EXPECT_EQ(group.resyncDebt, 0u);
  EXPECT_GT(doneAt, 0.0);
}

TEST(MirrorFileSystem, MirroredReadFailsOverToSurvivingCopy) {
  auto params = mirrorParams();
  params.mirror.groups = {{0, 4}};
  System system(params);
  faults::FaultInjector injector(system.deployment, faults::parseSchedule("off:t0@0.05"));
  injector.arm();

  const auto handle = system.fs.createPinned("/r", {0}, 512_KiB);
  system.fs.truncate(handle, 1_GiB);
  bool done = false;
  system.fs.readAsync(0, handle, 0, 1_GiB, 8.0, [&](util::Seconds) { done = true; });
  system.fluid.run();

  ASSERT_TRUE(done);
  const auto& stats = system.fs.mirrorStats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.replicaFlows, 0u);  // reads replicate nothing
  EXPECT_EQ(stats.bytesResent, 0u);   // re-fetch, not re-send
  EXPECT_EQ(stats.bytesLost, 0u);
  // Reads leave no debt; the group just waits for the old primary.
  const auto& group = system.deployment.mgmt().mirrorGroup(0);
  EXPECT_EQ(group.primary, 4u);
  EXPECT_EQ(group.state, MirrorState::kNeedsResync);
  EXPECT_EQ(group.resyncDebt, 0u);
}

TEST(MirrorFileSystem, DoubleFailureCountsLostBytesAndRecovers) {
  auto params = mirrorParams();
  params.mirror.groups = {{0, 4}};
  System system(params);
  // Secondary dies first (debt accrues), then the primary: the group goes
  // bad and exactly the outstanding debt is lost.  Both members return
  // later and the group heals with nothing left to stream.
  faults::FaultInjector injector(
      system.deployment, faults::parseSchedule("off:t4@0.05;off:t0@0.5;on:t4@5;on:t0@6"));
  injector.arm();

  const auto handle = system.fs.createPinned("/d", {0}, 512_KiB);
  bool done = false;
  system.fs.writeAsync(0, handle, 0, 1_GiB, 8.0, [&](util::Seconds) { done = true; });
  system.fluid.run();

  ASSERT_TRUE(done);
  const auto& stats = system.fs.mirrorStats();
  EXPECT_EQ(stats.failovers, 0u);      // never a safe promotion to make
  EXPECT_EQ(stats.bytesLost, 1_GiB);   // the un-replicated chunk's debt
  EXPECT_EQ(stats.resyncJobs, 0u);     // the debt died with the group
  // The in-flight chunk fell back to the degraded-stripe ladder.
  EXPECT_EQ(system.fs.faultStats().bytesRewritten, 1_GiB);
  EXPECT_FALSE(system.fs.degradedSlots(handle).empty());

  const auto& group = system.deployment.mgmt().mirrorGroup(0);
  EXPECT_EQ(group.state, MirrorState::kGood);
  EXPECT_EQ(group.resyncDebt, 0u);
}

TEST(MirrorFileSystem, ResyncRateCapStretchesTheStream) {
  for (const double rate : {0.0, 50.0}) {
    auto params = mirrorParams();
    params.mirror.groups = {{0, 4}};
    params.mirror.resyncRate = rate;
    System system(params);
    faults::FaultInjector injector(system.deployment,
                                   faults::parseSchedule("off:t4@0.05;on:t4@5"));
    injector.arm();
    const auto handle = system.fs.createPinned("/m", {0}, 512_KiB);
    system.fs.writeAsync(0, handle, 0, 1_GiB, 8.0, [](util::Seconds) {});
    system.fluid.run();
    const auto& stats = system.fs.mirrorStats();
    ASSERT_EQ(stats.bytesResynced, 1_GiB);
    if (rate > 0.0) {
      // 1 GiB at 50 MiB/s: the cap, not the links, sets the pace.
      EXPECT_GE(stats.resyncSeconds, 1024.0 / 50.0 * 0.99);
    } else {
      EXPECT_LT(stats.resyncSeconds, 1024.0 / 50.0);
    }
  }
}

// -- Harness integration and the safety property -----------------------------

harness::RunConfig mirrorRunConfig() {
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 4);
  config.fs.mirror.enabled = true;
  config.fs.defaultStripe.mirror = true;
  config.fs.defaultStripe.stripeCount = 4;
  config.fs.faults.mode = ClientFaultPolicy::Mode::kDegraded;
  config.fs.faults.ioTimeout = 0.5;
  config.fs.faults.backoffBase = 0.25;
  config.fs.faults.maxRetries = 2;
  config.job = ior::IorJob::onFirstNodes(4, 4);
  config.ior.blockSize = ior::blockSizeForTotal(4_GiB, config.job.ranks());
  return config;
}

TEST(MirrorHarness, RunOnceSurfacesMirrorCounters) {
  auto config = mirrorRunConfig();
  config.faults.schedule = faults::parseSchedule("off:h1@2");
  const auto a = harness::runOnce(config, 42);
  const auto b = harness::runOnce(config, 42);
  EXPECT_TRUE(a.mirrorActive);
  EXPECT_GT(a.ior.mirror.bytesReplicated, 0u);
  EXPECT_DOUBLE_EQ(a.ior.bandwidth, b.ior.bandwidth);
  EXPECT_EQ(a.ior.mirror.failovers, b.ior.mirror.failovers);
  EXPECT_EQ(a.ior.mirror.bytesResynced, b.ior.mirror.bytesResynced);
  EXPECT_EQ(a.ior.mirror.bytesLost, b.ior.mirror.bytesLost);
}

TEST(MirrorHarness, UnmirroredRunsCarryNoMirrorCounters) {
  auto config = mirrorRunConfig();
  config.fs.mirror.enabled = false;
  config.fs.defaultStripe.mirror = false;
  const auto record = harness::runOnce(config, 42);
  EXPECT_FALSE(record.mirrorActive);
  EXPECT_EQ(record.ior.mirror.replicaFlows, 0u);
  EXPECT_EQ(record.ior.mirror.bytesReplicated, 0u);
}

TEST(MirrorHarness, CampaignRowsAreIdenticalSerialVsParallel) {
  // Mirrored campaigns meet the same bar as fault campaigns: bitwise
  // row-identical between --jobs 1 and --jobs 8, and the mirror columns
  // only appear when mirroring is on.
  std::vector<harness::CampaignEntry> entries(2);
  entries[0].config = mirrorRunConfig();
  entries[0].factors = {{"sched", "healthy"}};
  entries[1].config = mirrorRunConfig();
  entries[1].config.faults.schedule = faults::parseSchedule("off:h1@2;on:h1@6");
  entries[1].factors = {{"sched", "crash"}};

  harness::ProtocolOptions protocol;
  protocol.repetitions = 3;

  harness::ExecutorOptions serial;
  serial.jobs = 1;
  harness::ExecutorOptions parallel;
  parallel.jobs = 8;
  const auto storeA = harness::executeCampaign(entries, protocol, 2022, nullptr, serial);
  const auto storeB = harness::executeCampaign(entries, protocol, 2022, nullptr, parallel);

  const auto pathA = std::filesystem::temp_directory_path() / "beesim_mirror_serial.csv";
  const auto pathB = std::filesystem::temp_directory_path() / "beesim_mirror_parallel.csv";
  storeA.writeCsv(pathA);
  storeB.writeCsv(pathB);
  const auto slurp = [](const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const auto textA = slurp(pathA);
  EXPECT_FALSE(textA.empty());
  EXPECT_EQ(textA, slurp(pathB));
  EXPECT_NE(textA.find("mirror_failovers"), std::string::npos);
  EXPECT_NE(textA.find("resync_mib"), std::string::npos);
  std::filesystem::remove(pathA);
  std::filesystem::remove(pathB);
}

TEST(MirrorProperty, RandomSchedulesNeverPromoteUnsafeSecondaries) {
  // Safety property behind ISSUE satellite 3: across seeded random fault
  // schedules, a failover (or revive) must never select an offline or
  // inconsistent copy.  The registry asserts exactly that with
  // ContractError, so it suffices to drive many randomized runs to
  // completion -- any unsafe promotion would throw out of runOnce.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto config = mirrorRunConfig();
    faults::StochasticFaultSpec spec;
    spec.targetMttf = 5.0;
    spec.targetMttr = 2.0;
    spec.hostMttf = 20.0;
    spec.hostMttr = 4.0;
    spec.horizon = 15.0;
    config.faults.stochastic = spec;

    harness::RunRecord record;
    ASSERT_NO_THROW(record = harness::runOnce(config, seed)) << "seed " << seed;
    EXPECT_TRUE(record.mirrorActive);
    // Replication happened (the run started healthy), and byte loss is only
    // possible via the double-failure path, never a failover.
    EXPECT_GT(record.ior.mirror.bytesReplicated, 0u) << "seed " << seed;
    const auto again = harness::runOnce(config, seed);
    EXPECT_DOUBLE_EQ(record.ior.bandwidth, again.ior.bandwidth) << "seed " << seed;
    EXPECT_EQ(record.ior.mirror.failovers, again.ior.mirror.failovers);
    EXPECT_EQ(record.ior.mirror.bytesLost, again.ior.mirror.bytesLost);
  }
}

}  // namespace
}  // namespace beesim
