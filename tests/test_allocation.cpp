#include "core/allocation.hpp"

#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"

namespace beesim::core {
namespace {

topo::ClusterConfig plafrim() { return topo::makePlafrim(topo::Scenario::kEthernet10G, 2); }

TEST(Allocation, ClassifiesTargetsByHost) {
  const auto cluster = plafrim();
  const Allocation alloc({0, 4, 5, 6}, cluster);  // 101 + 201,202,203
  EXPECT_EQ(alloc.perHost(), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(alloc.minPerHost(), 1u);
  EXPECT_EQ(alloc.maxPerHost(), 3u);
  EXPECT_EQ(alloc.key(), "(1,3)");
  EXPECT_EQ(alloc.totalTargets(), 4u);
}

TEST(Allocation, KeyIsSortedSoHostOrderDoesNotMatter) {
  const auto cluster = plafrim();
  const Allocation a({0, 1, 2, 4}, cluster);  // (3,1)
  const Allocation b({0, 4, 5, 6}, cluster);  // (1,3)
  EXPECT_EQ(a.key(), "(1,3)");
  EXPECT_EQ(a.key(), b.key());
  EXPECT_FALSE(a == b);  // but they are different placements
}

TEST(Allocation, BalanceMetrics) {
  const auto cluster = plafrim();
  const Allocation balanced({0, 1, 4, 5}, cluster);  // (2,2)
  EXPECT_DOUBLE_EQ(balanced.balanceRatio(), 1.0);
  EXPECT_TRUE(balanced.isBalanced());
  EXPECT_DOUBLE_EQ(balanced.hotHostFraction(), 0.5);

  const Allocation skewed({4, 5, 6}, cluster);  // (0,3)
  EXPECT_DOUBLE_EQ(skewed.balanceRatio(), 0.0);
  EXPECT_FALSE(skewed.isBalanced());
  EXPECT_DOUBLE_EQ(skewed.hotHostFraction(), 1.0);

  const Allocation thirteen({0, 4, 5, 6}, cluster);  // (1,3)
  EXPECT_DOUBLE_EQ(thirteen.hotHostFraction(), 0.75);
  EXPECT_NEAR(thirteen.balanceRatio(), 1.0 / 3.0, 1e-12);
}

TEST(Allocation, DirectPerHostConstruction) {
  const Allocation alloc(std::vector<std::size_t>{2, 2});
  EXPECT_TRUE(alloc.isBalanced());
  EXPECT_EQ(alloc.key(), "(2,2)");
}

TEST(Allocation, GeneralizesBeyondTwoHosts) {
  const Allocation alloc(std::vector<std::size_t>{3, 0, 2});
  EXPECT_EQ(alloc.key(), "(0,2,3)");
  EXPECT_DOUBLE_EQ(alloc.balanceRatio(), 0.0);
  EXPECT_NEAR(alloc.hotHostFraction(), 0.6, 1e-12);
}

TEST(Allocation, InvalidConstructionThrows) {
  const auto cluster = plafrim();
  EXPECT_THROW(Allocation({}, cluster), util::ContractError);
  EXPECT_THROW(Allocation(std::vector<std::size_t>{}), util::ContractError);
  EXPECT_THROW(Allocation(std::vector<std::size_t>{0, 0}), util::ContractError);
  EXPECT_THROW(Allocation({99}, cluster), util::ContractError);
}

TEST(Analyzer, GroupsByKeyAndOrdersByMean) {
  const auto cluster = plafrim();
  AllocationAnalyzer analyzer;
  // (0,2) cloud around 1100, (1,1) cloud around 2200 (Fig. 8's extremes).
  for (int i = 0; i < 10; ++i) {
    analyzer.add(Allocation({4, 5}, cluster), 1100.0 + i);
    analyzer.add(Allocation({0, 4}, cluster), 2200.0 + i);
  }
  const auto groups = analyzer.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.front().key, "(0,2)");
  EXPECT_EQ(groups.back().key, "(1,1)");
  EXPECT_EQ(groups.front().bandwidths.size(), 10u);
  EXPECT_NEAR(groups.back().summary.mean, 2204.5, 0.01);
  EXPECT_DOUBLE_EQ(groups.back().balanceRatio, 1.0);
}

TEST(Analyzer, BalanceCorrelationIsPositiveWhenBalanceHelps) {
  const auto cluster = plafrim();
  AllocationAnalyzer analyzer;
  analyzer.add(Allocation({4, 5}, cluster), 1100.0);      // ratio 0
  analyzer.add(Allocation({0, 4, 5, 6}, cluster), 1460.0);  // ratio 1/3
  analyzer.add(Allocation({0, 4}, cluster), 2200.0);      // ratio 1
  analyzer.add(Allocation({4, 6}, cluster), 1090.0);
  analyzer.add(Allocation({1, 5}, cluster), 2210.0);
  EXPECT_GT(analyzer.balanceBandwidthCorrelation(), 0.9);
}

TEST(Analyzer, CorrelationNeedsTwoPoints) {
  AllocationAnalyzer analyzer;
  analyzer.add(Allocation(std::vector<std::size_t>{1, 1}), 100.0);
  EXPECT_THROW(analyzer.balanceBandwidthCorrelation(), util::ContractError);
}

}  // namespace
}  // namespace beesim::core
