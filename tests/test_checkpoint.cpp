#include "apps/checkpoint.hpp"

#include <gtest/gtest.h>

#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace beesim::apps {
namespace {

using namespace beesim::util::literals;

struct System {
  sim::FluidSimulator fluid;
  topo::ClusterConfig cluster;
  beegfs::Deployment deployment;
  beegfs::FileSystem fs;

  explicit System(std::size_t nodes, bool noiseless = true)
      : cluster(build(nodes, noiseless)),
        deployment(fluid, cluster, beegfs::BeegfsParams{}, util::Rng(21)),
        fs(deployment, util::Rng(22)) {}

  static topo::ClusterConfig build(std::size_t nodes, bool noiseless) {
    auto cfg = topo::makePlafrim(topo::Scenario::kOmniPath100G, nodes);
    if (noiseless) {
      cfg.network.serverLinkNoiseSigmaLog = 0.0;
      for (auto& host : cfg.hosts) {
        for (auto& target : host.targets) target.variability = topo::VariabilitySpec{};
      }
    }
    return cfg;
  }
};

CheckpointSpec smallSpec(std::size_t nodes) {
  CheckpointSpec spec;
  spec.job = ior::IorJob::onFirstNodes(nodes, 8);
  spec.checkpointBytes = 4_GiB;
  spec.computePhase = 10.0;
  spec.iterations = 3;
  spec.pinnedTargets = {0, 1, 2, 3, 4, 5, 6, 7};
  return spec;
}

TEST(Checkpoint, RunsAllIterations) {
  System system(8);
  const auto result = runCheckpointApp(system.fs, smallSpec(8));
  ASSERT_EQ(result.checkpointDurations.size(), 3u);
  for (const auto d : result.checkpointDurations) EXPECT_GT(d, 0.0);
  // Makespan covers 3 compute phases + 3 checkpoint writes.
  EXPECT_GT(result.makespan, 3 * 10.0);
  EXPECT_NEAR(result.makespan, 3 * 10.0 + result.totalIoTime, 1e-6);
  EXPECT_GT(result.meanCheckpointBandwidth, 0.0);
  EXPECT_GT(result.ioFraction, 0.0);
  EXPECT_LT(result.ioFraction, 1.0);
  // One file per checkpoint.
  EXPECT_EQ(system.fs.fileCount(), 3u);
}

TEST(Checkpoint, CheckpointBandwidthTracksIorLevel) {
  // A checkpoint burst is just an N-1 write: its bandwidth must match the
  // same-size IOR run on the same system (within ramp-up noise).
  System ckptSys(16);
  const auto ckpt = [&] {
    auto spec = smallSpec(16);
    spec.checkpointBytes = 16_GiB;
    spec.iterations = 2;
    return runCheckpointApp(ckptSys.fs, spec);
  }();

  System iorSys(16);
  ior::IorOptions options;
  options.blockSize = ior::blockSizeForTotal(16_GiB, 128);
  const auto ior = ior::runIor(iorSys.fs, ior::IorJob::onFirstNodes(16, 8), options,
                          std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_NEAR(ckpt.meanCheckpointBandwidth, ior.bandwidth, 0.10 * ior.bandwidth);
}

TEST(Checkpoint, ChooserPicksTargetsPerCheckpoint) {
  System system(4);
  auto spec = smallSpec(4);
  spec.pinnedTargets.clear();  // let the round-robin chooser work
  const auto result = runCheckpointApp(system.fs, spec);
  EXPECT_EQ(result.checkpointDurations.size(), 3u);
  EXPECT_EQ(system.fs.fileCount(), 3u);
  // Default stripe count 4 -> each checkpoint file striped over 4 targets.
  EXPECT_EQ(system.fs.info(beegfs::FileHandle{0}).pattern.stripeCount(), 4u);
}

TEST(Checkpoint, TwoSynchronizedAppsSlowEachOthersBursts) {
  // Both apps checkpoint at the same instants: bursts collide, each write
  // takes ~2x as long as alone; with a half-period offset they dodge each
  // other entirely (the I/O-scheduling insight the authors' other work
  // formalizes).
  auto burstsWithOffset = [](util::Seconds offset) {
    System system(16);
    auto specA = smallSpec(8);
    auto specB = smallSpec(8);
    specB.job.nodeIds.clear();
    for (std::size_t n = 8; n < 16; ++n) specB.job.nodeIds.push_back(n);
    specB.filePrefix = "/beegfs/ckptB";
    CheckpointResult a;
    CheckpointResult b;
    bool doneA = false;
    bool doneB = false;
    launchCheckpointApp(system.fs, specA, 0.0, [&](const CheckpointResult& r) {
      a = r;
      doneA = true;
    });
    launchCheckpointApp(system.fs, specB, offset, [&](const CheckpointResult& r) {
      b = r;
      doneB = true;
    });
    system.fluid.run();
    EXPECT_TRUE(doneA && doneB);
    double sum = 0.0;
    for (const auto d : a.checkpointDurations) sum += d;
    return sum / static_cast<double>(a.checkpointDurations.size());
  };
  const double synchronized = burstsWithOffset(0.0);
  const double staggered = burstsWithOffset(6.0);  // bursts take ~2-3 s
  EXPECT_GT(synchronized, 1.5 * staggered);
}

TEST(Checkpoint, InvalidSpecsThrow) {
  System system(2);
  auto spec = smallSpec(2);
  spec.iterations = 0;
  EXPECT_THROW(runCheckpointApp(system.fs, spec), util::ContractError);
  spec = smallSpec(2);
  spec.checkpointBytes = 0;
  EXPECT_THROW(runCheckpointApp(system.fs, spec), util::ContractError);
  spec = smallSpec(2);
  spec.job.nodeIds = {0, 99};
  EXPECT_THROW(runCheckpointApp(system.fs, spec), util::ConfigError);
}

}  // namespace
}  // namespace beesim::apps
