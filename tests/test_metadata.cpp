// Metadata-path suite (DESIGN.md §2.10): MetaService accounting and edge
// cases, directory->MDT sharding, the queued MDS/MDT service model, the
// mdtest driver, metaTime consistency across run/concurrent/campaign, rng
// isolation of the queued model, and the --jobs invariance contract.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "beegfs/mdshard.hpp"
#include "beegfs/meta.hpp"
#include "faults/schedule.hpp"
#include "harness/campaign.hpp"
#include "harness/concurrent.hpp"
#include "harness/executor.hpp"
#include "harness/protocol.hpp"
#include "harness/run.hpp"
#include "ior/mdtest.hpp"
#include "ior/options.hpp"
#include "sim/fluid.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim {
namespace {

using namespace beesim::util::literals;

// -- MetaService scalar model: accounting + edge cases -----------------------

TEST(MetaAccounting, OpenAllCountsOneOpPerRank) {
  beegfs::MetaService meta(beegfs::MetaParams{}, util::Rng(1));
  meta.createCost();
  EXPECT_EQ(meta.opsServed(), 1u);
  // The historical bug: openAllCost(n) serves n concurrent opens but bumped
  // the counter exactly once.
  meta.openAllCost(8);
  EXPECT_EQ(meta.opsServed(), 9u);
  meta.statCost();
  meta.unlinkCost();
  EXPECT_EQ(meta.opsServed(), 11u);
}

TEST(MetaAccounting, ZeroLatenciesCostNothingButStillCount) {
  beegfs::MetaParams params;
  params.createLatency = 0.0;
  params.openLatency = 0.0;
  params.statLatency = 0.0;
  params.unlinkLatency = 0.0;
  beegfs::MetaService meta(params, util::Rng(2));
  EXPECT_DOUBLE_EQ(meta.createCost(), 0.0);
  EXPECT_DOUBLE_EQ(meta.openAllCost(64), 0.0);
  EXPECT_DOUBLE_EQ(meta.statCost(), 0.0);
  EXPECT_DOUBLE_EQ(meta.unlinkCost(), 0.0);
  EXPECT_EQ(meta.opsServed(), 67u);
}

TEST(MetaAccounting, ZeroSigmaIsDeterministic) {
  beegfs::MetaParams params;
  params.jitterSigmaLog = 0.0;
  beegfs::MetaService a(params, util::Rng(3));
  beegfs::MetaService b(params, util::Rng(4));  // different seed, same costs
  EXPECT_DOUBLE_EQ(a.createCost(), params.createLatency);
  EXPECT_DOUBLE_EQ(a.createCost(), b.createCost());
  EXPECT_DOUBLE_EQ(a.statCost(), params.statLatency);
  EXPECT_DOUBLE_EQ(a.unlinkCost(), params.unlinkLatency);
}

TEST(MetaAccounting, OpenAllCostIsMonotoneInRankCount) {
  beegfs::MetaParams params;
  params.jitterSigmaLog = 0.0;  // isolate the pile-up curve from jitter
  beegfs::MetaService meta(params, util::Rng(5));
  double previous = 0.0;
  for (const std::size_t ranks : {1u, 2u, 8u, 64u, 512u}) {
    const double cost = meta.openAllCost(ranks);
    EXPECT_GT(cost, previous) << "ranks=" << ranks;
    previous = cost;
  }
}

TEST(MetaAccounting, UnlinkCostIsJitteredAroundItsLatency) {
  beegfs::MetaParams params;
  params.unlinkLatency = 0.002;
  beegfs::MetaService meta(params, util::Rng(6));
  for (int i = 0; i < 64; ++i) {
    const double cost = meta.unlinkCost();
    EXPECT_GT(cost, 0.0);
    EXPECT_LT(cost, 0.1);  // log-normal jitter around 2 ms stays far below
  }
}

// -- Directory -> MDT sharding -----------------------------------------------

TEST(MdShard, ParentDirExtraction) {
  EXPECT_EQ(beegfs::mdParentDir("/beegfs/dir/file"), "/beegfs/dir");
  EXPECT_EQ(beegfs::mdParentDir("/file"), "/");
  EXPECT_EQ(beegfs::mdParentDir("file"), "file");
}

TEST(MdShard, HashShardingIsDeterministicWithDirectoryAffinity) {
  beegfs::MdShardChooser a(beegfs::MdShardKind::kHashDir, 4);
  beegfs::MdShardChooser b(beegfs::MdShardKind::kHashDir, 4);
  // Same path -> same shard, across instances and calls (stateless).
  EXPECT_EQ(a.shardOf("/beegfs/d0/f1"), b.shardOf("/beegfs/d0/f1"));
  EXPECT_EQ(a.shardOf("/beegfs/d0/f1"), a.shardOf("/beegfs/d0/f1"));
  // All entries of one directory live on one MDT (the BeeGFS contract).
  EXPECT_EQ(a.shardOf("/beegfs/d0/f1"), a.shardOf("/beegfs/d0/f2"));
}

TEST(MdShard, HashShardingSpreadsDistinctDirectories) {
  beegfs::MdShardChooser chooser(beegfs::MdShardKind::kHashDir, 4);
  std::set<std::size_t> shards;
  for (int r = 0; r < 64; ++r) {
    const auto shard = chooser.shardOf("/beegfs/mdtest/rank" + std::to_string(r) + "/f0");
    ASSERT_LT(shard, 4u);
    shards.insert(shard);
  }
  // 64 FNV-hashed directories over 4 shards must reach more than one MDT.
  EXPECT_GE(shards.size(), 2u);
}

TEST(MdShard, RoundRobinCyclesAndSingleMdtIsAlwaysZero) {
  beegfs::MdShardChooser rr(beegfs::MdShardKind::kRoundRobin, 3);
  EXPECT_EQ(rr.shardOf("/a"), 0u);
  EXPECT_EQ(rr.shardOf("/b"), 1u);
  EXPECT_EQ(rr.shardOf("/c"), 2u);
  EXPECT_EQ(rr.shardOf("/d"), 0u);
  beegfs::MdShardChooser one(beegfs::MdShardKind::kHashDir, 1);
  EXPECT_EQ(one.shardOf("/anything/at/all"), 0u);
}

// -- Queued MDT service model ------------------------------------------------

beegfs::BeegfsParams queuedParams(unsigned mdts, double sigma = 0.0) {
  beegfs::BeegfsParams params;
  params.meta.queued = true;
  params.meta.mdtCount = mdts;
  params.meta.jitterSigmaLog = sigma;
  return params;
}

TEST(MetaQueued, LoneOpLatencyIsSaturationDepthOverRate) {
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  const auto params = queuedParams(1);
  beegfs::Deployment deployment(fluid, cluster, params, util::Rng(7));
  auto& meta = deployment.meta();
  ASSERT_TRUE(meta.queuedModel());
  util::Seconds createEnd = -1.0;
  meta.opAsync(beegfs::MetaOpKind::kCreate, "/beegfs/f",
               [&](util::Seconds at) { createEnd = at; });
  fluid.run();
  // A lone op sees rampFactor(1) = 1/saturationDepth of the saturation
  // capacity, so its latency is saturationDepth/rate (6.4 ms with defaults,
  // deliberately in the ballpark of the scalar model's 4 ms create).
  const double expected = params.meta.saturationDepth / params.meta.createRate;
  EXPECT_NEAR(createEnd, expected, 1e-4 * expected);
}

TEST(MetaQueued, SaturatedMdtServesTheConfiguredRate) {
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  const auto params = queuedParams(1);
  beegfs::Deployment deployment(fluid, cluster, params, util::Rng(8));
  auto& meta = deployment.meta();
  const int ops = 256;
  int completed = 0;
  util::Seconds lastEnd = 0.0;
  for (int i = 0; i < ops; ++i) {
    meta.opAsync(beegfs::MetaOpKind::kStat, "/beegfs/dir/f", [&](util::Seconds at) {
      ++completed;
      lastEnd = at;
    });
  }
  fluid.run();
  ASSERT_EQ(completed, ops);
  // 256 identical concurrent ops share the MDT at rampFactor(256) of the
  // saturation rate and all finish together.
  const double ramp = 256.0 / (256.0 + params.meta.saturationDepth - 1.0);
  const double expected = ops / (params.meta.statRate * ramp);
  EXPECT_NEAR(lastEnd, expected, 0.01 * expected);
  EXPECT_EQ(meta.opsServed(), static_cast<std::uint64_t>(ops));
  EXPECT_EQ(meta.mdtOps().at(0), static_cast<std::uint64_t>(ops));
}

TEST(MetaQueued, OpsLandOnTheirDirectoryShard) {
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  beegfs::Deployment deployment(fluid, cluster, queuedParams(4), util::Rng(9));
  auto& meta = deployment.meta();
  const auto s1 = meta.opAsync(beegfs::MetaOpKind::kCreate, "/beegfs/d7/a", nullptr);
  const auto s2 = meta.opAsync(beegfs::MetaOpKind::kUnlink, "/beegfs/d7/b", nullptr);
  EXPECT_EQ(s1, s2);  // same parent directory -> same MDT
  EXPECT_EQ(s1, meta.shardOf("/beegfs/d7/c"));
  fluid.run();
  std::uint64_t total = 0;
  for (const auto n : meta.mdtOps()) total += n;
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(meta.mdtOps().at(s1), 2u);
}

TEST(MetaQueued, InvalidQueuedParametersThrow) {
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  auto params = queuedParams(1);
  params.meta.createRate = 0.0;
  EXPECT_THROW(beegfs::Deployment(fluid, cluster, params, util::Rng(1)),
               util::ContractError);
  params = queuedParams(1);
  params.meta.saturationDepth = 0.5;
  EXPECT_THROW(beegfs::Deployment(fluid, cluster, params, util::Rng(1)),
               util::ContractError);
}

// -- mdtest driver -----------------------------------------------------------

ior::IorJob smallJob() { return ior::IorJob{{0, 1}, 4}; }  // 8 ranks

TEST(Mdtest, PhasesRunInOrderWithBarriers) {
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  util::Rng rng(11);
  beegfs::Deployment deployment(fluid, cluster, queuedParams(2, 0.25), rng.split());
  beegfs::FileSystem fs(deployment, rng.split());
  ior::MdtestOptions options;
  options.filesPerRank = 16;
  const auto result = ior::runMdtest(fs, smallJob(), options);

  const std::uint64_t perPhase = 8u * 16u;
  EXPECT_EQ(result.create.ops, perPhase);
  EXPECT_EQ(result.stat.ops, perPhase);
  EXPECT_EQ(result.unlink.ops, perPhase);
  EXPECT_EQ(result.totalOps, 3 * perPhase);
  // Barriers: stat only starts once the last create finished, unlink once
  // the last stat finished.
  EXPECT_GT(result.create.end, result.create.start);
  EXPECT_GE(result.stat.start, result.create.end);
  EXPECT_GE(result.unlink.start, result.stat.end);
  EXPECT_EQ(result.end, result.unlink.end);
  EXPECT_GT(result.opsPerSec, 0.0);
  // Stat is the cheapest op, so its phase throughput leads.
  EXPECT_GT(result.stat.opsPerSec, result.create.opsPerSec);
  // Per-MDT accounting covers every op.
  std::uint64_t mdtTotal = 0;
  for (const auto n : result.mdtOps) mdtTotal += n;
  EXPECT_EQ(mdtTotal, result.totalOps);
}

TEST(Mdtest, SharedDirectoryFunnelsOntoOneMdt) {
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  const auto run = [&](bool uniqueDirs) {
    sim::FluidSimulator fluid;
    util::Rng rng(12);
    beegfs::Deployment deployment(fluid, cluster, queuedParams(4), rng.split());
    beegfs::FileSystem fs(deployment, rng.split());
    ior::MdtestOptions options;
    options.filesPerRank = 8;
    options.uniqueDirPerRank = uniqueDirs;
    return ior::runMdtest(fs, smallJob(), options);
  };
  const auto shared = run(false);
  const auto unique = run(true);
  // One shared directory puts every op on one of the 4 MDTs: max/mean = 4.
  EXPECT_DOUBLE_EQ(shared.mdtImbalance, 4.0);
  // Per-rank directories hash across MDTs, and the parallelism shows up as
  // metadata throughput.
  EXPECT_LT(unique.mdtImbalance, shared.mdtImbalance);
  EXPECT_GT(unique.opsPerSec, shared.opsPerSec);
}

TEST(Mdtest, RequiresTheQueuedModel) {
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  util::Rng rng(13);
  beegfs::Deployment deployment(fluid, cluster, beegfs::BeegfsParams{}, rng.split());
  beegfs::FileSystem fs(deployment, rng.split());
  EXPECT_THROW(ior::runMdtest(fs, smallJob(), ior::MdtestOptions{}), util::ConfigError);
}

TEST(Mdtest, OptionValidationRejectsDegenerateRuns) {
  ior::MdtestOptions options;
  options.filesPerRank = 0;
  EXPECT_THROW(options.validate(), util::ConfigError);
  options = {};
  options.inflightPerRank = 0;
  EXPECT_THROW(options.validate(), util::ConfigError);
  options = {};
  options.createPhase = options.statPhase = options.unlinkPhase = false;
  EXPECT_THROW(options.validate(), util::ConfigError);
  options = {};
  options.dir.clear();
  EXPECT_THROW(options.validate(), util::ConfigError);
}

// -- Harness integration -----------------------------------------------------

harness::RunConfig metadataRun(util::Bytes total = 64_MiB) {
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  config.fs.defaultStripe.stripeCount = 4;
  config.job = ior::IorJob::onFirstNodes(4, 8);
  config.ior.blockSize = ior::blockSizeForTotal(total, config.job.ranks());
  return config;
}

TEST(MetadataRun, QueuedModelKeepsPlacementAndNoiseStreams) {
  // Satellite 2's contract: flipping the queued model on consumes nothing
  // from the placement or device-noise rng streams -- same seed, same
  // environment draws, same target allocation.
  auto scalar = metadataRun();
  auto queued = metadataRun();
  queued.fs.meta.queued = true;
  queued.fs.meta.mdtCount = 2;
  const auto a = harness::runOnce(scalar, 42);
  const auto b = harness::runOnce(queued, 42);
  EXPECT_EQ(a.environment.network, b.environment.network);
  EXPECT_EQ(a.environment.storage, b.environment.storage);
  ASSERT_EQ(a.ior.targetsUsed.size(), b.ior.targetsUsed.size());
  EXPECT_EQ(a.ior.targetsUsed, b.ior.targetsUsed);
  // Both models charge a metadata window before I/O starts.
  EXPECT_GT(a.ior.metaTime, 0.0);
  EXPECT_GT(b.ior.metaTime, 0.0);
}

TEST(MetadataRun, MdtestPhaseRequiresQueuedModel) {
  auto config = metadataRun();
  config.mdtest = ior::MdtestOptions{};
  EXPECT_THROW(harness::runOnce(config, 1), util::ConfigError);
  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  base.mdtest = ior::MdtestOptions{};
  std::vector<harness::AppSpec> specs(1);
  specs[0].job = smallJob();
  specs[0].ior.blockSize = ior::blockSizeForTotal(32_MiB, specs[0].job.ranks());
  EXPECT_THROW(harness::runConcurrent(base, specs, 1), util::ConfigError);
}

TEST(MetadataRun, MdPhaseFollowsTheBandwidthPhase) {
  auto config = metadataRun();
  config.fs.meta.queued = true;
  config.fs.meta.mdtCount = 2;
  ior::MdtestOptions md;
  md.filesPerRank = 8;
  config.mdtest = md;
  const auto record = harness::runOnce(config, 7);
  ASSERT_TRUE(record.mdActive);
  EXPECT_GE(record.md.start, record.ior.end);
  EXPECT_EQ(record.md.totalOps, 3u * 32u * 8u);  // 32 ranks, 3 phases
  EXPECT_GT(record.md.opsPerSec, 0.0);
  // Without the phase the record stays inert.
  config.mdtest.reset();
  EXPECT_FALSE(harness::runOnce(config, 7).mdActive);
}

TEST(MetadataRun, MetaTimeAgreesBetweenRunAndConcurrent) {
  // Satellite 3: a single-app concurrent experiment must charge the same
  // create+open window (and reach the same bandwidth) as runOnce.
  auto config = metadataRun();
  std::vector<harness::AppSpec> specs(1);
  specs[0].job = config.job;
  specs[0].ior = config.ior;
  const auto once = harness::runOnce(config, 99);
  const auto conc = harness::runConcurrent(config, specs, 99);
  ASSERT_EQ(conc.apps.size(), 1u);
  EXPECT_DOUBLE_EQ(conc.apps[0].metaTime, once.ior.metaTime);
  EXPECT_DOUBLE_EQ(conc.apps[0].bandwidth, once.ior.bandwidth);
  // Same agreement under the queued model, where the window is simulated
  // rather than drawn.
  config.fs.meta.queued = true;
  config.fs.meta.mdtCount = 2;
  const auto onceQ = harness::runOnce(config, 99);
  const auto concQ = harness::runConcurrent(config, specs, 99);
  ASSERT_EQ(concQ.apps.size(), 1u);
  EXPECT_DOUBLE_EQ(concQ.apps[0].metaTime, onceQ.ior.metaTime);
  EXPECT_DOUBLE_EQ(concQ.apps[0].bandwidth, onceQ.ior.bandwidth);
  EXPECT_GT(onceQ.ior.metaTime, 0.0);
}

TEST(MetadataRun, CampaignMetaSecondsMatchesTheRecordUnderFaults) {
  // Satellite 3, campaign side: the meta_seconds column is exactly
  // IorResult::metaTime even when a fault plan perturbs the run.
  harness::CampaignEntry entry;
  entry.config = metadataRun();
  entry.config.faults.schedule = faults::parseSchedule("slow:t1@0.05=0.5");
  harness::ProtocolOptions protocol;
  protocol.repetitions = 3;
  harness::ExecutorOptions serial;
  serial.jobs = 1;
  std::size_t checked = 0;
  harness::executeCampaign(
      {entry}, protocol, 11,
      [&](const harness::RunRecord& record, harness::ResultRow& row) {
        EXPECT_DOUBLE_EQ(row.metrics.at("meta_seconds"), record.ior.metaTime);
        EXPECT_GT(record.ior.metaTime, 0.0);
        ++checked;
      },
      serial);
  EXPECT_EQ(checked, 3u);
}

TEST(MetadataConcurrent, PerAppPhasesAggregate) {
  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 4);
  base.fs.defaultStripe.stripeCount = 4;
  base.fs.meta.queued = true;
  base.fs.meta.mdtCount = 4;
  ior::MdtestOptions md;
  md.filesPerRank = 8;
  base.mdtest = md;
  std::vector<harness::AppSpec> specs(2);
  specs[0].job = ior::IorJob{{0, 1}, 4};
  specs[1].job = ior::IorJob{{2, 3}, 4};
  for (auto& spec : specs) {
    spec.ior.blockSize = ior::blockSizeForTotal(32_MiB, spec.job.ranks());
  }
  specs[1].startOffset = 0.25;
  const auto result = harness::runConcurrent(base, specs, 21);
  ASSERT_TRUE(result.mdActive);
  ASSERT_EQ(result.appMd.size(), 2u);
  const std::uint64_t perApp = 3u * 8u * 8u;
  EXPECT_EQ(result.appMd[0].totalOps, perApp);
  EXPECT_EQ(result.appMd[1].totalOps, perApp);
  EXPECT_EQ(result.md.totalOps, 2 * perApp);
  // The aggregate window spans both apps' phases.
  EXPECT_LE(result.md.start, result.appMd[0].start);
  EXPECT_GE(result.md.end, result.appMd[1].end);
  std::uint64_t mdtTotal = 0;
  for (const auto n : result.md.mdtOps) mdtTotal += n;
  EXPECT_EQ(mdtTotal, result.md.totalOps);
}

// -- Campaign column gating + --jobs invariance ------------------------------

TEST(MetadataCampaign, MdColumnsAreGatedOnTheMdtestPhase) {
  harness::CampaignEntry entry;
  entry.config = metadataRun();
  entry.config.fs.meta.queued = true;
  harness::ProtocolOptions protocol;
  protocol.repetitions = 2;
  harness::ExecutorOptions serial;
  serial.jobs = 1;
  // Queued model alone: no md_* columns (the phase gates them, not the
  // model).
  const auto off = harness::executeCampaign({entry}, protocol, 5, nullptr, serial);
  EXPECT_THROW(off.metric("md_seconds", {}), util::ContractError);
  ior::MdtestOptions md;
  md.filesPerRank = 8;
  entry.config.mdtest = md;
  const auto on = harness::executeCampaign({entry}, protocol, 5, nullptr, serial);
  for (const std::string metric : {"md_seconds", "md_total_ops", "md_ops_s",
                                   "md_create_ops_s", "md_stat_ops_s",
                                   "md_unlink_ops_s", "md_mdt_imbalance"}) {
    EXPECT_EQ(on.metric(metric, {}).size(), 2u) << metric;
  }
  for (const auto ops : on.metric("md_total_ops", {})) {
    EXPECT_DOUBLE_EQ(ops, 3.0 * 32.0 * 8.0);
  }
}

TEST(MetadataCampaign, InertParamsKeepLegacyBytes) {
  // Satellite 2's campaign-level regression: metadata knobs without the
  // queued master switch must reproduce the exact same rows as a config
  // that never heard of them.
  harness::CampaignEntry vanilla;
  vanilla.config = metadataRun();
  harness::CampaignEntry knobs;
  knobs.config = metadataRun();
  knobs.config.fs.meta.mdtCount = 4;
  knobs.config.fs.meta.createRate = 50.0;
  knobs.config.fs.meta.shard = beegfs::MdShardKind::kRoundRobin;
  harness::ProtocolOptions protocol;
  protocol.repetitions = 3;
  harness::ExecutorOptions serial;
  serial.jobs = 1;
  const auto a = harness::executeCampaign({vanilla}, protocol, 7, nullptr, serial);
  const auto b = harness::executeCampaign({knobs}, protocol, 7, nullptr, serial);
  EXPECT_EQ(a.metric("bandwidth_mibps", {}), b.metric("bandwidth_mibps", {}));
  EXPECT_EQ(a.metric("meta_seconds", {}), b.metric("meta_seconds", {}));
  EXPECT_THROW(b.metric("md_seconds", {}), util::ContractError);
}

TEST(MetadataCampaign, ResultsAreJobsInvariant) {
  // The PR 1 ordered-commit contract extended to the metadata path: a
  // campaign with the queued model and an mdtest phase is bitwise identical
  // for any worker count.  CI runs this under --gtest_filter as its
  // invariance step.
  harness::CampaignEntry entry;
  entry.config = metadataRun();
  entry.config.fs.meta.queued = true;
  entry.config.fs.meta.mdtCount = 2;
  ior::MdtestOptions md;
  md.filesPerRank = 8;
  entry.config.mdtest = md;
  harness::ProtocolOptions protocol;
  protocol.repetitions = 4;
  harness::ExecutorOptions serial;
  serial.jobs = 1;
  harness::ExecutorOptions parallel;
  parallel.jobs = 8;
  const auto a = harness::executeCampaign({entry}, protocol, 1234, nullptr, serial);
  const auto b = harness::executeCampaign({entry}, protocol, 1234, nullptr, parallel);
  for (const std::string metric :
       {"bandwidth_mibps", "meta_seconds", "md_seconds", "md_total_ops", "md_ops_s",
        "md_create_ops_s", "md_stat_ops_s", "md_unlink_ops_s", "md_mdt_imbalance"}) {
    EXPECT_EQ(a.metric(metric, {}), b.metric(metric, {})) << metric;
  }
}

}  // namespace
}  // namespace beesim
