#include "topology/cluster.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace beesim::topo {
namespace {

UniformClusterSpec smallSpec() {
  UniformClusterSpec spec;
  spec.name = "test";
  spec.computeNodes = 3;
  spec.storageHosts = 2;
  spec.targetsPerHost = 4;
  return spec;
}

TEST(Cluster, UniformBuilderCounts) {
  const auto cfg = buildUniformCluster(smallSpec());
  EXPECT_EQ(cfg.nodes.size(), 3u);
  EXPECT_EQ(cfg.hosts.size(), 2u);
  EXPECT_EQ(cfg.targetCount(), 8u);
  EXPECT_EQ(cfg.hosts[0].targets.size(), 4u);
}

TEST(Cluster, FlatIndexRoundTrips) {
  const auto cfg = buildUniformCluster(smallSpec());
  std::size_t flat = 0;
  for (std::size_t h = 0; h < cfg.hosts.size(); ++h) {
    for (std::size_t t = 0; t < cfg.hosts[h].targets.size(); ++t) {
      EXPECT_EQ(cfg.flatTargetIndex(h, t), flat);
      const auto [host, target] = cfg.targetLocation(flat);
      EXPECT_EQ(host, h);
      EXPECT_EQ(target, t);
      ++flat;
    }
  }
}

TEST(Cluster, BeegfsNumberingMatchesPaper) {
  // PlaFRIM-style 2x4: flat 0..3 -> 101..104, flat 4..7 -> 201..204.
  const auto cfg = buildUniformCluster(smallSpec());
  EXPECT_EQ(cfg.beegfsTargetNum(0), 101);
  EXPECT_EQ(cfg.beegfsTargetNum(3), 104);
  EXPECT_EQ(cfg.beegfsTargetNum(4), 201);
  EXPECT_EQ(cfg.beegfsTargetNum(7), 204);
}

TEST(Cluster, OutOfRangeIndicesThrow) {
  const auto cfg = buildUniformCluster(smallSpec());
  EXPECT_THROW(cfg.flatTargetIndex(2, 0), util::ContractError);
  EXPECT_THROW(cfg.flatTargetIndex(0, 4), util::ContractError);
  EXPECT_THROW(cfg.targetLocation(8), util::ContractError);
}

TEST(Cluster, ValidateAcceptsGoodConfig) {
  const auto cfg = buildUniformCluster(smallSpec());
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Cluster, ValidateRejectsEmptyNodes) {
  auto cfg = buildUniformCluster(smallSpec());
  cfg.nodes.clear();
  EXPECT_THROW(cfg.validate(), util::ConfigError);
}

TEST(Cluster, ValidateRejectsBadBandwidths) {
  auto cfg = buildUniformCluster(smallSpec());
  cfg.nodes[0].nicBandwidth = 0.0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);

  cfg = buildUniformCluster(smallSpec());
  cfg.nodes[0].clientThroughputCap = -1.0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);

  cfg = buildUniformCluster(smallSpec());
  cfg.hosts[0].nicBandwidth = 0.0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);

  cfg = buildUniformCluster(smallSpec());
  cfg.hosts[0].serviceCap = -5.0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);

  cfg = buildUniformCluster(smallSpec());
  cfg.network.backboneBandwidth = -1.0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
}

TEST(Cluster, ValidateRejectsHostWithoutTargets) {
  auto cfg = buildUniformCluster(smallSpec());
  cfg.hosts[1].targets.clear();
  EXPECT_THROW(cfg.validate(), util::ConfigError);
}

TEST(Cluster, BuilderRejectsZeroCounts) {
  auto spec = smallSpec();
  spec.computeNodes = 0;
  EXPECT_THROW(buildUniformCluster(spec), util::ConfigError);
  spec = smallSpec();
  spec.storageHosts = 0;
  EXPECT_THROW(buildUniformCluster(spec), util::ConfigError);
  spec = smallSpec();
  spec.targetsPerHost = 0;
  EXPECT_THROW(buildUniformCluster(spec), util::ConfigError);
}

TEST(Cluster, UnevenHostsSupported) {
  auto cfg = buildUniformCluster(smallSpec());
  cfg.hosts[0].targets.pop_back();  // 3 + 4 targets
  cfg.validate();
  EXPECT_EQ(cfg.targetCount(), 7u);
  EXPECT_EQ(cfg.flatTargetIndex(1, 0), 3u);
  const auto [host, target] = cfg.targetLocation(6);
  EXPECT_EQ(host, 1u);
  EXPECT_EQ(target, 3u);
}

}  // namespace
}  // namespace beesim::topo
