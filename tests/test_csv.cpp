#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/error.hpp"

namespace beesim::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::filesystem::path tmpFile() {
    auto path = std::filesystem::temp_directory_path() /
                ("beesim_csv_test_" + std::to_string(counter_++) + ".csv");
    cleanup_.push_back(path);
    return path;
  }
  void TearDown() override {
    for (const auto& p : cleanup_) std::filesystem::remove(p);
  }
  int counter_ = 0;
  std::vector<std::filesystem::path> cleanup_;
};

TEST_F(CsvTest, WriteThenReadRoundTrips) {
  const auto path = tmpFile();
  {
    CsvWriter writer(path, {"a", "b", "c"});
    writer.writeRow({"1", "2", "3"});
    writer.writeRow({"x", "y", "z"});
    EXPECT_EQ(writer.rowCount(), 2u);
  }
  const auto data = readCsv(path);
  ASSERT_EQ(data.header.size(), 3u);
  EXPECT_EQ(data.header[0], "a");
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[1][2], "z");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  const auto path = tmpFile();
  {
    CsvWriter writer(path, {"text"});
    writer.writeRow({"has,comma"});
    writer.writeRow({"has\"quote"});
  }
  const auto data = readCsv(path);
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[0][0], "has,comma");
  EXPECT_EQ(data.rows[1][0], "has\"quote");
}

TEST_F(CsvTest, RowWidthMismatchThrows) {
  const auto path = tmpFile();
  CsvWriter writer(path, {"a", "b"});
  EXPECT_THROW(writer.writeRow({"only-one"}), ContractError);
}

TEST_F(CsvTest, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter(tmpFile(), {}), ContractError);
}

TEST_F(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(readCsv("/nonexistent/beesim.csv"), IoError);
}

TEST(CsvParse, HandlesQuotedFields) {
  const auto data = parseCsv("a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][0], "1,5");
  EXPECT_EQ(data.rows[0][1], "say \"hi\"");
}

TEST(CsvParse, SkipsBlankLinesAndCarriageReturns) {
  const auto data = parseCsv("a,b\r\n\r\n1,2\r\n");
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][1], "2");
}

TEST(CsvParse, ColumnLookup) {
  const auto data = parseCsv("nodes,bandwidth\n8,1460\n");
  EXPECT_EQ(data.column("bandwidth"), 1u);
  EXPECT_THROW(data.column("missing"), IoError);
}

TEST(CsvEscape, OnlyQuotesWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

TEST(CsvParse, QuotedEmbeddedNewlineIsOneRecord) {
  // RFC 4180: a newline inside a quoted field is field data, not a record
  // boundary.  A line-based parser would tear this into two records.
  const auto data = parseCsv("a,b\n\"line1\nline2\",x\n");
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][0], "line1\nline2");
  EXPECT_EQ(data.rows[0][1], "x");
}

TEST(CsvParse, QuotedCrLfPreserved) {
  const auto data = parseCsv("a\r\n\"x\r\ny\"\r\n");
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][0], "x\r\ny");
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(parseCsv("a\n\"unclosed\n"), IoError);
}

TEST_F(CsvTest, WriterReaderRoundTripsEveryEscapeClass) {
  // Writer -> reader round trip across all characters escape() handles,
  // including the embedded-newline case the record-splitting bug lost.
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "with,comma", "with\"quote"},
      {"multi\nline", "cr\r\nlf", "trailing\n"},
      {"", "\"\"", ",\n\","},
  };
  const auto path = tmpFile();
  {
    CsvWriter writer(path, {"c0", "c1", "c2"});
    for (const auto& row : rows) writer.writeRow(row);
  }
  const auto data = readCsv(path);
  ASSERT_EQ(data.rows.size(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      EXPECT_EQ(data.rows[r][c], rows[r][c]) << "row " << r << " col " << c;
    }
  }
}

}  // namespace
}  // namespace beesim::util
