#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/error.hpp"

namespace beesim::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::filesystem::path tmpFile() {
    auto path = std::filesystem::temp_directory_path() /
                ("beesim_csv_test_" + std::to_string(counter_++) + ".csv");
    cleanup_.push_back(path);
    return path;
  }
  void TearDown() override {
    for (const auto& p : cleanup_) std::filesystem::remove(p);
  }
  int counter_ = 0;
  std::vector<std::filesystem::path> cleanup_;
};

TEST_F(CsvTest, WriteThenReadRoundTrips) {
  const auto path = tmpFile();
  {
    CsvWriter writer(path, {"a", "b", "c"});
    writer.writeRow({"1", "2", "3"});
    writer.writeRow({"x", "y", "z"});
    EXPECT_EQ(writer.rowCount(), 2u);
  }
  const auto data = readCsv(path);
  ASSERT_EQ(data.header.size(), 3u);
  EXPECT_EQ(data.header[0], "a");
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[1][2], "z");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  const auto path = tmpFile();
  {
    CsvWriter writer(path, {"text"});
    writer.writeRow({"has,comma"});
    writer.writeRow({"has\"quote"});
  }
  const auto data = readCsv(path);
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[0][0], "has,comma");
  EXPECT_EQ(data.rows[1][0], "has\"quote");
}

TEST_F(CsvTest, RowWidthMismatchThrows) {
  const auto path = tmpFile();
  CsvWriter writer(path, {"a", "b"});
  EXPECT_THROW(writer.writeRow({"only-one"}), ContractError);
}

TEST_F(CsvTest, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter(tmpFile(), {}), ContractError);
}

TEST_F(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(readCsv("/nonexistent/beesim.csv"), IoError);
}

TEST(CsvParse, HandlesQuotedFields) {
  const auto data = parseCsv("a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][0], "1,5");
  EXPECT_EQ(data.rows[0][1], "say \"hi\"");
}

TEST(CsvParse, SkipsBlankLinesAndCarriageReturns) {
  const auto data = parseCsv("a,b\r\n\r\n1,2\r\n");
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][1], "2");
}

TEST(CsvParse, ColumnLookup) {
  const auto data = parseCsv("nodes,bandwidth\n8,1460\n");
  EXPECT_EQ(data.column("bandwidth"), 1u);
  EXPECT_THROW(data.column("missing"), IoError);
}

TEST(CsvEscape, OnlyQuotesWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

}  // namespace
}  // namespace beesim::util
