#include "sim/maxmin.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::sim {
namespace {

SolverFlow flow(std::vector<std::uint32_t> resources, double cap = 0.0) {
  SolverFlow f;
  f.resources = std::move(resources);
  f.rateCap = cap;
  return f;
}

TEST(MaxMin, SingleFlowGetsFullCapacity) {
  const std::vector<SolverResource> res{{100.0}};
  const std::vector<SolverFlow> flows{flow({0})};
  const auto result = solveMaxMin(res, flows);
  ASSERT_EQ(result.rates.size(), 1u);
  EXPECT_NEAR(result.rates[0], 100.0, 1e-9);
}

TEST(MaxMin, EqualFlowsShareEqually) {
  const std::vector<SolverResource> res{{90.0}};
  const std::vector<SolverFlow> flows{flow({0}), flow({0}), flow({0})};
  const auto result = solveMaxMin(res, flows);
  for (const auto rate : result.rates) EXPECT_NEAR(rate, 30.0, 1e-9);
}

TEST(MaxMin, BottleneckedFlowReleasesCapacityToOthers) {
  // Flow 0 crosses a narrow private link; flows 1-2 share the wide link with
  // it.  Classic max-min: flow 0 gets 10, the rest split the remainder.
  const std::vector<SolverResource> res{{10.0}, {100.0}};
  const std::vector<SolverFlow> flows{flow({0, 1}), flow({1}), flow({1})};
  const auto result = solveMaxMin(res, flows);
  EXPECT_NEAR(result.rates[0], 10.0, 1e-9);
  EXPECT_NEAR(result.rates[1], 45.0, 1e-9);
  EXPECT_NEAR(result.rates[2], 45.0, 1e-9);
}

TEST(MaxMin, WeightsScaleTheFairShare) {
  // Weighted max-min: a weight-3 flow gets 3x the rate of a weight-1 flow
  // on a shared bottleneck.
  const std::vector<SolverResource> res{{80.0}};
  std::vector<SolverFlow> flows{flow({0}), flow({0})};
  flows[0].weight = 3.0;
  flows[1].weight = 1.0;
  const auto result = solveMaxMin(res, flows);
  EXPECT_NEAR(result.rates[0], 60.0, 1e-9);
  EXPECT_NEAR(result.rates[1], 20.0, 1e-9);
}

TEST(MaxMin, WeightedBottleneckReleasesCapacity) {
  // The heavy flow is capped on its private link; the remainder is split by
  // weight among the others.
  const std::vector<SolverResource> res{{10.0}, {100.0}};
  std::vector<SolverFlow> flows{flow({0, 1}), flow({1}), flow({1})};
  flows[0].weight = 10.0;
  flows[1].weight = 2.0;
  flows[2].weight = 1.0;
  const auto result = solveMaxMin(res, flows);
  EXPECT_NEAR(result.rates[0], 10.0, 1e-9);
  EXPECT_NEAR(result.rates[1], 60.0, 1e-9);
  EXPECT_NEAR(result.rates[2], 30.0, 1e-9);
}

TEST(MaxMin, NonPositiveWeightThrows) {
  const std::vector<SolverResource> res{{10.0}};
  std::vector<SolverFlow> flows{flow({0})};
  flows[0].weight = 0.0;
  EXPECT_THROW(solveMaxMin(res, flows), util::ContractError);
}

TEST(MaxMin, RateCapFreezesFlow) {
  const std::vector<SolverResource> res{{100.0}};
  const std::vector<SolverFlow> flows{flow({0}, 20.0), flow({0})};
  const auto result = solveMaxMin(res, flows);
  EXPECT_NEAR(result.rates[0], 20.0, 1e-9);
  EXPECT_NEAR(result.rates[1], 80.0, 1e-9);
}

TEST(MaxMin, ZeroCapacityResourceKillsItsFlows) {
  const std::vector<SolverResource> res{{0.0}, {100.0}};
  const std::vector<SolverFlow> flows{flow({0, 1}), flow({1})};
  const auto result = solveMaxMin(res, flows);
  EXPECT_DOUBLE_EQ(result.rates[0], 0.0);
  EXPECT_NEAR(result.rates[1], 100.0, 1e-9);
}

TEST(MaxMin, EmptyFlowSetIsFine) {
  const std::vector<SolverResource> res{{10.0}};
  const auto result = solveMaxMin(res, std::vector<SolverFlow>{});
  EXPECT_TRUE(result.rates.empty());
}

TEST(MaxMin, FlowWithoutResourcesThrows) {
  const std::vector<SolverResource> res{{10.0}};
  const std::vector<SolverFlow> flows{flow({})};
  EXPECT_THROW(solveMaxMin(res, flows), util::ContractError);
}

TEST(MaxMin, UnknownResourceIndexThrows) {
  const std::vector<SolverResource> res{{10.0}};
  const std::vector<SolverFlow> flows{flow({3})};
  EXPECT_THROW(solveMaxMin(res, flows), util::ContractError);
}

TEST(MaxMin, ScenarioOneShape) {
  // The paper's Scenario-1 core effect: two server links of capacity B; an
  // allocation (1,3) pushes 3/4 of the flows through one link.  8 clients x
  // 4 targets = 32 flows; target 0 on server A, targets 1-3 on server B.
  constexpr double kLinkB = 1100.0;
  const std::vector<SolverResource> res{{kLinkB}, {kLinkB}};
  std::vector<SolverFlow> flows;
  for (int client = 0; client < 8; ++client) {
    for (int target = 0; target < 4; ++target) {
      flows.push_back(flow({target == 0 ? 0u : 1u}));
    }
  }
  const auto result = solveMaxMin(res, flows);
  // Aggregate rate: the hot link saturates at B; the cold link carries its
  // 8 single-target flows at their fair share of B.
  double total = 0.0;
  for (const auto r : result.rates) total += r;
  EXPECT_NEAR(total, 2.0 * kLinkB, 1e-6);
  // But the *balanced* data split means the effective bandwidth of an equal-
  // bytes-per-target write is dictated by the hot link: each hot flow gets
  // B/24, each cold flow B/8, i.e. the cold targets finish 3x earlier.
  EXPECT_NEAR(result.rates[0], kLinkB / 8.0, 1e-6);   // cold
  EXPECT_NEAR(result.rates[1], kLinkB / 24.0, 1e-6);  // hot
}

/// Property suite on random instances: the solution must be feasible and
/// max-min optimal (every flow is blocked by a saturated resource where it
/// has the maximal rate, or by its own cap).
class MaxMinPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinPropertyTest, FeasibleAndMaxMinOptimal) {
  util::Rng rng(1000 + GetParam());
  const auto nRes = static_cast<std::size_t>(rng.uniformInt(1, 8));
  const auto nFlows = static_cast<std::size_t>(rng.uniformInt(1, 40));

  std::vector<SolverResource> res(nRes);
  for (auto& r : res) r.capacity = rng.uniform(10.0, 1000.0);

  std::vector<SolverFlow> flows(nFlows);
  for (auto& f : flows) {
    const auto pathLen = static_cast<std::size_t>(
        rng.uniformInt(1, static_cast<std::int64_t>(nRes)));
    for (const auto r : rng.sampleWithoutReplacement(nRes, pathLen)) {
      f.resources.push_back(static_cast<std::uint32_t>(r));
    }
    if (rng.bernoulli(0.3)) f.rateCap = rng.uniform(1.0, 300.0);
    f.weight = rng.uniform(0.5, 4.0);
  }

  const auto result = solveMaxMin(res, flows);
  constexpr double kTol = 1e-6;

  // Feasibility: no resource over capacity, no cap exceeded.
  std::vector<double> used(nRes, 0.0);
  for (std::size_t f = 0; f < nFlows; ++f) {
    EXPECT_GE(result.rates[f], -kTol);
    if (flows[f].rateCap > 0.0) {
      EXPECT_LE(result.rates[f], flows[f].rateCap + kTol);
    }
    for (const auto r : flows[f].resources) used[r] += result.rates[f];
  }
  for (std::size_t r = 0; r < nRes; ++r) EXPECT_LE(used[r], res[r].capacity + kTol);

  // Max-min optimality: every flow is limited by its cap or by a saturated
  // resource on which no co-located flow has a strictly larger *normalized*
  // rate (rate divided by weight).
  for (std::size_t f = 0; f < nFlows; ++f) {
    if (flows[f].rateCap > 0.0 && result.rates[f] >= flows[f].rateCap - kTol) continue;
    bool blocked = false;
    const double normF = result.rates[f] / flows[f].weight;
    for (const auto r : flows[f].resources) {
      if (used[r] >= res[r].capacity - kTol * std::max(1.0, res[r].capacity)) {
        bool isMaxOnResource = true;
        for (std::size_t g = 0; g < nFlows; ++g) {
          if (g == f) continue;
          const auto& gres = flows[g].resources;
          if (std::find(gres.begin(), gres.end(), r) != gres.end() &&
              result.rates[g] / flows[g].weight > normF + kTol) {
            // A bigger flow on the same saturated resource is fine only if
            // that flow is itself frozen elsewhere -- but then r is not
            // flow f's max-min bottleneck.  Keep searching.
            isMaxOnResource = false;
            break;
          }
        }
        if (isMaxOnResource) {
          blocked = true;
          break;
        }
      }
    }
    EXPECT_TRUE(blocked) << "flow " << f << " is not max-min blocked";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MaxMinPropertyTest, ::testing::Range(0, 25));

// --- SoA fast path vs reference walk -----------------------------------

/// A random CSR problem plus the flat arrays SolverWorkspace consumes.
struct CsrProblem {
  std::vector<double> capacity;
  std::vector<std::uint32_t> adjacency;
  std::vector<std::uint32_t> adjOffset;
  std::vector<std::uint32_t> adjLen;
  std::vector<double> weight;
  std::vector<double> rateCap;
  std::vector<std::uint32_t> subset;

  SolverView view() const {
    return SolverView{capacity, adjacency, adjOffset, adjLen, weight, rateCap};
  }
};

CsrProblem randomCsrProblem(std::uint64_t seed) {
  util::Rng rng(seed);
  CsrProblem p;
  const auto nRes = static_cast<std::size_t>(rng.uniformInt(1, 10));
  const auto nFlows = static_cast<std::size_t>(rng.uniformInt(1, 48));
  for (std::size_t r = 0; r < nRes; ++r) {
    // ~15% dead resources so the degenerate path is exercised routinely.
    p.capacity.push_back(rng.bernoulli(0.15) ? 0.0 : rng.uniform(10.0, 1000.0));
  }
  for (std::size_t f = 0; f < nFlows; ++f) {
    p.adjOffset.push_back(static_cast<std::uint32_t>(p.adjacency.size()));
    const auto pathLen = static_cast<std::size_t>(
        rng.uniformInt(1, static_cast<std::int64_t>(nRes)));
    p.adjLen.push_back(static_cast<std::uint32_t>(pathLen));
    for (const auto r : rng.sampleWithoutReplacement(nRes, pathLen)) {
      p.adjacency.push_back(static_cast<std::uint32_t>(r));
    }
    p.weight.push_back(rng.uniform(0.5, 4.0));
    p.rateCap.push_back(rng.bernoulli(0.3) ? rng.uniform(1.0, 300.0) : 0.0);
    p.subset.push_back(static_cast<std::uint32_t>(f));
  }
  return p;
}

TEST(SolverSoA, MatchesReferenceBitwiseOnRandomProblems) {
  // The SoA compaction performs the same floating-point operations in the
  // same order as the reference walk (weights accumulate in flow-then-
  // adjacency order, min over delta candidates is order-independent, frozen
  // flows add delta * 0.0), so the two paths must agree bit for bit -- not
  // within a tolerance.  This equality is what lets ε = 0 runs keep their
  // golden CSV bytes across the layout change.
  for (std::uint64_t seed = 500; seed < 540; ++seed) {
    const auto p = randomCsrProblem(seed);
    SolverWorkspace fast;
    SolverWorkspace reference;
    std::vector<double> fastRates(p.subset.size(), -1.0);
    std::vector<double> referenceRates(p.subset.size(), -1.0);
    const auto fastIters = fast.solveSubset(p.view(), p.subset, fastRates);
    const auto refIters =
        reference.solveSubsetReference(p.view(), p.subset, referenceRates);
    EXPECT_EQ(fastIters, refIters) << "seed " << seed;
    for (std::size_t f = 0; f < fastRates.size(); ++f) {
      EXPECT_EQ(fastRates[f], referenceRates[f])
          << "seed " << seed << " flow " << f << " diverged";
    }
  }
}

TEST(SolverSoA, WorkspaceReuseDoesNotLeakStateAcrossSolves) {
  // One workspace solving many unrelated problems back to back must give the
  // same answers as fresh workspaces (the stamp discipline, not clearing,
  // isolates solves).
  SolverWorkspace reused;
  for (std::uint64_t seed = 700; seed < 715; ++seed) {
    const auto p = randomCsrProblem(seed);
    std::vector<double> reusedRates(p.subset.size(), 0.0);
    std::vector<double> freshRates(p.subset.size(), 0.0);
    reused.solveSubset(p.view(), p.subset, reusedRates);
    SolverWorkspace fresh;
    fresh.solveSubset(p.view(), p.subset, freshRates);
    EXPECT_EQ(reusedRates, freshRates) << "seed " << seed;
  }
}

TEST(SolverSoA, ZeroCapacityFlowsAreDeadAndReleaseTheirShare) {
  // Degenerate-input semantics (documented on solveSubset): a flow crossing
  // a zero-capacity resource gets rate 0 and contributes no weight anywhere,
  // so survivors split the healthy capacity as if the dead flow were absent.
  const std::vector<double> capacity{120.0, 0.0};
  const std::vector<std::uint32_t> adjacency{0, 0, 1, 0};
  const std::vector<std::uint32_t> adjOffset{0, 1, 3};
  const std::vector<std::uint32_t> adjLen{1, 2, 1};
  const std::vector<double> weight{1.0, 5.0, 2.0};
  const std::vector<double> rateCap{0.0, 0.0, 0.0};
  const SolverView view{capacity, adjacency, adjOffset, adjLen, weight, rateCap};
  const std::vector<std::uint32_t> subset{0, 1, 2};
  std::vector<double> rates(3, -1.0);
  SolverWorkspace workspace;
  workspace.solveSubset(view, subset, rates);
  EXPECT_DOUBLE_EQ(rates[1], 0.0) << "dead flow (crosses the 0-capacity link)";
  EXPECT_NEAR(rates[0], 40.0, 1e-9) << "1:2 weighted split of 120";
  EXPECT_NEAR(rates[2], 80.0, 1e-9);
}

TEST(SolverSoA, EmptySubsetSolvesNothing) {
  const std::vector<double> capacity{100.0};
  const std::vector<std::uint32_t> adjacency{0};
  const std::vector<std::uint32_t> adjOffset{0};
  const std::vector<std::uint32_t> adjLen{1};
  const std::vector<double> weight{1.0};
  const std::vector<double> rateCap{0.0};
  const SolverView view{capacity, adjacency, adjOffset, adjLen, weight, rateCap};
  SolverWorkspace workspace;
  std::vector<double> rates{-1.0};
  EXPECT_EQ(workspace.solveSubset(view, {}, rates), 0u);
  EXPECT_DOUBLE_EQ(rates[0], -1.0) << "rates outside the subset are untouched";
}

TEST(SolverSoA, AllDeadSubsetTerminatesWithZeroRates) {
  const std::vector<double> capacity{0.0};
  const std::vector<std::uint32_t> adjacency{0, 0};
  const std::vector<std::uint32_t> adjOffset{0, 1};
  const std::vector<std::uint32_t> adjLen{1, 1};
  const std::vector<double> weight{1.0, 2.0};
  const std::vector<double> rateCap{0.0, 50.0};
  const SolverView view{capacity, adjacency, adjOffset, adjLen, weight, rateCap};
  const std::vector<std::uint32_t> subset{0, 1};
  std::vector<double> rates(2, -1.0);
  SolverWorkspace workspace;
  EXPECT_EQ(workspace.solveSubset(view, subset, rates), 0u);
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
}

TEST(SolverSoA, InvalidFlowsAreRejected) {
  const std::vector<double> capacity{100.0};
  const std::vector<std::uint32_t> adjacency{0, 7};
  const std::vector<std::uint32_t> adjOffset{0, 1};
  const std::vector<std::uint32_t> adjLen{0, 1};  // slot 0: empty path
  const std::vector<double> weight{1.0, 1.0};
  const std::vector<double> rateCap{0.0, 0.0};
  const SolverView view{capacity, adjacency, adjOffset, adjLen, weight, rateCap};
  SolverWorkspace workspace;
  std::vector<double> rates(2, 0.0);
  const std::vector<std::uint32_t> emptyPath{0};
  EXPECT_THROW(workspace.solveSubset(view, emptyPath, rates), util::ContractError);
  const std::vector<std::uint32_t> unknownRes{1};  // adjacency says resource 7
  EXPECT_THROW(workspace.solveSubset(view, unknownRes, rates), util::ContractError);
}

}  // namespace
}  // namespace beesim::sim
