// Integration tests: the paper's headline effects must emerge end-to-end
// from the composed system (topology -> deployment -> IOR -> harness ->
// analysis), not just from the individual parts.
#include <gtest/gtest.h>

#include <map>

#include "core/allocation.hpp"
#include "core/analyzer.hpp"
#include "core/sharing.hpp"
#include "harness/concurrent.hpp"
#include "harness/interference.hpp"
#include "harness/run.hpp"
#include "stats/bimodal.hpp"
#include "stats/summary.hpp"
#include "topology/catalyst.hpp"
#include "topology/plafrim.hpp"
#include "util/units.hpp"

namespace beesim {
namespace {

using namespace beesim::util::literals;

harness::RunConfig plafrimConfig(topo::Scenario scenario, std::size_t nodes, int ppn,
                                 unsigned count, util::Bytes total = 8_GiB) {
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(scenario, nodes);
  config.fs.defaultStripe.stripeCount = count;
  config.job = ior::IorJob::onFirstNodes(nodes, ppn);
  config.ior.blockSize = ior::blockSizeForTotal(total, config.job.ranks());
  return config;
}

std::vector<double> repeatRuns(const harness::RunConfig& config, int reps,
                               std::uint64_t seedBase) {
  std::vector<double> bandwidths;
  for (int r = 0; r < reps; ++r) {
    bandwidths.push_back(harness::runOnce(config, seedBase + r).ior.bandwidth);
  }
  return bandwidths;
}

TEST(Integration, Scenario1BalanceOrderingEmerges) {
  // Pin the three characteristic allocations and verify the Fig. 8 ordering
  // with environment noise on.
  auto config = plafrimConfig(topo::Scenario::kEthernet10G, 8, 8, 2);
  std::map<std::string, std::vector<std::size_t>> allocations{
      {"(0,2)", {4, 5}}, {"(1,3)", {0, 4, 5, 6}}, {"(1,1)", {0, 4}}};
  std::map<std::string, double> means;
  for (const auto& [key, targets] : allocations) {
    config.pinnedTargets = targets;
    means[key] = stats::summarize(repeatRuns(config, 15, 1000)).mean;
  }
  EXPECT_LT(means["(0,2)"], means["(1,3)"]);
  EXPECT_LT(means["(1,3)"], means["(1,1)"]);
  // Roughly 1100 / 1460 / 2200: balanced is ~2x the single-server case.
  EXPECT_NEAR(means["(1,1)"] / means["(0,2)"], 2.0, 0.25);
}

TEST(Integration, Scenario1RoundRobinCount4IsNotBimodalButCount6Is) {
  // RR makes count 4 always (1,3) (one mode); count 6 alternates between
  // (2,4) and (3,3) (two modes) -- the Fig. 6a signature.
  auto config4 = plafrimConfig(topo::Scenario::kEthernet10G, 8, 8, 4);
  config4.fs.rrCreateRaceProbability = 0.0;
  const auto bw4 = repeatRuns(config4, 40, 2000);
  const auto split4 = stats::twoMeansSplit(bw4);
  EXPECT_FALSE(stats::isBimodal(split4, bw4.size()));

  auto config6 = plafrimConfig(topo::Scenario::kEthernet10G, 8, 8, 6);
  config6.fs.rrCreateRaceProbability = 0.0;
  const auto bw6 = repeatRuns(config6, 40, 3000);
  const auto split6 = stats::twoMeansSplit(bw6);
  EXPECT_TRUE(stats::isBimodal(split6, bw6.size()));
}

TEST(Integration, Scenario2BandwidthGrowsWithStripeCount) {
  std::vector<double> means;
  for (const unsigned count : {1u, 2u, 4u, 8u}) {
    const auto config = plafrimConfig(topo::Scenario::kOmniPath100G, 32, 8, count, 16_GiB);
    means.push_back(stats::summarize(repeatRuns(config, 10, 4000 + count)).mean);
  }
  for (std::size_t i = 1; i < means.size(); ++i) EXPECT_GT(means[i], means[i - 1]);
  // Lesson #6 scale: count 8 is several times count 1.
  EXPECT_GT(means.back() / means.front(), 3.0);
}

TEST(Integration, Scenario2VarianceGrowsWithStripeCount) {
  const auto config1 = plafrimConfig(topo::Scenario::kOmniPath100G, 32, 8, 1, 16_GiB);
  const auto config8 = plafrimConfig(topo::Scenario::kOmniPath100G, 32, 8, 8, 16_GiB);
  const auto s1 = stats::summarize(repeatRuns(config1, 25, 5000));
  const auto s8 = stats::summarize(repeatRuns(config8, 25, 6000));
  EXPECT_GT(s8.sd, 2.0 * s1.sd);  // paper: +460%
}

TEST(Integration, ChowdhurySingleNodeHidesStripeCountEffect) {
  // On the Catalyst-like system with ONE compute node (their methodology),
  // stripe counts 1-8 all look the same; with 8 nodes the effect appears.
  auto means = [&](std::size_t nodes) {
    std::map<unsigned, double> byCount;
    for (const unsigned count : {1u, 4u, 8u}) {
      harness::RunConfig config;
      config.cluster = topo::makeCatalystLike(nodes);
      config.fs.defaultStripe.stripeCount = count;
      config.fs.chooser = beegfs::ChooserKind::kBalanced;
      config.job = ior::IorJob::onFirstNodes(nodes, 8);
      config.ior.blockSize = ior::blockSizeForTotal(8_GiB, config.job.ranks());
      byCount[count] = stats::summarize(repeatRuns(config, 8, 7000 + count)).mean;
    }
    return byCount;
  };
  const auto oneNode = means(1);
  const auto eightNodes = means(8);
  // Single node: < 10% spread between count 1 and count 8.
  EXPECT_NEAR(oneNode.at(8) / oneNode.at(1), 1.0, 0.10);
  // Eight nodes: count 8 clearly wins.
  EXPECT_GT(eightNodes.at(8) / eightNodes.at(1), 1.5);
}

TEST(Integration, SharingTargetsIsHarmlessOnScenario2) {
  // Fig. 13 end-to-end: two 8-node apps with 4 OSTs each, all-shared vs
  // disjoint, Welch p must not reject equality of means.
  auto base = plafrimConfig(topo::Scenario::kOmniPath100G, 16, 8, 4, 8_GiB);
  core::SharingImpactAnalyzer analyzer;
  for (int rep = 0; rep < 30; ++rep) {
    for (const bool shared : {true, false}) {
      std::vector<harness::AppSpec> apps(2);
      for (int a = 0; a < 2; ++a) {
        apps[a].job.ppn = 8;
        for (std::size_t n = 0; n < 8; ++n) apps[a].job.nodeIds.push_back(a * 8 + n);
        apps[a].ior.blockSize = ior::blockSizeForTotal(8_GiB, apps[a].job.ranks());
      }
      // (1,3)-shaped allocations, as PlaFRIM's RR would produce.
      apps[0].pinnedTargets = std::vector<std::size_t>{0, 4, 5, 6};
      apps[1].pinnedTargets = shared ? std::vector<std::size_t>{0, 4, 5, 6}
                                     : std::vector<std::size_t>{7, 1, 2, 3};
      const auto result = harness::runConcurrent(base, apps, 8000 + rep * 2 + shared);
      for (const auto& app : result.apps) {
        if (shared) {
          analyzer.addShared(app.bandwidth);
        } else {
          analyzer.addDisjoint(app.bandwidth);
        }
      }
    }
  }
  const auto verdict = analyzer.analyze();
  EXPECT_TRUE(verdict.sharingHarmless) << verdict.summary;
}

TEST(Integration, ConcurrentAggregateMatchesBigSingleApplication) {
  // Fig. 12's comparison: 2 apps x 8 nodes x 8 OSTs aggregate ~= 1 app x 16
  // nodes x 8 OSTs.
  const auto base = plafrimConfig(topo::Scenario::kOmniPath100G, 16, 8, 8, 8_GiB);
  std::vector<harness::AppSpec> apps(2);
  for (int a = 0; a < 2; ++a) {
    apps[a].job.ppn = 8;
    for (std::size_t n = 0; n < 8; ++n) apps[a].job.nodeIds.push_back(a * 8 + n);
    apps[a].ior.blockSize = ior::blockSizeForTotal(8_GiB, apps[a].job.ranks());
  }
  std::vector<double> aggregates;
  std::vector<double> singles;
  for (int rep = 0; rep < 10; ++rep) {
    aggregates.push_back(harness::runConcurrent(base, apps, 9000 + rep).aggregateBandwidth);
    auto single = plafrimConfig(topo::Scenario::kOmniPath100G, 16, 8, 8, 16_GiB);
    singles.push_back(harness::runOnce(single, 9500 + rep).ior.bandwidth);
  }
  const double meanAggregate = stats::summarize(aggregates).mean;
  const double meanSingle = stats::summarize(singles).mean;
  EXPECT_NEAR(meanAggregate / meanSingle, 1.0, 0.15);
}

TEST(Integration, InterferenceSlowsTheForegroundRun) {
  // The injector exists so the protocol can be stress-tested.  Scenario 1
  // with the foreground already saturating the two server links (balanced
  // (1,1) from 8 nodes): background bursts on the same targets must take a
  // weighted share of the links and slow the foreground.  (A *shallow*
  // foreground can even speed up under interference -- the competing queue
  // depth pushes the OST arrays up their service ramp; see
  // storage/device.hpp.)
  auto runWith = [&](bool interfered) {
    sim::FluidSimulator fluid;
    auto cluster = topo::makePlafrim(topo::Scenario::kEthernet10G, 9);
    cluster.network.serverLinkNoiseSigmaLog = 0.0;
    for (auto& host : cluster.hosts) {
      for (auto& target : host.targets) target.variability = topo::VariabilitySpec{};
    }
    beegfs::Deployment deployment(fluid, cluster, beegfs::BeegfsParams{}, util::Rng(10));
    beegfs::FileSystem fs(deployment, util::Rng(11));
    std::shared_ptr<harness::InterferenceStats> stats;
    if (interfered) {
      harness::InterferenceSpec spec;
      spec.node = 8;  // not used by the foreground job
      spec.targets = {0, 4};
      spec.meanBurstBytes = 8_GiB;  // sustained pressure on both links
      spec.meanIdle = 0.2;
      spec.end = 600.0;
      spec.queueWeight = 8.0;
      stats = harness::injectInterference(fs, spec, util::Rng(12));
    }
    ior::IorOptions options;
    options.blockSize = ior::blockSizeForTotal(16_GiB, 64);
    const auto result = ior::runIor(fs, ior::IorJob::onFirstNodes(8, 8), options,
                                    std::vector<std::size_t>{0, 4});
    return result.bandwidth;
  };
  EXPECT_LT(runWith(true), 0.95 * runWith(false));
}

TEST(Integration, AllocationAnalyzerRecoversCauseOfBimodality) {
  // Random chooser, count 2, Scenario 1: re-binning by allocation must
  // separate the two modes ((0,2) vs (1,1)) cleanly.
  auto config = plafrimConfig(topo::Scenario::kEthernet10G, 8, 8, 2);
  config.fs.chooser = beegfs::ChooserKind::kRandom;
  core::AllocationAnalyzer analyzer;
  for (int rep = 0; rep < 60; ++rep) {
    const auto record = harness::runOnce(config, 10000 + rep);
    analyzer.add(core::Allocation(record.ior.targetsUsed, config.cluster),
                 record.ior.bandwidth);
  }
  const auto groups = analyzer.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.front().key, "(0,2)");
  EXPECT_EQ(groups.back().key, "(1,1)");
  // Within-group spread is small compared to the between-group gap.
  EXPECT_LT(groups.front().summary.sd * 4,
            groups.back().summary.mean - groups.front().summary.mean);
  EXPECT_GT(analyzer.balanceBandwidthCorrelation(), 0.8);
}

}  // namespace
}  // namespace beesim
