#include "storage/device.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace beesim::storage {
namespace {

TEST(HddRaid, PeakIsDataDisksTimesStreamTimesEfficiency) {
  HddRaidParams params;
  params.disks = 12;
  params.parityDisks = 2;
  params.perDiskStream = 200.0;
  params.writeEfficiency = 0.93;
  const HddRaidModel model(params);
  EXPECT_NEAR(model.peakRate(), 10 * 200.0 * 0.93, 1e-9);
}

TEST(HddRaid, ZeroQueueMeansZeroRate) {
  const HddRaidModel model(HddRaidParams{});
  EXPECT_DOUBLE_EQ(model.serviceRate(0.0), 0.0);
}

TEST(HddRaid, TwoComponentCurveAtItsHalfPoints) {
  HddRaidParams params;
  params.cacheFraction = 0.3;
  params.cacheQHalf = 1.0;
  params.streamQHalf = 30.0;
  params.streamExponent = 2.0;  // quadratic for easy closed-form checks
  const HddRaidModel model(params);
  // At q = cacheQHalf the cache path serves half its share; the stream path
  // is still nearly idle (1/901 of its share).
  const double peak = model.peakRate();
  EXPECT_NEAR(model.serviceRate(1.0), peak * (0.3 * 0.5 + 0.7 * (1.0 / 901.0)), 1e-9);
  // At q = streamQHalf the stream path serves half its share.
  EXPECT_NEAR(model.serviceRate(30.0),
              peak * (0.3 * (30.0 / 31.0) + 0.7 * 0.5), 1e-9);
}

TEST(HddRaid, DeepQueuesPayOffSuperlinearlyInTheMidRange) {
  // The Fig. 13 compensation mechanism: between q=16 and q=32 the service
  // rate grows faster than a simple saturating ramp would allow.
  const HddRaidModel model(HddRaidParams{});
  EXPECT_GT(model.serviceRate(32.0), 1.4 * model.serviceRate(16.0));
}

TEST(HddRaid, ApproachesPeakAtDeepQueues) {
  const HddRaidModel model(HddRaidParams{});
  EXPECT_GT(model.serviceRate(1000.0), 0.99 * model.peakRate());
  EXPECT_LT(model.serviceRate(1000.0), model.peakRate());
}

TEST(HddRaid, NegativeQueueDepthThrows) {
  const HddRaidModel model(HddRaidParams{});
  EXPECT_THROW(model.serviceRate(-1.0), util::ContractError);
}

TEST(HddRaid, InvalidParamsThrow) {
  HddRaidParams p;
  p.disks = 0;
  EXPECT_THROW(HddRaidModel{p}, util::ContractError);
  p = HddRaidParams{};
  p.parityDisks = 12;
  EXPECT_THROW(HddRaidModel{p}, util::ContractError);
  p = HddRaidParams{};
  p.perDiskStream = 0.0;
  EXPECT_THROW(HddRaidModel{p}, util::ContractError);
  p = HddRaidParams{};
  p.writeEfficiency = 1.2;
  EXPECT_THROW(HddRaidModel{p}, util::ContractError);
  p = HddRaidParams{};
  p.cacheFraction = 1.5;
  EXPECT_THROW(HddRaidModel{p}, util::ContractError);
  p = HddRaidParams{};
  p.streamQHalf = -1.0;
  EXPECT_THROW(HddRaidModel{p}, util::ContractError);
}

TEST(HddRaid, DescribeMentionsGeometry) {
  const HddRaidModel model(HddRaidParams{});
  const auto text = model.describe();
  EXPECT_NE(text.find("12 disks"), std::string::npos);
  EXPECT_NE(text.find("RAID"), std::string::npos);
}

/// Ramp monotonicity sweep: service rate is non-decreasing in queue depth
/// for every model in the family.
class RampMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(RampMonotonicityTest, NonDecreasingInQueueDepth) {
  HddRaidParams params;
  params.streamQHalf = GetParam();
  const HddRaidModel model(params);
  double previous = 0.0;
  for (double q = 0.0; q <= 256.0; q += 0.5) {
    const double rate = model.serviceRate(q);
    EXPECT_GE(rate, previous - 1e-12) << "q=" << q;
    previous = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(QHalfSweep, RampMonotonicityTest,
                         ::testing::Values(0.0, 0.5, 2.0, 6.0, 17.0, 64.0));

TEST(Ssd, ReachesPeakQuickly) {
  SsdParams params;
  params.peak = 2000.0;
  params.qHalf = 0.5;
  const SsdModel model(params);
  EXPECT_GT(model.serviceRate(4.0), 0.85 * params.peak);
  EXPECT_DOUBLE_EQ(model.peakRate(), 2000.0);
}

TEST(Ssd, InvalidPeakThrows) {
  SsdParams params;
  params.peak = 0.0;
  EXPECT_THROW(SsdModel{params}, util::ContractError);
}

TEST(ConstantDevice, FlatAboveZeroQueue) {
  const ConstantDeviceModel model(123.0);
  EXPECT_DOUBLE_EQ(model.serviceRate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.serviceRate(0.1), 123.0);
  EXPECT_DOUBLE_EQ(model.serviceRate(100.0), 123.0);
  EXPECT_DOUBLE_EQ(model.peakRate(), 123.0);
}

TEST(ConstantDevice, NegativeRateThrows) {
  EXPECT_THROW(ConstantDeviceModel{-1.0}, util::ContractError);
}

}  // namespace
}  // namespace beesim::storage
