#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace beesim::stats {
namespace {

TEST(Special, LogGammaKnownValues) {
  EXPECT_NEAR(logGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(logGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(logGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(logGamma(0.5), std::log(std::sqrt(M_PI)), 1e-10);
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCaseAtHalf) {
  // I_{1/2}(a, a) = 1/2 by symmetry.
  for (const double a : {0.5, 1.0, 2.0, 7.5}) {
    EXPECT_NEAR(incompleteBeta(a, a, 0.5), 0.5, 1e-10);
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (const double x : {0.1, 0.37, 0.9}) {
    EXPECT_NEAR(incompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBeta, KnownReferenceValue) {
  // I_{0.4}(2, 3) = 1 - (1-x)^3 (1+3x) at... compute via closed form:
  // for a=2,b=3: I_x = 6x^2(1-x)^2/2 ... use scipy reference 0.5248.
  EXPECT_NEAR(incompleteBeta(2.0, 3.0, 0.4), 0.5248, 2e-4);
}

TEST(IncompleteBeta, InvalidArgumentsThrow) {
  EXPECT_THROW(incompleteBeta(0.0, 1.0, 0.5), util::ContractError);
  EXPECT_THROW(incompleteBeta(1.0, 1.0, -0.1), util::ContractError);
  EXPECT_THROW(incompleteBeta(1.0, 1.0, 1.1), util::ContractError);
}

TEST(StudentT, CdfKnownValues) {
  // t = 0 is always the median.
  EXPECT_NEAR(studentTCdf(0.0, 5.0), 0.5, 1e-12);
  // df=1 (Cauchy): CDF(1) = 0.75.
  EXPECT_NEAR(studentTCdf(1.0, 1.0), 0.75, 1e-8);
  // Large df approaches the normal: CDF(1.96, 1e6) ~ 0.975.
  EXPECT_NEAR(studentTCdf(1.96, 1e6), 0.975, 5e-4);
  // Symmetry.
  EXPECT_NEAR(studentTCdf(-2.0, 7.0) + studentTCdf(2.0, 7.0), 1.0, 1e-10);
}

TEST(StudentT, TwoSidedPValues) {
  // R: 2*pt(-2.0, df=10) = 0.07339.
  EXPECT_NEAR(studentTTwoSidedP(2.0, 10.0), 0.07339, 2e-4);
  EXPECT_NEAR(studentTTwoSidedP(-2.0, 10.0), 0.07339, 2e-4);
  EXPECT_NEAR(studentTTwoSidedP(0.0, 10.0), 1.0, 1e-12);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normalCdf(1.0), 0.841345, 1e-6);
  EXPECT_NEAR(normalCdf(-1.959964), 0.025, 1e-6);
}

TEST(Kolmogorov, TailValues) {
  EXPECT_NEAR(kolmogorovQ(0.0), 1.0, 1e-12);
  // Q(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(kolmogorovQ(1.36), 0.049, 2e-3);
  EXPECT_LT(kolmogorovQ(2.5), 1e-4);
  EXPECT_THROW(kolmogorovQ(-1.0), util::ContractError);
}

}  // namespace
}  // namespace beesim::stats
