#include "harness/run.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "control/health.hpp"
#include "control/rebalance.hpp"
#include "core/metrics.hpp"
#include "sim/fluid.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::harness {

namespace {

/// Distill the tracer's per-resource integrals into the per-server split.
ior::RunUtilization measureUtilization(const sim::FlowTracer& tracer,
                                       const beegfs::Deployment& deployment,
                                       const ior::IorResult& result) {
  ior::RunUtilization util;
  util.active = true;
  const std::size_t hosts = deployment.cluster().hosts.size();
  const util::Seconds span = result.end - result.start;
  for (std::size_t h = 0; h < hosts; ++h) {
    const auto link = deployment.serverNicResource(h);
    util.serverMiB.push_back(tracer.resourceMiB(link));
    util.serverBusyFrac.push_back(span > 0.0 ? tracer.resourceBusyTime(link) / span : 0.0);
  }
  util.linkImbalance = core::linkImbalance(util.serverMiB);
  return util;
}

}  // namespace

RunRecord runOnce(const RunConfig& config, std::uint64_t seed) {
  const auto wallStart = std::chrono::steady_clock::now();
  if (config.mdtest && !config.fs.meta.queued) {
    throw util::ConfigError(
        "the mdtest metadata phase requires the queued metadata model "
        "(BeegfsParams::meta.queued; --mdts/--meta-rate on the CLI)");
  }
  util::Rng rng(seed);

  beegfs::EnvironmentFactors env;
  env.network = rng.logNormalMedian(1.0, config.noise.networkSigmaLog);
  env.storage = rng.logNormalMedian(1.0, config.noise.storageSigmaLog);

  sim::FluidSimulator fluid;
  if (config.solverEpsilon > 0.0) fluid.setSolverEpsilon(config.solverEpsilon);
  beegfs::Deployment deployment(fluid, config.cluster, config.fs, rng.split(), env);
  beegfs::FileSystem fs(deployment, rng.split());

  // Observability attaches *after* the system is built: the tracer composes
  // through addObserver and only reads events, so traced runs stay bitwise
  // identical to untraced ones (no extra rng splits, same event order).
  std::optional<sim::FlowTracer> tracer;
  if (config.observe.utilization) tracer.emplace(fluid);
  if (config.observe.profile) fluid.setProfiling(true);

  // The rebalance controller attaches its own tracer through the same
  // observer hub; with rebalancing off nothing is constructed, so default
  // runs keep their exact legacy bytes.
  std::optional<control::RebalanceController> rebalance;
  if (config.rebalance.enabled) rebalance.emplace(fs, config.rebalance);

  // Gray-failure detection: same contract -- the monitor (and its tracer)
  // exists only when enabled, so default runs keep their exact legacy bytes.
  std::optional<control::HealthMonitor> health;
  if (config.health.enabled) health.emplace(fs, config.health);

  // QoS: the whole job is one application (single-tenant limiter).  Same
  // contract as the controller -- nothing is constructed when disabled.
  std::optional<qos::QosManager> qosManager;
  if (config.qos.enabled) {
    qosManager.emplace(fluid, config.qos);
    qosManager->registerApp(qos::makeAppSpec(config.qos), config.job.nodeIds);
    fs.setQosManager(&*qosManager);
  }

  RunRecord record;
  record.seed = seed;
  record.environment = env;

  // Fault plan: materialize the schedule (stochastic events draw from a
  // dedicated split so the plan is a pure function of this run's seed, which
  // keeps parallel campaign executors row-identical to serial ones) and arm
  // the injector *before* launching the job -- the engine's FIFO tie-break
  // then applies a t=0 fault ahead of the job's first metadata operation.
  // The empty-plan path takes no splits, preserving legacy rng streams.
  std::optional<faults::FaultInjector> injector;
  if (!config.faults.empty()) {
    faults::FaultSchedule schedule = config.faults.schedule;
    if (config.faults.stochastic) {
      util::Rng faultRng = rng.split();
      const auto generated =
          faults::generateSchedule(*config.faults.stochastic, config.cluster.targetCount(),
                                   config.cluster.hosts.size(), faultRng);
      schedule.events.insert(schedule.events.end(), generated.events.begin(),
                             generated.events.end());
    }
    schedule.normalize(config.cluster.targetCount(), config.cluster.hosts.size());
    if (schedule.hasFailures() &&
        config.fs.faults.mode == beegfs::ClientFaultPolicy::Mode::kNone) {
      throw util::ConfigError(
          "fault schedule contains target/host failures but no client fault "
          "policy is set (BeegfsParams::faults.mode)");
    }
    injector.emplace(deployment, std::move(schedule));
    injector->arm(config.startAt);
    record.faultsActive = true;
  }

  bool finished = false;
  bool mdFinished = !config.mdtest.has_value();
  ior::launchIor(
      fs, config.job, config.ior, config.startAt,
      [&](const ior::IorResult& result) {
        record.ior = result;
        finished = true;
        // Freeze the controller the instant the job completes: in-flight
        // migrations drain, but their tail traffic cannot re-trigger it.
        if (rebalance) rebalance->disarm();
        if (health) health->disarm();
        // IO500-style phasing: the metadata benchmark follows the bandwidth
        // phase on the same deployment (the md phase moves no data, so the
        // frozen controllers see nothing anyway).
        if (config.mdtest) {
          ior::launchMdtest(fs, config.job, *config.mdtest, fluid.now(),
                            [&](const ior::MdtestResult& md) {
                              record.md = md;
                              mdFinished = true;
                            });
        }
      },
      config.pinnedTargets);
  fluid.run();
  BEESIM_ASSERT(finished, "benchmark run did not complete");
  BEESIM_ASSERT(mdFinished, "mdtest metadata phase did not complete");
  if (config.mdtest) record.mdActive = true;
  if (injector) record.injected = injector->stats();
  if (config.fs.mirror.enabled) {
    record.mirrorActive = true;
    // Background resync can outlive the job; re-snapshot after the drain so
    // post-job resync rounds count.  The file system is fresh per run, so
    // its totals equal this run's delta.
    record.ior.mirror = fs.mirrorStats();
  }
  if (rebalance) {
    rebalance->cancel();  // safety: the drained run left no active flows
    record.rebalanceActive = true;
    record.rebalance = rebalance->stats();
  }
  if (health) {
    record.healthActive = true;
    record.health = health->stats();
  }
  if (config.fs.hedge.enabled) {
    record.hedgeActive = true;
    // Quarantine switchovers can land after the job's completion snapshot;
    // the fresh-per-run file system makes its totals this run's delta.
    record.ior.hedge = fs.hedgeStats();
  }
  if (qosManager) {
    record.qosActive = true;
    record.qos = qosManager->stats();
    const auto slo = qos::sloRate(qosManager->appSpec(0));
    if (record.ior.bandwidth < config.qos.sloTolerance * slo) ++record.qos.sloViolations;
  }
  if (tracer) record.ior.util = measureUtilization(*tracer, deployment, record.ior);
  record.resolves = fluid.resolveCount();
  record.solverIterations = fluid.solverIterations();
  record.deferredResolves = fluid.deferredResolves();
  record.solveSeconds = fluid.solveSeconds();
  record.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wallStart).count();
  return record;
}

}  // namespace beesim::harness
