#include "harness/run.hpp"

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "sim/fluid.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::harness {

RunRecord runOnce(const RunConfig& config, std::uint64_t seed) {
  util::Rng rng(seed);

  beegfs::EnvironmentFactors env;
  env.network = rng.logNormalMedian(1.0, config.noise.networkSigmaLog);
  env.storage = rng.logNormalMedian(1.0, config.noise.storageSigmaLog);

  sim::FluidSimulator fluid;
  beegfs::Deployment deployment(fluid, config.cluster, config.fs, rng.split(), env);
  beegfs::FileSystem fs(deployment, rng.split());

  RunRecord record;
  record.seed = seed;
  record.environment = env;

  bool finished = false;
  ior::launchIor(
      fs, config.job, config.ior, config.startAt,
      [&](const ior::IorResult& result) {
        record.ior = result;
        finished = true;
      },
      config.pinnedTargets);
  fluid.run();
  BEESIM_ASSERT(finished, "benchmark run did not complete");
  return record;
}

}  // namespace beesim::harness
