// Result store: rows of (factors -> measurement) collected by a campaign,
// with group-by queries for the analysis layer and CSV export matching the
// companion-repository format of the paper.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace beesim::harness {

/// One measurement row: named experimental factors plus named metrics.
struct ResultRow {
  std::map<std::string, std::string> factors;  // e.g. {"nodes","8"},{"count","4"}
  std::map<std::string, double> metrics;       // e.g. {"bandwidth_mibps", 1460.2}
};

class ResultStore {
 public:
  void add(ResultRow row);

  std::size_t size() const { return rows_.size(); }
  const std::vector<ResultRow>& rows() const { return rows_; }

  /// Values of metric `metric` for rows matching every (factor, value) pair
  /// in `where` (empty = all rows).  Missing metric throws ContractError.
  std::vector<double> metric(const std::string& metric,
                             const std::map<std::string, std::string>& where = {}) const;

  /// Group rows by a factor: distinct factor value -> metric values.
  /// Rows lacking the factor are skipped.
  std::map<std::string, std::vector<double>> groupBy(
      const std::string& factor, const std::string& metric,
      const std::map<std::string, std::string>& where = {}) const;

  /// Write all rows as CSV.  Columns: union of factor names (sorted), then
  /// union of metric names (sorted); absent cells are empty.
  void writeCsv(const std::filesystem::path& path) const;

 private:
  std::vector<ResultRow> rows_;
};

}  // namespace beesim::harness
