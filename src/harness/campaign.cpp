#include "harness/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::harness {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Render an entry's factor labels for progress reporting ("count=4 nodes=8").
std::string describeFactors(const CampaignEntry& entry) {
  std::string out;
  for (const auto& [name, value] : entry.factors) {
    if (!out.empty()) out += ' ';
    out += name + "=" + value;
  }
  return out.empty() ? "(single config)" : out;
}

/// Build the row exactly as the serial executor always has: entry factors +
/// "rep", standard metrics, then the annotator.
ResultRow makeRow(const CampaignEntry& entry, const PlannedRun& planned,
                  const RunRecord& record, const RowAnnotator& annotate) {
  ResultRow row;
  row.factors = entry.factors;
  row.factors["rep"] = std::to_string(planned.repetition);
  row.metrics["bandwidth_mibps"] = record.ior.bandwidth;
  row.metrics["meta_seconds"] = record.ior.metaTime;
  row.metrics["env_network"] = record.environment.network;
  row.metrics["env_storage"] = record.environment.storage;
  if (record.faultsActive) {
    // Only fault-armed runs carry these columns, so campaigns with an empty
    // plan keep emitting byte-identical CSVs to pre-fault-model builds.
    row.metrics["fault_events"] = static_cast<double>(record.injected.total());
    row.metrics["fault_timeouts"] = static_cast<double>(record.ior.faults.timeouts);
    row.metrics["fault_retries"] = static_cast<double>(record.ior.faults.retries);
    row.metrics["fault_failovers"] = static_cast<double>(record.ior.faults.failovers);
    row.metrics["fault_rewritten_mib"] = util::toMiB(record.ior.faults.bytesRewritten);
    row.metrics["fault_degraded_seconds"] = record.ior.faults.degradedTime;
    row.metrics["fault_aborted"] = record.ior.failed ? 1.0 : 0.0;
  }
  if (record.mirrorActive) {
    // Same contract as fault_*: only mirrored runs carry these columns.
    row.metrics["mirror_failovers"] = static_cast<double>(record.ior.mirror.failovers);
    row.metrics["mirror_replica_mib"] = util::toMiB(record.ior.mirror.bytesReplicated);
    row.metrics["mirror_resent_mib"] = util::toMiB(record.ior.mirror.bytesResent);
    row.metrics["mirror_lost_mib"] = util::toMiB(record.ior.mirror.bytesLost);
    row.metrics["resync_jobs"] = static_cast<double>(record.ior.mirror.resyncJobs);
    row.metrics["resync_mib"] = util::toMiB(record.ior.mirror.bytesResynced);
    row.metrics["resync_seconds"] = record.ior.mirror.resyncSeconds;
  }
  if (record.rebalanceActive) {
    // Same contract as fault_*: only controller-armed runs carry these
    // columns, so campaigns with rebalancing off keep their exact bytes.
    row.metrics["rebal_samples"] = static_cast<double>(record.rebalance.samples);
    row.metrics["rebal_triggers"] = static_cast<double>(record.rebalance.triggers);
    row.metrics["rebal_retargets"] = static_cast<double>(record.rebalance.retargets);
    row.metrics["rebal_migrations"] = static_cast<double>(record.rebalance.migrations);
    row.metrics["rebal_migrated_mib"] = util::toMiB(record.rebalance.bytesMigrated);
    row.metrics["rebal_migration_seconds"] = record.rebalance.migrationSeconds;
    row.metrics["rebal_peak_imbalance"] = record.rebalance.peakImbalance;
  }
  if (record.healthActive) {
    // Same contract as fault_*: only monitor-armed runs carry these columns,
    // so campaigns with gray-failure detection off keep their exact bytes.
    row.metrics["gray_samples"] = static_cast<double>(record.health.samples);
    row.metrics["gray_suspects"] = static_cast<double>(record.health.suspects);
    row.metrics["gray_quarantines"] = static_cast<double>(record.health.quarantines);
    row.metrics["gray_probations"] = static_cast<double>(record.health.probations);
    row.metrics["gray_readmissions"] = static_cast<double>(record.health.readmissions);
    row.metrics["gray_relapses"] = static_cast<double>(record.health.relapses);
  }
  if (record.hedgeActive) {
    // Same contract as fault_*: only hedge-armed runs carry these columns.
    row.metrics["hedge_issued"] = static_cast<double>(record.ior.hedge.hedgesIssued);
    row.metrics["hedge_wins"] = static_cast<double>(record.ior.hedge.hedgeWins);
    row.metrics["hedge_primary_wins"] =
        static_cast<double>(record.ior.hedge.primaryWins);
    row.metrics["hedge_mirror_switchovers"] =
        static_cast<double>(record.ior.hedge.mirrorSwitchovers);
    row.metrics["hedge_mib"] = util::toMiB(record.ior.hedge.bytesHedged);
  }
  if (record.mdActive) {
    // Same contract as fault_*: only runs with an mdtest phase carry these
    // columns, so campaigns without it keep their exact bytes.
    row.metrics["md_seconds"] = record.md.end - record.md.start;
    row.metrics["md_total_ops"] = static_cast<double>(record.md.totalOps);
    row.metrics["md_ops_s"] = record.md.opsPerSec;
    row.metrics["md_create_ops_s"] = record.md.create.opsPerSec;
    row.metrics["md_stat_ops_s"] = record.md.stat.opsPerSec;
    row.metrics["md_unlink_ops_s"] = record.md.unlink.opsPerSec;
    row.metrics["md_mdt_imbalance"] = record.md.mdtImbalance;
  }
  if (record.qosActive) {
    // Same contract as fault_*: only QoS-managed runs carry these columns,
    // so campaigns with QoS off keep their exact bytes.
    row.metrics["qos_issued_mib"] = record.qos.tokensIssued / static_cast<double>(util::kMiB);
    row.metrics["qos_borrowed_mib"] =
        record.qos.tokensBorrowed / static_cast<double>(util::kMiB);
    row.metrics["qos_reclaimed_mib"] =
        record.qos.tokensReclaimed / static_cast<double>(util::kMiB);
    row.metrics["qos_deferrals"] = static_cast<double>(record.qos.deferrals);
    row.metrics["qos_throttle_seconds"] = record.qos.throttleSeconds;
    row.metrics["qos_slo_violations"] = static_cast<double>(record.qos.sloViolations);
  }
  if (record.ior.util.active) {
    // Same contract again: only utilization-observed runs carry the
    // per-server traffic split, so default campaigns keep their exact bytes.
    for (std::size_t k = 0; k < record.ior.util.serverMiB.size(); ++k) {
      const std::string srv = "srv" + std::to_string(k);
      row.metrics[srv + "_mib"] = record.ior.util.serverMiB[k];
      row.metrics[srv + "_busy_frac"] = record.ior.util.serverBusyFrac[k];
    }
    row.metrics["link_imbalance"] = record.ior.util.linkImbalance;
  }
  if (annotate) annotate(record, row);
  return row;
}

/// Per-run timing + progress aggregation; all calls happen in commit (= plan)
/// order on the committing thread.
class ProgressTracker {
 public:
  ProgressTracker(std::size_t total, const ExecutorOptions& exec,
                  const std::vector<CampaignEntry>& entries)
      : exec_(exec), entries_(entries) {
    progress_.total = total;
    if (exec_.totals) *exec_.totals = CampaignTotals{};
  }

  void committed(const PlannedRun& planned, const RunRecord& record, double runSeconds) {
    if (exec_.totals) {
      auto& totals = *exec_.totals;
      ++totals.runs;
      totals.resolves += record.resolves;
      totals.solverIterations += record.solverIterations;
      totals.runWallSeconds += record.wallSeconds;
      totals.maxRunWallSeconds = std::max(totals.maxRunWallSeconds, record.wallSeconds);
      totals.solveSeconds += record.solveSeconds;
      totals.campaignWallSeconds = secondsSince(startedAt_);
    }
    ++progress_.completed;
    if (runSeconds > progress_.slowestRunSeconds) {
      progress_.slowestRunSeconds = runSeconds;
      progress_.slowestConfig = describeFactors(entries_[planned.configIndex]);
    }
    if (!exec_.onProgress) return;
    const double elapsed = secondsSince(startedAt_);
    const bool last = progress_.completed == progress_.total;
    if (!last && elapsed - lastReport_ < exec_.progressIntervalSeconds) return;
    lastReport_ = elapsed;
    progress_.elapsedSeconds = elapsed;
    progress_.etaSeconds =
        elapsed / static_cast<double>(progress_.completed) *
        static_cast<double>(progress_.total - progress_.completed);
    exec_.onProgress(progress_);
  }

 private:
  const ExecutorOptions& exec_;
  const std::vector<CampaignEntry>& entries_;
  CampaignProgress progress_;
  Clock::time_point startedAt_ = Clock::now();
  double lastReport_ = 0.0;
};

RunRecord timedRunOnce(const CampaignEntry& entry, const PlannedRun& planned,
                       double& runSeconds) {
  RunConfig config = entry.config;
  config.startAt = planned.systemTime;
  const auto startedAt = Clock::now();
  RunRecord record = runOnce(config, planned.seed);
  runSeconds = secondsSince(startedAt);
  return record;
}

/// The legacy serial path: run and commit one planned run at a time.
ResultStore executeSerial(const std::vector<CampaignEntry>& entries,
                          const std::vector<PlannedRun>& plan, const RowAnnotator& annotate,
                          ProgressTracker& tracker) {
  ResultStore store;
  for (const auto& planned : plan) {
    double runSeconds = 0.0;
    const auto record = timedRunOnce(entries[planned.configIndex], planned, runSeconds);
    store.add(makeRow(entries[planned.configIndex], planned, record, annotate));
    tracker.committed(planned, record, runSeconds);
  }
  return store;
}

/// Parallel path: a worker pool pulls planned indices off an atomic counter
/// and buffers each RunRecord in its slot; the calling thread commits slots
/// strictly in plan order, so the ResultStore and the annotator observe the
/// exact serial sequence.  All per-run randomness derives from planned.seed
/// inside runOnce -- workers share no RNG, no simulator, no mutable state.
ResultStore executeParallel(const std::vector<CampaignEntry>& entries,
                            const std::vector<PlannedRun>& plan, const RowAnnotator& annotate,
                            ProgressTracker& tracker, std::size_t jobs) {
  struct Slot {
    RunRecord record;
    double runSeconds = 0.0;
    bool done = false;
  };
  std::vector<Slot> slots(plan.size());
  std::mutex mutex;
  std::condition_variable slotReady;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr workerError;

  const auto work = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= plan.size()) return;
      try {
        double runSeconds = 0.0;
        RunRecord record = timedRunOnce(entries[plan[i].configIndex], plan[i], runSeconds);
        {
          const std::lock_guard<std::mutex> lock(mutex);
          slots[i].record = std::move(record);
          slots[i].runSeconds = runSeconds;
          slots[i].done = true;
        }
        slotReady.notify_one();
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          if (!workerError) workerError = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        slotReady.notify_one();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) pool.emplace_back(work);

  ResultStore store;
  std::exception_ptr commitError;
  {
    std::unique_lock<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      slotReady.wait(lock, [&] {
        return slots[i].done || failed.load(std::memory_order_relaxed);
      });
      if (!slots[i].done) break;  // a worker failed before producing slot i
      Slot slot = std::move(slots[i]);
      lock.unlock();
      try {
        store.add(makeRow(entries[plan[i].configIndex], plan[i], slot.record, annotate));
        tracker.committed(plan[i], slot.record, slot.runSeconds);
      } catch (...) {
        commitError = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      lock.lock();
      if (commitError) break;
    }
  }
  for (auto& thread : pool) thread.join();
  if (commitError) std::rethrow_exception(commitError);
  if (workerError) std::rethrow_exception(workerError);
  return store;
}

}  // namespace

ResultStore executeCampaign(const std::vector<CampaignEntry>& entries,
                            const ProtocolOptions& options, std::uint64_t seed,
                            const RowAnnotator& annotate, const ExecutorOptions& exec) {
  BEESIM_ASSERT(!entries.empty(), "campaign needs at least one configuration");

  util::Rng rng(seed);
  const auto plan = buildProtocolPlan(entries.size(), options, rng);

  ProgressTracker tracker(plan.size(), exec, entries);
  const std::size_t jobs = std::min(resolveJobs(exec.jobs), plan.size());
  if (jobs <= 1) return executeSerial(entries, plan, annotate, tracker);
  return executeParallel(entries, plan, annotate, tracker, jobs);
}

}  // namespace beesim::harness
