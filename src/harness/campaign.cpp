#include "harness/campaign.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::harness {

ResultStore executeCampaign(const std::vector<CampaignEntry>& entries,
                            const ProtocolOptions& options, std::uint64_t seed,
                            const RowAnnotator& annotate) {
  BEESIM_ASSERT(!entries.empty(), "campaign needs at least one configuration");

  util::Rng rng(seed);
  const auto plan = buildProtocolPlan(entries.size(), options, rng);

  ResultStore store;
  for (const auto& planned : plan) {
    RunConfig config = entries[planned.configIndex].config;
    config.startAt = planned.systemTime;
    const auto record = runOnce(config, planned.seed);

    ResultRow row;
    row.factors = entries[planned.configIndex].factors;
    row.factors["rep"] = std::to_string(planned.repetition);
    row.metrics["bandwidth_mibps"] = record.ior.bandwidth;
    row.metrics["meta_seconds"] = record.ior.metaTime;
    row.metrics["env_network"] = record.environment.network;
    row.metrics["env_storage"] = record.environment.storage;
    if (annotate) annotate(record, row);
    store.add(std::move(row));
  }
  return store;
}

}  // namespace beesim::harness
