// Single-experiment execution: one IOR run on a freshly booted simulated
// system, under sampled environment noise.
//
// Each repetition builds its own FluidSimulator + Deployment + FileSystem so
// no state leaks between runs -- the simulated analogue of the paper's
// protocol choice to avoid warm-up and caching effects (Section III-B/C).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "beegfs/params.hpp"
#include "control/health.hpp"
#include "control/rebalance.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "ior/mdtest.hpp"
#include "ior/options.hpp"
#include "ior/runner.hpp"
#include "qos/manager.hpp"
#include "topology/cluster.hpp"

namespace beesim::harness {

/// Per-run environment noise: the "mood" of the production system, sampled
/// once per repetition as log-normal factors on network links and storage
/// devices.
struct NoiseSpec {
  double networkSigmaLog = 0.015;
  double storageSigmaLog = 0.04;
};

/// Per-run observability switches.  Both default off: a run with the
/// defaults attaches no observer and never calls the host clock, so the
/// fluid core's hot path is untouched (and campaign CSVs keep their exact
/// legacy bytes).
struct ObservabilityOptions {
  /// Attach a FlowTracer for the run's lifetime and fill
  /// IorResult::util with the measured per-server traffic split.
  bool utilization = false;
  /// Measure solver wall time (FluidSimulator::setProfiling) and per-run
  /// wall time into RunRecord.
  bool profile = false;
};

/// Everything needed to execute one benchmark run.
struct RunConfig {
  topo::ClusterConfig cluster;
  beegfs::BeegfsParams fs;
  ior::IorJob job;
  ior::IorOptions ior;
  /// Bypass the target chooser with an explicit allocation (N-1 only).
  std::optional<std::vector<std::size_t>> pinnedTargets;
  NoiseSpec noise;
  /// Virtual system time at which the run starts (the protocol spaces runs
  /// out in time so device-noise epochs differ; see protocol.hpp).
  util::Seconds startAt = 0.0;
  /// Mid-run fault injection: explicit events (relative to startAt) and/or a
  /// stochastic MTTF/MTTR generator.  An empty plan leaves the run bitwise
  /// identical to pre-fault-model builds (no extra rng splits, no watchdogs).
  /// Schedules with target/host failures require fs.faults.mode != kNone.
  faults::FaultPlan faults;
  /// Run-level observability (utilization measurement, profiling).
  ObservabilityOptions observe;
  /// Closed-loop rebalancing (DESIGN.md §2.6).  Disabled by default: the
  /// controller is then never constructed and the run stays bitwise
  /// identical to pre-controller builds.
  control::RebalancePolicy rebalance;
  /// Gray-failure detection (DESIGN.md §2.9).  Disabled by default: the
  /// monitor is then never constructed and the run stays bitwise identical
  /// to pre-monitor builds.
  control::HealthPolicy health;
  /// Multi-tenant QoS (DESIGN.md §2.8).  Disabled by default: the manager is
  /// then never constructed and the run stays bitwise identical to
  /// pre-QoS builds.  runOnce registers the whole job as one application at
  /// qos.rate/qos.burst; runConcurrent registers one app per AppSpec.
  qos::QosPolicy qos;
  /// mdtest-style metadata phase appended after the IOR job completes (the
  /// IO500's bw-then-md shape; DESIGN.md §2.10).  Requires the queued
  /// metadata model (fs.meta.queued).  Unset leaves the run bitwise
  /// identical to md-free builds.
  std::optional<ior::MdtestOptions> mdtest;
  /// ε bound for the fluid core's deferred re-solves (DESIGN.md §2.7).
  /// 0 (the default) is the exact path -- bitwise identical to pre-ε builds;
  /// > 0 lets every flow's rate lag the exact max-min solution by at most
  /// this many MiB/s between structural events.
  double solverEpsilon = 0.0;
};

struct RunRecord {
  ior::IorResult ior;
  beegfs::EnvironmentFactors environment;
  std::uint64_t seed = 0;
  /// True when this run had a fault plan armed (campaign rows then carry the
  /// fault_* metric columns).
  bool faultsActive = false;
  /// True when the run used storage mirroring (campaign rows then carry the
  /// mirror_* / resync_* metric columns).
  bool mirrorActive = false;
  /// What the injector fired (zeroed when !faultsActive).
  faults::InjectorStats injected;
  /// True when the rebalance controller ran (campaign rows then carry the
  /// rebal_* metric columns).
  bool rebalanceActive = false;
  /// What the controller did (zeroed when !rebalanceActive).
  control::RebalanceStats rebalance;
  /// True when the gray-failure health monitor ran (campaign rows then
  /// carry the gray_* metric columns).
  bool healthActive = false;
  /// What the monitor observed/did (zeroed when !healthActive).
  control::HealthStats health;
  /// True when hedged writes were enabled (campaign rows then carry the
  /// hedge_* metric columns; the counters live in ior.hedge).
  bool hedgeActive = false;
  /// True when an mdtest metadata phase ran (campaign rows then carry the
  /// md_* metric columns).
  bool mdActive = false;
  /// What the metadata phase measured (zeroed when !mdActive).
  ior::MdtestResult md;
  /// True when the QoS manager ran (campaign rows then carry the qos_*
  /// metric columns).
  bool qosActive = false;
  /// What the QoS layer did (zeroed when !qosActive).
  qos::QosStats qos;
  /// Solver work done by this run (always filled; the counters are free).
  std::size_t resolves = 0;
  std::size_t solverIterations = 0;
  /// Component re-solves skipped under the ε bound (0 on the exact path).
  std::size_t deferredResolves = 0;
  /// Host wall-clock cost of the run; solveSeconds stays 0 unless
  /// observe.profile is on (the solver never reads the clock otherwise).
  double wallSeconds = 0.0;
  double solveSeconds = 0.0;
};

/// Execute one run to completion.  Deterministic given (config, seed).
RunRecord runOnce(const RunConfig& config, std::uint64_t seed);

}  // namespace beesim::harness
