// Campaign executor: runs a set of experimental configurations under the
// paper's randomized-block protocol and collects a ResultStore.
//
// This is the top of the harness: every bench binary describes its figure as
// a list of (RunConfig, factor labels) entries and calls execute().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/executor.hpp"
#include "harness/protocol.hpp"
#include "harness/run.hpp"
#include "harness/store.hpp"

namespace beesim::harness {

struct CampaignEntry {
  RunConfig config;
  /// Factor labels identifying this configuration in the store
  /// (e.g. {"scenario","1"},{"nodes","8"}).
  std::map<std::string, std::string> factors;
};

/// Hook to enrich each row (e.g. with the (min,max) allocation computed by
/// the core analysis layer).  Called after the run's standard metrics are
/// filled in.
using RowAnnotator = std::function<void(const RunRecord&, ResultRow&)>;

/// Execute `repetitions` of every entry under the randomized-block protocol.
/// Rows carry the entry's factors plus "rep", and metrics
/// "bandwidth_mibps", "meta_seconds", "env_network", "env_storage".
///
/// Deterministic given `seed` -- including across `exec.jobs`: runs execute
/// concurrently on a worker pool, but every run's randomness derives from its
/// planned seed and rows are committed (and the annotator invoked) strictly
/// in plan order on the calling thread, so the returned store is bitwise
/// identical to serial execution.  jobs=1 is the exact legacy serial path.
ResultStore executeCampaign(const std::vector<CampaignEntry>& entries,
                            const ProtocolOptions& options, std::uint64_t seed,
                            const RowAnnotator& annotate = nullptr,
                            const ExecutorOptions& exec = {});

}  // namespace beesim::harness
