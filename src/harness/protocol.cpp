#include "harness/protocol.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace beesim::harness {

std::vector<PlannedRun> buildProtocolPlan(std::size_t configCount, const ProtocolOptions& options,
                                          util::Rng& rng) {
  BEESIM_ASSERT(configCount >= 1, "protocol needs at least one configuration");
  BEESIM_ASSERT(options.repetitions >= 1, "protocol needs at least one repetition");
  BEESIM_ASSERT(options.blockSize >= 1, "protocol block size must be >= 1");
  BEESIM_ASSERT(options.minWait >= 0.0 && options.maxWait >= options.minWait,
                "protocol waits must satisfy 0 <= min <= max");

  // Step 1: the full run list, configuration-major.
  std::vector<PlannedRun> runs;
  runs.reserve(configCount * options.repetitions);
  for (std::size_t c = 0; c < configCount; ++c) {
    for (std::size_t r = 0; r < options.repetitions; ++r) {
      PlannedRun run;
      run.configIndex = c;
      run.repetition = r;
      run.seed = rng.bits();
      runs.push_back(run);
    }
  }

  // Step 2: blocks of `blockSize` consecutive runs.
  const std::size_t blockCount = (runs.size() + options.blockSize - 1) / options.blockSize;
  std::vector<std::size_t> blockOrder(blockCount);
  for (std::size_t b = 0; b < blockCount; ++b) blockOrder[b] = b;

  // Step 3: shuffle the block execution order.
  rng.shuffle(blockOrder);

  // Step 4: lay blocks out in virtual time with random waits between them.
  std::vector<PlannedRun> plan;
  plan.reserve(runs.size());
  util::Seconds clock = 0.0;
  for (std::size_t i = 0; i < blockOrder.size(); ++i) {
    if (i > 0) clock += rng.uniform(options.minWait, options.maxWait);
    const std::size_t begin = blockOrder[i] * options.blockSize;
    const std::size_t end = std::min(begin + options.blockSize, runs.size());
    for (std::size_t r = begin; r < end; ++r) {
      PlannedRun run = runs[r];
      run.systemTime = clock;
      clock += options.nominalRunDuration;
      plan.push_back(run);
    }
  }
  return plan;
}

}  // namespace beesim::harness
