// The paper's execution protocol (Section III-C), reimplemented over
// virtual time:
//
//   1. list all benchmark runs (`repetitions` of each configuration);
//   2. divide the list into blocks of ten executions;
//   3. execute the blocks in random order, one run at a time;
//   4. impose a random 1-30 minute wait between blocks.
//
// In simulation, runs do not interfere through persistent hardware state
// (each gets a fresh deployment), so the protocol's effect is carried by
// (a) a distinct seed per run and (b) a distinct virtual *system time*
// per run -- the device-noise and environment processes are anchored to
// that time, so spacing runs out in time diversifies the system states
// they sample, exactly what the paper's waits are for.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::harness {

struct ProtocolOptions {
  std::size_t repetitions = 100;
  std::size_t blockSize = 10;
  util::Seconds minWait = 60.0;     // 1 minute
  util::Seconds maxWait = 1800.0;   // 30 minutes
  /// Nominal duration budgeted per run when laying runs out in time (the
  /// paper's runs take tens of seconds; the exact value only phases noise).
  util::Seconds nominalRunDuration = 60.0;
};

/// One planned execution.
struct PlannedRun {
  std::size_t configIndex = 0;   // which experimental configuration
  std::size_t repetition = 0;    // 0-based repetition of that configuration
  std::uint64_t seed = 0;        // per-run RNG seed
  util::Seconds systemTime = 0;  // virtual time the run starts at
};

/// Build the full execution plan for `configCount` configurations.
/// Deterministic given `rng`'s state.
std::vector<PlannedRun> buildProtocolPlan(std::size_t configCount, const ProtocolOptions& options,
                                          util::Rng& rng);

}  // namespace beesim::harness
