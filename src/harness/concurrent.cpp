#include "harness/concurrent.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "faults/injector.hpp"
#include "sim/fluid.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::harness {

util::MiBps aggregateBandwidth(const std::vector<ior::IorResult>& apps) {
  BEESIM_ASSERT(!apps.empty(), "aggregate bandwidth of zero applications");
  util::Bytes totalBytes = 0;
  util::Seconds earliestStart = apps.front().start;
  util::Seconds latestEnd = apps.front().end;
  for (const auto& app : apps) {
    totalBytes += app.totalBytes;
    earliestStart = std::min(earliestStart, app.start);
    latestEnd = std::max(latestEnd, app.end);
  }
  // A degenerate window (every app resolved instantly, e.g. all jobs wrote
  // zero bytes) is 0 MiB/s, not a contract violation in util::bandwidth.
  const util::Seconds elapsed = latestEnd - earliestStart;
  if (elapsed <= 0.0) return 0.0;
  return util::bandwidth(totalBytes, elapsed);
}

ConcurrentResult runConcurrent(const RunConfig& base, const std::vector<AppSpec>& apps,
                               std::uint64_t seed) {
  BEESIM_ASSERT(!apps.empty(), "concurrent experiment needs >= 1 application");

  // Node sets must be pairwise disjoint (the paper's setup: applications do
  // not share compute nodes).
  std::set<std::size_t> seenNodes;
  for (const auto& app : apps) {
    for (const auto node : app.job.nodeIds) {
      if (!seenNodes.insert(node).second) {
        throw util::ConfigError("concurrent applications must not share compute nodes");
      }
    }
    // A negative offset would silently schedule the app before base.startAt
    // (i.e. before the deployment's fault plan and noise epochs assume any
    // traffic exists); NaN/inf would hang the engine.
    if (!std::isfinite(app.startOffset) || app.startOffset < 0.0) {
      throw util::ConfigError("AppSpec::startOffset must be finite and >= 0");
    }
    if (app.qos && !base.qos.enabled) {
      throw util::ConfigError("per-app QoS specs require an enabled base QoS policy");
    }
  }
  if (base.mdtest && !base.fs.meta.queued) {
    throw util::ConfigError(
        "the mdtest metadata phase requires the queued metadata model "
        "(BeegfsParams::meta.queued; --mdts/--meta-rate on the CLI)");
  }

  util::Rng rng(seed);
  beegfs::EnvironmentFactors env;
  env.network = rng.logNormalMedian(1.0, base.noise.networkSigmaLog);
  env.storage = rng.logNormalMedian(1.0, base.noise.storageSigmaLog);

  sim::FluidSimulator fluid;
  beegfs::Deployment deployment(fluid, base.cluster, base.fs, rng.split(), env);
  beegfs::FileSystem fs(deployment, rng.split());

  // Same contract as runOnce: the controller only exists when enabled, so
  // default concurrent experiments stay bitwise identical.
  std::optional<control::RebalanceController> rebalance;
  if (base.rebalance.enabled) rebalance.emplace(fs, base.rebalance);

  // Gray-failure detection composes with concurrent apps unchanged: the
  // monitor watches server NICs, not applications.
  std::optional<control::HealthMonitor> health;
  if (base.health.enabled) health.emplace(fs, base.health);

  // QoS: one token bucket per application (DESIGN.md §2.8).  Apps without an
  // explicit spec inherit the policy's default reservation.
  std::optional<qos::QosManager> qosManager;
  if (base.qos.enabled) {
    qosManager.emplace(fluid, base.qos);
    for (const auto& app : apps) {
      qosManager->registerApp(app.qos ? *app.qos : qos::makeAppSpec(base.qos),
                              app.job.nodeIds);
    }
    fs.setQosManager(&*qosManager);
  }

  ConcurrentResult result;
  result.seed = seed;
  result.environment = env;
  result.apps.resize(apps.size());

  // Fault plan: same rng discipline as runOnce (a dedicated split only when
  // the plan is non-empty, so default experiments keep their exact bytes).
  std::optional<faults::FaultInjector> injector;
  if (!base.faults.empty()) {
    faults::FaultSchedule schedule = base.faults.schedule;
    if (base.faults.stochastic) {
      util::Rng faultRng = rng.split();
      const auto generated =
          faults::generateSchedule(*base.faults.stochastic, base.cluster.targetCount(),
                                   base.cluster.hosts.size(), faultRng);
      schedule.events.insert(schedule.events.end(), generated.events.begin(),
                             generated.events.end());
    }
    schedule.normalize(base.cluster.targetCount(), base.cluster.hosts.size());
    if (schedule.hasFailures() &&
        base.fs.faults.mode == beegfs::ClientFaultPolicy::Mode::kNone) {
      throw util::ConfigError(
          "fault schedule contains target/host failures but no client fault "
          "policy is set (BeegfsParams::faults.mode)");
    }
    injector.emplace(deployment, std::move(schedule));
    injector->arm(base.startAt);
    result.faultsActive = true;
  }

  std::size_t remaining = apps.size();
  std::size_t mdRemaining = base.mdtest ? apps.size() : 0;
  if (base.mdtest) result.appMd.resize(apps.size());
  for (std::size_t a = 0; a < apps.size(); ++a) {
    // Distinct file names so the N-1 files do not collide.
    auto options = apps[a].ior;
    options.testFile += ".app" + std::to_string(a);
    ior::launchIor(
        fs, apps[a].job, options, base.startAt + apps[a].startOffset,
        [&result, &remaining, &mdRemaining, &rebalance, &health, &base, &fs, &fluid,
         &apps, a](const ior::IorResult& r) {
          result.apps[a] = r;
          // Disarm once the *last* application completes: the controller
          // keeps serving the survivors of a staggered schedule.
          if (--remaining == 0) {
            if (rebalance) rebalance->disarm();
            if (health) health->disarm();
          }
          // IO500-style phasing per application: each app's md phase chases
          // its own bandwidth phase, so staggered apps' metadata ops overlap
          // and contend on the shared MDTs.
          if (base.mdtest) {
            auto mdOptions = *base.mdtest;
            mdOptions.dir += ".app" + std::to_string(a);
            ior::launchMdtest(fs, apps[a].job, mdOptions, fluid.now(),
                              [&result, &mdRemaining, a](const ior::MdtestResult& md) {
                                result.appMd[a] = md;
                                --mdRemaining;
                              });
          }
        },
        apps[a].pinnedTargets);
  }
  fluid.run();
  BEESIM_ASSERT(remaining == 0, "a concurrent application did not complete");
  BEESIM_ASSERT(mdRemaining == 0, "a concurrent mdtest phase did not complete");
  if (base.mdtest) {
    result.mdActive = true;
    result.md = ior::aggregateMdtest(result.appMd);
  }
  if (rebalance) {
    rebalance->cancel();
    result.rebalanceActive = true;
    result.rebalance = rebalance->stats();
  }
  if (health) {
    result.healthActive = true;
    result.health = health->stats();
  }
  if (base.fs.hedge.enabled) {
    result.hedgeActive = true;
    result.hedge = fs.hedgeStats();
  }
  if (injector) result.injected = injector->stats();
  if (qosManager) {
    result.qosActive = true;
    result.qos = qosManager->stats();
    // An app violates its SLO when it achieved less than tolerance * sloRate
    // while it ran; zero-demand apps cannot violate.
    for (std::size_t a = 0; a < apps.size(); ++a) {
      if (result.apps[a].totalBytes == 0) continue;
      const auto slo = qos::sloRate(qosManager->appSpec(a));
      if (result.apps[a].bandwidth < base.qos.sloTolerance * slo) {
        ++result.qos.sloViolations;
      }
    }
  }

  result.aggregateBandwidth = aggregateBandwidth(result.apps);

  // Sharing statistics.
  std::map<std::size_t, int> owners;
  for (const auto& app : result.apps) {
    for (const auto target : app.targetsUsed) ++owners[target];
  }
  result.distinctTargets = owners.size();
  result.sharedTargets = static_cast<std::size_t>(
      std::count_if(owners.begin(), owners.end(), [](const auto& kv) { return kv.second >= 2; }));
  return result;
}

}  // namespace beesim::harness
