#include "harness/concurrent.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "sim/fluid.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace beesim::harness {

util::MiBps aggregateBandwidth(const std::vector<ior::IorResult>& apps) {
  BEESIM_ASSERT(!apps.empty(), "aggregate bandwidth of zero applications");
  util::Bytes totalBytes = 0;
  util::Seconds earliestStart = apps.front().start;
  util::Seconds latestEnd = apps.front().end;
  for (const auto& app : apps) {
    totalBytes += app.totalBytes;
    earliestStart = std::min(earliestStart, app.start);
    latestEnd = std::max(latestEnd, app.end);
  }
  return util::bandwidth(totalBytes, latestEnd - earliestStart);
}

ConcurrentResult runConcurrent(const RunConfig& base, const std::vector<AppSpec>& apps,
                               std::uint64_t seed) {
  BEESIM_ASSERT(!apps.empty(), "concurrent experiment needs >= 1 application");

  // Node sets must be pairwise disjoint (the paper's setup: applications do
  // not share compute nodes).
  std::set<std::size_t> seenNodes;
  for (const auto& app : apps) {
    for (const auto node : app.job.nodeIds) {
      if (!seenNodes.insert(node).second) {
        throw util::ConfigError("concurrent applications must not share compute nodes");
      }
    }
  }

  util::Rng rng(seed);
  beegfs::EnvironmentFactors env;
  env.network = rng.logNormalMedian(1.0, base.noise.networkSigmaLog);
  env.storage = rng.logNormalMedian(1.0, base.noise.storageSigmaLog);

  sim::FluidSimulator fluid;
  beegfs::Deployment deployment(fluid, base.cluster, base.fs, rng.split(), env);
  beegfs::FileSystem fs(deployment, rng.split());

  // Same contract as runOnce: the controller only exists when enabled, so
  // default concurrent experiments stay bitwise identical.
  std::optional<control::RebalanceController> rebalance;
  if (base.rebalance.enabled) rebalance.emplace(fs, base.rebalance);

  ConcurrentResult result;
  result.seed = seed;
  result.environment = env;
  result.apps.resize(apps.size());

  std::size_t remaining = apps.size();
  for (std::size_t a = 0; a < apps.size(); ++a) {
    // Distinct file names so the N-1 files do not collide.
    auto options = apps[a].ior;
    options.testFile += ".app" + std::to_string(a);
    ior::launchIor(
        fs, apps[a].job, options, base.startAt + apps[a].startOffset,
        [&result, &remaining, &rebalance, a](const ior::IorResult& r) {
          result.apps[a] = r;
          // Disarm once the *last* application completes: the controller
          // keeps serving the survivors of a staggered schedule.
          if (--remaining == 0 && rebalance) rebalance->disarm();
        },
        apps[a].pinnedTargets);
  }
  fluid.run();
  BEESIM_ASSERT(remaining == 0, "a concurrent application did not complete");
  if (rebalance) {
    rebalance->cancel();
    result.rebalanceActive = true;
    result.rebalance = rebalance->stats();
  }

  result.aggregateBandwidth = aggregateBandwidth(result.apps);

  // Sharing statistics.
  std::map<std::size_t, int> owners;
  for (const auto& app : result.apps) {
    for (const auto target : app.targetsUsed) ++owners[target];
  }
  result.distinctTargets = owners.size();
  result.sharedTargets = static_cast<std::size_t>(
      std::count_if(owners.begin(), owners.end(), [](const auto& kv) { return kv.second >= 2; }));
  return result;
}

}  // namespace beesim::harness
