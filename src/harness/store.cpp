#include "harness/store.hpp"

#include <set>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::harness {

namespace {

bool matches(const ResultRow& row, const std::map<std::string, std::string>& where) {
  for (const auto& [factor, value] : where) {
    const auto it = row.factors.find(factor);
    if (it == row.factors.end() || it->second != value) return false;
  }
  return true;
}

}  // namespace

void ResultStore::add(ResultRow row) { rows_.push_back(std::move(row)); }

std::vector<double> ResultStore::metric(const std::string& metric,
                                        const std::map<std::string, std::string>& where) const {
  std::vector<double> values;
  for (const auto& row : rows_) {
    if (!matches(row, where)) continue;
    const auto it = row.metrics.find(metric);
    BEESIM_ASSERT(it != row.metrics.end(), "row lacks metric '" + metric + "'");
    values.push_back(it->second);
  }
  return values;
}

std::map<std::string, std::vector<double>> ResultStore::groupBy(
    const std::string& factor, const std::string& metric,
    const std::map<std::string, std::string>& where) const {
  std::map<std::string, std::vector<double>> groups;
  for (const auto& row : rows_) {
    if (!matches(row, where)) continue;
    const auto fit = row.factors.find(factor);
    if (fit == row.factors.end()) continue;
    const auto mit = row.metrics.find(metric);
    BEESIM_ASSERT(mit != row.metrics.end(), "row lacks metric '" + metric + "'");
    groups[fit->second].push_back(mit->second);
  }
  return groups;
}

void ResultStore::writeCsv(const std::filesystem::path& path) const {
  std::set<std::string> factorNames;
  std::set<std::string> metricNames;
  for (const auto& row : rows_) {
    for (const auto& [k, _] : row.factors) factorNames.insert(k);
    for (const auto& [k, _] : row.metrics) metricNames.insert(k);
  }
  std::vector<std::string> header(factorNames.begin(), factorNames.end());
  header.insert(header.end(), metricNames.begin(), metricNames.end());

  util::CsvWriter writer(path, header);
  for (const auto& row : rows_) {
    std::vector<std::string> fields;
    fields.reserve(header.size());
    for (const auto& name : factorNames) {
      const auto it = row.factors.find(name);
      fields.push_back(it != row.factors.end() ? it->second : "");
    }
    for (const auto& name : metricNames) {
      const auto it = row.metrics.find(name);
      fields.push_back(it != row.metrics.end() ? util::fmt(it->second, 6) : "");
    }
    writer.writeRow(fields);
  }
}

}  // namespace beesim::harness
