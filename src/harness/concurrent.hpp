// Concurrent-application experiments (Section IV-D).
//
// Several IOR applications run at once on one deployment, on disjoint node
// sets (as in the paper), each with its own stripe configuration or pinned
// allocation.  The aggregate bandwidth follows the paper's Equation 1:
//
//              sum_i vol_i
//   ------------------------------------
//   max_i(end_i)  -  min_i(start_i)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "beegfs/params.hpp"
#include "harness/run.hpp"
#include "ior/options.hpp"
#include "ior/runner.hpp"
#include "topology/cluster.hpp"

namespace beesim::harness {

/// One application of a concurrent experiment.
struct AppSpec {
  ior::IorJob job;
  ior::IorOptions ior;
  std::optional<std::vector<std::size_t>> pinnedTargets;
  /// Start offset relative to the experiment start (0 = simultaneous).
  /// Must be finite and >= 0.
  util::Seconds startOffset = 0.0;
  /// Per-application QoS reservation (rate/burst/SLO); unset apps fall back
  /// to base.qos's defaults.  Requires base.qos.enabled.
  std::optional<qos::QosAppSpec> qos;
};

struct ConcurrentResult {
  /// Per-application results, in AppSpec order.
  std::vector<ior::IorResult> apps;
  /// Paper Equation 1.
  util::MiBps aggregateBandwidth = 0.0;
  /// Number of distinct targets used by >= 2 applications.
  std::size_t sharedTargets = 0;
  /// Union of targets across applications.
  std::size_t distinctTargets = 0;
  beegfs::EnvironmentFactors environment;
  std::uint64_t seed = 0;
  /// True when the rebalance controller ran for this experiment.
  bool rebalanceActive = false;
  /// What the controller did (zeroed when !rebalanceActive).
  control::RebalanceStats rebalance;
  /// True when a fault plan was armed (base.faults non-empty).
  bool faultsActive = false;
  /// What the injector fired (zeroed when !faultsActive).
  faults::InjectorStats injected;
  /// True when the gray-failure health monitor ran for this experiment.
  bool healthActive = false;
  /// What the monitor observed/did (zeroed when !healthActive).
  control::HealthStats health;
  /// True when hedged writes were enabled (base.fs.hedge.enabled).
  bool hedgeActive = false;
  /// Experiment-wide hedging accounting (zeroed when !hedgeActive).
  beegfs::HedgeStats hedge;
  /// True when every application ran an mdtest metadata phase
  /// (base.mdtest set; phases contend on the shared MDTs).
  bool mdActive = false;
  /// Per-application metadata results, in AppSpec order (empty when
  /// !mdActive).
  std::vector<ior::MdtestResult> appMd;
  /// Experiment-wide metadata view (aggregateMdtest over appMd).
  ior::MdtestResult md;
  /// True when the QoS manager ran for this experiment.
  bool qosActive = false;
  /// Aggregated QoS accounting; sloViolations counts apps whose achieved
  /// bandwidth fell below sloTolerance * sloRate (zeroed when !qosActive).
  qos::QosStats qos;
};

/// Run all applications concurrently on one deployment built from
/// `base.cluster`/`base.fs`/`base.noise` (base.job/base.ior are ignored).
/// Node sets must be pairwise disjoint.  Deterministic given (inputs, seed).
ConcurrentResult runConcurrent(const RunConfig& base, const std::vector<AppSpec>& apps,
                               std::uint64_t seed);

/// Paper Equation 1 over per-app (start, end, bytes) triples.  A zero-length
/// window (every app had zero duration, e.g. all-zero-byte jobs) yields 0.
util::MiBps aggregateBandwidth(const std::vector<ior::IorResult>& apps);

}  // namespace beesim::harness
