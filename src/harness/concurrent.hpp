// Concurrent-application experiments (Section IV-D).
//
// Several IOR applications run at once on one deployment, on disjoint node
// sets (as in the paper), each with its own stripe configuration or pinned
// allocation.  The aggregate bandwidth follows the paper's Equation 1:
//
//              sum_i vol_i
//   ------------------------------------
//   max_i(end_i)  -  min_i(start_i)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "beegfs/params.hpp"
#include "harness/run.hpp"
#include "ior/options.hpp"
#include "ior/runner.hpp"
#include "topology/cluster.hpp"

namespace beesim::harness {

/// One application of a concurrent experiment.
struct AppSpec {
  ior::IorJob job;
  ior::IorOptions ior;
  std::optional<std::vector<std::size_t>> pinnedTargets;
  /// Start offset relative to the experiment start (0 = simultaneous).
  util::Seconds startOffset = 0.0;
};

struct ConcurrentResult {
  /// Per-application results, in AppSpec order.
  std::vector<ior::IorResult> apps;
  /// Paper Equation 1.
  util::MiBps aggregateBandwidth = 0.0;
  /// Number of distinct targets used by >= 2 applications.
  std::size_t sharedTargets = 0;
  /// Union of targets across applications.
  std::size_t distinctTargets = 0;
  beegfs::EnvironmentFactors environment;
  std::uint64_t seed = 0;
  /// True when the rebalance controller ran for this experiment.
  bool rebalanceActive = false;
  /// What the controller did (zeroed when !rebalanceActive).
  control::RebalanceStats rebalance;
};

/// Run all applications concurrently on one deployment built from
/// `base.cluster`/`base.fs`/`base.noise` (base.job/base.ior are ignored).
/// Node sets must be pairwise disjoint.  Deterministic given (inputs, seed).
ConcurrentResult runConcurrent(const RunConfig& base, const std::vector<AppSpec>& apps,
                               std::uint64_t seed);

/// Paper Equation 1 over per-app (start, end, bytes) triples.
util::MiBps aggregateBandwidth(const std::vector<ior::IorResult>& apps);

}  // namespace beesim::harness
