#include "harness/interference.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace beesim::harness {

namespace {

/// Upper bound on concurrently outstanding bursts.  Real background clients
/// are throttled by their own stacks; without a cap, a saturated system
/// would accumulate flows without bound.
constexpr std::size_t kMaxOutstandingBursts = 16;

struct InjectorState {
  beegfs::FileSystem* fs = nullptr;
  InterferenceSpec spec;
  util::Rng rng;
  std::shared_ptr<InterferenceStats> stats;
  std::size_t nextTarget = 0;
  std::size_t outstanding = 0;

  explicit InjectorState(util::Rng r) : rng(r) {}
};

void scheduleNextBurst(const std::shared_ptr<InjectorState>& state, util::Seconds at) {
  if (at >= state->spec.end) return;
  auto& deployment = state->fs->deployment();
  deployment.fluid().engine().schedule(at, [state] {
    auto& deployment = state->fs->deployment();
    auto& fluid = deployment.fluid();
    const auto now = fluid.now();
    if (now >= state->spec.end) return;

    // Back-pressure: when too many bursts are still draining, skip this one.
    if (state->outstanding < kMaxOutstandingBursts) {
      const auto bytes = static_cast<util::Bytes>(std::max(
          1.0, state->rng.exponential(static_cast<double>(state->spec.meanBurstBytes))));
      state->nextTarget = (state->nextTarget + 1) % state->spec.targets.size();
      const auto target = state->spec.targets[state->nextTarget];

      ++state->stats->burstsIssued;
      state->stats->bytesIssued += bytes;
      ++state->outstanding;

      // One fluid flow per burst, straight to the chosen target.
      fluid.startFlow(sim::FlowSpec{
          .path = deployment.writePath(state->spec.node, target),
          .bytes = bytes,
          .queueWeight = state->spec.queueWeight,
          .rateCap = 0.0,
          .onComplete = [state](const sim::FlowStats&) { --state->outstanding; }});
    }

    scheduleNextBurst(state, now + state->rng.exponential(state->spec.meanIdle));
  });
}

}  // namespace

std::shared_ptr<InterferenceStats> injectInterference(beegfs::FileSystem& fs,
                                                      const InterferenceSpec& spec,
                                                      util::Rng rng) {
  BEESIM_ASSERT(!spec.targets.empty(), "interference needs at least one target");
  BEESIM_ASSERT(spec.node < fs.deployment().cluster().nodes.size(),
                "interference node out of range");
  BEESIM_ASSERT(spec.end > spec.start, "interference window must be non-empty");

  auto state = std::make_shared<InjectorState>(rng);
  state->fs = &fs;
  state->spec = spec;
  state->stats = std::make_shared<InterferenceStats>();

  scheduleNextBurst(state, spec.start + state->rng.exponential(spec.meanIdle));
  return state->stats;
}

}  // namespace beesim::harness
