// Background interference injection.
//
// The paper's protocol is explicitly designed to cope with I/O from other
// users of the production machine (Section III-C).  This injector plays the
// role of those other users: it emits bursts of write traffic from a chosen
// compute node to chosen targets, with exponentially distributed burst sizes
// and idle gaps, for a bounded virtual-time window.  Tests and ablations use
// it to check that the protocol's conclusions are robust to interference.
#pragma once

#include <cstdint>
#include <vector>

#include "beegfs/filesystem.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::harness {

struct InterferenceSpec {
  /// Compute node the background traffic originates from.
  std::size_t node = 0;
  /// Flat target indices the bursts write to (round-robin across bursts).
  std::vector<std::size_t> targets;
  /// Mean burst size (exponential).
  util::Bytes meanBurstBytes = 2ULL * 1024 * 1024 * 1024;  // 2 GiB
  /// Mean idle gap between bursts (exponential).
  util::Seconds meanIdle = 5.0;
  /// Injection window [start, end) in virtual time.
  util::Seconds start = 0.0;
  util::Seconds end = 120.0;
  /// Queue weight of each burst flow.
  double queueWeight = 4.0;
};

/// Statistics of what was injected (inspectable after the simulation ran).
struct InterferenceStats {
  std::size_t burstsIssued = 0;
  util::Bytes bytesIssued = 0;
};

/// Schedule the interference on `fs`'s simulator.  The returned stats object
/// outlives the call and is filled in as the simulation runs; keep it alive
/// until the simulation completes.
std::shared_ptr<InterferenceStats> injectInterference(beegfs::FileSystem& fs,
                                                      const InterferenceSpec& spec,
                                                      util::Rng rng);

}  // namespace beesim::harness
