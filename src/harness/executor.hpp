// Deterministic parallel execution primitives for the harness.
//
// Every repetition of a campaign is an independent, seed-isolated simulation
// (runOnce builds its own FluidSimulator/Deployment/FileSystem and derives
// all randomness from the planned per-run seed), so a campaign parallelizes
// across worker threads without any sharing.  The contract everything here
// upholds: the observable result is *bitwise identical* to serial execution
// -- work is distributed dynamically, but results are committed strictly in
// plan/index order on the calling thread, so ResultStores, annotator state
// and reductions never see thread scheduling.
//
// No external dependencies: std::thread plus an atomic work index.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace beesim::harness {

/// Worker-thread count used when the caller does not specify one: the
/// BEESIM_JOBS environment variable if set (0 = all hardware threads),
/// otherwise 1 (serial, the legacy behaviour).
std::size_t defaultJobs();

/// Resolve a jobs request: 0 means "all hardware threads", anything else is
/// taken literally.
std::size_t resolveJobs(std::size_t jobs);

/// Progress snapshot delivered while a campaign executes.  Counts advance in
/// commit (= plan) order; timings are wall clock.
struct CampaignProgress {
  std::size_t completed = 0;       ///< runs committed so far
  std::size_t total = 0;           ///< planned runs
  double elapsedSeconds = 0.0;     ///< wall clock since the campaign started
  double etaSeconds = 0.0;         ///< projected remaining wall clock
  double slowestRunSeconds = 0.0;  ///< wall time of the slowest single run so far
  std::string slowestConfig;       ///< factor labels of that slowest run
};

/// Progress callback.  Always invoked from the committing (calling) thread,
/// never concurrently; the final call (completed == total) always fires.
using ProgressFn = std::function<void(const CampaignProgress&)>;

/// Aggregate profiling counters of a whole campaign, accumulated in commit
/// order (so the totals are independent of --jobs, except for the wall-clock
/// fields, which measure the host).
struct CampaignTotals {
  std::size_t runs = 0;
  /// Sum of per-run solver resolves / iterations.
  std::size_t resolves = 0;
  std::size_t solverIterations = 0;
  /// Sum and max of per-run wall time (sum > campaign wall when parallel).
  double runWallSeconds = 0.0;
  double maxRunWallSeconds = 0.0;
  /// Sum of wall time inside the rate solver (0 unless runs profiled).
  double solveSeconds = 0.0;
  /// End-to-end wall time of executeCampaign.
  double campaignWallSeconds = 0.0;
};

/// Execution knobs threaded from --jobs / BEESIM_JOBS.
struct ExecutorOptions {
  /// Worker threads: 1 = the exact legacy serial path (no pool, no buffering),
  /// 0 = all hardware threads, N = a pool of N workers.
  std::size_t jobs = defaultJobs();
  /// Optional progress reporting (see ProgressFn).  nullptr disables.
  ProgressFn onProgress;
  /// Minimum wall-clock spacing between onProgress calls.
  double progressIntervalSeconds = 0.5;
  /// When non-null, filled with the campaign's aggregate profiling counters
  /// (overwritten, not accumulated across campaigns).
  CampaignTotals* totals = nullptr;
};

/// Standard reporter: one continuously-rewritten status line on stderr with
/// runs completed, ETA and the slowest configuration seen so far.
ProgressFn stderrProgress(const std::string& label);

/// Run body(i) for every i in [0, count) on up to `jobs` threads (0 = all
/// hardware threads; <=1 runs inline).  Indices are handed out dynamically;
/// the execution order is unspecified, so body(i) must depend only on i.
/// The first exception thrown by any body is rethrown on the calling thread
/// once all workers have stopped.
void parallelFor(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body);

/// Deterministic parallel map: out[i] = fn(i).  The output is independent of
/// `jobs` because each slot is written exactly once from its own index, so a
/// serial fold over the returned vector reproduces the jobs=1 result exactly.
template <typename T, typename Fn>
std::vector<T> parallelMap(std::size_t count, std::size_t jobs, Fn&& fn) {
  std::vector<T> out(count);
  parallelFor(count, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace beesim::harness
