#include "harness/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.hpp"

namespace beesim::harness {

std::size_t resolveJobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? static_cast<std::size_t>(hw) : 1;
}

std::size_t defaultJobs() {
  if (const char* env = std::getenv("BEESIM_JOBS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 0) {
      return resolveJobs(static_cast<std::size_t>(value));
    }
  }
  return 1;
}

ProgressFn stderrProgress(const std::string& label) {
  return [label](const CampaignProgress& p) {
    std::fprintf(stderr, "\r[%s] %zu/%zu runs  %.1fs elapsed  eta %.0fs  slowest %s (%.2fs)%s",
                 label.c_str(), p.completed, p.total, p.elapsedSeconds, p.etaSeconds,
                 p.slowestConfig.empty() ? "-" : p.slowestConfig.c_str(),
                 p.slowestRunSeconds, p.completed == p.total ? "\n" : "");
    std::fflush(stderr);
  };
}

void parallelFor(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body) {
  BEESIM_ASSERT(body != nullptr, "parallelFor needs a body");
  if (count == 0) return;
  const std::size_t workers = std::min(resolveJobs(jobs), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex errorMutex;
  std::exception_ptr error;

  const auto work = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(errorMutex);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (auto& thread : pool) thread.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace beesim::harness
