// Per-application token bucket, refilled in virtual time (DESIGN.md §2.8).
//
// One bucket per application enforces its reserved write bandwidth at the
// clients: a chunk is admitted when the bucket holds `min(bytes, burst)`
// tokens (spend-ahead: jumbo chunks larger than the burst may drive the
// balance negative rather than deadlock, and the debt throttles subsequent
// chunks).  Refill is lazy -- `refill(now)` accrues `rate * (now - last)`
// tokens with NO cap, and `takeOverflow()` extracts whatever exceeds the
// burst depth.  The split lets the QosManager decide what overflow means:
// donated to the borrow pool when borrowing is on, evaporated otherwise.
// The bucket itself draws no randomness and never reads the host clock.
#pragma once

#include "util/units.hpp"

namespace beesim::qos {

class TokenBucket {
 public:
  /// Admission slack (bytes): absorbs the rounding of `deficit / rate`
  /// wake-up arithmetic so a scheduled wake never misses by one ulp.
  static constexpr double kSlack = 1e-6;

  /// `rate` is the sustained refill in MiB/s, `burst` the bucket depth in
  /// bytes.  Both must be positive and finite.  The bucket starts full.
  TokenBucket(util::MiBps rate, util::Bytes burst);

  util::MiBps rate() const { return rate_; }
  util::Bytes burst() const { return burst_; }
  /// Refill speed in bytes per (virtual) second.
  double bytesPerSecond() const { return rate_ * static_cast<double>(util::kMiB); }

  /// Current balance in bytes.  May exceed `burst` between refill() and
  /// takeOverflow(), and may be negative after a spend-ahead.
  double tokens() const { return tokens_; }

  /// Accrue tokens for the wall of virtual time since the last refill.
  /// Monotonic `now` required (equal timestamps are no-ops).
  void refill(util::Seconds now);

  /// Extract and return the balance above `burst` (0 if none).  After this
  /// call tokens() <= burst holds again.
  double takeOverflow();

  /// Tokens a chunk of `bytes` needs before it may start: the full chunk,
  /// capped at the bucket depth (spend-ahead for jumbo chunks).
  double admissionNeed(util::Bytes bytes) const;

  /// Can a chunk of `bytes` start right now (within kSlack)?
  bool admissible(util::Bytes bytes) const {
    return tokens_ + kSlack >= admissionNeed(bytes);
  }

  /// Virtual seconds of refill needed until `bytes` becomes admissible
  /// (0 if already admissible).
  util::Seconds timeUntilAdmissible(util::Bytes bytes) const;

  /// Spend tokens (admission charge).  The balance may go negative.
  void consume(double bytes) { tokens_ -= bytes; }

  /// Add tokens (a borrow or reclaim landing in this bucket).
  void credit(double bytes) { tokens_ += bytes; }

 private:
  util::MiBps rate_;
  util::Bytes burst_;
  double tokens_;
  util::Seconds lastRefill_ = 0.0;
};

}  // namespace beesim::qos
