// Decentralized token lending between applications (DESIGN.md §2.8).
//
// AdapTBF-style adaptive borrowing: an application whose bucket is full
// donates its refill overflow into a shared spare pool instead of letting
// it evaporate; an over-subscribed application may then draw those spares
// on top of its own reservation.  The ledger remembers *whose* tokens sit
// in the pool, so reclaim-on-demand works: a lender that becomes busy again
// takes its own undrawn contribution back before anyone else can spend it.
//
// Bounds: each lender's outstanding contribution is capped (the QosManager
// passes its burst), so the pool never exceeds the sum of bucket depths --
// borrowing redistributes reserved-but-idle bandwidth, it cannot mint
// capacity.  Draws deplete lenders in ascending application order; with no
// randomness anywhere the whole protocol is a pure function of the event
// sequence, preserving the harness's --jobs invariance.
#pragma once

#include <cstddef>
#include <vector>

namespace beesim::qos {

class BorrowLedger {
 public:
  /// Register one more application; returns its ledger id (dense, 0-based).
  std::size_t addApp() {
    contribution_.push_back(0.0);
    return contribution_.size() - 1;
  }

  std::size_t appCount() const { return contribution_.size(); }

  /// Donate `bytes` of refill overflow from `app` into the pool.  The app's
  /// outstanding contribution is capped at `cap`; the excess evaporates
  /// (exactly what an uncapped bucket would have discarded).  Returns the
  /// amount actually pooled.
  double donate(std::size_t app, double bytes, double cap);

  /// Draw up to `bytes` for `app` from OTHER applications' contributions,
  /// depleting lenders in ascending id order.  Returns the amount drawn.
  double draw(std::size_t app, double bytes);

  /// Take back up to `bytes` of `app`'s own undrawn contribution.  Returns
  /// the amount reclaimed.
  double reclaim(std::size_t app, double bytes);

  /// Total spare tokens currently pooled (bytes).
  double poolBytes() const;

  /// `app`'s undrawn contribution currently in the pool (bytes).
  double contribution(std::size_t app) const { return contribution_.at(app); }

 private:
  /// Undrawn pooled tokens per application; the pool is their sum.
  std::vector<double> contribution_;
};

}  // namespace beesim::qos
