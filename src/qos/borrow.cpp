#include "qos/borrow.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace beesim::qos {

double BorrowLedger::donate(std::size_t app, double bytes, double cap) {
  BEESIM_ASSERT(app < contribution_.size(), "unknown borrow-ledger app");
  BEESIM_ASSERT(bytes >= 0.0 && cap >= 0.0, "negative donation");
  const double room = std::max(0.0, cap - contribution_[app]);
  const double pooled = std::min(bytes, room);
  contribution_[app] += pooled;
  return pooled;
}

double BorrowLedger::draw(std::size_t app, double bytes) {
  BEESIM_ASSERT(app < contribution_.size(), "unknown borrow-ledger app");
  BEESIM_ASSERT(bytes >= 0.0, "negative draw");
  double drawn = 0.0;
  for (std::size_t lender = 0; lender < contribution_.size() && drawn < bytes; ++lender) {
    if (lender == app) continue;
    const double take = std::min(contribution_[lender], bytes - drawn);
    contribution_[lender] -= take;
    drawn += take;
  }
  return drawn;
}

double BorrowLedger::reclaim(std::size_t app, double bytes) {
  BEESIM_ASSERT(app < contribution_.size(), "unknown borrow-ledger app");
  BEESIM_ASSERT(bytes >= 0.0, "negative reclaim");
  const double take = std::min(contribution_[app], bytes);
  contribution_[app] -= take;
  return take;
}

double BorrowLedger::poolBytes() const {
  double total = 0.0;
  for (const double c : contribution_) total += c;
  return total;
}

}  // namespace beesim::qos
