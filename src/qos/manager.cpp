#include "qos/manager.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace beesim::qos {

namespace {

/// Floor for the re-arm delay: a wake that finds its head chunk still short
/// by a sub-slack amount must not busy-loop at the same timestamp.
constexpr util::Seconds kMinWake = 1e-6;

}  // namespace

QosAppSpec makeAppSpec(const QosPolicy& policy) {
  QosAppSpec spec;
  spec.rate = policy.rate;
  spec.burst = policy.burst;
  return spec;
}

util::MiBps sloRate(const QosAppSpec& spec) {
  return spec.sloRate > 0.0 ? spec.sloRate : spec.rate;
}

QosManager::QosManager(sim::FluidSimulator& fluid, const QosPolicy& policy)
    : fluid_(fluid), policy_(policy) {
  BEESIM_ASSERT(policy.enabled, "QosManager constructed with QoS disabled");
}

std::size_t QosManager::registerApp(const QosAppSpec& spec,
                                    const std::vector<std::size_t>& nodes) {
  QosAppSpec resolved = spec;
  if (!(std::isfinite(resolved.rate)) || resolved.rate <= 0.0) {
    throw util::ConfigError("QoS app rate must be finite and > 0 (MiB/s)");
  }
  if (resolved.burst == 0) {
    // One second of the reserved rate: the conventional default depth.
    resolved.burst = static_cast<util::Bytes>(resolved.rate * static_cast<double>(util::kMiB));
  }
  if (resolved.sloRate < 0.0 || !std::isfinite(resolved.sloRate)) {
    throw util::ConfigError("QoS app SLO rate must be finite and >= 0 (0 = reserved rate)");
  }
  const std::size_t id = apps_.size();
  apps_.push_back(App{resolved, TokenBucket(resolved.rate, resolved.burst), {}, false, {}});
  const std::size_t ledgerId = ledger_.addApp();
  BEESIM_ASSERT(ledgerId == id, "ledger/app id mismatch");
  for (const std::size_t node : nodes) {
    if (node >= nodeApp_.size()) nodeApp_.resize(node + 1, kNoApp);
    if (nodeApp_[node] != kNoApp) {
      throw util::ConfigError("QoS: compute node registered to two applications");
    }
    nodeApp_[node] = id;
  }
  return id;
}

void QosManager::collect(util::Seconds now) {
  for (std::size_t id = 0; id < apps_.size(); ++id) {
    auto& app = apps_[id];
    app.bucket.refill(now);
    const double over = app.bucket.takeOverflow();
    if (over > 0.0 && policy_.borrow) {
      // Idle reservations feed the pool instead of evaporating; the lender
      // can take undrawn spares back on demand (reclaim below).
      ledger_.donate(id, over, static_cast<double>(app.bucket.burst()));
    }
  }
}

bool QosManager::tryAdmit(std::size_t id, util::Bytes bytes, util::Seconds now) {
  collect(now);
  auto& app = apps_[id];
  const double need = app.bucket.admissionNeed(bytes);
  if (!app.bucket.admissible(bytes) && policy_.borrow) {
    // Reclaim-on-demand first: our own pooled spares are still ours.
    double deficit = need - app.bucket.tokens();
    const double reclaimed = ledger_.reclaim(id, deficit);
    if (reclaimed > 0.0) {
      app.bucket.credit(reclaimed);
      app.stats.reclaimed += reclaimed;
      totals_.tokensReclaimed += reclaimed;
    }
    deficit = need - app.bucket.tokens();
    if (deficit > TokenBucket::kSlack) {
      const double drawn = ledger_.draw(id, deficit);
      if (drawn > 0.0) {
        app.bucket.credit(drawn);
        app.stats.borrowed += drawn;
        totals_.tokensBorrowed += drawn;
      }
    }
  }
  if (!app.bucket.admissible(bytes)) return false;
  app.bucket.consume(static_cast<double>(bytes));
  app.stats.issued += static_cast<double>(bytes);
  totals_.tokensIssued += static_cast<double>(bytes);
  return true;
}

bool QosManager::admitChunk(std::size_t node, util::Bytes bytes,
                            std::function<void()> resume) {
  const std::size_t id = node < nodeApp_.size() ? nodeApp_[node] : kNoApp;
  if (id == kNoApp) return true;  // node not under QoS management
  auto& app = apps_[id];
  const util::Seconds now = fluid_.now();
  // FIFO: while older chunks wait, newcomers queue behind them even if the
  // balance would cover them -- no overtaking, and admission order is a pure
  // function of arrival order.
  if (app.waiters.empty() && tryAdmit(id, bytes, now)) return true;
  ++app.stats.deferrals;
  ++totals_.deferrals;
  app.waiters.push_back(Waiter{bytes, std::move(resume), now});
  armWake(id);
  return false;
}

void QosManager::armWake(std::size_t id) {
  auto& app = apps_[id];
  if (app.wakeArmed || app.waiters.empty()) return;
  const util::Seconds wait =
      std::max(kMinWake, app.bucket.timeUntilAdmissible(app.waiters.front().bytes));
  app.wakeArmed = true;
  fluid_.engine().scheduleAfter(wait, [this, id] { wake(id); });
}

void QosManager::wake(std::size_t id) {
  auto& app = apps_[id];
  app.wakeArmed = false;
  const util::Seconds now = fluid_.now();
  while (!app.waiters.empty() && tryAdmit(id, app.waiters.front().bytes, now)) {
    Waiter waiter = std::move(app.waiters.front());
    app.waiters.pop_front();
    app.stats.throttleSeconds += now - waiter.since;
    totals_.throttleSeconds += now - waiter.since;
    // Issues the deferred chunk's flow; runs inside this engine event like
    // any completion callback (may append more waiters re-entrantly).
    if (waiter.resume) waiter.resume();
  }
  armWake(id);
}

}  // namespace beesim::qos
