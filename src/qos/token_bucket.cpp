#include "qos/token_bucket.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace beesim::qos {

TokenBucket::TokenBucket(util::MiBps rate, util::Bytes burst)
    : rate_(rate), burst_(burst), tokens_(static_cast<double>(burst)) {
  BEESIM_ASSERT(std::isfinite(rate) && rate > 0.0, "token bucket rate must be positive");
  BEESIM_ASSERT(burst > 0, "token bucket burst must be positive");
}

void TokenBucket::refill(util::Seconds now) {
  BEESIM_ASSERT(now + kSlack >= lastRefill_, "token bucket refilled backwards in time");
  if (now <= lastRefill_) return;
  tokens_ += bytesPerSecond() * (now - lastRefill_);
  lastRefill_ = now;
}

double TokenBucket::takeOverflow() {
  const double over = tokens_ - static_cast<double>(burst_);
  if (over <= 0.0) return 0.0;
  tokens_ = static_cast<double>(burst_);
  return over;
}

double TokenBucket::admissionNeed(util::Bytes bytes) const {
  return std::min(static_cast<double>(bytes), static_cast<double>(burst_));
}

util::Seconds TokenBucket::timeUntilAdmissible(util::Bytes bytes) const {
  const double deficit = admissionNeed(bytes) - tokens_;
  if (deficit <= 0.0) return 0.0;
  return deficit / bytesPerSecond();
}

}  // namespace beesim::qos
