// Multi-tenant QoS: per-application write-bandwidth control (DESIGN.md §2.8).
//
// Each registered application owns a TokenBucket (rate + burst, refilled in
// virtual time).  The FileSystem asks the manager to admit every *first
// attempt* of a write chunk; a chunk whose bucket lacks tokens is deferred
// (FIFO per app) and resumed by an engine event once the bucket refilled --
// the chunk's flow is simply issued later, so the fluid core's queue-weight
// fairness between admitted flows is untouched.  Retries and failovers
// re-issue chunks whose bytes were already paid for and are never charged
// again (the retry ladder cannot double-spend).
//
// With borrowing enabled (QosPolicy::borrow) the buckets are coupled through
// a BorrowLedger: refill overflow of idle apps is pooled, deficient apps
// first reclaim their own pooled spares and then draw others' (AdapTBF).
//
// Determinism contract: the manager draws no randomness and never reads the
// host clock; admissions and wakes are pure functions of the (seeded) event
// sequence, so QoS-enabled campaigns stay --jobs-invariant, and with
// QosPolicy::enabled == false the harness never constructs a manager, so
// default runs keep their exact legacy bytes (golden CSVs byte-identical).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "qos/borrow.hpp"
#include "qos/token_bucket.hpp"
#include "sim/fluid.hpp"
#include "util/units.hpp"

namespace beesim::qos {

/// Per-application QoS parameters.
struct QosAppSpec {
  /// Reserved (sustained) write bandwidth, MiB/s.  Must be > 0.
  util::MiBps rate = 0.0;
  /// Bucket depth in bytes; 0 defaults to one second at `rate`.
  util::Bytes burst = 0;
  /// SLO the app is judged against (MiB/s); 0 defaults to `rate`.
  util::MiBps sloRate = 0.0;
};

/// Run-level QoS policy (CLI: --qos*).
struct QosPolicy {
  /// Master switch; when false the harness does not even construct the
  /// manager, so untouched runs stay bitwise-identical.
  bool enabled = false;
  /// Default per-application reserved rate (MiB/s) for apps without an
  /// explicit QosAppSpec.
  util::MiBps rate = 0.0;
  /// Default bucket depth in bytes (0 = one second at `rate`).
  util::Bytes burst = 0;
  /// Allow under-subscribed apps to lend unused tokens to over-subscribed
  /// ones (BorrowLedger).
  bool borrow = false;
  /// An app violates its SLO when achieved < sloTolerance * sloRate.
  double sloTolerance = 0.95;
};

/// Default app spec derived from the policy (burst defaulted to one second
/// of the reserved rate).
QosAppSpec makeAppSpec(const QosPolicy& policy);

/// SLO rate an app is judged against (spec.sloRate, falling back to the
/// reserved rate).
util::MiBps sloRate(const QosAppSpec& spec);

/// What the QoS layer did during a run (exported as qos_* columns).
struct QosStats {
  double tokensIssued = 0.0;     ///< bytes admitted through the buckets
  double tokensBorrowed = 0.0;   ///< bytes drawn from other apps' spares
  double tokensReclaimed = 0.0;  ///< own pooled bytes taken back on demand
  std::size_t deferrals = 0;     ///< chunks that had to wait for tokens
  util::Seconds throttleSeconds = 0.0;  ///< summed per-chunk waiting time
  std::size_t sloViolations = 0;        ///< apps below tolerance * sloRate
};

class QosManager {
 public:
  /// `policy.enabled` must be true (the harness only constructs a manager
  /// for QoS-enabled runs).
  QosManager(sim::FluidSimulator& fluid, const QosPolicy& policy);

  QosManager(const QosManager&) = delete;
  QosManager& operator=(const QosManager&) = delete;

  const QosPolicy& policy() const { return policy_; }

  /// Register one application covering the given compute nodes.  Throws
  /// ConfigError on a non-positive/non-finite rate, or if a node is already
  /// owned by another app.  Returns the app id (dense, 0-based).
  std::size_t registerApp(const QosAppSpec& spec, const std::vector<std::size_t>& nodes);

  std::size_t appCount() const { return apps_.size(); }
  const QosAppSpec& appSpec(std::size_t app) const { return apps_.at(app).spec; }

  /// FileSystem hook: admit a write chunk of `bytes` issued from compute
  /// node `node`.  Returns true when the chunk may start immediately.
  /// Returns false when it was deferred; `resume` then fires from an engine
  /// event once the tokens accrued (the caller must issue the chunk there
  /// WITHOUT asking for admission again -- the tokens are spent on resume).
  /// Chunks from nodes no app registered pass through unmanaged.
  bool admitChunk(std::size_t node, util::Bytes bytes, std::function<void()> resume);

  /// Aggregated run totals (sloViolations is filled by the harness, which
  /// knows the achieved per-app bandwidths; see countSloViolation).
  const QosStats& stats() const { return totals_; }
  QosStats& stats() { return totals_; }

  /// Per-app accounting (inspectable by tests and the harness).
  struct AppStats {
    double issued = 0.0;
    double borrowed = 0.0;
    double reclaimed = 0.0;
    std::size_t deferrals = 0;
    util::Seconds throttleSeconds = 0.0;
  };
  const AppStats& appStats(std::size_t app) const { return apps_.at(app).stats; }

  /// Chunks of `app` currently waiting for tokens (test hook).
  std::size_t waitingChunks(std::size_t app) const { return apps_.at(app).waiters.size(); }

  /// Current token balance of `app`'s bucket (test hook).
  double tokens(std::size_t app) const { return apps_.at(app).bucket.tokens(); }

  /// Spare tokens currently pooled across all lenders (test hook).
  double poolBytes() const { return ledger_.poolBytes(); }

 private:
  struct Waiter {
    util::Bytes bytes = 0;
    std::function<void()> resume;
    util::Seconds since = 0.0;
  };
  struct App {
    QosAppSpec spec;
    TokenBucket bucket;
    std::deque<Waiter> waiters;
    bool wakeArmed = false;
    AppStats stats;
  };

  /// Refill every bucket to `now`; with borrowing on, pool the overflow
  /// (per-lender contribution capped at its burst).  O(apps) -- fine for
  /// the 10-100-tenant scale the bench sweeps.
  void collect(util::Seconds now);
  /// Charge `bytes` against `app`'s bucket, borrowing/reclaiming as allowed.
  /// True when the chunk was admitted (tokens spent).
  bool tryAdmit(std::size_t app, util::Bytes bytes, util::Seconds now);
  /// Schedule the next wake for `app`'s queue head (no-op if armed/empty).
  void armWake(std::size_t app);
  /// Drain `app`'s waiter queue while tokens last, then re-arm.
  void wake(std::size_t app);

  sim::FluidSimulator& fluid_;
  QosPolicy policy_;
  std::vector<App> apps_;
  /// node id -> app id (kNoApp = unmanaged).
  std::vector<std::size_t> nodeApp_;
  BorrowLedger ledger_;
  QosStats totals_;

  static constexpr std::size_t kNoApp = static_cast<std::size_t>(-1);
};

}  // namespace beesim::qos
