// Flow tracing and resource utilization accounting.
//
// A FlowTracer observes a FluidSimulator and produces two artefacts:
//
//   * an event log (flow start / rate change / completion) exportable as
//     JSONL -- one JSON object per line, loadable into pandas or jq for
//     post-mortem timeline analysis of a run;
//   * per-resource utilization: bytes carried and busy time, integrated
//     from the piecewise-constant rate vector.  Because every flow crosses
//     its bottleneck resource, these integrals give exact link/OST/OSS
//     traffic decompositions ("how much of the run went through server 1's
//     link?") that the bandwidth summary alone cannot answer.
//
// The tracer is exact, not sampled: it banks rate * dt on every re-solve.
#pragma once

#include <filesystem>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sim/fluid.hpp"

namespace beesim::sim {

/// One recorded event (kept binary-compact; rendered to JSON on export).
struct TraceEvent {
  enum class Kind { kStart, kRates, kComplete };
  Kind kind = Kind::kStart;
  SimTime time = 0.0;
  std::uint64_t flow = 0;      // kStart/kComplete
  util::Bytes bytes = 0;       // kStart: size; kComplete: moved
  util::MiBps meanRate = 0.0;  // kComplete
  std::size_t activeFlows = 0; // kRates
  util::MiBps totalRate = 0.0; // kRates: sum over flows
};

/// Aggregated per-resource counters.
struct ResourceUsage {
  std::string name;
  /// Total bytes carried (sum of crossing flows' rate * dt).
  double mib = 0.0;
  /// Virtual time with at least one active flow crossing the resource.
  util::Seconds busyTime = 0.0;
  /// Peak aggregate rate observed.
  util::MiBps peakRate = 0.0;
};

class FlowTracer final : public FluidObserver {
 public:
  /// Attaches to `fluid` (calls setObserver(this)); detaches on destruction.
  explicit FlowTracer(FluidSimulator& fluid);
  ~FlowTracer() override;

  FlowTracer(const FlowTracer&) = delete;
  FlowTracer& operator=(const FlowTracer&) = delete;

  // FluidObserver:
  void onFlowStarted(FlowId id, std::span<const ResourceIndex> path, util::Bytes bytes,
                     SimTime at) override;
  void onRatesSolved(SimTime at, std::span<const FlowId> ids,
                     std::span<const util::MiBps> rates, std::size_t activeFlows) override;
  void onFlowCompleted(const FlowStats& stats) override;

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Per-resource usage, in resource-index order.
  std::vector<ResourceUsage> resourceUsage() const;

  /// Total MiB carried by one resource.
  double resourceMiB(ResourceIndex resource) const;

  /// Export the event log as JSONL.  Each line is one event object:
  ///   {"ev":"start","t":...,"flow":...,"bytes":...}
  ///   {"ev":"rates","t":...,"active":...,"total_mibps":...}
  ///   {"ev":"complete","t":...,"flow":...,"bytes":...,"mean_mibps":...}
  std::string toJsonl() const;
  void writeJsonl(const std::filesystem::path& path) const;

 private:
  void bankInterval(SimTime until);

  FluidSimulator& fluid_;
  std::vector<TraceEvent> events_;
  /// Flow -> (path, current rate); alive flows only.
  struct LiveFlow {
    std::vector<ResourceIndex> path;
    util::MiBps rate = 0.0;
  };
  std::map<std::uint64_t, LiveFlow> live_;
  std::vector<double> resourceMiB_;
  std::vector<util::Seconds> resourceBusy_;
  std::vector<util::MiBps> resourcePeak_;
  SimTime lastBankTime_ = 0.0;
};

}  // namespace beesim::sim
