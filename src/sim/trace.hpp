// Flow tracing, resource utilization accounting and metrics export -- the
// run-level observability layer over the fluid core.
//
// A FlowTracer observes a FluidSimulator and produces four artefacts:
//
//   * an event log (flow start / rate change / completion / cancellation)
//     exportable as JSONL -- one JSON object per line, loadable into pandas
//     or jq for post-mortem timeline analysis of a run;
//   * per-resource utilization: bytes carried and busy time, integrated
//     from the piecewise-constant rate vector.  Because every flow crosses
//     its bottleneck resource, these integrals give exact link/OST/OSS
//     traffic decompositions ("how much of the run went through server 1's
//     link?") that the bandwidth summary alone cannot answer;
//   * an optional virtual-time metrics series (setMetricsInterval): at every
//     multiple of dt the tracer samples the aggregate rate, each tracked
//     link's rate and a live link-imbalance index -- the time-resolved view
//     of the paper's (min,max) balance story;
//   * a Chrome-trace/Perfetto export (toChromeTrace): flows as async b/e
//     events plus counter tracks, loadable into chrome://tracing or
//     https://ui.perfetto.dev.
//
// The tracer is exact, not sampled: it banks rate * dt on every re-solve.
// It attaches through FluidSimulator::addObserver, so it composes with any
// other observer instead of clobbering the slot (see sim/observer_hub.hpp).
//
// For cluster-scale runs the FlowTracer's per-event map lookups and O(path)
// delta accounting dominate: tracing can cost tens of percent of wall time.
// RingTraceSink is the cheap alternative (--trace-format=ring): every
// observer callback appends one fixed-width 40-byte binary record to a
// preallocated ring buffer -- no map, no per-resource state, no allocation,
// no formatting -- and the ring is rendered to JSONL / Chrome-trace only on
// flush.  When the ring wraps, the oldest records are overwritten and
// counted (dropped()), so memory stays bounded no matter how long the run.
#pragma once

#include <filesystem>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sim/fluid.hpp"

namespace beesim::sim {

/// One recorded event (kept binary-compact; rendered to JSON on export).
struct TraceEvent {
  enum class Kind { kStart, kRates, kComplete, kCancel };
  Kind kind = Kind::kStart;
  SimTime time = 0.0;
  std::uint64_t flow = 0;      // kStart/kComplete/kCancel
  util::Bytes bytes = 0;       // kStart: size; kComplete: moved; kCancel: left
  util::MiBps meanRate = 0.0;  // kComplete
  std::size_t activeFlows = 0; // kRates
  util::MiBps totalRate = 0.0; // kRates: sum over flows
};

/// Aggregated per-resource counters.
struct ResourceUsage {
  std::string name;
  /// Total bytes carried (sum of crossing flows' rate * dt).
  double mib = 0.0;
  /// Virtual time with at least one active flow crossing the resource.
  util::Seconds busyTime = 0.0;
  /// Peak aggregate rate observed.
  util::MiBps peakRate = 0.0;
};

/// One virtual-time sample of the metrics series (see setMetricsInterval).
struct MetricsSample {
  SimTime time = 0.0;
  std::size_t activeFlows = 0;
  /// Sum of all live flows' current rates (MiB/s).
  util::MiBps aggregateRate = 0.0;
  /// Current aggregate rate through each tracked link (trackLink order).
  std::vector<util::MiBps> linkRates;
  /// Active flows currently crossing each tracked link (trackLink order).
  /// Lets peer-relative consumers (the HealthMonitor) distinguish "idle" --
  /// no evidence -- from "has traffic but moves nothing" (dead-but-online).
  std::vector<std::uint32_t> linkFlows;
  /// max/mean over the tracked links' rates: 1 = perfectly balanced,
  /// H = everything through one of H links, 0 = all links idle.
  double linkImbalance = 0.0;
};

class FlowTracer final : public FluidObserver {
 public:
  /// Attaches to `fluid` via addObserver (composes with other observers);
  /// detaches itself -- and only itself -- on destruction.
  explicit FlowTracer(FluidSimulator& fluid);
  ~FlowTracer() override;

  FlowTracer(const FlowTracer&) = delete;
  FlowTracer& operator=(const FlowTracer&) = delete;

  // FluidObserver:
  void onFlowStarted(FlowId id, std::span<const ResourceIndex> path, util::Bytes bytes,
                     SimTime at) override;
  void onRatesSolved(SimTime at, std::span<const FlowId> ids,
                     std::span<const util::MiBps> rates, std::size_t activeFlows) override;
  void onFlowCompleted(const FlowStats& stats) override;
  void onFlowCancelled(const FlowStats& stats) override;

  const std::vector<TraceEvent>& events() const { return events_; }

  // -- Metrics series ----------------------------------------------------

  /// Sample the metrics series every `dt` virtual seconds (first sample at
  /// attach time + dt).  <= 0 disables (the default).
  void setMetricsInterval(util::Seconds dt);

  /// Add a link (any resource) to the per-sample rate breakdown and the
  /// imbalance index; `name` labels its CSV column / counter track.
  void trackLink(ResourceIndex link, std::string name);

  const std::vector<MetricsSample>& samples() const { return samples_; }
  const std::vector<std::string>& trackedLinkNames() const { return linkNames_; }

  /// Invoked synchronously after each metrics sample is recorded (virtual
  /// time, inside observer dispatch).  Consumers that react by mutating the
  /// simulation -- e.g. the rebalance controller starting migration flows --
  /// must defer their action via the engine (scheduleAfter) instead of
  /// calling into FluidSimulator from the callback.
  void setSampleListener(std::function<void(const MetricsSample&)> listener) {
    sampleListener_ = std::move(listener);
  }

  /// Metrics series as CSV: t,active_flows,aggregate_mibps,link_imbalance
  /// plus one column per tracked link.
  std::string metricsCsv() const;
  void writeMetricsCsv(const std::filesystem::path& path) const;

  // -- Utilization -------------------------------------------------------

  /// Per-resource usage, in resource-index order.  Covers *every* resource
  /// of the simulator -- idle ones report zero rows -- so per-server
  /// aggregations can index it by deployment resource.
  std::vector<ResourceUsage> resourceUsage() const;

  /// Total MiB carried by one resource.
  double resourceMiB(ResourceIndex resource) const;

  /// Virtual time during which `resource` had at least one active flow.
  util::Seconds resourceBusyTime(ResourceIndex resource) const;

  // -- Exports -----------------------------------------------------------

  /// Export the event log as JSONL.  Each line is one event object:
  ///   {"ev":"start","t":...,"flow":...,"bytes":...}
  ///   {"ev":"rates","t":...,"active":...,"total_mibps":...}
  ///   {"ev":"complete","t":...,"flow":...,"bytes":...,"mean_mibps":...}
  ///   {"ev":"cancel","t":...,"flow":...,"bytes_left":...}
  std::string toJsonl() const;
  void writeJsonl(const std::filesystem::path& path) const;

  /// Export as a Chrome-trace JSON object (chrome://tracing, Perfetto):
  /// flows as async "b"/"e" events (id = flow id), aggregate rate, active
  /// flows and tracked-link rates as counter tracks.  Timestamps are in
  /// microseconds of virtual time.
  std::string toChromeTrace() const;
  void writeChromeTrace(const std::filesystem::path& path) const;

 private:
  void ensureResourceCapacity(std::size_t count);
  void bankInterval(SimTime until);
  void recordSample(SimTime at);
  void dropFlow(std::uint64_t id, SimTime at);

  FluidSimulator& fluid_;
  std::vector<TraceEvent> events_;
  /// Flow -> (path, current rate); alive flows only.
  struct LiveFlow {
    std::vector<ResourceIndex> path;
    util::MiBps rate = 0.0;
  };
  std::map<std::uint64_t, LiveFlow> live_;

  // Per-resource accounting, sized from fluid_.resourceCount() at attach
  // time (and grown if resources are added later).  resourceRate_ and
  // resourceFlows_ are maintained incrementally per event, so banking an
  // interval costs O(resources) with zero allocations.
  std::vector<double> resourceMiB_;
  std::vector<util::Seconds> resourceBusy_;
  std::vector<util::MiBps> resourcePeak_;
  std::vector<util::MiBps> resourceRate_;
  std::vector<std::uint32_t> resourceFlows_;
  util::MiBps totalRate_ = 0.0;
  SimTime lastBankTime_ = 0.0;

  // Metrics series state.
  util::Seconds metricsDt_ = 0.0;
  SimTime nextSampleTime_ = 0.0;
  std::vector<MetricsSample> samples_;
  std::vector<ResourceIndex> trackedLinks_;
  std::vector<std::string> linkNames_;
  std::function<void(const MetricsSample&)> sampleListener_;
};

/// One fixed-width binary trace record.  Exactly 40 bytes and trivially
/// copyable, so a ring of them is a single flat allocation and an append is
/// one struct store.  Field meaning by kind (TraceEvent::Kind values):
///   kStart:    flow = id, bytes = size,              aux = path length
///   kRates:    flow = 0,  bytes = active flow count, value = sum of the
///              re-solved flows' rates (MiB/s),       aux = flows re-solved
///   kComplete: flow = id, bytes = moved, value = mean MiB/s
///   kCancel:   flow = id, bytes = bytes left untransferred
struct RingRecord {
  double time = 0.0;
  std::uint64_t flow = 0;
  std::uint64_t bytes = 0;
  double value = 0.0;
  std::uint32_t kind = 0;  // static_cast<uint32_t>(TraceEvent::Kind)
  std::uint32_t aux = 0;
};
static_assert(sizeof(RingRecord) == 40, "ring record layout is part of the format");

/// Bounded-memory, allocation-free event sink (--trace-format=ring).
///
/// Attaches through addObserver like FlowTracer and records the same flow
/// lifecycle, but keeps no per-flow or per-resource state: each callback
/// writes one RingRecord into a preallocated ring.  Rate events therefore
/// carry the *re-solved components'* aggregate rate, not the global total
/// (maintaining the global total is exactly the per-flow bookkeeping this
/// sink exists to avoid); the JSONL drain labels it `solved_mibps`.
class RingTraceSink final : public FluidObserver {
 public:
  /// `capacity` is the ring size in records (40 bytes each); once exceeded,
  /// the oldest records are overwritten and counted in dropped().
  RingTraceSink(FluidSimulator& fluid, std::size_t capacity);
  ~RingTraceSink() override;

  RingTraceSink(const RingTraceSink&) = delete;
  RingTraceSink& operator=(const RingTraceSink&) = delete;

  // FluidObserver:
  void onFlowStarted(FlowId id, std::span<const ResourceIndex> path, util::Bytes bytes,
                     SimTime at) override;
  void onRatesSolved(SimTime at, std::span<const FlowId> ids,
                     std::span<const util::MiBps> rates, std::size_t activeFlows) override;
  void onFlowCompleted(const FlowStats& stats) override;
  void onFlowCancelled(const FlowStats& stats) override;

  std::size_t capacity() const { return records_.size(); }
  /// Records currently held (<= capacity()).
  std::size_t size() const;
  /// Total records ever appended, including overwritten ones.
  std::uint64_t recorded() const { return written_; }
  /// Records lost to ring wrap-around (recorded() - size()).
  std::uint64_t dropped() const;

  /// The retained records, oldest first (copies out of the ring; the live
  /// ring is never exposed because its physical order wraps).
  std::vector<RingRecord> snapshot() const;

  /// Render the retained records as JSONL (same event vocabulary as
  /// FlowTracer::toJsonl; rates lines carry `solved_mibps`).  When records
  /// were dropped, the first line is {"ev":"drops","count":N}.
  std::string toJsonl() const;
  void writeJsonl(const std::filesystem::path& path) const;

  /// Render as Chrome-trace JSON: flows as async b/e events plus
  /// solved_mibps / active_flows counter tracks.
  std::string toChromeTrace() const;
  void writeChromeTrace(const std::filesystem::path& path) const;

 private:
  void push(const RingRecord& record);

  FluidSimulator& fluid_;
  std::vector<RingRecord> records_;  // fixed size; slot = written_ % capacity
  std::uint64_t written_ = 0;
};

}  // namespace beesim::sim
