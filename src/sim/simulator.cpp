#include "sim/simulator.hpp"

#include "util/error.hpp"

namespace beesim::sim {

EventId Simulator::schedule(SimTime at, EventFn fn) {
  BEESIM_ASSERT(at >= now_, "cannot schedule an event in the past");
  BEESIM_ASSERT(fn != nullptr, "event callback must not be null");
  const EventId id{nextEventId_++};
  queue_.push(QueuedEvent{at, id.value, std::move(fn)});
  outstanding_.insert(id.value);
  return id;
}

EventId Simulator::scheduleAfter(SimTime delay, EventFn fn) {
  BEESIM_ASSERT(delay >= 0.0, "event delay must be non-negative");
  return schedule(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  // Only outstanding sequences are remembered: cancelling an event that has
  // already fired (or was never scheduled) must not grow cancelled_ forever.
  if (outstanding_.count(id.value) != 0) cancelled_.insert(id.value);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // Copy out the top event before popping: the callback may schedule more.
    QueuedEvent event = queue_.top();
    queue_.pop();
    outstanding_.erase(event.sequence);
    if (auto it = cancelled_.find(event.sequence); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    BEESIM_ASSERT(event.at >= now_, "event queue yielded an event in the past");
    now_ = event.at;
    event.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t processed = 0;
  while (step()) ++processed;
  return processed;
}

std::size_t Simulator::runUntil(SimTime limit) {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    if (queue_.top().at > limit) break;
    if (step()) ++processed;
  }
  if (now_ < limit) now_ = limit;
  return processed;
}

}  // namespace beesim::sim
