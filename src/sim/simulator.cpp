#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace beesim::sim {

namespace {
constexpr std::uint64_t kSlotMask = 0xffffffffull;
}  // namespace

Simulator::Simulator(std::size_t shards) {
  BEESIM_ASSERT(shards >= 1, "event queue needs at least one shard");
  shards_.resize(shards);
  tops_.resize(shards);
}

EventId Simulator::schedule(SimTime at, EventFn fn) {
  BEESIM_ASSERT(at >= now_, "cannot schedule an event in the past");
  BEESIM_ASSERT(fn != nullptr, "event callback must not be null");

  std::uint32_t slot;
  if (!freeSlots_.empty()) {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    // Generations start at 1 so a default EventId{0} can never alias slot 0.
    slots_.back().generation = 1;
  }
  EventSlot& s = slots_[slot];
  s.fn = std::move(fn);
  s.pending = true;
  s.cancelled = false;

  // Shard by slot: deterministic (the free list is), and recycled slots keep
  // a stable shard so a steady-state event population never rebalances.
  const std::size_t shard = slot % shards_.size();
  auto& heap = shards_[shard];
  heap.push_back(QueuedEvent{at, nextSequence_++, slot});
  std::push_heap(heap.begin(), heap.end(), Later{});
  tops_[shard] = ShardTop{heap.front().at, heap.front().sequence};
  ++queued_;
  return EventId{slot | (static_cast<std::uint64_t>(s.generation) << 32)};
}

EventId Simulator::scheduleAfter(SimTime delay, EventFn fn) {
  BEESIM_ASSERT(delay >= 0.0, "event delay must be non-negative");
  return schedule(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id.value & kSlotMask);
  const auto generation = static_cast<std::uint32_t>(id.value >> 32);
  if (slot >= slots_.size()) return;
  EventSlot& s = slots_[slot];
  // The generation stamp rejects handles from a previous tenancy of the same
  // slot, so cancelling an already-fired id is a no-op and nothing grows.
  if (!s.pending || s.generation != generation || s.cancelled) return;
  s.cancelled = true;
  ++cancelledCount_;
}

void Simulator::retireSlot(std::uint32_t slot) {
  EventSlot& s = slots_[slot];
  s.fn = nullptr;
  s.pending = false;
  s.cancelled = false;
  ++s.generation;
  freeSlots_.push_back(slot);
}

std::size_t Simulator::minShard() const {
  // Linear scan over the flat cached-minima array: with a handful of shards
  // this is one or two cache lines, cheaper and simpler than a second heap.
  // The (at, sequence) order is total (sequences are globally unique), so
  // the pick -- and therefore dispatch order -- is shard-layout independent.
  std::size_t best = 0;
  for (std::size_t s = 1; s < tops_.size(); ++s) {
    const ShardTop& a = tops_[s];
    const ShardTop& b = tops_[best];
    if (a.at < b.at || (a.at == b.at && a.sequence < b.sequence)) best = s;
  }
  return best;
}

void Simulator::refreshTop(std::size_t s) {
  if (shards_[s].empty()) {
    tops_[s] = ShardTop{};
  } else {
    tops_[s] = ShardTop{shards_[s].front().at, shards_[s].front().sequence};
  }
}

Simulator::QueuedEvent Simulator::popShard(std::size_t s) {
  auto& heap = shards_[s];
  const QueuedEvent event = heap.front();
  std::pop_heap(heap.begin(), heap.end(), Later{});
  heap.pop_back();
  refreshTop(s);
  --queued_;
  return event;
}

void Simulator::purgeCancelledFront() {
  while (queued_ > 0) {
    const std::size_t s = minShard();
    const std::uint32_t slot = shards_[s].front().slot;
    if (!slots_[slot].cancelled) return;
    (void)popShard(s);
    --cancelledCount_;
    retireSlot(slot);
  }
}

bool Simulator::step() {
  while (queued_ > 0) {
    const QueuedEvent event = popShard(minShard());
    EventSlot& s = slots_[event.slot];
    if (s.cancelled) {
      --cancelledCount_;
      retireSlot(event.slot);
      continue;
    }
    BEESIM_ASSERT(event.at >= now_, "event queue yielded an event in the past");
    now_ = event.at;
    // Move the callback out and retire the slot *before* invoking it: the
    // callback may schedule new events, which can then reuse this slot.
    EventFn fn = std::move(s.fn);
    retireSlot(event.slot);
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t processed = 0;
  while (step()) ++processed;
  return processed;
}

std::size_t Simulator::runUntil(SimTime limit) {
  std::size_t processed = 0;
  while (queued_ > 0) {
    // Retire cancelled fronts first so the limit check reads the next *live*
    // event's timestamp (a cancelled early event must not pull a later live
    // one across the limit).
    purgeCancelledFront();
    if (queued_ == 0) break;
    if (tops_[minShard()].at > limit) break;
    if (step()) ++processed;
  }
  if (now_ < limit) now_ = limit;
  return processed;
}

}  // namespace beesim::sim
