#include "sim/simulator.hpp"

#include <utility>

#include "util/error.hpp"

namespace beesim::sim {

namespace {
constexpr std::uint64_t kSlotMask = 0xffffffffull;
}  // namespace

EventId Simulator::schedule(SimTime at, EventFn fn) {
  BEESIM_ASSERT(at >= now_, "cannot schedule an event in the past");
  BEESIM_ASSERT(fn != nullptr, "event callback must not be null");

  std::uint32_t slot;
  if (!freeSlots_.empty()) {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    // Generations start at 1 so a default EventId{0} can never alias slot 0.
    slots_.back().generation = 1;
  }
  EventSlot& s = slots_[slot];
  s.fn = std::move(fn);
  s.pending = true;
  s.cancelled = false;
  queue_.push(QueuedEvent{at, nextSequence_++, slot});
  return EventId{slot | (static_cast<std::uint64_t>(s.generation) << 32)};
}

EventId Simulator::scheduleAfter(SimTime delay, EventFn fn) {
  BEESIM_ASSERT(delay >= 0.0, "event delay must be non-negative");
  return schedule(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id.value & kSlotMask);
  const auto generation = static_cast<std::uint32_t>(id.value >> 32);
  if (slot >= slots_.size()) return;
  EventSlot& s = slots_[slot];
  // The generation stamp rejects handles from a previous tenancy of the same
  // slot, so cancelling an already-fired id is a no-op and nothing grows.
  if (!s.pending || s.generation != generation || s.cancelled) return;
  s.cancelled = true;
  ++cancelledCount_;
}

void Simulator::retireSlot(std::uint32_t slot) {
  EventSlot& s = slots_[slot];
  s.fn = nullptr;
  s.pending = false;
  s.cancelled = false;
  ++s.generation;
  freeSlots_.push_back(slot);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueuedEvent event = queue_.top();
    queue_.pop();
    EventSlot& s = slots_[event.slot];
    if (s.cancelled) {
      --cancelledCount_;
      retireSlot(event.slot);
      continue;
    }
    BEESIM_ASSERT(event.at >= now_, "event queue yielded an event in the past");
    now_ = event.at;
    // Move the callback out and retire the slot *before* invoking it: the
    // callback may schedule new events, which can then reuse this slot.
    EventFn fn = std::move(s.fn);
    retireSlot(event.slot);
    fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t processed = 0;
  while (step()) ++processed;
  return processed;
}

std::size_t Simulator::runUntil(SimTime limit) {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    if (queue_.top().at > limit) break;
    if (step()) ++processed;
  }
  if (now_ < limit) now_ = limit;
  return processed;
}

}  // namespace beesim::sim
