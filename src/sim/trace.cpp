#include "sim/trace.hpp"

#include <algorithm>
#include <fstream>

#include "core/metrics.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace beesim::sim {

namespace {
// A resource is considered busy above this aggregate rate (MiB/s).  The
// incremental rate bookkeeping adds/subtracts per-flow rates, so exact
// zeros are restored whenever a resource's crossing-flow count hits zero;
// the epsilon only guards stalled-but-populated resources against
// floating-point residue being counted as busy time.
constexpr double kBusyEpsMiBps = 1e-9;
}  // namespace

FlowTracer::FlowTracer(FluidSimulator& fluid) : fluid_(fluid) {
  fluid_.addObserver(this);
  lastBankTime_ = fluid_.now();
  // Size the accounting from the deployment's resource inventory up front so
  // idle resources get zero rows in resourceUsage() (resources added after
  // attach grow the vectors on first use).
  ensureResourceCapacity(fluid_.resourceCount());
}

FlowTracer::~FlowTracer() { fluid_.removeObserver(this); }

void FlowTracer::ensureResourceCapacity(std::size_t count) {
  if (count <= resourceMiB_.size()) return;
  resourceMiB_.resize(count, 0.0);
  resourceBusy_.resize(count, 0.0);
  resourcePeak_.resize(count, 0.0);
  resourceRate_.resize(count, 0.0);
  resourceFlows_.resize(count, 0);
}

void FlowTracer::setMetricsInterval(util::Seconds dt) {
  metricsDt_ = dt;
  if (dt > 0.0) nextSampleTime_ = lastBankTime_ + dt;
}

void FlowTracer::trackLink(ResourceIndex link, std::string name) {
  ensureResourceCapacity(static_cast<std::size_t>(link.value) + 1);
  trackedLinks_.push_back(link);
  linkNames_.push_back(std::move(name));
}

void FlowTracer::recordSample(SimTime at) {
  MetricsSample sample;
  sample.time = at;
  sample.activeFlows = live_.size();
  sample.aggregateRate = totalRate_;
  sample.linkRates.reserve(trackedLinks_.size());
  sample.linkFlows.reserve(trackedLinks_.size());
  for (const auto link : trackedLinks_) {
    sample.linkRates.push_back(resourceRate_[link.value]);
    sample.linkFlows.push_back(resourceFlows_[link.value]);
  }
  sample.linkImbalance = core::linkImbalance(sample.linkRates);
  samples_.push_back(std::move(sample));
  if (sampleListener_) sampleListener_(samples_.back());
}

void FlowTracer::bankInterval(SimTime until) {
  // Rates are piecewise-constant: the stored per-resource rates hold over
  // (lastBankTime_, until], so samples due inside the window read them
  // directly before the caller applies the event's changes.
  if (metricsDt_ > 0.0) {
    while (nextSampleTime_ <= until) {
      recordSample(nextSampleTime_);
      nextSampleTime_ += metricsDt_;
    }
  }
  const double dt = until - lastBankTime_;
  if (dt > 0.0) {
    for (std::size_t r = 0; r < resourceRate_.size(); ++r) {
      const double rate = resourceRate_[r];
      if (rate > kBusyEpsMiBps) {
        resourceMiB_[r] += rate * dt;
        resourceBusy_[r] += dt;
        resourcePeak_[r] = std::max(resourcePeak_[r], rate);
      }
    }
  }
  lastBankTime_ = until;
}

void FlowTracer::onFlowStarted(FlowId id, std::span<const ResourceIndex> path,
                               util::Bytes bytes, SimTime at) {
  bankInterval(at);
  std::uint32_t maxIndex = 0;
  for (const auto r : path) maxIndex = std::max(maxIndex, r.value);
  ensureResourceCapacity(static_cast<std::size_t>(maxIndex) + 1);
  for (const auto r : path) ++resourceFlows_[r.value];
  live_[id.value] = LiveFlow{{path.begin(), path.end()}, 0.0};
  TraceEvent event;
  event.kind = TraceEvent::Kind::kStart;
  event.time = at;
  event.flow = id.value;
  event.bytes = bytes;
  events_.push_back(event);
}

void FlowTracer::onRatesSolved(SimTime at, std::span<const FlowId> ids,
                               std::span<const util::MiBps> rates,
                               std::size_t activeFlows) {
  bankInterval(at);
  // The solver reports only the re-solved components; flows elsewhere keep
  // their previous rate, so the per-resource and total aggregates are
  // maintained by applying each reported flow's rate delta along its path.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto it = live_.find(ids[i].value);
    if (it == live_.end()) continue;
    const double delta = rates[i] - it->second.rate;
    if (delta != 0.0) {
      for (const auto r : it->second.path) resourceRate_[r.value] += delta;
      totalRate_ += delta;
      it->second.rate = rates[i];
    }
  }
  TraceEvent event;
  event.kind = TraceEvent::Kind::kRates;
  event.time = at;
  event.activeFlows = activeFlows;
  event.totalRate = totalRate_;
  events_.push_back(event);
}

void FlowTracer::dropFlow(std::uint64_t id, SimTime at) {
  bankInterval(at);
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  for (const auto r : it->second.path) {
    resourceRate_[r.value] -= it->second.rate;
    // Snap to exactly zero when the resource empties so +/- residue cannot
    // accumulate into phantom busy time.
    if (--resourceFlows_[r.value] == 0) resourceRate_[r.value] = 0.0;
  }
  totalRate_ -= it->second.rate;
  live_.erase(it);
  if (live_.empty()) totalRate_ = 0.0;
}

void FlowTracer::onFlowCompleted(const FlowStats& stats) {
  dropFlow(stats.id.value, stats.endTime);
  TraceEvent event;
  event.kind = TraceEvent::Kind::kComplete;
  event.time = stats.endTime;
  event.flow = stats.id.value;
  event.bytes = stats.bytes;
  event.meanRate = stats.meanRate();
  events_.push_back(event);
}

void FlowTracer::onFlowCancelled(const FlowStats& stats) {
  dropFlow(stats.id.value, stats.endTime);
  TraceEvent event;
  event.kind = TraceEvent::Kind::kCancel;
  event.time = stats.endTime;
  event.flow = stats.id.value;
  event.bytes = stats.bytes;  // bytes NOT transferred (see FluidObserver)
  events_.push_back(event);
}

std::vector<ResourceUsage> FlowTracer::resourceUsage() const {
  // Cover the simulator's full resource inventory: idle resources emit zero
  // rows, so the report's length always matches resourceCount() and
  // per-server aggregations can index it directly.
  const std::size_t count = std::max(fluid_.resourceCount(), resourceMiB_.size());
  std::vector<ResourceUsage> usage;
  usage.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    ResourceUsage u;
    if (r < fluid_.resourceCount()) {
      u.name = fluid_.resourceName(ResourceIndex{static_cast<std::uint32_t>(r)});
    }
    if (r < resourceMiB_.size()) {
      u.mib = resourceMiB_[r];
      u.busyTime = resourceBusy_[r];
      u.peakRate = resourcePeak_[r];
    }
    usage.push_back(std::move(u));
  }
  return usage;
}

double FlowTracer::resourceMiB(ResourceIndex resource) const {
  if (resource.value >= resourceMiB_.size()) return 0.0;
  return resourceMiB_[resource.value];
}

util::Seconds FlowTracer::resourceBusyTime(ResourceIndex resource) const {
  if (resource.value >= resourceBusy_.size()) return 0.0;
  return resourceBusy_[resource.value];
}

std::string FlowTracer::toJsonl() const {
  std::string out;
  for (const auto& event : events_) {
    switch (event.kind) {
      case TraceEvent::Kind::kStart:
        out += "{\"ev\":\"start\",\"t\":" + util::fmt(event.time, 6) +
               ",\"flow\":" + std::to_string(event.flow) +
               ",\"bytes\":" + std::to_string(event.bytes) + "}\n";
        break;
      case TraceEvent::Kind::kRates:
        out += "{\"ev\":\"rates\",\"t\":" + util::fmt(event.time, 6) +
               ",\"active\":" + std::to_string(event.activeFlows) +
               ",\"total_mibps\":" + util::fmt(event.totalRate, 3) + "}\n";
        break;
      case TraceEvent::Kind::kComplete:
        out += "{\"ev\":\"complete\",\"t\":" + util::fmt(event.time, 6) +
               ",\"flow\":" + std::to_string(event.flow) +
               ",\"bytes\":" + std::to_string(event.bytes) +
               ",\"mean_mibps\":" + util::fmt(event.meanRate, 3) + "}\n";
        break;
      case TraceEvent::Kind::kCancel:
        out += "{\"ev\":\"cancel\",\"t\":" + util::fmt(event.time, 6) +
               ",\"flow\":" + std::to_string(event.flow) +
               ",\"bytes_left\":" + std::to_string(event.bytes) + "}\n";
        break;
    }
  }
  return out;
}

void FlowTracer::writeJsonl(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot write trace file: " + path.string());
  out << toJsonl();
  if (!out) throw util::IoError("failed writing trace file: " + path.string());
}

std::string FlowTracer::toChromeTrace() const {
  // Timestamps are microseconds (the Chrome trace unit) of *virtual* time.
  const auto ts = [](SimTime t) { return util::fmt(t * 1e6, 3); };
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"beesim\"}}";
  for (const auto& event : events_) {
    switch (event.kind) {
      case TraceEvent::Kind::kStart:
        out += ",\n{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"b\",\"id\":" +
               std::to_string(event.flow) + ",\"pid\":1,\"tid\":1,\"ts\":" +
               ts(event.time) + ",\"args\":{\"bytes\":" + std::to_string(event.bytes) +
               "}}";
        break;
      case TraceEvent::Kind::kComplete:
        out += ",\n{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"e\",\"id\":" +
               std::to_string(event.flow) + ",\"pid\":1,\"tid\":1,\"ts\":" +
               ts(event.time) + ",\"args\":{\"mean_mibps\":" +
               util::fmt(event.meanRate, 3) + "}}";
        break;
      case TraceEvent::Kind::kCancel:
        out += ",\n{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"e\",\"id\":" +
               std::to_string(event.flow) + ",\"pid\":1,\"tid\":1,\"ts\":" +
               ts(event.time) + ",\"args\":{\"cancelled\":true,\"bytes_left\":" +
               std::to_string(event.bytes) + "}}";
        break;
      case TraceEvent::Kind::kRates:
        out += ",\n{\"name\":\"aggregate_mibps\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
               ts(event.time) + ",\"args\":{\"mibps\":" + util::fmt(event.totalRate, 3) +
               "}}";
        out += ",\n{\"name\":\"active_flows\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
               ts(event.time) + ",\"args\":{\"flows\":" +
               std::to_string(event.activeFlows) + "}}";
        break;
    }
  }
  // Tracked-link counter tracks from the metrics series (if sampling).
  for (const auto& sample : samples_) {
    if (!sample.linkRates.empty()) {
      out += ",\n{\"name\":\"link_mibps\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
             ts(sample.time) + ",\"args\":{";
      for (std::size_t i = 0; i < sample.linkRates.size(); ++i) {
        if (i > 0) out += ",";
        out += util::JsonValue(linkNames_[i]).dump() + ":" +
               util::fmt(sample.linkRates[i], 3);
      }
      out += "}}";
      out += ",\n{\"name\":\"link_imbalance\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
             ts(sample.time) + ",\"args\":{\"imbalance\":" +
             util::fmt(sample.linkImbalance, 4) + "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

void FlowTracer::writeChromeTrace(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot write trace file: " + path.string());
  out << toChromeTrace();
  if (!out) throw util::IoError("failed writing trace file: " + path.string());
}

std::string FlowTracer::metricsCsv() const {
  std::string out = "t,active_flows,aggregate_mibps,link_imbalance";
  for (const auto& name : linkNames_) {
    out += ',';
    out += name;
  }
  out += '\n';
  for (const auto& sample : samples_) {
    out += util::fmt(sample.time, 6) + "," + std::to_string(sample.activeFlows) + "," +
           util::fmt(sample.aggregateRate, 3) + "," + util::fmt(sample.linkImbalance, 4);
    for (const auto rate : sample.linkRates) {
      out += ',';
      out += util::fmt(rate, 3);
    }
    out += '\n';
  }
  return out;
}

void FlowTracer::writeMetricsCsv(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot write metrics file: " + path.string());
  out << metricsCsv();
  if (!out) throw util::IoError("failed writing metrics file: " + path.string());
}

// --- RingTraceSink -----------------------------------------------------

RingTraceSink::RingTraceSink(FluidSimulator& fluid, std::size_t capacity)
    : fluid_(fluid) {
  BEESIM_ASSERT(capacity >= 1, "ring trace sink needs capacity >= 1 record");
  records_.resize(capacity);  // the sink's only allocation
  fluid_.addObserver(this);
}

RingTraceSink::~RingTraceSink() { fluid_.removeObserver(this); }

void RingTraceSink::push(const RingRecord& record) {
  records_[static_cast<std::size_t>(written_ % records_.size())] = record;
  ++written_;
}

std::size_t RingTraceSink::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(written_, records_.size()));
}

std::uint64_t RingTraceSink::dropped() const { return written_ - size(); }

void RingTraceSink::onFlowStarted(FlowId id, std::span<const ResourceIndex> path,
                                  util::Bytes bytes, SimTime at) {
  RingRecord r;
  r.time = at;
  r.flow = id.value;
  r.bytes = bytes;
  r.kind = static_cast<std::uint32_t>(TraceEvent::Kind::kStart);
  r.aux = static_cast<std::uint32_t>(path.size());
  push(r);
}

void RingTraceSink::onRatesSolved(SimTime at, std::span<const FlowId> ids,
                                  std::span<const util::MiBps> rates,
                                  std::size_t activeFlows) {
  (void)ids;
  double solved = 0.0;
  for (const auto rate : rates) solved += rate;
  RingRecord r;
  r.time = at;
  r.bytes = activeFlows;
  r.value = solved;
  r.kind = static_cast<std::uint32_t>(TraceEvent::Kind::kRates);
  r.aux = static_cast<std::uint32_t>(rates.size());
  push(r);
}

void RingTraceSink::onFlowCompleted(const FlowStats& stats) {
  RingRecord r;
  r.time = stats.endTime;
  r.flow = stats.id.value;
  r.bytes = stats.bytes;
  r.value = stats.meanRate();
  r.kind = static_cast<std::uint32_t>(TraceEvent::Kind::kComplete);
  push(r);
}

void RingTraceSink::onFlowCancelled(const FlowStats& stats) {
  RingRecord r;
  r.time = stats.endTime;
  r.flow = stats.id.value;
  r.bytes = stats.bytes;  // bytes NOT transferred (see FluidObserver)
  r.kind = static_cast<std::uint32_t>(TraceEvent::Kind::kCancel);
  push(r);
}

std::vector<RingRecord> RingTraceSink::snapshot() const {
  const std::size_t n = size();
  std::vector<RingRecord> out;
  out.reserve(n);
  // Oldest retained record lives at written_ - n (mod capacity).
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(
        records_[static_cast<std::size_t>((written_ - n + i) % records_.size())]);
  }
  return out;
}

std::string RingTraceSink::toJsonl() const {
  std::string out;
  if (dropped() > 0) {
    out += "{\"ev\":\"drops\",\"count\":" + std::to_string(dropped()) + "}\n";
  }
  for (const auto& r : snapshot()) {
    switch (static_cast<TraceEvent::Kind>(r.kind)) {
      case TraceEvent::Kind::kStart:
        out += "{\"ev\":\"start\",\"t\":" + util::fmt(r.time, 6) +
               ",\"flow\":" + std::to_string(r.flow) +
               ",\"bytes\":" + std::to_string(r.bytes) + "}\n";
        break;
      case TraceEvent::Kind::kRates:
        out += "{\"ev\":\"rates\",\"t\":" + util::fmt(r.time, 6) +
               ",\"active\":" + std::to_string(r.bytes) +
               ",\"solved\":" + std::to_string(r.aux) +
               ",\"solved_mibps\":" + util::fmt(r.value, 3) + "}\n";
        break;
      case TraceEvent::Kind::kComplete:
        out += "{\"ev\":\"complete\",\"t\":" + util::fmt(r.time, 6) +
               ",\"flow\":" + std::to_string(r.flow) +
               ",\"bytes\":" + std::to_string(r.bytes) +
               ",\"mean_mibps\":" + util::fmt(r.value, 3) + "}\n";
        break;
      case TraceEvent::Kind::kCancel:
        out += "{\"ev\":\"cancel\",\"t\":" + util::fmt(r.time, 6) +
               ",\"flow\":" + std::to_string(r.flow) +
               ",\"bytes_left\":" + std::to_string(r.bytes) + "}\n";
        break;
    }
  }
  return out;
}

void RingTraceSink::writeJsonl(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot write trace file: " + path.string());
  out << toJsonl();
  if (!out) throw util::IoError("failed writing trace file: " + path.string());
}

std::string RingTraceSink::toChromeTrace() const {
  const auto ts = [](SimTime t) { return util::fmt(t * 1e6, 3); };
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"beesim\"}}";
  for (const auto& r : snapshot()) {
    switch (static_cast<TraceEvent::Kind>(r.kind)) {
      case TraceEvent::Kind::kStart:
        out += ",\n{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"b\",\"id\":" +
               std::to_string(r.flow) + ",\"pid\":1,\"tid\":1,\"ts\":" + ts(r.time) +
               ",\"args\":{\"bytes\":" + std::to_string(r.bytes) + "}}";
        break;
      case TraceEvent::Kind::kComplete:
        out += ",\n{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"e\",\"id\":" +
               std::to_string(r.flow) + ",\"pid\":1,\"tid\":1,\"ts\":" + ts(r.time) +
               ",\"args\":{\"mean_mibps\":" + util::fmt(r.value, 3) + "}}";
        break;
      case TraceEvent::Kind::kCancel:
        out += ",\n{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"e\",\"id\":" +
               std::to_string(r.flow) + ",\"pid\":1,\"tid\":1,\"ts\":" + ts(r.time) +
               ",\"args\":{\"cancelled\":true,\"bytes_left\":" +
               std::to_string(r.bytes) + "}}";
        break;
      case TraceEvent::Kind::kRates:
        out += ",\n{\"name\":\"solved_mibps\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
               ts(r.time) + ",\"args\":{\"mibps\":" + util::fmt(r.value, 3) + "}}";
        out += ",\n{\"name\":\"active_flows\",\"ph\":\"C\",\"pid\":1,\"ts\":" +
               ts(r.time) + ",\"args\":{\"flows\":" + std::to_string(r.bytes) + "}}";
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

void RingTraceSink::writeChromeTrace(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot write trace file: " + path.string());
  out << toChromeTrace();
  if (!out) throw util::IoError("failed writing trace file: " + path.string());
}

}  // namespace beesim::sim
