#include "sim/trace.hpp"

#include <algorithm>
#include <fstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::sim {

FlowTracer::FlowTracer(FluidSimulator& fluid) : fluid_(fluid) {
  fluid_.setObserver(this);
  lastBankTime_ = fluid_.now();
}

FlowTracer::~FlowTracer() { fluid_.setObserver(nullptr); }

void FlowTracer::bankInterval(SimTime until) {
  const double dt = until - lastBankTime_;
  if (dt > 0.0 && !live_.empty()) {
    // Per-resource aggregate rate over the elapsed interval.
    std::vector<util::MiBps> rate;
    for (const auto& [id, flow] : live_) {
      (void)id;
      for (const auto r : flow.path) {
        if (r.value >= rate.size()) rate.resize(r.value + 1, 0.0);
        rate[r.value] += flow.rate;
      }
    }
    if (rate.size() > resourceMiB_.size()) {
      resourceMiB_.resize(rate.size(), 0.0);
      resourceBusy_.resize(rate.size(), 0.0);
      resourcePeak_.resize(rate.size(), 0.0);
    }
    for (std::size_t r = 0; r < rate.size(); ++r) {
      if (rate[r] > 0.0) {
        resourceMiB_[r] += rate[r] * dt;
        resourceBusy_[r] += dt;
        resourcePeak_[r] = std::max(resourcePeak_[r], rate[r]);
      }
    }
  }
  lastBankTime_ = until;
}

void FlowTracer::onFlowStarted(FlowId id, std::span<const ResourceIndex> path,
                               util::Bytes bytes, SimTime at) {
  bankInterval(at);
  live_[id.value] = LiveFlow{{path.begin(), path.end()}, 0.0};
  TraceEvent event;
  event.kind = TraceEvent::Kind::kStart;
  event.time = at;
  event.flow = id.value;
  event.bytes = bytes;
  events_.push_back(event);
}

void FlowTracer::onRatesSolved(SimTime at, std::span<const FlowId> ids,
                               std::span<const util::MiBps> rates,
                               std::size_t activeFlows) {
  bankInterval(at);
  // The solver reports only the re-solved components; flows elsewhere keep
  // their previous rate, so the total is summed over all live flows.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto it = live_.find(ids[i].value);
    if (it != live_.end()) it->second.rate = rates[i];
  }
  double total = 0.0;
  for (const auto& [id, flow] : live_) {
    (void)id;
    total += flow.rate;
  }
  TraceEvent event;
  event.kind = TraceEvent::Kind::kRates;
  event.time = at;
  event.activeFlows = activeFlows;
  event.totalRate = total;
  events_.push_back(event);
}

void FlowTracer::onFlowCompleted(const FlowStats& stats) {
  bankInterval(stats.endTime);
  live_.erase(stats.id.value);
  TraceEvent event;
  event.kind = TraceEvent::Kind::kComplete;
  event.time = stats.endTime;
  event.flow = stats.id.value;
  event.bytes = stats.bytes;
  event.meanRate = stats.meanRate();
  events_.push_back(event);
}

std::vector<ResourceUsage> FlowTracer::resourceUsage() const {
  std::vector<ResourceUsage> usage;
  for (std::size_t r = 0; r < resourceMiB_.size(); ++r) {
    ResourceUsage u;
    u.name = fluid_.resourceName(ResourceIndex{static_cast<std::uint32_t>(r)});
    u.mib = resourceMiB_[r];
    u.busyTime = resourceBusy_[r];
    u.peakRate = resourcePeak_[r];
    usage.push_back(std::move(u));
  }
  return usage;
}

double FlowTracer::resourceMiB(ResourceIndex resource) const {
  if (resource.value >= resourceMiB_.size()) return 0.0;
  return resourceMiB_[resource.value];
}

std::string FlowTracer::toJsonl() const {
  std::string out;
  for (const auto& event : events_) {
    switch (event.kind) {
      case TraceEvent::Kind::kStart:
        out += "{\"ev\":\"start\",\"t\":" + util::fmt(event.time, 6) +
               ",\"flow\":" + std::to_string(event.flow) +
               ",\"bytes\":" + std::to_string(event.bytes) + "}\n";
        break;
      case TraceEvent::Kind::kRates:
        out += "{\"ev\":\"rates\",\"t\":" + util::fmt(event.time, 6) +
               ",\"active\":" + std::to_string(event.activeFlows) +
               ",\"total_mibps\":" + util::fmt(event.totalRate, 3) + "}\n";
        break;
      case TraceEvent::Kind::kComplete:
        out += "{\"ev\":\"complete\",\"t\":" + util::fmt(event.time, 6) +
               ",\"flow\":" + std::to_string(event.flow) +
               ",\"bytes\":" + std::to_string(event.bytes) +
               ",\"mean_mibps\":" + util::fmt(event.meanRate, 3) + "}\n";
        break;
    }
  }
  return out;
}

void FlowTracer::writeJsonl(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot write trace file: " + path.string());
  out << toJsonl();
  if (!out) throw util::IoError("failed writing trace file: " + path.string());
}

}  // namespace beesim::sim
