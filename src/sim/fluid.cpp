#include "sim/fluid.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "sim/observer_hub.hpp"
#include "util/error.hpp"

namespace beesim::sim {

namespace {
// A flow is finished when fewer than this many MiB remain; guards against
// floating-point residue after piecewise integration.
constexpr double kRemainderEpsMiB = 1e-9;

constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

CapacityFn constantCapacity(util::MiBps capacity) {
  BEESIM_ASSERT(capacity >= 0.0, "capacity must be >= 0");
  return [capacity](const ResourceLoad&) { return capacity; };
}

// --- IdMap -------------------------------------------------------------

std::size_t FluidSimulator::IdMap::bucketOf(std::uint64_t key, std::size_t mask) {
  // splitmix64 finalizer: flow ids are sequential, so they need scrambling
  // before masking or every id would probe the same run of buckets.
  std::uint64_t x = key;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x) & mask;
}

void FluidSimulator::IdMap::grow() {
  const std::size_t newSize = keys_.empty() ? 16 : keys_.size() * 2;
  std::vector<std::uint64_t> oldKeys = std::move(keys_);
  std::vector<std::uint32_t> oldSlots = std::move(slots_);
  keys_.assign(newSize, 0);
  slots_.assign(newSize, 0);
  const std::size_t mask = newSize - 1;
  for (std::size_t i = 0; i < oldKeys.size(); ++i) {
    if (oldKeys[i] == 0) continue;
    std::size_t b = bucketOf(oldKeys[i], mask);
    while (keys_[b] != 0) b = (b + 1) & mask;
    keys_[b] = oldKeys[i];
    slots_[b] = oldSlots[i];
  }
}

void FluidSimulator::IdMap::insert(std::uint64_t key, std::uint32_t slot) {
  // Keep the load factor under 0.7 so probe runs stay short; a stable flow
  // population reuses the table with no rehashing (and no allocation).
  if (keys_.empty() || (size_ + 1) * 10 > keys_.size() * 7) grow();
  const std::size_t mask = keys_.size() - 1;
  std::size_t b = bucketOf(key, mask);
  while (keys_[b] != 0) b = (b + 1) & mask;
  keys_[b] = key;
  slots_[b] = slot;
  ++size_;
}

std::uint32_t FluidSimulator::IdMap::find(std::uint64_t key) const {
  if (keys_.empty()) return kNone;
  const std::size_t mask = keys_.size() - 1;
  std::size_t b = bucketOf(key, mask);
  while (keys_[b] != 0) {
    if (keys_[b] == key) return slots_[b];
    b = (b + 1) & mask;
  }
  return kNone;
}

void FluidSimulator::IdMap::erase(std::uint64_t key) {
  if (keys_.empty()) return;
  const std::size_t mask = keys_.size() - 1;
  std::size_t b = bucketOf(key, mask);
  while (keys_[b] != 0 && keys_[b] != key) b = (b + 1) & mask;
  if (keys_[b] == 0) return;
  // Backward-shift deletion: pull later entries of the probe run into the
  // hole so lookups never need tombstones.
  std::size_t hole = b;
  std::size_t j = b;
  while (true) {
    j = (j + 1) & mask;
    if (keys_[j] == 0) break;
    const std::size_t home = bucketOf(keys_[j], mask);
    const bool reachable = hole <= j ? (home <= hole || home > j) : (home <= hole && home > j);
    if (reachable) {
      keys_[hole] = keys_[j];
      slots_[hole] = slots_[j];
      hole = j;
    }
  }
  keys_[hole] = 0;
  --size_;
}

// --- FluidSimulator ----------------------------------------------------

FluidSimulator::FluidSimulator() {
  const char* check = std::getenv("BEESIM_SOLVER_CHECK");
  if (check != nullptr && *check != '\0' && std::string_view(check) != "0") {
    solverCheck_ = true;
  }
}

FluidSimulator::~FluidSimulator() = default;  // out of line for the hub's type

void FluidSimulator::addObserver(FluidObserver* observer) {
  BEESIM_ASSERT(observer != nullptr, "addObserver needs an observer");
  if (observer_ == nullptr) {
    observer_ = observer;
    return;
  }
  if (observer_ == observer) return;
  if (hub_ != nullptr && observer_ == hub_.get()) {
    hub_->add(observer);
    return;
  }
  // A second distinct observer: promote the slot to the hub, preserving the
  // currently installed one ahead of the newcomer.  A stale hub from an
  // earlier episode (left behind by setObserver clobbering it) is reset.
  if (hub_ == nullptr) hub_ = std::make_unique<ObserverHub>();
  hub_->clear();
  hub_->add(observer_);
  hub_->add(observer);
  observer_ = hub_.get();
}

void FluidSimulator::removeObserver(FluidObserver* observer) {
  if (observer == nullptr) return;
  if (observer_ == observer) {
    observer_ = nullptr;
    return;
  }
  if (hub_ != nullptr && observer_ == hub_.get()) {
    hub_->remove(observer);
    if (hub_->empty()) observer_ = nullptr;
  }
}

ResourceIndex FluidSimulator::addResource(ResourceSpec spec) {
  BEESIM_ASSERT(spec.capacity != nullptr, "resource needs a capacity model");
  const auto r = static_cast<std::uint32_t>(resources_.size());
  resources_.push_back(std::move(spec));
  resCapacity_.push_back(0.0);
  resFlowCount_.push_back(0);
  resQueueDepth_.push_back(0.0);
  resLoaded_.push_back(0);
  ufParent_.push_back(r);
  ufSize_.push_back(1);
  compHead_.push_back(kNone);
  compTail_.push_back(kNone);
  compFlowCount_.push_back(0);
  compLastProgress_.push_back(0.0);
  compNextCompletion_.push_back(kInf);
  compDirty_.push_back(0);
  compStructural_.push_back(0);
  compCapDrift_.push_back(0.0);
  compListed_.push_back(0);
  return ResourceIndex{r};
}

const std::string& FluidSimulator::resourceName(ResourceIndex idx) const {
  BEESIM_ASSERT(idx.value < resources_.size(), "unknown resource index");
  return resources_[idx.value].name;
}

std::uint32_t FluidSimulator::findRoot(std::uint32_t r) const {
  std::uint32_t root = r;
  while (ufParent_[root] != root) root = ufParent_[root];
  while (ufParent_[r] != root) {  // path compression
    const auto next = ufParent_[r];
    ufParent_[r] = root;
    r = next;
  }
  return root;
}

std::uint32_t FluidSimulator::unite(std::uint32_t a, std::uint32_t b, SimTime at) {
  if (a == b) return a;
  BEESIM_ASSERT(compLastProgress_[a] == at && compLastProgress_[b] == at,
                "components must be advanced to the merge instant");
  if (ufSize_[a] < ufSize_[b]) std::swap(a, b);
  ufParent_[b] = a;
  ufSize_[a] += ufSize_[b];
  if (compHead_[b] != kNone) {
    if (compHead_[a] == kNone) {
      compHead_[a] = compHead_[b];
    } else {
      flowNext_[compTail_[a]] = compHead_[b];
    }
    compTail_[a] = compTail_[b];
  }
  compFlowCount_[a] += compFlowCount_[b];
  compNextCompletion_[a] = std::min(compNextCompletion_[a], compNextCompletion_[b]);
  // Carry the absorbed component's deferral state: its accumulated capacity
  // drift and structural flag now belong to the merged component.
  compCapDrift_[a] += compCapDrift_[b];
  if (compStructural_[b] != 0) compStructural_[a] = 1;
  if (compDirty_[b] != 0 && compDirty_[a] == 0) markDirty(a, false);
  compHead_[b] = kNone;
  compTail_[b] = kNone;
  compFlowCount_[b] = 0;
  compNextCompletion_[b] = kInf;
  compDirty_[b] = 0;
  compStructural_[b] = 0;
  compCapDrift_[b] = 0.0;
  listComponent(a);
  return a;
}

void FluidSimulator::markDirty(std::uint32_t root, bool structural) {
  if (structural) compStructural_[root] = 1;
  if (compDirty_[root] != 0) return;
  compDirty_[root] = 1;
  dirtyRoots_.push_back(root);
}

void FluidSimulator::listComponent(std::uint32_t root) {
  if (compListed_[root] != 0) return;
  compListed_[root] = 1;
  activeRoots_.push_back(root);
}

void FluidSimulator::resetComponents() {
  const auto n = static_cast<std::uint32_t>(resources_.size());
  const SimTime t = engine_.now();
  for (std::uint32_t r = 0; r < n; ++r) {
    ufParent_[r] = r;
    ufSize_[r] = 1;
    compHead_[r] = kNone;
    compTail_[r] = kNone;
    compFlowCount_[r] = 0;
    compLastProgress_[r] = t;
    compNextCompletion_[r] = kInf;
    compDirty_[r] = 0;
    compStructural_[r] = 0;
    compCapDrift_[r] = 0.0;
    compListed_[r] = 0;
    resLoaded_[r] = 0;
  }
  activeRoots_.clear();
  dirtyRoots_.clear();
  loadedRes_.clear();
  pendingAllDirty_ = false;
}

std::uint32_t FluidSimulator::allocateFlowSlot() {
  if (!freeFlowSlots_.empty()) {
    const auto slot = freeFlowSlots_.back();
    freeFlowSlots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(flowId_.size());
  flowId_.push_back(0);
  flowRemaining_.push_back(0.0);
  flowWeight_.push_back(1.0);
  flowRateCap_.push_back(0.0);
  flowRate_.push_back(0.0);
  flowStart_.push_back(0.0);
  flowBytes_.push_back(0);
  flowOnComplete_.emplace_back();
  flowNext_.push_back(kNone);
  pathOffset_.push_back(0);
  pathLen_.push_back(0);
  pathCap_.push_back(0);
  return slot;
}

void FluidSimulator::freeFlowSlot(std::uint32_t slot) {
  flowId_[slot] = 0;
  flowRate_[slot] = 0.0;
  flowOnComplete_[slot] = nullptr;
  freeFlowSlots_.push_back(slot);
}

FlowId FluidSimulator::startFlow(FlowSpec spec) {
  BEESIM_ASSERT(!spec.path.empty(), "flow path must not be empty");
  for (const auto r : spec.path) {
    BEESIM_ASSERT(r.value < resources_.size(), "flow crosses an unknown resource");
  }
  const FlowId id{nextFlowId_++};
  const SimTime t = engine_.now();

  if (spec.bytes == 0) {
    // Degenerate flow: completes instantly, never enters the solver.  The
    // observer still sees the full start/complete lifecycle so trace-derived
    // flow counts agree with the callers' view.
    if (observer_ != nullptr) {
      observer_->onFlowStarted(id, spec.path, 0, t);
    }
    if (observer_ != nullptr || spec.onComplete) {
      FlowStats stats{id, t, t, 0};
      engine_.scheduleAfter(0.0, [this, cb = std::move(spec.onComplete), stats] {
        if (observer_ != nullptr) observer_->onFlowCompleted(stats);
        if (cb) cb(stats);
      });
    }
    return id;
  }

  const auto slot = allocateFlowSlot();
  flowId_[slot] = id.value;
  flowRemaining_[slot] = util::toMiB(spec.bytes);
  flowWeight_[slot] = spec.queueWeight;
  flowRateCap_[slot] = spec.rateCap;
  flowRate_[slot] = 0.0;
  flowStart_[slot] = t;
  flowBytes_[slot] = spec.bytes;
  flowOnComplete_[slot] = std::move(spec.onComplete);

  const auto len = static_cast<std::uint32_t>(spec.path.size());
  if (pathCap_[slot] < len) {
    // The slot's previous arena region is too small; claim a fresh one at
    // the end.  Slots recycled for same-shaped flows reuse their region, so
    // the arena stops growing once the workload's shapes have been seen.
    pathOffset_[slot] = static_cast<std::uint32_t>(pathArena_.size());
    pathCap_[slot] = len;
    pathArena_.resize(pathArena_.size() + len);
    adjacencyArena_.resize(adjacencyArena_.size() + len);
  }
  pathLen_[slot] = len;
  for (std::uint32_t i = 0; i < len; ++i) {
    pathArena_[pathOffset_[slot] + i] = spec.path[i];
    adjacencyArena_[pathOffset_[slot] + i] = spec.path[i].value;
  }

  // Settle and merge the components the path touches.  Banking each
  // component's progress *before* membership changes keeps the piecewise
  // integration exact: old rates applied up to t, new rates from t on.
  std::uint32_t root = findRoot(spec.path[0].value);
  advanceComponent(root, t);
  for (std::uint32_t i = 1; i < len; ++i) {
    const auto rr = findRoot(spec.path[i].value);
    if (rr == root) continue;
    advanceComponent(rr, t);
    root = unite(root, rr, t);
  }

  flowNext_[slot] = kNone;
  if (compTail_[root] == kNone) {
    compHead_[root] = slot;
  } else {
    flowNext_[compTail_[root]] = slot;
  }
  compTail_[root] = slot;
  ++compFlowCount_[root];
  for (std::uint32_t i = 0; i < len; ++i) {
    const auto r = spec.path[i].value;
    if (resLoaded_[r] == 0) {
      resLoaded_[r] = 1;
      loadedRes_.push_back(r);
    }
    ++resFlowCount_[r];
    resQueueDepth_[r] += spec.queueWeight;
  }
  markDirty(root);
  listComponent(root);

  if (observer_ != nullptr) {
    observer_->onFlowStarted(
        id, std::span<const ResourceIndex>(pathArena_.data() + pathOffset_[slot], len),
        spec.bytes, t);
  }
  idMap_.insert(id.value, slot);
  ++activeCount_;
  scheduleResolve();
  return id;
}

void FluidSimulator::startFlowAt(SimTime at, FlowSpec spec) {
  engine_.schedule(at, [this, spec = std::move(spec)]() mutable { startFlow(std::move(spec)); });
}

util::MiBps FluidSimulator::flowRate(FlowId id) const {
  const auto slot = idMap_.find(id.value);
  return slot == kNone ? 0.0 : flowRate_[slot];
}

bool FluidSimulator::flowActive(FlowId id) const { return idMap_.find(id.value) != kNone; }

std::optional<util::Bytes> FluidSimulator::cancelFlow(FlowId id) {
  const auto slot = idMap_.find(id.value);
  if (slot == kNone) return std::nullopt;
  const SimTime t = engine_.now();
  const auto root = findRoot(adjacencyArena_[pathOffset_[slot]]);
  advanceComponent(root, t);

  // Unlink the slot from the component's intrusive flow list.
  std::uint32_t prev = kNone;
  std::uint32_t cur = compHead_[root];
  while (cur != slot) {
    BEESIM_ASSERT(cur != kNone, "cancelled flow missing from its component list");
    prev = cur;
    cur = flowNext_[cur];
  }
  if (prev == kNone) {
    compHead_[root] = flowNext_[slot];
  } else {
    flowNext_[prev] = flowNext_[slot];
  }
  if (compTail_[root] == slot) compTail_[root] = prev;
  --compFlowCount_[root];

  const double remainingMiB = std::max(0.0, flowRemaining_[slot]);
  const auto remaining = static_cast<util::Bytes>(
      std::min<double>(std::ceil(remainingMiB * static_cast<double>(util::kMiB)),
                       static_cast<double>(flowBytes_[slot])));
  if (observer_ != nullptr) {
    observer_->onFlowCancelled(FlowStats{id, flowStart_[slot], t, remaining});
  }

  removeFlowLoad(slot);
  idMap_.erase(id.value);
  --activeCount_;
  freeFlowSlot(slot);
  markDirty(root);
  scheduleResolve();
  return remaining;
}

void FluidSimulator::invalidateCapacities() {
  pendingAllDirty_ = true;
  scheduleResolve();
}

void FluidSimulator::setSolverEpsilon(double epsilon) {
  BEESIM_ASSERT(epsilon >= 0.0, "solver epsilon must be >= 0");
  BEESIM_ASSERT(std::isfinite(epsilon), "solver epsilon must be finite");
  epsilon_ = epsilon;
}

void FluidSimulator::scheduleResolve() {
  if (resolvePending_) return;
  resolvePending_ = true;
  engine_.scheduleAfter(0.0, [this] {
    resolvePending_ = false;
    resolveNow();
  });
}

void FluidSimulator::advanceComponent(std::uint32_t root, SimTime t) {
  BEESIM_ASSERT(t >= compLastProgress_[root], "component progress moved backwards");
  const double dt = t - compLastProgress_[root];
  if (dt > 0.0) {
    for (auto slot = compHead_[root]; slot != kNone; slot = flowNext_[slot]) {
      flowRemaining_[slot] = std::max(0.0, flowRemaining_[slot] - flowRate_[slot] * dt);
    }
  }
  compLastProgress_[root] = t;
}

void FluidSimulator::removeFlowLoad(std::uint32_t slot) {
  const auto* adj = adjacencyArena_.data() + pathOffset_[slot];
  for (std::uint32_t i = 0; i < pathLen_[slot]; ++i) {
    const auto r = adj[i];
    --resFlowCount_[r];
    resQueueDepth_[r] -= flowWeight_[slot];
    // Reset to exactly zero when the resource empties so repeated +/- of
    // doubles cannot leave a residue in the queue-depth accounting.
    if (resFlowCount_[r] == 0) resQueueDepth_[r] = 0.0;
  }
}

void FluidSimulator::settleComponent(std::uint32_t root, SimTime t) {
  advanceComponent(root, t);
  std::uint32_t prev = kNone;
  std::uint32_t slot = compHead_[root];
  while (slot != kNone) {
    const auto next = flowNext_[slot];
    if (flowRemaining_[slot] <= kRemainderEpsMiB) {
      if (prev == kNone) {
        compHead_[root] = next;
      } else {
        flowNext_[prev] = next;
      }
      if (compTail_[root] == slot) compTail_[root] = prev;
      --compFlowCount_[root];
      removeFlowLoad(slot);
      idMap_.erase(flowId_[slot]);
      --activeCount_;
      // Callbacks are deferred to the drain list: an onComplete that starts
      // new flows (the IOR segment chain does) must not mutate component
      // lists while this sweep walks them.
      drain_.push_back(DrainEntry{FlowStats{FlowId{flowId_[slot]}, flowStart_[slot], t,
                                            flowBytes_[slot]},
                                  std::move(flowOnComplete_[slot])});
      freeFlowSlot(slot);
    } else {
      prev = slot;
    }
    slot = next;
  }
}

void FluidSimulator::resolveNow() {
  // RAII timer so every exit path (including the drained early-return) banks
  // its wall time; the clock is only touched when profiling is on.
  struct ProfileScope {
    bool on;
    double& sink;
    std::chrono::steady_clock::time_point start;
    explicit ProfileScope(bool enabled, double& total)
        : on(enabled), sink(total),
          start(enabled ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{}) {}
    ~ProfileScope() {
      if (on) {
        sink += std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                    .count();
      }
    }
  } profile(profiling_, solveSeconds_);

  const SimTime t = engine_.now();
  ++resolveCount_;

  // 1. Components whose next completion is due: bank progress and move the
  //    finished flows out.  A due component is re-solved regardless, so its
  //    completion horizon is refreshed even when rounding left a sliver.
  for (std::size_t i = 0; i < activeRoots_.size();) {
    const auto r = activeRoots_[i];
    if (findRoot(r) != r || compFlowCount_[r] == 0) {
      compListed_[r] = 0;
      activeRoots_[i] = activeRoots_.back();
      activeRoots_.pop_back();
      continue;
    }
    if (compNextCompletion_[r] <= t) {
      settleComponent(r, t);
      markDirty(r);
    }
    ++i;
  }

  // 2. Run the deferred completion callbacks.  These may start new flows
  //    (which merge/dirty components and queue another +0 resolve -- that one
  //    will find everything clean) or invalidate capacities.
  for (auto& entry : drain_) {
    if (observer_ != nullptr) observer_->onFlowCompleted(entry.stats);
    if (entry.onComplete) entry.onComplete(entry.stats);
  }
  drain_.clear();

  // 3. System drained: reset the merge-only union-find so the next episode
  //    starts from singleton components.
  if (activeCount_ == 0) {
    resetComponents();
    return;
  }

  // 4. Evaluate the capacity of every *loaded* resource (capacity models are
  //    pure given (load, time), so clean components keep mathematically
  //    identical rates) and dirty the component of any resource whose
  //    capacity moved.  The loaded list is compacted lazily so this loop --
  //    the only per-resolve full sweep left -- costs O(resources carrying
  //    flows), not O(cluster inventory).  Capacity-only changes are marked
  //    non-structural and feed the component's |Δcapacity| drift; a
  //    transition to or from exactly zero forces a structural (never
  //    deferred) re-solve so stall/unstall is always observed.
  if (pendingAllDirty_) {
    pendingAllDirty_ = false;
    for (std::size_t i = 0; i < activeRoots_.size();) {
      const auto r = activeRoots_[i];
      if (findRoot(r) != r || compFlowCount_[r] == 0) {
        compListed_[r] = 0;
        activeRoots_[i] = activeRoots_.back();
        activeRoots_.pop_back();
        continue;
      }
      markDirty(r, false);
      ++i;
    }
  }
  for (std::size_t i = 0; i < loadedRes_.size();) {
    const auto r = loadedRes_[i];
    if (resFlowCount_[r] == 0) {
      resLoaded_[r] = 0;
      loadedRes_[i] = loadedRes_.back();
      loadedRes_.pop_back();
      continue;
    }
    const ResourceLoad load{resFlowCount_[r], resQueueDepth_[r], t};
    const double cap = resources_[r].capacity(load);
    BEESIM_ASSERT(cap >= 0.0,
                  "capacity model returned a negative rate for " + resources_[r].name);
    if (cap != resCapacity_[r]) {
      const auto root = findRoot(r);
      compCapDrift_[root] += std::abs(cap - resCapacity_[r]);
      const bool zeroEdge = cap == 0.0 || resCapacity_[r] == 0.0;
      resCapacity_[r] = cap;
      markDirty(root, zeroEdge);
    }
    ++i;
  }

  // 5. Re-solve each dirty component in isolation (max-min decomposes
  //    exactly over connected components).  A component whose dirtiness is
  //    purely capacity drift bounded by ε may be *deferred*: weighted
  //    max-min rates are 1-Lipschitz in each capacity and subadditive across
  //    changes, so Σ|Δcapacity| bounds every flow's rate movement.  Skipped
  //    components keep their simulated rates and completion horizons (both
  //    still describe the trajectory actually being integrated), and the
  //    drift carries over so repeated small wobbles eventually force an
  //    exact solve.
  solvedIds_.clear();
  solvedRates_.clear();
  std::size_t solvedCount = 0;
  const bool record = observer_ != nullptr;
  const SolverView view{resCapacity_, adjacencyArena_, pathOffset_,
                        pathLen_,     flowWeight_,     flowRateCap_};
  for (std::size_t i = 0; i < dirtyRoots_.size(); ++i) {
    const auto listed = dirtyRoots_[i];
    const auto r = findRoot(listed);
    if (compDirty_[r] == 0) continue;  // merged away or already solved
    if (epsilon_ > 0.0 && compStructural_[r] == 0 && compCapDrift_[r] <= epsilon_ &&
        compFlowCount_[r] != 0) {
      compDirty_[r] = 0;
      ++deferredResolves_;
      continue;
    }
    compDirty_[r] = 0;
    compStructural_[r] = 0;
    compCapDrift_[r] = 0.0;
    if (compFlowCount_[r] == 0) {
      compNextCompletion_[r] = kInf;
      continue;
    }
    advanceComponent(r, t);
    subsetSlots_.clear();
    for (auto slot = compHead_[r]; slot != kNone; slot = flowNext_[slot]) {
      subsetSlots_.push_back(slot);
    }
    solverIterations_ += referenceSolver_
                             ? workspace_.solveSubsetReference(view, subsetSlots_, flowRate_)
                             : workspace_.solveSubset(view, subsetSlots_, flowRate_);
    solvedCount += subsetSlots_.size();
    double horizon = kInf;
    for (const auto slot : subsetSlots_) {
      if (flowRate_[slot] > 0.0) {
        horizon = std::min(horizon, flowRemaining_[slot] / flowRate_[slot]);
      }
      if (record) {
        solvedIds_.push_back(FlowId{flowId_[slot]});
        solvedRates_.push_back(flowRate_[slot]);
      }
    }
    compNextCompletion_[r] = std::isfinite(horizon) ? t + horizon : kInf;
  }
  dirtyRoots_.clear();
  lastSolvedFlows_ = solvedCount;

  if (solverCheck_) runSolverCheck();

  if (observer_ != nullptr && !solvedIds_.empty()) {
    observer_->onRatesSolved(t, solvedIds_, solvedRates_, activeCount_);
  }
  scheduleNextWakeup();
}

void FluidSimulator::scheduleNextWakeup() {
  if (wakeup_) {
    engine_.cancel(*wakeup_);
    wakeup_.reset();
  }
  if (activeCount_ == 0) return;

  const SimTime t = engine_.now();
  double horizon = kInf;
  for (std::size_t i = 0; i < activeRoots_.size();) {
    const auto r = activeRoots_[i];
    if (findRoot(r) != r || compFlowCount_[r] == 0) {
      compListed_[r] = 0;
      activeRoots_[i] = activeRoots_.back();
      activeRoots_.pop_back();
      continue;
    }
    horizon = std::min(horizon, compNextCompletion_[r] - t);
    ++i;
  }
  if (resolveInterval_ > 0.0) horizon = std::min(horizon, resolveInterval_);
  if (!std::isfinite(horizon)) {
    // Every active flow is stalled (rate 0).  If no external event will ever
    // change capacities, run() will detect the deadlock.
    return;
  }
  // Clamp the advance to the clock's representable granularity: at a large
  // virtual time T, adding a horizon below ~T*eps would not move the clock
  // at all, and a nearly-finished flow (~1e-12 MiB left) would respin this
  // wakeup at the same instant forever.  The clamp (a few ULPs of T) is far
  // below any physically meaningful interval.
  const double minAdvance =
      std::max(1e-9, t * 4.0 * std::numeric_limits<double>::epsilon());
  horizon = std::max(horizon, minAdvance);
  wakeup_ = engine_.scheduleAfter(horizon, [this] {
    wakeup_.reset();
    resolveNow();
  });
}

void FluidSimulator::runSolverCheck() {
  // Differential mode: recount loads exactly and re-solve *all* live flows
  // as one subset with a scratch workspace, then compare against the
  // incrementally maintained state.  Allocation-freedom is not a goal here;
  // this path only runs when explicitly enabled.
  std::vector<std::uint32_t> countCheck(resources_.size(), 0);
  std::vector<double> depthCheck(resources_.size(), 0.0);
  checkSlots_.clear();
  for (std::uint32_t slot = 0; slot < flowId_.size(); ++slot) {
    if (flowId_[slot] == 0) continue;
    checkSlots_.push_back(slot);
    const auto* adj = adjacencyArena_.data() + pathOffset_[slot];
    for (std::uint32_t i = 0; i < pathLen_[slot]; ++i) {
      ++countCheck[adj[i]];
      depthCheck[adj[i]] += flowWeight_[slot];
    }
  }
  BEESIM_ASSERT(checkSlots_.size() == activeCount_,
                "solver check: live-slot count disagrees with activeFlows()");
  std::size_t compTotal = 0;
  for (const auto r : activeRoots_) {
    if (findRoot(r) == r) compTotal += compFlowCount_[r];
  }
  BEESIM_ASSERT(compTotal == activeCount_,
                "solver check: component flow counts disagree with activeFlows()");
  for (std::uint32_t r = 0; r < resources_.size(); ++r) {
    BEESIM_ASSERT(countCheck[r] == resFlowCount_[r],
                  "solver check: stale flow count on " + resources_[r].name);
    BEESIM_ASSERT(std::abs(depthCheck[r] - resQueueDepth_[r]) <=
                      1e-9 * std::max(1.0, std::abs(depthCheck[r])),
                  "solver check: stale queue depth on " + resources_[r].name);
  }

  checkRates_.resize(flowRate_.size());
  const SolverView view{resCapacity_, adjacencyArena_, pathOffset_,
                        pathLen_,     flowWeight_,     flowRateCap_};
  // The scratch solve uses the scalar reference walk, so in the default SoA
  // configuration this also differentially pins the vectorized layout.  With
  // ε-deferral enabled the maintained rates may lag the exact solution by up
  // to the configured bound, so the tolerance widens by ε.
  checkWorkspace_.solveSubsetReference(view, checkSlots_, checkRates_);
  for (const auto slot : checkSlots_) {
    const double expect = checkRates_[slot];
    const double got = flowRate_[slot];
    BEESIM_ASSERT(std::abs(got - expect) <=
                      1e-9 * std::max(1.0, std::abs(expect)) + epsilon_,
                  "solver check: incremental rate diverged for flow #" +
                      std::to_string(flowId_[slot]) + " (" + std::to_string(got) +
                      " vs " + std::to_string(expect) + ")");
  }
}

void FluidSimulator::run() {
  engine_.run();
  if (activeCount_ == 0) return;
  // Events drained but flows remain: all rates are zero and nothing will
  // change them.  Name the first few stalled flows and their paths -- the
  // resource whose capacity model returned 0 is almost always in there.
  std::string msg = "fluid simulation deadlocked: " + std::to_string(activeCount_) +
                    " flow(s) stalled at zero rate";
  std::size_t listed = 0;
  for (std::uint32_t slot = 0; slot < flowId_.size() && listed < 5; ++slot) {
    if (flowId_[slot] == 0) continue;
    ++listed;
    msg += "\n  flow #" + std::to_string(flowId_[slot]) + " via [";
    for (std::uint32_t i = 0; i < pathLen_[slot]; ++i) {
      if (i > 0) msg += " -> ";
      msg += resources_[adjacencyArena_[pathOffset_[slot] + i]].name;
    }
    msg += "]";
  }
  if (activeCount_ > listed) {
    msg += "\n  ... and " + std::to_string(activeCount_ - listed) + " more";
  }
  BEESIM_ASSERT(false, msg);
}

}  // namespace beesim::sim
