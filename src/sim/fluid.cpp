#include "sim/fluid.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace beesim::sim {

namespace {
// A flow is finished when fewer than this many MiB remain; guards against
// floating-point residue after piecewise integration.
constexpr double kRemainderEpsMiB = 1e-9;
}  // namespace

CapacityFn constantCapacity(util::MiBps capacity) {
  BEESIM_ASSERT(capacity >= 0.0, "capacity must be >= 0");
  return [capacity](const ResourceLoad&) { return capacity; };
}

FluidSimulator::FluidSimulator() = default;

ResourceIndex FluidSimulator::addResource(ResourceSpec spec) {
  BEESIM_ASSERT(spec.capacity != nullptr, "resource needs a capacity model");
  const ResourceIndex idx{static_cast<std::uint32_t>(resources_.size())};
  resources_.push_back(std::move(spec));
  return idx;
}

const std::string& FluidSimulator::resourceName(ResourceIndex idx) const {
  BEESIM_ASSERT(idx.value < resources_.size(), "unknown resource index");
  return resources_[idx.value].name;
}

FlowId FluidSimulator::startFlow(FlowSpec spec) {
  BEESIM_ASSERT(!spec.path.empty(), "flow path must not be empty");
  for (const auto r : spec.path) {
    BEESIM_ASSERT(r.value < resources_.size(), "flow crosses an unknown resource");
  }
  const FlowId id{nextFlowId_++};

  if (spec.bytes == 0) {
    // Degenerate flow: completes instantly, never enters the solver.  The
    // observer still sees the full start/complete lifecycle so trace-derived
    // flow counts agree with the callers' view.
    if (observer_ != nullptr) {
      observer_->onFlowStarted(id, spec.path, 0, engine_.now());
    }
    if (observer_ != nullptr || spec.onComplete) {
      FlowStats stats{id, engine_.now(), engine_.now(), 0};
      engine_.scheduleAfter(0.0, [this, cb = std::move(spec.onComplete), stats] {
        if (observer_ != nullptr) observer_->onFlowCompleted(stats);
        if (cb) cb(stats);
      });
    }
    return id;
  }

  ActiveFlow flow;
  flow.id = id;
  flow.path = std::move(spec.path);
  flow.remainingMiB = util::toMiB(spec.bytes);
  flow.queueWeight = spec.queueWeight;
  flow.rateCap = spec.rateCap;
  flow.startTime = engine_.now();
  flow.bytes = spec.bytes;
  flow.onComplete = std::move(spec.onComplete);

  advanceProgressTo(engine_.now());
  if (observer_ != nullptr) {
    observer_->onFlowStarted(id, flow.path, flow.bytes, engine_.now());
  }
  flowIndex_[id.value] = flows_.size();
  flows_.push_back(std::move(flow));
  ++activeCount_;
  ratesValid_ = false;
  scheduleResolve();
  return id;
}

void FluidSimulator::startFlowAt(SimTime at, FlowSpec spec) {
  engine_.schedule(at, [this, spec = std::move(spec)]() mutable { startFlow(std::move(spec)); });
}

util::MiBps FluidSimulator::flowRate(FlowId id) const {
  const auto it = flowIndex_.find(id.value);
  if (it == flowIndex_.end()) return 0.0;
  return flows_[it->second].rate;
}

void FluidSimulator::invalidateCapacities() {
  ratesValid_ = false;
  scheduleResolve();
}

void FluidSimulator::scheduleResolve() {
  if (resolvePending_) return;
  resolvePending_ = true;
  engine_.scheduleAfter(0.0, [this] {
    resolvePending_ = false;
    resolveNow();
  });
}

void FluidSimulator::advanceProgressTo(SimTime t) {
  BEESIM_ASSERT(t >= lastProgressTime_, "progress time moved backwards");
  const double dt = t - lastProgressTime_;
  if (dt > 0.0 && ratesValid_) {
    for (auto& flow : flows_) {
      flow.remainingMiB = std::max(0.0, flow.remainingMiB - flow.rate * dt);
    }
  }
  lastProgressTime_ = t;
}

void FluidSimulator::resolveNow() {
  advanceProgressTo(engine_.now());
  completeFinishedFlows();

  if (flows_.empty()) {
    ratesValid_ = true;
    return;
  }

  // Gather per-resource load.
  std::vector<ResourceLoad> loads(resources_.size());
  for (auto& load : loads) load.time = engine_.now();
  for (const auto& flow : flows_) {
    for (const auto r : flow.path) {
      ++loads[r.value].flowCount;
      loads[r.value].queueDepth += flow.queueWeight;
    }
  }

  // Evaluate capacities once per resource.
  std::vector<SolverResource> solverResources(resources_.size());
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    solverResources[r].capacity =
        loads[r].flowCount > 0 ? resources_[r].capacity(loads[r]) : 0.0;
    BEESIM_ASSERT(solverResources[r].capacity >= 0.0,
                  "capacity model returned a negative rate for " + resources_[r].name);
  }

  std::vector<SolverFlow> solverFlows(flows_.size());
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    solverFlows[f].resources.reserve(flows_[f].path.size());
    for (const auto r : flows_[f].path) solverFlows[f].resources.push_back(r.value);
    solverFlows[f].rateCap = flows_[f].rateCap;
    solverFlows[f].weight = flows_[f].queueWeight;
  }

  const auto solution = solveMaxMin(solverResources, solverFlows);
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    flows_[f].rate = solution.rates[f];
  }
  if (observer_ != nullptr) {
    std::vector<FlowId> ids(flows_.size());
    for (std::size_t f = 0; f < flows_.size(); ++f) ids[f] = flows_[f].id;
    observer_->onRatesSolved(engine_.now(), ids, solution.rates);
  }
  ratesValid_ = true;
  scheduleNextWakeup();
}

void FluidSimulator::completeFinishedFlows() {
  std::size_t f = 0;
  while (f < flows_.size()) {
    if (flows_[f].remainingMiB <= kRemainderEpsMiB) {
      ActiveFlow done = std::move(flows_[f]);
      flows_[f] = std::move(flows_.back());
      flows_.pop_back();
      flowIndex_.erase(done.id.value);
      if (f < flows_.size()) flowIndex_[flows_[f].id.value] = f;
      --activeCount_;
      const FlowStats stats{done.id, done.startTime, engine_.now(), done.bytes};
      if (observer_ != nullptr) observer_->onFlowCompleted(stats);
      if (done.onComplete) done.onComplete(stats);
    } else {
      ++f;
    }
  }
}

void FluidSimulator::scheduleNextWakeup() {
  if (wakeup_) {
    engine_.cancel(*wakeup_);
    wakeup_.reset();
  }
  if (flows_.empty()) return;

  double horizon = std::numeric_limits<double>::infinity();
  for (const auto& flow : flows_) {
    if (flow.rate > 0.0) {
      horizon = std::min(horizon, flow.remainingMiB / flow.rate);
    }
  }
  if (resolveInterval_ > 0.0) horizon = std::min(horizon, resolveInterval_);
  if (!std::isfinite(horizon)) {
    // Every active flow is stalled (rate 0).  If no external event will ever
    // change capacities, run() will detect the deadlock.
    return;
  }
  // Clamp the advance to the clock's representable granularity: at a large
  // virtual time T, adding a horizon below ~T*eps would not move the clock
  // at all, and a nearly-finished flow (~1e-12 MiB left) would respin this
  // wakeup at the same instant forever.  The clamp (a few ULPs of T) is far
  // below any physically meaningful interval.
  const double minAdvance = std::max(1e-9, engine_.now() * 4.0 *
                                               std::numeric_limits<double>::epsilon());
  horizon = std::max(horizon, minAdvance);
  wakeup_ = engine_.scheduleAfter(horizon, [this] {
    wakeup_.reset();
    // Bank the progress made at the current (still valid) rates *before*
    // invalidating them for the re-solve.
    advanceProgressTo(engine_.now());
    ratesValid_ = false;  // capacities may be time-dependent
    resolveNow();
  });
}

void FluidSimulator::run() {
  while (true) {
    engine_.run();
    if (flows_.empty()) return;
    // Events drained but flows remain: all rates are zero and nothing will
    // change them.
    BEESIM_ASSERT(false, "fluid simulation deadlocked: " + std::to_string(flows_.size()) +
                             " flow(s) stalled at zero rate");
  }
}

}  // namespace beesim::sim
