// Max-min fair bandwidth sharing (progressive filling).
//
// This is the heart of the flow-level network/storage model.  Given a set of
// resources with capacities (MiB/s) and a set of flows, each crossing a
// subset of the resources and optionally rate-capped, the solver computes the
// unique max-min fair rate vector: rates are raised uniformly until a
// resource (or a flow cap) saturates, the flows bottlenecked there are
// frozen, and filling continues with the rest.
//
// The allocation is *weighted*: each flow's share scales with its weight
// (its outstanding-request intensity).  TCP-like fair sharing on a congested
// Ethernet link is exactly what the paper's Scenario 1 exercises (Fig. 8/9: the hotter of the two server links
// dictates completion time); the same abstraction covers storage-side
// service capacity in Scenario 2.
//
// Two entry points:
//
//   * solveMaxMin(resources, flows) -- the original self-contained call,
//     kept for existing callers and as the reference implementation for the
//     differential check mode (BEESIM_SOLVER_CHECK).
//   * SolverWorkspace::solveSubset -- the allocation-free core used by the
//     fluid simulator's incremental resolver.  The caller owns the problem
//     in flat CSR-style arrays (one shared adjacency arena, per-flow
//     offset/length) and asks for the rates of an arbitrary *subset* of
//     flows (one connected component at a time).  All scratch state lives in
//     the workspace and is reused across solves, so a steady-state resolve
//     performs zero heap allocations.
//
// Layout: solveSubset compacts the named subset into dense structure-of-
// arrays vectors (per-flow weight/cap/rate, per-resource residual/active
// weight, locally renumbered adjacency) so the progressive-filling inner
// loops -- the delta scan, the uniform increment and the residual update --
// run branch-free over contiguous memory and auto-vectorize.  The compaction
// produces bit-identical rates to the scalar reference walk
// (solveSubsetReference, the pre-SoA implementation kept for differential
// testing): every floating-point operation is performed on the same values
// in the same order, frozen flows merely receive `+= delta * 0.0` instead of
// being skipped.
//
// Degenerate inputs are well-defined:
//   * a flow crossing a zero-capacity resource receives rate 0 (it never
//     enters the filling and contributes no weight anywhere);
//   * a subset whose flows are all dead this way solves to all-zero rates;
//   * a flow with weight <= 0 or an empty resource list is a contract
//     violation (ContractError) -- weights are queue depths and must be
//     positive for the weighted allocation to be defined.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace beesim::sim {

/// Solver input: one resource with an effective capacity for this solve.
struct SolverResource {
  util::MiBps capacity = 0.0;
};

/// Solver input: one flow crossing `resources` (indices into the resource
/// array).  `rateCap` bounds the flow's own rate (<= 0 means uncapped).
/// `weight` scales the flow's fair share (weighted max-min): a flow backed
/// by twice the outstanding requests receives twice the rate on a shared
/// bottleneck.  Flows of one application have equal weights, so single-app
/// experiments reduce to the classic unweighted allocation.
struct SolverFlow {
  std::vector<std::uint32_t> resources;
  util::MiBps rateCap = 0.0;
  double weight = 1.0;
};

struct SolverResult {
  /// Max-min fair rate per flow, same order as the input.
  std::vector<util::MiBps> rates;
  /// Number of filling iterations (diagnostics / micro-bench).
  std::size_t iterations = 0;
};

/// CSR-style view of a max-min problem.  The per-flow arrays are indexed by
/// *flow slot*; a slot's crossed resources are
/// `adjacency[adjOffset[f] .. adjOffset[f] + adjLen[f])`.  Slots not named
/// in a solveSubset call are ignored entirely, so callers may keep free
/// (stale) slots in the arrays.
struct SolverView {
  std::span<const double> capacity;          // per resource
  std::span<const std::uint32_t> adjacency;  // shared resource-index arena
  std::span<const std::uint32_t> adjOffset;  // per flow slot
  std::span<const std::uint32_t> adjLen;     // per flow slot
  std::span<const double> weight;            // per flow slot
  std::span<const double> rateCap;           // per flow slot (<= 0: uncapped)
};

/// Reusable scratch state for progressive filling.  One workspace may be
/// used for any number of solves over problems of any size; internal arrays
/// grow monotonically and are reused, so repeated solves of a stable-sized
/// problem allocate nothing.
class SolverWorkspace {
 public:
  /// Computes the weighted max-min rates of `flows` (slot indices into the
  /// view's per-flow arrays), writing `rates[f]` for exactly those slots.
  /// The subset must be self-contained (a union of connected components):
  /// rates are computed as if no other flow existed.  Flows crossing a
  /// zero-capacity resource receive rate 0.  Returns the number of filling
  /// iterations.  This is the SoA fast path; it produces bit-identical
  /// rates to solveSubsetReference.
  std::size_t solveSubset(const SolverView& view, std::span<const std::uint32_t> flows,
                          std::span<double> rates);

  /// The pre-SoA scalar implementation (gather/scatter through the CSR view
  /// per iteration).  Kept as the reference for differential tests pinning
  /// the SoA layout, and as the baseline leg of the scale benchmark.
  /// Identical contract and bit-identical results.
  std::size_t solveSubsetReference(const SolverView& view,
                                   std::span<const std::uint32_t> flows,
                                   std::span<double> rates);

 private:
  void ensureResourceCapacity(std::size_t resourceCount);

  // Per-resource scratch, stamped per solve so nothing needs clearing.
  std::vector<std::uint64_t> resStamp_;
  std::vector<double> residual_;
  std::vector<double> activeWeight_;
  std::vector<std::uint32_t> activeCount_;
  std::vector<char> saturated_;
  std::uint64_t stamp_ = 0;

  // Compact per-solve lists (reused capacity).
  std::vector<std::uint32_t> touchedRes_;
  std::vector<std::uint32_t> activeFlows_;

  // --- Dense SoA state (solveSubset fast path; reused capacity) ---------
  // Global resource index -> dense id, valid when resStamp_ == stamp_.
  std::vector<std::uint32_t> resDense_;
  // Per dense resource.
  std::vector<double> rCapacity_;
  std::vector<double> rResidual_;
  std::vector<double> rActiveWeight_;
  std::vector<std::uint32_t> rActiveCount_;
  std::vector<char> rSaturated_;
  // Per dense flow.  fActiveW holds the weight while the flow is filling and
  // exactly 0.0 once frozen (so the increment loop is branch-free); fCapOrInf
  // holds the rate cap while the flow is filling *and* capped, +inf
  // otherwise (so the cap scan is branch-free and frozen flows never
  // re-tighten delta).
  std::vector<std::uint32_t> fSlot_;
  std::vector<double> fWeight_;
  std::vector<double> fActiveW_;
  std::vector<double> fCapOrInf_;
  std::vector<double> fRate_;
  std::vector<std::uint32_t> fAdjOffset_;
  std::vector<std::uint32_t> fAdjLen_;
  std::vector<std::uint32_t> denseAdj_;
  std::vector<std::uint32_t> activeList_;
};

/// Computes the max-min fair allocation.
///
/// Preconditions: every flow crosses at least one resource; all resource
/// indices are in range; capacities are >= 0; weights are > 0.  Flows
/// through a zero-capacity resource receive rate 0.
SolverResult solveMaxMin(std::span<const SolverResource> resources,
                         std::span<const SolverFlow> flows);

}  // namespace beesim::sim
