// Max-min fair bandwidth sharing (progressive filling).
//
// This is the heart of the flow-level network/storage model.  Given a set of
// resources with capacities (MiB/s) and a set of flows, each crossing a
// subset of the resources and optionally rate-capped, the solver computes the
// unique max-min fair rate vector: rates are raised uniformly until a
// resource (or a flow cap) saturates, the flows bottlenecked there are
// frozen, and filling continues with the rest.
//
// The allocation is *weighted*: each flow's share scales with its weight
// (its outstanding-request intensity).  TCP-like fair sharing on a congested
// Ethernet link is exactly what the paper's Scenario 1 exercises (Fig. 8/9: the hotter of the two server links
// dictates completion time); the same abstraction covers storage-side
// service capacity in Scenario 2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace beesim::sim {

/// Solver input: one resource with an effective capacity for this solve.
struct SolverResource {
  util::MiBps capacity = 0.0;
};

/// Solver input: one flow crossing `resources` (indices into the resource
/// array).  `rateCap` bounds the flow's own rate (<= 0 means uncapped).
/// `weight` scales the flow's fair share (weighted max-min): a flow backed
/// by twice the outstanding requests receives twice the rate on a shared
/// bottleneck.  Flows of one application have equal weights, so single-app
/// experiments reduce to the classic unweighted allocation.
struct SolverFlow {
  std::vector<std::uint32_t> resources;
  util::MiBps rateCap = 0.0;
  double weight = 1.0;
};

struct SolverResult {
  /// Max-min fair rate per flow, same order as the input.
  std::vector<util::MiBps> rates;
  /// Number of filling iterations (diagnostics / micro-bench).
  std::size_t iterations = 0;
};

/// Computes the max-min fair allocation.
///
/// Preconditions: every flow crosses at least one resource; all resource
/// indices are in range; capacities are >= 0.  Flows through a zero-capacity
/// resource receive rate 0.
SolverResult solveMaxMin(std::span<const SolverResource> resources,
                         std::span<const SolverFlow> flows);

}  // namespace beesim::sim
