// Max-min fair bandwidth sharing (progressive filling).
//
// This is the heart of the flow-level network/storage model.  Given a set of
// resources with capacities (MiB/s) and a set of flows, each crossing a
// subset of the resources and optionally rate-capped, the solver computes the
// unique max-min fair rate vector: rates are raised uniformly until a
// resource (or a flow cap) saturates, the flows bottlenecked there are
// frozen, and filling continues with the rest.
//
// The allocation is *weighted*: each flow's share scales with its weight
// (its outstanding-request intensity).  TCP-like fair sharing on a congested
// Ethernet link is exactly what the paper's Scenario 1 exercises (Fig. 8/9: the hotter of the two server links
// dictates completion time); the same abstraction covers storage-side
// service capacity in Scenario 2.
//
// Two entry points:
//
//   * solveMaxMin(resources, flows) -- the original self-contained call,
//     kept for existing callers and as the reference implementation for the
//     differential check mode (BEESIM_SOLVER_CHECK).
//   * SolverWorkspace::solveSubset -- the allocation-free core used by the
//     fluid simulator's incremental resolver.  The caller owns the problem
//     in flat CSR-style arrays (one shared adjacency arena, per-flow
//     offset/length) and asks for the rates of an arbitrary *subset* of
//     flows (one connected component at a time).  All scratch state lives in
//     the workspace and is reused across solves, so a steady-state resolve
//     performs zero heap allocations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace beesim::sim {

/// Solver input: one resource with an effective capacity for this solve.
struct SolverResource {
  util::MiBps capacity = 0.0;
};

/// Solver input: one flow crossing `resources` (indices into the resource
/// array).  `rateCap` bounds the flow's own rate (<= 0 means uncapped).
/// `weight` scales the flow's fair share (weighted max-min): a flow backed
/// by twice the outstanding requests receives twice the rate on a shared
/// bottleneck.  Flows of one application have equal weights, so single-app
/// experiments reduce to the classic unweighted allocation.
struct SolverFlow {
  std::vector<std::uint32_t> resources;
  util::MiBps rateCap = 0.0;
  double weight = 1.0;
};

struct SolverResult {
  /// Max-min fair rate per flow, same order as the input.
  std::vector<util::MiBps> rates;
  /// Number of filling iterations (diagnostics / micro-bench).
  std::size_t iterations = 0;
};

/// CSR-style view of a max-min problem.  The per-flow arrays are indexed by
/// *flow slot*; a slot's crossed resources are
/// `adjacency[adjOffset[f] .. adjOffset[f] + adjLen[f])`.  Slots not named
/// in a solveSubset call are ignored entirely, so callers may keep free
/// (stale) slots in the arrays.
struct SolverView {
  std::span<const double> capacity;          // per resource
  std::span<const std::uint32_t> adjacency;  // shared resource-index arena
  std::span<const std::uint32_t> adjOffset;  // per flow slot
  std::span<const std::uint32_t> adjLen;     // per flow slot
  std::span<const double> weight;            // per flow slot
  std::span<const double> rateCap;           // per flow slot (<= 0: uncapped)
};

/// Reusable scratch state for progressive filling.  One workspace may be
/// used for any number of solves over problems of any size; internal arrays
/// grow monotonically and are reused, so repeated solves of a stable-sized
/// problem allocate nothing.
class SolverWorkspace {
 public:
  /// Computes the weighted max-min rates of `flows` (slot indices into the
  /// view's per-flow arrays), writing `rates[f]` for exactly those slots.
  /// The subset must be self-contained (a union of connected components):
  /// rates are computed as if no other flow existed.  Flows crossing a
  /// zero-capacity resource receive rate 0.  Returns the number of filling
  /// iterations.
  std::size_t solveSubset(const SolverView& view, std::span<const std::uint32_t> flows,
                          std::span<double> rates);

 private:
  void ensureResourceCapacity(std::size_t resourceCount);

  // Per-resource scratch, stamped per solve so nothing needs clearing.
  std::vector<std::uint64_t> resStamp_;
  std::vector<double> residual_;
  std::vector<double> activeWeight_;
  std::vector<std::uint32_t> activeCount_;
  std::vector<char> saturated_;
  std::uint64_t stamp_ = 0;

  // Compact per-solve lists (reused capacity).
  std::vector<std::uint32_t> touchedRes_;
  std::vector<std::uint32_t> activeFlows_;
};

/// Computes the max-min fair allocation.
///
/// Preconditions: every flow crosses at least one resource; all resource
/// indices are in range; capacities are >= 0.  Flows through a zero-capacity
/// resource receive rate 0.
SolverResult solveMaxMin(std::span<const SolverResource> resources,
                         std::span<const SolverFlow> flows);

}  // namespace beesim::sim
