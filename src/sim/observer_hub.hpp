// ObserverHub: fan-out multiplexer for FluidObserver.
//
// FluidSimulator exposes a single observer slot; before this hub existed,
// attaching a FlowTracer silently clobbered whatever was installed (and its
// destructor detached observers installed *after* it).  The hub turns the
// slot into a composition point: any number of observers register with
// add()/remove() and every simulator callback fans out to all of them in
// attachment order.
//
// FluidSimulator owns one hub internally and promotes the slot to it the
// moment a second observer arrives (see FluidSimulator::addObserver), so
// tracing composes with fault-injection or mirroring listeners instead of
// fighting over the slot.  The hub is also usable standalone for tests.
#pragma once

#include <vector>

#include "sim/fluid.hpp"

namespace beesim::sim {

class ObserverHub final : public FluidObserver {
 public:
  /// Register an observer (non-null; duplicates are ignored).  The caller
  /// keeps ownership and must outlive the hub's dispatching.
  void add(FluidObserver* observer);

  /// Deregister; no-op when the observer is not registered.  Safe to call
  /// from inside a callback of the observer being removed (the dispatch
  /// loop re-checks bounds), which is what observer destructors do.
  void remove(FluidObserver* observer);

  void clear() { observers_.clear(); }
  std::size_t size() const { return observers_.size(); }
  bool empty() const { return observers_.empty(); }
  bool contains(const FluidObserver* observer) const;

  // FluidObserver: forward to every registered observer in attach order.
  void onFlowStarted(FlowId id, std::span<const ResourceIndex> path, util::Bytes bytes,
                     SimTime at) override;
  void onRatesSolved(SimTime at, std::span<const FlowId> ids,
                     std::span<const util::MiBps> rates, std::size_t activeFlows) override;
  void onFlowCompleted(const FlowStats& stats) override;
  void onFlowCancelled(const FlowStats& stats) override;

 private:
  std::vector<FluidObserver*> observers_;
  /// Cursor of the dispatch loop currently running; remove() pulls it back
  /// when erasing at or before it so later observers are not skipped.
  /// (Unsigned wrap on removing index 0 mid-dispatch is intended: the ++ of
  /// the loop brings the cursor back to the shifted-down element.)
  std::size_t dispatchIndex_ = 0;
};

}  // namespace beesim::sim
