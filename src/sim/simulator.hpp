// Discrete-event simulation core.
//
// A Simulator owns virtual time and an event queue.  Events scheduled for the
// same instant fire in scheduling order (FIFO tie-break via a sequence
// number), which makes runs bit-reproducible.
//
// Storage is a slot pool: queue entries are trivially-copyable triples
// (time, sequence, slot) and callbacks live in generation-stamped slots that
// are recycled through a free list.  Once the pool has warmed up to the
// steady-state number of in-flight events, scheduling and cancelling perform
// no heap allocations (callbacks small enough for std::function's inline
// buffer included), which keeps the fluid resolver's hot path allocation-free.
//
// The queue is *sharded*: events hash (by slot) onto a small fixed set of
// per-shard binary heaps, and dispatch scans a flat array of cached shard
// minima.  A push or pop therefore touches O(log(pending / shards)) heap
// entries instead of O(log pending) in one monolithic heap -- at cluster
// scale (100k+ in-flight completions and wakeups) each completion-horizon
// reschedule re-heapifies only its own shard.  Because every event carries a
// globally unique sequence number, the (time, sequence) order is total, so
// dispatch order -- and with it every golden CSV -- is bit-identical for any
// shard count, including 1 (the legacy monolithic heap).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "util/units.hpp"

namespace beesim::sim {

/// Virtual time in seconds.
using SimTime = util::Seconds;

/// Handle to a scheduled event, usable for cancellation.  Only ids returned
/// by the simulator that issued them are meaningful; stale ids (already
/// fired) are recognized via a per-slot generation stamp.
struct EventId {
  std::uint64_t value = 0;
};

using EventFn = std::function<void()>;

class Simulator {
 public:
  /// Default shard count: small enough that the dispatch scan over cached
  /// shard minima stays a handful of cache lines, large enough to cut heap
  /// depth by 3 levels at scale.
  static constexpr std::size_t kDefaultShards = 8;

  Simulator() : Simulator(kDefaultShards) {}
  /// `shards` >= 1; dispatch order is independent of the choice.
  explicit Simulator(std::size_t shards);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now()).
  EventId schedule(SimTime at, EventFn fn);

  /// Schedule `fn` after `delay` seconds (>= 0).
  EventId scheduleAfter(SimTime delay, EventFn fn);

  /// Cancel a pending event.  Cancelling an already-fired or unknown event is
  /// a harmless no-op (the generation stamp rejects stale handles), so long
  /// simulations can cancel freely without growing any bookkeeping.
  void cancel(EventId id);

  /// Execute the next pending event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains; returns the number of events processed.
  std::size_t run();

  /// Run events with timestamps <= limit; afterwards now() == max(limit, last
  /// event time).  Returns the number of events processed.
  std::size_t runUntil(SimTime limit);

  /// Number of events still pending (cancelled events may be counted until
  /// they surface).
  std::size_t pending() const { return queued_; }

  /// Number of cancellations waiting for their event to surface.  Bounded by
  /// pending(); stays 0 when cancelling only already-fired events (regression
  /// guard for the unbounded-growth bug).
  std::size_t cancelledBacklog() const { return cancelledCount_; }

  std::size_t shardCount() const { return shards_.size(); }

 private:
  struct QueuedEvent {
    SimTime at;
    std::uint64_t sequence;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;  // FIFO among equal timestamps
    }
  };
  /// Cached minimum of one shard's heap; at == +inf marks an empty shard so
  /// the dispatch scan is branch-free over a flat array.
  struct ShardTop {
    SimTime at = std::numeric_limits<double>::infinity();
    std::uint64_t sequence = 0;
  };
  /// One pooled callback.  `generation` advances every time the slot is
  /// retired, so an EventId (slot | generation << 32) from a previous tenancy
  /// no longer matches.
  struct EventSlot {
    EventFn fn;
    std::uint32_t generation = 0;
    bool pending = false;
    bool cancelled = false;
  };

  void retireSlot(std::uint32_t slot);
  /// Index of the shard holding the globally next event (smallest (at,
  /// sequence)); requires queued_ > 0.
  std::size_t minShard() const;
  /// Pop the top of shard `s` and refresh its cached minimum.
  QueuedEvent popShard(std::size_t s);
  void refreshTop(std::size_t s);
  /// Retire cancelled events sitting at the global front so callers can read
  /// the true next timestamp.
  void purgeCancelledFront();

  SimTime now_ = 0.0;
  std::uint64_t nextSequence_ = 1;
  std::vector<std::vector<QueuedEvent>> shards_;  // binary min-heaps
  std::vector<ShardTop> tops_;
  std::size_t queued_ = 0;
  std::vector<EventSlot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::size_t cancelledCount_ = 0;
};

}  // namespace beesim::sim
