#include "sim/maxmin.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace beesim::sim {

namespace {
// Relative tolerance used to decide that a resource is saturated.  Rates are
// MiB/s magnitudes (1e0..1e5), so an absolute epsilon scaled to the capacity
// is robust.
constexpr double kEps = 1e-9;
}  // namespace

void SolverWorkspace::ensureResourceCapacity(std::size_t resourceCount) {
  if (resStamp_.size() >= resourceCount) return;
  resStamp_.resize(resourceCount, 0);
  residual_.resize(resourceCount, 0.0);
  activeWeight_.resize(resourceCount, 0.0);
  activeCount_.resize(resourceCount, 0);
  saturated_.resize(resourceCount, 0);
}

std::size_t SolverWorkspace::solveSubset(const SolverView& view,
                                         std::span<const std::uint32_t> flows,
                                         std::span<double> rates) {
  if (flows.empty()) return 0;
  ensureResourceCapacity(view.capacity.size());
  ++stamp_;

  // Initialize the touched-resource scratch exactly once per resource: the
  // stamp makes the arrays self-clearing, so solve cost scales with the
  // subset, not with the global resource count.
  touchedRes_.clear();
  for (const auto f : flows) {
    BEESIM_ASSERT(view.adjLen[f] > 0, "every flow must cross >= 1 resource");
    BEESIM_ASSERT(view.weight[f] > 0.0, "flow weight must be positive");
    const auto* adj = view.adjacency.data() + view.adjOffset[f];
    for (std::uint32_t i = 0; i < view.adjLen[f]; ++i) {
      const auto r = adj[i];
      BEESIM_ASSERT(r < view.capacity.size(), "flow references an unknown resource");
      if (resStamp_[r] != stamp_) {
        resStamp_[r] = stamp_;
        touchedRes_.push_back(r);
        residual_[r] = view.capacity[r];
        activeWeight_[r] = 0.0;
        activeCount_[r] = 0;
        saturated_[r] = 0;
      }
    }
  }

  // activeWeight_[r]: total weight of still-filling flows crossing r.
  // activeCount_[r] tracks the same set exactly; when it reaches zero the
  // weight is reset to exactly 0.0 (repeated subtraction of doubles can
  // leave a ~1e-16 ghost that would stall the filling with delta == 0).
  activeFlows_.clear();
  for (const auto f : flows) {
    const auto* adj = view.adjacency.data() + view.adjOffset[f];
    bool dead = false;
    for (std::uint32_t i = 0; i < view.adjLen[f]; ++i) {
      if (view.capacity[adj[i]] <= 0.0) dead = true;
    }
    rates[f] = 0.0;
    if (dead) continue;  // rate stays 0
    for (std::uint32_t i = 0; i < view.adjLen[f]; ++i) {
      activeWeight_[adj[i]] += view.weight[f];
      ++activeCount_[adj[i]];
    }
    activeFlows_.push_back(f);
  }

  std::size_t iterations = 0;
  while (!activeFlows_.empty()) {
    ++iterations;

    // The largest uniform *normalized* increment (rate per unit weight)
    // every active flow can absorb.
    double delta = std::numeric_limits<double>::infinity();
    for (const auto r : touchedRes_) {
      if (activeWeight_[r] <= 0.0) continue;
      delta = std::min(delta, residual_[r] / activeWeight_[r]);
    }
    for (const auto f : activeFlows_) {
      if (view.rateCap[f] <= 0.0) continue;
      delta = std::min(delta, (view.rateCap[f] - rates[f]) / view.weight[f]);
    }
    BEESIM_ASSERT(delta < std::numeric_limits<double>::infinity(),
                  "progressive filling found no bottleneck");
    delta = std::max(delta, 0.0);

    // Apply the increment.
    for (const auto f : activeFlows_) rates[f] += delta * view.weight[f];
    for (const auto r : touchedRes_) residual_[r] -= delta * activeWeight_[r];

    // Freeze flows bottlenecked by a saturated resource or by their own cap.
    for (const auto r : touchedRes_) {
      if (activeWeight_[r] > 0.0 &&
          residual_[r] <= kEps * std::max(1.0, view.capacity[r])) {
        saturated_[r] = 1;
        residual_[r] = std::max(residual_[r], 0.0);
      }
    }
    std::size_t newlyFrozen = 0;
    std::size_t i = 0;
    while (i < activeFlows_.size()) {
      const auto f = activeFlows_[i];
      const auto* adj = view.adjacency.data() + view.adjOffset[f];
      bool stop = false;
      for (std::uint32_t k = 0; k < view.adjLen[f]; ++k) {
        if (saturated_[adj[k]]) {
          stop = true;
          break;
        }
      }
      if (!stop && view.rateCap[f] > 0.0 &&
          rates[f] >= view.rateCap[f] - kEps * std::max(1.0, view.rateCap[f])) {
        stop = true;
      }
      if (stop) {
        ++newlyFrozen;
        for (std::uint32_t k = 0; k < view.adjLen[f]; ++k) {
          const auto r = adj[k];
          activeWeight_[r] -= view.weight[f];
          if (--activeCount_[r] == 0) activeWeight_[r] = 0.0;
        }
        activeFlows_[i] = activeFlows_.back();
        activeFlows_.pop_back();
      } else {
        ++i;
      }
    }
    // Progress guarantee: every iteration freezes at least one flow (delta was
    // chosen as the tightest constraint).
    BEESIM_ASSERT(newlyFrozen > 0, "progressive filling made no progress");
  }

  return iterations;
}

SolverResult solveMaxMin(std::span<const SolverResource> resources,
                         std::span<const SolverFlow> flows) {
  const std::size_t nRes = resources.size();
  const std::size_t nFlows = flows.size();

  SolverResult result;
  result.rates.assign(nFlows, 0.0);
  if (nFlows == 0) return result;

  // Flatten to the CSR view the workspace core consumes.  This legacy entry
  // point allocates per call; hot paths hold a workspace and flat arrays of
  // their own (see FluidSimulator).
  std::vector<double> capacity(nRes);
  for (std::size_t r = 0; r < nRes; ++r) {
    BEESIM_ASSERT(resources[r].capacity >= 0.0, "resource capacity must be >= 0");
    capacity[r] = resources[r].capacity;
  }
  std::vector<std::uint32_t> adjacency;
  std::vector<std::uint32_t> adjOffset(nFlows);
  std::vector<std::uint32_t> adjLen(nFlows);
  std::vector<double> weight(nFlows);
  std::vector<double> rateCap(nFlows);
  std::vector<std::uint32_t> subset(nFlows);
  for (std::size_t f = 0; f < nFlows; ++f) {
    adjOffset[f] = static_cast<std::uint32_t>(adjacency.size());
    adjLen[f] = static_cast<std::uint32_t>(flows[f].resources.size());
    adjacency.insert(adjacency.end(), flows[f].resources.begin(), flows[f].resources.end());
    weight[f] = flows[f].weight;
    rateCap[f] = flows[f].rateCap;
    subset[f] = static_cast<std::uint32_t>(f);
  }

  SolverWorkspace workspace;
  result.iterations = workspace.solveSubset(
      SolverView{capacity, adjacency, adjOffset, adjLen, weight, rateCap}, subset,
      result.rates);
  return result;
}

}  // namespace beesim::sim
