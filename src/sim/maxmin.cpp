#include "sim/maxmin.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace beesim::sim {

namespace {
// Relative tolerance used to decide that a resource is saturated.  Rates are
// MiB/s magnitudes (1e0..1e5), so an absolute epsilon scaled to the capacity
// is robust.
constexpr double kEps = 1e-9;
}  // namespace

SolverResult solveMaxMin(std::span<const SolverResource> resources,
                         std::span<const SolverFlow> flows) {
  const std::size_t nRes = resources.size();
  const std::size_t nFlows = flows.size();

  SolverResult result;
  result.rates.assign(nFlows, 0.0);
  if (nFlows == 0) return result;

  std::vector<double> residual(nRes);
  for (std::size_t r = 0; r < nRes; ++r) {
    BEESIM_ASSERT(resources[r].capacity >= 0.0, "resource capacity must be >= 0");
    residual[r] = resources[r].capacity;
  }

  // activeWeight[r]: total weight of still-filling flows crossing r.
  // activeCount[r] tracks the same set exactly; when it reaches zero the
  // weight is reset to exactly 0.0 (repeated subtraction of doubles can
  // leave a ~1e-16 ghost that would stall the filling with delta == 0).
  std::vector<double> activeWeight(nRes, 0.0);
  std::vector<std::uint32_t> activeCount(nRes, 0);
  std::vector<char> frozen(nFlows, 0);
  std::size_t activeFlows = 0;

  for (std::size_t f = 0; f < nFlows; ++f) {
    BEESIM_ASSERT(!flows[f].resources.empty(), "every flow must cross >= 1 resource");
    BEESIM_ASSERT(flows[f].weight > 0.0, "flow weight must be positive");
    bool dead = false;
    for (const auto r : flows[f].resources) {
      BEESIM_ASSERT(r < nRes, "flow references an unknown resource");
      if (resources[r].capacity <= 0.0) dead = true;
    }
    if (dead) {
      frozen[f] = 1;  // rate stays 0
    } else {
      for (const auto r : flows[f].resources) {
        activeWeight[r] += flows[f].weight;
        ++activeCount[r];
      }
      ++activeFlows;
    }
  }

  while (activeFlows > 0) {
    ++result.iterations;

    // The largest uniform *normalized* increment (rate per unit weight)
    // every active flow can absorb.
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < nRes; ++r) {
      if (activeWeight[r] <= 0.0) continue;
      delta = std::min(delta, residual[r] / activeWeight[r]);
    }
    for (std::size_t f = 0; f < nFlows; ++f) {
      if (frozen[f] || flows[f].rateCap <= 0.0) continue;
      delta = std::min(delta, (flows[f].rateCap - result.rates[f]) / flows[f].weight);
    }
    BEESIM_ASSERT(delta < std::numeric_limits<double>::infinity(),
                  "progressive filling found no bottleneck");
    delta = std::max(delta, 0.0);

    // Apply the increment.
    for (std::size_t f = 0; f < nFlows; ++f) {
      if (!frozen[f]) result.rates[f] += delta * flows[f].weight;
    }
    for (std::size_t r = 0; r < nRes; ++r) {
      residual[r] -= delta * activeWeight[r];
    }

    // Freeze flows bottlenecked by a saturated resource or by their own cap.
    std::vector<char> resSaturated(nRes, 0);
    for (std::size_t r = 0; r < nRes; ++r) {
      if (activeWeight[r] > 0.0 &&
          residual[r] <= kEps * std::max(1.0, resources[r].capacity)) {
        resSaturated[r] = 1;
        residual[r] = std::max(residual[r], 0.0);
      }
    }
    std::size_t newlyFrozen = 0;
    for (std::size_t f = 0; f < nFlows; ++f) {
      if (frozen[f]) continue;
      bool stop = false;
      for (const auto r : flows[f].resources) {
        if (resSaturated[r]) {
          stop = true;
          break;
        }
      }
      if (!stop && flows[f].rateCap > 0.0 &&
          result.rates[f] >= flows[f].rateCap - kEps * std::max(1.0, flows[f].rateCap)) {
        stop = true;
      }
      if (stop) {
        frozen[f] = 1;
        ++newlyFrozen;
        --activeFlows;
        for (const auto r : flows[f].resources) {
          activeWeight[r] -= flows[f].weight;
          if (--activeCount[r] == 0) activeWeight[r] = 0.0;
        }
      }
    }
    // Progress guarantee: every iteration freezes at least one flow (delta was
    // chosen as the tightest constraint).
    BEESIM_ASSERT(newlyFrozen > 0, "progressive filling made no progress");
  }

  return result;
}

}  // namespace beesim::sim
