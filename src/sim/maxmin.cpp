#include "sim/maxmin.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace beesim::sim {

namespace {
// Relative tolerance used to decide that a resource is saturated.  Rates are
// MiB/s magnitudes (1e0..1e5), so an absolute epsilon scaled to the capacity
// is robust.
constexpr double kEps = 1e-9;

constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void SolverWorkspace::ensureResourceCapacity(std::size_t resourceCount) {
  if (resStamp_.size() >= resourceCount) return;
  resStamp_.resize(resourceCount, 0);
  residual_.resize(resourceCount, 0.0);
  activeWeight_.resize(resourceCount, 0.0);
  activeCount_.resize(resourceCount, 0);
  saturated_.resize(resourceCount, 0);
  resDense_.resize(resourceCount, 0);
}

std::size_t SolverWorkspace::solveSubset(const SolverView& view,
                                         std::span<const std::uint32_t> flows,
                                         std::span<double> rates) {
  if (flows.empty()) return 0;
  ensureResourceCapacity(view.capacity.size());
  ++stamp_;

  // Single compaction pass: discover the subset's resources in first-touch
  // order (assigning dense ids) while compacting the flows into dense SoA
  // vectors with locally renumbered adjacency.  A flow's resources are all
  // dense-numbered by the time its own adjacency scan finishes, so one pass
  // suffices; the stamp makes resDense_ self-clearing, so compaction cost
  // scales with the subset, not with the global resource count.  Flows
  // crossing a zero-capacity resource are dead: their rate stays 0 and they
  // contribute no weight (documented degenerate result).
  rCapacity_.clear();
  rResidual_.clear();
  rActiveWeight_.clear();
  rActiveCount_.clear();
  rSaturated_.clear();
  fSlot_.clear();
  fWeight_.clear();
  fActiveW_.clear();
  fCapOrInf_.clear();
  fRate_.clear();
  fAdjOffset_.clear();
  fAdjLen_.clear();
  denseAdj_.clear();
  activeList_.clear();
  std::size_t capActive = 0;  // active flows whose own rate cap can bind
  for (const auto f : flows) {
    BEESIM_ASSERT(view.adjLen[f] > 0, "every flow must cross >= 1 resource");
    BEESIM_ASSERT(view.weight[f] > 0.0, "flow weight must be positive");
    const auto j = static_cast<std::uint32_t>(fSlot_.size());
    const auto* adj = view.adjacency.data() + view.adjOffset[f];
    const auto len = view.adjLen[f];
    const double w = view.weight[f];
    fSlot_.push_back(f);
    fWeight_.push_back(w);
    fRate_.push_back(0.0);
    fAdjOffset_.push_back(static_cast<std::uint32_t>(denseAdj_.size()));
    fAdjLen_.push_back(len);
    bool dead = false;
    for (std::uint32_t i = 0; i < len; ++i) {
      const auto r = adj[i];
      BEESIM_ASSERT(r < view.capacity.size(), "flow references an unknown resource");
      if (resStamp_[r] != stamp_) {
        resStamp_[r] = stamp_;
        resDense_[r] = static_cast<std::uint32_t>(rCapacity_.size());
        rCapacity_.push_back(view.capacity[r]);
        rResidual_.push_back(view.capacity[r]);
        rActiveWeight_.push_back(0.0);
        rActiveCount_.push_back(0);
        rSaturated_.push_back(0);
      }
      const auto d = resDense_[r];
      denseAdj_.push_back(d);
      if (rCapacity_[d] <= 0.0) dead = true;
    }
    if (dead) {
      fActiveW_.push_back(0.0);
      fCapOrInf_.push_back(kInf);
      continue;
    }
    fActiveW_.push_back(w);
    fCapOrInf_.push_back(view.rateCap[f] > 0.0 ? view.rateCap[f] : kInf);
    if (view.rateCap[f] > 0.0) ++capActive;
    for (std::uint32_t i = 0; i < len; ++i) {
      const auto d = denseAdj_[fAdjOffset_[j] + i];
      rActiveWeight_[d] += w;
      ++rActiveCount_[d];
    }
    activeList_.push_back(j);
  }

  const std::size_t m = rCapacity_.size();
  const std::size_t n = fSlot_.size();
  std::size_t iterations = 0;
  while (!activeList_.empty()) {
    ++iterations;

    // The largest uniform *normalized* increment (rate per unit weight)
    // every active flow can absorb.  The resource scan is branch-free:
    // resources with no active weight yield +inf.  The rate-cap scan runs
    // only while a capped flow is still active (uncapped/frozen flows would
    // contribute +inf through the fCapOrInf sentinel, and min over doubles
    // is order-independent, so skipping them cannot change delta).
    double delta = kInf;
    for (std::size_t i = 0; i < m; ++i) {
      const double w = rActiveWeight_[i];
      const double c = w > 0.0 ? rResidual_[i] / w : kInf;
      if (c < delta) delta = c;
    }
    if (capActive > 0) {
      for (const auto j : activeList_) {
        const double c = (fCapOrInf_[j] - fRate_[j]) / fWeight_[j];
        if (c < delta) delta = c;
      }
    }
    BEESIM_ASSERT(delta < kInf, "progressive filling found no bottleneck");
    delta = std::max(delta, 0.0);

    // Apply the increment (frozen flows add delta * 0.0, exactly a no-op
    // for the finite non-negative rates this solver produces).
    for (std::size_t j = 0; j < n; ++j) fRate_[j] += delta * fActiveW_[j];
    for (std::size_t i = 0; i < m; ++i) rResidual_[i] -= delta * rActiveWeight_[i];

    // Freeze flows bottlenecked by a saturated resource or by their own cap.
    for (std::size_t i = 0; i < m; ++i) {
      if (rActiveWeight_[i] > 0.0 &&
          rResidual_[i] <= kEps * std::max(1.0, rCapacity_[i])) {
        rSaturated_[i] = 1;
        rResidual_[i] = std::max(rResidual_[i], 0.0);
      }
    }
    std::size_t newlyFrozen = 0;
    std::size_t i = 0;
    while (i < activeList_.size()) {
      const auto j = activeList_[i];
      const auto* adj = denseAdj_.data() + fAdjOffset_[j];
      bool stop = false;
      for (std::uint32_t k = 0; k < fAdjLen_[j]; ++k) {
        if (rSaturated_[adj[k]]) {
          stop = true;
          break;
        }
      }
      const double cap = fCapOrInf_[j];
      if (!stop && cap < kInf && fRate_[j] >= cap - kEps * std::max(1.0, cap)) {
        stop = true;
      }
      if (stop) {
        ++newlyFrozen;
        for (std::uint32_t k = 0; k < fAdjLen_[j]; ++k) {
          const auto d = adj[k];
          rActiveWeight_[d] -= fWeight_[j];
          if (--rActiveCount_[d] == 0) rActiveWeight_[d] = 0.0;
        }
        fActiveW_[j] = 0.0;
        if (fCapOrInf_[j] < kInf) --capActive;
        fCapOrInf_[j] = kInf;
        activeList_[i] = activeList_.back();
        activeList_.pop_back();
      } else {
        ++i;
      }
    }
    // Progress guarantee: every iteration freezes at least one flow (delta was
    // chosen as the tightest constraint).
    BEESIM_ASSERT(newlyFrozen > 0, "progressive filling made no progress");
  }

  for (std::size_t j = 0; j < n; ++j) rates[fSlot_[j]] = fRate_[j];
  return iterations;
}

std::size_t SolverWorkspace::solveSubsetReference(const SolverView& view,
                                                  std::span<const std::uint32_t> flows,
                                                  std::span<double> rates) {
  if (flows.empty()) return 0;
  ensureResourceCapacity(view.capacity.size());
  ++stamp_;

  // Initialize the touched-resource scratch exactly once per resource: the
  // stamp makes the arrays self-clearing, so solve cost scales with the
  // subset, not with the global resource count.
  touchedRes_.clear();
  for (const auto f : flows) {
    BEESIM_ASSERT(view.adjLen[f] > 0, "every flow must cross >= 1 resource");
    BEESIM_ASSERT(view.weight[f] > 0.0, "flow weight must be positive");
    const auto* adj = view.adjacency.data() + view.adjOffset[f];
    for (std::uint32_t i = 0; i < view.adjLen[f]; ++i) {
      const auto r = adj[i];
      BEESIM_ASSERT(r < view.capacity.size(), "flow references an unknown resource");
      if (resStamp_[r] != stamp_) {
        resStamp_[r] = stamp_;
        touchedRes_.push_back(r);
        residual_[r] = view.capacity[r];
        activeWeight_[r] = 0.0;
        activeCount_[r] = 0;
        saturated_[r] = 0;
      }
    }
  }

  // activeWeight_[r]: total weight of still-filling flows crossing r.
  // activeCount_[r] tracks the same set exactly; when it reaches zero the
  // weight is reset to exactly 0.0 (repeated subtraction of doubles can
  // leave a ~1e-16 ghost that would stall the filling with delta == 0).
  activeFlows_.clear();
  for (const auto f : flows) {
    const auto* adj = view.adjacency.data() + view.adjOffset[f];
    bool dead = false;
    for (std::uint32_t i = 0; i < view.adjLen[f]; ++i) {
      if (view.capacity[adj[i]] <= 0.0) dead = true;
    }
    rates[f] = 0.0;
    if (dead) continue;  // rate stays 0
    for (std::uint32_t i = 0; i < view.adjLen[f]; ++i) {
      activeWeight_[adj[i]] += view.weight[f];
      ++activeCount_[adj[i]];
    }
    activeFlows_.push_back(f);
  }

  std::size_t iterations = 0;
  while (!activeFlows_.empty()) {
    ++iterations;

    // The largest uniform *normalized* increment (rate per unit weight)
    // every active flow can absorb.
    double delta = kInf;
    for (const auto r : touchedRes_) {
      if (activeWeight_[r] <= 0.0) continue;
      delta = std::min(delta, residual_[r] / activeWeight_[r]);
    }
    for (const auto f : activeFlows_) {
      if (view.rateCap[f] <= 0.0) continue;
      delta = std::min(delta, (view.rateCap[f] - rates[f]) / view.weight[f]);
    }
    BEESIM_ASSERT(delta < kInf, "progressive filling found no bottleneck");
    delta = std::max(delta, 0.0);

    // Apply the increment.
    for (const auto f : activeFlows_) rates[f] += delta * view.weight[f];
    for (const auto r : touchedRes_) residual_[r] -= delta * activeWeight_[r];

    // Freeze flows bottlenecked by a saturated resource or by their own cap.
    for (const auto r : touchedRes_) {
      if (activeWeight_[r] > 0.0 &&
          residual_[r] <= kEps * std::max(1.0, view.capacity[r])) {
        saturated_[r] = 1;
        residual_[r] = std::max(residual_[r], 0.0);
      }
    }
    std::size_t newlyFrozen = 0;
    std::size_t i = 0;
    while (i < activeFlows_.size()) {
      const auto f = activeFlows_[i];
      const auto* adj = view.adjacency.data() + view.adjOffset[f];
      bool stop = false;
      for (std::uint32_t k = 0; k < view.adjLen[f]; ++k) {
        if (saturated_[adj[k]]) {
          stop = true;
          break;
        }
      }
      if (!stop && view.rateCap[f] > 0.0 &&
          rates[f] >= view.rateCap[f] - kEps * std::max(1.0, view.rateCap[f])) {
        stop = true;
      }
      if (stop) {
        ++newlyFrozen;
        for (std::uint32_t k = 0; k < view.adjLen[f]; ++k) {
          const auto r = adj[k];
          activeWeight_[r] -= view.weight[f];
          if (--activeCount_[r] == 0) activeWeight_[r] = 0.0;
        }
        activeFlows_[i] = activeFlows_.back();
        activeFlows_.pop_back();
      } else {
        ++i;
      }
    }
    // Progress guarantee: every iteration freezes at least one flow (delta was
    // chosen as the tightest constraint).
    BEESIM_ASSERT(newlyFrozen > 0, "progressive filling made no progress");
  }

  return iterations;
}

SolverResult solveMaxMin(std::span<const SolverResource> resources,
                         std::span<const SolverFlow> flows) {
  const std::size_t nRes = resources.size();
  const std::size_t nFlows = flows.size();

  SolverResult result;
  result.rates.assign(nFlows, 0.0);
  if (nFlows == 0) return result;

  // Flatten to the CSR view the workspace core consumes.  This legacy entry
  // point allocates per call; hot paths hold a workspace and flat arrays of
  // their own (see FluidSimulator).
  std::vector<double> capacity(nRes);
  for (std::size_t r = 0; r < nRes; ++r) {
    BEESIM_ASSERT(resources[r].capacity >= 0.0, "resource capacity must be >= 0");
    capacity[r] = resources[r].capacity;
  }
  std::vector<std::uint32_t> adjacency;
  std::vector<std::uint32_t> adjOffset(nFlows);
  std::vector<std::uint32_t> adjLen(nFlows);
  std::vector<double> weight(nFlows);
  std::vector<double> rateCap(nFlows);
  std::vector<std::uint32_t> subset(nFlows);
  for (std::size_t f = 0; f < nFlows; ++f) {
    adjOffset[f] = static_cast<std::uint32_t>(adjacency.size());
    adjLen[f] = static_cast<std::uint32_t>(flows[f].resources.size());
    adjacency.insert(adjacency.end(), flows[f].resources.begin(), flows[f].resources.end());
    weight[f] = flows[f].weight;
    rateCap[f] = flows[f].rateCap;
    subset[f] = static_cast<std::uint32_t>(f);
  }

  SolverWorkspace workspace;
  // The reference walk keeps this legacy entry point the independent anchor
  // for the SoA fast path's differential tests.
  result.iterations = workspace.solveSubsetReference(
      SolverView{capacity, adjacency, adjOffset, adjLen, weight, rateCap}, subset,
      result.rates);
  return result;
}

}  // namespace beesim::sim
