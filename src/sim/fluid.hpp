// Fluid (flow-level) simulation on top of the discrete-event core.
//
// Model: data transfers are fluid flows crossing a set of resources (links,
// NICs, service processes, devices).  Between events the rate vector is the
// max-min fair allocation (see maxmin.hpp); whenever the flow population or a
// capacity changes, rates are re-solved.  Virtual time then advances directly
// to the next interesting instant (a flow completion or a scheduled capacity
// refresh), so a 100-repetition IOR campaign that takes hours of wall-clock
// on a real cluster simulates in milliseconds.
//
// Resources may have *load-dependent* capacities: the capacity callback
// receives the number of crossing flows and their aggregate queue weight.
// This is how storage devices expose a concurrency ramp (an HDD RAID array
// needs a deep queue to stream at full speed) and how stochastic variability
// enters (callbacks may sample per-epoch noise keyed on the current time).
//
// Incremental resolution: max-min fair allocation decomposes exactly over the
// connected components of the flow/resource bipartite graph, so the simulator
// tracks components with a union-find over resources and re-solves only the
// *dirty* ones -- those whose flow membership or member capacities changed
// since the last solve.  Two applications pinned to disjoint OSTs therefore
// cost each other nothing per event (O(own component), not O(world)).  All
// bookkeeping lives in flat slot-indexed arrays reused across the run; a
// steady-state resolve performs zero heap allocations.
//
// ε-bounded resolution (setSolverEpsilon): on top of the exact component
// decomposition, a component whose dirtiness stems *only* from capacity
// drift may be deferred when the accumulated drift provably cannot move any
// of its rates by more than ε.  The bound is the conservative slack
// Σ_r |Δcapacity_r| over the component's resources since its last exact
// solve (weighted max-min rates are 1-Lipschitz in each capacity, and
// deviations are subadditive across changes), so skipped components keep
// rates within ε MiB/s of the exact allocation.  Deferral composes with the
// completion horizons: a deferred component's horizon stays valid because
// its simulated rates are unchanged, and any structural event (flow start,
// completion, cancellation, merge, capacity hitting or leaving zero) forces
// an exact solve, which resets the drift.  The dirty-root list is thus the
// propagation frontier: a rate change travels exactly as far as it can
// matter, and with ε = 0 (the default) behavior is bit-identical to the
// always-exact path.
//
// Setting BEESIM_SOLVER_CHECK=1 (or setSolverCheck(true)) turns on a
// differential mode that re-solves every resolve from scratch over all live
// flows and asserts the incremental rates match to 1e-9 relative.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/maxmin.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace beesim::sim {

/// Index of a resource inside a FluidSimulator.
struct ResourceIndex {
  std::uint32_t value = 0;
};

/// Load snapshot passed to capacity callbacks at every solve.
struct ResourceLoad {
  /// Number of unfinished flows crossing the resource.
  std::size_t flowCount = 0;
  /// Sum of the queueWeight of those flows.  Storage models read this as an
  /// effective queue depth (outstanding requests).
  double queueDepth = 0.0;
  /// Current virtual time; lets callbacks resample per-epoch noise.
  SimTime time = 0.0;
};

/// Capacity model of a resource.  Must be pure given (load, its own state);
/// it is invoked exactly once per loaded resource per resolve.
using CapacityFn = std::function<util::MiBps(const ResourceLoad&)>;

/// Convenience: constant capacity.
CapacityFn constantCapacity(util::MiBps capacity);

struct ResourceSpec {
  std::string name;
  CapacityFn capacity;
};

struct FlowId {
  std::uint64_t value = 0;
  friend bool operator==(FlowId a, FlowId b) { return a.value == b.value; }
};

/// Statistics delivered to the completion callback.
struct FlowStats {
  FlowId id;
  SimTime startTime = 0.0;
  SimTime endTime = 0.0;
  util::Bytes bytes = 0;

  /// Mean rate over the flow's lifetime (MiB/s).
  util::MiBps meanRate() const {
    return endTime > startTime ? util::bandwidth(bytes, endTime - startTime) : 0.0;
  }
};

struct FlowSpec {
  /// Resources the flow crosses (e.g. client -> node NIC -> server NIC ->
  /// service -> device).  Must be non-empty.
  std::vector<ResourceIndex> path;
  /// Total bytes to transfer.  Zero-byte flows complete immediately.
  util::Bytes bytes = 0;
  /// Contribution to the queueDepth of every crossed resource, and the
  /// flow's weight in the weighted max-min fair sharing (a flow backed by
  /// more outstanding requests both deepens device queues and claims a
  /// proportionally larger share of shared links).
  double queueWeight = 1.0;
  /// Per-flow rate cap in MiB/s (<= 0: uncapped).
  util::MiBps rateCap = 0.0;
  /// Invoked (from inside the event loop) when the flow finishes.
  std::function<void(const FlowStats&)> onComplete;
};

/// Observer of fluid-simulation events (see sim/trace.hpp for the standard
/// implementation).  All callbacks fire from inside the event loop.  Spans
/// are views into simulator-owned storage, valid only for the call.
class FluidObserver {
 public:
  virtual ~FluidObserver() = default;

  /// A flow entered the system.
  virtual void onFlowStarted(FlowId id, std::span<const ResourceIndex> path,
                             util::Bytes bytes, SimTime at) = 0;

  /// Rates were re-solved; `rates[i]` belongs to `ids[i]`.  Only flows whose
  /// component was re-solved are reported (others keep their previous rate);
  /// `activeFlows` is the total live-flow count for context.
  virtual void onRatesSolved(SimTime at, std::span<const FlowId> ids,
                             std::span<const util::MiBps> rates,
                             std::size_t activeFlows) = 0;

  /// A flow finished.
  virtual void onFlowCompleted(const FlowStats& stats) = 0;

  /// A flow was cancelled before finishing (stats.bytes holds the bytes that
  /// were *not* transferred).  Default no-op so existing observers are
  /// unaffected.
  virtual void onFlowCancelled(const FlowStats& stats) { (void)stats; }
};

class ObserverHub;

class FluidSimulator {
 public:
  FluidSimulator();
  ~FluidSimulator();

  FluidSimulator(const FluidSimulator&) = delete;
  FluidSimulator& operator=(const FluidSimulator&) = delete;

  /// The underlying event engine (for scheduling waits, staggered app starts,
  /// interference, ...).
  Simulator& engine() { return engine_; }
  SimTime now() const { return engine_.now(); }

  /// Register a resource.  All resources must be added before flows start.
  ResourceIndex addResource(ResourceSpec spec);
  std::size_t resourceCount() const { return resources_.size(); }
  const std::string& resourceName(ResourceIndex idx) const;

  /// Start a flow at the current virtual time.  Returns its id.
  FlowId startFlow(FlowSpec spec);

  /// Schedule a flow to start at a later virtual time.
  void startFlowAt(SimTime at, FlowSpec spec);

  /// Current max-min rate of an active flow (0 if finished/unknown).
  util::MiBps flowRate(FlowId id) const;

  /// Whether a flow is still in the system (started and not yet finished or
  /// cancelled).  Stale ids are safely reported as inactive.
  bool flowActive(FlowId id) const;

  /// Cancel an active flow: progress is banked up to now(), the flow leaves
  /// the system and its onComplete callback is dropped (never invoked).
  /// Returns the bytes that had not been transferred yet, or std::nullopt if
  /// the id is unknown or the flow already finished.  The client failure
  /// semantics use this to abort chunks stalled on a failed target.
  std::optional<util::Bytes> cancelFlow(FlowId id);

  /// Number of unfinished flows.
  std::size_t activeFlows() const { return activeCount_; }

  /// Re-solve rates periodically (every `interval` seconds) while flows are
  /// active, so load-dependent/noisy capacities are refreshed even between
  /// completions.  <= 0 disables (default).
  void setResolveInterval(util::Seconds interval) { resolveInterval_ = interval; }

  /// Force capacities to be re-evaluated and rates re-solved at the current
  /// time (e.g. after an external capacity change).
  void invalidateCapacities();

  /// Tolerance (MiB/s) for ε-bounded resolution: a component dirtied only by
  /// capacity drift is re-solved lazily, once the accumulated per-resource
  /// capacity deltas could move some rate by more than ε (see the header
  /// comment for the bound).  0 (the default) keeps every resolve exact --
  /// and every golden byte identical.  Must be >= 0.
  void setSolverEpsilon(double epsilon);
  double solverEpsilon() const { return epsilon_; }

  /// Resolves skipped under the ε bound (diagnostics / scale bench).
  std::size_t deferredResolves() const { return deferredResolves_; }

  /// Use the scalar reference solver walk instead of the SoA fast path.
  /// Rates are bit-identical either way (see sim/maxmin.hpp); this exists so
  /// the scale benchmark can measure the PR-2-era baseline in place.
  void setReferenceSolver(bool enabled) { referenceSolver_ = enabled; }

  /// Attach an observer (nullptr detaches).  A single slot with clobbering
  /// semantics -- prefer addObserver/removeObserver, which compose.  The
  /// caller keeps ownership and must outlive the simulation.
  void setObserver(FluidObserver* observer) { observer_ = observer; }

  /// Attach an observer *alongside* any already installed: the first
  /// observer occupies the slot directly (zero fan-out overhead); a second
  /// one promotes the slot to an internally-owned ObserverHub that fans
  /// every event out in attachment order.  The caller keeps ownership.
  void addObserver(FluidObserver* observer);

  /// Detach an observer attached via addObserver (or occupying the slot
  /// directly).  No-op when it is not attached -- in particular it never
  /// detaches a *different* observer installed after this one, which is the
  /// contract observer destructors rely on.
  void removeObserver(FluidObserver* observer);

  /// The currently dispatched observer (the hub once promoted).
  const FluidObserver* observer() const { return observer_; }

  /// Enable/disable the differential solver check (also via the
  /// BEESIM_SOLVER_CHECK environment variable): every resolve additionally
  /// re-solves all live flows from scratch and asserts the incremental rates
  /// match to 1e-9 relative, and that the incremental load accounting agrees
  /// with an exact recount.
  void setSolverCheck(bool enabled) { solverCheck_ = enabled; }

  /// Run until all events *and* flows drain.  Throws ContractError if flows
  /// remain but cannot make progress (all rates zero with no future events).
  void run();

  // Diagnostics (micro-benchmark / tests).
  std::size_t resolveCount() const { return resolveCount_; }
  std::size_t solverIterations() const { return solverIterations_; }
  std::size_t lastSolvedFlows() const { return lastSolvedFlows_; }

  /// Enable wall-clock profiling of resolves.  Off by default so the hot
  /// path never calls the clock; when on, solveSeconds() accumulates the
  /// host wall time spent inside resolveNow().
  void setProfiling(bool enabled) { profiling_ = enabled; }
  double solveSeconds() const { return solveSeconds_; }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Open-addressed FlowId -> slot map (linear probing, backward-shift
  /// deletion).  Key 0 marks an empty bucket -- valid flow ids start at 1.
  class IdMap {
   public:
    void insert(std::uint64_t key, std::uint32_t slot);
    void erase(std::uint64_t key);
    /// Returns kNone when absent.
    std::uint32_t find(std::uint64_t key) const;
    std::size_t size() const { return size_; }

   private:
    static std::size_t bucketOf(std::uint64_t key, std::size_t mask);
    void grow();

    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> slots_;
    std::size_t size_ = 0;
  };

  struct DrainEntry {
    FlowStats stats;
    std::function<void(const FlowStats&)> onComplete;
  };

  using Seconds = util::Seconds;

  // Union-find over resources (merge-only; reset when the system drains).
  std::uint32_t findRoot(std::uint32_t r) const;
  std::uint32_t unite(std::uint32_t a, std::uint32_t b, SimTime at);
  /// Mark a component for re-solve.  `structural` records membership changes
  /// (start/completion/cancel/merge, zero-capacity transitions), which the
  /// ε deferral must never skip; pure capacity drift may be deferred.
  void markDirty(std::uint32_t root, bool structural = true);
  void listComponent(std::uint32_t root);
  void resetComponents();

  /// Bank progress of one component's flows up to `t` at the current rates.
  void advanceComponent(std::uint32_t root, SimTime t);
  /// Advance to `t` and move finished flows out of the component into
  /// drain_ (bookkeeping updated; callbacks NOT yet run).
  void settleComponent(std::uint32_t root, SimTime t);
  void removeFlowLoad(std::uint32_t slot);

  void scheduleResolve();
  void resolveNow();
  void scheduleNextWakeup();
  void runSolverCheck();

  std::uint32_t allocateFlowSlot();
  void freeFlowSlot(std::uint32_t slot);

  Simulator engine_;
  std::vector<ResourceSpec> resources_;

  // --- Per-resource state (indexed by resource) ---
  std::vector<double> resCapacity_;      // last evaluated capacity
  std::vector<std::uint32_t> resFlowCount_;
  std::vector<double> resQueueDepth_;
  std::vector<char> resLoaded_;          // member of loadedRes_
  mutable std::vector<std::uint32_t> ufParent_;  // path compression in findRoot
  std::vector<std::uint32_t> ufSize_;
  /// Resources with at least one crossing flow (lazily compacted): the
  /// per-resolve capacity evaluation walks this list, so its cost scales
  /// with the *loaded* inventory, not the cluster-wide resource count.
  std::vector<std::uint32_t> loadedRes_;

  // --- Per-component state (indexed by union-find root resource) ---
  std::vector<std::uint32_t> compHead_;  // intrusive flow-slot list
  std::vector<std::uint32_t> compTail_;
  std::vector<std::uint32_t> compFlowCount_;
  std::vector<SimTime> compLastProgress_;
  std::vector<SimTime> compNextCompletion_;  // absolute; +inf when unknown
  std::vector<char> compDirty_;
  std::vector<char> compStructural_;  // dirtiness includes a membership change
  std::vector<double> compCapDrift_;  // Σ|Δcapacity| since the last exact solve
  std::vector<char> compListed_;
  std::vector<std::uint32_t> activeRoots_;  // lazily filtered
  std::vector<std::uint32_t> dirtyRoots_;

  // --- Per-flow state (slot-indexed; id 0 marks a free slot) ---
  std::vector<std::uint64_t> flowId_;
  std::vector<double> flowRemaining_;  // MiB
  std::vector<double> flowWeight_;
  std::vector<double> flowRateCap_;
  std::vector<double> flowRate_;
  std::vector<SimTime> flowStart_;
  std::vector<util::Bytes> flowBytes_;
  std::vector<std::function<void(const FlowStats&)>> flowOnComplete_;
  std::vector<std::uint32_t> flowNext_;  // next slot in the component list
  std::vector<std::uint32_t> pathOffset_;
  std::vector<std::uint32_t> pathLen_;
  std::vector<std::uint32_t> pathCap_;
  std::vector<ResourceIndex> pathArena_;       // observer-facing path storage
  std::vector<std::uint32_t> adjacencyArena_;  // same data, solver-facing
  std::vector<std::uint32_t> freeFlowSlots_;
  IdMap idMap_;

  // --- Resolve scratch (reused; no steady-state allocations) ---
  SolverWorkspace workspace_;
  std::vector<std::uint32_t> subsetSlots_;
  std::vector<FlowId> solvedIds_;
  std::vector<util::MiBps> solvedRates_;
  std::vector<DrainEntry> drain_;
  SolverWorkspace checkWorkspace_;
  std::vector<double> checkRates_;
  std::vector<std::uint32_t> checkSlots_;

  std::size_t activeCount_ = 0;
  std::uint64_t nextFlowId_ = 1;
  bool resolvePending_ = false;
  bool pendingAllDirty_ = false;
  bool solverCheck_ = false;
  bool referenceSolver_ = false;
  double epsilon_ = 0.0;
  Seconds resolveInterval_ = 0.0;
  std::optional<EventId> wakeup_;
  FluidObserver* observer_ = nullptr;
  std::unique_ptr<ObserverHub> hub_;  // owned fan-out, created on demand

  std::size_t resolveCount_ = 0;
  std::size_t solverIterations_ = 0;
  std::size_t lastSolvedFlows_ = 0;
  std::size_t deferredResolves_ = 0;
  bool profiling_ = false;
  double solveSeconds_ = 0.0;
};

}  // namespace beesim::sim
