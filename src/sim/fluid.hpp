// Fluid (flow-level) simulation on top of the discrete-event core.
//
// Model: data transfers are fluid flows crossing a set of resources (links,
// NICs, service processes, devices).  Between events the rate vector is the
// max-min fair allocation (see maxmin.hpp); whenever the flow population or a
// capacity changes, rates are re-solved.  Virtual time then advances directly
// to the next interesting instant (a flow completion or a scheduled capacity
// refresh), so a 100-repetition IOR campaign that takes hours of wall-clock
// on a real cluster simulates in milliseconds.
//
// Resources may have *load-dependent* capacities: the capacity callback
// receives the number of crossing flows and their aggregate queue weight.
// This is how storage devices expose a concurrency ramp (an HDD RAID array
// needs a deep queue to stream at full speed) and how stochastic variability
// enters (callbacks may sample per-epoch noise keyed on the current time).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/maxmin.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace beesim::sim {

/// Index of a resource inside a FluidSimulator.
struct ResourceIndex {
  std::uint32_t value = 0;
};

/// Load snapshot passed to capacity callbacks at every solve.
struct ResourceLoad {
  /// Number of unfinished flows crossing the resource.
  std::size_t flowCount = 0;
  /// Sum of the queueWeight of those flows.  Storage models read this as an
  /// effective queue depth (outstanding requests).
  double queueDepth = 0.0;
  /// Current virtual time; lets callbacks resample per-epoch noise.
  SimTime time = 0.0;
};

/// Capacity model of a resource.  Must be pure given (load, its own state);
/// it is invoked exactly once per resource per solve.
using CapacityFn = std::function<util::MiBps(const ResourceLoad&)>;

/// Convenience: constant capacity.
CapacityFn constantCapacity(util::MiBps capacity);

struct ResourceSpec {
  std::string name;
  CapacityFn capacity;
};

struct FlowId {
  std::uint64_t value = 0;
  friend bool operator==(FlowId a, FlowId b) { return a.value == b.value; }
};

/// Statistics delivered to the completion callback.
struct FlowStats {
  FlowId id;
  SimTime startTime = 0.0;
  SimTime endTime = 0.0;
  util::Bytes bytes = 0;

  /// Mean rate over the flow's lifetime (MiB/s).
  util::MiBps meanRate() const {
    return endTime > startTime ? util::bandwidth(bytes, endTime - startTime) : 0.0;
  }
};

struct FlowSpec {
  /// Resources the flow crosses (e.g. client -> node NIC -> server NIC ->
  /// service -> device).  Must be non-empty.
  std::vector<ResourceIndex> path;
  /// Total bytes to transfer.  Zero-byte flows complete immediately.
  util::Bytes bytes = 0;
  /// Contribution to the queueDepth of every crossed resource, and the
  /// flow's weight in the weighted max-min fair sharing (a flow backed by
  /// more outstanding requests both deepens device queues and claims a
  /// proportionally larger share of shared links).
  double queueWeight = 1.0;
  /// Per-flow rate cap in MiB/s (<= 0: uncapped).
  util::MiBps rateCap = 0.0;
  /// Invoked (from inside the event loop) when the flow finishes.
  std::function<void(const FlowStats&)> onComplete;
};

/// Observer of fluid-simulation events (see sim/trace.hpp for the standard
/// implementation).  All callbacks fire from inside the event loop.
class FluidObserver {
 public:
  virtual ~FluidObserver() = default;

  /// A flow entered the system.
  virtual void onFlowStarted(FlowId id, const std::vector<ResourceIndex>& path,
                             util::Bytes bytes, SimTime at) = 0;

  /// Rates were re-solved; `rates[i]` belongs to `ids[i]`.
  virtual void onRatesSolved(SimTime at, const std::vector<FlowId>& ids,
                             const std::vector<util::MiBps>& rates) = 0;

  /// A flow finished.
  virtual void onFlowCompleted(const FlowStats& stats) = 0;
};

class FluidSimulator {
 public:
  FluidSimulator();

  FluidSimulator(const FluidSimulator&) = delete;
  FluidSimulator& operator=(const FluidSimulator&) = delete;

  /// The underlying event engine (for scheduling waits, staggered app starts,
  /// interference, ...).
  Simulator& engine() { return engine_; }
  SimTime now() const { return engine_.now(); }

  /// Register a resource.  All resources must be added before flows start.
  ResourceIndex addResource(ResourceSpec spec);
  std::size_t resourceCount() const { return resources_.size(); }
  const std::string& resourceName(ResourceIndex idx) const;

  /// Start a flow at the current virtual time.  Returns its id.
  FlowId startFlow(FlowSpec spec);

  /// Schedule a flow to start at a later virtual time.
  void startFlowAt(SimTime at, FlowSpec spec);

  /// Current max-min rate of an active flow (0 if finished/unknown).
  util::MiBps flowRate(FlowId id) const;

  /// Number of unfinished flows.
  std::size_t activeFlows() const { return activeCount_; }

  /// Re-solve rates periodically (every `interval` seconds) while flows are
  /// active, so load-dependent/noisy capacities are refreshed even between
  /// completions.  <= 0 disables (default).
  void setResolveInterval(util::Seconds interval) { resolveInterval_ = interval; }

  /// Force capacities to be re-evaluated and rates re-solved at the current
  /// time (e.g. after an external capacity change).
  void invalidateCapacities();

  /// Attach an observer (nullptr detaches).  At most one; the caller keeps
  /// ownership and must outlive the simulation.
  void setObserver(FluidObserver* observer) { observer_ = observer; }

  /// Run until all events *and* flows drain.  Throws ContractError if flows
  /// remain but cannot make progress (all rates zero with no future events).
  void run();

 private:
  struct ActiveFlow {
    FlowId id;
    std::vector<ResourceIndex> path;
    double remainingMiB = 0.0;
    double queueWeight = 1.0;
    util::MiBps rateCap = 0.0;
    util::MiBps rate = 0.0;
    SimTime startTime = 0.0;
    util::Bytes bytes = 0;
    std::function<void(const FlowStats&)> onComplete;
  };

  using Seconds = util::Seconds;

  void scheduleResolve();
  void resolveNow();
  void advanceProgressTo(SimTime t);
  void completeFinishedFlows();
  void scheduleNextWakeup();

  Simulator engine_;
  std::vector<ResourceSpec> resources_;
  std::vector<ActiveFlow> flows_;       // active flows, unordered
  /// FlowId -> index into flows_, kept consistent with the swap-remove in
  /// completeFinishedFlows() so flowRate() is O(1) instead of a linear scan.
  std::unordered_map<std::uint64_t, std::size_t> flowIndex_;
  std::size_t activeCount_ = 0;
  std::uint64_t nextFlowId_ = 1;
  SimTime lastProgressTime_ = 0.0;
  bool resolvePending_ = false;
  Seconds resolveInterval_ = 0.0;
  std::optional<EventId> wakeup_;
  bool ratesValid_ = false;
  FluidObserver* observer_ = nullptr;
};

}  // namespace beesim::sim
