#include "sim/observer_hub.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace beesim::sim {

void ObserverHub::add(FluidObserver* observer) {
  BEESIM_ASSERT(observer != nullptr, "ObserverHub::add needs an observer");
  BEESIM_ASSERT(observer != this, "ObserverHub cannot observe itself");
  if (contains(observer)) return;
  observers_.push_back(observer);
}

void ObserverHub::remove(FluidObserver* observer) {
  const auto it = std::find(observers_.begin(), observers_.end(), observer);
  if (it == observers_.end()) return;
  // When a removal happens from inside a dispatch (an observer detaching
  // itself, typically its destructor), erasing an element at or before the
  // cursor shifts the not-yet-visited observers one slot left; pull the
  // cursor back so none of them is skipped for the current event.
  const auto index = static_cast<std::size_t>(it - observers_.begin());
  if (index <= dispatchIndex_) --dispatchIndex_;
  observers_.erase(it);
}

bool ObserverHub::contains(const FluidObserver* observer) const {
  return std::find(observers_.begin(), observers_.end(), observer) != observers_.end();
}

// The dispatch loops walk via the member cursor and re-check size() every
// step, so observers may remove themselves (or earlier observers) from
// inside a callback without anyone being skipped or the loop walking off
// the end.  Callbacks never nest (the simulator dispatches from a single
// event loop), so one cursor suffices.

void ObserverHub::onFlowStarted(FlowId id, std::span<const ResourceIndex> path,
                                util::Bytes bytes, SimTime at) {
  for (dispatchIndex_ = 0; dispatchIndex_ < observers_.size(); ++dispatchIndex_) {
    observers_[dispatchIndex_]->onFlowStarted(id, path, bytes, at);
  }
}

void ObserverHub::onRatesSolved(SimTime at, std::span<const FlowId> ids,
                                std::span<const util::MiBps> rates,
                                std::size_t activeFlows) {
  for (dispatchIndex_ = 0; dispatchIndex_ < observers_.size(); ++dispatchIndex_) {
    observers_[dispatchIndex_]->onRatesSolved(at, ids, rates, activeFlows);
  }
}

void ObserverHub::onFlowCompleted(const FlowStats& stats) {
  for (dispatchIndex_ = 0; dispatchIndex_ < observers_.size(); ++dispatchIndex_) {
    observers_[dispatchIndex_]->onFlowCompleted(stats);
  }
}

void ObserverHub::onFlowCancelled(const FlowStats& stats) {
  for (dispatchIndex_ = 0; dispatchIndex_ < observers_.size(); ++dispatchIndex_) {
    observers_[dispatchIndex_]->onFlowCancelled(stats);
  }
}

}  // namespace beesim::sim
