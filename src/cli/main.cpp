// beesim CLI entry point.  All logic lives in commands.cpp so tests can
// drive the commands directly.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return beesim::cli::runCli(args, std::cout, std::cerr);
}
