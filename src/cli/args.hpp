// Tiny command-line argument parser for the beesim CLI.
//
// Supports `--flag value`, `--flag=value` and boolean `--flag`; collects
// positionals; knows which flags were consumed so unknown flags can be
// reported.  Deliberately minimal -- no dependency, easily testable.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace beesim::cli {

class Args {
 public:
  /// Parse argv-style tokens (without the program/subcommand names).
  /// `booleanFlags` lists flags that take no value.
  Args(std::vector<std::string> tokens, std::vector<std::string> booleanFlags = {});

  /// Value of --name, if present.
  std::optional<std::string> get(const std::string& name) const;

  /// Typed access with defaults.  Throw util::ConfigError on malformed
  /// values (bad numbers, bad sizes).
  std::string getString(const std::string& name, const std::string& fallback) const;
  /// Integer; rejects trailing garbage ("4x") and values outside long's
  /// range ("99999999999999999999") with distinct errors.
  long getInt(const std::string& name, long fallback) const;
  /// Integer constrained to [min, max]; call sites that narrow the result
  /// (int, unsigned, size_t) use this so out-of-range input errors out
  /// instead of silently truncating or wrapping in the cast.
  long getInt(const std::string& name, long fallback, long min, long max) const;
  /// Non-negative integer (e.g. --jobs, --reps); rejects negatives.
  std::size_t getUnsigned(const std::string& name, std::size_t fallback) const;
  /// Finite double; rejects nan/inf (which std::stod would accept and which
  /// then bypass `<= 0` sanity guards, NaN comparing false to everything).
  double getDouble(const std::string& name, double fallback) const;
  util::Bytes getBytes(const std::string& name, util::Bytes fallback) const;
  /// true/1/yes -> true, false/0/no -> false, absent -> false; anything else
  /// throws instead of silently reading as false.
  bool getBool(const std::string& name) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Flags that were supplied but never queried -- call after all `get`s to
  /// reject typos.  (Queries are tracked by a mutable used-set.)
  std::vector<std::string> unusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace beesim::cli
