#include "cli/args.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/error.hpp"

namespace beesim::cli {

Args::Args(std::vector<std::string> tokens, std::vector<std::string> booleanFlags) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const auto& token = tokens[i];
    if (token.rfind("--", 0) != 0) {
      positionals_.push_back(token);
      continue;
    }
    const auto body = token.substr(2);
    if (body.empty()) throw util::ConfigError("bare '--' is not a valid flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    const bool isBoolean =
        std::find(booleanFlags.begin(), booleanFlags.end(), body) != booleanFlags.end();
    if (isBoolean) {
      values_[body] = "true";
    } else {
      if (i + 1 >= tokens.size()) {
        throw util::ConfigError("flag --" + body + " needs a value");
      }
      values_[body] = tokens[++i];
    }
  }
}

std::optional<std::string> Args::get(const std::string& name) const {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::getString(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

long Args::getInt(const std::string& name, long fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  // Overflow gets its own message: "--ppn=99999999999999999999" is a range
  // problem, not a syntax problem, and the error should say so.
  try {
    std::size_t pos = 0;
    const long parsed = std::stol(*value, &pos);
    if (pos != value->size()) {
      throw util::ConfigError("flag --" + name + ": '" + *value +
                              "' is not an integer (trailing characters)");
    }
    return parsed;
  } catch (const util::ConfigError&) {
    throw;
  } catch (const std::out_of_range&) {
    throw util::ConfigError("flag --" + name + ": '" + *value +
                            "' is out of range for an integer");
  } catch (const std::exception&) {
    throw util::ConfigError("flag --" + name + ": '" + *value + "' is not an integer");
  }
}

long Args::getInt(const std::string& name, long fallback, long min, long max) const {
  const long value = getInt(name, fallback);
  if (value < min || value > max) {
    throw util::ConfigError("flag --" + name + ": " + std::to_string(value) +
                            " is out of range [" + std::to_string(min) + ", " +
                            std::to_string(max) + "]");
  }
  return value;
}

std::size_t Args::getUnsigned(const std::string& name, std::size_t fallback) const {
  const long value = getInt(name, -1);
  if (!get(name)) return fallback;
  if (value < 0) {
    throw util::ConfigError("flag --" + name + " must be a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

double Args::getDouble(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  double parsed = 0.0;
  try {
    std::size_t pos = 0;
    parsed = std::stod(*value, &pos);
    if (pos != value->size()) throw std::invalid_argument("trailing");
  } catch (const std::exception&) {
    throw util::ConfigError("flag --" + name + ": '" + *value + "' is not a number");
  }
  // std::stod happily parses "nan" and "inf", and NaN then slips through
  // every `x <= 0` validity guard downstream (NaN comparisons are false).
  if (!std::isfinite(parsed)) {
    throw util::ConfigError("flag --" + name + ": '" + *value + "' is not a finite number");
  }
  return parsed;
}

util::Bytes Args::getBytes(const std::string& name, util::Bytes fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return util::parseBytes(*value);  // throws ConfigError with details
}

bool Args::getBool(const std::string& name) const {
  const auto value = get(name);
  if (!value) return false;
  if (*value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  // Anything else (e.g. --mirror=tru) must not silently mean "false".
  throw util::ConfigError("flag --" + name + ": '" + *value +
                          "' is not a boolean (use true/1/yes or false/0/no)");
}

std::vector<std::string> Args::unusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, _] : values_) {
    if (!used_.count(name)) unused.push_back("--" + name);
  }
  return unused;
}

}  // namespace beesim::cli
