// beesim CLI subcommands.
//
// Each command is a plain function of (Args, ostream) so tests can drive
// it without a process; main.cpp only dispatches.  Shared flags:
//
//   --cluster plafrim1|plafrim2|catalyst|<file.json>   (default plafrim2)
//   --nodes N        compute nodes (default 16; overrides the factory size)
//   --seed S         root RNG seed (default 2022)
//
// Commands:
//   describe                      print the topology and analytic bounds
//   run      [--ppn 8 --stripe 4 --total 32GiB --chooser rr --reps 10
//             --pattern n1|nn --op write|read]
//   sweep    [--reps 30 --ppn 8]  stripe-count sweep + advisor verdict
//   concurrent [--apps 2 --nodes-per-app 8 --stripe 4 --reps 10]
//   export-cluster --out FILE     dump the selected topology as JSON
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "cli/args.hpp"

namespace beesim::cli {

int cmdDescribe(const Args& args, std::ostream& out);
int cmdRun(const Args& args, std::ostream& out);
int cmdSweep(const Args& args, std::ostream& out);
int cmdConcurrent(const Args& args, std::ostream& out);
int cmdExportCluster(const Args& args, std::ostream& out);

/// Dispatch `beesim <subcommand> [flags...]`.  Returns the exit code;
/// prints usage on unknown subcommands.
int runCli(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err);

/// The usage text.
std::string usage();

}  // namespace beesim::cli
