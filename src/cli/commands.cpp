#include "cli/commands.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "control/health.hpp"
#include "control/rebalance.hpp"
#include "core/advisor.hpp"
#include "core/allocation.hpp"
#include "core/analytic.hpp"
#include "core/metrics.hpp"
#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "faults/schedule.hpp"
#include "harness/campaign.hpp"
#include "sim/trace.hpp"
#include "harness/concurrent.hpp"
#include "ior/options.hpp"
#include "qos/manager.hpp"
#include "stats/plot.hpp"
#include "stats/summary.hpp"
#include "topology/catalyst.hpp"
#include "topology/loader.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::cli {

namespace {

using namespace beesim::util::literals;

/// Resolve the --cluster flag: a factory name or a JSON file path.
topo::ClusterConfig resolveCluster(const Args& args) {
  const auto name = args.getString("cluster", "plafrim2");
  // getUnsigned rejects negatives; "--nodes=-1" used to wrap to a huge
  // size_t in the cast and allocate accordingly.
  const auto nodes = args.getUnsigned("nodes", 16);
  if (nodes == 0) throw util::ConfigError("--nodes must be >= 1");
  if (name == "plafrim1") return topo::makePlafrim(topo::Scenario::kEthernet10G, nodes);
  if (name == "plafrim2") return topo::makePlafrim(topo::Scenario::kOmniPath100G, nodes);
  if (name == "catalyst") return topo::makeCatalystLike(nodes);
  auto cluster = topo::loadCluster(name);
  // --nodes can resize a file-described cluster by cloning its first node.
  if (args.get("nodes")) {
    if (cluster.nodes.empty()) throw util::ConfigError("cluster file has no nodes");
    auto prototype = cluster.nodes.front();
    cluster.nodes.resize(nodes, prototype);
    for (std::size_t n = 0; n < cluster.nodes.size(); ++n) {
      cluster.nodes[n].name = cluster.name + "-node" + std::to_string(n);
    }
  }
  return cluster;
}

beegfs::ChooserKind chooserFromFlag(const std::string& flag) {
  if (flag == "rr" || flag == "round-robin") return beegfs::ChooserKind::kRoundRobin;
  if (flag == "random") return beegfs::ChooserKind::kRandom;
  if (flag == "balanced") return beegfs::ChooserKind::kBalanced;
  if (flag == "rr-interleaved") return beegfs::ChooserKind::kRoundRobinInterleaved;
  throw util::ConfigError("--chooser must be rr|random|balanced|rr-interleaved");
}

/// Common run-config assembly for run/sweep/concurrent.
harness::RunConfig baseConfig(const Args& args, const topo::ClusterConfig& cluster) {
  harness::RunConfig config;
  config.cluster = cluster;
  config.fs.chooser = chooserFromFlag(args.getString("chooser", "rr"));
  const auto epsilon = args.getDouble("solver-epsilon", 0.0);
  if (!std::isfinite(epsilon) || epsilon < 0.0) {
    throw util::ConfigError("--solver-epsilon must be finite and >= 0 (MiB/s; 0 = exact)");
  }
  config.solverEpsilon = epsilon;
  return config;
}

/// Shared --rebalance* handling: the closed-loop rebalancing controller
/// (DESIGN.md §2.6).  Tuning knobs without the master switch are rejected as
/// likely typos, mirroring the fault-flag conventions.
control::RebalancePolicy rebalancePolicy(const Args& args) {
  control::RebalancePolicy policy;
  policy.enabled = args.getBool("rebalance");
  const auto threshold = args.getDouble("rebalance-threshold", policy.threshold);
  const auto rate = args.getDouble("rebalance-rate", 0.0);
  const auto patience =
      static_cast<int>(args.getInt("rebalance-patience", policy.patience, 1, 1'000'000));
  if (!policy.enabled) {
    if (args.get("rebalance-threshold") || args.get("rebalance-rate") ||
        args.get("rebalance-patience")) {
      throw util::ConfigError("--rebalance-threshold/-rate/-patience require --rebalance");
    }
    return policy;
  }
  if (threshold <= 1.0) {
    throw util::ConfigError("--rebalance-threshold must be > 1 (1 = perfectly balanced)");
  }
  if (args.get("rebalance-rate") && rate <= 0.0) {
    throw util::ConfigError(
        "--rebalance-rate must be > 0 (omit the flag for uncapped migrations)");
  }
  policy.threshold = threshold;
  // Keep the hysteresis exit point above 1 for tight thresholds.
  policy.exitMargin = std::min(policy.exitMargin, (threshold - 1.0) / 2.0);
  policy.migrationRate = rate;
  policy.patience = patience;
  return policy;
}

/// Shared --qos* handling: multi-tenant token-bucket bandwidth control
/// (DESIGN.md §2.8).  Tuning knobs without the master switch are rejected as
/// likely typos, mirroring the fault/rebalance flag conventions.
qos::QosPolicy qosPolicy(const Args& args) {
  qos::QosPolicy policy;
  policy.enabled = args.getBool("qos");
  const auto rate = args.getDouble("qos-rate", 0.0);
  const auto burst = args.getBytes("qos-burst", 0);
  policy.borrow = args.getBool("qos-borrow");
  if (!policy.enabled) {
    if (args.get("qos-rate") || args.get("qos-burst") || policy.borrow) {
      throw util::ConfigError("--qos-rate/--qos-burst/--qos-borrow require --qos");
    }
    return policy;
  }
  if (!args.get("qos-rate")) {
    throw util::ConfigError("--qos requires --qos-rate (reserved MiB/s per application)");
  }
  if (!std::isfinite(rate) || rate <= 0.0) {
    throw util::ConfigError("--qos-rate must be finite and > 0 (MiB/s)");
  }
  if (args.get("qos-burst") && burst == 0) {
    throw util::ConfigError("--qos-burst must be > 0 bytes (omit for one second at --qos-rate)");
  }
  policy.rate = rate;
  policy.burst = burst;
  return policy;
}

/// Shared --suspect-* handling: the gray-failure health monitor
/// (DESIGN.md §2.9).  --suspect-ratio is the master switch; the patience
/// knob without it is rejected as a likely typo.
control::HealthPolicy healthPolicy(const Args& args) {
  control::HealthPolicy policy;
  const auto ratio = args.getDouble("suspect-ratio", 0.0);
  const auto patience = args.getDouble("suspect-patience", policy.suspectPatience);
  if (!args.get("suspect-ratio")) {
    if (args.get("suspect-patience")) {
      throw util::ConfigError("--suspect-patience requires --suspect-ratio");
    }
    return policy;
  }
  if (ratio <= 0.0 || ratio >= 1.0) {
    throw util::ConfigError("--suspect-ratio must lie in (0, 1)");
  }
  if (patience <= 0.0) throw util::ConfigError("--suspect-patience must be > 0");
  policy.enabled = true;
  policy.suspectRatio = ratio;
  policy.suspectPatience = patience;
  return policy;
}

/// Shared --hedge* handling: hedged writes against fail-slow targets
/// (DESIGN.md §2.9).  Tuning knobs without the master switch are rejected.
beegfs::HedgePolicy hedgePolicy(const Args& args) {
  beegfs::HedgePolicy policy;
  policy.enabled = args.getBool("hedge");
  const auto deadline = args.getDouble("hedge-deadline", policy.deadline);
  const auto ratio = args.getDouble("hedge-ratio", policy.lagRatio);
  if (!policy.enabled) {
    if (args.get("hedge-deadline") || args.get("hedge-ratio")) {
      throw util::ConfigError("--hedge-deadline/--hedge-ratio require --hedge");
    }
    return policy;
  }
  if (deadline <= 0.0) throw util::ConfigError("--hedge-deadline must be > 0");
  if (ratio <= 0.0 || ratio >= 1.0) {
    throw util::ConfigError("--hedge-ratio must lie in (0, 1)");
  }
  policy.deadline = deadline;
  policy.lagRatio = ratio;
  return policy;
}

/// Shared --mdts/--meta-rate/--md-shard/--md-ops handling: the queued
/// metadata model (DESIGN.md §2.10).  Any metadata flag switches the run from
/// the legacy scalar-latency path to the queued MDT service model; with none
/// of them passed nothing is touched, so default runs keep their exact
/// legacy bytes.
void applyMetadataFlags(const Args& args, harness::RunConfig& config) {
  const bool any = args.get("mdts") || args.get("meta-rate") || args.get("md-shard") ||
                   args.get("md-ops");
  if (!any) return;
  auto& meta = config.fs.meta;
  meta.queued = true;
  meta.mdtCount = static_cast<unsigned>(args.getInt("mdts", 1, 1, 4096));
  const auto rate = args.getDouble("meta-rate", meta.createRate);
  if (!std::isfinite(rate) || rate <= 0.0) {
    throw util::ConfigError("--meta-rate must be finite and > 0 (create ops/s per MDT)");
  }
  // --meta-rate scales the whole service-rate profile, preserving the
  // create:open:stat:unlink ratios of the defaults.
  const double scale = rate / meta.createRate;
  meta.createRate = rate;
  meta.openRate *= scale;
  meta.statRate *= scale;
  meta.unlinkRate *= scale;
  const auto shard = args.getString("md-shard", "hash");
  if (shard == "hash") {
    meta.shard = beegfs::MdShardKind::kHashDir;
  } else if (shard == "rr") {
    meta.shard = beegfs::MdShardKind::kRoundRobin;
  } else {
    throw util::ConfigError("--md-shard must be hash|rr");
  }
  if (args.get("md-ops")) {
    ior::MdtestOptions md;
    md.filesPerRank =
        static_cast<std::size_t>(args.getInt("md-ops", md.filesPerRank, 1, 1 << 20));
    config.mdtest = md;
  }
}

/// Shared --jobs/--progress handling: worker count (default BEESIM_JOBS,
/// else serial) plus an optional stderr status line.
harness::ExecutorOptions executorOptions(const Args& args, const std::string& label) {
  harness::ExecutorOptions exec;
  exec.jobs = args.getUnsigned("jobs", harness::defaultJobs());
  if (args.getBool("progress")) exec.onProgress = harness::stderrProgress(label);
  return exec;
}

void rejectUnknownFlags(const Args& args) {
  const auto unused = args.unusedFlags();
  if (!unused.empty()) {
    std::string all;
    for (const auto& f : unused) all += (all.empty() ? "" : ", ") + f;
    throw util::ConfigError("unknown flag(s): " + all);
  }
}

}  // namespace

int cmdDescribe(const Args& args, std::ostream& out) {
  const auto cluster = resolveCluster(args);
  const auto seed = args.getInt("seed", 2022);
  (void)seed;
  rejectUnknownFlags(args);

  out << "cluster: " << cluster.name << "\n";
  out << "compute nodes: " << cluster.nodes.size() << " (NIC "
      << util::formatBandwidth(cluster.nodes.front().nicBandwidth) << ", client cap "
      << util::formatBandwidth(cluster.nodes.front().clientThroughputCap) << ")\n";
  util::TableWriter table({"host", "NIC MiB/s", "OSS cap", "OSTs", "per-OST peak"});
  for (const auto& host : cluster.hosts) {
    const storage::HddRaidModel model(host.targets.front().device);
    table.addRow({host.name, util::fmt(host.nicBandwidth, 0),
                  host.serviceCap > 0 ? util::fmt(host.serviceCap, 0) : "none",
                  std::to_string(host.targets.size()), util::fmt(model.peakRate(), 0)});
  }
  out << table.render();
  out << "network bound (all nodes vs all hosts, Fig. 3): "
      << util::formatBandwidth(core::networkBound(cluster.nodes.size(), cluster.hosts.size(),
                                                  cluster.hosts.front().nicBandwidth))
      << "\n";
  return 0;
}

int cmdRun(const Args& args, std::ostream& out) {
  const auto cluster = resolveCluster(args);
  auto config = baseConfig(args, cluster);
  // Bounded parses: the old unchecked static_casts silently truncated
  // out-of-range input (e.g. --ppn=4294967297 read as ppn 1).
  const auto ppn = static_cast<int>(args.getInt("ppn", 8, 1, 1 << 20));
  const auto stripe = static_cast<unsigned>(
      args.getInt("stripe", 4, 1, static_cast<long>(cluster.targetCount())));
  const auto total = args.getBytes("total", 32_GiB);
  const auto reps = args.getUnsigned("reps", 10);
  const auto seed = static_cast<std::uint64_t>(args.getUnsigned("seed", 2022));
  const auto pattern = args.getString("pattern", "n1");
  const auto op = args.getString("op", "write");
  const auto traceFile = args.getString("trace", "");
  const auto traceOut = args.getString("trace-out", "");
  const auto traceFormat = args.getString("trace-format", "full");
  const auto ringCap = args.getUnsigned("trace-ring-cap", 1u << 20);
  const auto metricsOut = args.getString("metrics-out", "");
  const auto metricsDt = args.getDouble("metrics-dt", 0.1);
  const auto faultSpec = args.getString("faults", "");
  const auto faultMode = args.getString("fault-mode", "");
  const auto ioTimeout = args.getDouble("io-timeout", 5.0);
  const auto mttf = args.getDouble("mttf", 0.0);
  const auto mttr = args.getDouble("mttr", 0.0);
  const auto faultHorizon = args.getDouble("fault-horizon", 120.0);
  const bool mirror = args.getBool("mirror");
  const auto resyncRate = args.getDouble("resync-rate", 0.0);
  const auto failSlow = args.getDouble("fail-slow", 0.0);
  const auto failSlowMttr = args.getDouble("fail-slow-mttr", 0.0);
  const auto failSlowSeverity = args.getDouble("fail-slow-severity", 0.25);
  config.rebalance = rebalancePolicy(args);
  config.qos = qosPolicy(args);
  config.health = healthPolicy(args);
  config.fs.hedge = hedgePolicy(args);
  applyMetadataFlags(args, config);
  const auto exec = executorOptions(args, "run");
  rejectUnknownFlags(args);

  // A non-positive duration or rate silently produces empty or degenerate
  // fault schedules (a 0 MTTF reads as "disabled"); reject them instead.
  // The duration flags with a meaningful zero default are only checked when
  // the user passed them.
  if (ioTimeout <= 0.0) throw util::ConfigError("--io-timeout must be > 0");
  if (args.get("mttf") && mttf <= 0.0) throw util::ConfigError("--mttf must be > 0");
  if (args.get("mttr") && mttr <= 0.0) throw util::ConfigError("--mttr must be > 0");
  if (args.get("fault-horizon") && faultHorizon <= 0.0) {
    throw util::ConfigError("--fault-horizon must be > 0");
  }
  if (args.get("resync-rate") && resyncRate <= 0.0) {
    throw util::ConfigError("--resync-rate must be > 0 (omit the flag for uncapped resync)");
  }
  if (args.get("fail-slow") && failSlow <= 0.0) {
    throw util::ConfigError("--fail-slow must be > 0 (mean seconds between episodes)");
  }
  if (!args.get("fail-slow") && (args.get("fail-slow-mttr") || args.get("fail-slow-severity"))) {
    throw util::ConfigError("--fail-slow-mttr/--fail-slow-severity require --fail-slow");
  }
  if (args.get("fail-slow-mttr") && failSlowMttr <= 0.0) {
    throw util::ConfigError("--fail-slow-mttr must be > 0");
  }
  if (failSlowSeverity < 0.0 || failSlowSeverity > 1.0) {
    throw util::ConfigError("--fail-slow-severity must lie in [0, 1] (rate-multiplier ceiling)");
  }
  if (metricsDt <= 0.0) throw util::ConfigError("--metrics-dt must be > 0");
  if (traceFormat != "full" && traceFormat != "ring") {
    throw util::ConfigError("--trace-format must be full|ring");
  }
  if (args.get("trace-format") && traceFile.empty() && traceOut.empty()) {
    throw util::ConfigError("--trace-format requires --trace and/or --trace-out");
  }
  if (args.get("trace-ring-cap")) {
    if (traceFormat != "ring") {
      throw util::ConfigError("--trace-ring-cap requires --trace-format=ring");
    }
    if (ringCap == 0) throw util::ConfigError("--trace-ring-cap must be >= 1");
  }

  config.fs.defaultStripe.stripeCount = stripe;
  config.job = ior::IorJob::onFirstNodes(cluster.nodes.size(), ppn);
  config.ior.blockSize = ior::blockSizeForTotal(total, config.job.ranks());
  if (pattern == "nn") {
    config.ior.pattern = ior::AccessPattern::kFilePerProcess;
  } else if (pattern != "n1") {
    throw util::ConfigError("--pattern must be n1 or nn");
  }
  if (op == "read") {
    config.ior.operation = ior::Operation::kRead;
  } else if (op != "write") {
    throw util::ConfigError("--op must be write or read");
  }

  // Mid-run fault injection: explicit --faults events and/or a per-target
  // MTTF/MTTR renewal process.  Failure schedules need a client fault
  // policy; default to degraded-stripe mode when faults are requested.
  if (!faultSpec.empty()) config.faults.schedule = faults::parseSchedule(faultSpec);
  if (mttf > 0.0 || failSlow > 0.0) {
    faults::StochasticFaultSpec stochastic;
    if (mttf > 0.0) {
      stochastic.targetMttf = mttf;
      stochastic.targetMttr = mttr > 0.0 ? mttr : mttf / 10.0;
    }
    if (failSlow > 0.0) {
      // Fail-slow episodes: targets degrade to a drawn fraction of their
      // service rate and stay registered online (gray failures).
      stochastic.degradeMttf = failSlow;
      stochastic.degradeMttr = failSlowMttr > 0.0 ? failSlowMttr : failSlow / 10.0;
      stochastic.degradeCeiling = failSlowSeverity;
    }
    stochastic.horizon = faultHorizon;
    config.faults.stochastic = stochastic;
  }
  if (faultMode == "strict") {
    config.fs.faults.mode = beegfs::ClientFaultPolicy::Mode::kStrict;
  } else if (faultMode == "degraded" || (faultMode.empty() && !config.faults.empty())) {
    config.fs.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
  } else if (!faultMode.empty() && faultMode != "none") {
    throw util::ConfigError("--fault-mode must be strict|degraded|none");
  }
  config.fs.faults.ioTimeout = ioTimeout;

  // Storage buddy mirroring: default cross-host pairing, mirrored striping
  // for every file the run creates.
  if (mirror) {
    config.fs.mirror.enabled = true;
    config.fs.mirror.resyncRate = resyncRate;
    config.fs.defaultStripe.mirror = true;
  }

  std::vector<harness::CampaignEntry> entries(1);
  entries[0].config = config;
  harness::ProtocolOptions protocol;
  protocol.repetitions = reps;

  std::map<std::string, std::size_t> allocationCounts;
  beegfs::ClientFaultStats faultTotals;
  beegfs::MirrorStats mirrorTotals;
  control::RebalanceStats rebalTotals;
  control::HealthStats grayTotals;
  beegfs::HedgeStats hedgeTotals;
  qos::QosStats qosTotals;
  std::uint64_t mdOpsTotal = 0;
  double mdSecondsTotal = 0.0;
  double mdOpsPerSecSum = 0.0;
  double mdPeakImbalance = 0.0;
  std::size_t faultAborts = 0;
  const auto store = harness::executeCampaign(
      entries, protocol, seed,
      [&](const harness::RunRecord& record, harness::ResultRow&) {
        ++allocationCounts[core::Allocation(record.ior.targetsUsed, cluster).key()];
        rebalTotals.samples += record.rebalance.samples;
        rebalTotals.triggers += record.rebalance.triggers;
        rebalTotals.retargets += record.rebalance.retargets;
        rebalTotals.migrations += record.rebalance.migrations;
        rebalTotals.bytesMigrated += record.rebalance.bytesMigrated;
        rebalTotals.migrationSeconds += record.rebalance.migrationSeconds;
        rebalTotals.peakImbalance =
            std::max(rebalTotals.peakImbalance, record.rebalance.peakImbalance);
        faultTotals.timeouts += record.ior.faults.timeouts;
        faultTotals.retries += record.ior.faults.retries;
        faultTotals.failovers += record.ior.faults.failovers;
        faultTotals.bytesRewritten += record.ior.faults.bytesRewritten;
        faultTotals.degradedTime += record.ior.faults.degradedTime;
        if (record.ior.failed) ++faultAborts;
        mirrorTotals.failovers += record.ior.mirror.failovers;
        mirrorTotals.bytesReplicated += record.ior.mirror.bytesReplicated;
        mirrorTotals.bytesResent += record.ior.mirror.bytesResent;
        mirrorTotals.bytesLost += record.ior.mirror.bytesLost;
        mirrorTotals.resyncJobs += record.ior.mirror.resyncJobs;
        mirrorTotals.bytesResynced += record.ior.mirror.bytesResynced;
        mirrorTotals.resyncSeconds += record.ior.mirror.resyncSeconds;
        grayTotals.samples += record.health.samples;
        grayTotals.suspects += record.health.suspects;
        grayTotals.quarantines += record.health.quarantines;
        grayTotals.probations += record.health.probations;
        grayTotals.readmissions += record.health.readmissions;
        grayTotals.relapses += record.health.relapses;
        hedgeTotals.hedgesIssued += record.ior.hedge.hedgesIssued;
        hedgeTotals.hedgeWins += record.ior.hedge.hedgeWins;
        hedgeTotals.primaryWins += record.ior.hedge.primaryWins;
        hedgeTotals.mirrorSwitchovers += record.ior.hedge.mirrorSwitchovers;
        hedgeTotals.bytesHedged += record.ior.hedge.bytesHedged;
        qosTotals.tokensIssued += record.qos.tokensIssued;
        qosTotals.tokensBorrowed += record.qos.tokensBorrowed;
        qosTotals.tokensReclaimed += record.qos.tokensReclaimed;
        qosTotals.deferrals += record.qos.deferrals;
        qosTotals.throttleSeconds += record.qos.throttleSeconds;
        qosTotals.sloViolations += record.qos.sloViolations;
        mdOpsTotal += record.md.totalOps;
        mdSecondsTotal += record.md.end - record.md.start;
        mdOpsPerSecSum += record.md.opsPerSec;
        mdPeakImbalance = std::max(mdPeakImbalance, record.md.mdtImbalance);
      },
      exec);

  const auto summary = stats::summarize(store.metric("bandwidth_mibps"));
  out << config.ior.describe() << "  (" << config.job.ranks() << " ranks on "
      << cluster.nodes.size() << " nodes, " << reps << " repetitions)\n";
  out << "bandwidth: " << summary.describe() << " MiB/s\n";
  out << "allocations: ";
  for (const auto& [key, count] : allocationCounts) out << key << " x" << count << "  ";
  out << "\n";
  if (!config.faults.empty()) {
    out << "faults (totals over " << reps << " reps): timeouts=" << faultTotals.timeouts
        << " retries=" << faultTotals.retries << " failovers=" << faultTotals.failovers
        << " rewritten=" << util::fmt(util::toMiB(faultTotals.bytesRewritten), 1)
        << " MiB degraded=" << util::fmt(faultTotals.degradedTime, 2)
        << " s aborted_runs=" << faultAborts << "\n";
  }
  if (mirror) {
    out << "mirror (totals over " << reps
        << " reps): replicated=" << util::fmt(util::toMiB(mirrorTotals.bytesReplicated), 1)
        << " MiB failovers=" << mirrorTotals.failovers
        << " resent=" << util::fmt(util::toMiB(mirrorTotals.bytesResent), 1)
        << " MiB lost=" << util::fmt(util::toMiB(mirrorTotals.bytesLost), 1)
        << " MiB resyncs=" << mirrorTotals.resyncJobs
        << " resynced=" << util::fmt(util::toMiB(mirrorTotals.bytesResynced), 1)
        << " MiB resync_time=" << util::fmt(mirrorTotals.resyncSeconds, 2) << " s\n";
  }
  if (config.rebalance.enabled) {
    out << "rebalance (totals over " << reps << " reps): triggers=" << rebalTotals.triggers
        << " retargets=" << rebalTotals.retargets
        << " migrations=" << rebalTotals.migrations
        << " migrated=" << util::fmt(util::toMiB(rebalTotals.bytesMigrated), 1)
        << " MiB migration_time=" << util::fmt(rebalTotals.migrationSeconds, 2)
        << " s peak_imbalance=" << util::fmt(rebalTotals.peakImbalance, 3) << "\n";
  }
  if (config.health.enabled) {
    out << "health (totals over " << reps << " reps): samples=" << grayTotals.samples
        << " suspects=" << grayTotals.suspects
        << " quarantines=" << grayTotals.quarantines
        << " probations=" << grayTotals.probations
        << " readmissions=" << grayTotals.readmissions
        << " relapses=" << grayTotals.relapses << "\n";
  }
  if (config.fs.hedge.enabled) {
    out << "hedge (totals over " << reps << " reps): issued=" << hedgeTotals.hedgesIssued
        << " wins=" << hedgeTotals.hedgeWins
        << " primary_wins=" << hedgeTotals.primaryWins
        << " mirror_switchovers=" << hedgeTotals.mirrorSwitchovers
        << " hedged=" << util::fmt(util::toMiB(hedgeTotals.bytesHedged), 1) << " MiB\n";
  }
  if (config.qos.enabled) {
    out << "qos (totals over " << reps << " reps): issued="
        << util::fmt(qosTotals.tokensIssued / static_cast<double>(util::kMiB), 1)
        << " MiB borrowed="
        << util::fmt(qosTotals.tokensBorrowed / static_cast<double>(util::kMiB), 1)
        << " MiB reclaimed="
        << util::fmt(qosTotals.tokensReclaimed / static_cast<double>(util::kMiB), 1)
        << " MiB deferrals=" << qosTotals.deferrals
        << " throttle=" << util::fmt(qosTotals.throttleSeconds, 2)
        << " s slo_violations=" << qosTotals.sloViolations << "\n";
  }
  if (config.mdtest) {
    out << "metadata (totals over " << reps << " reps): ops=" << mdOpsTotal
        << " md_time=" << util::fmt(mdSecondsTotal, 2)
        << " s mean_ops_s=" << util::fmt(mdOpsPerSecSum / reps, 0)
        << " peak_mdt_imbalance=" << util::fmt(mdPeakImbalance, 3) << "\n";
  }

  if (!traceFile.empty() || !traceOut.empty() || !metricsOut.empty()) {
    // One extra traced run (same seed as the campaign root) with the flow
    // timeline exported as JSONL and/or Chrome-trace JSON, an optional
    // virtual-time metrics series, and a per-resource traffic decomposition.
    //
    // --trace-format=ring swaps the event log onto the bounded-memory binary
    // ring sink (no per-event maps or formatting during the run); the
    // FlowTracer -- and its utilization/imbalance tables -- is then only
    // attached when --metrics-out still needs the sampled series.
    util::Rng rng(seed);
    sim::FluidSimulator fluid;
    if (config.solverEpsilon > 0.0) fluid.setSolverEpsilon(config.solverEpsilon);
    beegfs::Deployment deployment(fluid, cluster, config.fs, rng.split());
    beegfs::FileSystem fs(deployment, rng.split());
    const bool ringMode = traceFormat == "ring";
    std::optional<sim::RingTraceSink> ring;
    std::optional<sim::FlowTracer> tracer;
    if (ringMode) ring.emplace(fluid, ringCap);
    if (!ringMode || !metricsOut.empty()) {
      tracer.emplace(fluid);
      if (!metricsOut.empty() || !traceOut.empty()) tracer->setMetricsInterval(metricsDt);
      for (std::size_t h = 0; h < cluster.hosts.size(); ++h) {
        tracer->trackLink(deployment.serverNicResource(h), cluster.hosts[h].name);
      }
      // Under the queued metadata model the MDTs are first-class fluid
      // resources; surface them as named links in the exported series.
      for (std::size_t m = 0; m < deployment.mdtCount(); ++m) {
        tracer->trackLink(deployment.mdtResource(m), "mdt" + std::to_string(m));
      }
    }
    const auto traced = ior::runIor(fs, config.job, config.ior);
    if (!traceFile.empty()) {
      if (ring) {
        ring->writeJsonl(traceFile);
        out << "trace: wrote " << ring->size() << " ring records (" << ring->dropped()
            << " dropped) to " << traceFile << "\n";
      } else {
        tracer->writeJsonl(traceFile);
        out << "trace: wrote " << tracer->events().size() << " events to " << traceFile
            << "\n";
      }
    }
    if (!traceOut.empty()) {
      if (ring) {
        ring->writeChromeTrace(traceOut);
        out << "trace: wrote Chrome trace (" << ring->size() << " ring records, "
            << ring->dropped() << " dropped) to " << traceOut << "\n";
      } else {
        tracer->writeChromeTrace(traceOut);
        out << "trace: wrote Chrome trace (" << tracer->events().size() << " events, "
            << tracer->samples().size() << " samples) to " << traceOut << "\n";
      }
    }
    if (!metricsOut.empty()) {
      tracer->writeMetricsCsv(metricsOut);
      out << "metrics: wrote " << tracer->samples().size() << " samples (dt="
          << util::fmt(metricsDt, 3) << " s) to " << metricsOut << "\n";
    }
    if (tracer) {
      util::TableWriter usage({"resource", "MiB carried", "busy s", "peak MiB/s"});
      for (const auto& u : tracer->resourceUsage()) {
        if (u.mib <= 0.0) continue;
        usage.addRow({u.name, util::fmt(u.mib, 0), util::fmt(u.busyTime, 2),
                      util::fmt(u.peakRate, 0)});
      }
      out << usage.render();
      // Per-server split of the traced run: the measured view of the paper's
      // (min,max) balance story.
      const util::Seconds span = traced.end - traced.start;
      std::vector<double> serverMiB;
      util::TableWriter servers({"server", "MiB", "busy frac"});
      for (std::size_t h = 0; h < cluster.hosts.size(); ++h) {
        const auto link = deployment.serverNicResource(h);
        const double mib = tracer->resourceMiB(link);
        const double busy = span > 0.0 ? tracer->resourceBusyTime(link) / span : 0.0;
        servers.addRow({cluster.hosts[h].name, util::fmt(mib, 0), util::fmt(busy, 3)});
        serverMiB.push_back(mib);
      }
      out << servers.render();
      out << "link_imbalance (max/mean server MiB): "
          << util::fmt(core::linkImbalance(serverMiB), 3) << "\n";
    }
  }
  return 0;
}

int cmdSweep(const Args& args, std::ostream& out) {
  const auto cluster = resolveCluster(args);
  const auto ppn = static_cast<int>(args.getInt("ppn", 8, 1, 1 << 20));
  const auto reps = args.getUnsigned("reps", 30);
  const auto seed = static_cast<std::uint64_t>(args.getUnsigned("seed", 2022));
  const auto total = args.getBytes("total", 32_GiB);
  auto config = baseConfig(args, cluster);
  config.rebalance = rebalancePolicy(args);
  const auto exec = executorOptions(args, "sweep");
  rejectUnknownFlags(args);

  std::vector<harness::CampaignEntry> entries;
  for (unsigned count = 1; count <= cluster.targetCount(); ++count) {
    harness::CampaignEntry entry;
    entry.config = config;
    entry.config.fs.defaultStripe.stripeCount = count;
    entry.config.job = ior::IorJob::onFirstNodes(cluster.nodes.size(), ppn);
    entry.config.ior.blockSize = ior::blockSizeForTotal(total, entry.config.job.ranks());
    entry.factors["count"] = std::to_string(count);
    entries.push_back(std::move(entry));
  }
  harness::ProtocolOptions protocol;
  protocol.repetitions = reps;

  core::StripeCountAdvisor advisor;
  const auto store = harness::executeCampaign(
      entries, protocol, seed,
      [&](const harness::RunRecord& record, harness::ResultRow&) {
        advisor.add(static_cast<unsigned>(record.ior.targetsUsed.size()),
                    core::Allocation(record.ior.targetsUsed, cluster),
                    record.ior.bandwidth);
      },
      exec);

  std::vector<stats::CategoryScatter> cats;
  util::TableWriter table({"stripe count", "mean MiB/s", "sd", "min", "max"});
  for (unsigned count = 1; count <= cluster.targetCount(); ++count) {
    const auto bw = store.metric("bandwidth_mibps", {{"count", std::to_string(count)}});
    const auto s = stats::summarize(bw);
    cats.push_back(stats::CategoryScatter{std::to_string(count), bw});
    table.addRow({std::to_string(count), util::fmt(s.mean, 1), util::fmt(s.sd, 1),
                  util::fmt(s.min, 1), util::fmt(s.max, 1)});
  }
  out << table.render() << "\n";
  stats::PlotOptions plot;
  plot.xLabel = "stripe count (individual executions)";
  plot.yLabel = "MiB/s";
  out << stats::renderCategoryScatter(cats, plot) << "\n";
  out << advisor.recommend().rationale << "\n";
  return 0;
}

int cmdConcurrent(const Args& args, std::ostream& out) {
  const auto apps = args.getUnsigned("apps", 2);
  const auto nodesPerApp = args.getUnsigned("nodes-per-app", 8);
  if (apps < 1) throw util::ConfigError("--apps must be >= 1");

  topo::ClusterConfig cluster = [&] {
    if (args.get("nodes")) return resolveCluster(args);
    // Build with exactly the node count the applications need.
    std::vector<std::string> tokens{"--nodes", std::to_string(apps * nodesPerApp)};
    if (const auto c = args.get("cluster")) {
      tokens.push_back("--cluster");
      tokens.push_back(*c);
    }
    return resolveCluster(Args(tokens));
  }();
  if (cluster.nodes.size() < apps * nodesPerApp) {
    throw util::ConfigError("cluster has fewer nodes than apps * nodes-per-app");
  }

  const auto stripe = static_cast<unsigned>(
      args.getInt("stripe", 4, 1, static_cast<long>(cluster.targetCount())));
  const auto ppn = static_cast<int>(args.getInt("ppn", 8, 1, 1 << 20));
  const auto total = args.getBytes("total", 32_GiB);
  const auto reps = args.getUnsigned("reps", 10);
  const auto seed = static_cast<std::uint64_t>(args.getUnsigned("seed", 2022));
  auto base = baseConfig(args, cluster);
  base.rebalance = rebalancePolicy(args);
  base.qos = qosPolicy(args);
  base.health = healthPolicy(args);
  base.fs.hedge = hedgePolicy(args);
  applyMetadataFlags(args, base);
  const auto exec = executorOptions(args, "concurrent");
  rejectUnknownFlags(args);
  base.fs.defaultStripe.stripeCount = stripe;

  // Each repetition is seed-isolated; map them in parallel and fold the
  // per-rep results in order, so the output is independent of --jobs.
  const auto results = harness::parallelMap<harness::ConcurrentResult>(
      reps, exec.jobs, [&](std::size_t rep) {
        std::vector<harness::AppSpec> specs(apps);
        for (std::size_t a = 0; a < apps; ++a) {
          specs[a].job.ppn = ppn;
          for (std::size_t n = 0; n < nodesPerApp; ++n) {
            specs[a].job.nodeIds.push_back(a * nodesPerApp + n);
          }
          specs[a].ior.blockSize = ior::blockSizeForTotal(total, specs[a].job.ranks());
        }
        return harness::runConcurrent(base, specs, seed + rep);
      });

  std::vector<double> aggregates;
  std::vector<double> perApp;
  std::size_t sharedTargetRuns = 0;
  qos::QosStats qosTotals;
  std::uint64_t mdOpsTotal = 0;
  double mdOpsPerSecSum = 0.0;
  double mdPeakImbalance = 0.0;
  for (const auto& result : results) {
    aggregates.push_back(result.aggregateBandwidth);
    for (const auto& app : result.apps) perApp.push_back(app.bandwidth);
    if (result.sharedTargets > 0) ++sharedTargetRuns;
    mdOpsTotal += result.md.totalOps;
    mdOpsPerSecSum += result.md.opsPerSec;
    mdPeakImbalance = std::max(mdPeakImbalance, result.md.mdtImbalance);
    qosTotals.tokensIssued += result.qos.tokensIssued;
    qosTotals.tokensBorrowed += result.qos.tokensBorrowed;
    qosTotals.tokensReclaimed += result.qos.tokensReclaimed;
    qosTotals.deferrals += result.qos.deferrals;
    qosTotals.throttleSeconds += result.qos.throttleSeconds;
    qosTotals.sloViolations += result.qos.sloViolations;
  }

  out << apps << " concurrent applications x " << nodesPerApp << " nodes x " << ppn
      << " ppn, stripe " << stripe << ", " << util::formatBytes(total) << " each, " << reps
      << " repetitions\n";
  out << "aggregate (Eq. 1): " << stats::summarize(aggregates).describe() << " MiB/s\n";
  out << "per application:   " << stats::summarize(perApp).describe() << " MiB/s\n";
  out << "runs with target sharing: " << sharedTargetRuns << "/" << reps << "\n";
  if (base.qos.enabled) {
    out << "qos (totals over " << reps << " reps): issued="
        << util::fmt(qosTotals.tokensIssued / static_cast<double>(util::kMiB), 1)
        << " MiB borrowed="
        << util::fmt(qosTotals.tokensBorrowed / static_cast<double>(util::kMiB), 1)
        << " MiB reclaimed="
        << util::fmt(qosTotals.tokensReclaimed / static_cast<double>(util::kMiB), 1)
        << " MiB deferrals=" << qosTotals.deferrals
        << " throttle=" << util::fmt(qosTotals.throttleSeconds, 2)
        << " s slo_violations=" << qosTotals.sloViolations << "\n";
  }
  if (base.mdtest) {
    out << "metadata (totals over " << reps << " reps): ops=" << mdOpsTotal
        << " mean_ops_s=" << util::fmt(mdOpsPerSecSum / reps, 0)
        << " peak_mdt_imbalance=" << util::fmt(mdPeakImbalance, 3) << "\n";
  }
  return 0;
}

int cmdExportCluster(const Args& args, std::ostream& out) {
  const auto cluster = resolveCluster(args);
  const auto file = args.getString("out", "");
  rejectUnknownFlags(args);
  if (file.empty()) {
    out << topo::clusterToJson(cluster);
  } else {
    topo::saveCluster(cluster, file);
    out << "wrote " << file << "\n";
  }
  return 0;
}

std::string usage() {
  return "beesim -- BeeGFS-like storage-target-allocation simulator (CLUSTER'22 study)\n"
         "\n"
         "usage: beesim <command> [flags]\n"
         "\n"
         "commands:\n"
         "  describe         print the selected topology and analytic bounds\n"
         "  run              run repeated IOR executions, report bandwidth + allocations\n"
         "  sweep            stripe-count sweep with advisor recommendation\n"
         "  concurrent       concurrent applications with Eq. 1 aggregate\n"
         "  export-cluster   dump the selected topology as editable JSON\n"
         "\n"
         "shared flags:\n"
         "  --cluster plafrim1|plafrim2|catalyst|FILE.json   (default plafrim2)\n"
         "  --nodes N --seed S\n"
         "  --jobs N    worker threads for repetitions (default $BEESIM_JOBS, else 1;\n"
         "              0 = all hardware threads; results are identical for any N)\n"
         "  --progress  live status line on stderr (runs done, ETA, slowest config)\n"
         "  --solver-epsilon E   defer component re-solves while rates provably stay\n"
         "              within E MiB/s of exact (default 0 = exact, bit-identical)\n"
         "run flags:      --ppn --stripe --total --chooser --reps --pattern n1|nn\n"
         "                --op write|read --trace FILE.jsonl\n"
         "                --trace-out FILE.json   Chrome-trace/Perfetto export of one\n"
         "                            traced run (flows + rate/link counter tracks)\n"
         "                --trace-format full|ring   full: exact FlowTracer (default);\n"
         "                            ring: bounded-memory binary record sink, rendered\n"
         "                            on flush (minimal tracing overhead at scale)\n"
         "                --trace-ring-cap N      ring capacity in 40-byte records\n"
         "                            (default 1048576; oldest dropped when full)\n"
         "                --metrics-out FILE.csv  virtual-time metrics series (aggregate\n"
         "                            MiB/s, per-server link MiB/s, link imbalance)\n"
         "                --metrics-dt S          sampling interval (default 0.1)\n"
         "                --faults \"off:t3@30;on:t3@90;off:h1@60;link:h0@40=0.5;slow:t2@20=0.1\"\n"
         "                            (slow:tN@T=F degrades target N to fraction F of its\n"
         "                            service rate while it stays registered online)\n"
         "                --fault-mode strict|degraded (default degraded with --faults)\n"
         "                --io-timeout S --mttf S --mttr S --fault-horizon S\n"
         "                --fail-slow S         stochastic gray failures: mean seconds\n"
         "                            between fail-slow episodes per target\n"
         "                --fail-slow-mttr S    mean episode duration (default fail-slow/10)\n"
         "                --fail-slow-severity F  worst-case rate multiplier drawn per\n"
         "                            episode, in [0,1] (default 0.25; 0 = dead-but-online)\n"
         "                --mirror    stripe over buddy-mirror groups (synchronous\n"
         "                            cross-host replication with automatic failover)\n"
         "                --resync-rate MiBps   cap background resync flows (default uncapped)\n"
         "                --rebalance           closed-loop rebalancing: watch per-server\n"
         "                            rates, bias new creates toward cold servers and\n"
         "                            migrate hot chunks when imbalance persists\n"
         "                --rebalance-threshold X   engage at link imbalance >= X (>1,\n"
         "                            default 1.25; 1 = perfectly balanced)\n"
         "                --rebalance-patience N    consecutive samples over threshold\n"
         "                            before acting (default 3)\n"
         "                --rebalance-rate MiBps    cap each background migration flow\n"
         "                            (default uncapped)\n"
         "                --qos                 per-application token-bucket bandwidth\n"
         "                            control on the write path (DESIGN.md §2.8)\n"
         "                --qos-rate MiBps      reserved sustained rate per application\n"
         "                            (required with --qos)\n"
         "                --qos-burst BYTES     bucket depth (default: one second at\n"
         "                            --qos-rate; accepts 64m/1g suffixes)\n"
         "                --qos-borrow          let under-subscribed apps lend unused\n"
         "                            tokens to over-subscribed ones (AdapTBF-style)\n"
         "                --suspect-ratio R     enable the gray-failure health monitor:\n"
         "                            quarantine a server whose throughput EWMA stays\n"
         "                            below R x the busy-peer median (R in (0,1))\n"
         "                --suspect-patience S  seconds below the ratio before quarantine\n"
         "                            (default 1.0; requires --suspect-ratio)\n"
         "                --hedge               hedge stalled write chunks: re-issue to an\n"
         "                            alternate target, first finisher wins\n"
         "                --hedge-deadline S    stall check interval (default 1.0)\n"
         "                --hedge-ratio R       hedge when a chunk's best leg runs below\n"
         "                            R x the peer median rate (default 0.25)\n"
         "                --mdts N              queued metadata model with N metadata\n"
         "                            targets (any metadata flag switches from the\n"
         "                            scalar-latency model to queued MDT service)\n"
         "                --meta-rate OPS       per-MDT create service rate in ops/s\n"
         "                            (default 2500; open/stat/unlink scale with it)\n"
         "                --md-shard hash|rr    directory-to-MDT sharding: hash of the\n"
         "                            parent directory (default) or round-robin\n"
         "                --md-ops N            append an mdtest-style metadata phase\n"
         "                            after the bandwidth phase: N files per rank,\n"
         "                            create/stat/unlink (the IO500 bw-then-md shape)\n"
         "sweep flags:    --ppn --reps --total --chooser --rebalance*\n"
         "concurrent:     --apps --nodes-per-app --ppn --stripe --total --reps\n"
         "                --rebalance* --qos --qos-rate --qos-burst --qos-borrow\n"
         "                --suspect-ratio --suspect-patience --hedge*\n"
         "                --mdts --meta-rate --md-shard --md-ops\n"
         "export-cluster: --out FILE\n";
}

int runCli(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
  if (argv.empty() || argv[0] == "help" || argv[0] == "--help") {
    out << usage();
    return argv.empty() ? 1 : 0;
  }
  const std::string command = argv[0];
  try {
    const Args args(std::vector<std::string>(argv.begin() + 1, argv.end()),
                    {"progress", "mirror", "rebalance", "qos", "qos-borrow", "hedge"});
    if (command == "describe") return cmdDescribe(args, out);
    if (command == "run") return cmdRun(args, out);
    if (command == "sweep") return cmdSweep(args, out);
    if (command == "concurrent") return cmdConcurrent(args, out);
    if (command == "export-cluster") return cmdExportCluster(args, out);
    err << "unknown command '" << command << "'\n\n" << usage();
    return 1;
  } catch (const util::Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace beesim::cli
