#include "faults/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace beesim::faults {

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTargetFail:
      return "target-fail";
    case FaultKind::kTargetRecover:
      return "target-recover";
    case FaultKind::kHostFail:
      return "host-fail";
    case FaultKind::kHostRecover:
      return "host-recover";
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kTargetDegrade:
      return "target-degrade";
  }
  BEESIM_ASSERT(false, "unknown fault kind");
  return "?";  // unreachable
}

bool FaultSchedule::hasFailures() const {
  return std::any_of(events.begin(), events.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kTargetFail || e.kind == FaultKind::kHostFail;
  });
}

namespace {

/// Tie-break rank for simultaneous events: recoveries apply before degrades,
/// degrades before failures, so conflicting events on the same index at the
/// same instant net out to the *failed* state regardless of input order.
int kindRank(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTargetRecover:
      return 0;
    case FaultKind::kHostRecover:
      return 1;
    case FaultKind::kTargetDegrade:
      return 2;
    case FaultKind::kLinkDegrade:
      return 3;
    case FaultKind::kTargetFail:
      return 4;
    case FaultKind::kHostFail:
      return 5;
  }
  BEESIM_ASSERT(false, "unknown fault kind");
  return 6;  // unreachable
}

}  // namespace

void FaultSchedule::normalize(std::size_t targetCount, std::size_t hostCount) {
  for (const auto& e : events) {
    if (e.at < 0.0) {
      throw util::ConfigError("fault event time must be >= 0");
    }
    const bool targetScoped = e.kind == FaultKind::kTargetFail ||
                              e.kind == FaultKind::kTargetRecover ||
                              e.kind == FaultKind::kTargetDegrade;
    if (targetScoped && e.index >= targetCount) {
      throw util::ConfigError("fault event target index out of range: t" +
                              std::to_string(e.index));
    }
    if (!targetScoped && e.index >= hostCount) {
      throw util::ConfigError("fault event host index out of range: h" +
                              std::to_string(e.index));
    }
    const bool degrade =
        e.kind == FaultKind::kLinkDegrade || e.kind == FaultKind::kTargetDegrade;
    if (degrade && (e.fraction < 0.0 || e.fraction > 1.0)) {
      throw util::ConfigError("degradation fraction must be in [0, 1]");
    }
  }
  // Total order: time, then the documented tie-break (recover < degrade <
  // fail), then index, then fraction.  std::sort is safe because the key is
  // total -- equal keys are interchangeable events.
  std::sort(events.begin(), events.end(), [](const FaultEvent& a, const FaultEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    if (kindRank(a.kind) != kindRank(b.kind)) return kindRank(a.kind) < kindRank(b.kind);
    if (a.index != b.index) return a.index < b.index;
    return a.fraction < b.fraction;
  });
}

void FaultSchedule::clampToHorizon(util::Seconds horizon) {
  events.erase(std::remove_if(events.begin(), events.end(),
                              [horizon](const FaultEvent& e) { return e.at >= horizon; }),
               events.end());
}

namespace {

void generateRenewal(std::vector<FaultEvent>& out, FaultKind fail, FaultKind recover,
                     std::size_t count, util::Seconds mttf, util::Seconds mttr,
                     util::Seconds horizon, util::Rng& rng) {
  if (mttf <= 0.0 || mttr <= 0.0) return;
  for (std::size_t i = 0; i < count; ++i) {
    // Alternating up/down sojourns; every entity draws from the same stream
    // in index order so the schedule is a pure function of the rng state.
    util::Seconds t = rng.exponential(mttf);
    while (t < horizon) {
      out.push_back(FaultEvent{t, fail, i, 1.0});
      t += rng.exponential(mttr);
      if (t >= horizon) break;  // stays down past the horizon
      out.push_back(FaultEvent{t, recover, i, 1.0});
      t += rng.exponential(mttf);
    }
  }
}

/// Fail-slow renewal: like generateRenewal, but the "fail" side is a degrade
/// event of the same kind with a severity drawn uniformly from [floor,
/// ceiling] and the "recover" side restores fraction 1.  The severity draw
/// happens inside the per-entity stream, so the whole schedule stays a pure
/// function of the rng state.
void generateDegradeRenewal(std::vector<FaultEvent>& out, FaultKind kind, std::size_t count,
                            util::Seconds mttf, util::Seconds mttr, double floor,
                            double ceiling, util::Seconds horizon, util::Rng& rng) {
  if (mttf <= 0.0 || mttr <= 0.0) return;
  for (std::size_t i = 0; i < count; ++i) {
    util::Seconds t = rng.exponential(mttf);
    while (t < horizon) {
      out.push_back(FaultEvent{t, kind, i, rng.uniform(floor, ceiling)});
      t += rng.exponential(mttr);
      if (t >= horizon) break;  // stays degraded past the horizon
      out.push_back(FaultEvent{t, kind, i, 1.0});
      t += rng.exponential(mttf);
    }
  }
}

}  // namespace

FaultSchedule generateSchedule(const StochasticFaultSpec& spec, std::size_t targetCount,
                               std::size_t hostCount, util::Rng& rng) {
  if (spec.horizon <= 0.0 &&
      (spec.targetMttf > 0.0 || spec.hostMttf > 0.0 || spec.degradeMttf > 0.0 ||
       spec.linkStutterMttf > 0.0)) {
    throw util::ConfigError("stochastic fault spec needs a horizon > 0");
  }
  if (spec.degradeFloor < 0.0 || spec.degradeCeiling > 1.0 ||
      spec.degradeFloor > spec.degradeCeiling) {
    throw util::ConfigError("degrade severity range must satisfy 0 <= floor <= ceiling <= 1");
  }
  FaultSchedule schedule;
  generateRenewal(schedule.events, FaultKind::kTargetFail, FaultKind::kTargetRecover,
                  targetCount, spec.targetMttf, spec.targetMttr, spec.horizon, rng);
  generateRenewal(schedule.events, FaultKind::kHostFail, FaultKind::kHostRecover, hostCount,
                  spec.hostMttf, spec.hostMttr, spec.horizon, rng);
  // Fail-slow streams draw *after* the crash streams, so enabling them never
  // perturbs the crash schedule an existing seed produced.
  generateDegradeRenewal(schedule.events, FaultKind::kTargetDegrade, targetCount,
                         spec.degradeMttf, spec.degradeMttr, spec.degradeFloor,
                         spec.degradeCeiling, spec.horizon, rng);
  generateDegradeRenewal(schedule.events, FaultKind::kLinkDegrade, hostCount,
                         spec.linkStutterMttf, spec.linkStutterMttr, spec.degradeFloor,
                         spec.degradeCeiling, spec.horizon, rng);
  // generateRenewal already stops at the horizon, but the boundary case (an
  // event at exactly t == horizon) must follow the documented half-open
  // contract regardless of how the events were produced.
  schedule.clampToHorizon(spec.horizon);
  schedule.normalize(targetCount, hostCount);
  return schedule;
}

namespace {

[[noreturn]] void parseError(const std::string& token, const std::string& why) {
  throw util::ConfigError("bad fault event '" + token + "': " + why +
                          " (expected e.g. off:t3@30, on:h1@120, link:h0@40=0.5)");
}

double parseNumber(const std::string& token, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) parseError(token, "trailing characters after number");
    return value;
  } catch (const util::ConfigError&) {
    throw;
  } catch (const std::exception&) {
    parseError(token, "not a number: '" + text + "'");
  }
}

}  // namespace

FaultSchedule parseSchedule(const std::string& text) {
  FaultSchedule schedule;
  std::string token;
  // Accept both ';' and ',' as separators (',' is friendlier inside shells).
  std::string normalized = text;
  std::replace(normalized.begin(), normalized.end(), ',', ';');
  std::istringstream stream(normalized);
  while (std::getline(stream, token, ';')) {
    const std::string item = util::trim(token);
    if (item.empty()) continue;

    const auto colon = item.find(':');
    if (colon == std::string::npos) parseError(item, "missing ':'");
    const std::string verb = item.substr(0, colon);
    std::string rest = item.substr(colon + 1);

    double fraction = 1.0;
    if (verb == "link" || verb == "slow") {
      const auto eq = rest.find('=');
      if (eq == std::string::npos) parseError(item, verb + " events need '=fraction'");
      fraction = parseNumber(item, util::trim(rest.substr(eq + 1)));
      rest = rest.substr(0, eq);
    }

    const auto at = rest.find('@');
    if (at == std::string::npos) parseError(item, "missing '@time'");
    const std::string entity = util::trim(rest.substr(0, at));
    const double when = parseNumber(item, util::trim(rest.substr(at + 1)));

    if (entity.size() < 2 || (entity[0] != 't' && entity[0] != 'h')) {
      parseError(item, "entity must be tN (target) or hN (host)");
    }
    const bool isHost = entity[0] == 'h';
    std::size_t index = 0;
    try {
      std::size_t pos = 0;
      index = std::stoul(entity.substr(1), &pos);
      if (pos != entity.size() - 1) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      parseError(item, "bad entity index: '" + entity + "'");
    }

    FaultKind kind{};
    if (verb == "off") {
      kind = isHost ? FaultKind::kHostFail : FaultKind::kTargetFail;
    } else if (verb == "on") {
      kind = isHost ? FaultKind::kHostRecover : FaultKind::kTargetRecover;
    } else if (verb == "link") {
      if (!isHost) parseError(item, "link events apply to hosts (hN)");
      kind = FaultKind::kLinkDegrade;
    } else if (verb == "slow") {
      if (isHost) parseError(item, "slow events apply to targets (tN); use link: for hosts");
      kind = FaultKind::kTargetDegrade;
    } else {
      parseError(item, "unknown verb '" + verb + "'");
    }
    schedule.events.push_back(FaultEvent{when, kind, index, fraction});
  }
  return schedule;
}

std::string describeSchedule(const FaultSchedule& schedule) {
  std::ostringstream out;
  bool first = true;
  for (const auto& e : schedule.events) {
    if (!first) out << ';';
    first = false;
    const char scope = (e.kind == FaultKind::kTargetFail ||
                        e.kind == FaultKind::kTargetRecover ||
                        e.kind == FaultKind::kTargetDegrade)
                           ? 't'
                           : 'h';
    switch (e.kind) {
      case FaultKind::kTargetFail:
      case FaultKind::kHostFail:
        out << "off:";
        break;
      case FaultKind::kTargetRecover:
      case FaultKind::kHostRecover:
        out << "on:";
        break;
      case FaultKind::kLinkDegrade:
        out << "link:";
        break;
      case FaultKind::kTargetDegrade:
        out << "slow:";
        break;
    }
    out << scope << e.index << '@' << e.at;
    if (e.kind == FaultKind::kLinkDegrade || e.kind == FaultKind::kTargetDegrade) {
      out << '=' << e.fraction;
    }
  }
  return out.str();
}

}  // namespace beesim::faults
