// Fault schedules: timed failure/recovery events executed in virtual time.
//
// A FaultSchedule is a list of events relative to a run's start -- storage
// targets going offline and coming back, whole-OSS crashes, links degrading
// to a fraction of their capacity.  Schedules are either written explicitly
// (parseSchedule's compact grammar, used by the CLI and benches) or drawn
// from a stochastic MTTF/MTTR renewal process (generateSchedule), always from
// an Rng split off the campaign stream so runs stay deterministic per seed.
// The FaultInjector (injector.hpp) executes a schedule against a Deployment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::faults {

enum class FaultKind {
  kTargetFail,    // one OST goes offline (registry + capacity -> 0)
  kTargetRecover, // it comes back healthy
  kHostFail,      // a whole OSS crashes: its link and every OST on it
  kHostRecover,   // the OSS reboots: link and all its OSTs healthy again
  kLinkDegrade,   // a server link drops to `fraction` of capacity (1 = repaired)
  kTargetDegrade, // fail-slow: one OST serves at `fraction` of its rate while
                  // staying registered online (1 = repaired)
};

const char* faultKindName(FaultKind kind);

struct FaultEvent {
  /// Virtual time relative to the run's start.
  util::Seconds at = 0.0;
  FaultKind kind = FaultKind::kTargetFail;
  /// Flat target index (kTarget*) or storage-host index (kHost*, kLinkDegrade).
  std::size_t index = 0;
  /// kLinkDegrade / kTargetDegrade only: capacity multiplier in [0, 1].
  /// 0 is legal and models the gray-failure extreme -- a dead-but-online
  /// resource the crash-fault watchdog can never see because the registry
  /// still reports the target online.  Such chunks only terminate through
  /// hedging (HedgePolicy) or a later repair event; schedules that drive a
  /// resource to 0 without either will stall the run.
  double fraction = 1.0;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// True if any event can strand in-flight chunks (target/host failures).
  /// Such schedules require a ClientFaultPolicy mode other than kNone.
  bool hasFailures() const;

  /// Sort events by time and validate them against a deployment size (index
  /// bounds, degrade fractions in [0, 1], non-negative times).  Simultaneous
  /// events are ordered by a deterministic tie-break independent of input
  /// order: recoveries first, then degrades, then failures (so a fail and a
  /// recover of the same resource at the same instant net out to *failed*),
  /// then ascending index, then ascending fraction.  Throws
  /// util::ConfigError on invalid events.
  void normalize(std::size_t targetCount, std::size_t hostCount);

  /// Drop every event outside the half-open window [0, horizon): an event at
  /// exactly t == horizon is excluded, failures and recoveries alike.  This
  /// is the contract generateSchedule enforces on its output.
  void clampToHorizon(util::Seconds horizon);
};

/// Stochastic fault generator: each target/host alternates up and down with
/// exponential sojourn times (mean MTTF up, mean MTTR down), the classic
/// renewal availability model.  A mean of 0 disables that failure class.
struct StochasticFaultSpec {
  util::Seconds targetMttf = 0.0;
  util::Seconds targetMttr = 0.0;
  util::Seconds hostMttf = 0.0;
  util::Seconds hostMttr = 0.0;
  /// Fail-slow (gray) episodes: each target alternates healthy/degraded with
  /// these means; a degrade onset carries a service-rate multiplier drawn
  /// uniformly from [degradeFloor, degradeCeiling] (deterministically from
  /// the campaign rng stream), the matching recovery restores fraction 1.
  util::Seconds degradeMttf = 0.0;
  util::Seconds degradeMttr = 0.0;
  /// Link stutters: same renewal shape per host link (kLinkDegrade events
  /// with a drawn fraction, repaired back to 1).
  util::Seconds linkStutterMttf = 0.0;
  util::Seconds linkStutterMttr = 0.0;
  /// Severity range for drawn degrade/stutter multipliers.  The floor may be
  /// 0 (dead-but-online, see FaultEvent::fraction).
  double degradeFloor = 0.0;
  double degradeCeiling = 0.25;
  /// Events are generated in the half-open window [0, horizon): an event
  /// landing exactly on the horizon is dropped, failures and recoveries
  /// alike (FaultSchedule::clampToHorizon documents and enforces this).
  util::Seconds horizon = 0.0;
};

/// Draw a schedule from `spec` for a deployment with `targetCount` targets
/// and `hostCount` hosts.  Deterministic given the rng state; the result is
/// already normalized.
FaultSchedule generateSchedule(const StochasticFaultSpec& spec, std::size_t targetCount,
                               std::size_t hostCount, util::Rng& rng);

/// Parse a compact schedule, events separated by ';' or ','.  Grammar:
///
///   off:t3@30        target 3 fails at t=30s
///   on:t3@90         target 3 recovers at t=90s
///   off:h1@60        host (OSS) 1 crashes at t=60s
///   on:h1@120        host 1 reboots
///   link:h0@40=0.5   host 0's link drops to 50% capacity at t=40s
///   link:h0@80=1     ... and is repaired at t=80s
///   slow:t3@30=0.1   target 3 fail-slows to 10% service rate at t=30s
///   slow:t3@90=1     ... and recovers at t=90s
///
/// Degrade fractions may be 0 (dead-but-online; see FaultEvent::fraction).
///
/// Whitespace around tokens is ignored.  Throws util::ConfigError on syntax
/// errors.  Bounds are checked later by FaultSchedule::normalize.
FaultSchedule parseSchedule(const std::string& text);

/// Render a schedule in the parseSchedule grammar (diagnostics; round-trips
/// through parseSchedule).
std::string describeSchedule(const FaultSchedule& schedule);

/// A run's complete fault configuration: explicit events plus an optional
/// stochastic generator whose events get appended (from a dedicated rng
/// split) before the run starts.
struct FaultPlan {
  FaultSchedule schedule;
  std::optional<StochasticFaultSpec> stochastic;

  bool empty() const { return schedule.empty() && !stochastic.has_value(); }
};

}  // namespace beesim::faults
