#include "faults/injector.hpp"

#include "util/error.hpp"

namespace beesim::faults {

FaultInjector::FaultInjector(beegfs::Deployment& deployment, FaultSchedule schedule)
    : deployment_(deployment), schedule_(std::move(schedule)) {
  schedule_.normalize(deployment_.cluster().targetCount(),
                      deployment_.cluster().hosts.size());
}

void FaultInjector::arm(util::Seconds origin) {
  auto& engine = deployment_.fluid().engine();
  BEESIM_ASSERT(origin >= engine.now(), "fault schedule origin lies in the past");
  for (const auto& event : schedule_.events) {
    engine.schedule(origin + event.at, [this, event] { apply(event); });
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  auto& mgmt = deployment_.mgmt();
  const auto forEachTargetOnHost = [&](std::size_t host, auto&& fn) {
    for (std::size_t t = 0; t < mgmt.targetCount(); ++t) {
      if (mgmt.target(t).host == host) fn(t);
    }
  };

  switch (event.kind) {
    case FaultKind::kTargetFail:
      mgmt.setTargetOnline(event.index, false);
      deployment_.setTargetHealth(event.index, 0.0);
      ++stats_.targetFailures;
      break;
    case FaultKind::kTargetRecover:
      mgmt.setTargetOnline(event.index, true);
      deployment_.setTargetHealth(event.index, 1.0);
      ++stats_.targetRecoveries;
      break;
    case FaultKind::kHostFail:
      // An OSS crash takes down its link and every OST it serves.
      deployment_.setHostLinkHealth(event.index, 0.0);
      forEachTargetOnHost(event.index, [&](std::size_t t) {
        mgmt.setTargetOnline(t, false);
        deployment_.setTargetHealth(t, 0.0);
      });
      ++stats_.hostFailures;
      break;
    case FaultKind::kHostRecover:
      // A reboot revives the host wholesale, including targets that had
      // failed individually beforehand.
      deployment_.setHostLinkHealth(event.index, 1.0);
      forEachTargetOnHost(event.index, [&](std::size_t t) {
        mgmt.setTargetOnline(t, true);
        deployment_.setTargetHealth(t, 1.0);
      });
      ++stats_.hostRecoveries;
      break;
    case FaultKind::kLinkDegrade:
      deployment_.setHostLinkHealth(event.index, event.fraction);
      ++stats_.linkDegradations;
      break;
  }
  // Re-solve in-flight flows against the new capacities at the fault instant.
  deployment_.fluid().invalidateCapacities();
}

}  // namespace beesim::faults
