#include "faults/injector.hpp"

#include "util/error.hpp"

namespace beesim::faults {

FaultInjector::FaultInjector(beegfs::Deployment& deployment, FaultSchedule schedule)
    : deployment_(deployment), schedule_(std::move(schedule)) {
  schedule_.normalize(deployment_.cluster().targetCount(),
                      deployment_.cluster().hosts.size());
  targetFailed_.assign(deployment_.cluster().targetCount(), false);
  hostFailed_.assign(deployment_.cluster().hosts.size(), false);
  targetDegrade_.assign(deployment_.cluster().targetCount(), 1.0);
  linkDegrade_.assign(deployment_.cluster().hosts.size(), 1.0);
}

void FaultInjector::arm(util::Seconds origin) {
  auto& engine = deployment_.fluid().engine();
  BEESIM_ASSERT(origin >= engine.now(), "fault schedule origin lies in the past");
  for (const auto& event : schedule_.events) {
    engine.schedule(origin + event.at, [this, event] { apply(event); });
  }
}

void FaultInjector::applyTargetState(std::size_t target) {
  auto& mgmt = deployment_.mgmt();
  const bool down = targetFailed_[target] || hostFailed_[mgmt.target(target).host];
  mgmt.setTargetOnline(target, !down);
  deployment_.setTargetHealth(target, down ? 0.0 : targetDegrade_[target]);
}

void FaultInjector::applyLinkState(std::size_t host) {
  deployment_.setHostLinkHealth(host, hostFailed_[host] ? 0.0 : linkDegrade_[host]);
}

void FaultInjector::apply(const FaultEvent& event) {
  auto& mgmt = deployment_.mgmt();
  const auto forEachTargetOnHost = [&](std::size_t host, auto&& fn) {
    for (std::size_t t = 0; t < mgmt.targetCount(); ++t) {
      if (mgmt.target(t).host == host) fn(t);
    }
  };

  switch (event.kind) {
    case FaultKind::kTargetFail:
      targetFailed_[event.index] = true;
      applyTargetState(event.index);
      ++stats_.targetFailures;
      break;
    case FaultKind::kTargetRecover:
      // Clears only the target-level cause: the target stays down while its
      // host's crash is still outstanding, and comes back at its degrade
      // fraction (not a clean 1.0) if a fail-slow episode is still open.
      targetFailed_[event.index] = false;
      applyTargetState(event.index);
      ++stats_.targetRecoveries;
      break;
    case FaultKind::kHostFail:
      // An OSS crash takes down its link and every OST it serves.
      hostFailed_[event.index] = true;
      applyLinkState(event.index);
      forEachTargetOnHost(event.index, [&](std::size_t t) { applyTargetState(t); });
      ++stats_.hostFailures;
      break;
    case FaultKind::kHostRecover:
      // A reboot revives only what the crash took down: targets with an
      // outstanding kTargetFail stay offline, a link degraded by its own
      // kLinkDegrade comes back at that fraction, fail-slow targets at
      // theirs.
      hostFailed_[event.index] = false;
      applyLinkState(event.index);
      forEachTargetOnHost(event.index, [&](std::size_t t) { applyTargetState(t); });
      ++stats_.hostRecoveries;
      break;
    case FaultKind::kLinkDegrade:
      linkDegrade_[event.index] = event.fraction;
      applyLinkState(event.index);
      ++stats_.linkDegradations;
      break;
    case FaultKind::kTargetDegrade:
      targetDegrade_[event.index] = event.fraction;
      applyTargetState(event.index);
      ++stats_.targetDegradations;
      break;
  }
  // Re-solve in-flight flows against the new capacities at the fault instant.
  deployment_.fluid().invalidateCapacities();
}

}  // namespace beesim::faults
