// FaultInjector: executes a FaultSchedule against one live Deployment.
//
// Each event is scheduled in the deployment's event engine at run start and,
// when it fires, flips the management registry's online state and drives the
// affected capacities to their new values (via the Deployment health hooks +
// FluidSimulator::invalidateCapacities so in-flight flows re-solve at the
// fault instant).  The injector holds no randomness -- stochastic schedules
// are materialized beforehand (generateSchedule) so parallel campaign
// executors stay row-identical to serial ones.
#pragma once

#include "beegfs/deployment.hpp"
#include "faults/schedule.hpp"

namespace beesim::faults {

/// What the injector actually fired (diagnostics / campaign columns).
struct InjectorStats {
  std::size_t targetFailures = 0;
  std::size_t targetRecoveries = 0;
  std::size_t hostFailures = 0;
  std::size_t hostRecoveries = 0;
  std::size_t linkDegradations = 0;
  std::size_t targetDegradations = 0;

  std::size_t total() const {
    return targetFailures + targetRecoveries + hostFailures + hostRecoveries +
           linkDegradations + targetDegradations;
  }
};

class FaultInjector {
 public:
  /// The schedule must already be normalized against this deployment's
  /// target/host counts (normalize() is re-run defensively).  The injector
  /// must outlive the simulation run.
  FaultInjector(beegfs::Deployment& deployment, FaultSchedule schedule);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every event at absolute time `origin` + event.at.  Call before
  /// the run (events in the past are invalid).  Arm before launching jobs:
  /// the engine's FIFO tie-break then guarantees a t=0 fault is applied
  /// before the job's first metadata operation.
  void arm(util::Seconds origin = 0.0);

  const InjectorStats& stats() const { return stats_; }
  const FaultSchedule& schedule() const { return schedule_; }

 private:
  void apply(const FaultEvent& event);
  /// Recompute one target's registry state and health from its outstanding
  /// causes: offline while its own failure *or* its host's crash is
  /// outstanding; otherwise online at its current degrade fraction.
  void applyTargetState(std::size_t target);
  /// Recompute one host link's health: 0 while the host crash is
  /// outstanding, else the current link-degrade fraction.
  void applyLinkState(std::size_t host);

  beegfs::Deployment& deployment_;
  FaultSchedule schedule_;
  InjectorStats stats_;
  // Per-resource outage causes.  A recovery clears only its own cause: a
  // host reboot must not revive a target that failed independently, nor
  // repair a link that was degraded by its own event (the PR 3 injector
  // clobbered both).
  std::vector<bool> targetFailed_;
  std::vector<bool> hostFailed_;
  std::vector<double> targetDegrade_;
  std::vector<double> linkDegrade_;
};

}  // namespace beesim::faults
