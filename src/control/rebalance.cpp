#include "control/rebalance.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace beesim::control {

RebalanceController::RebalanceController(beegfs::FileSystem& fs,
                                         const RebalancePolicy& policy)
    : fs_(fs), policy_(policy), tracer_(fs.deployment().fluid()) {
  BEESIM_ASSERT(policy_.enabled, "constructing a disabled rebalance controller");
  BEESIM_ASSERT(policy_.threshold > 1.0, "rebalance threshold must exceed 1 (balanced)");
  BEESIM_ASSERT(policy_.exitMargin >= 0.0 && policy_.exitMargin < policy_.threshold - 1.0 + 1e-12,
                "hysteresis exit margin must keep the exit point above 1");
  BEESIM_ASSERT(policy_.patience >= 1, "rebalance patience must be >= 1");
  BEESIM_ASSERT(policy_.sampleInterval > 0.0, "rebalance sample interval must be > 0");
  BEESIM_ASSERT(policy_.migrationRate >= 0.0, "migration rate cap must be >= 0");
  BEESIM_ASSERT(policy_.migrationQueueWeight > 0.0, "migration queue weight must be > 0");
  BEESIM_ASSERT(policy_.maxConcurrentMigrations >= 0, "migration concurrency must be >= 0");

  auto& deployment = fs_.deployment();
  tracer_.setMetricsInterval(policy_.sampleInterval);
  const auto& cluster = deployment.cluster();
  for (std::size_t h = 0; h < cluster.hosts.size(); ++h) {
    tracer_.trackLink(deployment.serverNicResource(h), cluster.hosts[h].name);
  }
  if (policy_.retarget) fs_.enableWeightedChooser();
  tracer_.setSampleListener([this](const sim::MetricsSample& s) { onSample(s); });
}

RebalanceController::~RebalanceController() { cancel(); }

void RebalanceController::disarm() {
  disarmed_ = true;
  engaged_ = false;
  strikes_ = 0;
  fs_.deployment().mgmt().resetHostWeights();
}

void RebalanceController::cancel() {
  auto& fluid = fs_.deployment().fluid();
  for (auto& [key, migration] : migrations_) {
    if (fluid.flowActive(migration.flow)) fluid.cancelFlow(migration.flow);
  }
  migrations_.clear();
}

void RebalanceController::onSample(const sim::MetricsSample& sample) {
  if (disarmed_) return;
  ++stats_.samples;
  stats_.peakImbalance = std::max(stats_.peakImbalance, sample.linkImbalance);
  const double imbalance = sample.linkImbalance;
  if (imbalance <= 0.0) {
    // All tracked links idle: nothing to balance, and nothing to flap over.
    strikes_ = 0;
    return;
  }
  if (!engaged_) {
    if (imbalance >= policy_.threshold) {
      if (++strikes_ >= policy_.patience) {
        engaged_ = true;
        strikes_ = 0;
        ++stats_.triggers;
        scheduleAct(sample);
      }
    } else {
      strikes_ = 0;
    }
    return;
  }
  if (imbalance < policy_.threshold - policy_.exitMargin) {
    // Below the hysteresis band: stand down and stop biasing creates.
    engaged_ = false;
    strikes_ = 0;
    if (policy_.retarget) fs_.deployment().mgmt().resetHostWeights();
    return;
  }
  scheduleAct(sample);
}

void RebalanceController::scheduleAct(const sim::MetricsSample& sample) {
  // The listener runs inside FlowTracer's observer dispatch; mutating the
  // flow set there would recursively re-solve rates.  Defer to a fresh
  // engine event at the same virtual time.
  fs_.deployment().fluid().engine().scheduleAfter(
      0.0, [this, rates = sample.linkRates] {
        if (disarmed_ || !engaged_) return;
        act(rates);
      });
}

void RebalanceController::act(const std::vector<util::MiBps>& rates) {
  const auto& mgmt = fs_.deployment().mgmt();
  // A host is usable as a migration/retarget destination only while it has
  // at least one online target.
  std::vector<bool> hostUsable(rates.size(), false);
  for (std::size_t t = 0; t < mgmt.targetCount(); ++t) {
    const auto& entry = mgmt.target(t);
    if (entry.online && entry.host < hostUsable.size()) hostUsable[entry.host] = true;
  }
  if (policy_.retarget) updateWeights(rates, hostUsable);
  if (policy_.restripe) maybeMigrate(rates, hostUsable);
}

void RebalanceController::updateWeights(const std::vector<util::MiBps>& rates,
                                        const std::vector<bool>& hostUsable) {
  auto& mgmt = fs_.deployment().mgmt();
  double peak = 0.0;
  for (const double rate : rates) peak = std::max(peak, rate);
  if (peak <= 0.0) return;
  // Linear headroom bias: an idle host gets weight ~1, the hottest host a
  // small positive weight (epsilon keeps it choosable when the stripe is
  // wider than the cold hosts can absorb).
  const double eps = 0.01 * peak;
  for (std::size_t h = 0; h < rates.size(); ++h) {
    const double weight = hostUsable[h] ? (peak + eps - rates[h]) / (peak + eps) : 0.0;
    mgmt.setHostWeight(h, weight);
  }
  ++stats_.retargets;
}

void RebalanceController::maybeMigrate(const std::vector<util::MiBps>& rates,
                                       const std::vector<bool>& hostUsable) {
  if (static_cast<int>(migrations_.size()) >= policy_.maxConcurrentMigrations) return;
  const auto& mgmt = fs_.deployment().mgmt();

  std::size_t hot = rates.size();
  std::size_t cold = rates.size();
  for (std::size_t h = 0; h < rates.size(); ++h) {
    if (hot == rates.size() || rates[h] > rates[hot]) hot = h;
    if (!hostUsable[h]) continue;
    if (cold == rates.size() || rates[h] < rates[cold]) cold = h;
  }
  if (hot >= rates.size() || cold >= rates.size() || hot == cold) return;
  if (rates[hot] <= 0.0) return;

  // Hottest resident slot on the hot host (largest byte footprint wins: it
  // is both the likeliest bottleneck and the best bang per migrated byte).
  beegfs::FileHandle bestFile{};
  std::size_t bestSlot = 0;
  util::Bytes bestBytes = 0;
  for (std::size_t f = 0; f < fs_.fileCount(); ++f) {
    const beegfs::FileHandle handle{f};
    const auto& info = fs_.info(handle);
    if (info.mirrored) continue;  // mirrored slots move via their buddy groups
    for (std::size_t slot = 0; slot < info.pattern.targets().size(); ++slot) {
      if (migrations_.count({f, slot}) > 0) continue;
      const std::size_t target = fs_.effectiveTarget(handle, slot);
      if (mgmt.target(target).host != hot) continue;
      const util::Bytes bytes = fs_.slotBytes(handle, slot);
      if (bytes > bestBytes) {
        bestFile = handle;
        bestSlot = slot;
        bestBytes = bytes;
      }
    }
  }
  if (bestBytes == 0) return;

  // Destination: the least-used online target on the cold host that the
  // file does not already occupy (keeps stripe targets distinct).
  const auto& info = fs_.info(bestFile);
  std::vector<std::size_t> occupied;
  occupied.reserve(info.pattern.targets().size());
  for (std::size_t slot = 0; slot < info.pattern.targets().size(); ++slot) {
    occupied.push_back(fs_.effectiveTarget(bestFile, slot));
  }
  std::size_t dest = mgmt.targetCount();
  util::Bytes destUsed = std::numeric_limits<util::Bytes>::max();
  for (std::size_t t = 0; t < mgmt.targetCount(); ++t) {
    const auto& entry = mgmt.target(t);
    if (entry.host != cold || !entry.online) continue;
    if (std::find(occupied.begin(), occupied.end(), t) != occupied.end()) continue;
    if (entry.used < destUsed) {
      dest = t;
      destUsed = entry.used;
    }
  }
  if (dest >= mgmt.targetCount()) return;

  const SlotKey key{bestFile.value, bestSlot};
  Migration migration;
  migration.bytes = bestBytes;
  migration.flow = fs_.migrateSlot(
      bestFile, bestSlot, dest, policy_.migrationQueueWeight, policy_.migrationRate,
      [this, key](const sim::FlowStats& stats) {
        migrations_.erase(key);
        ++stats_.migrations;
        stats_.bytesMigrated += stats.bytes;
        stats_.migrationSeconds += stats.endTime - stats.startTime;
      });
  migrations_.emplace(key, migration);
}

}  // namespace beesim::control
