// Closed-loop rebalancing controller (DESIGN.md §2.6).
//
// The paper's Lesson #4 is that *where* a file's chunks land dominates its
// I/O bandwidth; PR 5 added the observability to watch the per-server rate
// vector in virtual time.  This controller closes the loop: it subscribes to
// the FlowTracer metrics series and, when the live link-imbalance index
// (core::linkImbalance over the server NIC rates -- the same definition the
// tracer, the run table and campaign CSVs report) stays above a threshold
// for `patience` consecutive samples, it acts on two levers:
//
//   * retarget -- publish per-host weights through the management service so
//     the WeightedChooser biases *new* file creates toward under-loaded
//     servers (cheap, only helps workloads that keep creating files);
//   * restripe -- migrate the hottest existing stripe slot to the coldest
//     server as a rate-capped, low-weight background flow over the
//     server-to-server replica path (the resync flow model), re-homing the
//     slot immediately so subsequent writes follow.
//
// Hysteresis (threshold - exitMargin) keeps the controller from flapping on
// the boundary; `disarm()` freezes it when the foreground job completes so
// migration tails cannot re-trigger it against their own traffic.  The
// controller draws no randomness: identical rate histories produce identical
// actions, preserving the harness's jobs-invariance.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "beegfs/filesystem.hpp"
#include "sim/trace.hpp"
#include "util/units.hpp"

namespace beesim::control {

/// Tuning knobs of the controller (CLI: --rebalance-*).
struct RebalancePolicy {
  /// Master switch; when false the harness does not even construct the
  /// controller, so untouched runs stay bitwise-identical.
  bool enabled = false;
  /// Engage when link imbalance (max/mean over server NIC rates, >= 1 when
  /// traffic flows) reaches this value...
  double threshold = 1.25;
  /// ...and disengage only below threshold - exitMargin (hysteresis band).
  double exitMargin = 0.1;
  /// Consecutive over-threshold samples required to engage.
  int patience = 3;
  /// Virtual-time metrics sampling interval (seconds).
  util::Seconds sampleInterval = 0.1;
  /// Per-migration-flow rate cap in MiB/s (0 = unlimited).
  util::MiBps migrationRate = 0.0;
  /// Outstanding-request weight of a migration flow; matches the resync
  /// model's default so background streams yield to foreground I/O.
  double migrationQueueWeight = 0.25;
  /// Concurrent background migrations allowed.
  int maxConcurrentMigrations = 2;
  /// Enable the create-bias lever (WeightedChooser + mgmtd host weights).
  bool retarget = true;
  /// Enable the chunk-migration lever.
  bool restripe = true;
};

/// What the controller did during a run (exported as rebal_* columns).
struct RebalanceStats {
  std::size_t samples = 0;          ///< metrics samples observed
  std::size_t triggers = 0;         ///< distinct engagements
  std::size_t retargets = 0;        ///< host-weight updates published
  std::size_t migrations = 0;       ///< background migrations completed
  util::Bytes bytesMigrated = 0;    ///< bytes carried by completed migrations
  util::Seconds migrationSeconds = 0.0;  ///< summed migration flow durations
  double peakImbalance = 0.0;       ///< max link imbalance ever sampled
};

class RebalanceController {
 public:
  /// Attaches a private FlowTracer to the filesystem's fluid simulator (via
  /// the observer hub -- composes with run-level observability) tracking
  /// every server NIC.  When `policy.retarget` is set, wraps the
  /// filesystem's chooser in a WeightedChooser (invisible until weights
  /// skew).  `policy.enabled` must be true.
  RebalanceController(beegfs::FileSystem& fs, const RebalancePolicy& policy);

  /// Cancels outstanding migrations and detaches the tracer.
  ~RebalanceController();

  RebalanceController(const RebalanceController&) = delete;
  RebalanceController& operator=(const RebalanceController&) = delete;

  const RebalancePolicy& policy() const { return policy_; }
  const RebalanceStats& stats() const { return stats_; }

  /// Currently inside an engagement (imbalance above the hysteresis band)?
  bool engaged() const { return engaged_; }

  /// Number of migration flows currently streaming.
  std::size_t activeMigrations() const { return migrations_.size(); }

  /// Stop reacting to samples and reset the host weights to uniform.  Called
  /// when the foreground job completes: in-flight migrations finish (their
  /// completions still count), but no new action is taken, so migration
  /// traffic cannot re-trigger the controller after the job ends.
  void disarm();

  /// Cancel all in-flight migration flows (end-of-run cleanup; cancelled
  /// migrations do not count as completed).
  void cancel();

 private:
  using SlotKey = std::pair<std::size_t, std::size_t>;  // (file, slot)

  struct Migration {
    sim::FlowId flow{};
    util::Bytes bytes = 0;
  };

  void onSample(const sim::MetricsSample& sample);
  /// Defer `act` through the engine: the sample listener fires inside
  /// observer dispatch, where starting/cancelling flows is not allowed.
  void scheduleAct(const sim::MetricsSample& sample);
  void act(const std::vector<util::MiBps>& rates);
  void updateWeights(const std::vector<util::MiBps>& rates,
                     const std::vector<bool>& hostUsable);
  void maybeMigrate(const std::vector<util::MiBps>& rates,
                    const std::vector<bool>& hostUsable);

  beegfs::FileSystem& fs_;
  RebalancePolicy policy_;
  sim::FlowTracer tracer_;
  RebalanceStats stats_;
  bool engaged_ = false;
  bool disarmed_ = false;
  int strikes_ = 0;
  std::map<SlotKey, Migration> migrations_;
};

}  // namespace beesim::control
