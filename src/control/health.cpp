#include "control/health.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace beesim::control {

HealthMonitor::HealthMonitor(beegfs::FileSystem& fs, const HealthPolicy& policy)
    : fs_(fs), policy_(policy), tracer_(fs.deployment().fluid()) {
  BEESIM_ASSERT(policy_.enabled, "constructing a disabled health monitor");
  BEESIM_ASSERT(policy_.suspectRatio > 0.0 && policy_.suspectRatio < 1.0,
                "suspect ratio must lie in (0, 1)");
  BEESIM_ASSERT(policy_.suspectPatience > 0.0, "suspect patience must be > 0");
  BEESIM_ASSERT(policy_.sampleInterval > 0.0, "health sample interval must be > 0");
  BEESIM_ASSERT(policy_.ewmaAlpha > 0.0 && policy_.ewmaAlpha <= 1.0,
                "EWMA alpha must lie in (0, 1]");
  BEESIM_ASSERT(policy_.drainWeight >= 0.0, "drain weight must be >= 0");
  BEESIM_ASSERT(policy_.probeWeight >= 0.0, "probe weight must be >= 0");
  BEESIM_ASSERT(policy_.probationDelay >= 0.0, "probation delay must be >= 0");
  BEESIM_ASSERT(policy_.recoverPatience >= 0.0, "recover patience must be >= 0");

  auto& deployment = fs_.deployment();
  const auto& cluster = deployment.cluster();
  hosts_.resize(cluster.hosts.size());
  tracer_.setMetricsInterval(policy_.sampleInterval);
  for (std::size_t h = 0; h < cluster.hosts.size(); ++h) {
    tracer_.trackLink(deployment.serverNicResource(h), cluster.hosts[h].name);
  }
  fs_.enableWeightedChooser();
  tracer_.setSampleListener([this](const sim::MetricsSample& s) { onSample(s); });
}

HealthMonitor::~HealthMonitor() = default;

beegfs::HostHealth HealthMonitor::state(std::size_t host) const {
  BEESIM_ASSERT(host < hosts_.size(), "unknown host");
  return hosts_[host].health;
}

void HealthMonitor::disarm() {
  // Weights return to uniform so tail traffic (resync, migrations) is not
  // steered; the registry keeps the final verdict for post-run inspection.
  disarmed_ = true;
  fs_.deployment().mgmt().resetHostWeights();
}

void HealthMonitor::onSample(const sim::MetricsSample& sample) {
  if (disarmed_) return;
  ++stats_.samples;
  const util::Seconds now = sample.time;

  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    // Only busy samples feed the EWMA: an idle NIC says nothing about the
    // host's service rate, and letting zeros decay the average would erase a
    // healthy peer's testimony exactly when a straggler convoys the workload
    // behind itself (the healthy host goes idle *because* the sick one is
    // slow).  An idle host keeps its last-known rate as evidence.
    if (sample.linkFlows[h] == 0) continue;
    const double rate = sample.linkRates[h];
    auto& host = hosts_[h];
    host.ewma = host.ewma < 0.0
                    ? rate
                    : policy_.ewmaAlpha * rate + (1.0 - policy_.ewmaAlpha) * host.ewma;
  }

  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    auto& host = hosts_[h];
    // Only a server with traffic can testify against itself: an idle NIC is
    // no evidence (the host may legitimately serve no chunk of this job).
    const bool busy = sample.linkFlows[h] > 0;
    std::vector<double> peers;
    peers.reserve(hosts_.size());
    for (std::size_t p = 0; p < hosts_.size(); ++p) {
      // A peer testifies with its EWMA whether or not it is busy this very
      // sample: the retained last-known rate is exactly the reference needed
      // when the straggler has idled everyone else.
      if (p == h || hosts_[p].ewma < 0.0) continue;
      peers.push_back(hosts_[p].ewma);
    }
    bool below = false;
    if (busy && !peers.empty()) {
      std::sort(peers.begin(), peers.end());
      const double median = peers[(peers.size() - 1) / 2];  // lower median
      below = median > 0.0 && host.ewma < policy_.suspectRatio * median;
    }

    switch (host.health) {
      case beegfs::HostHealth::kHealthy:
        if (below) {
          host.health = beegfs::HostHealth::kSuspect;
          host.belowSince = now;
          ++stats_.suspects;
          fs_.deployment().mgmt().setHostHealth(h, host.health);
        }
        break;
      case beegfs::HostHealth::kSuspect:
        if (!below) {
          host.health = beegfs::HostHealth::kHealthy;
          host.belowSince = -1.0;
          fs_.deployment().mgmt().setHostHealth(h, host.health);
        } else if (now - host.belowSince >= policy_.suspectPatience) {
          quarantine(h, now);
        }
        break;
      case beegfs::HostHealth::kQuarantined:
        // Drained; the probation timer owns the exit.
        break;
      case beegfs::HostHealth::kProbation:
        if (below) {
          ++stats_.relapses;
          quarantine(h, now);
        } else if (now - host.cleanSince >= policy_.recoverPatience) {
          readmit(h);
        }
        break;
    }
  }
}

void HealthMonitor::quarantine(std::size_t host, util::Seconds /*now*/) {
  auto& state = hosts_[host];
  state.health = beegfs::HostHealth::kQuarantined;
  state.belowSince = -1.0;
  state.cleanSince = -1.0;
  ++stats_.quarantines;
  auto& mgmt = fs_.deployment().mgmt();
  mgmt.setHostHealth(host, state.health);
  // The drain lever: new creates avoid the host through the WeightedChooser;
  // weight updates are pure registry state, so they are safe inside observer
  // dispatch (unlike flow mutations).
  mgmt.setHostWeight(host, policy_.drainWeight);
  const std::uint64_t epoch = ++state.probationEpoch;
  fs_.deployment().fluid().engine().scheduleAfter(
      policy_.probationDelay, [this, host, epoch] { enterProbation(host, epoch); });
  // Mirrored files escape a gray primary by registry switchover (the
  // mirrored equivalent of a hedge).  Switching moves flows, so it is
  // deferred out of observer dispatch; gated on HedgePolicy::enabled so
  // --suspect-* alone stays a pure create-weight drain.
  fs_.deployment().fluid().engine().scheduleAfter(0.0, [this, host] {
    if (disarmed_) return;
    if (hosts_[host].health != beegfs::HostHealth::kQuarantined) return;
    fs_.hedgeMirrorGroupsOnHost(host);
  });
}

void HealthMonitor::enterProbation(std::size_t host, std::uint64_t epoch) {
  if (disarmed_) return;
  auto& state = hosts_[host];
  // A relapse rearms the timer; only the newest epoch may probe.
  if (epoch != state.probationEpoch) return;
  if (state.health != beegfs::HostHealth::kQuarantined) return;
  state.health = beegfs::HostHealth::kProbation;
  state.cleanSince = fs_.deployment().fluid().now();
  ++stats_.probations;
  auto& mgmt = fs_.deployment().mgmt();
  mgmt.setHostHealth(host, state.health);
  mgmt.setHostWeight(host, policy_.probeWeight);
}

void HealthMonitor::readmit(std::size_t host) {
  auto& state = hosts_[host];
  state.health = beegfs::HostHealth::kHealthy;
  state.cleanSince = -1.0;
  ++stats_.readmissions;
  auto& mgmt = fs_.deployment().mgmt();
  mgmt.setHostHealth(host, state.health);
  mgmt.setHostWeight(host, 1.0);
}

}  // namespace beesim::control
