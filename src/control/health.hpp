// Gray-failure health monitor (DESIGN.md §2.9).
//
// Crash faults announce themselves through the registry; fail-slow servers
// do not.  A target serving at 5% of its rate stays online, never trips the
// client watchdog, and silently destroys the balance the paper shows
// dominates I/O performance.  This monitor closes the detection gap:
//
//   * sense -- a private FlowTracer (attached through the observer hub, so
//     it composes with run-level observability) samples every server NIC's
//     rate at `sampleInterval`; per server the monitor keeps an EWMA of the
//     observed rate;
//   * score -- each *busy* server is compared against the median EWMA of its
//     busy peers.  A server below `suspectRatio` x peer-median is suspect.
//     The score is peer-relative on purpose: a whole-cluster slowdown (noise
//     epoch, shared-network congestion) moves the median with it and
//     false-positives nothing;
//   * act -- a suspect that stays below the ratio for `suspectPatience`
//     seconds is quarantined: its registry HostHealth flips (mgmt.hpp), its
//     create weight drops to `drainWeight` through the WeightedChooser path
//     (new files avoid it) and the hedging picker shuns it as a destination.
//     After `probationDelay` the host enters probation at `probeWeight`; a
//     clean `recoverPatience` re-admits it, a relapse re-quarantines it.
//
// The monitor draws no randomness and acts only on rate history, so runs
// with identical histories take identical actions -- campaigns stay
// `--jobs`-invariant and disabled runs bitwise-identical (nothing is even
// constructed when HealthPolicy::enabled is false).
#pragma once

#include <cstddef>
#include <vector>

#include "beegfs/filesystem.hpp"
#include "sim/trace.hpp"
#include "util/units.hpp"

namespace beesim::control {

/// Tuning knobs of the monitor (CLI: --suspect-*).
struct HealthPolicy {
  /// Master switch; when false the harness does not construct the monitor.
  bool enabled = false;
  /// A busy server running below this fraction of its busy peers' median
  /// EWMA is suspect (must be in (0, 1)).
  double suspectRatio = 0.5;
  /// Seconds a server must stay suspect before it is quarantined.
  util::Seconds suspectPatience = 1.0;
  /// Virtual-time sampling interval of the private tracer.
  util::Seconds sampleInterval = 0.25;
  /// Per-sample EWMA smoothing factor in (0, 1]; 1 = raw rates.
  double ewmaAlpha = 0.3;
  /// Create weight published for a quarantined host (drain; > 0 keeps the
  /// host choosable when every other host is also degraded).
  double drainWeight = 0.05;
  /// Quarantine dwell time before the probation probe re-admits traffic.
  util::Seconds probationDelay = 5.0;
  /// Create weight during probation (partial re-admission).
  double probeWeight = 0.5;
  /// Seconds of clean probation before full re-admission.
  util::Seconds recoverPatience = 1.0;
};

/// What the monitor observed/did during a run (exported as gray_* columns).
struct HealthStats {
  std::size_t samples = 0;       ///< metrics samples observed
  std::size_t suspects = 0;      ///< healthy -> suspect transitions
  std::size_t quarantines = 0;   ///< suspect -> quarantined transitions
  std::size_t probations = 0;    ///< quarantined -> probation transitions
  std::size_t readmissions = 0;  ///< probation -> healthy transitions
  std::size_t relapses = 0;      ///< probation -> quarantined transitions
};

class HealthMonitor {
 public:
  /// Attaches a private FlowTracer tracking every server NIC and wraps the
  /// filesystem's chooser in a WeightedChooser (invisible until a drain
  /// skews the weights).  `policy.enabled` must be true.
  HealthMonitor(beegfs::FileSystem& fs, const HealthPolicy& policy);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  const HealthPolicy& policy() const { return policy_; }
  const HealthStats& stats() const { return stats_; }

  /// Current state of one host (mirror of the registry entry).
  beegfs::HostHealth state(std::size_t host) const;

  /// Stop reacting to samples and restore uniform weights; the registry
  /// keeps the final health verdicts for post-run inspection.  Called when
  /// the foreground job completes so migration/resync tails cannot trip the
  /// detector against their own traffic.
  void disarm();

 private:
  struct HostState {
    beegfs::HostHealth health = beegfs::HostHealth::kHealthy;
    double ewma = -1.0;             ///< -1 = no sample banked yet
    util::Seconds belowSince = -1.0;   ///< start of the current below streak
    util::Seconds cleanSince = -1.0;   ///< start of the current probation streak
    std::uint64_t probationEpoch = 0;  ///< guards stale probation timers
  };

  void onSample(const sim::MetricsSample& sample);
  void quarantine(std::size_t host, util::Seconds now);
  void enterProbation(std::size_t host, std::uint64_t epoch);
  void readmit(std::size_t host);

  beegfs::FileSystem& fs_;
  HealthPolicy policy_;
  sim::FlowTracer tracer_;
  HealthStats stats_;
  std::vector<HostState> hosts_;
  bool disarmed_ = false;
};

}  // namespace beesim::control
