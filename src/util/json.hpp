// Minimal JSON: parse and serialize.
//
// Used for the cluster description files (topology/loader.hpp) and the CLI,
// so the library keeps zero external dependencies.  Supports the full JSON
// value model; numbers are doubles (adequate for configuration data).
// Parse errors carry line/column positions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace beesim::util {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys ordered -> deterministic serialization.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(std::nullptr_t) : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  JsonValue(int n) : kind_(Kind::kNumber), number_(n) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(JsonArray a);
  JsonValue(JsonObject o);

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::kNull; }
  bool isBool() const { return kind_ == Kind::kBool; }
  bool isNumber() const { return kind_ == Kind::kNumber; }
  bool isString() const { return kind_ == Kind::kString; }
  bool isArray() const { return kind_ == Kind::kArray; }
  bool isObject() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw ConfigError on kind mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const JsonArray& asArray() const;
  const JsonObject& asObject() const;

  /// Object field access.  `at` throws ConfigError when missing; the
  /// `*Or` variants return the fallback when the key is absent (but still
  /// throw on kind mismatch, so typos in values do not pass silently).
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const;
  double numberOr(const std::string& key, double fallback) const;
  std::string stringOr(const std::string& key, const std::string& fallback) const;
  bool boolOr(const std::string& key, bool fallback) const;

  /// Serialize; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;    // shared_ptr keeps JsonValue copyable
  std::shared_ptr<JsonObject> object_;  // and cheap to pass around
};

/// Parse a JSON document.  Throws ConfigError with "line L, column C" on
/// malformed input.  Trailing garbage after the document is an error.
JsonValue parseJson(const std::string& text);

}  // namespace beesim::util
