#include "util/string_util.hpp"

#include <cctype>

namespace beesim::util {

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delim) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool startsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

std::string toLower(std::string text) {
  for (auto& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

}  // namespace beesim::util
