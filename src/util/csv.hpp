// Minimal CSV writing/reading for experiment results.
//
// The paper publishes all raw results as CSV in its companion repository;
// our harness does the same so downstream analysis (R, pandas) can consume
// the regenerated data directly.
#pragma once

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace beesim::util {

/// Streams rows to a CSV file.  RAII: the file is flushed and closed on
/// destruction.  Fields containing commas, quotes or newlines are quoted.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  /// Throws IoError if the file cannot be opened.
  CsvWriter(const std::filesystem::path& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row.  Throws ContractError if the field count differs from
  /// the header's.
  void writeRow(const std::vector<std::string>& fields);

  /// Number of data rows written so far (header excluded).
  std::size_t rowCount() const { return rows_; }

  const std::filesystem::path& path() const { return path_; }

  /// Quote a field if needed per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// In-memory CSV parse result.
struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws IoError if absent.
  std::size_t column(const std::string& name) const;
};

/// Reads a whole CSV file (RFC 4180 quoting).  Throws IoError on failure.
CsvData readCsv(const std::filesystem::path& path);

/// Parses CSV text (used by tests to avoid touching the filesystem).
CsvData parseCsv(const std::string& text);

}  // namespace beesim::util
