// Deterministic, splittable random number generation.
//
// Every stochastic decision in beesim (target choice, device variability,
// protocol waits, shuffles) flows from an Rng seeded at the experiment root.
// Rng::split() derives an independent child stream, so adding randomness to
// one component never perturbs the draws seen by another -- a property the
// paper's methodology (randomized blocks, 100 repetitions) relies on for
// reproducible experiment plans.
//
// Engine: xoshiro256** (public-domain, Blackman & Vigna) seeded through
// SplitMix64, both implemented here so the library has zero dependencies and
// identical streams on every platform (std:: distributions are not portable).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace beesim::util {

/// xoshiro256** engine with SplitMix64 seeding.  Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

/// High-level deterministic random source with portable distributions.
class Rng {
 public:
  /// Root stream for a given seed.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derive an independent child stream.  Children derived in the same order
  /// from the same parent are identical across runs.
  Rng split() noexcept;

  /// Named child stream: independent of split() order, keyed by `tag`.
  /// Useful when components are created in data-dependent order.
  Rng splitNamed(std::uint64_t tag) const noexcept;

  /// Uniform in [0, 1).
  double uniform01() noexcept;

  /// Uniform in [lo, hi).  Precondition: lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (portable across platforms).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;

  /// Log-normal such that the *median* of the distribution is `median` and
  /// log-space standard deviation is `sigmaLog`.  Device performance
  /// variability in modern storage stacks is well described by log-normal
  /// factors (Cao et al., FAST'17 -- cited by the paper as the source of
  /// Scenario-2 variance).
  double logNormalMedian(double median, double sigmaLog) noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;

  /// Exponential with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Fisher-Yates shuffle (uses this stream; portable).
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) uniformly (order randomized).
  /// Precondition: k <= n.
  std::vector<std::size_t> sampleWithoutReplacement(std::size_t n, std::size_t k);

  /// Raw 64 random bits.
  std::uint64_t bits() noexcept { return engine_(); }

 private:
  Xoshiro256 engine_;
  std::uint64_t seed_;          // remembered for splitNamed()
  std::uint64_t splitCounter_ = 0;
  bool hasSpareNormal_ = false;
  double spareNormal_ = 0.0;
};

}  // namespace beesim::util
