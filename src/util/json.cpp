#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace beesim::util {

JsonValue::JsonValue(JsonArray a)
    : kind_(Kind::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}

JsonValue::JsonValue(JsonObject o)
    : kind_(Kind::kObject), object_(std::make_shared<JsonObject>(std::move(o))) {}

namespace {
[[noreturn]] void kindError(const char* wanted, JsonValue::Kind got) {
  static const char* names[] = {"null", "bool", "number", "string", "array", "object"};
  throw ConfigError(std::string("JSON: expected ") + wanted + ", found " +
                    names[static_cast<int>(got)]);
}
}  // namespace

bool JsonValue::asBool() const {
  if (!isBool()) kindError("bool", kind_);
  return bool_;
}

double JsonValue::asNumber() const {
  if (!isNumber()) kindError("number", kind_);
  return number_;
}

const std::string& JsonValue::asString() const {
  if (!isString()) kindError("string", kind_);
  return string_;
}

const JsonArray& JsonValue::asArray() const {
  if (!isArray()) kindError("array", kind_);
  return *array_;
}

const JsonObject& JsonValue::asObject() const {
  if (!isObject()) kindError("object", kind_);
  return *object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = asObject();
  const auto it = obj.find(key);
  if (it == obj.end()) throw ConfigError("JSON: missing field '" + key + "'");
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return isObject() && object_->count(key) > 0;
}

double JsonValue::numberOr(const std::string& key, double fallback) const {
  return has(key) ? at(key).asNumber() : fallback;
}

std::string JsonValue::stringOr(const std::string& key, const std::string& fallback) const {
  return has(key) ? at(key).asString() : fallback;
}

bool JsonValue::boolOr(const std::string& key, bool fallback) const {
  return has(key) ? at(key).asBool() : fallback;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.bool_ == b.bool_;
    case JsonValue::Kind::kNumber: return a.number_ == b.number_;
    case JsonValue::Kind::kString: return a.string_ == b.string_;
    case JsonValue::Kind::kArray: return *a.array_ == *b.array_;
    case JsonValue::Kind::kObject: return *a.object_ == *b.object_;
  }
  return false;
}

namespace {

void escapeString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dumpNumber(std::string& out, double n) {
  if (n == std::floor(n) && std::fabs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", n);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    out += buf;
  }
}

}  // namespace

void JsonValue::dumpTo(std::string& out, int indent, int depth) const {
  const auto pad = [&](int d) {
    if (indent > 0) out += '\n' + std::string(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: dumpNumber(out, number_); break;
    case Kind::kString: escapeString(out, string_); break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : *array_) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        v.dumpTo(out, indent, depth + 1);
      }
      if (!array_->empty()) pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, v] : *object_) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        escapeString(out, key);
        out += indent > 0 ? ": " : ":";
        v.dumpTo(out, indent, depth + 1);
      }
      if (!object_->empty()) pad(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parseDocument() {
    skipWhitespace();
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw ConfigError("JSON: " + message + " (line " + std::to_string(line) + ", column " +
                      std::to_string(column) + ")");
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expectKeyword(const char* keyword) {
    for (const char* k = keyword; *k; ++k) {
      if (pos_ >= text_.size() || text_[pos_] != *k) fail(std::string("invalid literal"));
      ++pos_;
    }
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return JsonValue(parseString());
      case 't': expectKeyword("true"); return JsonValue(true);
      case 'f': expectKeyword("false"); return JsonValue(false);
      case 'n': expectKeyword("null"); return JsonValue(nullptr);
      default: return parseNumber();
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '.' || text_[pos_] == 'e' ||
                                   text_[pos_] == 'E' || text_[pos_] == '+' ||
                                   text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    std::size_t consumed = 0;
    double value = 0.0;
    const std::string token = text_.substr(start, pos_ - start);
    try {
      value = std::stod(token, &consumed);
    } catch (const std::exception&) {
      fail("invalid number '" + token + "'");
    }
    if (consumed != token.size()) fail("invalid number '" + token + "'");
    return JsonValue(value);
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // Basic BMP escape; encode as UTF-8.
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonArray array;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    while (true) {
      skipWhitespace();
      array.push_back(parseValue());
      skipWhitespace();
      const char c = next();
      if (c == ']') return JsonValue(std::move(array));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonObject object;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    while (true) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      skipWhitespace();
      object.emplace(std::move(key), parseValue());
      skipWhitespace();
      const char c = next();
      if (c == '}') return JsonValue(std::move(object));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text) { return Parser(text).parseDocument(); }

}  // namespace beesim::util
