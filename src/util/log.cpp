#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace beesim::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void initLogLevelFromEnv() {
  const char* env = std::getenv("BEESIM_LOG");
  if (env == nullptr) return;
  const std::string value(env);
  if (value == "debug") setLogLevel(LogLevel::kDebug);
  else if (value == "info") setLogLevel(LogLevel::kInfo);
  else if (value == "warn") setLogLevel(LogLevel::kWarn);
  else if (value == "error") setLogLevel(LogLevel::kError);
  else if (value == "off") setLogLevel(LogLevel::kOff);
}

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[beesim %s] %s\n", levelName(level), message.c_str());
}

}  // namespace beesim::util
