// Small string helpers shared by CLIs, CSV naming and bench output.
#pragma once

#include <string>
#include <vector>

namespace beesim::util {

/// Split on a delimiter; never returns an empty vector ("" -> {""}).
std::vector<std::string> split(const std::string& text, char delim);

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& text);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `text` begins with `prefix`.
bool startsWith(const std::string& text, const std::string& prefix);

/// Lower-case ASCII copy.
std::string toLower(std::string text);

}  // namespace beesim::util
