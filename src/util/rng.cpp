#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace beesim::util {

namespace {

/// SplitMix64: expands a 64-bit seed into well-distributed state words.
std::uint64_t splitMix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitMix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng::Rng(std::uint64_t seed) noexcept : engine_(seed), seed_(seed) {}

Rng Rng::split() noexcept {
  // Mix the parent's seed with a per-parent counter so sibling streams are
  // decorrelated; drawing from the parent engine ties the child to the
  // parent's consumption position, which we deliberately avoid.
  ++splitCounter_;
  std::uint64_t mix = seed_ ^ (0xA0761D6478BD642FULL * splitCounter_);
  return Rng(splitMix64(mix));
}

Rng Rng::splitNamed(std::uint64_t tag) const noexcept {
  std::uint64_t mix = seed_ ^ (0xE7037ED1A0B428DBULL * (tag + 1));
  return Rng(splitMix64(mix));
}

double Rng::uniform01() noexcept {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(engine_());  // full range
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit = (~std::uint64_t{0}) - ((~std::uint64_t{0}) % range) - 1;
  std::uint64_t draw = engine_();
  while (draw > limit) draw = engine_();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() noexcept {
  if (hasSpareNormal_) {
    hasSpareNormal_ = false;
    return spareNormal_;
  }
  // Box-Muller; avoid log(0).
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spareNormal_ = radius * std::sin(angle);
  hasSpareNormal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

double Rng::logNormalMedian(double median, double sigmaLog) noexcept {
  return median * std::exp(sigmaLog * normal());
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

double Rng::exponential(double mean) noexcept {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -mean * std::log(u);
}

std::vector<std::size_t> Rng::sampleWithoutReplacement(std::size_t n, std::size_t k) {
  BEESIM_ASSERT(k <= n, "cannot sample more elements than the population has");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: first k positions are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniformInt(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    using std::swap;
    swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace beesim::util
