#include "util/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace beesim::util {

MiBps bandwidth(Bytes bytes, Seconds elapsed) {
  BEESIM_ASSERT(elapsed > 0.0, "bandwidth() needs a positive elapsed time");
  return toMiB(bytes) / elapsed;
}

Seconds transferTime(Bytes bytes, MiBps rate) {
  BEESIM_ASSERT(rate > 0.0, "transferTime() needs a positive rate");
  return toMiB(bytes) / rate;
}

namespace {

std::string formatWithSuffix(double value, const char* suffix) {
  char buf[64];
  if (value == std::floor(value) && value < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, suffix);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffix);
  }
  return buf;
}

}  // namespace

std::string formatBytes(Bytes b) {
  if (b >= kTiB && b % kTiB == 0) return formatWithSuffix(static_cast<double>(b / kTiB), "TiB");
  if (b >= kGiB) return formatWithSuffix(static_cast<double>(b) / static_cast<double>(kGiB), "GiB");
  if (b >= kMiB) return formatWithSuffix(static_cast<double>(b) / static_cast<double>(kMiB), "MiB");
  if (b >= kKiB) return formatWithSuffix(static_cast<double>(b) / static_cast<double>(kKiB), "KiB");
  return formatWithSuffix(static_cast<double>(b), "B");
}

std::string formatBandwidth(MiBps bw) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f MiB/s", bw);
  return buf;
}

std::string formatSeconds(Seconds s) {
  char buf[64];
  if (s < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else {
    const auto whole = static_cast<long>(s);
    std::snprintf(buf, sizeof(buf), "%ldm%02lds", whole / 60, whole % 60);
  }
  return buf;
}

Bytes parseBytes(const std::string& text) {
  if (text.empty()) throw ConfigError("parseBytes: empty size string");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw ConfigError("parseBytes: cannot parse number in '" + text + "'");
  }
  if (value < 0.0) throw ConfigError("parseBytes: negative size '" + text + "'");
  // Skip whitespace between number and suffix.
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  std::string suffix = text.substr(pos);
  for (auto& c : suffix) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));

  double multiplier = 1.0;
  if (suffix.empty() || suffix == "b") {
    multiplier = 1.0;
  } else if (suffix == "k" || suffix == "kib" || suffix == "kb") {
    multiplier = static_cast<double>(kKiB);
  } else if (suffix == "m" || suffix == "mib" || suffix == "mb") {
    multiplier = static_cast<double>(kMiB);
  } else if (suffix == "g" || suffix == "gib" || suffix == "gb") {
    multiplier = static_cast<double>(kGiB);
  } else if (suffix == "t" || suffix == "tib" || suffix == "tb") {
    multiplier = static_cast<double>(kTiB);
  } else {
    throw ConfigError("parseBytes: unknown suffix '" + suffix + "' in '" + text + "'");
  }
  return static_cast<Bytes>(value * multiplier);
}

}  // namespace beesim::util
