// Aligned console tables.  Every bench binary prints the rows/series of the
// paper figure it regenerates; this helper keeps that output readable.
#pragma once

#include <string>
#include <vector>

namespace beesim::util {

/// Collects rows and renders them as an aligned, pipe-separated table.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void addRow(std::vector<std::string> fields);

  /// Render with a header underline.  Numeric-looking cells right-align.
  std::string render() const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.1f" style) without iostream noise.
std::string fmt(double value, int decimals = 1);

}  // namespace beesim::util
