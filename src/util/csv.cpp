#include "util/csv.hpp"

#include <sstream>

#include "util/error.hpp"

namespace beesim::util {

CsvWriter::CsvWriter(const std::filesystem::path& path, const std::vector<std::string>& header)
    : path_(path), columns_(header.size()) {
  BEESIM_ASSERT(!header.empty(), "CSV header must have at least one column");
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  out_.open(path);
  if (!out_) throw IoError("cannot open CSV file for writing: " + path.string());
  std::string line;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) line += ',';
    line += escape(header[i]);
  }
  out_ << line << '\n';
}

void CsvWriter::writeRow(const std::vector<std::string>& fields) {
  BEESIM_ASSERT(fields.size() == columns_, "CSV row width differs from header");
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += escape(fields[i]);
  }
  out_ << line << '\n';
  if (!out_) throw IoError("failed writing CSV row to " + path_.string());
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needsQuote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuote) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::size_t CsvData::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw IoError("CSV column not found: " + name);
}

namespace {

/// Splits one logical CSV record that is already known to end at a record
/// boundary.  Handles RFC 4180 quoting.
std::vector<std::string> splitRecord(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool inQuotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (inQuotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          inQuotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      inQuotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // ignore
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace

CsvData parseCsv(const std::string& text) {
  // Split the input into logical records first: a newline inside a quoted
  // field is data, not a record boundary (RFC 4180).  Naively splitting on
  // '\n' would tear such records apart -- exactly what quoted fields written
  // by CsvWriter::escape contain after a round trip.
  CsvData data;
  bool first = true;
  std::string record;
  bool inQuotes = false;
  const auto flush = [&] {
    if (!record.empty() && record.back() == '\r') record.pop_back();
    if (!record.empty()) {
      auto fields = splitRecord(record);
      if (first) {
        data.header = std::move(fields);
        first = false;
      } else {
        data.rows.push_back(std::move(fields));
      }
    }
    record.clear();
  };
  for (const char c : text) {
    if (c == '\n' && !inQuotes) {
      flush();
      continue;
    }
    if (c == '"') inQuotes = !inQuotes;
    record += c;
  }
  if (inQuotes) throw IoError("CSV text ends inside a quoted field");
  flush();
  return data;
}

CsvData readCsv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open CSV file for reading: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseCsv(buffer.str());
}

}  // namespace beesim::util
