#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/error.hpp"

namespace beesim::util {

TableWriter::TableWriter(std::vector<std::string> header) : header_(std::move(header)) {
  BEESIM_ASSERT(!header_.empty(), "table needs at least one column");
}

void TableWriter::addRow(std::vector<std::string> fields) {
  BEESIM_ASSERT(fields.size() == header_.size(), "table row width differs from header");
  rows_.push_back(std::move(fields));
}

namespace {

bool looksNumeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' && c != 'E') {
      return false;
    }
  }
  return digit;
}

}  // namespace

std::string TableWriter::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) line += " | ";
      const auto pad = width[c] - row[c].size();
      if (looksNumeric(row[c])) {
        line += std::string(pad, ' ') + row[c];
      } else {
        line += row[c] + std::string(pad, ' ');
      }
    }
    return line;
  };

  std::string out = renderRow(header_);
  out += '\n';
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 3 : 0);
  out += std::string(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += renderRow(row);
    out += '\n';
  }
  return out;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace beesim::util
