// Error handling primitives for beesim.
//
// Contract violations (programming errors) use BEESIM_ASSERT, which throws
// ContractError so tests can exercise the contracts.  Recoverable problems
// (bad user configuration, malformed input) throw ConfigError / IoError.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace beesim::util {

/// Base class of all beesim exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A precondition, postcondition or invariant of the library was violated.
class ContractError : public Error {
 public:
  using Error::Error;
};

/// User-provided configuration is invalid (bad topology, bad IOR options...).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Failure reading or writing external data (CSV files, result stores).
class IoError : public Error {
 public:
  using Error::Error;
};

[[noreturn]] inline void contractFailure(
    const char* expr, const std::string& message,
    const std::source_location loc = std::source_location::current()) {
  throw ContractError(std::string(loc.file_name()) + ":" +
                      std::to_string(loc.line()) + ": contract violated: (" +
                      expr + ") " + message);
}

}  // namespace beesim::util

/// Assert a contract; throws beesim::util::ContractError when violated.
/// Always enabled (simulation correctness depends on these checks and their
/// cost is negligible next to the solver).
#define BEESIM_ASSERT(expr, message)                        \
  do {                                                      \
    if (!(expr)) {                                          \
      ::beesim::util::contractFailure(#expr, (message));    \
    }                                                       \
  } while (false)
