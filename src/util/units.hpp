// Strongly-typed units used throughout beesim.
//
// The paper reports bandwidth in MiB/s and data sizes in GiB; BeeGFS chunk
// sizes are KiB.  To keep every interface unambiguous we carry:
//   * Bytes      -- exact 64-bit byte counts,
//   * Seconds    -- simulated time, double precision,
//   * MiBps      -- bandwidth in MiB per second, double precision.
// Conversions are explicit and centralized here.
#pragma once

#include <cstdint>
#include <string>

namespace beesim::util {

/// Exact data size in bytes.
using Bytes = std::uint64_t;

/// Simulated time in seconds.
using Seconds = double;

/// Bandwidth in MiB/s (the unit used by every figure of the paper).
using MiBps = double;

inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = 1024ULL * kKiB;
inline constexpr Bytes kGiB = 1024ULL * kMiB;
inline constexpr Bytes kTiB = 1024ULL * kGiB;

/// User-defined literals so test and bench code reads like the paper:
/// `32_GiB`, `512_KiB`, `1_MiB`.
namespace literals {
constexpr Bytes operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v * kGiB; }
constexpr Bytes operator""_TiB(unsigned long long v) { return v * kTiB; }
}  // namespace literals

/// Convert a byte count to MiB (fractional).
constexpr double toMiB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMiB); }

/// Convert a byte count to GiB (fractional).
constexpr double toGiB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }

/// Bandwidth of moving `bytes` in `elapsed` seconds, in MiB/s.
/// Precondition: elapsed > 0.
MiBps bandwidth(Bytes bytes, Seconds elapsed);

/// Time to move `bytes` at `rate` MiB/s.  Precondition: rate > 0.
Seconds transferTime(Bytes bytes, MiBps rate);

/// Render a byte count with a binary suffix ("32 GiB", "512 KiB", "17.5 MiB").
std::string formatBytes(Bytes b);

/// Render a bandwidth ("1460.3 MiB/s").
std::string formatBandwidth(MiBps bw);

/// Render a duration ("2.50 s", "12.0 ms", "3m12s").
std::string formatSeconds(Seconds s);

/// Parse sizes like "32GiB", "512KiB", "1MiB", "4096" (plain bytes).
/// Throws ConfigError on malformed input.
Bytes parseBytes(const std::string& text);

}  // namespace beesim::util
