// Tiny leveled logger.  The simulator is a library, so logging is off by
// default and controlled programmatically (or via BEESIM_LOG=debug|info|...).
#pragma once

#include <sstream>
#include <string>

namespace beesim::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Reads BEESIM_LOG from the environment once ("debug", "info", "warn",
/// "error", "off"); unknown or missing values leave the level unchanged.
void initLogLevelFromEnv();

/// Emit a message (thread-safe, single write to stderr).
void logMessage(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace beesim::util

#define BEESIM_LOG(level)                                            \
  if (static_cast<int>(level) < static_cast<int>(::beesim::util::logLevel())) \
    ;                                                                \
  else                                                               \
    ::beesim::util::detail::LogLine(level)

#define BEESIM_DEBUG() BEESIM_LOG(::beesim::util::LogLevel::kDebug)
#define BEESIM_INFO() BEESIM_LOG(::beesim::util::LogLevel::kInfo)
#define BEESIM_WARN() BEESIM_LOG(::beesim::util::LogLevel::kWarn)
#define BEESIM_ERROR() BEESIM_LOG(::beesim::util::LogLevel::kError)
