#include "topology/catalyst.hpp"

#include "util/error.hpp"

namespace beesim::topo {

ClusterConfig makeCatalystLike(std::size_t computeNodes, const CatalystCalibration& cal) {
  if (computeNodes == 0) throw util::ConfigError("Catalyst model needs >= 1 compute node");

  UniformClusterSpec spec;
  spec.name = "catalyst-like";
  spec.computeNodes = computeNodes;
  spec.nodeNic = cal.nodeLink;
  spec.nodeClientCap = cal.clientCap;
  spec.storageHosts = cal.storageHosts;
  spec.targetsPerHost = cal.targetsPerHost;
  spec.serverNic = cal.serverLink;
  spec.serverServiceCap = cal.ossServiceCap;
  spec.targetDevice = storage::HddRaidParams{
      .disks = cal.disksPerTarget,
      .parityDisks = cal.parityDisks,
      .perDiskStream = cal.perDiskStream,
      .writeEfficiency = cal.writeEfficiency,
      .cacheFraction = cal.targetCacheFraction,
      .cacheQHalf = cal.targetCacheQHalf,
      .streamQHalf = cal.targetStreamQHalf,
      .streamExponent = cal.targetStreamExponent,
  };
  spec.targetVariability = VariabilitySpec{
      .kind = VariabilitySpec::Kind::kLogNormal,
      .sigma = cal.ostSigmaLog,
  };
  return buildUniformCluster(spec);
}

}  // namespace beesim::topo
