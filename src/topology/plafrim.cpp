#include "topology/plafrim.hpp"

#include "util/error.hpp"

namespace beesim::topo {

ClusterConfig makePlafrim(Scenario scenario, std::size_t computeNodes,
                          const PlafrimCalibration& cal) {
  if (computeNodes == 0) throw util::ConfigError("PlaFRIM model needs >= 1 compute node");

  const bool ethernet = scenario == Scenario::kEthernet10G;

  UniformClusterSpec spec;
  spec.name = ethernet ? "plafrim-s1" : "plafrim-s2";
  spec.computeNodes = computeNodes;
  spec.nodeNic = ethernet ? cal.s1NodeLink : cal.s2NodeLink;
  spec.nodeClientCap = ethernet ? cal.s1ClientCap : cal.s2ClientCap;
  spec.storageHosts = kPlafrimStorageHosts;
  spec.targetsPerHost = kPlafrimTargetsPerHost;
  spec.serverNic = ethernet ? cal.s1ServerLink : cal.s2ServerLink;
  spec.serverServiceCap = cal.ossServiceCap;

  spec.targetDevice = storage::HddRaidParams{
      .disks = cal.disksPerTarget,
      .parityDisks = cal.parityDisks,
      .perDiskStream = cal.perDiskStream,
      .writeEfficiency = cal.writeEfficiency,
      .cacheFraction = cal.targetCacheFraction,
      .cacheQHalf = cal.targetCacheQHalf,
      .streamQHalf = cal.targetStreamQHalf,
      .streamExponent = cal.targetStreamExponent,
  };
  spec.targetVariability = VariabilitySpec{
      .kind = VariabilitySpec::Kind::kLogNormal,
      .sigma = cal.ostSigmaLog,
  };

  return buildUniformCluster(spec);
}

const char* scenarioLabel(Scenario scenario) {
  switch (scenario) {
    case Scenario::kEthernet10G:
      return "scenario 1 (network slower than storage, 10 GbE)";
    case Scenario::kOmniPath100G:
      return "scenario 2 (storage slower than network, Omni-Path)";
  }
  return "unknown scenario";
}

}  // namespace beesim::topo
