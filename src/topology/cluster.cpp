#include "topology/cluster.hpp"

#include "util/error.hpp"

namespace beesim::topo {

std::size_t ClusterConfig::targetCount() const {
  std::size_t count = 0;
  for (const auto& host : hosts) count += host.targets.size();
  return count;
}

std::size_t ClusterConfig::flatTargetIndex(std::size_t host, std::size_t target) const {
  BEESIM_ASSERT(host < hosts.size(), "host index out of range");
  BEESIM_ASSERT(target < hosts[host].targets.size(), "target index out of range");
  std::size_t flat = 0;
  for (std::size_t h = 0; h < host; ++h) flat += hosts[h].targets.size();
  return flat + target;
}

std::pair<std::size_t, std::size_t> ClusterConfig::targetLocation(std::size_t flat) const {
  std::size_t remaining = flat;
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    if (remaining < hosts[h].targets.size()) return {h, remaining};
    remaining -= hosts[h].targets.size();
  }
  BEESIM_ASSERT(false, "flat target index out of range");
  return {0, 0};  // unreachable
}

int ClusterConfig::beegfsTargetNum(std::size_t flat) const {
  const auto [host, target] = targetLocation(flat);
  return static_cast<int>((host + 1) * 100 + (target + 1));
}

void ClusterConfig::validate() const {
  if (nodes.empty()) throw util::ConfigError("cluster '" + name + "' has no compute nodes");
  if (hosts.empty()) throw util::ConfigError("cluster '" + name + "' has no storage hosts");
  for (const auto& node : nodes) {
    if (node.nicBandwidth <= 0.0) {
      throw util::ConfigError("node '" + node.name + "' has non-positive NIC bandwidth");
    }
    if (node.clientThroughputCap <= 0.0) {
      throw util::ConfigError("node '" + node.name + "' has non-positive client cap");
    }
  }
  for (const auto& host : hosts) {
    if (host.nicBandwidth <= 0.0) {
      throw util::ConfigError("host '" + host.name + "' has non-positive NIC bandwidth");
    }
    if (host.serviceCap < 0.0) {
      throw util::ConfigError("host '" + host.name + "' has negative service cap");
    }
    if (host.targets.empty()) {
      throw util::ConfigError("host '" + host.name + "' has no storage targets");
    }
  }
  if (network.backboneBandwidth < 0.0) {
    throw util::ConfigError("cluster '" + name + "' has negative backbone bandwidth");
  }
}

ClusterConfig buildUniformCluster(const UniformClusterSpec& spec) {
  if (spec.computeNodes == 0) throw util::ConfigError("uniform cluster needs >= 1 node");
  if (spec.storageHosts == 0) throw util::ConfigError("uniform cluster needs >= 1 host");
  if (spec.targetsPerHost == 0) throw util::ConfigError("uniform cluster needs >= 1 target/host");

  ClusterConfig cfg;
  cfg.name = spec.name;
  cfg.network.name = spec.name + "-switch";
  cfg.nodes.reserve(spec.computeNodes);
  for (std::size_t n = 0; n < spec.computeNodes; ++n) {
    cfg.nodes.push_back(ComputeNodeCfg{
        .name = spec.name + "-node" + std::to_string(n),
        .nicBandwidth = spec.nodeNic,
        .clientThroughputCap = spec.nodeClientCap,
    });
  }
  cfg.hosts.reserve(spec.storageHosts);
  for (std::size_t h = 0; h < spec.storageHosts; ++h) {
    StorageHostCfg host;
    host.name = spec.name + "-oss" + std::to_string(h);
    host.nicBandwidth = spec.serverNic;
    host.serviceCap = spec.serverServiceCap;
    for (std::size_t t = 0; t < spec.targetsPerHost; ++t) {
      host.targets.push_back(TargetCfg{
          .name = host.name + "-ost" + std::to_string(t),
          .device = spec.targetDevice,
          .variability = spec.targetVariability,
      });
    }
    cfg.hosts.push_back(std::move(host));
  }
  cfg.validate();
  return cfg;
}

}  // namespace beesim::topo
