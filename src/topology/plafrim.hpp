// PlaFRIM (Bora + BeeGFS) topology factories -- the system of the paper.
//
//   * 2 storage hosts, each running one OSS with four OSTs (12x 1.8 TB
//     10k-RPM HDDs in RAID-6 per OST) and one MDS (2x SSD RAID-1 MDT).
//   * Scenario 1: compute nodes reach the storage hosts over 10 GbE
//     (network slower than storage).
//   * Scenario 2: 100 Gb Omni-Path (storage slower than network).
//
// Calibration: the constants below were fitted against the paper's in-text
// anchors (see EXPERIMENTS.md for the full anchor table):
//   S1: 1 node/8 ppn ~880 MiB/s; (0,k) ~1100; (1,3) ~1460; balanced ~2200.
//   S2: 1 node ~1630; stripe 1 @32 nodes ~1760; stripe 4 plateau ~6100 at
//       16 nodes; stripe 8 @32 nodes ~8060 (sd ~790); (3,3) ~10% over (2,4).
// Only the absolute scales are calibrated; every comparative behaviour
// (balance effect, bimodality, count scaling, node requirements) emerges
// from the max-min fair model.
#pragma once

#include <cstddef>

#include "topology/cluster.hpp"

namespace beesim::topo {

/// The two network configurations evaluated by the paper (Section III-A).
enum class Scenario {
  /// 10 GBit/s Ethernet: the network is slower than the storage.
  kEthernet10G = 1,
  /// 100 GBit/s Omni-Path: the storage is slower than the network.
  kOmniPath100G = 2,
};

/// Calibrated constants of the PlaFRIM model.  Defaults reproduce the paper;
/// ablation benches perturb individual fields.
struct PlafrimCalibration {
  // -- Scenario 1 network (10 GbE, ~1250 MiB/s raw). --------------------
  /// Effective per-server-link throughput after TCP/protocol overhead.
  util::MiBps s1ServerLink = 1100.0;
  /// Compute-node NIC (same 10 GbE).
  util::MiBps s1NodeLink = 1163.0;
  /// Whole-client-stack ceiling of one node (paper: ~880 MiB/s measured
  /// with 8 processes on one node).
  util::MiBps s1ClientCap = 900.0;

  // -- Scenario 2 network (100 Gb Omni-Path, ~12500 MiB/s raw). ----------
  util::MiBps s2ServerLink = 11000.0;
  util::MiBps s2NodeLink = 11000.0;
  /// One node saturates at ~1630 MiB/s over Omni-Path (paper Fig. 4b).
  util::MiBps s2ClientCap = 1680.0;

  // -- Storage (identical hardware in both scenarios). ------------------
  /// Streaming rate of one 10k-RPM HDD.
  util::MiBps perDiskStream = 200.0;
  int disksPerTarget = 12;
  int parityDisks = 2;  // RAID-6
  /// RAID/write-path efficiency; peak per OST = 10 * 200 * 0.93 = 1860.
  double writeEfficiency = 0.93;
  /// Two-component OST service curve (see storage/device.hpp): share of the
  /// peak served by the controller/cache path, its half-queue, and the
  /// half-queue of the quadratic spindle-streaming ramp.
  double targetCacheFraction = 0.28;
  double targetCacheQHalf = 1.0;
  double targetStreamQHalf = 33.0;
  double targetStreamExponent = 4.0;
  /// Aggregate OSS service ceiling per storage host (worker pool + HBA).
  util::MiBps ossServiceCap = 4500.0;
  /// Per-OST log-normal performance variability (log-space sigma).
  double ostSigmaLog = 0.05;
};

/// Number of storage hosts / targets per host on PlaFRIM.
inline constexpr std::size_t kPlafrimStorageHosts = 2;
inline constexpr std::size_t kPlafrimTargetsPerHost = 4;

/// Build the PlaFRIM cluster for a scenario with `computeNodes` Bora nodes.
/// Throws ConfigError if computeNodes == 0.
ClusterConfig makePlafrim(Scenario scenario, std::size_t computeNodes,
                          const PlafrimCalibration& calibration = {});

/// Human-readable scenario label used in tables ("scenario 1 (Ethernet)").
const char* scenarioLabel(Scenario scenario);

}  // namespace beesim::topo
