// A Catalyst-like system: the platform of Chowdhury et al. (ICPP'19), whose
// conclusions the paper contradicts.
//
// Catalyst (as described in the paper's related-work discussion) exposes 24
// storage targets on 12 storage servers behind a fast network.  Chowdhury et
// al. evaluated the stripe count from a *single compute node* and concluded
// its impact was negligible, recommending 4 targets per application.  The
// paper's Lesson #1 explains why: with one node the client stack is the
// bottleneck, hiding the target-count effect.  `bench/tab_chowdhury_baseline`
// reproduces exactly that observation on this topology.
#pragma once

#include <cstddef>

#include "topology/cluster.hpp"

namespace beesim::topo {

struct CatalystCalibration {
  std::size_t storageHosts = 12;
  std::size_t targetsPerHost = 2;
  /// IB network: fast enough that storage dominates.
  util::MiBps serverLink = 5500.0;
  util::MiBps nodeLink = 5500.0;
  /// Single-node client ceiling; dominates single-node measurements (this
  /// is why Chowdhury et al. saw no stripe-count effect from one node).
  util::MiBps clientCap = 900.0;
  /// Per-OST device (Catalyst used fewer disks per target than PlaFRIM).
  util::MiBps perDiskStream = 160.0;
  int disksPerTarget = 10;
  int parityDisks = 2;
  double writeEfficiency = 0.9;
  /// Two-component OST curve (see storage/device.hpp).  Catalyst-era
  /// targets serve shallow queues well (large controller caches), so the
  /// cache path dominates.
  double targetCacheFraction = 0.9;
  double targetCacheQHalf = 0.5;
  double targetStreamQHalf = 33.0;
  double targetStreamExponent = 4.0;
  util::MiBps ossServiceCap = 2400.0;
  double ostSigmaLog = 0.05;
};

/// Build the Catalyst-like cluster with `computeNodes` clients.
ClusterConfig makeCatalystLike(std::size_t computeNodes,
                               const CatalystCalibration& calibration = {});

}  // namespace beesim::topo
