#include "topology/loader.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"

namespace beesim::topo {

namespace {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

VariabilitySpec variabilityFromJson(const JsonValue& json) {
  VariabilitySpec spec;
  const auto kind = util::toLower(json.stringOr("kind", "none"));
  if (kind == "none") {
    spec.kind = VariabilitySpec::Kind::kNone;
  } else if (kind == "lognormal" || kind == "log-normal") {
    spec.kind = VariabilitySpec::Kind::kLogNormal;
    spec.sigma = json.numberOr("sigma", 0.05);
  } else if (kind == "gaussian") {
    spec.kind = VariabilitySpec::Kind::kGaussian;
    spec.sigma = json.numberOr("sigma", 0.05);
  } else if (kind == "slowphase" || kind == "slow-phase") {
    spec.kind = VariabilitySpec::Kind::kSlowPhase;
    spec.sigma = json.numberOr("sigma", 0.05);
    spec.pEnter = json.numberOr("pEnter", 0.05);
    spec.pLeave = json.numberOr("pLeave", 0.3);
    spec.slowFactor = json.numberOr("slowFactor", 0.6);
  } else {
    throw util::ConfigError("cluster file: unknown variability kind '" + kind + "'");
  }
  return spec;
}

JsonValue variabilityToJson(const VariabilitySpec& spec) {
  JsonObject out;
  switch (spec.kind) {
    case VariabilitySpec::Kind::kNone:
      out["kind"] = "none";
      break;
    case VariabilitySpec::Kind::kLogNormal:
      out["kind"] = "lognormal";
      out["sigma"] = spec.sigma;
      break;
    case VariabilitySpec::Kind::kGaussian:
      out["kind"] = "gaussian";
      out["sigma"] = spec.sigma;
      break;
    case VariabilitySpec::Kind::kSlowPhase:
      out["kind"] = "slowphase";
      out["sigma"] = spec.sigma;
      out["pEnter"] = spec.pEnter;
      out["pLeave"] = spec.pLeave;
      out["slowFactor"] = spec.slowFactor;
      break;
  }
  return JsonValue(std::move(out));
}

storage::HddRaidParams deviceFromJson(const JsonValue& json) {
  storage::HddRaidParams device;
  device.disks = static_cast<int>(json.numberOr("disks", device.disks));
  device.parityDisks = static_cast<int>(json.numberOr("parityDisks", device.parityDisks));
  device.perDiskStream = json.numberOr("perDiskStream", device.perDiskStream);
  device.writeEfficiency = json.numberOr("writeEfficiency", device.writeEfficiency);
  device.cacheFraction = json.numberOr("cacheFraction", device.cacheFraction);
  device.cacheQHalf = json.numberOr("cacheQHalf", device.cacheQHalf);
  device.streamQHalf = json.numberOr("streamQHalf", device.streamQHalf);
  device.streamExponent = json.numberOr("streamExponent", device.streamExponent);
  return device;
}

JsonValue deviceToJson(const storage::HddRaidParams& device) {
  JsonObject out;
  out["disks"] = device.disks;
  out["parityDisks"] = device.parityDisks;
  out["perDiskStream"] = device.perDiskStream;
  out["writeEfficiency"] = device.writeEfficiency;
  out["cacheFraction"] = device.cacheFraction;
  out["cacheQHalf"] = device.cacheQHalf;
  out["streamQHalf"] = device.streamQHalf;
  out["streamExponent"] = device.streamExponent;
  return JsonValue(std::move(out));
}

TargetCfg targetFromJson(const JsonValue& json, const std::string& fallbackName) {
  TargetCfg target;
  target.name = json.stringOr("name", fallbackName);
  target.device = deviceFromJson(json);
  if (json.has("variability")) {
    target.variability = variabilityFromJson(json.at("variability"));
  }
  return target;
}

}  // namespace

ClusterConfig clusterFromJson(const std::string& jsonText) {
  const auto doc = util::parseJson(jsonText);
  ClusterConfig cluster;
  cluster.name = doc.stringOr("name", "cluster");
  cluster.network.name = cluster.name + "-switch";

  if (doc.has("network")) {
    const auto& net = doc.at("network");
    cluster.network.backboneBandwidth = net.numberOr("backbone", 0.0);
    cluster.network.serverLinkNoiseSigmaLog =
        net.numberOr("serverLinkNoiseSigmaLog", cluster.network.serverLinkNoiseSigmaLog);
  }

  // -- Compute nodes: either {"count", ...} or an explicit array. ---------
  const auto& nodes = doc.at("nodes");
  if (nodes.isObject()) {
    const auto count = static_cast<std::size_t>(nodes.numberOr("count", 1));
    if (count == 0) throw util::ConfigError("cluster file: nodes.count must be >= 1");
    for (std::size_t n = 0; n < count; ++n) {
      ComputeNodeCfg node;
      node.name = cluster.name + "-node" + std::to_string(n);
      node.nicBandwidth = nodes.numberOr("nic", node.nicBandwidth);
      node.clientThroughputCap = nodes.numberOr("clientCap", node.clientThroughputCap);
      cluster.nodes.push_back(std::move(node));
    }
  } else {
    std::size_t index = 0;
    for (const auto& entry : nodes.asArray()) {
      ComputeNodeCfg node;
      node.name = entry.stringOr("name", cluster.name + "-node" + std::to_string(index));
      node.nicBandwidth = entry.numberOr("nic", node.nicBandwidth);
      node.clientThroughputCap = entry.numberOr("clientCap", node.clientThroughputCap);
      cluster.nodes.push_back(std::move(node));
      ++index;
    }
  }

  // -- Storage hosts. ------------------------------------------------------
  std::size_t hostIndex = 0;
  for (const auto& hostJson : doc.at("hosts").asArray()) {
    StorageHostCfg host;
    host.name = hostJson.stringOr("name", cluster.name + "-oss" + std::to_string(hostIndex));
    host.nicBandwidth = hostJson.numberOr("nic", host.nicBandwidth);
    host.serviceCap = hostJson.numberOr("serviceCap", host.serviceCap);

    const auto& targets = hostJson.at("targets");
    if (targets.isObject()) {
      // Compact form: N identical targets.
      const auto count = static_cast<std::size_t>(targets.numberOr("count", 1));
      if (count == 0) throw util::ConfigError("cluster file: targets.count must be >= 1");
      for (std::size_t t = 0; t < count; ++t) {
        host.targets.push_back(
            targetFromJson(targets, host.name + "-ost" + std::to_string(t)));
        host.targets.back().name = host.name + "-ost" + std::to_string(t);
      }
    } else {
      std::size_t t = 0;
      for (const auto& targetJson : targets.asArray()) {
        host.targets.push_back(
            targetFromJson(targetJson, host.name + "-ost" + std::to_string(t)));
        ++t;
      }
    }
    cluster.hosts.push_back(std::move(host));
    ++hostIndex;
  }

  cluster.validate();
  return cluster;
}

ClusterConfig loadCluster(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open cluster file: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return clusterFromJson(buffer.str());
  } catch (const util::ConfigError& e) {
    throw util::ConfigError(path.string() + ": " + e.what());
  }
}

std::string clusterToJson(const ClusterConfig& cluster) {
  JsonObject doc;
  doc["name"] = cluster.name;
  {
    JsonObject network;
    network["backbone"] = cluster.network.backboneBandwidth;
    network["serverLinkNoiseSigmaLog"] = cluster.network.serverLinkNoiseSigmaLog;
    doc["network"] = JsonValue(std::move(network));
  }
  {
    JsonArray nodes;
    for (const auto& node : cluster.nodes) {
      JsonObject entry;
      entry["name"] = node.name;
      entry["nic"] = node.nicBandwidth;
      entry["clientCap"] = node.clientThroughputCap;
      nodes.push_back(JsonValue(std::move(entry)));
    }
    doc["nodes"] = JsonValue(std::move(nodes));
  }
  {
    JsonArray hosts;
    for (const auto& host : cluster.hosts) {
      JsonObject entry;
      entry["name"] = host.name;
      entry["nic"] = host.nicBandwidth;
      entry["serviceCap"] = host.serviceCap;
      JsonArray targets;
      for (const auto& target : host.targets) {
        auto targetJson = deviceToJson(target.device).asObject();
        targetJson["name"] = target.name;
        targetJson["variability"] = variabilityToJson(target.variability);
        targets.push_back(JsonValue(std::move(targetJson)));
      }
      entry["targets"] = JsonValue(std::move(targets));
      hosts.push_back(JsonValue(std::move(entry)));
    }
    doc["hosts"] = JsonValue(std::move(hosts));
  }
  return JsonValue(std::move(doc)).dump(2) + "\n";
}

void saveCluster(const ClusterConfig& cluster, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot write cluster file: " + path.string());
  out << clusterToJson(cluster);
  if (!out) throw util::IoError("failed writing cluster file: " + path.string());
}

}  // namespace beesim::topo
