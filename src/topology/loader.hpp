// Cluster description files: load/save a topo::ClusterConfig as JSON.
//
// Goal (ii) of the paper is a methodology others can apply to *their*
// systems; the loader lets a site describe its cluster once and run every
// bench and the advisor against it (see examples/custom_cluster and the
// beesim CLI).
//
// Schema (all capacities in MiB/s, sizes accept "12", "512KiB" strings):
//
// {
//   "name": "mysite",
//   "network": { "backbone": 0, "serverLinkNoiseSigmaLog": 0.04 },
//   "nodes": { "count": 16, "nic": 11000, "clientCap": 1680 },
//   "hosts": [
//     { "name": "oss0", "nic": 11000, "serviceCap": 4500,
//       "targets": [ { "disks": 12, "parityDisks": 2, "perDiskStream": 200,
//                      "writeEfficiency": 0.93, "cacheFraction": 0.28,
//                      "cacheQHalf": 1, "streamQHalf": 33, "streamExponent": 4,
//                      "variability": { "kind": "lognormal", "sigma": 0.05 } },
//                    ... ] },
//     ...
//   ]
// }
//
// "nodes" may alternatively be a JSON array of per-node objects.  A host's
// "targets" may be given as {"count": N, ...sharedDeviceFields} to avoid
// repeating identical devices.
#pragma once

#include <filesystem>
#include <string>

#include "topology/cluster.hpp"

namespace beesim::topo {

/// Parse a cluster description document.  Throws util::ConfigError with a
/// descriptive message on schema violations; the result is validate()d.
ClusterConfig clusterFromJson(const std::string& jsonText);

/// Load from a file.  Throws util::IoError / util::ConfigError.
ClusterConfig loadCluster(const std::filesystem::path& path);

/// Serialize a cluster back to (pretty-printed) JSON.  Round-trips through
/// clusterFromJson.
std::string clusterToJson(const ClusterConfig& cluster);

/// Save to a file.
void saveCluster(const ClusterConfig& cluster, const std::filesystem::path& path);

}  // namespace beesim::topo
