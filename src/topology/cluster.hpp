// Hardware description of a cluster: compute nodes, network, storage hosts
// and their storage targets.
//
// A ClusterConfig is pure data -- it owns no simulator state.  The
// beegfs::Deployment (see beegfs/deployment.hpp) turns one into fluid-model
// resources.  Factories for the paper's systems live in plafrim.hpp
// (Scenario 1 / Scenario 2) and catalyst.hpp (the Chowdhury-et-al.-like
// system used for the baseline reproduction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/device.hpp"
#include "util/units.hpp"

namespace beesim::topo {

/// Compute node hardware + client-stack ceiling.
struct ComputeNodeCfg {
  std::string name;
  /// Raw NIC capacity, MiB/s.
  util::MiBps nicBandwidth = 1250.0;
  /// Ceiling of the whole client I/O stack on this node (TCP/RDMA stack, PFS
  /// client module), MiB/s.  Measured single-node IOR runs bound this: the
  /// paper sees ~880 MiB/s (Scenario 1) / ~1630 MiB/s (Scenario 2) from one
  /// node regardless of target count.
  util::MiBps clientThroughputCap = 900.0;
};

/// Specification of the variability applied to a target's device.
/// (Kept as plain data so ClusterConfig stays copyable; the Deployment
/// instantiates the matching storage::VariabilityModel per target.)
struct VariabilitySpec {
  enum class Kind { kNone, kLogNormal, kGaussian, kSlowPhase };
  Kind kind = Kind::kNone;
  /// LogNormal/SlowPhase: sigma in log space.  Gaussian: sigma.
  double sigma = 0.0;
  /// SlowPhase only.
  double pEnter = 0.0;
  double pLeave = 0.0;
  double slowFactor = 1.0;
};

/// One storage target (OST): a device plus its variability.
struct TargetCfg {
  std::string name;
  storage::HddRaidParams device;
  VariabilitySpec variability;
};

/// One storage host: a machine running an OSS (and possibly an MDS).
struct StorageHostCfg {
  std::string name;
  /// Server NIC capacity (effective, after protocol overhead), MiB/s.
  util::MiBps nicBandwidth = 1163.0;
  /// Aggregate service ceiling of the OSS process / host I/O backplane
  /// (worker pool, PCIe/HBA, kernel), MiB/s.  0 disables the cap.
  util::MiBps serviceCap = 0.0;
  std::vector<TargetCfg> targets;
};

/// Core switch model.  0 = non-blocking (both PlaFRIM switches are).
struct NetworkCfg {
  std::string name;
  util::MiBps backboneBandwidth = 0.0;
  /// Log-normal sigma of the per-epoch throughput fluctuation of the
  /// server links (transient congestion, TCP dynamics).  Short transfers
  /// sample a single epoch and are therefore noisier than long ones -- one
  /// of the reasons the paper needs a "large-enough" data size (Fig. 2).
  double serverLinkNoiseSigmaLog = 0.04;
};

struct ClusterConfig {
  std::string name;
  std::vector<ComputeNodeCfg> nodes;
  std::vector<StorageHostCfg> hosts;
  NetworkCfg network;

  /// Total number of storage targets across hosts.
  std::size_t targetCount() const;

  /// Flat index of host `h`, target `t` (row-major over hosts).
  /// Precondition: indices in range.
  std::size_t flatTargetIndex(std::size_t host, std::size_t target) const;

  /// Inverse of flatTargetIndex.
  std::pair<std::size_t, std::size_t> targetLocation(std::size_t flat) const;

  /// BeeGFS-style target numbering as in the paper: host h, target t ->
  /// (h+1)*100 + (t+1), e.g. 101..104 and 201..204 on PlaFRIM.
  int beegfsTargetNum(std::size_t flat) const;

  /// Validate invariants (non-empty, positive capacities); throws
  /// ConfigError with a message naming the offending entry.
  void validate() const;
};

/// Convenience builder for uniform clusters (tests, custom_cluster example).
struct UniformClusterSpec {
  std::string name = "uniform";
  std::size_t computeNodes = 8;
  util::MiBps nodeNic = 1250.0;
  util::MiBps nodeClientCap = 900.0;
  std::size_t storageHosts = 2;
  std::size_t targetsPerHost = 4;
  util::MiBps serverNic = 1163.0;
  util::MiBps serverServiceCap = 0.0;
  storage::HddRaidParams targetDevice;
  VariabilitySpec targetVariability;
};

ClusterConfig buildUniformCluster(const UniformClusterSpec& spec);

}  // namespace beesim::topo
