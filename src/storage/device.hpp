// Storage device service models.
//
// A device model maps an effective queue depth (number of outstanding
// requests, possibly fractional in the fluid abstraction) to a service rate
// in MiB/s.  The RAID-array model uses a two-component saturating curve:
//
//   v(q) = peak * [ w * q/(q + qc)  +  (1-w) * q^e/(q^e + qs^e) ]
//
//   * The first term is the *controller/write-back cache* path: it absorbs
//     shallow queues almost immediately (qc ~ 1), which is why a single
//     compute node already extracts ~400 MiB/s per OST (paper Fig. 4b,
//     1 node ~1630 MiB/s over 4 OSTs).
//   * The second term is the *spindle streaming* path: RAID-6 full-stripe
//     writes and the elevator need a deep, re-orderable queue before all
//     data disks stream concurrently, so it ramps steeply (Hill exponent e)
//     around qs.
//
// The slow second component is what makes the paper's coupled observations
// emerge: more OSTs need more compute nodes to pay off (Fig. 11: stripe 8
// beats stripe 4 only from ~32 nodes), and concurrent applications that
// share OSTs push the shared targets deeper into their queue ramp, almost
// exactly compensating the unused spindles (Fig. 13's "sharing is
// harmless").  OST queue depth scales with client inflight / stripe count.
#pragma once

#include <memory>
#include <string>

#include "util/units.hpp"

namespace beesim::storage {

/// Abstract deterministic service model (noise is layered separately, see
/// variability.hpp).
class DeviceModel {
 public:
  virtual ~DeviceModel() = default;

  /// Service rate at the given effective queue depth (>= 0).
  virtual util::MiBps serviceRate(double queueDepth) const = 0;

  /// Asymptotic streaming rate (queueDepth -> infinity).
  virtual util::MiBps peakRate() const = 0;

  /// Human-readable description for traces and docs.
  virtual std::string describe() const = 0;
};

/// Parameters of a RAID array of rotating disks exposed as one target.
struct HddRaidParams {
  /// Total number of disks in the array.
  int disks = 12;
  /// Disks worth of parity (RAID-6 -> 2).
  int parityDisks = 2;
  /// Sequential streaming rate of one disk, MiB/s.
  util::MiBps perDiskStream = 200.0;
  /// Multiplicative efficiency of the RAID/write path (parity computation,
  /// stripe alignment, local file system overhead), in (0, 1].
  double writeEfficiency = 0.93;
  /// Fraction of the peak served by the controller/cache path (fast ramp).
  double cacheFraction = 0.28;
  /// Queue depth at which the cache path reaches half of its share.
  double cacheQHalf = 1.0;
  /// Queue depth at which the spindle-streaming path reaches half of its
  /// share.
  double streamQHalf = 33.0;
  /// Hill exponent of the streaming ramp (steepness of the transition from
  /// seek-bound to streaming behaviour).
  double streamExponent = 4.0;
};

/// RAID array of HDDs with a saturating concurrency ramp.
class HddRaidModel final : public DeviceModel {
 public:
  explicit HddRaidModel(const HddRaidParams& params);

  util::MiBps serviceRate(double queueDepth) const override;
  util::MiBps peakRate() const override { return peak_; }
  std::string describe() const override;

  const HddRaidParams& params() const { return params_; }

 private:
  HddRaidParams params_;
  util::MiBps peak_;
};

/// Parameters of an SSD-backed target (used for metadata MDTs).
struct SsdParams {
  util::MiBps peak = 2000.0;
  /// SSDs reach peak at shallow queues.
  double qHalf = 0.5;
};

class SsdModel final : public DeviceModel {
 public:
  explicit SsdModel(const SsdParams& params);

  util::MiBps serviceRate(double queueDepth) const override;
  util::MiBps peakRate() const override { return params_.peak; }
  std::string describe() const override;

 private:
  SsdParams params_;
};

/// Fixed-rate device (no ramp) -- useful for tests and analytic baselines.
class ConstantDeviceModel final : public DeviceModel {
 public:
  explicit ConstantDeviceModel(util::MiBps rate);

  util::MiBps serviceRate(double queueDepth) const override;
  util::MiBps peakRate() const override { return rate_; }
  std::string describe() const override;

 private:
  util::MiBps rate_;
};

}  // namespace beesim::storage
