#include "storage/variability.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::storage {

namespace {

/// Per-epoch child stream of a device stream.  Epochs are non-negative in
/// practice (virtual time starts at 0), but tolerate negatives defensively.
util::Rng epochStream(const util::Rng& deviceStream, std::int64_t epoch) {
  return deviceStream.splitNamed(static_cast<std::uint64_t>(epoch) * 2 + 1);
}

}  // namespace

std::unique_ptr<VariabilityModel> NoVariability::clone() const {
  return std::make_unique<NoVariability>();
}

LogNormalVariability::LogNormalVariability(double sigmaLog) : sigmaLog_(sigmaLog) {
  BEESIM_ASSERT(sigmaLog >= 0.0, "sigmaLog must be >= 0");
}

double LogNormalVariability::sampleFactor(const util::Rng& deviceStream,
                                          std::int64_t epoch) const {
  auto rng = epochStream(deviceStream, epoch);
  return rng.logNormalMedian(1.0, sigmaLog_);
}

std::unique_ptr<VariabilityModel> LogNormalVariability::clone() const {
  return std::make_unique<LogNormalVariability>(sigmaLog_);
}

std::string LogNormalVariability::describe() const {
  return "log-normal(sigmaLog=" + util::fmt(sigmaLog_, 3) + ")";
}

GaussianVariability::GaussianVariability(double sigma, double floor, double ceil)
    : sigma_(sigma), floor_(floor), ceil_(ceil) {
  BEESIM_ASSERT(sigma >= 0.0, "sigma must be >= 0");
  BEESIM_ASSERT(floor > 0.0 && floor <= ceil, "need 0 < floor <= ceil");
}

double GaussianVariability::sampleFactor(const util::Rng& deviceStream,
                                         std::int64_t epoch) const {
  auto rng = epochStream(deviceStream, epoch);
  return std::clamp(rng.normal(1.0, sigma_), floor_, ceil_);
}

std::unique_ptr<VariabilityModel> GaussianVariability::clone() const {
  return std::make_unique<GaussianVariability>(sigma_, floor_, ceil_);
}

std::string GaussianVariability::describe() const {
  return "gaussian(sigma=" + util::fmt(sigma_, 3) + ")";
}

SlowPhaseVariability::SlowPhaseVariability(double pEnter, double pLeave, double slowFactor,
                                           double sigmaLog, std::int64_t windowEpochs)
    : pEnter_(pEnter),
      pLeave_(pLeave),
      slowFactor_(slowFactor),
      sigmaLog_(sigmaLog),
      windowEpochs_(windowEpochs) {
  BEESIM_ASSERT(pEnter >= 0.0 && pEnter <= 1.0, "pEnter must be a probability");
  BEESIM_ASSERT(pLeave >= 0.0 && pLeave <= 1.0, "pLeave must be a probability");
  BEESIM_ASSERT(pEnter + pLeave > 0.0, "pEnter + pLeave must be positive");
  BEESIM_ASSERT(slowFactor > 0.0 && slowFactor <= 1.0, "slowFactor must be in (0, 1]");
  BEESIM_ASSERT(sigmaLog >= 0.0, "sigmaLog must be >= 0");
  BEESIM_ASSERT(windowEpochs >= 1, "window must span at least one epoch");
}

double SlowPhaseVariability::stationaryDegradedProbability() const {
  return pEnter_ / (pEnter_ + pLeave_);
}

double SlowPhaseVariability::sampleFactor(const util::Rng& deviceStream,
                                          std::int64_t epoch) const {
  // One state draw per *window* (same for all epochs inside it), plus a
  // per-epoch jitter draw.
  const std::int64_t window =
      epoch >= 0 ? epoch / windowEpochs_ : (epoch - windowEpochs_ + 1) / windowEpochs_;
  auto windowRng = deviceStream.splitNamed(static_cast<std::uint64_t>(window) * 2);
  const bool degraded = windowRng.bernoulli(stationaryDegradedProbability());

  auto rng = epochStream(deviceStream, epoch);
  const double base = degraded ? slowFactor_ : 1.0;
  return base * rng.logNormalMedian(1.0, sigmaLog_);
}

std::unique_ptr<VariabilityModel> SlowPhaseVariability::clone() const {
  return std::make_unique<SlowPhaseVariability>(pEnter_, pLeave_, slowFactor_, sigmaLog_,
                                                windowEpochs_);
}

std::string SlowPhaseVariability::describe() const {
  return "slow-phase(pEnter=" + util::fmt(pEnter_, 3) + ", pLeave=" + util::fmt(pLeave_, 3) +
         ", slow=" + util::fmt(slowFactor_, 2) + ", sigmaLog=" + util::fmt(sigmaLog_, 3) +
         ", window=" + std::to_string(windowEpochs_) + ")";
}

NoisyDevice::NoisyDevice(std::shared_ptr<const DeviceModel> model,
                         std::unique_ptr<VariabilityModel> variability, util::Rng rng,
                         util::Seconds epochLength)
    : model_(std::move(model)),
      variability_(std::move(variability)),
      rng_(rng),
      epochLength_(epochLength) {
  BEESIM_ASSERT(model_ != nullptr, "NoisyDevice needs a device model");
  BEESIM_ASSERT(variability_ != nullptr, "NoisyDevice needs a variability model");
  BEESIM_ASSERT(epochLength_ > 0.0, "epoch length must be positive");
}

double NoisyDevice::factorAt(util::Seconds now) {
  const auto epoch = static_cast<std::int64_t>(std::floor(now / epochLength_));
  if (epoch != cachedEpoch_) {
    cachedEpoch_ = epoch;
    cachedFactor_ = variability_->sampleFactor(rng_, epoch);
    BEESIM_ASSERT(cachedFactor_ > 0.0, "variability factor must be positive");
  }
  return cachedFactor_;
}

util::MiBps NoisyDevice::currentRate(double queueDepth, util::Seconds now) {
  return model_->serviceRate(queueDepth) * factorAt(now);
}

}  // namespace beesim::storage
