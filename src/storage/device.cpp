#include "storage/device.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::storage {

namespace {

util::MiBps rampRate(util::MiBps peak, double qHalf, double queueDepth) {
  BEESIM_ASSERT(queueDepth >= 0.0, "queue depth must be >= 0");
  if (queueDepth <= 0.0) return 0.0;
  if (qHalf <= 0.0) return peak;
  return peak * queueDepth / (queueDepth + qHalf);
}

}  // namespace

HddRaidModel::HddRaidModel(const HddRaidParams& params) : params_(params) {
  BEESIM_ASSERT(params.disks > 0, "array needs at least one disk");
  BEESIM_ASSERT(params.parityDisks >= 0 && params.parityDisks < params.disks,
                "parity disks must leave at least one data disk");
  BEESIM_ASSERT(params.perDiskStream > 0.0, "per-disk rate must be positive");
  BEESIM_ASSERT(params.writeEfficiency > 0.0 && params.writeEfficiency <= 1.0,
                "write efficiency must be in (0, 1]");
  BEESIM_ASSERT(params.cacheFraction >= 0.0 && params.cacheFraction <= 1.0,
                "cache fraction must be in [0, 1]");
  BEESIM_ASSERT(params.cacheQHalf >= 0.0, "cache qHalf must be >= 0");
  BEESIM_ASSERT(params.streamQHalf >= 0.0, "stream qHalf must be >= 0");
  BEESIM_ASSERT(params.streamExponent >= 1.0, "stream exponent must be >= 1");
  const int dataDisks = params.disks - params.parityDisks;
  peak_ = dataDisks * params.perDiskStream * params.writeEfficiency;
}

util::MiBps HddRaidModel::serviceRate(double queueDepth) const {
  BEESIM_ASSERT(queueDepth >= 0.0, "queue depth must be >= 0");
  if (queueDepth <= 0.0) return 0.0;
  // Controller/cache path: ordinary saturating ramp, half share at cacheQHalf.
  const double cache =
      params_.cacheQHalf <= 0.0 ? 1.0 : queueDepth / (queueDepth + params_.cacheQHalf);
  // Spindle streaming path: steep Hill ramp, half share at streamQHalf.
  const double qe = std::pow(queueDepth, params_.streamExponent);
  const double sqe = std::pow(params_.streamQHalf, params_.streamExponent);
  const double stream = sqe <= 0.0 ? 1.0 : qe / (qe + sqe);
  return peak_ * (params_.cacheFraction * cache + (1.0 - params_.cacheFraction) * stream);
}

std::string HddRaidModel::describe() const {
  return "RAID HDD array: " + std::to_string(params_.disks) + " disks (" +
         std::to_string(params_.parityDisks) + " parity), peak " +
         util::formatBandwidth(peak_) + ", cache " + util::fmt(params_.cacheFraction, 2) +
         "@qc" + util::fmt(params_.cacheQHalf, 1) + ", stream qs " +
         util::fmt(params_.streamQHalf, 1);
}

SsdModel::SsdModel(const SsdParams& params) : params_(params) {
  BEESIM_ASSERT(params.peak > 0.0, "SSD peak must be positive");
}

util::MiBps SsdModel::serviceRate(double queueDepth) const {
  return rampRate(params_.peak, params_.qHalf, queueDepth);
}

std::string SsdModel::describe() const {
  return "SSD target: peak " + util::formatBandwidth(params_.peak);
}

ConstantDeviceModel::ConstantDeviceModel(util::MiBps rate) : rate_(rate) {
  BEESIM_ASSERT(rate >= 0.0, "rate must be >= 0");
}

util::MiBps ConstantDeviceModel::serviceRate(double queueDepth) const {
  return queueDepth > 0.0 ? rate_ : 0.0;
}

std::string ConstantDeviceModel::describe() const {
  return "constant-rate device: " + util::formatBandwidth(rate_);
}

}  // namespace beesim::storage
