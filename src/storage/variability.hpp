// Stochastic performance variability of storage devices.
//
// The paper attributes the large Scenario-2 variance (sd +460% when going
// from 1 to 8 OSTs) to "performance variation of the storage devices",
// citing Cao et al. (FAST'17).  We model that as a multiplicative factor
// applied to a device's deterministic service rate, one factor per *epoch*
// (a configurable virtual-time window), so a long transfer sees a slowly
// wandering rate and two repetitions of an experiment see different device
// moods.
//
// Factors are pure functions of (device stream, epoch): each model derives a
// per-epoch child stream via Rng::splitNamed, so the factor at epoch E does
// not depend on how often (or in which order) the solver queried the device.
// This keeps runs bit-reproducible under the paper's randomized-block
// protocol, where runs are laid out at arbitrary virtual times.
//
// Provided models:
//   * NoVariability           -- factor 1 (deterministic runs, unit tests)
//   * LogNormalVariability    -- median-1 log-normal factor (heavy-ish tail)
//   * GaussianVariability     -- clamped normal around 1
//   * SlowPhaseVariability    -- degraded *episodes* spanning whole windows
//                                of epochs: background scrubbing, RAID
//                                rebuild, thermal throttling produce exactly
//                                such stretches of reduced throughput
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "storage/device.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::storage {

/// Yields one multiplicative performance factor per epoch.
class VariabilityModel {
 public:
  virtual ~VariabilityModel() = default;

  /// Factor for epoch `epoch`.  Must be > 0 and a pure function of
  /// (deviceStream, epoch).
  virtual double sampleFactor(const util::Rng& deviceStream, std::int64_t epoch) const = 0;

  virtual std::unique_ptr<VariabilityModel> clone() const = 0;
  virtual std::string describe() const = 0;
};

class NoVariability final : public VariabilityModel {
 public:
  double sampleFactor(const util::Rng&, std::int64_t) const override { return 1.0; }
  std::unique_ptr<VariabilityModel> clone() const override;
  std::string describe() const override { return "none"; }
};

class LogNormalVariability final : public VariabilityModel {
 public:
  /// `sigmaLog`: standard deviation in log space (0.08 ~= +-8% typical).
  explicit LogNormalVariability(double sigmaLog);

  double sampleFactor(const util::Rng& deviceStream, std::int64_t epoch) const override;
  std::unique_ptr<VariabilityModel> clone() const override;
  std::string describe() const override;

 private:
  double sigmaLog_;
};

class GaussianVariability final : public VariabilityModel {
 public:
  /// Normal(1, sigma) clamped to [floor, ceil].
  explicit GaussianVariability(double sigma, double floor = 0.2, double ceil = 1.5);

  double sampleFactor(const util::Rng& deviceStream, std::int64_t epoch) const override;
  std::unique_ptr<VariabilityModel> clone() const override;
  std::string describe() const override;

 private:
  double sigma_;
  double floor_;
  double ceil_;
};

class SlowPhaseVariability final : public VariabilityModel {
 public:
  /// Episode model: time is divided into windows of `windowEpochs` epochs;
  /// each window is independently degraded with the stationary probability
  /// pEnter / (pEnter + pLeave) (the equilibrium of a two-state chain with
  /// those transition rates).  Degraded windows run at `slowFactor` (< 1);
  /// log-normal jitter `sigmaLog` applies in both states.
  SlowPhaseVariability(double pEnter, double pLeave, double slowFactor, double sigmaLog,
                       std::int64_t windowEpochs = 8);

  double sampleFactor(const util::Rng& deviceStream, std::int64_t epoch) const override;
  std::unique_ptr<VariabilityModel> clone() const override;
  std::string describe() const override;

  double stationaryDegradedProbability() const;

 private:
  double pEnter_;
  double pLeave_;
  double slowFactor_;
  double sigmaLog_;
  std::int64_t windowEpochs_;
};

/// Couples a deterministic DeviceModel with a VariabilityModel and an Rng
/// stream; caches the factor of the most recent epoch so one epoch sees one
/// factor no matter how many solver passes query the device.
class NoisyDevice {
 public:
  NoisyDevice(std::shared_ptr<const DeviceModel> model,
              std::unique_ptr<VariabilityModel> variability, util::Rng rng,
              util::Seconds epochLength);

  /// Effective service rate at `now` for the given queue depth.
  util::MiBps currentRate(double queueDepth, util::Seconds now);

  /// The noise factor in effect at `now`.
  double factorAt(util::Seconds now);

  const DeviceModel& model() const { return *model_; }

 private:
  std::shared_ptr<const DeviceModel> model_;
  std::unique_ptr<VariabilityModel> variability_;
  util::Rng rng_;
  util::Seconds epochLength_;
  std::int64_t cachedEpoch_ = std::numeric_limits<std::int64_t>::min();
  double cachedFactor_ = 1.0;
};

}  // namespace beesim::storage
