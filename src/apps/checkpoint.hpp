// Periodic checkpointing application model.
//
// The paper's authors study I/O scheduling for periodic applications (the
// DASH project; Gainaru/Pallez, ACM TOPC'19 is cited as [14]): HPC codes
// alternate compute phases with bursty checkpoint writes.  This module adds
// that application class on top of the simulated file system, so the
// concurrent-application questions of Section IV-D can be asked for the
// realistic bursty pattern, not just for IOR's continuous stream:
// do two checkpointing applications hurt each other, and does the answer
// depend on whether their bursts collide in time?
#pragma once

#include <functional>
#include <vector>

#include "beegfs/filesystem.hpp"
#include "ior/runner.hpp"

namespace beesim::apps {

struct CheckpointSpec {
  /// Placement (nodes + ppn), as for IOR.
  ior::IorJob job;
  /// Total bytes written per checkpoint (N-1 shared file, one per phase).
  util::Bytes checkpointBytes = 8ULL << 30;
  /// Compute time between checkpoints.
  util::Seconds computePhase = 30.0;
  /// Number of compute+checkpoint iterations.
  int iterations = 5;
  /// File name prefix (each checkpoint writes "<prefix>.<i>").
  std::string filePrefix = "/beegfs/ckpt";
  /// Pin every checkpoint to these targets (empty: the chooser decides per
  /// checkpoint file, as BeeGFS would).
  std::vector<std::size_t> pinnedTargets;
};

struct CheckpointResult {
  /// Wall time of each checkpoint write (virtual seconds).
  std::vector<util::Seconds> checkpointDurations;
  /// First compute phase start -> last checkpoint end.
  util::Seconds makespan = 0.0;
  /// Sum of checkpoint durations.
  util::Seconds totalIoTime = 0.0;
  /// totalIoTime / makespan.
  double ioFraction = 0.0;
  /// Mean write bandwidth across checkpoints.
  util::MiBps meanCheckpointBandwidth = 0.0;
};

/// Launch asynchronously at `startAt`; `done` fires after the last
/// checkpoint completes.  Multiple apps may run on one file system.
void launchCheckpointApp(beegfs::FileSystem& fs, const CheckpointSpec& spec,
                         util::Seconds startAt,
                         std::function<void(const CheckpointResult&)> done);

/// Convenience: run a single application to completion.
CheckpointResult runCheckpointApp(beegfs::FileSystem& fs, const CheckpointSpec& spec);

}  // namespace beesim::apps
