#include "apps/checkpoint.hpp"

#include <memory>

#include "util/error.hpp"

namespace beesim::apps {

namespace {

struct AppState {
  beegfs::FileSystem* fs = nullptr;
  CheckpointSpec spec;
  std::function<void(const CheckpointResult&)> done;
  CheckpointResult result;
  util::Seconds appStart = 0.0;
  int iteration = 0;
};

void startIteration(const std::shared_ptr<AppState>& state);

void startCheckpoint(const std::shared_ptr<AppState>& state) {
  auto& fs = *state->fs;
  auto& deployment = fs.deployment();
  const auto& spec = state->spec;
  const auto checkpointStart = deployment.fluid().now();

  // One fresh file per checkpoint, as checkpoint libraries do; each create
  // re-consults the chooser (so targets can differ between iterations).
  const auto name = spec.filePrefix + "." + std::to_string(state->iteration);
  const auto chunk = fs.settingsFor(name).chunkSize;
  const auto handle = spec.pinnedTargets.empty()
                          ? fs.create(name)
                          : fs.createPinned(name, spec.pinnedTargets, chunk);

  // All ranks write their slice of the shared checkpoint concurrently.
  const int ranks = spec.job.ranks();
  const util::Bytes perRank = spec.checkpointBytes / static_cast<util::Bytes>(ranks);
  BEESIM_ASSERT(perRank > 0, "checkpoint too small for the rank count");
  const auto stripeCount = fs.info(handle).pattern.stripeCount();

  auto remaining = std::make_shared<int>(ranks);
  for (int r = 0; r < ranks; ++r) {
    const auto node = spec.job.nodeOfRank(r);
    const double queueWeight =
        deployment.nodeEffectiveInflight(node, spec.job.ppn) /
        (static_cast<double>(spec.job.ppn) * static_cast<double>(stripeCount));
    fs.writeAsync(node, handle, static_cast<util::Bytes>(r) * perRank, perRank, queueWeight,
                  [state, checkpointStart, remaining](util::Seconds end) {
                    if (--*remaining > 0) return;
                    // Last rank of this checkpoint.
                    state->result.checkpointDurations.push_back(end - checkpointStart);
                    ++state->iteration;
                    startIteration(state);
                  });
  }
}

void startIteration(const std::shared_ptr<AppState>& state) {
  auto& fluid = state->fs->deployment().fluid();
  if (state->iteration >= state->spec.iterations) {
    auto& result = state->result;
    result.makespan = fluid.now() - state->appStart;
    for (const auto d : result.checkpointDurations) result.totalIoTime += d;
    result.ioFraction = result.makespan > 0.0 ? result.totalIoTime / result.makespan : 0.0;
    double bwSum = 0.0;
    for (const auto d : result.checkpointDurations) {
      bwSum += util::bandwidth(state->spec.checkpointBytes, d);
    }
    result.meanCheckpointBandwidth =
        bwSum / static_cast<double>(result.checkpointDurations.size());
    if (state->done) state->done(result);
    return;
  }
  // Compute phase, then the burst.
  fluid.engine().scheduleAfter(state->spec.computePhase,
                               [state] { startCheckpoint(state); });
}

}  // namespace

void launchCheckpointApp(beegfs::FileSystem& fs, const CheckpointSpec& spec,
                         util::Seconds startAt,
                         std::function<void(const CheckpointResult&)> done) {
  BEESIM_ASSERT(spec.iterations >= 1, "checkpoint app needs >= 1 iteration");
  BEESIM_ASSERT(spec.checkpointBytes > 0, "checkpoint size must be positive");
  BEESIM_ASSERT(spec.computePhase >= 0.0, "compute phase must be >= 0");
  spec.job.validate(fs.deployment().cluster().nodes.size());

  auto state = std::make_shared<AppState>();
  state->fs = &fs;
  state->spec = spec;
  state->done = std::move(done);

  fs.deployment().fluid().engine().schedule(startAt, [state] {
    auto& deployment = state->fs->deployment();
    state->appStart = deployment.fluid().now();
    for (const auto node : state->spec.job.nodeIds) {
      deployment.setNodeProcesses(node, state->spec.job.ppn);
      deployment.markNodeJobStart(node, state->appStart);
    }
    startIteration(state);
  });
}

CheckpointResult runCheckpointApp(beegfs::FileSystem& fs, const CheckpointSpec& spec) {
  CheckpointResult result;
  bool finished = false;
  launchCheckpointApp(fs, spec, fs.deployment().fluid().now(),
                      [&](const CheckpointResult& r) {
                        result = r;
                        finished = true;
                      });
  fs.deployment().fluid().run();
  BEESIM_ASSERT(finished, "checkpoint application did not complete");
  return result;
}

}  // namespace beesim::apps
