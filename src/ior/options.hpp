// IOR-style benchmark options.
//
// We model the subset of IOR (v3.4) the paper exercises plus the N-N mode it
// names as future work:
//   -b blockSize   contiguous bytes per rank (per segment)
//   -t transferSize
//   -s segments
//   -F             file-per-process (N-N) instead of shared file (N-1)
//   -w / -r        write / read phase
// The paper's configuration: POSIX, N-1 shared file, contiguous, 1 MiB
// transfers, 32 GiB total, no "-i" repetitions (the harness repeats whole
// executions instead, Section III-B/C).
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace beesim::ior {

enum class AccessPattern {
  kSharedFile,      // N-1 (paper's choice, limits metadata influence)
  kFilePerProcess,  // N-N (-F; paper future work)
};

enum class Api {
  kPosix,  // paper's choice
  kMpiio,
};

enum class Operation { kWrite, kRead };

struct IorOptions {
  util::Bytes blockSize = util::kGiB;       // -b
  util::Bytes transferSize = util::kMiB;    // -t
  int segments = 1;                         // -s
  AccessPattern pattern = AccessPattern::kSharedFile;
  Api api = Api::kPosix;
  Operation operation = Operation::kWrite;
  std::string testFile = "/beegfs/ior.dat";

  /// Total bytes moved by `ranks` processes.
  util::Bytes totalBytes(int ranks) const;

  /// Offset of rank `rank`'s block in segment `segment` (N-1 layout:
  /// segments are super-blocks of ranks*blockSize).
  util::Bytes rankSegmentOffset(int rank, int ranks, int segment) const;

  /// Validate; throws ConfigError on nonsense (zero sizes, transfer not
  /// dividing block, ...).
  void validate() const;

  /// Parse IOR-like flags, e.g. {"-b","4g","-t","1m","-s","2","-F","-w"}.
  /// Unknown flags throw ConfigError.  Starts from defaults.
  static IorOptions parse(const std::vector<std::string>& args);

  /// Render as an IOR-like command-line string (for traces and tables).
  std::string describe() const;
};

/// Per-rank block size needed so that `ranks` ranks move `total` bytes with
/// one segment (the paper keeps the total at 32 GiB and divides it among
/// processes).  Throws ConfigError if not divisible.
util::Bytes blockSizeForTotal(util::Bytes total, int ranks);

}  // namespace beesim::ior
