#include "ior/options.hpp"

#include "util/error.hpp"

namespace beesim::ior {

util::Bytes IorOptions::totalBytes(int ranks) const {
  BEESIM_ASSERT(ranks >= 1, "need at least one rank");
  return blockSize * static_cast<util::Bytes>(segments) * static_cast<util::Bytes>(ranks);
}

util::Bytes IorOptions::rankSegmentOffset(int rank, int ranks, int segment) const {
  BEESIM_ASSERT(rank >= 0 && rank < ranks, "rank out of range");
  BEESIM_ASSERT(segment >= 0 && segment < segments, "segment out of range");
  if (pattern == AccessPattern::kFilePerProcess) {
    // Each rank owns its file: segments are laid out back to back.
    return static_cast<util::Bytes>(segment) * blockSize;
  }
  return (static_cast<util::Bytes>(segment) * ranks + static_cast<util::Bytes>(rank)) *
         blockSize;
}

void IorOptions::validate() const {
  if (blockSize == 0) throw util::ConfigError("IOR: block size must be > 0");
  if (transferSize == 0) throw util::ConfigError("IOR: transfer size must be > 0");
  if (segments < 1) throw util::ConfigError("IOR: segments must be >= 1");
  if (blockSize % transferSize != 0) {
    throw util::ConfigError("IOR: block size must be a multiple of the transfer size");
  }
  if (testFile.empty() || testFile.front() != '/') {
    throw util::ConfigError("IOR: test file path must be absolute");
  }
}

IorOptions IorOptions::parse(const std::vector<std::string>& args) {
  IorOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw util::ConfigError("IOR: flag " + flag + " needs a value");
      }
      return args[++i];
    };
    if (flag == "-b") {
      opts.blockSize = util::parseBytes(value());
    } else if (flag == "-t") {
      opts.transferSize = util::parseBytes(value());
    } else if (flag == "-s") {
      opts.segments = std::stoi(value());
    } else if (flag == "-o") {
      opts.testFile = value();
    } else if (flag == "-F") {
      opts.pattern = AccessPattern::kFilePerProcess;
    } else if (flag == "-w") {
      opts.operation = Operation::kWrite;
    } else if (flag == "-r") {
      opts.operation = Operation::kRead;
    } else if (flag == "-a") {
      const std::string api = value();
      if (api == "POSIX" || api == "posix") {
        opts.api = Api::kPosix;
      } else if (api == "MPIIO" || api == "mpiio") {
        opts.api = Api::kMpiio;
      } else {
        throw util::ConfigError("IOR: unknown api '" + api + "'");
      }
    } else {
      throw util::ConfigError("IOR: unknown flag '" + flag + "'");
    }
  }
  opts.validate();
  return opts;
}

std::string IorOptions::describe() const {
  std::string out = "ior -a ";
  out += api == Api::kPosix ? "POSIX" : "MPIIO";
  out += operation == Operation::kWrite ? " -w" : " -r";
  out += " -b " + util::formatBytes(blockSize);
  out += " -t " + util::formatBytes(transferSize);
  out += " -s " + std::to_string(segments);
  if (pattern == AccessPattern::kFilePerProcess) out += " -F";
  out += " -o " + testFile;
  return out;
}

util::Bytes blockSizeForTotal(util::Bytes total, int ranks) {
  BEESIM_ASSERT(ranks >= 1, "need at least one rank");
  if (total % static_cast<util::Bytes>(ranks) != 0) {
    throw util::ConfigError("total data size is not divisible by the rank count");
  }
  return total / static_cast<util::Bytes>(ranks);
}

}  // namespace beesim::ior
