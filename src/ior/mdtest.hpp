// mdtest-style metadata benchmark over the simulated file system.
//
// mdtest is the IO500's metadata workhorse: every rank works on its own set
// of files (N-N), and the benchmark runs phased create -> stat -> unlink
// sweeps with barriers between phases, reporting each phase's throughput in
// ops/s.  This driver reproduces that shape on the queued MDS/MDT model
// (DESIGN.md §2.10): each rank keeps a bounded number of metadata ops in
// flight, ops contend on the sharded MDTs as fluid flows, and the result
// carries per-phase and per-MDT accounting.  Pure metadata: no data bytes
// move and the placement chooser is never consulted, so an mdtest phase
// appended to an IOR run leaves the data-path rng streams untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "beegfs/filesystem.hpp"
#include "ior/runner.hpp"

namespace beesim::ior {

struct MdtestOptions {
  /// Files each rank creates/stats/unlinks (mdtest -n).
  std::size_t filesPerRank = 64;
  /// Outstanding metadata ops a rank pipelines (client-side write-behind for
  /// metadata; mirrors ClientParams::inflightPerProcess).
  int inflightPerRank = 8;
  /// Phase switches (mdtest -C/-T/-r).  Stat and unlink run over the files
  /// the create phase made, in the same order.
  bool createPhase = true;
  bool statPhase = true;
  bool unlinkPhase = true;
  /// Every rank works in its own subdirectory (mdtest -u).  With hash
  /// sharding this spreads ranks across MDTs; without it all ops pile onto
  /// the single MDT owning the shared directory.
  bool uniqueDirPerRank = true;
  /// Working directory of the run.
  std::string dir = "/beegfs/mdtest";

  /// Total ops per enabled phase = ranks * filesPerRank.
  std::uint64_t phaseOps(int ranks) const;

  void validate() const;
};

/// One phase's timing window and throughput.
struct MdtestPhase {
  util::Seconds start = 0.0;
  util::Seconds end = 0.0;
  std::uint64_t ops = 0;
  /// ops / (end - start); 0 for disabled phases.
  double opsPerSec = 0.0;
};

struct MdtestResult {
  util::Seconds start = 0.0;
  util::Seconds end = 0.0;
  MdtestPhase create;
  MdtestPhase stat;
  MdtestPhase unlink;
  std::uint64_t totalOps = 0;
  /// totalOps / (end - start).
  double opsPerSec = 0.0;
  /// Metadata ops this run put on each MDT (delta of the service counters).
  std::vector<std::uint64_t> mdtOps;
  /// max/mean over mdtOps: 1 = perfectly sharded, mdtCount = one hot MDT.
  double mdtImbalance = 1.0;
};

/// Launch an mdtest run at virtual time `startAt`; `done` fires when the
/// last enabled phase drains.  Requires the queued metadata model
/// (MetaParams::queued) -- the scalar model has no contention to measure.
void launchMdtest(beegfs::FileSystem& fs, const IorJob& job, const MdtestOptions& options,
                  util::Seconds startAt, std::function<void(const MdtestResult&)> done);

/// Convenience: launch at t=now, run the simulation to completion.
MdtestResult runMdtest(beegfs::FileSystem& fs, const IorJob& job,
                       const MdtestOptions& options);

/// Fold per-application results into one experiment-wide view (concurrent
/// harness): summed ops, union time windows, elementwise mdtOps, recomputed
/// throughputs and imbalance.
MdtestResult aggregateMdtest(const std::vector<MdtestResult>& apps);

}  // namespace beesim::ior
