#include "ior/mdtest.hpp"

#include <algorithm>
#include <memory>

#include "beegfs/deployment.hpp"
#include "beegfs/meta.hpp"
#include "util/error.hpp"

namespace beesim::ior {

std::uint64_t MdtestOptions::phaseOps(int ranks) const {
  return static_cast<std::uint64_t>(ranks) * static_cast<std::uint64_t>(filesPerRank);
}

void MdtestOptions::validate() const {
  if (filesPerRank < 1) throw util::ConfigError("mdtest needs files-per-rank >= 1");
  if (inflightPerRank < 1) throw util::ConfigError("mdtest needs inflight-per-rank >= 1");
  if (!createPhase && !statPhase && !unlinkPhase) {
    throw util::ConfigError("mdtest needs at least one enabled phase");
  }
  if (dir.empty()) throw util::ConfigError("mdtest needs a working directory");
}

namespace {

/// max/mean over per-MDT op counts (1 = perfectly sharded).
double mdtImbalanceOf(const std::vector<std::uint64_t>& ops) {
  if (ops.empty()) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const auto n : ops) {
    total += n;
    peak = std::max(peak, n);
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(ops.size());
  return static_cast<double>(peak) / mean;
}

/// Shared mutable state of one in-flight mdtest run.
struct MdState {
  beegfs::FileSystem* fs = nullptr;
  IorJob job;
  MdtestOptions options;
  MdtestResult result;
  std::function<void(const MdtestResult&)> done;

  /// Enabled phases, in mdtest order (create -> stat -> unlink).
  std::vector<beegfs::MetaOpKind> phases;
  std::size_t phaseIndex = 0;
  /// Per-rank cursors of the current phase.
  std::vector<std::size_t> nextFile;
  std::vector<std::size_t> completedFiles;
  int ranksRemaining = 0;
};

std::string filePath(const MdState& state, int rank, std::size_t index) {
  // Unique per-rank directories (mdtest -u) give hash sharding something to
  // spread; a shared directory funnels every op onto one MDT.
  if (state.options.uniqueDirPerRank) {
    return state.options.dir + "/rank" + std::to_string(rank) + "/f" +
           std::to_string(index);
  }
  return state.options.dir + "/f" + std::to_string(rank) + "." + std::to_string(index);
}

MdtestPhase& phaseSlot(MdState& state, beegfs::MetaOpKind kind) {
  switch (kind) {
    case beegfs::MetaOpKind::kCreate:
      return state.result.create;
    case beegfs::MetaOpKind::kStat:
      return state.result.stat;
    case beegfs::MetaOpKind::kUnlink:
      return state.result.unlink;
    case beegfs::MetaOpKind::kOpen:
      break;
  }
  BEESIM_ASSERT(false, "mdtest has no open phase");
  return state.result.create;  // unreachable
}

void startPhase(const std::shared_ptr<MdState>& state);

void issueOp(const std::shared_ptr<MdState>& state, int rank) {
  auto& meta = state->fs->deployment().meta();
  const auto kind = state->phases[state->phaseIndex];
  const auto index = state->nextFile[static_cast<std::size_t>(rank)]++;
  const auto shard = meta.opAsync(kind, filePath(*state, rank, index),
                                  [state, rank](util::Seconds at) {
    const auto r = static_cast<std::size_t>(rank);
    ++state->completedFiles[r];
    if (state->nextFile[r] < state->options.filesPerRank) {
      issueOp(state, rank);
      return;
    }
    if (state->completedFiles[r] < state->options.filesPerRank) return;
    // Rank finished the phase; the phase barrier falls with the last rank.
    if (--state->ranksRemaining > 0) return;
    auto& phase = phaseSlot(*state, state->phases[state->phaseIndex]);
    phase.end = at;
    phase.opsPerSec = phase.end > phase.start
                          ? static_cast<double>(phase.ops) / (phase.end - phase.start)
                          : 0.0;
    ++state->phaseIndex;
    startPhase(state);
  });
  ++state->result.mdtOps[shard];
}

void startPhase(const std::shared_ptr<MdState>& state) {
  auto& fluid = state->fs->deployment().fluid();
  if (state->phaseIndex >= state->phases.size()) {
    // All phases drained: close the run.
    auto& result = state->result;
    result.end = fluid.now();
    result.totalOps = result.create.ops + result.stat.ops + result.unlink.ops;
    result.opsPerSec = result.end > result.start
                           ? static_cast<double>(result.totalOps) / (result.end - result.start)
                           : 0.0;
    result.mdtImbalance = mdtImbalanceOf(result.mdtOps);
    if (state->done) state->done(result);
    return;
  }
  const auto kind = state->phases[state->phaseIndex];
  auto& phase = phaseSlot(*state, kind);
  phase.start = fluid.now();
  phase.ops = state->options.phaseOps(state->job.ranks());
  const auto ranks = static_cast<std::size_t>(state->job.ranks());
  state->nextFile.assign(ranks, 0);
  state->completedFiles.assign(ranks, 0);
  state->ranksRemaining = state->job.ranks();
  const auto pipeline = std::min<std::size_t>(
      static_cast<std::size_t>(state->options.inflightPerRank), state->options.filesPerRank);
  for (int r = 0; r < state->job.ranks(); ++r) {
    for (std::size_t k = 0; k < pipeline; ++k) issueOp(state, r);
  }
}

}  // namespace

void launchMdtest(beegfs::FileSystem& fs, const IorJob& job, const MdtestOptions& options,
                  util::Seconds startAt, std::function<void(const MdtestResult&)> done) {
  options.validate();
  auto& deployment = fs.deployment();
  job.validate(deployment.cluster().nodes.size());
  if (!deployment.meta().queuedModel()) {
    throw util::ConfigError(
        "mdtest requires the queued metadata model (MetaParams::queued; "
        "--mdts/--meta-rate on the CLI)");
  }

  auto state = std::make_shared<MdState>();
  state->fs = &fs;
  state->job = job;
  state->options = options;
  state->done = std::move(done);
  state->result.mdtOps.assign(deployment.meta().mdtCount(), 0);
  if (options.createPhase) state->phases.push_back(beegfs::MetaOpKind::kCreate);
  if (options.statPhase) state->phases.push_back(beegfs::MetaOpKind::kStat);
  if (options.unlinkPhase) state->phases.push_back(beegfs::MetaOpKind::kUnlink);

  deployment.fluid().engine().schedule(startAt, [state] {
    state->result.start = state->fs->deployment().fluid().now();
    startPhase(state);
  });
}

MdtestResult runMdtest(beegfs::FileSystem& fs, const IorJob& job,
                       const MdtestOptions& options) {
  MdtestResult result;
  bool finished = false;
  launchMdtest(fs, job, options, fs.deployment().fluid().now(),
               [&](const MdtestResult& r) {
                 result = r;
                 finished = true;
               });
  fs.deployment().fluid().run();
  BEESIM_ASSERT(finished, "mdtest run did not complete");
  return result;
}

MdtestResult aggregateMdtest(const std::vector<MdtestResult>& apps) {
  BEESIM_ASSERT(!apps.empty(), "aggregate mdtest of zero applications");
  MdtestResult agg;
  agg.start = apps.front().start;
  agg.end = apps.front().end;
  const auto fold = [](MdtestPhase& into, const MdtestPhase& from) {
    if (from.ops == 0) return;
    if (into.ops == 0) {
      into.start = from.start;
      into.end = from.end;
    } else {
      into.start = std::min(into.start, from.start);
      into.end = std::max(into.end, from.end);
    }
    into.ops += from.ops;
  };
  for (const auto& app : apps) {
    agg.start = std::min(agg.start, app.start);
    agg.end = std::max(agg.end, app.end);
    fold(agg.create, app.create);
    fold(agg.stat, app.stat);
    fold(agg.unlink, app.unlink);
    agg.totalOps += app.totalOps;
    if (app.mdtOps.size() > agg.mdtOps.size()) agg.mdtOps.resize(app.mdtOps.size(), 0);
    for (std::size_t k = 0; k < app.mdtOps.size(); ++k) agg.mdtOps[k] += app.mdtOps[k];
  }
  const auto rate = [](const MdtestPhase& p) {
    return p.end > p.start ? static_cast<double>(p.ops) / (p.end - p.start) : 0.0;
  };
  agg.create.opsPerSec = rate(agg.create);
  agg.stat.opsPerSec = rate(agg.stat);
  agg.unlink.opsPerSec = rate(agg.unlink);
  agg.opsPerSec =
      agg.end > agg.start ? static_cast<double>(agg.totalOps) / (agg.end - agg.start) : 0.0;
  agg.mdtImbalance = mdtImbalanceOf(agg.mdtOps);
  return agg;
}

}  // namespace beesim::ior
