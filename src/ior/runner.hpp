// IOR execution engine over the simulated file system.
//
// An IorJob places MPI-style ranks on compute nodes (block distribution, as
// mpirun does by default); the runner performs the benchmark phases --
// create, parallel open, per-rank segment writes -- as virtual-time events
// and reports the same aggregate the real IOR prints: moved bytes divided by
// the wall time from job start to the last rank's completion.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "beegfs/filesystem.hpp"
#include "ior/options.hpp"

namespace beesim::ior {

/// Placement of an IOR run on the cluster.
struct IorJob {
  /// Cluster node indices this job may use (distinct).
  std::vector<std::size_t> nodeIds;
  /// Processes per node; ranks() = nodeIds.size() * ppn.
  int ppn = 8;

  int ranks() const { return static_cast<int>(nodeIds.size()) * ppn; }

  /// Node hosting `rank` (block distribution: ranks 0..ppn-1 on the first
  /// node, etc.).
  std::size_t nodeOfRank(int rank) const;

  /// Convenience: the first `nodes` cluster nodes.
  static IorJob onFirstNodes(std::size_t nodes, int ppn);

  void validate(std::size_t clusterNodes) const;
};

/// Per-resource utilization of one run, measured by a FlowTracer attached
/// for the run's lifetime (harness::ObservabilityOptions::utilization).
/// Server order follows the deployment's server hosts.
struct RunUtilization {
  /// MiB carried by each server's NIC link.
  std::vector<double> serverMiB;
  /// Fraction of the run's wall time each server link had traffic.
  std::vector<double> serverBusyFrac;
  /// max/mean over serverMiB: 1 = balanced, H = all through one of H links.
  double linkImbalance = 0.0;
  /// False when utilization measurement was off (the vectors are empty).
  bool active = false;
};

struct IorResult {
  /// Job start (virtual time when the run was launched).
  util::Seconds start = 0.0;
  /// Last rank completion.
  util::Seconds end = 0.0;
  util::Bytes totalBytes = 0;
  /// Aggregate bandwidth = totalBytes / (end - start), as IOR reports.
  util::MiBps bandwidth = 0.0;
  /// Time spent before the first byte (create + open metadata phase).
  util::Seconds metaTime = 0.0;
  /// Flat target indices of the (first) file's stripe pattern.  For N-N this
  /// is the union over all per-rank files.
  std::vector<std::size_t> targetsUsed;
  /// Per-rank completion times (size == ranks).
  std::vector<util::Seconds> rankEnd;
  /// Client failure accounting attributable to this run (delta of the file
  /// system's counters between launch and completion).  All-zero for healthy
  /// runs or when no fault policy is armed.
  beegfs::ClientFaultStats faults;
  /// Mirroring/resync accounting attributable to this run (delta between
  /// launch and completion).  Background resync that outlives the job keeps
  /// counting in the file system's totals; the harness re-snapshots after
  /// the simulation drains (see harness::runOnce).
  beegfs::MirrorStats mirror;
  /// Hedged-write accounting attributable to this run (delta between launch
  /// and completion; all-zero unless HedgePolicy::enabled).
  beegfs::HedgeStats hedge;
  /// True when the run was aborted by the fault policy (strict mode, or
  /// degraded mode with no surviving target).  `bandwidth` is reported as 0
  /// for failed runs -- the planned bytes never fully landed.
  bool failed = false;
  /// Measured per-server traffic split (filled by harness::runOnce when
  /// utilization observability is enabled; inactive otherwise).
  RunUtilization util;
};

/// Launch an IOR run at virtual time `startAt`; `done` fires when the last
/// rank finishes.  `pinnedTargets`, when set, bypasses the chooser (N-1
/// only).  Multiple launches may coexist in one simulation (concurrent
/// applications, Section IV-D).
void launchIor(beegfs::FileSystem& fs, const IorJob& job, const IorOptions& options,
               util::Seconds startAt, std::function<void(const IorResult&)> done,
               std::optional<std::vector<std::size_t>> pinnedTargets = std::nullopt);

/// Convenience for single-application experiments: launch at t=now, run the
/// fluid simulation to completion, return the result.
IorResult runIor(beegfs::FileSystem& fs, const IorJob& job, const IorOptions& options,
                 std::optional<std::vector<std::size_t>> pinnedTargets = std::nullopt);

}  // namespace beesim::ior
