#include "ior/runner.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "util/error.hpp"

namespace beesim::ior {

std::size_t IorJob::nodeOfRank(int rank) const {
  BEESIM_ASSERT(rank >= 0 && rank < ranks(), "rank out of range");
  return nodeIds[static_cast<std::size_t>(rank) / static_cast<std::size_t>(ppn)];
}

IorJob IorJob::onFirstNodes(std::size_t nodes, int ppn) {
  IorJob job;
  job.nodeIds.resize(nodes);
  for (std::size_t n = 0; n < nodes; ++n) job.nodeIds[n] = n;
  job.ppn = ppn;
  return job;
}

void IorJob::validate(std::size_t clusterNodes) const {
  if (nodeIds.empty()) throw util::ConfigError("IOR job needs at least one node");
  if (ppn < 1) throw util::ConfigError("IOR job needs ppn >= 1");
  std::set<std::size_t> distinct(nodeIds.begin(), nodeIds.end());
  if (distinct.size() != nodeIds.size()) {
    throw util::ConfigError("IOR job node list contains duplicates");
  }
  for (const auto n : nodeIds) {
    if (n >= clusterNodes) throw util::ConfigError("IOR job references an unknown node");
  }
}

namespace {

/// Shared mutable state of one in-flight IOR run.
struct RunState {
  IorResult result;
  int ranksRemaining = 0;
  std::function<void(const IorResult&)> done;
  beegfs::FileSystem* fs = nullptr;
  IorJob job;
  IorOptions options;
  /// File handle per rank (same handle for all ranks in N-1).
  std::vector<beegfs::FileHandle> rankFile;
  /// Queue weight per flow, per rank.
  std::vector<double> rankQueueWeight;
  /// Fault-counter snapshot at launch; the result reports the delta.
  beegfs::ClientFaultStats faultBaseline;
  /// Mirror-counter snapshot at launch.
  beegfs::MirrorStats mirrorBaseline;
  /// Hedge-counter snapshot at launch.
  beegfs::HedgeStats hedgeBaseline;
};

/// Counter delta `now` - `base` (aborted is the file system's current state:
/// an abort anywhere kills every job sharing the mount).
beegfs::ClientFaultStats faultDelta(const beegfs::ClientFaultStats& now,
                                    const beegfs::ClientFaultStats& base) {
  beegfs::ClientFaultStats d;
  d.timeouts = now.timeouts - base.timeouts;
  d.retries = now.retries - base.retries;
  d.failovers = now.failovers - base.failovers;
  d.bytesRewritten = now.bytesRewritten - base.bytesRewritten;
  d.degradedTime = now.degradedTime - base.degradedTime;
  d.aborted = now.aborted;
  return d;
}

beegfs::HedgeStats hedgeDelta(const beegfs::HedgeStats& now,
                              const beegfs::HedgeStats& base) {
  beegfs::HedgeStats d;
  d.hedgesIssued = now.hedgesIssued - base.hedgesIssued;
  d.hedgeWins = now.hedgeWins - base.hedgeWins;
  d.primaryWins = now.primaryWins - base.primaryWins;
  d.mirrorSwitchovers = now.mirrorSwitchovers - base.mirrorSwitchovers;
  d.bytesHedged = now.bytesHedged - base.bytesHedged;
  return d;
}

beegfs::MirrorStats mirrorDelta(const beegfs::MirrorStats& now,
                                const beegfs::MirrorStats& base) {
  beegfs::MirrorStats d;
  d.replicaFlows = now.replicaFlows - base.replicaFlows;
  d.bytesReplicated = now.bytesReplicated - base.bytesReplicated;
  d.failovers = now.failovers - base.failovers;
  d.bytesResent = now.bytesResent - base.bytesResent;
  d.bytesLost = now.bytesLost - base.bytesLost;
  d.resyncJobs = now.resyncJobs - base.resyncJobs;
  d.bytesResynced = now.bytesResynced - base.bytesResynced;
  d.resyncSeconds = now.resyncSeconds - base.resyncSeconds;
  return d;
}

/// Issue segment `segment` of `rank`, chaining to the next segment on
/// completion (IOR writes a rank's segments sequentially).
void issueSegment(const std::shared_ptr<RunState>& state, int rank, int segment) {
  const auto& options = state->options;
  // A fault-policy abort stops ranks at their next segment boundary.
  if (segment >= options.segments || state->fs->faultsAborted()) {
    // Rank done.
    state->result.rankEnd[rank] = state->fs->deployment().fluid().now();
    if (--state->ranksRemaining == 0) {
      auto& result = state->result;
      result.end = state->fs->deployment().fluid().now();
      result.faults = faultDelta(state->fs->faultStats(), state->faultBaseline);
      result.mirror = mirrorDelta(state->fs->mirrorStats(), state->mirrorBaseline);
      result.hedge = hedgeDelta(state->fs->hedgeStats(), state->hedgeBaseline);
      result.failed = result.faults.aborted;
      result.bandwidth =
          result.failed ? 0.0
                        : util::bandwidth(result.totalBytes, result.end - result.start);
      if (state->done) state->done(result);
    }
    return;
  }
  const std::size_t node = state->job.nodeOfRank(rank);
  const auto offset = options.rankSegmentOffset(rank, state->job.ranks(), segment);
  const auto continuation = [state, rank, segment](util::Seconds) {
    issueSegment(state, rank, segment + 1);
  };
  if (options.operation == Operation::kWrite) {
    state->fs->writeAsync(node, state->rankFile[rank], offset, options.blockSize,
                          state->rankQueueWeight[rank], continuation);
  } else {
    state->fs->readAsync(node, state->rankFile[rank], offset, options.blockSize,
                         state->rankQueueWeight[rank], continuation);
  }
}

}  // namespace

void launchIor(beegfs::FileSystem& fs, const IorJob& job, const IorOptions& options,
               util::Seconds startAt, std::function<void(const IorResult&)> done,
               std::optional<std::vector<std::size_t>> pinnedTargets) {
  options.validate();
  auto& deployment = fs.deployment();
  job.validate(deployment.cluster().nodes.size());
  if (pinnedTargets && options.pattern == AccessPattern::kFilePerProcess) {
    throw util::ConfigError("pinned targets are only supported for the shared-file mode");
  }

  auto state = std::make_shared<RunState>();
  state->fs = &fs;
  state->job = job;
  state->options = options;
  state->done = std::move(done);
  state->ranksRemaining = job.ranks();
  state->result.totalBytes = options.totalBytes(job.ranks());
  state->result.rankEnd.assign(static_cast<std::size_t>(job.ranks()), 0.0);

  deployment.fluid().engine().schedule(startAt, [state, pinnedTargets = std::move(
                                                            pinnedTargets)]() mutable {
    auto& fs = *state->fs;
    auto& deployment = fs.deployment();
    auto& meta = deployment.meta();
    const auto& job = state->job;
    const auto& options = state->options;

    state->result.start = deployment.fluid().now();
    state->faultBaseline = fs.faultStats();
    state->mirrorBaseline = fs.mirrorStats();
    state->hedgeBaseline = fs.hedgeStats();

    // Metadata phase: rank 0 creates the file(s); then every rank opens.
    // Placement happens identically under both metadata models (the chooser
    // stream sees the same create order), so enabling the queued model
    // leaves allocations byte-identical; only the *timing* of the phase
    // differs (scalar latency lookup vs. contended MDT flows).
    const bool queued = meta.queuedModel();
    const auto chunk = fs.settingsFor(options.testFile).chunkSize;
    std::set<std::size_t> usedTargets;
    util::Seconds scalarMetaCost = 0.0;
    std::vector<std::string> paths;
    state->rankFile.resize(static_cast<std::size_t>(job.ranks()));
    if (options.pattern == AccessPattern::kSharedFile) {
      if (!queued) scalarMetaCost += meta.createCost();
      const auto handle = pinnedTargets
                              ? fs.createPinned(options.testFile, *pinnedTargets, chunk)
                              : fs.create(options.testFile);
      std::fill(state->rankFile.begin(), state->rankFile.end(), handle);
      const auto& targets = fs.info(handle).pattern.targets();
      usedTargets.insert(targets.begin(), targets.end());
      paths.push_back(options.testFile);
    } else {
      // N-N: every rank creates its own file (creates contend on the MDS --
      // serialized cost scaled logarithmically inside openAllCost's model;
      // here we charge one create per rank, concurrently, as a max).
      util::Seconds worstCreate = 0.0;
      for (int r = 0; r < job.ranks(); ++r) {
        if (!queued) worstCreate = std::max(worstCreate, meta.createCost());
        auto path = options.testFile + "." + std::to_string(r);
        const auto handle = fs.create(path);
        state->rankFile[static_cast<std::size_t>(r)] = handle;
        const auto& targets = fs.info(handle).pattern.targets();
        usedTargets.insert(targets.begin(), targets.end());
        paths.push_back(std::move(path));
      }
      scalarMetaCost += worstCreate;
    }
    if (!queued) {
      scalarMetaCost += meta.openAllCost(static_cast<std::size_t>(job.ranks()));
    }
    state->result.targetsUsed.assign(usedTargets.begin(), usedTargets.end());

    // Read phase: the file must pre-exist with its full extent (IOR reads
    // after a prior write; we materialize the layout without charging I/O).
    if (options.operation == Operation::kRead) {
      if (options.pattern == AccessPattern::kSharedFile) {
        fs.truncate(state->rankFile[0], options.totalBytes(job.ranks()));
      } else {
        for (int r = 0; r < job.ranks(); ++r) {
          fs.truncate(state->rankFile[static_cast<std::size_t>(r)],
                      options.blockSize * static_cast<util::Bytes>(options.segments));
        }
      }
    }

    // I/O begins at absolute time `ioStart` (start + the metadata phase).
    const auto beginIo = [state](util::Seconds ioStart) {
      auto& fs = *state->fs;
      auto& deployment = fs.deployment();
      const auto& job = state->job;
      state->result.metaTime = ioStart - state->result.start;

      // Declare client-side load so contention and ramp-up apply.
      for (const auto node : job.nodeIds) {
        deployment.setNodeProcesses(node, job.ppn);
        deployment.markNodeJobStart(node, ioStart);
      }

      // Per-rank queue weight: the node's worker budget, split over its ppn
      // ranks and each rank's per-write flow count (one flow per stripe
      // target).
      state->rankQueueWeight.resize(static_cast<std::size_t>(job.ranks()));
      for (int r = 0; r < job.ranks(); ++r) {
        const auto node = job.nodeOfRank(r);
        const auto stripeCount =
            fs.info(state->rankFile[static_cast<std::size_t>(r)]).pattern.stripeCount();
        const double inflight = deployment.nodeEffectiveInflight(node, job.ppn);
        state->rankQueueWeight[static_cast<std::size_t>(r)] =
            inflight / (static_cast<double>(job.ppn) * static_cast<double>(stripeCount));
      }

      deployment.fluid().engine().schedule(ioStart, [state] {
        for (int r = 0; r < state->job.ranks(); ++r) issueSegment(state, r, 0);
      });
    };

    if (!queued) {
      beginIo(deployment.fluid().now() + scalarMetaCost);
      return;
    }

    // Queued model: the create(s) run as contended MDT flows, then every
    // rank's open does; I/O starts when the last open lands.
    const auto sharedPaths = std::make_shared<std::vector<std::string>>(std::move(paths));
    const auto pendingCreates = std::make_shared<std::size_t>(sharedPaths->size());
    const bool sharedFile = options.pattern == AccessPattern::kSharedFile;
    for (const auto& path : *sharedPaths) {
      meta.opAsync(
          beegfs::MetaOpKind::kCreate, path,
          [state, sharedPaths, pendingCreates, sharedFile, beginIo](util::Seconds) {
            if (--*pendingCreates != 0) return;
            auto& meta = state->fs->deployment().meta();
            const auto pendingOpens =
                std::make_shared<std::size_t>(static_cast<std::size_t>(state->job.ranks()));
            for (int r = 0; r < state->job.ranks(); ++r) {
              const auto& path =
                  sharedFile ? sharedPaths->front()
                             : (*sharedPaths)[static_cast<std::size_t>(r)];
              meta.opAsync(beegfs::MetaOpKind::kOpen, path,
                           [state, sharedPaths, pendingOpens, beginIo](util::Seconds at) {
                             if (--*pendingOpens == 0) beginIo(at);
                           });
            }
          });
    }
  });
}

IorResult runIor(beegfs::FileSystem& fs, const IorJob& job, const IorOptions& options,
                 std::optional<std::vector<std::size_t>> pinnedTargets) {
  IorResult result;
  bool finished = false;
  launchIor(
      fs, job, options, fs.deployment().fluid().now(),
      [&](const IorResult& r) {
        result = r;
        finished = true;
      },
      std::move(pinnedTargets));
  fs.deployment().fluid().run();
  BEESIM_ASSERT(finished, "IOR run did not complete");
  return result;
}

}  // namespace beesim::ior
