#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "stats/summary.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace beesim::stats {

namespace {

void checkArgs(std::size_t n, double confidence, int resamples) {
  BEESIM_ASSERT(n >= 1, "bootstrap needs a non-empty sample");
  BEESIM_ASSERT(confidence > 0.0 && confidence < 1.0, "confidence must be in (0, 1)");
  BEESIM_ASSERT(resamples >= 100, "bootstrap needs >= 100 resamples");
}

double meanOf(std::span<const double> values) {
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// Generic percentile bootstrap over a statistic computed on index samples.
template <typename Statistic>
BootstrapCi bootstrapCi(std::span<const double> sample, double confidence, int resamples,
                        std::uint64_t seed, Statistic statistic) {
  checkArgs(sample.size(), confidence, resamples);
  util::Rng rng(seed);
  std::vector<double> resample(sample.size());
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (auto& v : resample) {
      v = sample[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(sample.size()) - 1))];
    }
    stats.push_back(statistic(std::span<const double>(resample)));
  }
  const double alpha = 1.0 - confidence;
  BootstrapCi ci;
  ci.estimate = statistic(sample);
  ci.lo = quantile(stats, alpha / 2.0);
  ci.hi = quantile(stats, 1.0 - alpha / 2.0);
  ci.confidence = confidence;
  return ci;
}

}  // namespace

BootstrapCi bootstrapMeanCi(std::span<const double> sample, double confidence, int resamples,
                            std::uint64_t seed) {
  return bootstrapCi(sample, confidence, resamples, seed,
                     [](std::span<const double> s) { return meanOf(s); });
}

BootstrapCi bootstrapMedianCi(std::span<const double> sample, double confidence,
                              int resamples, std::uint64_t seed) {
  return bootstrapCi(sample, confidence, resamples, seed,
                     [](std::span<const double> s) { return quantile(s, 0.5); });
}

BootstrapCi bootstrapMeanDifferenceCi(std::span<const double> a, std::span<const double> b,
                                      double confidence, int resamples, std::uint64_t seed) {
  checkArgs(a.size(), confidence, resamples);
  checkArgs(b.size(), confidence, resamples);
  util::Rng rng(seed);
  std::vector<double> ra(a.size());
  std::vector<double> rb(b.size());
  std::vector<double> diffs;
  diffs.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (auto& v : ra) {
      v = a[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(a.size()) - 1))];
    }
    for (auto& v : rb) {
      v = b[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(b.size()) - 1))];
    }
    diffs.push_back(meanOf(ra) - meanOf(rb));
  }
  const double alpha = 1.0 - confidence;
  BootstrapCi ci;
  ci.estimate = meanOf(a) - meanOf(b);
  ci.lo = quantile(diffs, alpha / 2.0);
  ci.hi = quantile(diffs, 1.0 - alpha / 2.0);
  ci.confidence = confidence;
  return ci;
}

std::string BootstrapCi::describe(int decimals) const {
  return util::fmt(estimate, decimals) + " [" + util::fmt(lo, decimals) + ", " +
         util::fmt(hi, decimals) + "] @" + util::fmt(100.0 * confidence, 0) + "%";
}

}  // namespace beesim::stats
