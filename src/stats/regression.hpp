// Ordinary least squares on (x, y) pairs.
//
// Used to quantify Fig. 6b's "bandwidth increases almost linearly with the
// number of OSTs": the bench fits bandwidth ~ stripeCount and reports slope
// and R^2.
#pragma once

#include <span>
#include <string>

namespace beesim::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination

  double predict(double x) const { return intercept + slope * x; }
  std::string describe() const;
};

/// Preconditions: x.size() == y.size() >= 2 and x has non-zero variance.
LinearFit linearFit(std::span<const double> x, std::span<const double> y);

}  // namespace beesim::stats
