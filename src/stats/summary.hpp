// Descriptive statistics: the numbers the paper's figures are built from
// (means for the dotted lines, min/max shading, box-plot quartiles and
// whiskers for Figs. 8/10).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace beesim::stats {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double sd = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q1 = 0.0;  // 25th percentile
  double q3 = 0.0;  // 75th percentile

  /// Coefficient of variation (sd / mean); 0 when mean == 0.
  double cv() const { return mean != 0.0 ? sd / mean : 0.0; }

  std::string describe(int decimals = 1) const;
};

/// Compute a summary.  Precondition: values non-empty.
Summary summarize(std::span<const double> values);

/// Linear-interpolated quantile (R type-7, matching numpy/pandas defaults).
/// Precondition: values non-empty, 0 <= q <= 1.
double quantile(std::span<const double> values, double q);

/// Jain's fairness index: (Σx)² / (n·Σx²).  1 = perfectly fair, 1/n = one
/// user takes everything.  Precondition: values non-empty, all >= 0.  An
/// all-zero vector is "equally nothing" and yields 1.
double jainIndex(std::span<const double> values);

/// Tukey box-plot statistics: quartiles plus whiskers at the most extreme
/// points within 1.5*IQR, and the outliers beyond them.
struct BoxPlot {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whiskerLow = 0.0;
  double whiskerHigh = 0.0;
  std::vector<double> outliers;
};

BoxPlot boxPlot(std::span<const double> values);

}  // namespace beesim::stats
