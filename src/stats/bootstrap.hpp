// Bootstrap confidence intervals.
//
// The paper (Lesson #5) warns against summarizing I/O measurements by bare
// means; when a mean *is* reported, a resampling interval communicates how
// trustworthy it is without normality assumptions -- bandwidth samples here
// are bimodal or skewed exactly when it matters.  Percentile bootstrap,
// deterministic given the seed.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace beesim::stats {

struct BootstrapCi {
  double estimate = 0.0;  // statistic on the original sample
  double lo = 0.0;        // lower percentile bound
  double hi = 0.0;        // upper percentile bound
  double confidence = 0.95;

  /// True when `value` falls inside [lo, hi].
  bool contains(double value) const { return value >= lo && value <= hi; }

  std::string describe(int decimals = 1) const;
};

/// Percentile-bootstrap CI of the sample mean.
/// Preconditions: sample non-empty, 0 < confidence < 1, resamples >= 100.
BootstrapCi bootstrapMeanCi(std::span<const double> sample, double confidence = 0.95,
                            int resamples = 2000, std::uint64_t seed = 1);

/// Percentile-bootstrap CI of the sample median.
BootstrapCi bootstrapMedianCi(std::span<const double> sample, double confidence = 0.95,
                              int resamples = 2000, std::uint64_t seed = 1);

/// Bootstrap CI of the *difference of means* (a - b): spans zero when the
/// two groups cannot be distinguished -- a resampling counterpart of the
/// Welch test used for Fig. 13.
BootstrapCi bootstrapMeanDifferenceCi(std::span<const double> a, std::span<const double> b,
                                      double confidence = 0.95, int resamples = 2000,
                                      std::uint64_t seed = 1);

}  // namespace beesim::stats
