#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::stats {

double quantile(std::span<const double> values, double q) {
  BEESIM_ASSERT(!values.empty(), "quantile of empty sample");
  BEESIM_ASSERT(q >= 0.0 && q <= 1.0, "quantile fraction must be in [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> values) {
  BEESIM_ASSERT(!values.empty(), "summary of empty sample");
  Summary s;
  s.n = values.size();
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n >= 2) {
    double ss = 0.0;
    for (const double v : values) ss += (v - s.mean) * (v - s.mean);
    s.sd = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  s.median = quantile(values, 0.5);
  s.q1 = quantile(values, 0.25);
  s.q3 = quantile(values, 0.75);
  return s;
}

std::string Summary::describe(int decimals) const {
  return "n=" + std::to_string(n) + " mean=" + util::fmt(mean, decimals) +
         " sd=" + util::fmt(sd, decimals) + " min=" + util::fmt(min, decimals) +
         " med=" + util::fmt(median, decimals) + " max=" + util::fmt(max, decimals);
}

BoxPlot boxPlot(std::span<const double> values) {
  BEESIM_ASSERT(!values.empty(), "box plot of empty sample");
  BoxPlot box;
  box.q1 = quantile(values, 0.25);
  box.median = quantile(values, 0.5);
  box.q3 = quantile(values, 0.75);
  const double iqr = box.q3 - box.q1;
  const double lowFence = box.q1 - 1.5 * iqr;
  const double highFence = box.q3 + 1.5 * iqr;

  box.whiskerLow = box.q1;
  box.whiskerHigh = box.q3;
  bool any = false;
  for (const double v : values) {
    if (v >= lowFence && v <= highFence) {
      if (!any) {
        box.whiskerLow = box.whiskerHigh = v;
        any = true;
      } else {
        box.whiskerLow = std::min(box.whiskerLow, v);
        box.whiskerHigh = std::max(box.whiskerHigh, v);
      }
    } else {
      box.outliers.push_back(v);
    }
  }
  std::sort(box.outliers.begin(), box.outliers.end());
  return box;
}

}  // namespace beesim::stats
