#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::stats {

namespace {

/// Quantile over an already-sorted sample (R type-7).  summarize/boxPlot
/// need three quantiles each; sorting once and reusing it turns their
/// O(3 n log n) into O(n log n), which matters for campaign-sized samples.
double quantileSorted(std::span<const double> sorted, double q) {
  if (sorted.size() == 1) return sorted.front();
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double> sortedCopy(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

double quantile(std::span<const double> values, double q) {
  BEESIM_ASSERT(!values.empty(), "quantile of empty sample");
  BEESIM_ASSERT(q >= 0.0 && q <= 1.0, "quantile fraction must be in [0, 1]");
  return quantileSorted(sortedCopy(values), q);
}

double jainIndex(std::span<const double> values) {
  BEESIM_ASSERT(!values.empty(), "Jain index of empty sample");
  double sum = 0.0;
  double sumSq = 0.0;
  for (const double x : values) {
    BEESIM_ASSERT(x >= 0.0, "Jain index needs non-negative allocations");
    sum += x;
    sumSq += x * x;
  }
  if (sumSq == 0.0) return 1.0;  // everyone got (equally) nothing
  return sum * sum / (static_cast<double>(values.size()) * sumSq);
}

Summary summarize(std::span<const double> values) {
  BEESIM_ASSERT(!values.empty(), "summary of empty sample");
  Summary s;
  s.n = values.size();
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n >= 2) {
    double ss = 0.0;
    for (const double v : values) ss += (v - s.mean) * (v - s.mean);
    s.sd = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  const auto sorted = sortedCopy(values);
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantileSorted(sorted, 0.5);
  s.q1 = quantileSorted(sorted, 0.25);
  s.q3 = quantileSorted(sorted, 0.75);
  return s;
}

std::string Summary::describe(int decimals) const {
  return "n=" + std::to_string(n) + " mean=" + util::fmt(mean, decimals) +
         " sd=" + util::fmt(sd, decimals) + " min=" + util::fmt(min, decimals) +
         " q1=" + util::fmt(q1, decimals) + " med=" + util::fmt(median, decimals) +
         " q3=" + util::fmt(q3, decimals) + " max=" + util::fmt(max, decimals);
}

BoxPlot boxPlot(std::span<const double> values) {
  BEESIM_ASSERT(!values.empty(), "box plot of empty sample");
  BoxPlot box;
  const auto sorted = sortedCopy(values);
  box.q1 = quantileSorted(sorted, 0.25);
  box.median = quantileSorted(sorted, 0.5);
  box.q3 = quantileSorted(sorted, 0.75);
  const double iqr = box.q3 - box.q1;
  const double lowFence = box.q1 - 1.5 * iqr;
  const double highFence = box.q3 + 1.5 * iqr;

  box.whiskerLow = box.q1;
  box.whiskerHigh = box.q3;
  bool any = false;
  for (const double v : sorted) {
    if (v >= lowFence && v <= highFence) {
      if (!any) {
        box.whiskerLow = box.whiskerHigh = v;
        any = true;
      } else {
        box.whiskerLow = std::min(box.whiskerLow, v);
        box.whiskerHigh = std::max(box.whiskerHigh, v);
      }
    } else {
      box.outliers.push_back(v);  // already in ascending order
    }
  }
  return box;
}

}  // namespace beesim::stats
