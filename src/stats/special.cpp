#include "stats/special.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace beesim::stats {

double logGamma(double x) { return std::lgamma(x); }

namespace {

/// Continued-fraction evaluation of the incomplete beta (Numerical Recipes
/// "betacf", modified Lentz method).
double betaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) return h;
  }
  BEESIM_ASSERT(false, "incomplete beta continued fraction did not converge");
  return h;  // unreachable
}

}  // namespace

double incompleteBeta(double a, double b, double x) {
  BEESIM_ASSERT(a > 0.0 && b > 0.0, "incomplete beta needs a, b > 0");
  BEESIM_ASSERT(x >= 0.0 && x <= 1.0, "incomplete beta needs x in [0, 1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double logBt = logGamma(a + b) - logGamma(a) - logGamma(b) + a * std::log(x) +
                       b * std::log(1.0 - x);
  const double bt = std::exp(logBt);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * betaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - bt * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double studentTCdf(double t, double df) {
  BEESIM_ASSERT(df > 0.0, "degrees of freedom must be > 0");
  if (!std::isfinite(t)) return t > 0 ? 1.0 : 0.0;
  const double x = df / (df + t * t);
  const double p = 0.5 * incompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double studentTTwoSidedP(double t, double df) {
  const double x = df / (df + t * t);
  return incompleteBeta(df / 2.0, 0.5, x);
}

double normalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double kolmogorovQ(double lambda) {
  BEESIM_ASSERT(lambda >= 0.0, "lambda must be >= 0");
  if (lambda < 1e-8) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace beesim::stats
