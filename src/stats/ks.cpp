#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/special.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::stats {

std::string KsResult::describe() const {
  return "D=" + util::fmt(statistic, 4) + " p=" + util::fmt(pValue, 4);
}

KsResult ksNormalTest(std::span<const double> sample, double mean, double sd) {
  BEESIM_ASSERT(!sample.empty(), "KS test of empty sample");
  BEESIM_ASSERT(sd > 0.0, "KS reference sd must be > 0");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());

  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double cdf = normalCdf((sorted[i] - mean) / sd);
    const double empiricalHigh = static_cast<double>(i + 1) / n;
    const double empiricalLow = static_cast<double>(i) / n;
    d = std::max({d, std::fabs(empiricalHigh - cdf), std::fabs(cdf - empiricalLow)});
  }

  KsResult result;
  result.statistic = d;
  const double sqrtN = std::sqrt(n);
  result.pValue = kolmogorovQ((sqrtN + 0.12 + 0.11 / sqrtN) * d);
  return result;
}

KsResult ksNormalTestFitted(std::span<const double> sample) {
  const auto s = summarize(sample);
  BEESIM_ASSERT(s.sd > 0.0, "fitted KS test needs non-degenerate sample");
  return ksNormalTest(sample, s.mean, s.sd);
}

KsResult ksTwoSampleTest(std::span<const double> a, std::span<const double> b) {
  BEESIM_ASSERT(!a.empty() && !b.empty(), "two-sample KS needs non-empty samples");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / static_cast<double>(sa.size());
    const double fb = static_cast<double>(ib) / static_cast<double>(sb.size());
    d = std::max(d, std::fabs(fa - fb));
  }

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  const double effectiveN = std::sqrt(na * nb / (na + nb));

  KsResult result;
  result.statistic = d;
  result.pValue = kolmogorovQ((effectiveN + 0.12 + 0.11 / effectiveN) * d);
  return result;
}

}  // namespace beesim::stats
