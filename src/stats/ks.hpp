// Kolmogorov-Smirnov tests.
//
// The paper checks normality with a KS test before applying Welch's t-test
// (Section IV-D).  We provide the one-sample test against a Normal(mu,
// sigma) and the two-sample test (useful to compare bandwidth distributions
// across allocations), both with the asymptotic Kolmogorov p-value.
#pragma once

#include <span>
#include <string>

namespace beesim::stats {

struct KsResult {
  double statistic = 0.0;  // sup |F_empirical - F_reference|
  double pValue = 1.0;

  std::string describe() const;
};

/// One-sample KS test of `sample` against Normal(mean, sd).  sd > 0,
/// sample non-empty.
KsResult ksNormalTest(std::span<const double> sample, double mean, double sd);

/// One-sample KS test against the sample's own fitted normal (Lilliefors
/// setting; p-value is the conservative asymptotic one, as R's ks.test
/// reports when parameters are supplied).
KsResult ksNormalTestFitted(std::span<const double> sample);

/// Two-sample KS test.
KsResult ksTwoSampleTest(std::span<const double> a, std::span<const double> b);

}  // namespace beesim::stats
