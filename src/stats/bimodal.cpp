#include "stats/bimodal.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::stats {

BimodalityResult twoMeansSplit(std::span<const double> values) {
  BEESIM_ASSERT(values.size() >= 4, "bimodality analysis needs >= 4 points");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();

  // Prefix sums for O(1) cluster statistics at any split.
  std::vector<double> prefix(n + 1, 0.0);
  std::vector<double> prefixSq(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + sorted[i];
    prefixSq[i + 1] = prefixSq[i] + sorted[i] * sorted[i];
  }
  auto sse = [&](std::size_t from, std::size_t to) {  // [from, to)
    const auto count = static_cast<double>(to - from);
    const double sum = prefix[to] - prefix[from];
    const double sumSq = prefixSq[to] - prefixSq[from];
    return sumSq - sum * sum / count;
  };

  // Exact 1-D 2-means: try every split position, minimize within-cluster SSE.
  std::size_t bestSplit = 1;
  double bestSse = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k < n; ++k) {
    const double total = sse(0, k) + sse(k, n);
    if (total < bestSse) {
      bestSse = total;
      bestSplit = k;
    }
  }

  BimodalityResult result;
  result.lowerCount = bestSplit;
  result.upperCount = n - bestSplit;
  result.lowerMean = (prefix[bestSplit] - prefix[0]) / static_cast<double>(bestSplit);
  result.upperMean = (prefix[n] - prefix[bestSplit]) / static_cast<double>(n - bestSplit);
  result.splitPoint = 0.5 * (sorted[bestSplit - 1] + sorted[bestSplit]);

  const double totalSse = sse(0, n);
  result.varianceExplained = totalSse > 0.0 ? 1.0 - bestSse / totalSse : 0.0;

  // Pooled within-cluster sd (guard clusters of size 1).
  const auto dfLower = result.lowerCount > 1 ? result.lowerCount - 1 : 0;
  const auto dfUpper = result.upperCount > 1 ? result.upperCount - 1 : 0;
  const double df = static_cast<double>(dfLower + dfUpper);
  const double pooledSd = df > 0.0 ? std::sqrt(bestSse / df) : 0.0;
  const double gap = result.upperMean - result.lowerMean;
  result.separation = pooledSd > 0.0
                          ? gap / pooledSd
                          : (gap > 0.0 ? std::numeric_limits<double>::infinity() : 0.0);
  return result;
}

bool isBimodal(const BimodalityResult& result, std::size_t n, double minModeFraction,
               double minSeparation, double minVarianceExplained, double minRelativeGap) {
  BEESIM_ASSERT(n > 0, "sample size must be positive");
  const double lowFrac = static_cast<double>(result.lowerCount) / static_cast<double>(n);
  const double highFrac = static_cast<double>(result.upperCount) / static_cast<double>(n);
  const double midpoint = 0.5 * (result.lowerMean + result.upperMean);
  const double relativeGap =
      midpoint != 0.0 ? (result.upperMean - result.lowerMean) / midpoint : 0.0;
  return lowFrac >= minModeFraction && highFrac >= minModeFraction &&
         result.separation >= minSeparation &&
         result.varianceExplained >= minVarianceExplained && relativeGap >= minRelativeGap;
}

std::string BimodalityResult::describe() const {
  return "modes " + util::fmt(lowerMean, 1) + " (n=" + std::to_string(lowerCount) + ") / " +
         util::fmt(upperMean, 1) + " (n=" + std::to_string(upperCount) +
         "), separation=" + util::fmt(separation, 2);
}

}  // namespace beesim::stats
