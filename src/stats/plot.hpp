// Terminal plots: scatter, line-with-points and box plots rendered as
// fixed-width character art.
//
// The bench binaries regenerate the paper's *figures*; a table of numbers
// loses the shapes the paper argues from (the bimodal clouds of Fig. 6a,
// the plateaus of Fig. 4, the staircase of Fig. 8).  These renderers put
// the shape back into `bench_output.txt` with zero dependencies.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace beesim::stats {

struct PlotOptions {
  int width = 72;    // plot area columns (excluding axis labels)
  int height = 16;   // plot area rows
  bool yFromZero = false;
  std::string xLabel;
  std::string yLabel;
};

/// Scatter plot of y-value clouds per labelled x category (the Fig. 6
/// shape: one column of dots per stripe count).  Category order follows
/// the input vector.
struct CategoryScatter {
  std::string label;            // x tick, e.g. "4"
  std::vector<double> values;   // the individual measurements
};

std::string renderCategoryScatter(std::span<const CategoryScatter> categories,
                                  const PlotOptions& options = {});

/// Line plot with point markers of one or more named series over shared
/// numeric x positions (the Fig. 4/11 shape).  Series are marked with
/// distinct glyphs, listed in the legend.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

std::string renderLines(std::span<const Series> series, const PlotOptions& options = {});

/// Horizontal box-and-whisker chart, one row per labelled group (the
/// Fig. 8/10 shape).  Boxes are drawn on a shared value axis:
///   |----[  Q1 |median| Q3  ]----|  plus 'o' outliers.
struct LabelledBox {
  std::string label;
  BoxPlot box;
};

std::string renderBoxes(std::span<const LabelledBox> boxes, const PlotOptions& options = {});

}  // namespace beesim::stats
