#include "stats/plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::stats {

namespace {

/// Value range across everything that will be drawn, padded a little.
struct Range {
  double lo = 0.0;
  double hi = 1.0;

  double clampFraction(double v) const {
    if (hi <= lo) return 0.5;
    return std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  }
};

Range makeRange(double lo, double hi, bool fromZero) {
  if (fromZero) lo = std::min(lo, 0.0);
  if (hi <= lo) hi = lo + 1.0;
  const double pad = 0.04 * (hi - lo);
  return Range{fromZero ? lo : lo - pad, hi + pad};
}

std::string axisLabel(double v) { return util::fmt(v, v < 10 ? 1 : 0); }

/// Column (not absolute offset) of the first '|' in the rendered frame --
/// the left edge of the plot area.
std::size_t frameGutterColumn(const std::string& frameText) {
  const auto pipe = frameText.find('|');
  BEESIM_ASSERT(pipe != std::string::npos, "frame has no plot edge");
  const auto lineStart = frameText.rfind('\n', pipe);
  return lineStart == std::string::npos ? pipe : pipe - lineStart - 1;
}

/// A width x height character canvas with (0,0) at the top-left.
class Canvas {
 public:
  Canvas(int width, int height) : width_(width), height_(height) {
    BEESIM_ASSERT(width >= 8 && height >= 4, "plot area too small");
    rows_.assign(static_cast<std::size_t>(height), std::string(static_cast<std::size_t>(width), ' '));
  }

  void put(int x, int y, char c, bool force = false) {
    if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
    char& cell = rows_[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
    if (force) {
      cell = c;  // data-point glyphs win over interpolation dots
      return;
    }
    if (cell != ' ' && cell != '.') return;  // never overwrite a glyph
    // Overstrikes of dots become '*' so dense clouds stay readable.
    cell = (cell == ' ' || cell == c) ? c : '*';
  }

  int width() const { return width_; }
  int height() const { return height_; }
  const std::string& row(int y) const { return rows_[static_cast<std::size_t>(y)]; }

 private:
  int width_;
  int height_;
  std::vector<std::string> rows_;
};

/// Render a canvas with a y axis (min/mid/max labels) and an x-axis line.
std::string frame(const Canvas& canvas, const Range& range, const PlotOptions& options) {
  const std::string top = axisLabel(range.hi);
  const std::string mid = axisLabel(0.5 * (range.lo + range.hi));
  const std::string bottom = axisLabel(range.lo);
  const std::size_t gutter = std::max({top.size(), mid.size(), bottom.size()}) + 1;

  std::string out;
  if (!options.yLabel.empty()) {
    out += std::string(gutter, ' ') + options.yLabel + '\n';
  }
  for (int y = 0; y < canvas.height(); ++y) {
    std::string label;
    if (y == 0) label = top;
    else if (y == canvas.height() / 2) label = mid;
    else if (y == canvas.height() - 1) label = bottom;
    out += std::string(gutter - label.size() - 1, ' ') + label + " |" + canvas.row(y) + '\n';
  }
  out += std::string(gutter, ' ') + '+' +
         std::string(static_cast<std::size_t>(canvas.width()), '-') + '\n';
  return out;
}

int yPixel(double value, const Range& range, int height) {
  const double fraction = range.clampFraction(value);
  return static_cast<int>(std::lround((1.0 - fraction) * (height - 1)));
}

}  // namespace

std::string renderCategoryScatter(std::span<const CategoryScatter> categories,
                                  const PlotOptions& options) {
  BEESIM_ASSERT(!categories.empty(), "scatter needs at least one category");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const auto& cat : categories) {
    for (const double v : cat.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  BEESIM_ASSERT(std::isfinite(lo), "scatter needs at least one value");
  const Range range = makeRange(lo, hi, options.yFromZero);

  Canvas canvas(options.width, options.height);
  const int slot = options.width / static_cast<int>(categories.size());
  BEESIM_ASSERT(slot >= 3, "too many categories for the plot width");

  for (std::size_t c = 0; c < categories.size(); ++c) {
    const int x0 = static_cast<int>(c) * slot;
    // Jitter points horizontally within the slot, deterministically, so a
    // cloud's density is visible.
    std::size_t i = 0;
    for (const double v : categories[c].values) {
      const int x = x0 + 1 + static_cast<int>(i % static_cast<std::size_t>(slot - 2));
      canvas.put(x, yPixel(v, range, options.height), '.');
      ++i;
    }
  }

  std::string out = frame(canvas, range, options);
  // x tick labels, centred per slot.
  const std::size_t gutter = frameGutterColumn(out);
  std::string ticks(static_cast<std::size_t>(options.width), ' ');
  for (std::size_t c = 0; c < categories.size(); ++c) {
    const auto& label = categories[c].label;
    const int x0 = static_cast<int>(c) * slot + (slot - static_cast<int>(label.size())) / 2;
    for (std::size_t k = 0; k < label.size(); ++k) {
      const int x = x0 + static_cast<int>(k);
      if (x >= 0 && x < options.width) ticks[static_cast<std::size_t>(x)] = label[k];
    }
  }
  out += std::string(gutter + 1, ' ') + ticks + '\n';
  if (!options.xLabel.empty()) {
    out += std::string(gutter + 1, ' ') + options.xLabel + '\n';
  }
  return out;
}

std::string renderLines(std::span<const Series> series, const PlotOptions& options) {
  BEESIM_ASSERT(!series.empty(), "line plot needs at least one series");
  static constexpr char kGlyphs[] = {'o', '+', 'x', '#', '@', '%', '&', '$'};

  double xLo = std::numeric_limits<double>::infinity();
  double xHi = -xLo;
  double yLo = xLo;
  double yHi = -xLo;
  for (const auto& s : series) {
    BEESIM_ASSERT(s.x.size() == s.y.size(), "series x/y length mismatch");
    BEESIM_ASSERT(!s.x.empty(), "series must not be empty");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      xLo = std::min(xLo, s.x[i]);
      xHi = std::max(xHi, s.x[i]);
      yLo = std::min(yLo, s.y[i]);
      yHi = std::max(yHi, s.y[i]);
    }
  }
  const Range yRange = makeRange(yLo, yHi, options.yFromZero);
  const Range xRange = makeRange(xLo, xHi, false);

  Canvas canvas(options.width, options.height);
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    const auto& ser = series[s];
    // Connect consecutive points with interpolated dots, then overdraw the
    // data points with the series glyph.
    for (std::size_t i = 0; i + 1 < ser.x.size(); ++i) {
      const int x1 = static_cast<int>(std::lround(xRange.clampFraction(ser.x[i]) *
                                                  (options.width - 1)));
      const int x2 = static_cast<int>(std::lround(xRange.clampFraction(ser.x[i + 1]) *
                                                  (options.width - 1)));
      for (int x = x1; x <= x2; ++x) {
        const double t = x2 > x1 ? static_cast<double>(x - x1) / (x2 - x1) : 0.0;
        const double y = ser.y[i] + t * (ser.y[i + 1] - ser.y[i]);
        canvas.put(x, yPixel(y, yRange, options.height), '.');
      }
    }
    for (std::size_t i = 0; i < ser.x.size(); ++i) {
      const int x = static_cast<int>(std::lround(xRange.clampFraction(ser.x[i]) *
                                                 (options.width - 1)));
      canvas.put(x, yPixel(ser.y[i], yRange, options.height), glyph, /*force=*/true);
    }
  }

  std::string out = frame(canvas, yRange, options);
  const std::size_t gutter = frameGutterColumn(out);
  out += std::string(gutter + 1, ' ') + axisLabel(xLo) +
         std::string(static_cast<std::size_t>(std::max(
                         1, options.width - static_cast<int>(axisLabel(xLo).size()) -
                                static_cast<int>(axisLabel(xHi).size()))),
                     ' ') +
         axisLabel(xHi) + '\n';
  if (!options.xLabel.empty()) out += std::string(gutter + 1, ' ') + options.xLabel + '\n';
  std::string legend;
  for (std::size_t s = 0; s < series.size(); ++s) {
    if (s) legend += "   ";
    legend += std::string(1, kGlyphs[s % sizeof(kGlyphs)]) + " " + series[s].name;
  }
  out += std::string(gutter + 1, ' ') + legend + '\n';
  return out;
}

std::string renderBoxes(std::span<const LabelledBox> boxes, const PlotOptions& options) {
  BEESIM_ASSERT(!boxes.empty(), "box chart needs at least one box");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  std::size_t labelWidth = 0;
  for (const auto& b : boxes) {
    lo = std::min({lo, b.box.whiskerLow, b.box.outliers.empty() ? b.box.whiskerLow
                                                                : b.box.outliers.front()});
    hi = std::max({hi, b.box.whiskerHigh, b.box.outliers.empty() ? b.box.whiskerHigh
                                                                 : b.box.outliers.back()});
    labelWidth = std::max(labelWidth, b.label.size());
  }
  const Range range = makeRange(lo, hi, options.yFromZero);

  auto xOf = [&](double v) {
    return static_cast<int>(std::lround(range.clampFraction(v) * (options.width - 1)));
  };

  std::string out;
  for (const auto& b : boxes) {
    std::string row(static_cast<std::size_t>(options.width), ' ');
    auto set = [&](int x, char c) {
      if (x >= 0 && x < options.width) row[static_cast<std::size_t>(x)] = c;
    };
    const int wl = xOf(b.box.whiskerLow);
    const int q1 = xOf(b.box.q1);
    const int med = xOf(b.box.median);
    const int q3 = xOf(b.box.q3);
    const int wh = xOf(b.box.whiskerHigh);
    for (int x = wl; x <= q1; ++x) set(x, '-');
    for (int x = q1; x <= q3; ++x) set(x, '=');
    set(wl, '|');
    set(wh, '|');
    for (int x = q3; x <= wh; ++x) {
      if (row[static_cast<std::size_t>(std::clamp(x, 0, options.width - 1))] == ' ') set(x, '-');
    }
    set(q1, '[');
    set(q3, ']');
    set(med, 'M');
    for (const double v : b.box.outliers) set(xOf(v), 'o');

    out += b.label + std::string(labelWidth - b.label.size(), ' ') + " " + row + '\n';
  }
  out += std::string(labelWidth + 1, ' ') + axisLabel(range.lo) +
         std::string(static_cast<std::size_t>(std::max(
                         1, options.width - static_cast<int>(axisLabel(range.lo).size()) -
                                static_cast<int>(axisLabel(range.hi).size()))),
                     ' ') +
         axisLabel(range.hi) + '\n';
  if (!options.xLabel.empty()) out += std::string(labelWidth + 1, ' ') + options.xLabel + '\n';
  return out;
}

}  // namespace beesim::stats
