#include "stats/ttest.hpp"

#include <cmath>

#include "stats/special.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::stats {

WelchResult welchTTest(std::span<const double> a, std::span<const double> b) {
  BEESIM_ASSERT(a.size() >= 2 && b.size() >= 2, "Welch test needs >= 2 values per sample");
  const auto sa = summarize(a);
  const auto sb = summarize(b);
  const double va = sa.sd * sa.sd / static_cast<double>(sa.n);
  const double vb = sb.sd * sb.sd / static_cast<double>(sb.n);
  BEESIM_ASSERT(va + vb > 0.0, "Welch test needs non-zero variance");

  WelchResult result;
  result.meanA = sa.mean;
  result.meanB = sb.mean;
  result.meanDifference = sa.mean - sb.mean;
  result.t = result.meanDifference / std::sqrt(va + vb);
  result.df = (va + vb) * (va + vb) /
              (va * va / static_cast<double>(sa.n - 1) +
               vb * vb / static_cast<double>(sb.n - 1));
  result.pValue = studentTTwoSidedP(result.t, result.df);
  return result;
}

std::string WelchResult::describe() const {
  return "t=" + util::fmt(t, 4) + " df=" + util::fmt(df, 1) + " p=" + util::fmt(pValue, 4) +
         " (meanA=" + util::fmt(meanA, 1) + ", meanB=" + util::fmt(meanB, 1) + ")";
}

}  // namespace beesim::stats
