// Bimodality detection.
//
// Fig. 6a's headline observation is that several stripe counts produce
// *bi-modal* bandwidth distributions (each mode being one (min,max) target
// allocation).  Lesson #5 warns that summarizing such data by its mean tells
// "a different (and inaccurate) story".  This detector quantifies the
// effect: a 1-D two-means split plus a separation score, so benches can
// assert "counts 2, 3, 5, 6 are bimodal; 1, 4, 7, 8 are not" mechanically.
#pragma once

#include <span>
#include <string>

namespace beesim::stats {

struct BimodalityResult {
  /// Optimal two-cluster split (1-D k-means, exact via sorted sweep).
  double lowerMean = 0.0;
  double upperMean = 0.0;
  std::size_t lowerCount = 0;
  std::size_t upperCount = 0;
  /// Threshold between the clusters.
  double splitPoint = 0.0;
  /// Separation score: gap between cluster means divided by the pooled
  /// within-cluster standard deviation (akin to a two-cluster silhouette;
  /// > ~2 with both clusters populated reads as clearly bimodal).
  double separation = 0.0;
  /// Fraction of total variance explained by the split (between-cluster /
  /// total, in [0, 1]).
  double varianceExplained = 0.0;

  std::string describe() const;
};

/// Analyze a sample (n >= 4).  Degenerate (constant) samples return
/// separation 0.
BimodalityResult twoMeansSplit(std::span<const double> values);

/// Convenience verdict with the thresholds used by the benches: both modes
/// hold >= minModeFraction of the points, separation >= minSeparation, the
/// split explains >= minVarianceExplained of the variance, and the modes
/// sit at least minRelativeGap apart (relative to their midpoint).  The
/// defaults reject a single Gaussian -- its optimal split scores separation
/// ~2.65, explains ~64% of the variance, and its mode gap is ~1.6 sigma
/// (a few percent for the paper's clouds) -- while accepting the paper's
/// allocation-driven modes, which sit ~30% apart.
bool isBimodal(const BimodalityResult& result, std::size_t n,
               double minModeFraction = 0.15, double minSeparation = 3.0,
               double minVarianceExplained = 0.75, double minRelativeGap = 0.10);

}  // namespace beesim::stats
