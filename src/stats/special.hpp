// Special functions needed by the hypothesis tests: regularized incomplete
// beta (Student-t CDF), error function wrappers (normal CDF), and the
// Kolmogorov distribution tail.  Implemented from scratch (Lentz continued
// fractions / series) so the library has no numerical dependencies; accuracy
// is validated against known values in the tests.
#pragma once

namespace beesim::stats {

/// Natural log of the gamma function (delegates to std::lgamma).
double logGamma(double x);

/// Regularized incomplete beta function I_x(a, b), for a,b > 0, x in [0,1].
double incompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom (df > 0).
double studentTCdf(double t, double df);

/// Two-sided p-value of a t statistic with `df` degrees of freedom.
double studentTTwoSidedP(double t, double df);

/// Standard normal CDF.
double normalCdf(double z);

/// Kolmogorov distribution complementary CDF Q(lambda) =
/// 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2) -- the asymptotic p-value
/// of the KS statistic.
double kolmogorovQ(double lambda);

}  // namespace beesim::stats
