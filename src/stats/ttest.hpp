// Welch's two-sample t-test (unequal variances).
//
// Section IV-D of the paper applies exactly this test ("A Welch two-sample
// t-test ... assuming different variances ... resulted in a p-value of
// 0.9031") to conclude that sharing all four OSTs does not significantly
// change application bandwidth.  bench/fig13_sharing_ttest repeats the
// analysis on simulated data.
#pragma once

#include <span>
#include <string>

namespace beesim::stats {

struct WelchResult {
  double t = 0.0;               // test statistic
  double df = 0.0;              // Welch-Satterthwaite degrees of freedom
  double pValue = 1.0;          // two-sided
  double meanA = 0.0;
  double meanB = 0.0;
  double meanDifference = 0.0;  // meanA - meanB

  /// True when the null hypothesis (equal means) is rejected at `alpha`.
  bool significantAt(double alpha) const { return pValue < alpha; }

  std::string describe() const;
};

/// Preconditions: both samples have >= 2 values and at least one sample has
/// positive variance.
WelchResult welchTTest(std::span<const double> a, std::span<const double> b);

}  // namespace beesim::stats
