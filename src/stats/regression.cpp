#include "stats/regression.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::stats {

LinearFit linearFit(std::span<const double> x, std::span<const double> y) {
  BEESIM_ASSERT(x.size() == y.size(), "x and y must have equal length");
  BEESIM_ASSERT(x.size() >= 2, "linear fit needs >= 2 points");
  const auto n = static_cast<double>(x.size());

  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  BEESIM_ASSERT(sxx > 0.0, "linear fit needs x variance");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

std::string LinearFit::describe() const {
  return "y = " + util::fmt(intercept, 1) + " + " + util::fmt(slope, 1) + "x (R2=" +
         util::fmt(r2, 3) + ")";
}

}  // namespace beesim::stats
