#include "beegfs/deployment.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace beesim::beegfs {

namespace {
/// Usable capacity attributed to one PlaFRIM-class OST (131 TB over 8 OSTs).
constexpr util::Bytes kDefaultTargetCapacity = 16 * util::kTiB;
}  // namespace

std::unique_ptr<storage::VariabilityModel> makeVariability(const topo::VariabilitySpec& spec) {
  using Kind = topo::VariabilitySpec::Kind;
  switch (spec.kind) {
    case Kind::kNone:
      return std::make_unique<storage::NoVariability>();
    case Kind::kLogNormal:
      return std::make_unique<storage::LogNormalVariability>(spec.sigma);
    case Kind::kGaussian:
      return std::make_unique<storage::GaussianVariability>(spec.sigma);
    case Kind::kSlowPhase:
      return std::make_unique<storage::SlowPhaseVariability>(spec.pEnter, spec.pLeave,
                                                             spec.slowFactor, spec.sigma);
  }
  BEESIM_ASSERT(false, "unknown variability kind");
  return nullptr;  // unreachable
}

Deployment::Deployment(sim::FluidSimulator& fluid, topo::ClusterConfig cluster,
                       BeegfsParams params, util::Rng rng, EnvironmentFactors environment)
    : fluid_(fluid),
      cluster_(std::move(cluster)),
      params_(params),
      environment_(environment),
      mgmt_(cluster_, kDefaultTargetCapacity),
      meta_(params_.meta, rng.split()),
      clientRng_(rng.split()) {
  cluster_.validate();
  BEESIM_ASSERT(environment_.network > 0.0, "network environment factor must be > 0");
  BEESIM_ASSERT(environment_.storage > 0.0, "storage environment factor must be > 0");

  fluid_.setResolveInterval(params_.resolveInterval);

  // -- Backbone switch (optional). --------------------------------------
  if (cluster_.network.backboneBandwidth > 0.0) {
    backbone_ = fluid_.addResource(sim::ResourceSpec{
        .name = cluster_.name + "/backbone",
        .capacity = sim::constantCapacity(cluster_.network.backboneBandwidth *
                                          environment_.network),
    });
  }

  // -- Compute nodes: client stack + NIC. --------------------------------
  nodeStates_.reserve(cluster_.nodes.size());
  for (std::size_t n = 0; n < cluster_.nodes.size(); ++n) {
    nodeStates_.push_back(std::make_unique<NodeState>());
    NodeState* state = nodeStates_.back().get();
    const auto cap = cluster_.nodes[n].clientThroughputCap;

    clientRes_.push_back(fluid_.addResource(sim::ResourceSpec{
        .name = cluster_.nodes[n].name + "/client",
        .capacity =
            [this, state, cap](const sim::ResourceLoad& load) {
              return cap * clientContentionFactor(state->activeProcesses) *
                     clientRampFactor(*state, load.time);
            },
    }));
    nodeNicRes_.push_back(fluid_.addResource(sim::ResourceSpec{
        .name = cluster_.nodes[n].name + "/nic",
        .capacity = sim::constantCapacity(cluster_.nodes[n].nicBandwidth *
                                          environment_.network),
    }));
  }

  // -- Buddy-mirror groups (registry side). -------------------------------
  if (params_.mirror.enabled) {
    auto pairs = params_.mirror.groups.empty() ? defaultMirrorPairs(cluster_)
                                               : params_.mirror.groups;
    if (pairs.empty()) {
      throw util::ConfigError("storage mirroring needs at least two storage hosts");
    }
    for (const auto& [primary, secondary] : pairs) {
      mgmt_.registerMirrorGroup(primary, secondary);
    }
  }

  // -- Storage hosts: server NIC, OSS service cap, OSTs. ------------------
  targetHealth_.assign(cluster_.targetCount(), 1.0);
  hostLinkHealth_.assign(cluster_.hosts.size(), 1.0);
  util::Rng deviceRng = rng.split();
  std::size_t flatTarget = 0;
  for (std::size_t h = 0; h < cluster_.hosts.size(); ++h) {
    const auto& host = cluster_.hosts[h];
    // Server links fluctuate per noise epoch (transient congestion); see
    // topo::NetworkCfg::serverLinkNoiseSigmaLog.
    linkNoise_.push_back(std::make_unique<storage::NoisyDevice>(
        std::make_shared<storage::ConstantDeviceModel>(host.nicBandwidth *
                                                       environment_.network),
        std::make_unique<storage::LogNormalVariability>(
            cluster_.network.serverLinkNoiseSigmaLog),
        deviceRng.split(), params_.noiseEpoch));
    storage::NoisyDevice* link = linkNoise_.back().get();
    const double* linkHealth = &hostLinkHealth_[h];
    serverNicRes_.push_back(fluid_.addResource(sim::ResourceSpec{
        .name = host.name + "/nic",
        .capacity =
            [link, linkHealth](const sim::ResourceLoad& load) {
              return link->currentRate(load.queueDepth, load.time) * *linkHealth;
            },
    }));
    if (host.serviceCap > 0.0) {
      ossRes_.push_back(fluid_.addResource(sim::ResourceSpec{
          .name = host.name + "/oss",
          .capacity = sim::constantCapacity(host.serviceCap * environment_.storage),
      }));
    } else {
      ossRes_.push_back(std::nullopt);
    }
    for (std::size_t t = 0; t < host.targets.size(); ++t) {
      const auto& targetCfg = host.targets[t];
      devices_.push_back(std::make_unique<storage::NoisyDevice>(
          std::make_shared<storage::HddRaidModel>(targetCfg.device),
          makeVariability(targetCfg.variability), deviceRng.split(), params_.noiseEpoch));
      storage::NoisyDevice* device = devices_.back().get();
      const double storageFactor = environment_.storage;
      const double* health = &targetHealth_[flatTarget++];
      ostRes_.push_back(fluid_.addResource(sim::ResourceSpec{
          .name = targetCfg.name,
          .capacity =
              [device, storageFactor, health](const sim::ResourceLoad& load) {
                return device->currentRate(load.queueDepth, load.time) * storageFactor *
                       *health;
              },
      }));
    }
  }

  // -- Metadata targets (queued MDS/MDT model; DESIGN.md §2.10). ----------
  // Gated on the master switch: the default scalar model registers no
  // resources and attaches nothing, so legacy runs stay bitwise identical.
  if (params_.meta.queued) {
    MetaService* meta = &meta_;
    std::vector<sim::ResourceIndex> mdtRes;
    mdtRes.reserve(meta_.mdtCount());
    for (std::size_t k = 0; k < meta_.mdtCount(); ++k) {
      mdtRes.push_back(fluid_.addResource(sim::ResourceSpec{
          .name = cluster_.name + "/mdt" + std::to_string(k),
          .capacity =
              [meta](const sim::ResourceLoad& load) {
                return meta->rampFactor(load.queueDepth) *
                       MetaService::kSaturationMiBps;
              },
      }));
    }
    mdtRes_ = mdtRes;
    meta_.attach(fluid_, std::move(mdtRes));
  }
}

void Deployment::setTargetHealth(std::size_t flatTarget, double factor) {
  BEESIM_ASSERT(flatTarget < targetHealth_.size(), "unknown storage target");
  BEESIM_ASSERT(factor >= 0.0, "target health factor must be >= 0");
  targetHealth_[flatTarget] = factor;
}

double Deployment::targetHealth(std::size_t flatTarget) const {
  BEESIM_ASSERT(flatTarget < targetHealth_.size(), "unknown storage target");
  return targetHealth_[flatTarget];
}

void Deployment::setHostLinkHealth(std::size_t host, double factor) {
  BEESIM_ASSERT(host < hostLinkHealth_.size(), "unknown storage host");
  BEESIM_ASSERT(factor >= 0.0, "host link health factor must be >= 0");
  hostLinkHealth_[host] = factor;
}

double Deployment::hostLinkHealth(std::size_t host) const {
  BEESIM_ASSERT(host < hostLinkHealth_.size(), "unknown storage host");
  return hostLinkHealth_[host];
}

double Deployment::clientContentionFactor(int processes) const {
  const auto& client = params_.client;
  if (processes <= client.workerThreads) return 1.0;
  const double excess = static_cast<double>(processes - client.workerThreads) /
                        static_cast<double>(client.workerThreads);
  return 1.0 / (1.0 + client.oversubscriptionPenalty * excess);
}

double Deployment::clientRampFactor(const NodeState& state, util::Seconds now) const {
  if (state.jobStart < 0.0) return 1.0;
  const auto& client = params_.client;
  if (client.rampTau <= 0.0) return 1.0;
  const double dt = std::max(0.0, now - state.jobStart);
  const double r0 =
      std::clamp(client.rampInitialFraction * state.rampR0Factor, 0.05, 0.95);
  return 1.0 - (1.0 - r0) * std::exp(-dt / (client.rampTau * state.rampTauFactor));
}

std::vector<sim::ResourceIndex> Deployment::writePath(std::size_t node,
                                                      std::size_t flatTarget) const {
  BEESIM_ASSERT(node < cluster_.nodes.size(), "unknown compute node");
  BEESIM_ASSERT(flatTarget < ostRes_.size(), "unknown storage target");
  const auto [host, indexInHost] = cluster_.targetLocation(flatTarget);
  (void)indexInHost;

  std::vector<sim::ResourceIndex> path;
  path.reserve(6);
  path.push_back(clientRes_[node]);
  path.push_back(nodeNicRes_[node]);
  if (backbone_) path.push_back(*backbone_);
  path.push_back(serverNicRes_[host]);
  if (ossRes_[host]) path.push_back(*ossRes_[host]);
  path.push_back(ostRes_[flatTarget]);
  return path;
}

std::vector<sim::ResourceIndex> Deployment::replicaPath(std::size_t fromTarget,
                                                        std::size_t toTarget) const {
  BEESIM_ASSERT(fromTarget < ostRes_.size(), "unknown storage target");
  BEESIM_ASSERT(toTarget < ostRes_.size(), "unknown storage target");
  const auto [fromHost, fromIdx] = cluster_.targetLocation(fromTarget);
  const auto [toHost, toIdx] = cluster_.targetLocation(toTarget);
  (void)fromIdx;
  (void)toIdx;
  BEESIM_ASSERT(fromHost != toHost, "replica path within one host");

  std::vector<sim::ResourceIndex> path;
  path.reserve(4);
  if (backbone_) path.push_back(*backbone_);
  path.push_back(serverNicRes_[toHost]);
  if (ossRes_[toHost]) path.push_back(*ossRes_[toHost]);
  path.push_back(ostRes_[toTarget]);
  return path;
}

void Deployment::setNodeProcesses(std::size_t node, int processes) {
  BEESIM_ASSERT(node < nodeStates_.size(), "unknown compute node");
  BEESIM_ASSERT(processes >= 0, "process count must be >= 0");
  nodeStates_[node]->activeProcesses = processes;
}

void Deployment::markNodeJobStart(std::size_t node, util::Seconds at) {
  BEESIM_ASSERT(node < nodeStates_.size(), "unknown compute node");
  auto& state = *nodeStates_[node];
  if (state.jobStart < 0.0) {
    // First job on this node: sample its slow-start jitter (both the time
    // constant and the starting fraction vary between connections).
    state.rampTauFactor =
        clientRng_.logNormalMedian(1.0, params_.client.rampJitterSigmaLog);
    state.rampR0Factor =
        clientRng_.logNormalMedian(1.0, params_.client.rampJitterSigmaLog);
  }
  if (state.jobStart < 0.0 || at < state.jobStart) state.jobStart = at;
}

void Deployment::resetNode(std::size_t node) {
  BEESIM_ASSERT(node < nodeStates_.size(), "unknown compute node");
  *nodeStates_[node] = NodeState{};
}

double Deployment::nodeEffectiveInflight(std::size_t node, int ppn) const {
  BEESIM_ASSERT(node < nodeStates_.size(), "unknown compute node");
  BEESIM_ASSERT(ppn >= 1, "ppn must be >= 1");
  const auto& client = params_.client;
  const double raw = std::min<double>(static_cast<double>(ppn) * client.inflightPerProcess,
                                      static_cast<double>(client.workerThreads));
  return raw * clientContentionFactor(ppn);
}

sim::ResourceIndex Deployment::clientResource(std::size_t node) const {
  BEESIM_ASSERT(node < clientRes_.size(), "unknown compute node");
  return clientRes_[node];
}

sim::ResourceIndex Deployment::nodeNicResource(std::size_t node) const {
  BEESIM_ASSERT(node < nodeNicRes_.size(), "unknown compute node");
  return nodeNicRes_[node];
}

sim::ResourceIndex Deployment::serverNicResource(std::size_t host) const {
  BEESIM_ASSERT(host < serverNicRes_.size(), "unknown storage host");
  return serverNicRes_[host];
}

std::optional<sim::ResourceIndex> Deployment::ossResource(std::size_t host) const {
  BEESIM_ASSERT(host < ossRes_.size(), "unknown storage host");
  return ossRes_[host];
}

sim::ResourceIndex Deployment::ostResource(std::size_t flatTarget) const {
  BEESIM_ASSERT(flatTarget < ostRes_.size(), "unknown storage target");
  return ostRes_[flatTarget];
}

sim::ResourceIndex Deployment::mdtResource(std::size_t mdt) const {
  BEESIM_ASSERT(mdt < mdtRes_.size(), "unknown MDT (queued metadata model off?)");
  return mdtRes_[mdt];
}

}  // namespace beesim::beegfs
