// Metadata service (MDS + MDT) cost model.
//
// The paper deliberately minimizes metadata influence (N-1 shared file,
// Section III-B), but metadata latency is exactly what penalizes small data
// sizes (Fig. 2's left side) together with client ramp-up, and it is the
// substrate future N-N (file-per-process) experiments need.  The MDS serves
// operations from an SSD-backed MDT; operation latencies carry log-normal
// jitter and scale with the number of concurrent metadata operations.
#pragma once

#include "beegfs/params.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::beegfs {

class MetaService {
 public:
  MetaService(const MetaParams& params, util::Rng rng);

  /// Latency of creating a file entry (rank 0 performs it).
  util::Seconds createCost();

  /// Latency experienced by `concurrentRanks` ranks opening the same file at
  /// once.  Opens are served concurrently by the MDS but contend on the MDT;
  /// the returned value is the time until the *last* open finishes (a mild
  /// logarithmic pile-up, SSD MDTs handle deep queues well).
  util::Seconds openAllCost(std::size_t concurrentRanks);

  /// Latency of one stat.
  util::Seconds statCost();

  /// Total metadata operations served (diagnostics).
  std::uint64_t opsServed() const { return ops_; }

 private:
  util::Seconds jittered(util::Seconds base);

  MetaParams params_;
  util::Rng rng_;
  std::uint64_t ops_ = 0;
};

}  // namespace beesim::beegfs
